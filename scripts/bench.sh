#!/usr/bin/env bash
# bench.sh — run the benchmark suites and emit the repo's perf-trajectory
# points (see DESIGN.md "Performance"): BENCH_sim.json for the event
# core, BENCH_kv.json for the replication service layer, and
# BENCH_live.json for the live runtime's durability layer.
#
# Usage:
#   scripts/bench.sh                # full run, writes all three JSON files
#   BENCHTIME=0.2s scripts/bench.sh # reduced iterations (CI smoke job)
#   OUT=/tmp/b.json KVOUT=/tmp/kv.json LIVEOUT=/tmp/l.json scripts/bench.sh
#
# Environment:
#   BENCHTIME  go test -benchtime value (default 1s)
#   COUNT      go test -count value (default 1)
#   OUT        event-core output path (default BENCH_sim.json)
#   KVOUT      service-layer output path (default BENCH_kv.json)
#   LIVEOUT    durability-layer output path (default BENCH_live.json)
#
# BENCH_sim.json (bench_sim/v1) records ns/op, B/op and allocs/op for
# every BenchmarkSim_* and BenchmarkRunner_* benchmark, plus the wall
# time of a full `hobench -exp e9` table (the 240-cell loss sweep).
# BENCH_kv.json (bench_kv/v2) records cmds/sec, slots/cmd and — for the
# sharded suite — shards and aggregate cmds/round for every
# BenchmarkRSM_* and BenchmarkShard_* benchmark, plus the wall time of
# `hobench -exp e10,e11` (the closed-loop service + sharded tables).
# v2 over v1: the shards / cmds_per_round fields and the BenchmarkShard_*
# rows (the cmds/round curve across shards=1..8 is the weak-scaling
# measurement of the sharded layer).
# BENCH_live.json (bench_live/v1) records the durability tax: WAL append
# throughput with and without fsync (BenchmarkWAL_*, ops/sec), recovery
# replay time per 10k log records (BenchmarkWAL_Replay10k, ns/op), and
# end-to-end committed slots/sec through a replica for the volatile /
# buffered / fsync persistence variants (BenchmarkReplica_*).
set -euo pipefail

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
COUNT="${COUNT:-1}"
OUT="${OUT:-BENCH_sim.json}"
KVOUT="${KVOUT:-BENCH_kv.json}"
LIVEOUT="${LIVEOUT:-BENCH_live.json}"

raw="$(mktemp)"
trap 'rm -f "$raw" "$raw.kv" "$raw.live" "$raw.hobench"' EXIT

echo "bench.sh: go test -bench 'BenchmarkSim_|BenchmarkRunner_' -benchtime $BENCHTIME -count $COUNT" >&2
go test -run '^$' -bench 'BenchmarkSim_|BenchmarkRunner_' -benchmem \
	-benchtime "$BENCHTIME" -count "$COUNT" . | tee /dev/stderr >"$raw"

echo "bench.sh: timing hobench -exp e9" >&2
go build -o "$raw.hobench" ./cmd/hobench
e9_start=$(date +%s.%N)
"$raw.hobench" -exp e9 >/dev/null
e9_end=$(date +%s.%N)
rm -f "$raw.hobench"
e9_wall=$(awk -v a="$e9_start" -v b="$e9_end" 'BEGIN{printf "%.3f", b-a}')

go_version="$(go env GOVERSION)"
date_utc="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"

awk -v benchtime="$BENCHTIME" -v goversion="$go_version" -v date="$date_utc" \
	-v commit="$commit" -v e9wall="$e9_wall" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	sub(/^Benchmark/, "", name)
	iters = $2
	ns = ""; bytes = ""; allocs = ""
	for (i = 3; i < NF; i++) {
		if ($(i+1) == "ns/op")     ns = $i
		if ($(i+1) == "B/op")      bytes = $i
		if ($(i+1) == "allocs/op") allocs = $i
	}
	line = sprintf("    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
		name, iters, ns, bytes == "" ? "null" : bytes, allocs == "" ? "null" : allocs)
	rows[n++] = line
}
END {
	printf "{\n"
	printf "  \"schema\": \"bench_sim/v1\",\n"
	printf "  \"date\": \"%s\",\n", date
	printf "  \"commit\": \"%s\",\n", commit
	printf "  \"go\": \"%s\",\n", goversion
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"e9_wall_seconds\": %s,\n", e9wall
	printf "  \"benchmarks\": [\n"
	for (i = 0; i < n; i++) printf "%s%s\n", rows[i], i < n-1 ? "," : ""
	printf "  ]\n}\n"
}' "$raw" >"$OUT"

echo "bench.sh: wrote $OUT" >&2

echo "bench.sh: go test -bench 'BenchmarkRSM_|BenchmarkShard_' -benchtime $BENCHTIME ./internal/rsm ./internal/shard" >&2
go test -run '^$' -bench 'BenchmarkRSM_|BenchmarkShard_' -benchmem \
	-benchtime "$BENCHTIME" -count "$COUNT" ./internal/rsm ./internal/shard | tee /dev/stderr >"$raw.kv"

echo "bench.sh: timing hobench -exp e10,e11" >&2
go build -o "$raw.hobench" ./cmd/hobench
e10_start=$(date +%s.%N)
"$raw.hobench" -exp e10,e11 >/dev/null
e10_end=$(date +%s.%N)
rm -f "$raw.hobench"
e10_wall=$(awk -v a="$e10_start" -v b="$e10_end" 'BEGIN{printf "%.3f", b-a}')

awk -v benchtime="$BENCHTIME" -v goversion="$go_version" -v date="$date_utc" \
	-v commit="$commit" -v e10wall="$e10_wall" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	sub(/^Benchmark/, "", name)
	iters = $2
	ns = ""; cmds = ""; spc = ""; allocs = ""; shards = ""; cpr = ""
	for (i = 3; i < NF; i++) {
		if ($(i+1) == "ns/op")      ns = $i
		if ($(i+1) == "cmds/sec")   cmds = $i
		if ($(i+1) == "slots/cmd")  spc = $i
		if ($(i+1) == "allocs/op")  allocs = $i
		if ($(i+1) == "shards")     shards = $i
		if ($(i+1) == "cmds/round") cpr = $i
	}
	line = sprintf("    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"cmds_per_sec\": %s, \"slots_per_cmd\": %s, \"shards\": %s, \"cmds_per_round\": %s, \"allocs_per_op\": %s}",
		name, iters, ns, cmds == "" ? "null" : cmds, spc == "" ? "null" : spc,
		shards == "" ? "null" : shards, cpr == "" ? "null" : cpr, allocs == "" ? "null" : allocs)
	rows[n++] = line
}
END {
	printf "{\n"
	printf "  \"schema\": \"bench_kv/v2\",\n"
	printf "  \"date\": \"%s\",\n", date
	printf "  \"commit\": \"%s\",\n", commit
	printf "  \"go\": \"%s\",\n", goversion
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"e10_e11_wall_seconds\": %s,\n", e10wall
	printf "  \"benchmarks\": [\n"
	for (i = 0; i < n; i++) printf "%s%s\n", rows[i], i < n-1 ? "," : ""
	printf "  ]\n}\n"
}' "$raw.kv" >"$KVOUT"

echo "bench.sh: wrote $KVOUT" >&2

echo "bench.sh: go test -bench 'BenchmarkWAL_|BenchmarkReplica_' -benchtime $BENCHTIME ./internal/wal ./internal/live" >&2
go test -run '^$' -bench 'BenchmarkWAL_|BenchmarkReplica_' -benchmem \
	-benchtime "$BENCHTIME" -count "$COUNT" ./internal/wal ./internal/live | tee /dev/stderr >"$raw.live"

awk -v benchtime="$BENCHTIME" -v goversion="$go_version" -v date="$date_utc" \
	-v commit="$commit" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	sub(/^Benchmark/, "", name)
	iters = $2
	ns = ""; ops = ""; slots = ""; allocs = ""
	for (i = 3; i < NF; i++) {
		if ($(i+1) == "ns/op")     ns = $i
		if ($(i+1) == "ops/sec")   ops = $i
		if ($(i+1) == "slots/sec") slots = $i
		if ($(i+1) == "allocs/op") allocs = $i
	}
	line = sprintf("    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"ops_per_sec\": %s, \"slots_per_sec\": %s, \"allocs_per_op\": %s}",
		name, iters, ns, ops == "" ? "null" : ops, slots == "" ? "null" : slots, allocs == "" ? "null" : allocs)
	rows[n++] = line
}
END {
	printf "{\n"
	printf "  \"schema\": \"bench_live/v1\",\n"
	printf "  \"date\": \"%s\",\n", date
	printf "  \"commit\": \"%s\",\n", commit
	printf "  \"go\": \"%s\",\n", goversion
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"benchmarks\": [\n"
	for (i = 0; i < n; i++) printf "%s%s\n", rows[i], i < n-1 ? "," : ""
	printf "  ]\n}\n"
}' "$raw.live" >"$LIVEOUT"

echo "bench.sh: wrote $LIVEOUT" >&2
