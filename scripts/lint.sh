#!/usr/bin/env sh
# Static contract gate: exactly what CI's lint job runs. holint is the
# in-repo analyzer suite (internal/analysis, DESIGN.md §12) that turns
# the correctness contracts — determinism, pure step functions,
# allocate-after-validate, errors.Is discipline, the write-ahead
# barrier, atomic/plain access discipline, goroutine termination, lock
# ordering, and the //holint:hotpath zero-alloc annotations — into
# merge blockers. Runs fully offline. On failure holint prints one
# finding per line plus a per-analyzer count summary on stderr.
#
# Usage:
#   scripts/lint.sh                        # vet + all nine analyzers
#   scripts/lint.sh -only lockorder,goleak # flags pass through to holint
#   HOLINT_ESCAPE=1 scripts/lint.sh        # also run the compiler-backed
#                                          # escape gate (go build -gcflags=-m)
set -eu
cd "$(dirname "$0")/.."
go vet ./...
go run ./cmd/holint "$@" ./...
if [ "${HOLINT_ESCAPE:-0}" = "1" ]; then
	go run ./cmd/holint -escape ./...
	echo "lint OK: go vet, holint, and the escape gate are clean"
else
	echo "lint OK: go vet and holint are clean"
fi
