#!/usr/bin/env sh
# Static contract gate: exactly what CI's lint job runs. holint is the
# in-repo analyzer suite (internal/analysis, DESIGN.md §12) that turns
# the correctness contracts — determinism, pure step functions,
# allocate-after-validate, errors.Is discipline, the write-ahead
# barrier — into merge blockers. Runs fully offline.
set -eu
cd "$(dirname "$0")/.."
go vet ./...
go run ./cmd/holint ./...
echo "lint OK: go vet and holint are clean"
