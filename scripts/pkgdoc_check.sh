#!/usr/bin/env bash
# Package-doc audit: every internal/* package must carry a proper
# `// Package <name>` doc comment, every cmd/* binary a `// Command
# <name>` one, and the module root its own package doc. A package
# missing documentation fails CI — the doc comment is where each layer
# states its contract (see DESIGN.md).
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

check_dir() {
  local dir="$1" kind="$2" name="$3"
  local found=0 f
  for f in "$dir"/*.go; do
    [ -e "$f" ] || continue
    case "$f" in *_test.go) continue ;; esac
    if grep -q "^// $kind $name" "$f"; then
      found=1
      break
    fi
  done
  if [ "$found" = 0 ]; then
    echo "MISSING: $dir has no '// $kind $name' doc comment"
    fail=1
  fi
}

for dir in internal/*/; do
  check_dir "${dir%/}" "Package" "$(basename "$dir")"
done
for dir in cmd/*/; do
  check_dir "${dir%/}" "Command" "$(basename "$dir")"
done
check_dir "." "Package" "heardof"

if [ "$fail" != 0 ]; then
  echo "package-doc audit failed"
  exit 1
fi
echo "package-doc audit OK: every package documents its contract"
