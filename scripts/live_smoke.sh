#!/usr/bin/env bash
# Live-deployment smoke: start a 3-node hoserve cluster over real TCP
# with 10% injected message loss, drive 1k mixed PUT/GET operations over
# HTTP with hoload's linearizability checker, then require every node to
# converge to the same decision log and state with zero divergent
# decisions. Binaries are built with -race, so the whole live runtime
# runs under the race detector while serving.
#
# Usage: scripts/live_smoke.sh [ops]
set -euo pipefail
cd "$(dirname "$0")/.."

OPS="${1:-1000}"
LOSS="${LOSS:-0.1}"
NGROUPS="${NGROUPS:-2}"
WORK="$(mktemp -d)"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== build (-race)"
go build -race -o "$WORK/hoserve" ./cmd/hoserve
go build -race -o "$WORK/hoload" ./cmd/hoload

NODES="127.0.0.1:7301,127.0.0.1:7302,127.0.0.1:7303"
HTTP=(127.0.0.1:8301 127.0.0.1:8302 127.0.0.1:8303)

echo "== start 3 nodes (loss=$LOSS, groups=$NGROUPS)"
for i in 0 1 2; do
  "$WORK/hoserve" -id "$i" -nodes "$NODES" -http "${HTTP[$i]}" \
    -groups "$NGROUPS" -loss "$LOSS" 2>"$WORK/node$i.log" &
  PIDS+=($!)
done

for i in 0 1 2; do
  for _ in $(seq 1 50); do
    if curl -sf -m 2 "http://${HTTP[$i]}/healthz" >/dev/null 2>&1; then
      break
    fi
    sleep 0.2
  done
  curl -sf -m 2 "http://${HTTP[$i]}/healthz" >/dev/null \
    || { echo "node $i never became healthy"; cat "$WORK/node$i.log"; exit 1; }
done

echo "== drive $OPS mixed ops over HTTP (linearizable-read check inside hoload)"
"$WORK/hoload" -http "$(IFS=,; echo "${HTTP[*]}")" -clients 8 -ops "$OPS" -writes 0.6

echo "== verify convergence and zero divergence across nodes"
# Compare the group-indexed (slots, log, state, applied, committed)
# fields across all three nodes; retry while decided slots propagate.
# The divergence check runs against the RAW stats (the projection used
# for the convergence cmp drops the node-local fields).
converged=0
for _ in $(seq 1 100); do
  for i in 0 1 2; do
    curl -sf -m 2 "http://${HTTP[$i]}/stats" >"$WORK/raw$i.txt" || true
    awk '{print $4, $5, $6, $7, $8, $9}' "$WORK/raw$i.txt" | sort >"$WORK/stats$i.txt"
  done
  if [ -s "$WORK/stats0.txt" ] \
     && cmp -s "$WORK/stats0.txt" "$WORK/stats1.txt" \
     && cmp -s "$WORK/stats0.txt" "$WORK/stats2.txt"; then
    converged=1
    break
  fi
  sleep 0.2
done
if [ "$converged" != 1 ]; then
  echo "nodes never converged:"; head -v "$WORK"/stats*.txt; exit 1
fi
grep -q 'divergent=' "$WORK/raw0.txt" \
  || { echo "stats output missing the divergent field?"; cat "$WORK/raw0.txt"; exit 1; }
if grep -q 'divergent=[^0]' "$WORK"/raw*.txt; then
  echo "DIVERGENT DECISIONS OBSERVED:"; grep divergent "$WORK"/raw*.txt; exit 1
fi
cat "$WORK/stats0.txt"
echo "== live smoke OK: $OPS ops, linearizable reads, zero divergence, converged logs"
