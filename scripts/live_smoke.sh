#!/usr/bin/env bash
# Live-deployment smoke: start a 3-node hoserve cluster over real TCP
# with 10% injected message loss and per-node write-ahead logs, drive 1k
# mixed PUT/GET operations over HTTP with hoload's linearizability
# checker, then require every node to converge to the same decision log
# and state with zero divergent decisions.
#
# A second chaos phase then kill -9s one node MID-LOAD, finishes the
# load on the survivors, restarts the victim with the same -data-dir,
# and requires it to rejoin and re-converge — the crash-RECOVERY fault
# the durability layer exists for, exercised against real processes,
# real sockets, and a real kill.
#
# Binaries are built with -race, so the whole live runtime (including
# recovery) runs under the race detector while serving.
#
# Usage: scripts/live_smoke.sh [ops]
set -euo pipefail
cd "$(dirname "$0")/.."

OPS="${1:-1000}"
LOSS="${LOSS:-0.1}"
NGROUPS="${NGROUPS:-2}"
WORK="$(mktemp -d)"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== build (-race)"
go build -race -o "$WORK/hoserve" ./cmd/hoserve
go build -race -o "$WORK/hoload" ./cmd/hoload

NODES="127.0.0.1:7301,127.0.0.1:7302,127.0.0.1:7303"
HTTP=(127.0.0.1:8301 127.0.0.1:8302 127.0.0.1:8303)

# start_node i suffix — launch node i (its data dir persists across
# restarts; the log file gets a suffix so the pre-crash log survives).
start_node() {
  local i="$1" suffix="${2:-}"
  "$WORK/hoserve" -id "$i" -nodes "$NODES" -http "${HTTP[$i]}" \
    -groups "$NGROUPS" -loss "$LOSS" -data-dir "$WORK/data/node$i" \
    2>"$WORK/node$i$suffix.log" &
  PIDS+=($!)
}

wait_healthy() {
  local i="$1"
  for _ in $(seq 1 50); do
    if curl -sf -m 2 "http://${HTTP[$i]}/healthz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.2
  done
  echo "node $i never became healthy"; cat "$WORK/node$i"*.log; exit 1
}

# wait_converged — poll /stats until the group-indexed (slots, log,
# state, applied, committed) fields agree across all three nodes; then
# assert zero divergent decisions against the RAW stats (the projection
# used for the convergence cmp drops the node-local fields).
wait_converged() {
  local converged=0
  for _ in $(seq 1 100); do
    for i in 0 1 2; do
      curl -sf -m 2 "http://${HTTP[$i]}/stats" >"$WORK/raw$i.txt" || true
      awk '{print $4, $5, $6, $7, $8, $9}' "$WORK/raw$i.txt" | sort >"$WORK/stats$i.txt"
    done
    if [ -s "$WORK/stats0.txt" ] \
       && cmp -s "$WORK/stats0.txt" "$WORK/stats1.txt" \
       && cmp -s "$WORK/stats0.txt" "$WORK/stats2.txt"; then
      converged=1
      break
    fi
    sleep 0.2
  done
  if [ "$converged" != 1 ]; then
    echo "nodes never converged:"; head -v "$WORK"/stats*.txt; exit 1
  fi
  grep -q 'divergent=' "$WORK/raw0.txt" \
    || { echo "stats output missing the divergent field?"; cat "$WORK/raw0.txt"; exit 1; }
  if grep -q 'divergent=[^0]' "$WORK"/raw*.txt; then
    echo "DIVERGENT DECISIONS OBSERVED:"; grep divergent "$WORK"/raw*.txt; exit 1
  fi
}

echo "== start 3 nodes (loss=$LOSS, groups=$NGROUPS, write-ahead logs on)"
for i in 0 1 2; do start_node "$i"; done
for i in 0 1 2; do wait_healthy "$i"; done

echo "== drive $OPS mixed ops over HTTP (linearizable-read check inside hoload)"
"$WORK/hoload" -http "$(IFS=,; echo "${HTTP[*]}")" -clients 8 -ops "$OPS" -writes 0.6

echo "== verify convergence and zero divergence across nodes"
wait_converged
cat "$WORK/stats0.txt"

echo "== chaos: kill -9 node 2 mid-load, finish load on survivors"
# The chaos load targets the survivors only: hoload fails the whole run
# on any request error, and node 2 is about to die mid-flight.
CHAOS_OPS=$(( OPS / 2 ))
"$WORK/hoload" -http "${HTTP[0]},${HTTP[1]}" -clients 8 -ops "$CHAOS_OPS" -writes 0.6 \
  >"$WORK/chaos_load.log" 2>&1 &
LOAD_PID=$!
sleep 1
VICTIM_PID="${PIDS[2]}"
kill -9 "$VICTIM_PID"
echo "   killed node 2 (pid $VICTIM_PID) with SIGKILL"
wait "$LOAD_PID" \
  || { echo "survivor load failed after kill -9:"; cat "$WORK/chaos_load.log"; exit 1; }
cat "$WORK/chaos_load.log"

echo "== restart node 2 from its data dir and require rejoin"
start_node 2 "-restarted"
wait_healthy 2
wait_converged
cat "$WORK/stats0.txt"

echo "== live smoke OK: $OPS ops, linearizable reads, kill -9 recovery, zero divergence, converged logs"
