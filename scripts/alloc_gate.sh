#!/usr/bin/env sh
# alloc_gate.sh — allocation-regression gate over the perf-trajectory
# JSON points (scripts/bench.sh). Compares allocs_per_op per benchmark
# between a committed baseline and a fresh run and fails if any
# benchmark regressed by more than 20%.
#
# Usage: scripts/alloc_gate.sh <baseline.json> <fresh.json>
#
# allocs/op is the one benchmark statistic that is stable at smoke
# iteration counts (BENCHTIME=0.2s): it counts allocator calls, not
# time, so CI can gate on it without flaking. Benchmarks present on
# only one side (added or removed since the baseline) are reported and
# ignored; null allocs_per_op rows (hobench wall-time rows) are
# skipped. The files are the one-row-per-benchmark format bench.sh
# emits, so a line-oriented awk join is reliable.
set -eu

if [ $# -ne 2 ]; then
	echo "usage: $0 <baseline.json> <fresh.json>" >&2
	exit 2
fi
base="$1"
fresh="$2"
for f in "$base" "$fresh"; do
	if [ ! -f "$f" ]; then
		echo "alloc_gate: $f: no such file" >&2
		exit 2
	fi
done

awk '
function row(line,   name, allocs) {
	# One benchmark per line: {"name": "...", ..., "allocs_per_op": N}
	if (line !~ /"name":/) return ""
	name = line
	sub(/.*"name": "/, "", name)
	sub(/".*/, "", name)
	allocs = line
	if (allocs !~ /"allocs_per_op":/) return ""
	sub(/.*"allocs_per_op": /, "", allocs)
	sub(/[,}].*/, "", allocs)
	return name SUBSEP allocs
}
FNR == 1 { nfile++ } # first file is the baseline (robust to base == fresh)
{ in_base = (nfile == 1) }
{
	r = row($0)
	if (r == "") next
	split(r, kv, SUBSEP)
	if (kv[2] == "null") next
	if (in_base) { base[kv[1]] = kv[2] } else { fresh[kv[1]] = kv[2]; order[n++] = kv[1] }
}
END {
	failures = 0
	for (i = 0; i < n; i++) {
		name = order[i]
		if (!(name in base)) {
			printf "alloc_gate: %-28s new benchmark (no baseline), ignored\n", name
			continue
		}
		b = base[name] + 0
		f = fresh[name] + 0
		limit = b * 1.2
		verdict = "ok"
		if (f > limit && f > b) {
			verdict = "REGRESSION"
			failures++
		}
		printf "alloc_gate: %-28s base=%d fresh=%d (limit %.1f) %s\n", name, b, f, limit, verdict
	}
	for (name in base) {
		if (!(name in fresh))
			printf "alloc_gate: %-28s removed since baseline, ignored\n", name
	}
	if (failures > 0) {
		printf "alloc_gate: FAIL: %d benchmark(s) regressed allocs/op by more than 20%%\n", failures
		exit 1
	}
	print "alloc_gate: OK: no allocs/op regression over 20%"
}' "$base" "$fresh"
