module heardof

go 1.22
