// Cross-layer integration tests: scenarios that thread through several
// packages at once (HO algorithms over the predicate implementation over
// the system model, trace serialization, applications over consensus).
package heardof_test

import (
	"fmt"
	"testing"

	"heardof/internal/abcast"
	"heardof/internal/adversary"
	"heardof/internal/core"
	"heardof/internal/lastvoting"
	"heardof/internal/otr"
	"heardof/internal/predicate"
	"heardof/internal/predimpl"
	"heardof/internal/simtime"
	"heardof/internal/tracefile"
	"heardof/internal/uv"
	"heardof/internal/xrand"
)

// TestThreeAlgorithmsOneSubstrate runs three different HO algorithms over
// the identical Algorithm 2 substrate in a Π-good period: the layering of
// Figure 1 means the substrate needs no knowledge of the algorithm above.
func TestThreeAlgorithmsOneSubstrate(t *testing.T) {
	algorithms := []core.Algorithm{
		otr.Algorithm{},
		uv.Algorithm{},
		lastvoting.Algorithm{},
	}
	n := 5
	initial := []core.Value{3, 1, 4, 1, 5}
	for _, alg := range algorithms {
		t.Run(alg.Name(), func(t *testing.T) {
			stack, err := predimpl.BuildStack(predimpl.StackConfig{
				Kind:      predimpl.UseAlg2,
				Algorithm: alg,
				Initial:   initial,
				Sim:       simtime.Config{N: n, Phi: 1, Delta: 5, Seed: 2},
			})
			if err != nil {
				t.Fatal(err)
			}
			last := stack.RunUntilAllDecided(core.FullSet(n), 5000)
			if last < 0 {
				t.Fatalf("%s did not decide over Alg2", alg.Name())
			}
			if err := stack.Trace().CheckConsensusSafety(); err != nil {
				t.Fatal(err)
			}
			if stack.Sim.ContractViolations() != 0 {
				t.Error("step contract violated")
			}
		})
	}
}

// TestTraceSerializationPipeline runs a full stack, serializes the
// recorded trace, decodes it, and re-checks predicates and safety — the
// hocheck workflow end to end.
func TestTraceSerializationPipeline(t *testing.T) {
	n := 7
	pi0 := core.SetOf(0, 1, 2, 3, 4)
	stack, err := predimpl.BuildStack(predimpl.StackConfig{
		Kind:      predimpl.UseAlg2,
		Algorithm: otr.Algorithm{},
		Initial:   []core.Value{3, 1, 4, 1, 5, 9, 2},
		Sim: simtime.Config{
			N: n, Phi: 1, Delta: 5, Seed: 4,
			Periods: []simtime.Period{{Start: 0, Kind: simtime.GoodDown, Pi0: pi0}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stack.RunUntilAllDecided(pi0, 5000) < 0 {
		t.Fatal("π0 did not decide")
	}

	data, err := tracefile.Encode(stack.Trace())
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := tracefile.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !(predicate.PrestrOtr{}).Holds(decoded) {
		t.Error("decoded trace lost the PrestrOtr property")
	}
	if err := decoded.CheckConsensusSafety(); err != nil {
		t.Fatal(err)
	}
	if decoded.DecidedSet() != stack.Trace().DecidedSet() {
		t.Error("decisions changed across serialization")
	}
}

// TestCoarseAndFineExecutionsAgree: the lock-step runner (§3 semantics)
// and the real-time simulator (§4.1 semantics) drive the same algorithm
// to the same decision when the environment is equivalent (full
// connectivity).
func TestCoarseAndFineExecutionsAgree(t *testing.T) {
	initial := []core.Value{9, 2, 7, 2, 5}
	n := len(initial)

	ru, err := core.NewRunner(otr.Algorithm{}, initial, adversary.Full{})
	if err != nil {
		t.Fatal(err)
	}
	coarseTr, err := ru.Run(20)
	if err != nil {
		t.Fatal(err)
	}

	stack, err := predimpl.BuildStack(predimpl.StackConfig{
		Kind:      predimpl.UseAlg2,
		Algorithm: otr.Algorithm{},
		Initial:   initial,
		Sim:       simtime.Config{N: n, Phi: 1, Delta: 5, Seed: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stack.RunUntilAllDecided(core.FullSet(n), 5000) < 0 {
		t.Fatal("simulator run did not decide")
	}
	fineTr := stack.Trace()

	want := coarseTr.Decisions[0].Value
	for p := 0; p < n; p++ {
		if coarseTr.Decisions[p].Value != want {
			t.Fatal("coarse run disagrees internally")
		}
		if fineTr.Decisions[p].Value != want {
			t.Errorf("p%d: simulator decided %d, lock-step decided %d",
				p, fineTr.Decisions[p].Value, want)
		}
	}
}

// TestAtomicBroadcastOnReplicatedValues pushes an interleaved workload
// through atomic broadcast under loss and checks the order is a single
// total order consistent with submission.
func TestAtomicBroadcastOnReplicatedValues(t *testing.T) {
	rng := xrand.New(11)
	b, err := abcast.New(5, otr.Algorithm{}, func(int) core.HOProvider {
		return &adversary.TransmissionLoss{Rate: 0.2, RNG: rng.Fork()}
	}, 300)
	if err != nil {
		t.Fatal(err)
	}
	const msgs = 30
	for i := 0; i < msgs; i++ {
		b.Broadcast(core.ProcessID(i%5), fmt.Sprintf("m%d", i))
	}
	if _, err := b.Drain(100); err != nil {
		t.Fatal(err)
	}
	got := b.Delivered()
	if len(got) != msgs {
		t.Fatalf("delivered %d of %d", len(got), msgs)
	}
	for i, m := range got {
		if m.Payload != fmt.Sprintf("m%d", i) {
			t.Errorf("position %d: %q", i, m.Payload)
		}
	}
}

// TestLongAlternation runs many bad/good cycles: decisions happen in the
// first adequate good period and stay stable forever after.
func TestLongAlternation(t *testing.T) {
	n := 5
	var periods []simtime.Period
	for i := 0; i < 6; i++ {
		start := simtime.Time(i) * 200
		periods = append(periods,
			simtime.Period{Start: start, Kind: simtime.Bad},
			simtime.Period{Start: start + 120, Kind: simtime.GoodDown, Pi0: core.FullSet(n)},
		)
	}
	stack, err := predimpl.BuildStack(predimpl.StackConfig{
		Kind:      predimpl.UseAlg2,
		Algorithm: otr.Algorithm{},
		Initial:   []core.Value{5, 4, 3, 2, 1},
		Sim: simtime.Config{
			N: n, Phi: 1, Delta: 5, Seed: 8, Periods: periods,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	last := stack.RunUntilAllDecided(core.FullSet(n), 1500)
	if last < 0 {
		t.Fatal("no decision across six alternation cycles")
	}
	// Keep running through more cycles: nothing may change.
	stack.Sim.RunUntilTime(1200)
	if err := stack.Trace().CheckConsensusSafety(); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < n; p++ {
		if v, ok := stack.Instance(core.ProcessID(p)).Decided(); !ok || v != 1 {
			t.Errorf("p%d decision drifted: (%v, %v)", p, v, ok)
		}
	}
}
