// Package heardof is a Go reproduction of "Communication Predicates: A
// High-Level Abstraction for Coping with Transient and Dynamic Faults"
// (Martin Hutle and André Schiper, DSN 2007).
//
// The repository implements the Heard-Of (HO) round model, communication
// predicates, the OneThirdRule consensus algorithm, the paper's §4.1
// real-time system model as a deterministic discrete-event simulator, the
// predicate-implementation layer (Algorithms 2, 3, and 4), and the
// failure-detector baselines the paper argues against (Chandra–Toueg ◇S
// consensus and the Aguilera et al. crash-recovery consensus).
//
// Above the reproduction sits a growing service stack: a batched +
// pipelined replication engine (internal/rsm) with atomic broadcast and
// a replicated KV store on top, a sharded multi-group layer
// (internal/shard), and — first to leave simulated time — a live
// deployment runtime (internal/live, internal/livekv) that runs the
// same algorithm instances over real channel/TCP transports behind the
// cmd/hoserve HTTP server.
//
// The public surface lives in the internal packages (this module is a
// self-contained research artifact); see DESIGN.md for the system inventory
// and EXPERIMENTS.md for the paper-versus-measured record of every result.
//
// Layering follows Figure 1 of the paper:
//
//	HO algorithm layer:        internal/core, internal/otr, internal/uv,
//	                           internal/lastvoting, internal/translation
//	predicate interface:       internal/predicate
//	implementation layer:      internal/predimpl (Algorithms 2 and 3)
//	system model:              internal/simtime (§4.1), internal/stable
//	baselines:                 internal/runtime, internal/fd, internal/ctcs,
//	                           internal/acr
//	service layers:            internal/rsm, internal/abcast,
//	                           internal/kvstore, internal/shard
//	live runtime (real time):  internal/live, internal/livekv (DESIGN.md §9)
package heardof
