// Command hoserve is the live deployment of the replicated key-value
// store: the SAME LastVoting/OneThirdRule instances every simulator
// layer runs, now deciding real slots over real transports behind an
// HTTP API (internal/live + internal/livekv).
//
// Two deployment shapes:
//
//	hoserve -local 3 -groups 2 -http 127.0.0.1:8080
//	    one process hosting a 3-node cluster over the in-process channel
//	    transport — the zero-setup demo and experiment configuration;
//	    requests round-robin across the nodes.
//
//	hoserve -id 0 -nodes 127.0.0.1:7101,127.0.0.1:7102,127.0.0.1:7103 -http :8101
//	    one server process of a multi-process deployment over the
//	    length-prefixed TCP transport; run one hoserve per entry in
//	    -nodes. Every process hosts a replica of every group, so any
//	    process serves any key.
//
// HTTP API:
//
//	PUT    /kv/{key}   body = value; returns after the write committed
//	GET    /kv/{key}   linearizable read through the replicated log
//	DELETE /kv/{key}   replicated deletion
//	GET    /healthz    liveness probe
//	GET    /stats      per-group counters, decision-log and state
//	                   fingerprints (what the smoke jobs diff across
//	                   nodes to prove zero divergence)
//
// Fault injection (-loss, -delay, for chaos drills) applies at the
// transport layer of THIS process only — the algorithms are never told.
//
// Durability: -data-dir makes the process durable — every group keeps a
// write-ahead log and periodic snapshots there, and a process killed
// with SIGKILL mid-load recovers its decision logs, state machines, and
// client sessions by restarting with the same directory. SIGTERM/SIGINT
// additionally snapshot-then-exit so the next start replays nothing.
// With -local the directory is a deployment root holding one
// subdirectory per in-process node.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"heardof/internal/core"
	"heardof/internal/lastvoting"
	"heardof/internal/live"
	"heardof/internal/livekv"
	"heardof/internal/otr"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hoserve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		local     = flag.Int("local", 0, "run an in-process cluster of this many nodes over the channel transport")
		id        = flag.Int("id", -1, "this process's index into -nodes (TCP deployment)")
		nodes     = flag.String("nodes", "", "comma-separated host:port consensus addresses, one per process (TCP deployment)")
		httpAddr  = flag.String("http", "127.0.0.1:8080", "HTTP listen address")
		groups    = flag.Int("groups", 1, "independent replication groups keys are sharded across")
		alg       = flag.String("alg", "lastvoting", "consensus algorithm: lastvoting or otr")
		timeout   = flag.Duration("timeout", 2*time.Millisecond, "per-round collection timeout")
		batch     = flag.Int("batch", 64, "max commands per proposal batch")
		opTimeout = flag.Duration("optimeout", 10*time.Second, "per-request commit deadline")
		loss      = flag.Float64("loss", 0, "injected iid message loss probability in [0, 1)")
		delay     = flag.Duration("delay", 0, "injected max message delay (uniform in [0, delay])")
		seed      = flag.Uint64("seed", 1, "fault-injection seed")
		dataDir   = flag.String("data-dir", "", "write-ahead log + snapshot directory; empty = volatile node (kill -9 with the same -data-dir recovers the full state)")
		snapEvery = flag.Int("snapevery", 0, "snapshot cadence in applied slots per group (0 = default, negative = never)")
		noFsync   = flag.Bool("nofsync", false, "skip per-commit fsync (durable against process crashes only)")
	)
	flag.Parse()

	if *loss < 0 || *loss >= 1 {
		return fmt.Errorf("loss %v outside [0, 1)", *loss)
	}
	cfg := livekv.Config{
		Groups:        *groups,
		RoundTimeout:  *timeout,
		MaxBatch:      *batch,
		OpTimeout:     *opTimeout,
		DataDir:       *dataDir,
		NoFsync:       *noFsync,
		SnapshotEvery: *snapEvery,
	}
	switch *alg {
	case "lastvoting":
		cfg.Algorithm, cfg.Msg = lastvoting.Algorithm{}, lastvoting.WireCodec{}
	case "otr":
		cfg.Algorithm, cfg.Msg = otr.Algorithm{}, otr.WireCodec{}
	default:
		return fmt.Errorf("unknown algorithm %q (want lastvoting or otr)", *alg)
	}

	faults := func(p int) *live.Faults {
		f := live.NewFaults(*seed + uint64(p)*0x9e3779b9)
		f.SetLoss(*loss)
		if *delay > 0 {
			f.SetDelay(0, *delay)
		}
		return f
	}

	var (
		serve   []*livekv.Node // nodes this HTTP endpoint balances over
		cleanup func()
	)
	switch {
	case *local > 0:
		cfg.Replicas = *local
		cluster, err := livekv.NewCluster(cfg, *seed)
		if err != nil {
			return err
		}
		for i := 0; i < cluster.N(); i++ {
			cluster.Faults(i).SetLoss(*loss)
			if *delay > 0 {
				cluster.Faults(i).SetDelay(0, *delay)
			}
			serve = append(serve, cluster.Node(i))
		}
		cluster.Start()
		cleanup = cluster.Close
		fmt.Fprintf(os.Stderr, "hoserve: local %d-node cluster, %d group(s), %s over channels, loss=%g\n",
			*local, *groups, *alg, *loss)
	case *nodes != "":
		addrs := strings.Split(*nodes, ",")
		for i := range addrs {
			addrs[i] = strings.TrimSpace(addrs[i])
		}
		cfg.Replicas = len(addrs)
		if *id < 0 || *id >= len(addrs) {
			return fmt.Errorf("id %d outside -nodes table of %d", *id, len(addrs))
		}
		ln, err := live.ListenTCP(addrs[*id])
		if err != nil {
			return fmt.Errorf("consensus listener: %w", err)
		}
		tr, err := live.NewTCP(core.ProcessID(*id), ln, addrs)
		if err != nil {
			return err
		}
		nd, err := livekv.NewNode(cfg, core.ProcessID(*id), live.WithFaults(tr, faults(*id)))
		if err != nil {
			return err
		}
		nd.Start()
		serve = []*livekv.Node{nd}
		cleanup = func() { nd.Close() }
		durability := "volatile"
		if *dataDir != "" {
			durability = "data-dir " + *dataDir
		}
		fmt.Fprintf(os.Stderr, "hoserve: node %d of %d at %s, %d group(s), %s over TCP, loss=%g, %s\n",
			*id, len(addrs), addrs[*id], *groups, *alg, *loss, durability)
	default:
		return errors.New("pick a deployment: -local N, or -id I -nodes a,b,c")
	}
	defer cleanup()

	var next atomic.Uint64
	pick := func() *livekv.Node {
		return serve[int(next.Add(1))%len(serve)]
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/kv/", func(w http.ResponseWriter, r *http.Request) {
		key := strings.TrimPrefix(r.URL.Path, "/kv/")
		if key == "" {
			http.Error(w, "missing key", http.StatusBadRequest)
			return
		}
		nd := pick()
		switch r.Method {
		case http.MethodPut, http.MethodPost:
			body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if err := nd.Put(r.Context(), key, string(body)); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
			fmt.Fprintln(w, "ok")
		case http.MethodGet:
			v, ok, err := nd.Get(r.Context(), key)
			if err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
			if !ok {
				http.NotFound(w, r)
				return
			}
			io.WriteString(w, v)
		case http.MethodDelete:
			if err := nd.Delete(r.Context(), key); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
			fmt.Fprintln(w, "ok")
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		for _, nd := range serve {
			writeStats(w, nd)
		}
	})

	httpLn, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		return fmt.Errorf("http listener: %w", err)
	}
	srv := &http.Server{Handler: mux}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(httpLn) }()
	fmt.Fprintf(os.Stderr, "hoserve: serving HTTP on %s\n", httpLn.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "hoserve: %v — shutting down\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		// Graceful exit on a durable node: snapshot every group and
		// truncate the logs, so the next start replays nothing. (A
		// kill -9 skips this and recovers via log replay instead —
		// same state, slower start.)
		for _, nd := range serve {
			if err := nd.Checkpoint(); err != nil {
				fmt.Fprintf(os.Stderr, "hoserve: shutdown checkpoint: %v\n", err)
			}
		}
		return nil
	}
}

// writeStats emits one node's per-group counters, one line per group.
// The slots/log/state/applied/committed fields must agree across every
// node of a deployment once traffic quiesces (the smoke scripts diff
// them); divergent must be 0 always; sync/pending/batches are
// node-local.
func writeStats(w io.Writer, nd *livekv.Node) {
	for _, st := range nd.Status() {
		h := fnv.New64a()
		io.WriteString(h, st.Fingerprint)
		fmt.Fprintf(w, "node %d group %d slots=%d log=%#x state=%#x applied=%d committed=%d divergent=%d sync=%d pending=%d batches=%d\n",
			nd.Self(), st.Group, st.LogLen, st.LogHash, h.Sum64(), st.Applied,
			st.Stats.Committed, st.Stats.Divergent, st.Stats.SyncDecisions,
			st.Stats.Pending, st.Stats.BatchesHeld)
	}
}
