// Command holint runs the repository's custom static-analysis suite
// (internal/analysis): five analyzers that enforce the codebase's
// load-bearing correctness contracts at compile time — determinism
// (nodeterminism), the pure model-checked step function (purestep),
// allocate-after-validate on wire decode paths (allocbound), errors.Is
// sentinel matching (errcmp), and the live layer's write-ahead barrier
// (syncbarrier). CI gates on `holint ./...`; a justified finding is
// suppressed in place with `//holint:allow <analyzer> <reason>`.
//
// Usage:
//
//	holint [-only name,name] [packages]
//
// Packages default to ./... relative to the current directory. Exit
// status 1 means findings (printed one per line, file:line:col:
// analyzer: message), 2 means the load itself failed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"heardof/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	all := analysis.All()
	if *list {
		for _, az := range all {
			fmt.Printf("%-15s %s\n", az.Name, az.Doc)
		}
		return
	}

	analyzers := all
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer, len(all))
		for _, az := range all {
			byName[az.Name] = az
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			az, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "holint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, az)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := analysis.Load("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "holint: %v\n", err)
		os.Exit(2)
	}
	diags := analysis.Run(prog, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "holint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
