// Command holint runs the repository's custom static-analysis suite
// (internal/analysis): nine analyzers that enforce the codebase's
// load-bearing correctness contracts at compile time — determinism
// (nodeterminism), the pure model-checked step function (purestep),
// allocate-after-validate on wire decode paths (allocbound), errors.Is
// sentinel matching (errcmp), the live layer's write-ahead barrier
// (syncbarrier), mixed atomic/plain access (atomicmix), goroutine
// termination (goleak), mutexes held across blocking operations and
// lock-order cycles (lockorder), and //holint:hotpath zero-alloc
// annotations (hotpath). CI gates on `holint ./...` and on the
// compiler-backed escape half of the hotpath gate, `holint -escape
// ./...`; a justified finding is suppressed in place with
// `//holint:allow <analyzer> <reason>`.
//
// Usage:
//
//	holint [-only name,name] [-escape] [packages]
//
// Packages default to ./... relative to the current directory. Exit
// status 1 means findings (printed one per line, file:line:col:
// analyzer: message, with a per-analyzer count summary on stderr), 2
// means the load itself failed. Packages the loader had to skip (a
// type error in the package or a dependency) are reported on stderr
// and count as findings: a skipped package is an unanalyzed one.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"heardof/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	escape := flag.Bool("escape", false, "run the compiler-backed hotpath escape gate (go build -gcflags=-m) instead of the analyzers")
	flag.Parse()

	all := analysis.All()
	if *list {
		for _, az := range all {
			fmt.Printf("%-15s %s\n", az.Name, az.Doc)
		}
		return
	}

	analyzers := all
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer, len(all))
		for _, az := range all {
			byName[az.Name] = az
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			az, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "holint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, az)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var diags []analysis.Diagnostic
	skipped := 0
	if *escape {
		var err error
		diags, err = analysis.CheckEscapes("", patterns...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "holint: %v\n", err)
			os.Exit(2)
		}
	} else {
		prog, err := analysis.Load("", patterns...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "holint: %v\n", err)
			os.Exit(2)
		}
		for _, s := range prog.Skipped {
			fmt.Fprintf(os.Stderr, "holint: skipped %s: %s\n", s.Path, s.Note)
		}
		skipped = len(prog.Skipped)
		diags = analysis.Run(prog, analyzers)
	}

	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 || skipped > 0 {
		fmt.Fprintf(os.Stderr, "holint: %d finding(s)%s%s\n", len(diags), countSummary(diags), skipSummary(skipped))
		os.Exit(1)
	}
}

// countSummary renders per-analyzer finding counts, deterministically
// ordered by the registry.
func countSummary(diags []analysis.Diagnostic) string {
	if len(diags) == 0 {
		return ""
	}
	counts := make(map[string]int)
	for _, d := range diags {
		counts[d.Analyzer]++
	}
	var parts []string
	for _, az := range analysis.All() {
		if n := counts[az.Name]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", az.Name, n))
			delete(counts, az.Name)
		}
	}
	if n := counts["holint"]; n > 0 { // directive-hygiene findings
		parts = append(parts, fmt.Sprintf("holint=%d", n))
	}
	return " (" + strings.Join(parts, " ") + ")"
}

// skipSummary notes unanalyzed packages in the failure line.
func skipSummary(n int) string {
	if n == 0 {
		return ""
	}
	return fmt.Sprintf(", %d package(s) skipped", n)
}
