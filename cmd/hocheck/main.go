// Command hocheck evaluates communication predicates against a recorded
// HO trace (JSON, see internal/tracefile). It reports which Table 1
// predicates hold, their witnesses, per-round kernels, and whether the
// trace's decisions satisfy consensus safety.
//
// The -live mode instead model-checks the live replica protocol at a
// small scope (see live.go in this package and internal/modelcheck).
//
// Usage:
//
//	hocheck trace.json
//	hocheck -demo            # generate, print and check a sample trace
//	hocheck -live            # model-check the replica protocol
//	hocheck -live -mutant all  # run the seeded-mutant regression suite
package main

import (
	"flag"
	"fmt"
	"os"

	"heardof/internal/adversary"
	"heardof/internal/core"
	"heardof/internal/otr"
	"heardof/internal/predicate"
	"heardof/internal/tracefile"
)

func main() {
	if err := run(); err != nil {
		if v, ok := err.(errVerdict); ok {
			fmt.Fprintln(os.Stderr, v.msg)
		} else {
			fmt.Fprintln(os.Stderr, "hocheck:", err)
		}
		os.Exit(1)
	}
}

func run() error {
	demo := flag.Bool("demo", false, "generate and check a demo trace instead of reading a file")
	liveMode := flag.Bool("live", false, "model-check the live replica protocol instead of a trace")
	lf := liveFlags{}
	flag.IntVar(&lf.n, "n", 3, "live: number of replicas")
	flag.Uint64Var(&lf.slots, "slots", 2, "live: consensus slots to drive (one submission each)")
	flag.IntVar(&lf.rounds, "rounds", 2, "live: per-slot round bound (OTR decides at 2, LastVoting needs 5)")
	flag.IntVar(&lf.crash, "crash", 1, "live: crash-stop budget")
	flag.IntVar(&lf.recover, "recover", 0, "live: crash-recovery budget (reboot a replica from its write-ahead state)")
	flag.IntVar(&lf.states, "states", 150_000, "live: state budget (0 = the 2M default)")
	flag.IntVar(&lf.maxBatch, "maxbatch", 1, "live: max entries per batch (0 = core default)")
	flag.StringVar(&lf.alg, "alg", "otr", "live: consensus algorithm (otr or lastvoting)")
	flag.StringVar(&lf.mutant, "mutant", "", "live: run seeded-mutant probes (locked-vote, drift-livelock, stall-window, or all)")
	flag.Parse()

	if *liveMode {
		return runLive(lf)
	}

	var tr *core.Trace
	switch {
	case *demo:
		var err error
		if tr, err = demoTrace(); err != nil {
			return err
		}
		data, err := tracefile.Encode(tr)
		if err != nil {
			return err
		}
		fmt.Printf("demo trace:\n%s\n\n", data)
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			return err
		}
		if tr, err = tracefile.Decode(data); err != nil {
			return err
		}
	default:
		return fmt.Errorf("usage: hocheck <trace.json> | hocheck -demo")
	}

	fmt.Printf("trace: n=%d, %d rounds, %d decided\n", tr.N, tr.NumRounds(), tr.DecidedSet().Len())

	fmt.Println("\npredicates:")
	checks := []predicate.Predicate{
		predicate.Potr{},
		predicate.PrestrOtr{},
		predicate.MajorityEveryRound(tr.N),
		predicate.NonEmptyKernels{},
		predicate.UniformRoundExists{},
	}
	for _, p := range checks {
		fmt.Printf("  %-22s %v\n", p.Name(), p.Holds(tr))
	}
	if r0, pi0, ok := predicate.FindPotrWitness(tr); ok {
		fmt.Printf("  Potr witness: r0=%d Π0=%v\n", r0, pi0)
	}
	if r0, pi0, ok := predicate.FindPrestrOtrWitness(tr); ok {
		fmt.Printf("  PrestrOtr witness: r0=%d Π0=%v\n", r0, pi0)
	}

	fmt.Println("\nper-round kernels:")
	all := core.FullSet(tr.N)
	for r := core.Round(1); r <= tr.NumRounds(); r++ {
		fmt.Printf("  round %-3d kernel %v\n", r, tr.Kernel(r, all))
	}

	if err := tr.CheckConsensusSafety(); err != nil {
		return fmt.Errorf("SAFETY VIOLATION: %w", err)
	}
	fmt.Println("\nsafety: agreement and integrity hold")
	return nil
}

// demoTrace runs OneThirdRule under a Potr-realizing adversary.
func demoTrace() (*core.Trace, error) {
	n := 5
	initial := []core.Value{3, 1, 4, 1, 5}
	prov := adversary.ScriptedPotr{R0: 3, Pi0: core.FullSet(n)}
	ru, err := core.NewRunner(otr.Algorithm{}, initial, prov)
	if err != nil {
		return nil, err
	}
	tr, _ := ru.Run(12)
	return tr, nil
}
