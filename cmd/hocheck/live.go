// The -live mode: small-scope model checking of the live replica
// protocol (internal/modelcheck over live.ReplicaCore), plus the
// seeded-mutant regression probes. Exit status is the verdict: 0 means
// the explored scope is clean (or every requested mutant was killed),
// 1 means a safety violation was found or a mutant survived.

package main

import (
	"fmt"

	"heardof/internal/core"
	"heardof/internal/lastvoting"
	"heardof/internal/modelcheck"
	"heardof/internal/otr"
)

// liveFlags carries the -live mode's command-line configuration.
type liveFlags struct {
	n        int
	slots    uint64
	rounds   int
	crash    int
	recover  int
	states   int
	maxBatch int
	alg      string
	mutant   string
}

// errVerdict marks a checker verdict (violation or surviving mutant):
// reported without the "hocheck:" error prefix, exit status 1.
type errVerdict struct{ msg string }

func (e errVerdict) Error() string { return e.msg }

// runLive dispatches the -live mode: mutant probes when -mutant is
// given, otherwise an exploration of the configured scope.
func runLive(f liveFlags) error {
	if f.mutant != "" {
		return runMutants(f)
	}
	return runExplore(f)
}

// runExplore model-checks the unmutated protocol at the flag scope.
func runExplore(f liveFlags) error {
	m := modelcheck.ReplicaModel{
		N:              f.n,
		Slots:          f.slots,
		MaxRound:       core.Round(f.rounds),
		CrashBudget:    f.crash,
		RecoveryBudget: f.recover,
		MaxStates:      f.states,
		MaxBatch:       f.maxBatch,
	}
	switch f.alg {
	case "otr":
		m.Algorithm, m.Msg = otr.Algorithm{}, otr.WireCodec{}
	case "lastvoting":
		m.Algorithm, m.Msg = lastvoting.Algorithm{}, lastvoting.WireCodec{}
	default:
		return fmt.Errorf("unknown -alg %q (want otr or lastvoting)", f.alg)
	}
	// One proposer, one submission per slot: with MaxBatch 1 each
	// submission rides its own slot, and unanimous proposals let OTR
	// decide at the MaxRound=2 scope (see internal/modelcheck).
	for s := uint64(1); s <= f.slots; s++ {
		m.Workload = append(m.Workload, modelcheck.Submission{
			Replica: 0, Client: s, Seq: 1, Cmd: byte('a' + s - 1),
		})
	}

	model, err := modelcheck.NewReplicaModel(m)
	if err != nil {
		return err
	}
	fmt.Printf("model: live replica protocol, alg=%s n=%d slots=%d rounds=%d crash=%d recover=%d\n",
		f.alg, f.n, f.slots, f.rounds, f.crash, f.recover)
	res, err := model.Explore()
	if err != nil {
		return err
	}
	closure := "full closure"
	if !res.Complete {
		closure = fmt.Sprintf("bounded at %d states", f.states)
	}
	fmt.Printf("explored: %d states, %d transitions (%s), deepest commit index %d\n",
		res.States, res.Transitions, closure, res.MaxApplied)
	for _, fd := range res.Findings {
		fmt.Printf("finding: %s (%d states): %s\n", fd.Kind, fd.Count, fd.Message)
	}
	if res.Violation != nil {
		return errVerdict{fmt.Sprintf("SAFETY VIOLATION [%s]: %s", res.Violation.Kind, res.Violation.Message)}
	}
	fmt.Println("safety: no reachable violation (agreement, integrity, apply-once, commit monotonicity, batch GC)")
	return nil
}

// mutantProbe pairs a probe with the outcome that counts as a kill.
type mutantProbe struct {
	name string
	// run executes the scripted schedule; enabled seeds the bug.
	run func(enabled bool) modelcheck.ProbeResult
	// killed reports whether the mutated run was flagged the right way.
	killed func(modelcheck.ProbeResult) bool
	// what the mutant reintroduces, for the report.
	desc string
}

var mutantProbes = []mutantProbe{
	{
		name: "locked-vote",
		run:  modelcheck.CheckFreshRetry,
		killed: func(r modelcheck.ProbeResult) bool {
			return r.Violation != nil && r.Violation.Kind == "agreement"
		},
		desc: "fresh-instance slot retry discarding LastVoting's locked vote (split decision)",
	},
	{
		name: "drift-livelock",
		run:  modelcheck.CheckDrift,
		killed: func(r modelcheck.ProbeResult) bool {
			return r.Violation == nil && hasFinding(r, "drift-livelock")
		},
		desc: "jump rule removed: lockstep survivors drift one round apart forever",
	},
	{
		name: "stall-window",
		run:  modelcheck.CheckStall,
		killed: func(r modelcheck.ProbeResult) bool {
			return r.Violation == nil && hasFinding(r, "stall-window")
		},
		desc: "proposer crash inside the dissemination window strands a decided batch",
	},
	{
		name: "forget-vote",
		run:  modelcheck.CheckForgetVote,
		killed: func(r modelcheck.ProbeResult) bool {
			return r.Violation != nil && r.Violation.Kind == "agreement"
		},
		desc: "crash recovery discarding the persisted locked vote (split decision)",
	},
}

func hasFinding(r modelcheck.ProbeResult, kind string) bool {
	for _, f := range r.Findings {
		if f.Kind == kind {
			return true
		}
	}
	return false
}

// runMutants runs the requested probes. A mutant counts as killed only
// when the seeded run is flagged AND the identical unmutated control
// schedule is clean — a probe failing its control proves nothing.
func runMutants(f liveFlags) error {
	var selected []mutantProbe
	for _, p := range mutantProbes {
		if f.mutant == "all" || f.mutant == p.name {
			selected = append(selected, p)
		}
	}
	if len(selected) == 0 {
		return fmt.Errorf("unknown -mutant %q (want locked-vote, drift-livelock, stall-window, forget-vote, or all)", f.mutant)
	}
	survived := 0
	for _, p := range selected {
		mutated := p.run(true)
		control := p.run(false)
		switch {
		case !p.killed(mutated):
			survived++
			fmt.Printf("mutant %-14s SURVIVED: checker did not flag it (%s)\n", p.name, p.desc)
		case control.Flagged():
			survived++
			fmt.Printf("mutant %-14s INVALID: control run flagged too (violation=%v findings=%v)\n",
				p.name, control.Violation, control.Findings)
		default:
			verdict := "finding"
			if mutated.Violation != nil {
				verdict = fmt.Sprintf("violation [%s]", mutated.Violation.Kind)
			}
			fmt.Printf("mutant %-14s killed (%s; control clean) — %s\n", p.name, verdict, p.desc)
		}
	}
	if survived > 0 {
		return errVerdict{fmt.Sprintf("%d of %d mutants survived", survived, len(selected))}
	}
	fmt.Printf("all %d mutants killed\n", len(selected))
	return nil
}
