// Command hobench regenerates every experiment table of the reproduction
// (DESIGN.md §4, EXPERIMENTS.md): the good-period length measurements of
// Theorems 3, 5, 6 and 7, the Corollary 4 trade-off, the §4.2.2(c) full
// stack, the randomized correctness checks, the failure-detector baseline
// comparison, the message-loss sweep, and the design-choice ablations.
//
// Usage:
//
//	hobench                 # run everything, aligned-text output
//	hobench -exp e1,e9      # run selected experiments
//	hobench -markdown       # emit EXPERIMENTS.md-style markdown
//	hobench -seed 7         # change the base seed
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"heardof/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hobench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		expFlag  = flag.String("exp", "all", "comma-separated experiment ids (e1..e9, ea) or 'all'")
		seed     = flag.Uint64("seed", 1, "base seed for all randomized runs")
		markdown = flag.Bool("markdown", false, "emit markdown tables instead of aligned text")
	)
	flag.Parse()

	runners := map[string]func(uint64) *experiments.Table{
		"e1": experiments.E1Theorem3,
		"e2": experiments.E2Corollary4,
		"e3": experiments.E3InitialVsNonInitial,
		"e4": experiments.E4Theorem6,
		"e5": experiments.E5Theorem7,
		"e6": experiments.E6FullStack,
		"e7": experiments.E7SafetyAndLiveness,
		"e8": experiments.E8Uniformity,
		"e9": experiments.E9LossSweep,
		"ea": experiments.Ablations,
	}
	order := []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "ea"}

	var selected []string
	if *expFlag == "all" {
		selected = order
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.ToLower(strings.TrimSpace(id))
			if _, ok := runners[id]; !ok {
				return fmt.Errorf("unknown experiment %q (want e1..e9 or ea)", id)
			}
			selected = append(selected, id)
		}
	}

	for _, id := range selected {
		table := runners[id](*seed)
		var err error
		if *markdown {
			err = table.Markdown(os.Stdout)
		} else {
			err = table.Render(os.Stdout)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
