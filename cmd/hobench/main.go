// Command hobench regenerates every experiment table of the reproduction
// (DESIGN.md §4, EXPERIMENTS.md): the good-period length measurements of
// Theorems 3, 5, 6 and 7, the Corollary 4 trade-off, the §4.2.2(c) full
// stack, the randomized correctness checks, the failure-detector baseline
// comparison, the message-loss sweep, and the design-choice ablations.
//
// Tables are computed through the internal/sweep worker pool: independent
// (configuration, seed) cells fan out across -parallel workers and are
// folded back in cell order, so the output is byte-identical for every
// worker count. Ctrl-C cancels the sweep; the partially computed tables
// are still printed, with a "sweep aborted" note.
//
// Usage:
//
//	hobench                 # run everything on all cores, aligned text
//	hobench -exp e1,e9      # run selected experiments
//	hobench -markdown       # emit EXPERIMENTS.md-style markdown
//	hobench -seed 7         # change the base seed
//	hobench -parallel 1     # sequential reference run (same bytes)
//	hobench -timeout 30s    # per-cell budget; overruns become table notes
//	hobench -progress       # live cell progress on stderr
//	hobench -cpuprofile cpu.pprof -memprofile mem.pprof   # pprof output
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"heardof/internal/experiments"
	"heardof/internal/profiling"
	"heardof/internal/sweep"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hobench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		expFlag  = flag.String("exp", "all", "comma-separated experiment ids (e1..e11, ea) or 'all'")
		seed     = flag.Uint64("seed", 1, "base seed for all randomized runs")
		markdown = flag.Bool("markdown", false, "emit markdown tables instead of aligned text")
		parallel = flag.Int("parallel", 0, "sweep worker goroutines (0 = all cores, 1 = sequential)")
		timeout  = flag.Duration("timeout", 0, "per-cell timeout (0 = none); timed-out cells become table notes")
		progress = flag.Bool("progress", false, "report live cell progress on stderr")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write an allocation profile to this file on exit")
		liveCmp  = flag.Bool("live", false, "append E12, the simulated-vs-live comparison (real time: NOT byte-reproducible, excluded from 'all')")
	)
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil {
			fmt.Fprintln(os.Stderr, "hobench: profile:", perr)
		}
	}()

	var selected []string
	if *expFlag == "all" {
		selected = experiments.IDs()
	} else {
		valid := make(map[string]bool, len(experiments.IDs()))
		for _, id := range experiments.IDs() {
			valid[id] = true
		}
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.ToLower(strings.TrimSpace(id))
			if !valid[id] {
				return fmt.Errorf("unknown experiment %q (want e1..e11 or ea)", id)
			}
			selected = append(selected, id)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cfg := experiments.Config{Seed: *seed, Parallel: *parallel, CellTimeout: *timeout}
	if *progress {
		cfg.OnProgress = func(p sweep.Progress) {
			id, _, _ := strings.Cut(p.Last.Label, "/")
			fmt.Fprintf(os.Stderr, "\r%s: %d/%d cells", id, p.Done, p.Total)
			if p.Done == p.Total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	runner := experiments.New(cfg)

	for _, id := range selected {
		table, err := runner.Run(ctx, id)
		if err != nil {
			return err
		}
		if *markdown {
			err = table.Markdown(os.Stdout)
		} else {
			err = table.Render(os.Stdout)
		}
		if err != nil {
			return err
		}
		if ctx.Err() != nil {
			if *progress {
				fmt.Fprintln(os.Stderr) // terminate the partial "\r... cells" line
			}
			return fmt.Errorf("interrupted after %s: %w", table.ID, ctx.Err())
		}
	}

	// E12 runs the live runtime against real clocks, so it is opt-in and
	// always last: everything above it on stdout stays byte-reproducible.
	if *liveCmp {
		table := runner.E12Live(ctx)
		if *markdown {
			err = table.Markdown(os.Stdout)
		} else {
			err = table.Render(os.Stdout)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
