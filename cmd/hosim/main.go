// Command hosim runs one consensus stack on the §4.1 system-model
// simulator and reports the outcome: which processes decided, when, over
// which rounds, and whether the recorded trace satisfies the Table 1
// communication predicates.
//
// Usage:
//
//	hosim -n 7 -alg otr -proto alg2 -bad 150 -crash "1@20:60,4@50:120"
//	hosim -n 7 -f 2 -alg otr -proto alg3+translation
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"heardof/internal/core"
	"heardof/internal/lastvoting"
	"heardof/internal/otr"
	"heardof/internal/predicate"
	"heardof/internal/predimpl"
	"heardof/internal/simtime"
	"heardof/internal/translation"
	"heardof/internal/uv"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hosim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n       = flag.Int("n", 5, "number of processes (≤ 64)")
		f       = flag.Int("f", 1, "resilience parameter for alg3/translation")
		phi     = flag.Float64("phi", 1, "φ = Φ+/Φ− (normalized upper step gap)")
		delta   = flag.Float64("delta", 5, "δ (normalized transmission bound)")
		algName = flag.String("alg", "otr", "HO algorithm: otr | uv | lastvoting")
		proto   = flag.String("proto", "alg2", "implementation layer: alg2 | alg3 | alg3+translation")
		badLen  = flag.Float64("bad", 0, "length of an initial bad period (0 = good from the start)")
		crash   = flag.String("crash", "", "crash schedule, e.g. \"1@20:60,4@50:-\" (process@crash:recover, '-' = never)")
		horizon = flag.Float64("horizon", 5000, "simulation horizon")
		seed    = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()

	var alg core.Algorithm
	switch *algName {
	case "otr":
		alg = otr.Algorithm{}
	case "uv":
		alg = uv.Algorithm{}
	case "lastvoting":
		alg = lastvoting.Algorithm{}
	default:
		return fmt.Errorf("unknown algorithm %q", *algName)
	}

	kind := predimpl.UseAlg2
	switch *proto {
	case "alg2":
	case "alg3":
		kind = predimpl.UseAlg3
	case "alg3+translation":
		kind = predimpl.UseAlg3
		alg = translation.Algorithm{Inner: alg, F: *f}
	default:
		return fmt.Errorf("unknown protocol %q", *proto)
	}

	crashes, err := parseCrashes(*crash)
	if err != nil {
		return err
	}

	pi0 := core.FullSet(*n)
	goodKind := simtime.GoodDown
	if kind == predimpl.UseAlg3 {
		goodKind = simtime.GoodArbitrary
		pi0 = core.FullSet(*n - *f)
	}
	var periods []simtime.Period
	if *badLen > 0 {
		periods = append(periods, simtime.Period{Start: 0, Kind: simtime.Bad})
	}
	periods = append(periods, simtime.Period{Start: *badLen, Kind: goodKind, Pi0: pi0})

	initial := make([]core.Value, *n)
	for i := range initial {
		initial[i] = core.Value(i%3 + 1)
	}

	stack, err := predimpl.BuildStack(predimpl.StackConfig{
		Kind:      kind,
		F:         *f,
		Algorithm: alg,
		Initial:   initial,
		Sim: simtime.Config{
			N: *n, Phi: *phi, Delta: *delta,
			Periods: periods, Crashes: crashes, Seed: *seed,
		},
	})
	if err != nil {
		return err
	}

	fmt.Printf("running %s over %s: n=%d f=%d φ=%v δ=%v, good period (%s) from t=%v\n",
		alg.Name(), kind, *n, *f, *phi, *delta, goodKind, *badLen)

	last := stack.RunUntilAllDecided(pi0, *horizon)
	tr := stack.Trace()

	fmt.Printf("\nper-process outcome:\n")
	for p := 0; p < *n; p++ {
		d := stack.Recorder.Decision(core.ProcessID(p))
		if d.Decided {
			fmt.Printf("  p%d: decided %d at t=%.2f (round %d)\n", p, d.Value, d.At, d.Round)
		} else {
			fmt.Printf("  p%d: undecided\n", p)
		}
	}
	if last >= 0 {
		fmt.Printf("\nall of π0 %v decided by t=%.2f\n", pi0, last)
	} else {
		fmt.Printf("\nπ0 %v did NOT fully decide by the horizon %v\n", pi0, *horizon)
	}

	if err := tr.CheckConsensusSafety(); err != nil {
		return fmt.Errorf("SAFETY VIOLATION: %w", err)
	}
	fmt.Println("safety: agreement and integrity hold")

	fmt.Printf("\ntrace: %d rounds recorded\n", tr.NumRounds())
	for _, p := range []predicate.Predicate{predicate.Potr{}, predicate.PrestrOtr{}} {
		fmt.Printf("  %-10s holds: %v\n", p.Name(), p.Holds(tr))
	}

	st := stack.Sim.Stats()
	fmt.Printf("\nstats: steps=%d sends=%d delivered=%d dropped=%d purged=%d crashes=%d recoveries=%d stable-writes=%d\n",
		st.Steps, st.Sends, st.Delivered, st.Dropped, st.Purged, st.Crashes, st.Recoveries,
		stack.Stores.TotalWrites())
	return nil
}

// parseCrashes parses "p@crash:recover,..." with '-' for no recovery.
func parseCrashes(s string) ([]simtime.CrashEvent, error) {
	if s == "" {
		return nil, nil
	}
	var out []simtime.CrashEvent
	for _, part := range strings.Split(s, ",") {
		var ev simtime.CrashEvent
		at := strings.Split(part, "@")
		if len(at) != 2 {
			return nil, fmt.Errorf("bad crash spec %q (want p@crash:recover)", part)
		}
		p, err := strconv.Atoi(at[0])
		if err != nil {
			return nil, fmt.Errorf("bad process id in %q: %w", part, err)
		}
		ev.P = core.ProcessID(p)
		times := strings.Split(at[1], ":")
		if len(times) != 2 {
			return nil, fmt.Errorf("bad crash spec %q (want p@crash:recover)", part)
		}
		if ev.At, err = strconv.ParseFloat(times[0], 64); err != nil {
			return nil, fmt.Errorf("bad crash time in %q: %w", part, err)
		}
		if times[1] == "-" {
			ev.RecoverAt = -1
		} else if ev.RecoverAt, err = strconv.ParseFloat(times[1], 64); err != nil {
			return nil, fmt.Errorf("bad recovery time in %q: %w", part, err)
		}
		out = append(out, ev)
	}
	return out, nil
}
