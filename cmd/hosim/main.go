// Command hosim runs one consensus stack on the §4.1 system-model
// simulator and reports the outcome: which processes decided, when, over
// which rounds, and whether the recorded trace satisfies the Table 1
// communication predicates.
//
// With -seeds K > 1 it instead sweeps the same scenario across K seeds
// through the internal/sweep worker pool (-parallel workers, optional
// -timeout per seed) and reports one line per seed plus aggregate
// statistics — the quick way to ask "does this schedule decide, and how
// fast, across many executions?".
//
// Usage:
//
//	hosim -n 7 -alg otr -proto alg2 -bad 150 -crash "1@20:60,4@50:120"
//	hosim -n 7 -f 2 -alg otr -proto alg3+translation
//	hosim -n 7 -bad 150 -seeds 100 -parallel 8
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"time"

	"heardof/internal/core"
	"heardof/internal/lastvoting"
	"heardof/internal/otr"
	"heardof/internal/predicate"
	"heardof/internal/predimpl"
	"heardof/internal/profiling"
	"heardof/internal/simtime"
	"heardof/internal/sweep"
	"heardof/internal/translation"
	"heardof/internal/uv"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hosim:", err)
		os.Exit(1)
	}
}

// scenario is everything a single simulation needs except its seed.
type scenario struct {
	n, f     int
	phi      float64
	delta    float64
	alg      core.Algorithm
	kind     predimpl.ProtoKind
	goodKind simtime.PeriodKind
	badLen   float64
	periods  []simtime.Period
	crashes  []simtime.CrashEvent
	pi0      core.PIDSet
	horizon  simtime.Time
}

func (sc *scenario) build(seed uint64) (*predimpl.Stack, error) {
	initial := make([]core.Value, sc.n)
	for i := range initial {
		initial[i] = core.Value(i%3 + 1)
	}
	return predimpl.BuildStack(predimpl.StackConfig{
		Kind:      sc.kind,
		F:         sc.f,
		Algorithm: sc.alg,
		Initial:   initial,
		Sim: simtime.Config{
			N: sc.n, Phi: sc.phi, Delta: sc.delta,
			Periods: sc.periods, Crashes: sc.crashes, Seed: seed,
		},
	})
}

func run() error {
	var (
		n        = flag.Int("n", 5, "number of processes (≤ 64)")
		f        = flag.Int("f", 1, "resilience parameter for alg3/translation")
		phi      = flag.Float64("phi", 1, "φ = Φ+/Φ− (normalized upper step gap)")
		delta    = flag.Float64("delta", 5, "δ (normalized transmission bound)")
		algName  = flag.String("alg", "otr", "HO algorithm: otr | uv | lastvoting")
		proto    = flag.String("proto", "alg2", "implementation layer: alg2 | alg3 | alg3+translation")
		badLen   = flag.Float64("bad", 0, "length of an initial bad period (0 = good from the start)")
		crash    = flag.String("crash", "", "crash schedule, e.g. \"1@20:60,4@50:-\" (process@crash:recover, '-' = never)")
		horizon  = flag.Float64("horizon", 5000, "simulation horizon")
		seed     = flag.Uint64("seed", 1, "simulation seed (base seed when sweeping)")
		seeds    = flag.Int("seeds", 1, "number of seeds to sweep (seed, seed+1, ...); 1 = single detailed run")
		parallel = flag.Int("parallel", 0, "sweep worker goroutines (0 = all cores)")
		timeout  = flag.Duration("timeout", 0, "per-seed timeout when sweeping (0 = none)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil {
			fmt.Fprintln(os.Stderr, "hosim: profile:", perr)
		}
	}()

	var alg core.Algorithm
	switch *algName {
	case "otr":
		alg = otr.Algorithm{}
	case "uv":
		alg = uv.Algorithm{}
	case "lastvoting":
		alg = lastvoting.Algorithm{}
	default:
		return fmt.Errorf("unknown algorithm %q", *algName)
	}

	kind := predimpl.UseAlg2
	switch *proto {
	case "alg2":
	case "alg3":
		kind = predimpl.UseAlg3
	case "alg3+translation":
		kind = predimpl.UseAlg3
		alg = translation.Algorithm{Inner: alg, F: *f}
	default:
		return fmt.Errorf("unknown protocol %q", *proto)
	}

	crashes, err := parseCrashes(*crash)
	if err != nil {
		return err
	}

	pi0 := core.FullSet(*n)
	goodKind := simtime.GoodDown
	if kind == predimpl.UseAlg3 {
		goodKind = simtime.GoodArbitrary
		pi0 = core.FullSet(*n - *f)
	}
	var periods []simtime.Period
	if *badLen > 0 {
		periods = append(periods, simtime.Period{Start: 0, Kind: simtime.Bad})
	}
	periods = append(periods, simtime.Period{Start: *badLen, Kind: goodKind, Pi0: pi0})

	sc := &scenario{
		n: *n, f: *f, phi: *phi, delta: *delta,
		alg: alg, kind: kind, goodKind: goodKind, badLen: *badLen,
		periods: periods, crashes: crashes, pi0: pi0,
		horizon: *horizon,
	}
	if *seeds > 1 {
		return runSweep(sc, *seed, *seeds, *parallel, *timeout)
	}
	return runSingle(sc, *seed)
}

// runSingle is the classic detailed single-simulation report.
func runSingle(sc *scenario, seed uint64) error {
	stack, err := sc.build(seed)
	if err != nil {
		return err
	}

	fmt.Printf("running %s over %s: n=%d f=%d φ=%v δ=%v, good period (%s) from t=%v\n",
		sc.alg.Name(), sc.kind, sc.n, sc.f, sc.phi, sc.delta, sc.goodKind, sc.badLen)

	last := stack.RunUntilAllDecided(sc.pi0, sc.horizon)
	tr := stack.Trace()

	fmt.Printf("\nper-process outcome:\n")
	for p := 0; p < sc.n; p++ {
		d := stack.Recorder.Decision(core.ProcessID(p))
		if d.Decided {
			fmt.Printf("  p%d: decided %d at t=%.2f (round %d)\n", p, d.Value, d.At, d.Round)
		} else {
			fmt.Printf("  p%d: undecided\n", p)
		}
	}
	if last >= 0 {
		fmt.Printf("\nall of π0 %v decided by t=%.2f\n", sc.pi0, last)
	} else {
		fmt.Printf("\nπ0 %v did NOT fully decide by the horizon %v\n", sc.pi0, sc.horizon)
	}

	if err := tr.CheckConsensusSafety(); err != nil {
		return fmt.Errorf("SAFETY VIOLATION: %w", err)
	}
	fmt.Println("safety: agreement and integrity hold")

	fmt.Printf("\ntrace: %d rounds recorded\n", tr.NumRounds())
	for _, p := range []predicate.Predicate{predicate.Potr{}, predicate.PrestrOtr{}} {
		fmt.Printf("  %-10s holds: %v\n", p.Name(), p.Holds(tr))
	}

	st := stack.Sim.Stats()
	fmt.Printf("\nstats: steps=%d sends=%d delivered=%d dropped=%d purged=%d crashes=%d recoveries=%d stable-writes=%d\n",
		st.Steps, st.Sends, st.Delivered, st.Dropped, st.Purged, st.Crashes, st.Recoveries,
		stack.Stores.TotalWrites())
	return nil
}

// seedOutcome is one sweep cell's result.
type seedOutcome struct {
	seed    uint64
	decided bool
	at      simtime.Time
	rounds  core.Round
	writes  int64
	safety  error
}

// runSweep fans the scenario out across seeds through the sweep engine
// and prints per-seed lines (in seed order) plus aggregate statistics.
func runSweep(sc *scenario, base uint64, seeds, parallel int, timeout time.Duration) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fmt.Printf("sweeping %s over %s: n=%d f=%d φ=%v δ=%v, good period (%s) from t=%v, seeds %d..%d\n\n",
		sc.alg.Name(), sc.kind, sc.n, sc.f, sc.phi, sc.delta, sc.goodKind, sc.badLen,
		base, base+uint64(seeds)-1)

	cells := make([]sweep.Cell, seeds)
	for i := range cells {
		seed := base + uint64(i)
		cells[i] = sweep.Cell{
			Label: fmt.Sprintf("seed=%d", seed),
			Run: func(context.Context) (any, error) {
				stack, err := sc.build(seed)
				if err != nil {
					return nil, err
				}
				out := seedOutcome{seed: seed}
				out.at = stack.RunUntilAllDecided(sc.pi0, sc.horizon)
				out.decided = out.at >= 0
				tr := stack.Trace()
				out.rounds = tr.NumRounds()
				out.writes = stack.Stores.TotalWrites()
				out.safety = tr.CheckConsensusSafety()
				return out, nil
			},
		}
	}

	eng := &sweep.Engine{Workers: parallel, CellTimeout: timeout}
	results, sweepErr := eng.Run(ctx, cells)

	var (
		decided  int
		times    []float64
		writes   int64
		unsafe   int
		timedOut int
		skipped  int
	)
	for _, res := range results {
		switch {
		case res.TimedOut:
			timedOut++
			fmt.Printf("  %-12s timed out after %v\n", res.Label, timeout)
			continue
		case res.Skipped():
			skipped++
			continue
		case res.Err != nil:
			fmt.Printf("  %-12s error: %v\n", res.Label, res.Err)
			continue
		}
		out := res.Value.(seedOutcome)
		status := "undecided"
		if out.decided {
			status = fmt.Sprintf("decided at t=%.2f", out.at)
			decided++
			times = append(times, float64(out.at))
		}
		safety := "safe"
		if out.safety != nil {
			safety = "SAFETY VIOLATION: " + out.safety.Error()
			unsafe++
		}
		fmt.Printf("  %-12s %-22s rounds=%-4d stable-writes=%-5d %s\n",
			res.Label, status, out.rounds, out.writes, safety)
		writes += out.writes
	}

	if sweepErr != nil {
		fmt.Printf("\nsweep aborted (%v): %d of %d seeds not run\n", sweepErr, skipped, seeds)
	}
	fmt.Printf("\naggregate: decided %d/%d", decided, seeds)
	if timedOut > 0 {
		fmt.Printf(" (%d timed out)", timedOut)
	}
	if len(times) > 0 {
		sort.Float64s(times)
		fmt.Printf(", decision time min/median/max = %.2f/%.2f/%.2f",
			times[0], times[len(times)/2], times[len(times)-1])
	}
	fmt.Printf(", total stable writes %d\n", writes)
	if unsafe > 0 {
		return fmt.Errorf("%d seeds violated consensus safety", unsafe)
	}
	if sweepErr != nil {
		return fmt.Errorf("interrupted: %w", sweepErr)
	}
	return nil
}

// parseCrashes parses "p@crash:recover,..." with '-' for no recovery.
func parseCrashes(s string) ([]simtime.CrashEvent, error) {
	if s == "" {
		return nil, nil
	}
	var out []simtime.CrashEvent
	for _, part := range strings.Split(s, ",") {
		var ev simtime.CrashEvent
		at := strings.Split(part, "@")
		if len(at) != 2 {
			return nil, fmt.Errorf("bad crash spec %q (want p@crash:recover)", part)
		}
		p, err := strconv.Atoi(at[0])
		if err != nil {
			return nil, fmt.Errorf("bad process id in %q: %w", part, err)
		}
		ev.P = core.ProcessID(p)
		times := strings.Split(at[1], ":")
		if len(times) != 2 {
			return nil, fmt.Errorf("bad crash spec %q (want p@crash:recover)", part)
		}
		if ev.At, err = strconv.ParseFloat(times[0], 64); err != nil {
			return nil, fmt.Errorf("bad crash time in %q: %w", part, err)
		}
		if times[1] == "-" {
			ev.RecoverAt = -1
		} else if ev.RecoverAt, err = strconv.ParseFloat(times[1], 64); err != nil {
			return nil, fmt.Errorf("bad recovery time in %q: %w", part, err)
		}
		out = append(out, ev)
	}
	return out, nil
}
