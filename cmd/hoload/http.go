// The -http client mode: instead of driving the deterministic simulator,
// hoload becomes a real closed-loop HTTP load generator against a
// hoserve deployment — the end-to-end path of the live runtime. Each
// client owns a disjoint key set and writes strictly increasing values,
// so linearizability has a machine-checkable shape: a GET must return
// exactly the client's last committed PUT for that key (hoserve reads go
// through the replicated log, and the PUT returned only after its
// commit). Any stale read is counted as a violation and fails the run.
//
// Unlike the simulator modes, output here depends on host speed and
// scheduling; it is measurement, not a reproducible table, and it is
// deliberately NOT part of CI's byte-determinism comparisons.

package main

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"heardof/internal/xrand"
)

// httpConfig carries the flags of the HTTP client mode.
type httpConfig struct {
	servers    []string
	clients    int
	ops        int
	writeRatio float64
	keysPerCl  int
	opTimeout  time.Duration
	seed       uint64
}

// httpTally aggregates one client's results.
type httpTally struct {
	ops        int
	errors     []error
	violations []string
	latencies  []time.Duration
}

// runHTTP drives the closed loop and prints the aggregate report.
// It returns an error (non-zero exit) on any transport error or
// linearizability violation.
func runHTTP(cfg httpConfig) error {
	if cfg.clients < 1 || cfg.ops < 1 {
		return fmt.Errorf("http mode needs ≥ 1 client and ≥ 1 op (got %d, %d)", cfg.clients, cfg.ops)
	}
	for i := range cfg.servers {
		cfg.servers[i] = strings.TrimSpace(cfg.servers[i])
		if cfg.servers[i] == "" {
			return fmt.Errorf("empty server address in -http list")
		}
	}
	if cfg.keysPerCl < 1 {
		cfg.keysPerCl = 4
	}
	if cfg.opTimeout <= 0 {
		cfg.opTimeout = 15 * time.Second
	}
	perClient := cfg.ops / cfg.clients
	if perClient < 1 {
		perClient = 1
	}

	httpc := &http.Client{Timeout: cfg.opTimeout}
	tallies := make([]httpTally, cfg.clients)
	start := time.Now()
	var wg sync.WaitGroup
	for cl := 0; cl < cfg.clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			tallies[cl] = runHTTPClient(httpc, cfg, cl, perClient)
		}(cl)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var total, nerr, nviol int
	var lats []time.Duration
	for cl := range tallies {
		t := &tallies[cl]
		total += t.ops
		nerr += len(t.errors)
		nviol += len(t.violations)
		lats = append(lats, t.latencies...)
		for _, e := range t.errors[:min(len(t.errors), 3)] {
			fmt.Fprintf(os.Stderr, "hoload: client %d error: %v\n", cl, e)
		}
		for _, v := range t.violations[:min(len(t.violations), 3)] {
			fmt.Fprintf(os.Stderr, "hoload: client %d VIOLATION: %s\n", cl, v)
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	// Nearest-rank ⌈q·n⌉−1 with the same float-ulp guard as
	// rsm.Percentile, so live latency percentiles use the identical
	// statistic as every simulated-mode table (the element types differ,
	// time.Duration vs core.Round, hence the local copy).
	pct := func(q float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		const eps = 1e-9
		rank := int(math.Ceil(q*float64(len(lats))-eps)) - 1
		if rank < 0 {
			rank = 0
		}
		if rank >= len(lats) {
			rank = len(lats) - 1
		}
		return lats[rank]
	}

	fmt.Printf("http servers=%d clients=%d ops=%d writes=%g keys_per_client=%d\n",
		len(cfg.servers), cfg.clients, total, cfg.writeRatio, cfg.keysPerCl)
	fmt.Printf("completed %d\n", total-nerr)
	fmt.Printf("errors %d\n", nerr)
	fmt.Printf("linearizability_violations %d\n", nviol)
	fmt.Printf("elapsed %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("ops_per_sec %.1f\n", float64(total-nerr)/elapsed.Seconds())
	fmt.Printf("latency_ms p50=%.2f p95=%.2f p99=%.2f\n",
		float64(pct(0.50))/float64(time.Millisecond),
		float64(pct(0.95))/float64(time.Millisecond),
		float64(pct(0.99))/float64(time.Millisecond))

	if nviol > 0 {
		return fmt.Errorf("%d linearizable-read violations", nviol)
	}
	if nerr > 0 {
		return fmt.Errorf("%d request errors", nerr)
	}
	return nil
}

// runHTTPClient is one closed-loop client: a mixed PUT/GET stream over
// its private keys, each GET checked against the last committed PUT.
func runHTTPClient(httpc *http.Client, cfg httpConfig, cl, ops int) httpTally {
	var t httpTally
	rng := xrand.New(cfg.seed + uint64(cl)*0x9e3779b97f4a7c15)
	lastWritten := make(map[string]string, cfg.keysPerCl)
	seq := 0
	for i := 0; i < ops; i++ {
		key := fmt.Sprintf("c%d-k%d", cl, rng.Intn(cfg.keysPerCl))
		server := cfg.servers[rng.Intn(len(cfg.servers))]
		url := fmt.Sprintf("http://%s/kv/%s", server, key)
		t.ops++
		opStart := time.Now()
		if rng.Bool(cfg.writeRatio) || lastWritten[key] == "" {
			seq++
			val := fmt.Sprintf("c%d#%d", cl, seq)
			if err := httpPut(httpc, url, val, cfg.opTimeout); err != nil {
				t.errors = append(t.errors, fmt.Errorf("put %s: %w", key, err))
				// The PUT failed client-side but may still have committed
				// server-side, so the key's expected value is ambiguous:
				// stop checking it until the next successful write.
				delete(lastWritten, key)
				continue
			}
			lastWritten[key] = val
		} else {
			got, ok, err := httpGet(httpc, url, cfg.opTimeout)
			if err != nil {
				t.errors = append(t.errors, fmt.Errorf("get %s: %w", key, err))
				continue
			}
			if want := lastWritten[key]; !ok || got != want {
				t.violations = append(t.violations,
					fmt.Sprintf("key %s read %q (found=%v), last committed write was %q", key, got, ok, want))
			}
		}
		t.latencies = append(t.latencies, time.Since(opStart))
	}
	return t
}

// httpPut issues one PUT and demands commit (200).
func httpPut(httpc *http.Client, url, val string, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, url, strings.NewReader(val))
	if err != nil {
		return err
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %s", resp.Status)
	}
	return nil
}

// httpGet issues one GET; found=false on 404.
func httpGet(httpc *http.Client, url string, timeout time.Duration) (string, bool, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return "", false, err
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return "", false, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return "", false, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return string(body), true, nil
	case http.StatusNotFound:
		return "", false, nil
	default:
		return "", false, fmt.Errorf("status %s", resp.Status)
	}
}
