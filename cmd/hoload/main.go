// Command hoload is the closed-loop load harness for the replication
// service layer (internal/rsm under internal/kvstore): a configurable
// client population drives the batched + pipelined engine through a
// chosen fault environment and the run reports throughput,
// slots-per-command amortization, and latency-in-rounds percentiles.
//
// All measurements are in simulated rounds, so stdout is byte-identical
// for a given flag set regardless of host speed or -parallel; wall-clock
// timing goes to stderr.
//
// Usage:
//
//	hoload                                  # defaults: good environment
//	hoload -env loss -loss 0.3              # sustained 30% transmission loss
//	hoload -env crash                       # rotating crash-recovery epochs
//	hoload -clients 64 -ops 2000 -dist zipfian -rate 0.9
//	hoload -batch 16 -pipeline 8            # service-layer tuning
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"heardof/internal/adversary"
	"heardof/internal/core"
	"heardof/internal/kvstore"
	"heardof/internal/otr"
	"heardof/internal/rsm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hoload:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n         = flag.Int("n", 5, "number of replicas")
		env       = flag.String("env", "good", "fault environment: good, loss, crash")
		lossRate  = flag.Float64("loss", 0.2, "transmission loss probability for -env loss")
		clients   = flag.Int("clients", 16, "closed-loop client population")
		rate      = flag.Float64("rate", 0.7, "per-window submission probability of an idle client")
		writes    = flag.Float64("writes", 0.75, "write fraction of the operation mix")
		keys      = flag.Int("keys", 48, "key-space size")
		dist      = flag.String("dist", "zipfian", "key distribution: uniform or zipfian")
		zipfS     = flag.Float64("zipf", 0.99, "zipfian exponent")
		ops       = flag.Int("ops", 500, "commands to complete")
		batch     = flag.Int("batch", 8, "commands per consensus slot (1..63)")
		pipeline  = flag.Int("pipeline", 4, "consensus slots in flight per window")
		parallel  = flag.Int("parallel", 0, "sweep workers for in-flight slots (0 = pipeline depth)")
		maxRounds = flag.Int("maxrounds", 400, "round budget per consensus slot")
		maxSlots  = flag.Int("maxslots", 0, "slot budget for the whole run (0 = 20×ops)")
		seed      = flag.Uint64("seed", 1, "workload and environment seed")
	)
	flag.Parse()

	provider, err := buildProvider(*env, *n, *lossRate, *seed)
	if err != nil {
		return err
	}
	var keyDist rsm.KeyDist
	switch *dist {
	case "uniform":
		keyDist = rsm.Uniform
	case "zipfian":
		keyDist = rsm.Zipfian
	default:
		return fmt.Errorf("unknown key distribution %q (want uniform or zipfian)", *dist)
	}
	budget := *maxSlots
	if budget == 0 {
		budget = 20 * *ops
	}

	cluster, err := kvstore.NewClusterTuned(*n, otr.Algorithm{}, provider, core.Round(*maxRounds),
		rsm.Tuning{BatchSize: *batch, Pipeline: *pipeline, Parallel: *parallel})
	if err != nil {
		return err
	}

	start := time.Now()
	res, err := rsm.RunWorkload(cluster.Engine(), rsm.WorkloadConfig{
		Clients: *clients, Rate: *rate, WriteRatio: *writes,
		Keys: *keys, Dist: keyDist, ZipfS: *zipfS,
		Ops: *ops, MaxSlots: budget, Seed: *seed,
	}, kvstore.WorkloadCommand)
	elapsed := time.Since(start)
	if err != nil {
		return err
	}
	if !cluster.Converged() {
		return fmt.Errorf("replicas diverged — impossible if consensus safety holds")
	}

	fmt.Printf("config env=%s n=%d clients=%d rate=%g writes=%g keys=%d dist=%s ops=%d batch=%d pipeline=%d seed=%d\n",
		*env, *n, *clients, *rate, *writes, *keys, keyDist, *ops, *batch, *pipeline, *seed)
	fmt.Printf("completed %d\n", res.Completed)
	fmt.Printf("slots %d\n", res.Slots)
	fmt.Printf("slots_per_cmd %.4f\n", res.SlotsPerCmd)
	fmt.Printf("cmds_per_round %.4f\n", res.CmdsPerRound)
	fmt.Printf("wall_rounds %d\n", res.WallRounds)
	fmt.Printf("total_rounds %d\n", res.TotalRounds)
	fmt.Printf("latency_rounds p50=%d p95=%d p99=%d\n", res.LatencyP50, res.LatencyP95, res.LatencyP99)
	fmt.Fprintf(os.Stderr, "hoload: %d commands in %v (%.0f cmds/sec wall)\n",
		res.Completed, elapsed.Round(time.Millisecond), float64(res.Completed)/elapsed.Seconds())
	return nil
}

// buildProvider maps an environment name to a per-slot HO provider — the
// same shared factories (internal/adversary) experiments E10 tabulates,
// so hoload runs are directly comparable to the E10 table.
func buildProvider(env string, n int, loss float64, seed uint64) (func(slot int) core.HOProvider, error) {
	switch env {
	case "good":
		return adversary.SlotFull(), nil
	case "loss":
		if loss < 0 || loss >= 1 {
			return nil, fmt.Errorf("loss rate %v outside [0, 1)", loss)
		}
		return adversary.SlotLoss(loss, seed), nil
	case "crash":
		return adversary.SlotRotatingCrash(n, 10), nil
	default:
		return nil, fmt.Errorf("unknown environment %q (want good, loss or crash)", env)
	}
}
