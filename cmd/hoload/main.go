// Command hoload is the closed-loop load harness for the replication
// service layer (internal/rsm under internal/kvstore, and internal/shard
// above both): a configurable client population drives the batched +
// pipelined engine — or, with -shards > 1, a sharded fleet of engines —
// through chosen fault environments and the run reports throughput,
// slots-per-command amortization, and latency-in-rounds percentiles.
//
// All measurements are in simulated rounds, so stdout is byte-identical
// for a given flag set regardless of host speed or -parallel; wall-clock
// timing goes to stderr.
//
// Usage:
//
//	hoload                                  # defaults: good environment
//	hoload -env loss -loss 0.3              # sustained 30% transmission loss
//	hoload -env crash                       # rotating crash-recovery epochs
//	hoload -clients 64 -ops 2000 -dist zipfian -rate 0.9
//	hoload -batch 16 -pipeline 8            # service-layer tuning
//	hoload -shards 4                        # 4 independent groups, all -env
//	hoload -shards 4 -shardenvs good,loss,crash   # per-shard environments
//	hoload -zipf 0                          # an explicit s=0 IS honored
//
// With -http host:port[,host:port...] hoload instead drives a LIVE
// hoserve deployment over HTTP: a closed-loop mixed PUT/GET workload
// with per-client single-writer keys, checking every read against the
// last committed write (a linearizability check the replicated-log reads
// must pass) and reporting wall-clock throughput and latency
// percentiles. That mode measures real time and is not byte-reproducible
// — it is excluded from the CI determinism comparisons.
//
//	hoload -http 127.0.0.1:8101,127.0.0.1:8102 -clients 8 -ops 1000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"heardof/internal/adversary"
	"heardof/internal/core"
	"heardof/internal/kvstore"
	"heardof/internal/otr"
	"heardof/internal/rsm"
	"heardof/internal/shard"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hoload:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n         = flag.Int("n", 5, "number of replicas per shard")
		env       = flag.String("env", "good", "fault environment: good, loss, crash")
		lossRate  = flag.Float64("loss", 0.2, "transmission loss probability for loss environments")
		shards    = flag.Int("shards", 1, "independent replication groups over a partitioned keyspace")
		shardenvs = flag.String("shardenvs", "", "comma-separated per-shard environments, cycled across shards (default: -env everywhere)")
		clients   = flag.Int("clients", 16, "closed-loop client population")
		rate      = flag.Float64("rate", 0.7, "per-window submission probability of an idle client")
		writes    = flag.Float64("writes", 0.75, "write fraction of the operation mix")
		keys      = flag.Int("keys", 48, "key-space size")
		dist      = flag.String("dist", "zipfian", "key distribution: uniform or zipfian")
		zipfS     = flag.Float64("zipf", 0.99, "zipfian exponent (0 is uniform; the default is the YCSB 0.99)")
		ops       = flag.Int("ops", 500, "commands to complete")
		batch     = flag.Int("batch", 8, "commands per consensus slot (1..63)")
		pipeline  = flag.Int("pipeline", 4, "consensus slots in flight per window")
		parallel  = flag.Int("parallel", 0, "sweep workers for in-flight slots and shards (0 = natural width)")
		maxRounds = flag.Int("maxrounds", 400, "round budget per consensus slot")
		maxSlots  = flag.Int("maxslots", 0, "slot budget for the whole run (0 = 20×ops)")
		seed      = flag.Uint64("seed", 1, "workload and environment seed")

		httpTo    = flag.String("http", "", "drive a live hoserve deployment at these comma-separated HTTP addresses instead of the simulator")
		keysPerCl = flag.Int("keysperclient", 4, "http mode: private keys per client (single-writer linearizability check)")
		opTimeout = flag.Duration("optimeout", 15*time.Second, "http mode: per-request deadline")
	)
	flag.Parse()

	if *httpTo != "" {
		return runHTTP(httpConfig{
			servers:    strings.Split(*httpTo, ","),
			clients:    *clients,
			ops:        *ops,
			writeRatio: *writes,
			keysPerCl:  *keysPerCl,
			opTimeout:  *opTimeout,
			seed:       *seed,
		})
	}

	if *shards < 1 {
		return fmt.Errorf("shards = %d, need ≥ 1", *shards)
	}
	var keyDist rsm.KeyDist
	switch *dist {
	case "uniform":
		keyDist = rsm.Uniform
	case "zipfian":
		keyDist = rsm.Zipfian
	default:
		return fmt.Errorf("unknown key distribution %q (want uniform or zipfian)", *dist)
	}
	budget := *maxSlots
	if budget == 0 {
		budget = 20 * *ops
	}
	wcfg := rsm.WorkloadConfig{
		Clients: *clients, Rate: *rate, WriteRatio: *writes,
		Keys: *keys, Dist: keyDist, ZipfS: *zipfS,
		Ops: *ops, MaxSlots: budget, Seed: *seed,
	}
	tune := rsm.Tuning{BatchSize: *batch, Pipeline: *pipeline, Parallel: *parallel}

	if *shards > 1 || *shardenvs != "" {
		return runSharded(*shards, *shardenvs, *env, *n, *lossRate, *parallel,
			core.Round(*maxRounds), tune, wcfg)
	}

	provider, err := buildProvider(*env, *n, *lossRate, *seed)
	if err != nil {
		return err
	}
	cluster, err := kvstore.NewClusterTuned(*n, otr.Algorithm{}, provider, core.Round(*maxRounds), tune)
	if err != nil {
		return err
	}

	start := time.Now()
	res, err := rsm.RunWorkload(cluster.Engine(), wcfg, kvstore.WorkloadCommand)
	elapsed := time.Since(start)
	if err != nil {
		return err
	}
	if !cluster.Converged() {
		return fmt.Errorf("replicas diverged — impossible if consensus safety holds")
	}

	fmt.Printf("config env=%s n=%d clients=%d rate=%g writes=%g keys=%d dist=%s ops=%d batch=%d pipeline=%d seed=%d\n",
		*env, *n, *clients, *rate, *writes, *keys, keyDist, *ops, *batch, *pipeline, *seed)
	printResult(res)
	fmt.Fprintf(os.Stderr, "hoload: %d commands in %v (%.0f cmds/sec wall)\n",
		res.Completed, elapsed.Round(time.Millisecond), float64(res.Completed)/elapsed.Seconds())
	return nil
}

// runSharded is the -shards > 1 (or -shardenvs) path: S independent
// groups with per-shard fault environments, the sharded closed loop, and
// per-shard + aggregate reporting.
func runSharded(shards int, shardenvs, defaultEnv string, n int, lossRate float64,
	parallel int, maxRounds core.Round, tune rsm.Tuning, wcfg rsm.WorkloadConfig) error {
	envs := []string{defaultEnv}
	if shardenvs != "" {
		envs = strings.Split(shardenvs, ",")
		for i, e := range envs {
			envs[i] = strings.TrimSpace(e)
		}
	}
	envOf := func(s int) string { return envs[s%len(envs)] }
	// Validate every named environment up front (buildProvider errors on
	// unknown names and bad loss rates) — including entries the current
	// shard count would not reach, so a typo'd list always errors.
	for _, e := range envs {
		if _, err := buildProvider(e, n, lossRate, wcfg.Seed); err != nil {
			return err
		}
	}
	providers := func(s int) func(slot int) core.HOProvider {
		// Seed each shard's environment from (seed, shard) so shard
		// environments are independent streams and independent of S-1
		// other shards' consumption.
		p, err := buildProvider(envOf(s), n, lossRate, wcfg.Seed+uint64(s)*1000003)
		if err != nil { // unreachable: validated above
			panic(err)
		}
		return p
	}
	cluster, err := kvstore.NewShardedCluster(shard.Config{Shards: shards, Parallel: parallel},
		n, otr.Algorithm{}, providers, maxRounds, tune)
	if err != nil {
		return err
	}
	start := time.Now()
	res, err := shard.RunWorkload(cluster.Sharded(), wcfg, kvstore.WorkloadCommand, kvstore.WorkloadRouteKey)
	elapsed := time.Since(start)
	if err != nil {
		return err
	}
	if !cluster.Converged() {
		return fmt.Errorf("a shard's replicas diverged — impossible if consensus safety holds")
	}

	fmt.Printf("config env=%s shards=%d shardenvs=%s n=%d clients=%d rate=%g writes=%g keys=%d dist=%s ops=%d batch=%d pipeline=%d seed=%d\n",
		defaultEnv, shards, shardenvs, n, wcfg.Clients, wcfg.Rate, wcfg.WriteRatio,
		wcfg.Keys, wcfg.Dist, wcfg.Ops, tune.BatchSize, tune.Pipeline, wcfg.Seed)
	for s, ps := range res.PerShard {
		fmt.Printf("shard %d env=%s completed=%d slots=%d wall_rounds=%d lat p50=%d p95=%d p99=%d\n",
			s, envOf(s), ps.Completed, ps.Slots, ps.WallRounds,
			ps.LatencyP50, ps.LatencyP95, ps.LatencyP99)
	}
	printResult(res.Aggregate)
	fmt.Fprintf(os.Stderr, "hoload: %d commands over %d shards in %v (%.0f cmds/sec wall)\n",
		res.Aggregate.Completed, shards, elapsed.Round(time.Millisecond),
		float64(res.Aggregate.Completed)/elapsed.Seconds())
	return nil
}

// printResult emits the measurement block shared by the single-group and
// sharded (aggregate) paths.
func printResult(res rsm.WorkloadResult) {
	fmt.Printf("completed %d\n", res.Completed)
	fmt.Printf("slots %d\n", res.Slots)
	fmt.Printf("slots_per_cmd %.4f\n", res.SlotsPerCmd)
	fmt.Printf("cmds_per_round %.4f\n", res.CmdsPerRound)
	fmt.Printf("wall_rounds %d\n", res.WallRounds)
	fmt.Printf("total_rounds %d\n", res.TotalRounds)
	fmt.Printf("latency_rounds p50=%d p95=%d p99=%d\n", res.LatencyP50, res.LatencyP95, res.LatencyP99)
}

// buildProvider maps an environment name to a per-slot HO provider — the
// same shared factories (internal/adversary) experiments E10 and E11
// tabulate, so hoload runs are directly comparable to those tables.
func buildProvider(env string, n int, loss float64, seed uint64) (func(slot int) core.HOProvider, error) {
	switch env {
	case "good":
		return adversary.SlotFull(), nil
	case "loss":
		if loss < 0 || loss >= 1 {
			return nil, fmt.Errorf("loss rate %v outside [0, 1)", loss)
		}
		return adversary.SlotLoss(loss, seed), nil
	case "crash":
		return adversary.SlotRotatingCrash(n, 10), nil
	default:
		return nil, fmt.Errorf("unknown environment %q (want good, loss or crash)", env)
	}
}
