package lastvoting

import (
	"testing"

	"heardof/internal/core"
)

func TestWireCodecRoundTrip(t *testing.T) {
	codec := WireCodec{}
	cases := []core.Message{
		nil,
		estimateMsg{X: 0, TS: 0},
		estimateMsg{X: -5, TS: 12},
		estimateMsg{X: 1<<40 | 3, TS: 1 << 20},
		voteMsg{V: 42},
		voteMsg{V: -1},
		ackMsg{},
		decideMsg{V: 7},
	}
	for _, want := range cases {
		b, err := codec.Encode(want)
		if err != nil {
			t.Fatalf("encode %#v: %v", want, err)
		}
		got, err := codec.Decode(b)
		if err != nil {
			t.Fatalf("decode %#v: %v", want, err)
		}
		if got != want {
			t.Fatalf("round trip %#v → %#v", want, got)
		}
	}
}

func TestWireCodecRejectsMalformed(t *testing.T) {
	codec := WireCodec{}
	if _, err := codec.Encode("not a lastvoting payload"); err == nil {
		t.Error("foreign payload encoded")
	}
	for _, b := range [][]byte{nil, {99}, {wireEstimate}, {wireVote}, {wireDecide}} {
		if _, err := codec.Decode(b); err == nil {
			t.Errorf("decoded malformed %v", b)
		}
	}
}
