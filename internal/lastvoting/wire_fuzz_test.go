package lastvoting

import (
	"testing"

	"heardof/internal/core"
)

// FuzzWireCodecDecode hammers the decode path with arbitrary bytes: it
// must never panic, and any input it accepts must re-encode and decode
// to the same message. The seed corpus is real round traffic from a
// complete phase — all four payload types plus the null message — and
// the interesting malformed prefixes.
func FuzzWireCodecDecode(f *testing.F) {
	codec := WireCodec{}
	for _, enc := range phaseTraffic(f) {
		f.Add(enc)
	}
	f.Add([]byte(nil))
	f.Add([]byte{wireEstimate})       // truncated: no estimate
	f.Add([]byte{wireEstimate, 0x04}) // truncated: estimate but no timestamp
	f.Add([]byte{wireVote})
	f.Add([]byte{wireDecide, 0x80})
	f.Add([]byte{0xFF})

	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := codec.Decode(b)
		if err != nil {
			return
		}
		enc, err := codec.Encode(m)
		if err != nil {
			t.Fatalf("decoded %#v from %x but cannot re-encode: %v", m, b, err)
		}
		m2, err := codec.Decode(enc)
		if err != nil {
			t.Fatalf("re-encoding of %#v does not decode: %v", m, err)
		}
		if m2 != m {
			t.Fatalf("round trip changed the message: %#v → %#v", m, m2)
		}
	})
}

// phaseTraffic runs phase 1 of a 3-process LastVoting group to a
// decision and returns the encoding of every message sent along the
// way: estimates, the vote, acks, the decide, and the null messages
// non-speakers emit.
func phaseTraffic(f *testing.F) [][]byte {
	codec := WireCodec{}
	n := 3
	insts := make([]core.Instance, n)
	for p := 0; p < n; p++ {
		insts[p] = Algorithm{}.NewInstance(core.ProcessID(p), n, core.Value(10*p+3))
	}
	var out [][]byte
	for r := core.Round(1); r <= 4; r++ {
		msgs := make([]core.IncomingMessage, 0, n)
		for p := 0; p < n; p++ {
			m := insts[p].Send(r)
			enc, err := codec.Encode(m)
			if err != nil {
				f.Fatalf("round %d sender %d: %v", r, p, err)
			}
			out = append(out, enc)
			msgs = append(msgs, core.IncomingMessage{From: core.ProcessID(p), Payload: m})
		}
		for p := 0; p < n; p++ {
			insts[p].Transition(r, msgs)
		}
	}
	if _, ok := insts[1].Decided(); !ok {
		f.Fatal("seed phase never decided — traffic generator is broken")
	}
	return out
}
