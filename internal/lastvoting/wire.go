// Wire encoding of LastVoting round messages for the live runtime
// (internal/live). The codec lives with the algorithm so the four phase
// payload types stay unexported; everything is one tag byte plus zigzag
// varints, cheap enough that the four-rounds-per-phase structure costs a
// few bytes per process per round on the wire.

package lastvoting

import (
	"encoding/binary"
	"fmt"

	"heardof/internal/core"
)

// Wire-format tags. Tag 0 is the null message — most LastVoting rounds
// send nothing relevant from most processes (only the coordinator speaks
// in rounds 4φ−2 and 4φ), but the null still travels: being heard is
// membership in HO(p, r), and round progress is visible to peers.
const (
	wireNil      = 0
	wireEstimate = 1
	wireVote     = 2
	wireAck      = 3
	wireDecide   = 4
)

// WireCodec encodes LastVoting messages. It satisfies the live runtime's
// Codec interface structurally.
type WireCodec struct{}

// Encode serializes m.
func (WireCodec) Encode(m core.Message) ([]byte, error) {
	switch v := m.(type) {
	case nil:
		return []byte{wireNil}, nil
	case estimateMsg:
		b := binary.AppendVarint([]byte{wireEstimate}, int64(v.X))
		return binary.AppendVarint(b, int64(v.TS)), nil
	case voteMsg:
		return binary.AppendVarint([]byte{wireVote}, int64(v.V)), nil
	case ackMsg:
		return []byte{wireAck}, nil
	case decideMsg:
		return binary.AppendVarint([]byte{wireDecide}, int64(v.V)), nil
	default:
		return nil, fmt.Errorf("lastvoting: cannot encode foreign payload %T", m)
	}
}

// Decode parses an Encode result.
func (WireCodec) Decode(b []byte) (core.Message, error) {
	if len(b) < 1 {
		return nil, fmt.Errorf("lastvoting: empty wire message")
	}
	rest := b[1:]
	one := func() (int64, error) {
		v, n := binary.Varint(rest)
		if n <= 0 {
			return 0, fmt.Errorf("lastvoting: truncated payload for tag %d", b[0])
		}
		rest = rest[n:]
		return v, nil
	}
	switch b[0] {
	case wireNil:
		return nil, nil
	case wireEstimate:
		x, err := one()
		if err != nil {
			return nil, err
		}
		ts, err := one()
		if err != nil {
			return nil, err
		}
		return estimateMsg{X: core.Value(x), TS: core.Round(ts)}, nil
	case wireVote:
		v, err := one()
		if err != nil {
			return nil, err
		}
		return voteMsg{V: core.Value(v)}, nil
	case wireAck:
		return ackMsg{}, nil
	case wireDecide:
		v, err := one()
		if err != nil {
			return nil, err
		}
		return decideMsg{V: core.Value(v)}, nil
	default:
		return nil, fmt.Errorf("lastvoting: unknown wire tag %d", b[0])
	}
}
