// Package lastvoting implements the LastVoting algorithm — Paxos
// expressed in the Heard-Of model, as referenced by §5 of the DSN 2007
// paper ("a consensus algorithm à la Paxos in the HO model can be found
// in [6]"). It is a coordinated algorithm with four rounds per phase and
// majority quorums, tolerating any transmission faults; liveness needs a
// phase in which the coordinator and a majority hear each other.
//
// Phase φ (coordinator c = (φ−1) mod n) occupies rounds 4φ−3 … 4φ:
//
//	round 4φ−3: everyone sends ⟨x_p, ts_p⟩; if c hears a majority it
//	            selects the value with the highest timestamp as its vote.
//	round 4φ−2: c sends ⟨vote⟩; receivers adopt it and set ts_p := φ.
//	round 4φ−1: processes with ts_p = φ send ⟨ack⟩; if c hears a majority
//	            of acks it becomes ready to decide.
//	round 4φ:   c sends ⟨decide, vote⟩; receivers decide.
package lastvoting

import (
	"encoding/binary"
	"errors"

	"heardof/internal/core"
	"heardof/internal/quorum"
)

// Algorithm is the LastVoting factory.
type Algorithm struct{}

var _ core.Algorithm = Algorithm{}

// Name implements core.Algorithm.
func (Algorithm) Name() string { return "LastVoting" }

// NewInstance implements core.Algorithm.
func (Algorithm) NewInstance(p core.ProcessID, n int, initial core.Value) core.Instance {
	return &Instance{p: p, n: n, x: initial}
}

// Coord returns the coordinator of phase φ.
func Coord(phase core.Round, n int) core.ProcessID {
	return core.ProcessID(int(phase-1) % n)
}

// PhaseOf returns the phase of round r and the position 1..4 within it.
func PhaseOf(r core.Round) (phase core.Round, pos int) {
	phase = (r + 3) / 4
	pos = int(r - 4*(phase-1))
	return phase, pos
}

// Message payloads. A nil payload models "sends nothing relevant" (the HO
// model's null message).
type (
	estimateMsg struct {
		X  core.Value
		TS core.Round
	}
	voteMsg struct {
		V core.Value
	}
	ackMsg    struct{}
	decideMsg struct {
		V core.Value
	}
)

// Instance is one process's LastVoting state.
type Instance struct {
	p core.ProcessID
	n int

	x  core.Value
	ts core.Round // phase of the last adoption

	// Coordinator-only phase state.
	vote    core.Value
	commit  bool
	ready   bool
	ackable bool // this process adopted in the current phase (sends ack)

	decided  bool
	decision core.Value
}

var (
	_ core.Instance    = (*Instance)(nil)
	_ core.Recoverable = (*Instance)(nil)
)

// X returns the current estimate (for tests).
func (i *Instance) X() core.Value { return i.x }

// Send implements S_p^r.
func (i *Instance) Send(r core.Round) core.Message {
	phase, pos := PhaseOf(r)
	c := Coord(phase, i.n)
	switch pos {
	case 1:
		return estimateMsg{X: i.x, TS: i.ts}
	case 2:
		if i.p == c && i.commit {
			return voteMsg{V: i.vote}
		}
	case 3:
		if i.ackable {
			return ackMsg{}
		}
	case 4:
		if i.p == c && i.ready {
			return decideMsg{V: i.vote}
		}
	}
	return nil
}

// Transition implements T_p^r.
func (i *Instance) Transition(r core.Round, msgs []core.IncomingMessage) {
	phase, pos := PhaseOf(r)
	c := Coord(phase, i.n)
	switch pos {
	case 1:
		if i.p != c {
			return
		}
		i.commit = false
		count := 0
		var best estimateMsg
		haveBest := false
		for _, m := range msgs {
			em, ok := m.Payload.(estimateMsg)
			if !ok {
				continue
			}
			count++
			if !haveBest || em.TS > best.TS {
				best, haveBest = em, true
			}
		}
		if quorum.ExceedsMajority(count, i.n) && haveBest {
			i.vote = best.X
			i.commit = true
		}
	case 2:
		i.ackable = false
		for _, m := range msgs {
			if m.From != c {
				continue
			}
			if vm, ok := m.Payload.(voteMsg); ok {
				i.x = vm.V
				i.ts = phase
				i.ackable = true
			}
		}
	case 3:
		if i.p != c {
			return
		}
		i.ready = false
		acks := 0
		for _, m := range msgs {
			if _, ok := m.Payload.(ackMsg); ok {
				acks++
			}
		}
		if quorum.ExceedsMajority(acks, i.n) {
			i.ready = true
		}
	case 4:
		for _, m := range msgs {
			if m.From != c {
				continue
			}
			if dm, ok := m.Payload.(decideMsg); ok && !i.decided {
				i.decided = true
				i.decision = dm.V
			}
		}
		// Phase bookkeeping resets.
		i.commit = false
		i.ready = false
		i.ackable = false
	}
}

// Decided implements core.Instance.
func (i *Instance) Decided() (core.Value, bool) { return i.decision, i.decided }

// snapshot is the stable-storage image.
type snapshot struct {
	x        core.Value
	ts       core.Round
	vote     core.Value
	commit   bool
	ready    bool
	ackable  bool
	decided  bool
	decision core.Value
}

// Snapshot implements core.Recoverable.
func (i *Instance) Snapshot() core.Snapshot {
	return snapshot{
		x: i.x, ts: i.ts, vote: i.vote, commit: i.commit,
		ready: i.ready, ackable: i.ackable, decided: i.decided, decision: i.decision,
	}
}

// Restore implements core.Recoverable.
func (i *Instance) Restore(s core.Snapshot) {
	sn, ok := s.(snapshot)
	if !ok {
		return
	}
	i.x, i.ts, i.vote, i.commit = sn.x, sn.ts, sn.vote, sn.commit
	i.ready, i.ackable, i.decided, i.decision = sn.ready, sn.ackable, sn.decided, sn.decision
}

// AppendState appends a canonical byte encoding of the instance state,
// for model-checker fingerprinting (a fast path avoiding reflection).
func (i *Instance) AppendState(dst []byte) []byte {
	dst = binary.AppendVarint(dst, int64(i.x))
	dst = binary.AppendVarint(dst, int64(i.ts))
	dst = binary.AppendVarint(dst, int64(i.vote))
	var flags byte
	if i.commit {
		flags |= 1
	}
	if i.ready {
		flags |= 2
	}
	if i.ackable {
		flags |= 4
	}
	if i.decided {
		flags |= 8
	}
	dst = append(dst, flags)
	return binary.AppendVarint(dst, int64(i.decision))
}

// RestoreState loads an instance from its AppendState encoding for
// crash recovery, keeping exactly what the paper's crash-recovery
// variant keeps in stable storage: the locked vote (x_p, ts_p) and the
// decision. The coordinator phase bookkeeping (commit, vote, ready,
// ackable) is volatile ROUND state and is deliberately reset — a
// recovered coordinator that rejoined mid-phase with a stale commit
// would replay a vote formed from an older phase's estimates, and a
// stale ackable would acknowledge an adoption that never happened at
// the current phase; either breaks the majority-lock argument.
func (i *Instance) RestoreState(b []byte) error {
	x, n1 := binary.Varint(b)
	if n1 <= 0 {
		return errors.New("lastvoting: corrupt state: x")
	}
	b = b[n1:]
	ts, n2 := binary.Varint(b)
	if n2 <= 0 {
		return errors.New("lastvoting: corrupt state: ts")
	}
	b = b[n2:]
	vote, n3 := binary.Varint(b)
	if n3 <= 0 {
		return errors.New("lastvoting: corrupt state: vote")
	}
	b = b[n3:]
	if len(b) == 0 {
		return errors.New("lastvoting: corrupt state: flags")
	}
	flags := b[0]
	decision, n4 := binary.Varint(b[1:])
	if n4 <= 0 || flags > 15 || len(b) != 1+n4 {
		return errors.New("lastvoting: corrupt state: decision")
	}
	_ = vote
	i.x, i.ts = core.Value(x), core.Round(ts)
	i.vote, i.commit, i.ready, i.ackable = 0, false, false, false
	i.decided = flags&8 != 0
	i.decision = core.Value(decision)
	return nil
}
