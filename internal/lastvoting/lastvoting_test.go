package lastvoting

import (
	"testing"

	"heardof/internal/adversary"
	"heardof/internal/core"
	"heardof/internal/xrand"
)

func vals(vs ...int64) []core.Value {
	out := make([]core.Value, len(vs))
	for i, v := range vs {
		out[i] = core.Value(v)
	}
	return out
}

func TestPhaseArithmetic(t *testing.T) {
	tests := []struct {
		r     core.Round
		phase core.Round
		pos   int
	}{
		{1, 1, 1}, {2, 1, 2}, {3, 1, 3}, {4, 1, 4},
		{5, 2, 1}, {8, 2, 4}, {9, 3, 1},
	}
	for _, tt := range tests {
		phase, pos := PhaseOf(tt.r)
		if phase != tt.phase || pos != tt.pos {
			t.Errorf("PhaseOf(%d) = (%d, %d), want (%d, %d)", tt.r, phase, pos, tt.phase, tt.pos)
		}
	}
	if Coord(1, 4) != 0 || Coord(2, 4) != 1 || Coord(5, 4) != 0 {
		t.Error("Coord rotation wrong")
	}
}

func TestFaultFreeDecidesInOnePhase(t *testing.T) {
	ru, err := core.NewRunner(Algorithm{}, vals(3, 1, 4, 1, 5), adversary.Full{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ru.Run(8)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if tr.NumRounds() != 4 {
		t.Errorf("decided after %d rounds, want 4 (one phase)", tr.NumRounds())
	}
	if err := tr.CheckConsensusSafety(); err != nil {
		t.Fatal(err)
	}
	// All timestamps are 0 in phase 1, so the coordinator picks the
	// highest-ts (first best) — any initial value; agreement is what
	// matters, plus it must equal the coordinator's vote.
	want := tr.Decisions[0].Value
	for p, d := range tr.Decisions {
		if !d.Decided || d.Value != want {
			t.Errorf("p%d decision %v, want %d", p, d, want)
		}
	}
}

func TestMajorityHOSufficesUnlikeOTR(t *testing.T) {
	// LastVoting needs only majorities: with HO sets of size 3 of n=5
	// (60% < 2n/3+ǫ required by OTR for n=5 ⇒ 4), consensus still
	// completes provided the coordinator is heard. Everyone hears
	// {coordinator, p, p+1}... simplest: everyone hears {0, 1, 2}.
	pi0 := core.SetOf(0, 1, 2)
	prov := core.HOProviderFunc(func(r core.Round, n int) []core.PIDSet {
		out := make([]core.PIDSet, n)
		for p := range out {
			out[p] = pi0
		}
		return out
	})
	ru, err := core.NewRunner(Algorithm{}, vals(9, 8, 7, 6, 5), prov)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ru.Run(8)
	if err != nil {
		t.Fatalf("LastVoting did not decide with majority HO sets: %v", err)
	}
	if err := tr.CheckConsensusSafety(); err != nil {
		t.Fatal(err)
	}
}

func TestNoDecisionWithoutMajority(t *testing.T) {
	// HO sets of size 2 of n=5: below majority, the coordinator never
	// commits and nobody ever decides.
	prov := core.HOProviderFunc(func(r core.Round, n int) []core.PIDSet {
		out := make([]core.PIDSet, n)
		for p := range out {
			out[p] = core.SetOf(0, 1)
		}
		return out
	})
	ru, err := core.NewRunner(Algorithm{}, vals(1, 2, 3, 4, 5), prov)
	if err != nil {
		t.Fatal(err)
	}
	ru.RunRounds(40)
	if !ru.Trace().DecidedSet().IsEmpty() {
		t.Error("decided below majority")
	}
}

func TestCoordinatorCrashRotatesToNextPhase(t *testing.T) {
	// Phase 1's coordinator (process 0) is silent from the start (SP
	// crash); phase 2's coordinator (process 1) completes the protocol.
	prov := adversary.CrashStop{CrashRound: map[core.ProcessID]core.Round{0: 1}}
	ru, err := core.NewRunner(Algorithm{}, vals(4, 4, 4, 4, 4), prov)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ru.Run(16)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if tr.MaxDecisionRound() != 8 {
		t.Errorf("decided at round %d, want 8 (end of phase 2)", tr.MaxDecisionRound())
	}
	if err := tr.CheckConsensusSafety(); err != nil {
		t.Fatal(err)
	}
}

func TestSafetyUnderArbitraryAdversary(t *testing.T) {
	for seed := uint64(0); seed < 500; seed++ {
		n := 2 + int(seed%6)
		prov := &adversary.Arbitrary{RNG: xrand.New(seed), EmptyBias: 0.2}
		initial := make([]core.Value, n)
		rng := xrand.New(seed ^ 0x1111)
		for i := range initial {
			initial[i] = core.Value(rng.Intn(3))
		}
		ru, err := core.NewRunner(Algorithm{}, initial, prov)
		if err != nil {
			t.Fatal(err)
		}
		ru.RunRounds(40)
		if err := ru.Trace().CheckConsensusSafety(); err != nil {
			t.Fatalf("seed %d n=%d: %v", seed, n, err)
		}
	}
}

func TestSafetyUnderTransmissionLoss(t *testing.T) {
	// The paper's Paxos remark: LastVoting works in the crash-recovery
	// model because loss is just a transmission fault. 30% loss, many
	// seeds: safety always, liveness usually.
	decided := 0
	const runs = 40
	for seed := uint64(0); seed < runs; seed++ {
		prov := &adversary.TransmissionLoss{Rate: 0.3, RNG: xrand.New(seed)}
		ru, err := core.NewRunner(Algorithm{}, vals(1, 2, 3, 4, 5), prov)
		if err != nil {
			t.Fatal(err)
		}
		tr, runErr := ru.Run(200)
		if runErr == nil {
			decided++
		}
		if err := tr.CheckConsensusSafety(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	if decided < runs/2 {
		t.Errorf("only %d/%d runs decided under 30%% loss", decided, runs)
	}
}

func TestNullPayloadRounds(t *testing.T) {
	// Non-coordinators send nil in rounds 2 and 4; nils must be ignored.
	inst := Algorithm{}.NewInstance(1, 3, 5).(*Instance)
	if msg := inst.Send(2); msg != nil {
		t.Errorf("non-committed coordinator round-2 send = %v, want nil", msg)
	}
	inst.Transition(2, []core.IncomingMessage{
		{From: 0, Payload: nil},
		{From: 2, Payload: nil},
	})
	if inst.ackable {
		t.Error("became ackable without a vote message")
	}
}

func TestSnapshotRestore(t *testing.T) {
	inst := Algorithm{}.NewInstance(0, 3, 5).(*Instance)
	inst.Transition(1, []core.IncomingMessage{
		{From: 0, Payload: estimateMsg{X: 5, TS: 0}},
		{From: 1, Payload: estimateMsg{X: 7, TS: 2}},
	})
	if !inst.commit || inst.vote != 7 {
		t.Fatalf("coordinator did not commit to the highest-ts value: commit=%v vote=%d",
			inst.commit, inst.vote)
	}
	snap := inst.Snapshot()
	fresh := Algorithm{}.NewInstance(0, 3, 0).(*Instance)
	fresh.Restore(snap)
	if !fresh.commit || fresh.vote != 7 {
		t.Error("restore incomplete")
	}
	fresh.Restore(123)
	if fresh.vote != 7 {
		t.Error("garbage restore clobbered state")
	}
}

func TestRestoreStateKeepsStableDropsPhase(t *testing.T) {
	// Build a coordinator mid-phase: committed vote, adopted estimate.
	inst := Algorithm{}.NewInstance(0, 3, 5).(*Instance)
	inst.Transition(1, []core.IncomingMessage{
		{From: 0, Payload: estimateMsg{X: 5, TS: 0}},
		{From: 1, Payload: estimateMsg{X: 7, TS: 2}},
	})
	inst.Transition(2, []core.IncomingMessage{
		{From: 0, Payload: voteMsg{V: 7}},
	})
	if !inst.commit || !inst.ackable || inst.ts != 1 {
		t.Fatalf("setup: commit=%v ackable=%v ts=%d", inst.commit, inst.ackable, inst.ts)
	}

	rec := Algorithm{}.NewInstance(0, 3, 0).(*Instance)
	if err := rec.RestoreState(inst.AppendState(nil)); err != nil {
		t.Fatal(err)
	}
	// Stable storage: the locked vote (x, ts) survives the crash.
	if rec.x != 7 || rec.ts != 1 {
		t.Errorf("locked vote lost: x=%d ts=%d, want 7/1", rec.x, rec.ts)
	}
	// Phase bookkeeping is volatile: a recovered coordinator must not
	// replay a pre-crash vote or ack a pre-crash adoption.
	if rec.commit || rec.ready || rec.ackable || rec.vote != 0 {
		t.Errorf("phase flags survived recovery: commit=%v ready=%v ackable=%v vote=%d",
			rec.commit, rec.ready, rec.ackable, rec.vote)
	}
	if rec.decided {
		t.Error("undecided instance recovered as decided")
	}

	// A decided instance keeps its decision.
	inst.Transition(4, []core.IncomingMessage{{From: 0, Payload: decideMsg{V: 7}}})
	rec2 := Algorithm{}.NewInstance(0, 3, 0).(*Instance)
	if err := rec2.RestoreState(inst.AppendState(nil)); err != nil {
		t.Fatal(err)
	}
	if v, ok := rec2.Decided(); !ok || v != 7 {
		t.Errorf("decision lost: (%d, %v)", v, ok)
	}

	// Corrupt encodings are rejected, not silently applied.
	for _, b := range [][]byte{nil, {0x80}, inst.AppendState(nil)[:3], append(inst.AppendState(nil), 9)} {
		if err := rec2.RestoreState(b); err == nil {
			t.Errorf("RestoreState(%x) accepted corrupt state", b)
		}
	}
}
