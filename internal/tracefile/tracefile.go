// Package tracefile serializes HO traces to JSON so that runs can be
// recorded, shared, and re-checked against communication predicates
// offline (the hocheck tool).
package tracefile

import (
	"encoding/json"
	"fmt"

	"heardof/internal/core"
)

// decisionJSON mirrors core.Decision.
type decisionJSON struct {
	Decided bool  `json:"decided"`
	Value   int64 `json:"value,omitempty"`
	Round   int   `json:"round,omitempty"`
}

// fileJSON is the on-disk trace format. Heard-of sets are 64-bit
// bitmasks (bit p set ⇔ p ∈ HO).
type fileJSON struct {
	N         int            `json:"n"`
	Initial   []int64        `json:"initial"`
	Rounds    [][]uint64     `json:"rounds"`
	Decisions []decisionJSON `json:"decisions"`
}

// Encode renders a trace as JSON.
func Encode(tr *core.Trace) ([]byte, error) {
	f := fileJSON{
		N:         tr.N,
		Initial:   make([]int64, len(tr.Initial)),
		Rounds:    make([][]uint64, len(tr.Rounds)),
		Decisions: make([]decisionJSON, len(tr.Decisions)),
	}
	for i, v := range tr.Initial {
		f.Initial[i] = int64(v)
	}
	for i, rec := range tr.Rounds {
		row := make([]uint64, len(rec.HO))
		for p, ho := range rec.HO {
			row[p] = uint64(ho)
		}
		f.Rounds[i] = row
	}
	for i, d := range tr.Decisions {
		f.Decisions[i] = decisionJSON{Decided: d.Decided, Value: int64(d.Value), Round: int(d.Round)}
	}
	return json.MarshalIndent(f, "", "  ")
}

// Decode parses a JSON trace.
func Decode(data []byte) (*core.Trace, error) {
	var f fileJSON
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("parse trace: %w", err)
	}
	if f.N < 1 || f.N > core.MaxProcesses {
		return nil, fmt.Errorf("trace has invalid n = %d", f.N)
	}
	if len(f.Initial) != f.N {
		return nil, fmt.Errorf("trace has %d initial values for n = %d", len(f.Initial), f.N)
	}
	initial := make([]core.Value, f.N)
	for i, v := range f.Initial {
		initial[i] = core.Value(v)
	}
	tr := core.NewTrace(f.N, initial)
	for i, row := range f.Rounds {
		if len(row) != f.N {
			return nil, fmt.Errorf("round %d has %d HO sets for n = %d", i+1, len(row), f.N)
		}
		ho := make([]core.PIDSet, f.N)
		for p, mask := range row {
			ho[p] = core.PIDSet(mask).Intersect(core.FullSet(f.N))
		}
		tr.RecordRound(ho)
	}
	for p, d := range f.Decisions {
		if p >= f.N {
			return nil, fmt.Errorf("decision for unknown process %d", p)
		}
		if d.Decided {
			tr.RecordDecision(core.ProcessID(p), core.Value(d.Value), core.Round(d.Round))
		}
	}
	return tr, nil
}
