package tracefile

import (
	"strings"
	"testing"

	"heardof/internal/core"
)

func sampleTrace() *core.Trace {
	tr := core.NewTrace(3, []core.Value{7, 8, 9})
	tr.RecordRound([]core.PIDSet{core.SetOf(0, 1), core.SetOf(1, 2), core.EmptySet})
	tr.RecordRound([]core.PIDSet{core.FullSet(3), core.FullSet(3), core.FullSet(3)})
	tr.RecordDecision(1, 8, 2)
	return tr
}

func TestRoundTrip(t *testing.T) {
	orig := sampleTrace()
	data, err := Encode(orig)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != orig.N || got.NumRounds() != orig.NumRounds() {
		t.Fatalf("shape mismatch: n=%d rounds=%d", got.N, got.NumRounds())
	}
	for r := core.Round(1); r <= orig.NumRounds(); r++ {
		for p := 0; p < orig.N; p++ {
			if got.HO(core.ProcessID(p), r) != orig.HO(core.ProcessID(p), r) {
				t.Errorf("HO(%d,%d) mismatch", p, r)
			}
		}
	}
	for i := range orig.Initial {
		if got.Initial[i] != orig.Initial[i] {
			t.Error("initial values mismatch")
		}
	}
	if d := got.Decisions[1]; !d.Decided || d.Value != 8 || d.Round != 2 {
		t.Errorf("decision = %v", d)
	}
	if got.Decisions[0].Decided {
		t.Error("phantom decision")
	}
}

func TestDecodeRejections(t *testing.T) {
	cases := []struct {
		name string
		data string
		want string
	}{
		{"garbage", "{", "parse trace"},
		{"bad n", `{"n": 0, "initial": []}`, "invalid n"},
		{"huge n", `{"n": 100, "initial": []}`, "invalid n"},
		{"initial mismatch", `{"n": 2, "initial": [1]}`, "initial values"},
		{"round width", `{"n": 2, "initial": [1,2], "rounds": [[3]]}`, "HO sets"},
		{"decision overflow", `{"n": 1, "initial": [1], "rounds": [], "decisions": [{"decided":true},{"decided":true}]}`, "unknown process"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode([]byte(tc.data))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestDecodeClampsOutOfRangeBits(t *testing.T) {
	// Bits beyond n-1 are clamped away.
	data := `{"n": 2, "initial": [0, 0], "rounds": [[255, 3]], "decisions": []}`
	tr, err := Decode([]byte(data))
	if err != nil {
		t.Fatal(err)
	}
	if tr.HO(0, 1) != core.FullSet(2) {
		t.Errorf("HO(0,1) = %v, want clamped {0,1}", tr.HO(0, 1))
	}
}
