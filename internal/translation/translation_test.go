package translation

import (
	"testing"

	"heardof/internal/adversary"
	"heardof/internal/core"
	"heardof/internal/otr"
	"heardof/internal/xrand"
)

// probe is an inner algorithm that records the heard-of sets delivered to
// it at macro-round granularity, so tests can check the translated HO sets
// directly (Algorithm 7 view).
type probe struct{}

func (probe) Name() string { return "probe" }

func (probe) NewInstance(p core.ProcessID, n int, initial core.Value) core.Instance {
	return &probeInst{}
}

type probeInst struct {
	macroHO []core.PIDSet
}

func (pi *probeInst) Send(core.Round) core.Message { return "macro-payload" }

func (pi *probeInst) Transition(_ core.Round, msgs []core.IncomingMessage) {
	pi.macroHO = append(pi.macroHO, core.Senders(msgs))
}

func (pi *probeInst) Decided() (core.Value, bool) { return 0, false }

func runTranslated(t *testing.T, n, f int, prov core.HOProvider, rounds core.Round) *core.Runner {
	t.Helper()
	alg := Algorithm{Inner: probe{}, F: f}
	ru, err := core.NewRunner(alg, make([]core.Value, n), prov)
	if err != nil {
		t.Fatal(err)
	}
	ru.RunRounds(rounds)
	return ru
}

func macroHOs(ru *core.Runner, p core.ProcessID) []core.PIDSet {
	return ru.Instances()[p].(*Instance).inner.(*probeInst).macroHO
}

// transientExtras satisfies Pk(Π0) while guaranteeing that no process
// outside Π0 is heard by the same Π0 member in two consecutive rounds, so
// Listen_p = Π0 for every p ∈ Π0 at every macro-round boundary. Under this
// condition Lemma C.7 holds (see TestLemmaC7CounterexampleFinding for what
// happens without it).
type transientExtras struct {
	pi0 core.PIDSet
	rng *xrand.Rand
}

func (a *transientExtras) HOSets(r core.Round, n int) []core.PIDSet {
	outside := a.pi0.Complement(n)
	out := make([]core.PIDSet, n)
	for q := 0; q < n; q++ {
		// Alternate which outside processes may be heard so that none
		// survives the Listen intersection of any two consecutive rounds.
		var extra core.PIDSet
		outside.ForEach(func(s core.ProcessID) {
			if (int(r)+int(s))%2 == 0 && a.rng.Bool(0.7) {
				extra = extra.Add(s)
			}
		})
		if a.pi0.Has(core.ProcessID(q)) {
			out[q] = a.pi0.Union(extra)
		} else {
			out[q] = extra
		}
	}
	return out
}

func TestTheorem8KernelRoundsYieldSpaceUniformMacroRound(t *testing.T) {
	// f+1 rounds satisfying Pk(Π0,·,·), with |Π0| = n−f and n > 2f,
	// translate into macro-rounds satisfying Psu: every process of Π0
	// computes the SAME macro heard-of set (= Good, Lemma C.7), and it
	// contains Π0.
	cases := []struct{ n, f int }{{3, 1}, {5, 2}, {7, 3}, {4, 1}, {9, 4}}
	for _, tc := range cases {
		pi0 := core.FullSet(tc.n - tc.f) // Π0 = {0..n-f-1}
		prov := &transientExtras{pi0: pi0, rng: xrand.New(uint64(tc.n*100 + tc.f))}
		ru := runTranslated(t, tc.n, tc.f, prov, core.Round(4*(tc.f+1)))
		hos0 := macroHOs(ru, 0)
		if len(hos0) == 0 {
			t.Fatalf("n=%d f=%d: no macro-rounds executed", tc.n, tc.f)
		}
		pi0.ForEach(func(p core.ProcessID) {
			hos := macroHOs(ru, p)
			for i, ho := range hos {
				if ho != hos0[i] {
					t.Errorf("n=%d f=%d macro %d: HO differs across Π0: %v vs %v",
						tc.n, tc.f, i+1, ho, hos0[i])
				}
				if !ho.Contains(pi0) {
					t.Errorf("n=%d f=%d macro %d: HO %v does not contain Π0 %v",
						tc.n, tc.f, i+1, ho, pi0)
				}
			}
		})
	}
}

func TestMacroKernelGuaranteeAlwaysHolds(t *testing.T) {
	// The ⊇ direction of Lemma C.7 needs only Pk(Π0, ·, ·): whatever else
	// happens, every Π0 member's macro heard-of set contains Π0. This is
	// the guarantee the combined stack of §4.2.2(c) relies on, and it
	// holds even under persistent adversarial extras.
	cases := []struct{ n, f int }{{3, 1}, {5, 2}, {7, 2}, {9, 4}}
	for _, tc := range cases {
		pi0 := core.FullSet(tc.n - tc.f)
		prov := adversary.KernelRounds{
			Pi0: pi0, From: 1, To: 100, RNG: xrand.New(uint64(tc.n*31 + tc.f)),
		}
		ru := runTranslated(t, tc.n, tc.f, prov, core.Round(4*(tc.f+1)))
		pi0.ForEach(func(p core.ProcessID) {
			for i, ho := range macroHOs(ru, p) {
				if !ho.Contains(pi0) {
					t.Errorf("n=%d f=%d macro %d p%d: HO %v misses Π0 %v",
						tc.n, tc.f, i+1, p, ho, pi0)
				}
			}
		})
	}
}

func TestLemmaC7CounterexampleFinding(t *testing.T) {
	// Reproduction finding (documented in EXPERIMENTS.md): the literal
	// statement of Lemma C.7 — NewHO_p = Good for all p ∈ Π0 whenever
	// Pk(Π0, r1, r1+f) holds — additionally needs that no process outside
	// Π0 is heard by a Π0 member in EVERY round of the macro-round.
	// Concretely for n=3, f=1, Π0={0,1}: HO(0,·)={0,1,2}, HO(1,·)={0,1},
	// HO(2,r1)={2} satisfies Pk({0,1}) yet yields NewHO_0 = {0,1,2} and
	// NewHO_1 = {0,1}. This test pins that behaviour down so the deviation
	// from the paper is visible and intentional.
	script := adversary.Scripted{
		Rounds: [][]core.PIDSet{
			{core.SetOf(0, 1, 2), core.SetOf(0, 1), core.SetOf(2)}, // r1
			{core.SetOf(0, 1, 2), core.SetOf(0, 1), core.SetOf(2)}, // r2 (boundary)
		},
		Then: adversary.Silence{},
	}
	ru := runTranslated(t, 3, 1, script, 2)
	ho0 := macroHOs(ru, 0)
	ho1 := macroHOs(ru, 1)
	if len(ho0) != 1 || len(ho1) != 1 {
		t.Fatalf("expected exactly one macro-round, got %d/%d", len(ho0), len(ho1))
	}
	if ho0[0] != core.SetOf(0, 1, 2) {
		t.Errorf("NewHO_0 = %v, expected {0,1,2} (the counterexample)", ho0[0])
	}
	if ho1[0] != core.SetOf(0, 1) {
		t.Errorf("NewHO_1 = %v, expected {0,1}", ho1[0])
	}
	// The kernel guarantee still holds for both.
	pi0 := core.SetOf(0, 1)
	if !ho0[0].Contains(pi0) || !ho1[0].Contains(pi0) {
		t.Error("macro kernel guarantee violated")
	}
}

func TestMacroRoundArithmetic(t *testing.T) {
	inst := &Instance{f: 2} // macro-rounds of 3 rounds
	tests := []struct {
		r        core.Round
		macro    core.Round
		boundary bool
	}{
		{1, 1, false}, {2, 1, false}, {3, 1, true},
		{4, 2, false}, {6, 2, true}, {7, 3, false},
	}
	for _, tt := range tests {
		if got := inst.MacroRound(tt.r); got != tt.macro {
			t.Errorf("MacroRound(%d) = %d, want %d", tt.r, got, tt.macro)
		}
		if got := inst.isBoundary(tt.r); got != tt.boundary {
			t.Errorf("isBoundary(%d) = %v, want %v", tt.r, got, tt.boundary)
		}
	}
}

func TestSilentRoundsProduceEmptyMacroHO(t *testing.T) {
	ru := runTranslated(t, 4, 1, adversary.Silence{}, 4)
	for _, ho := range macroHOs(ru, 0) {
		if !ho.IsEmpty() {
			t.Errorf("macro HO %v from silent rounds", ho)
		}
	}
}

func TestFullRoundsProduceFullMacroHO(t *testing.T) {
	n := 5
	ru := runTranslated(t, n, 2, adversary.Full{}, 6)
	hos := macroHOs(ru, 0)
	if len(hos) != 2 {
		t.Fatalf("got %d macro-rounds, want 2", len(hos))
	}
	for _, ho := range hos {
		if ho != core.FullSet(n) {
			t.Errorf("macro HO = %v, want full", ho)
		}
	}
}

func TestTranslatedOTRSolvesConsensusUnderPk(t *testing.T) {
	// End-to-end: OTR wrapped in the translation, driven by kernel rounds
	// only (never space-uniform at the outer layer), still decides —
	// because the translation manufactures the space uniformity.
	n, f := 7, 3
	pi0 := core.FullSet(n - f) // 4 of 7 > 2·7/3? 12 > 14 is false!
	// |Π0| must exceed 2n/3 for OTR to decide; pick f small enough.
	f = 2
	pi0 = core.FullSet(n - f) // 5 of 7: 15 > 14 ✓
	alg := Algorithm{Inner: otr.Algorithm{}, F: f}
	initial := []core.Value{3, 1, 4, 1, 5, 9, 2}
	prov := adversary.KernelRounds{Pi0: pi0, From: 1, To: 1000, RNG: xrand.New(42)}
	ru, err := core.NewRunner(alg, initial, prov)
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := ru.Run(core.Round(6 * (f + 1)))
	if err := tr.CheckConsensusSafety(); err != nil {
		t.Fatal(err)
	}
	if !tr.DecidedSet().Contains(pi0) {
		t.Errorf("Π0 %v did not decide; decided = %v", pi0, tr.DecidedSet())
	}
}

func TestTranslationSafetyUnderArbitraryAdversary(t *testing.T) {
	// The translation must never make the inner OTR violate safety, no
	// matter the outer heard-of sets.
	for seed := uint64(0); seed < 300; seed++ {
		n := 3 + int(seed%5)
		f := int(seed % uint64((n-1)/2+1))
		alg := Algorithm{Inner: otr.Algorithm{}, F: f}
		initial := make([]core.Value, n)
		rng := xrand.New(seed)
		for i := range initial {
			initial[i] = core.Value(rng.Intn(3))
		}
		prov := &adversary.Arbitrary{RNG: xrand.New(seed ^ 0x5555), EmptyBias: 0.15}
		ru, err := core.NewRunner(alg, initial, prov)
		if err != nil {
			t.Fatal(err)
		}
		ru.RunRounds(core.Round(5 * (f + 1)))
		if err := ru.Trace().CheckConsensusSafety(); err != nil {
			t.Fatalf("seed %d n=%d f=%d: %v", seed, n, f, err)
		}
	}
}

func TestAblationShortMacroRoundsBreakTranslation(t *testing.T) {
	// DESIGN.md ablation: with macro-rounds of f rounds instead of f+1
	// (use translation parameter f−1 against an adversary with n−f
	// kernel processes), space uniformity is no longer guaranteed. We
	// verify the mechanism can fail by finding a seed where macro HO sets
	// differ across Π0 members.
	n, f := 5, 2
	pi0 := core.FullSet(n - f)
	broken := false
	for seed := uint64(0); seed < 400 && !broken; seed++ {
		prov := &pkWithAdversarialExtras{pi0: pi0, n: n, rng: xrand.New(seed)}
		alg := Algorithm{Inner: probe{}, F: f - 1} // too few relay rounds
		ru, err := core.NewRunner(alg, make([]core.Value, n), prov)
		if err != nil {
			t.Fatal(err)
		}
		ru.RunRounds(core.Round(4 * f))
		byProcess := map[int][]core.PIDSet{}
		pi0.ForEach(func(p core.ProcessID) {
			byProcess[int(p)] = macroHOs(ru, p)
		})
		ref := byProcess[0]
		for _, hos := range byProcess {
			for i := range hos {
				if i < len(ref) && hos[i] != ref[i] {
					broken = true
				}
			}
		}
	}
	if !broken {
		t.Error("f-round macro-rounds never produced divergent HO sets; " +
			"ablation expected a failure case")
	}
}

// pkWithAdversarialExtras satisfies Pk(pi0) but gives different processes
// maximally different extra senders, the hardest case for the translation.
type pkWithAdversarialExtras struct {
	pi0 core.PIDSet
	n   int
	rng *xrand.Rand
}

func (p *pkWithAdversarialExtras) HOSets(_ core.Round, n int) []core.PIDSet {
	out := make([]core.PIDSet, n)
	for q := 0; q < n; q++ {
		extra := core.PIDSet(p.rng.Uint64()) & core.FullSet(n)
		if p.pi0.Has(core.ProcessID(q)) {
			out[q] = p.pi0.Union(extra)
		} else {
			out[q] = extra
		}
	}
	return out
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	alg := Algorithm{Inner: otr.Algorithm{}, F: 1}
	inst := alg.NewInstance(0, 3, 11).(*Instance)
	inst.Transition(1, []core.IncomingMessage{
		{From: 1, Payload: knownMsg{Known: map[core.ProcessID]core.Message{1: "m1"}}},
	})
	snap := inst.Snapshot()
	listenBefore, knownBefore := inst.listen, len(inst.known)

	inst.Transition(2, nil) // boundary: resets listen/known
	if inst.listen == listenBefore && len(inst.known) == knownBefore {
		t.Log("state coincidentally equal; still checking restore")
	}
	inst.Restore(snap)
	if inst.listen != listenBefore || len(inst.known) != knownBefore {
		t.Error("Restore did not bring back pre-boundary state")
	}
	inst.Restore(42) // garbage: no-op
	if inst.listen != listenBefore {
		t.Error("garbage Restore clobbered state")
	}
}

func TestAlgorithmName(t *testing.T) {
	alg := Algorithm{Inner: otr.Algorithm{}, F: 3}
	if alg.Name() != "PkToPsu(f=3)/OneThirdRule" {
		t.Errorf("Name = %q", alg.Name())
	}
}
