// Package translation implements Algorithm 4 (and its abstract form,
// Algorithm 7) of Hutle & Schiper (DSN 2007): the translation that builds
// one macro-round satisfying P_su(Π0, ·, ·) out of f+1 consecutive rounds
// satisfying P_k(Π0, ·, ·), where |Π0| = n − f and n > 2f (Theorem 8).
//
// The translation wraps an inner HO algorithm A: each macro-round R
// consists of f+1 outer rounds. In the first round of R every process
// broadcasts its Known set, initialized to {⟨S_p^R(s_p), p⟩}; in the
// following rounds the Known sets heard from still-listened-to processes
// are merged and relayed; at the last round of the macro-round the new
// heard-of set is computed as the processes known to at least n−f listened
// processes, and A's transition function for macro-round R runs over the
// corresponding messages.
//
// Because the translation is itself an HO algorithm, it composes with any
// execution substrate: the lock-step core.Runner (used by the Theorem 8
// property tests) or Algorithm 3 on the real-time simulator (the full
// stack of §4.2.2(c)).
package translation

import (
	"fmt"

	"heardof/internal/core"
)

// Algorithm wraps an inner HO algorithm with the f+1-round translation.
type Algorithm struct {
	// Inner is the HO algorithm executed at macro-round granularity.
	Inner core.Algorithm
	// F is the translation parameter: macro-rounds have F+1 rounds and the
	// known-by threshold is n−F. Requires n > 2F.
	F int
}

var _ core.Algorithm = Algorithm{}

// Name implements core.Algorithm.
func (a Algorithm) Name() string {
	return fmt.Sprintf("PkToPsu(f=%d)/%s", a.F, a.Inner.Name())
}

// NewInstance implements core.Algorithm.
func (a Algorithm) NewInstance(p core.ProcessID, n int, initial core.Value) core.Instance {
	inner := a.Inner.NewInstance(p, n, initial)
	inst := &Instance{
		p:     p,
		n:     n,
		f:     a.F,
		inner: inner,
	}
	inst.resetMacroRound(1)
	return inst
}

// knownMsg is the outer round message: the sender's Known set, a map from
// origin process to that origin's macro-round message.
type knownMsg struct {
	Known map[core.ProcessID]core.Message
}

func cloneKnown(k map[core.ProcessID]core.Message) map[core.ProcessID]core.Message {
	out := make(map[core.ProcessID]core.Message, len(k))
	for p, m := range k {
		out[p] = m
	}
	return out
}

// Instance is one process's translation state (Listen_p, Known_p) plus the
// wrapped inner instance.
type Instance struct {
	p     core.ProcessID
	n     int
	f     int
	inner core.Instance

	listen core.PIDSet
	known  map[core.ProcessID]core.Message
	// newHO is kept after each macro-round boundary for inspection.
	newHO core.PIDSet
}

var (
	_ core.Instance    = (*Instance)(nil)
	_ core.Recoverable = (*Instance)(nil)
)

// resetMacroRound reinitializes Listen_p and Known_p for macro-round R
// (lines 2, 4, 16, 17 of Algorithm 4).
func (i *Instance) resetMacroRound(macro core.Round) {
	i.listen = core.FullSet(i.n)
	i.known = map[core.ProcessID]core.Message{i.p: i.inner.Send(macro)}
}

// MacroRound returns the macro-round containing outer round r.
func (i *Instance) MacroRound(r core.Round) core.Round {
	return (r + core.Round(i.f)) / core.Round(i.f+1)
}

// isBoundary reports whether r is the last round of its macro-round
// (r ≡ 0 mod f+1).
func (i *Instance) isBoundary(r core.Round) bool {
	return int(r)%(i.f+1) == 0
}

// LastNewHO returns the heard-of set delivered to the inner algorithm at
// the most recent macro-round boundary.
func (i *Instance) LastNewHO() core.PIDSet { return i.newHO }

// Inner returns the wrapped inner instance.
func (i *Instance) Inner() core.Instance { return i.inner }

// Send implements S_p^r: broadcast ⟨Known_p⟩.
func (i *Instance) Send(core.Round) core.Message {
	return knownMsg{Known: cloneKnown(i.known)}
}

// Transition implements T_p^r (lines 8–17 of Algorithm 4).
func (i *Instance) Transition(r core.Round, msgs []core.IncomingMessage) {
	heard := core.EmptySet
	knowns := make(map[core.ProcessID]map[core.ProcessID]core.Message, len(msgs))
	for _, im := range msgs {
		km, ok := im.Payload.(knownMsg)
		if !ok {
			continue
		}
		heard = heard.Add(im.From)
		knowns[im.From] = km.Known
	}

	// Line 9: Listen_p ← Listen_p ∩ {q | ⟨Known_q⟩ received}.
	i.listen = i.listen.Intersect(heard)

	if !i.isBoundary(r) {
		// Line 10–11: merge the Known sets of listened-to senders.
		i.listen.ForEach(func(q core.ProcessID) {
			for origin, m := range knowns[q] {
				if _, dup := i.known[origin]; !dup {
					i.known[origin] = m
				}
			}
		})
		return
	}

	// Lines 12–17: macro-round boundary. First fold in this round's Known
	// sets so counting sees the freshest information, then compute NewHO
	// as the origins known by at least n−f listened-to processes.
	counts := make(map[core.ProcessID]int, i.n)
	payloads := make(map[core.ProcessID]core.Message, i.n)
	i.listen.ForEach(func(q core.ProcessID) {
		for origin, m := range knowns[q] {
			counts[origin]++
			if _, dup := payloads[origin]; !dup {
				payloads[origin] = m
			}
			if _, dup := i.known[origin]; !dup {
				i.known[origin] = m
			}
		}
	})

	var newHO core.PIDSet
	inbox := make([]core.IncomingMessage, 0, len(counts))
	for origin, c := range counts {
		if c >= i.n-i.f {
			newHO = newHO.Add(origin)
		}
	}
	newHO.ForEach(func(origin core.ProcessID) {
		m := i.known[origin]
		if m == nil {
			m = payloads[origin]
		}
		inbox = append(inbox, core.IncomingMessage{From: origin, Payload: m})
	})
	i.newHO = newHO

	macro := i.MacroRound(r)
	i.inner.Transition(macro, inbox)
	i.resetMacroRound(macro + 1)
}

// Decided implements core.Instance.
func (i *Instance) Decided() (core.Value, bool) { return i.inner.Decided() }

// snapshot is the stable-storage image of a translation instance.
type snapshot struct {
	listen core.PIDSet
	known  map[core.ProcessID]core.Message
	newHO  core.PIDSet
	inner  core.Snapshot
}

// Snapshot implements core.Recoverable; it requires the inner instance to
// be recoverable too.
func (i *Instance) Snapshot() core.Snapshot {
	var innerSnap core.Snapshot
	if rec, ok := i.inner.(core.Recoverable); ok {
		innerSnap = rec.Snapshot()
	}
	return snapshot{
		listen: i.listen,
		known:  cloneKnown(i.known),
		newHO:  i.newHO,
		inner:  innerSnap,
	}
}

// Restore implements core.Recoverable.
func (i *Instance) Restore(s core.Snapshot) {
	sn, ok := s.(snapshot)
	if !ok {
		return
	}
	i.listen = sn.listen
	i.known = cloneKnown(sn.known)
	i.newHO = sn.newHO
	if rec, ok := i.inner.(core.Recoverable); ok && sn.inner != nil {
		rec.Restore(sn.inner)
	}
}
