package uv

import (
	"testing"

	"heardof/internal/adversary"
	"heardof/internal/core"
	"heardof/internal/xrand"
)

func vals(vs ...int64) []core.Value {
	out := make([]core.Value, len(vs))
	for i, v := range vs {
		out[i] = core.Value(v)
	}
	return out
}

func TestFaultFreeDecidesInTwoPhases(t *testing.T) {
	ru, err := core.NewRunner(Algorithm{}, vals(4, 2, 7), adversary.Full{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ru.Run(10)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Phase 1: distinct values, so round 1 is not uniform — everyone
	// adopts min=2 but nobody votes; round 2 carries only ⊥. Phase 2:
	// round 3 is uniform on 2, everyone votes 2; round 4 decides 2.
	if tr.NumRounds() != 4 {
		t.Errorf("decided in %d rounds, want 4", tr.NumRounds())
	}
	for p, d := range tr.Decisions {
		if !d.Decided || d.Value != 2 {
			t.Errorf("p%d decision = %v, want 2", p, d)
		}
	}
}

func TestUnanimousInputsDecideInOnePhase(t *testing.T) {
	ru, err := core.NewRunner(Algorithm{}, vals(6, 6, 6, 6), adversary.Full{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ru.Run(10)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if tr.NumRounds() != 2 {
		t.Errorf("decided in %d rounds, want 2", tr.NumRounds())
	}
}

func TestNonEmptyKernelPreservesSafety(t *testing.T) {
	// UniformVoting's predicate class: every round has a non-empty
	// kernel. Here process 0 is in everyone's HO set every round, with
	// everything else random: safety must hold for any such run, and the
	// estimates never diverge into a decided disagreement.
	for seed := uint64(0); seed < 300; seed++ {
		n := 3 + int(seed%5)
		rng := xrand.New(seed)
		prov := core.HOProviderFunc(func(r core.Round, n int) []core.PIDSet {
			out := make([]core.PIDSet, n)
			for p := 0; p < n; p++ {
				out[p] = (core.PIDSet(rng.Uint64()) & core.FullSet(n)).Add(0)
			}
			return out
		})
		initial := make([]core.Value, n)
		for i := range initial {
			initial[i] = core.Value(rng.Intn(4))
		}
		ru, err := core.NewRunner(Algorithm{}, initial, prov)
		if err != nil {
			t.Fatal(err)
		}
		ru.RunRounds(24)
		if err := ru.Trace().CheckConsensusSafety(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestSafetyIsConditionalOnNonEmptyKernels(t *testing.T) {
	// Unlike OneThirdRule (whose safety is unconditional), UniformVoting
	// is safe only together with its predicate: rounds with empty kernels
	// can split the system into cliques that decide differently. This is
	// why [6] pairs it with the non-empty-kernel predicate class. The
	// test documents the conditionality by exhibiting a violation under
	// an arbitrary adversary — if no violation existed, the predicate
	// would be unnecessary.
	violated := false
	for seed := uint64(0); seed < 500 && !violated; seed++ {
		n := 2 + int(seed%6)
		prov := &adversary.Arbitrary{RNG: xrand.New(seed), EmptyBias: 0.25}
		initial := make([]core.Value, n)
		rng := xrand.New(seed ^ 0x77)
		for i := range initial {
			initial[i] = core.Value(rng.Intn(3))
		}
		ru, err := core.NewRunner(Algorithm{}, initial, prov)
		if err != nil {
			t.Fatal(err)
		}
		ru.RunRounds(30)
		tr := ru.Trace()
		if !tr.IntegrityHolds() {
			t.Fatalf("seed %d: integrity violated — that must NEVER happen", seed)
		}
		if !tr.AgreementHolds() {
			violated = true
		}
	}
	if !violated {
		t.Error("no agreement violation found under arbitrary adversaries; " +
			"expected UniformVoting's safety to be predicate-conditional")
	}
}

func TestDecidesAfterUniformPhaseFollowingNoise(t *testing.T) {
	// Noise rounds (non-empty kernels would be needed for liveness in
	// general; silence is fine for safety) followed by full rounds: the
	// first full phase decides.
	prov := adversary.Scripted{
		Rounds: [][]core.PIDSet{
			make([]core.PIDSet, 4), // silent round 1
			make([]core.PIDSet, 4), // silent round 2
		},
		Then: adversary.Full{},
	}
	ru, err := core.NewRunner(Algorithm{}, vals(5, 6, 7, 8), prov)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ru.Run(12)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := tr.CheckConsensusSafety(); err != nil {
		t.Fatal(err)
	}
	for p, d := range tr.Decisions {
		if d.Value != 5 {
			t.Errorf("p%d decided %d, want 5", p, d.Value)
		}
	}
}

func TestVoteRequiresUniformReception(t *testing.T) {
	inst := Algorithm{}.NewInstance(0, 3, 9).(*Instance)
	inst.Transition(1, []core.IncomingMessage{
		{From: 0, Payload: proposal{X: 9}},
		{From: 1, Payload: proposal{X: 3}},
	})
	if inst.hasVote {
		t.Error("voted despite non-uniform values")
	}
	if inst.X() != 3 {
		t.Errorf("x = %d, want min 3", inst.X())
	}
	inst.Transition(3, []core.IncomingMessage{
		{From: 0, Payload: proposal{X: 3}},
		{From: 1, Payload: proposal{X: 3}},
	})
	if !inst.hasVote || inst.vote != 3 {
		t.Error("did not vote on uniform values")
	}
}

func TestEmptyRoundKeepsState(t *testing.T) {
	inst := Algorithm{}.NewInstance(0, 3, 9).(*Instance)
	inst.Transition(1, nil)
	inst.Transition(2, nil)
	if inst.X() != 9 {
		t.Errorf("x = %d after empty rounds, want 9", inst.X())
	}
	if _, ok := inst.Decided(); ok {
		t.Error("decided on empty rounds")
	}
}

func TestMixedVotesAdoptButDoNotDecide(t *testing.T) {
	inst := Algorithm{}.NewInstance(0, 3, 9).(*Instance)
	inst.Transition(2, []core.IncomingMessage{
		{From: 0, Payload: ballot{Vote: 4, Valid: true}},
		{From: 1, Payload: ballot{Valid: false}},
	})
	if inst.X() != 4 {
		t.Errorf("x = %d, want adopted vote 4", inst.X())
	}
	if _, ok := inst.Decided(); ok {
		t.Error("decided despite a ⊥ vote in the mix")
	}
}

func TestSnapshotRestore(t *testing.T) {
	inst := Algorithm{}.NewInstance(0, 3, 1).(*Instance)
	inst.Transition(1, []core.IncomingMessage{
		{From: 0, Payload: proposal{X: 1}},
		{From: 1, Payload: proposal{X: 1}},
		{From: 2, Payload: proposal{X: 1}},
	})
	snap := inst.Snapshot()
	fresh := Algorithm{}.NewInstance(0, 3, 0).(*Instance)
	fresh.Restore(snap)
	if fresh.X() != 1 || !fresh.hasVote || fresh.vote != 1 {
		t.Error("restore incomplete")
	}
	fresh.Restore("garbage")
	if fresh.X() != 1 {
		t.Error("garbage restore clobbered state")
	}
}
