// Package uv implements UniformVoting, the two-rounds-per-phase consensus
// algorithm of Charron-Bost & Schiper's Heard-Of model paper [6], which
// the DSN 2007 paper cites as the source of the HO framework.
//
// UniformVoting pairs with a predicate requiring only non-empty kernels
// (every round some process is heard by everybody) plus one uniform round
// for termination — a strictly different trade-off from OneThirdRule's
// 2n/3 quorums, which makes it a useful second client of the predicate
// implementation layer.
//
// Phase φ occupies rounds 2φ−1 and 2φ:
//
//	round 2φ−1: broadcast x_p; adopt the smallest value received; if all
//	            received values were equal, vote for that value.
//	round 2φ:   broadcast the vote (or ⊥); if some non-⊥ vote is received
//	            adopt it; if ALL received votes equal v ≠ ⊥, decide v.
package uv

import (
	"heardof/internal/core"
)

// Algorithm is the UniformVoting factory.
type Algorithm struct{}

var _ core.Algorithm = Algorithm{}

// Name implements core.Algorithm.
func (Algorithm) Name() string { return "UniformVoting" }

// NewInstance implements core.Algorithm.
func (Algorithm) NewInstance(p core.ProcessID, n int, initial core.Value) core.Instance {
	return &Instance{p: p, n: n, x: initial}
}

// proposal is the first-round message ⟨x_p⟩.
type proposal struct {
	X core.Value
}

// ballot is the second-round message ⟨vote_p⟩; Valid is false for ⊥.
type ballot struct {
	Vote  core.Value
	Valid bool
}

// Instance is one process's UniformVoting state.
type Instance struct {
	p core.ProcessID
	n int

	x        core.Value
	vote     core.Value
	hasVote  bool
	decided  bool
	decision core.Value
}

var (
	_ core.Instance    = (*Instance)(nil)
	_ core.Recoverable = (*Instance)(nil)
)

// X returns the current estimate (for tests).
func (i *Instance) X() core.Value { return i.x }

// Send implements S_p^r.
func (i *Instance) Send(r core.Round) core.Message {
	if r%2 == 1 {
		return proposal{X: i.x}
	}
	return ballot{Vote: i.vote, Valid: i.hasVote}
}

// Transition implements T_p^r.
func (i *Instance) Transition(r core.Round, msgs []core.IncomingMessage) {
	if r%2 == 1 {
		i.firstRound(msgs)
	} else {
		i.secondRound(msgs)
	}
}

func (i *Instance) firstRound(msgs []core.IncomingMessage) {
	i.hasVote = false
	var min core.Value
	have := false
	uniform := true
	for _, m := range msgs {
		pm, ok := m.Payload.(proposal)
		if !ok {
			continue
		}
		if !have {
			min, have = pm.X, true
		} else {
			if pm.X != min {
				uniform = false
			}
			if pm.X < min {
				min = pm.X
			}
		}
	}
	if !have {
		return // empty heard-of set: keep state
	}
	i.x = min
	if uniform {
		i.vote = min
		i.hasVote = true
	}
}

func (i *Instance) secondRound(msgs []core.IncomingMessage) {
	sawVote := false
	var v core.Value
	allEqual := true
	received := 0
	for _, m := range msgs {
		bm, ok := m.Payload.(ballot)
		if !ok {
			continue
		}
		received++
		if !bm.Valid {
			allEqual = false
			continue
		}
		if !sawVote {
			v, sawVote = bm.Vote, true
		} else if bm.Vote != v {
			// Two different non-⊥ votes cannot occur (votes come from
			// uniform first rounds), but stay defensive.
			allEqual = false
		}
	}
	if sawVote {
		i.x = v
		if allEqual && received > 0 && !i.decided {
			i.decided = true
			i.decision = v
		}
	}
	i.hasVote = false
}

// Decided implements core.Instance.
func (i *Instance) Decided() (core.Value, bool) { return i.decision, i.decided }

// ForceStateForTest sets the local state directly (model checker
// support, internal/modelcheck).
func (i *Instance) ForceStateForTest(x, vote core.Value, hasVote, decided bool, decision core.Value) {
	i.x, i.vote, i.hasVote, i.decided, i.decision = x, vote, hasVote, decided, decision
}

// StateForTest returns the full local state (model checker support).
func (i *Instance) StateForTest() (x, vote core.Value, hasVote, decided bool, decision core.Value) {
	return i.x, i.vote, i.hasVote, i.decided, i.decision
}

// snapshot is the stable-storage image.
type snapshot struct {
	x        core.Value
	vote     core.Value
	hasVote  bool
	decided  bool
	decision core.Value
}

// Snapshot implements core.Recoverable.
func (i *Instance) Snapshot() core.Snapshot {
	return snapshot{x: i.x, vote: i.vote, hasVote: i.hasVote, decided: i.decided, decision: i.decision}
}

// Restore implements core.Recoverable.
func (i *Instance) Restore(s core.Snapshot) {
	sn, ok := s.(snapshot)
	if !ok {
		return
	}
	i.x, i.vote, i.hasVote, i.decided, i.decision = sn.x, sn.vote, sn.hasVote, sn.decided, sn.decision
}
