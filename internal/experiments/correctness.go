package experiments

import (
	"fmt"

	"heardof/internal/adversary"
	"heardof/internal/core"
	"heardof/internal/otr"
	"heardof/internal/predicate"
	"heardof/internal/translation"
	"heardof/internal/xrand"
)

// E7SafetyAndLiveness checks the correctness theorems statistically:
// Theorem 1 (OTR + P_otr solves consensus), Theorem 2 (restricted scope),
// unconditional safety of OTR under arbitrary heard-of sets, and the
// Theorem 8 translation guarantee.
func E7SafetyAndLiveness(seed uint64) *Table {
	t := &Table{
		ID:     "E7",
		Title:  "Theorems 1, 2, 8 — randomized correctness checks",
		Header: []string{"check", "runs", "safety violations", "liveness successes"},
	}

	// Safety fuzz: arbitrary adversaries, no liveness expected.
	const fuzzRuns = 3000
	violations := 0
	rng := xrand.New(seed)
	for i := 0; i < fuzzRuns; i++ {
		n := 2 + rng.Intn(7)
		initial := make([]core.Value, n)
		for k := range initial {
			initial[k] = core.Value(rng.Intn(4))
		}
		prov := &adversary.Arbitrary{RNG: rng.Fork(), EmptyBias: 0.2}
		ru, err := core.NewRunner(otr.Algorithm{}, initial, prov)
		if err != nil {
			continue
		}
		ru.RunRounds(25)
		if ru.Trace().CheckConsensusSafety() != nil {
			violations++
		}
	}
	t.AddRow("OTR safety, arbitrary HO sets", fuzzRuns, violations, "n/a")

	// Theorem 1 liveness: Potr-realizing adversaries.
	const liveRuns = 500
	decided := 0
	potrViolations := 0
	for i := 0; i < liveRuns; i++ {
		n := 2 + rng.Intn(7)
		initial := make([]core.Value, n)
		for k := range initial {
			initial[k] = core.Value(rng.Intn(4))
		}
		prov := adversary.ScriptedPotr{
			R0:     core.Round(2 + rng.Intn(5)),
			Pi0:    core.FullSet(n),
			Before: &adversary.TransmissionLoss{Rate: 0.7, RNG: rng.Fork()},
		}
		ru, err := core.NewRunner(otr.Algorithm{}, initial, prov)
		if err != nil {
			continue
		}
		tr, runErr := ru.Run(40)
		if tr.CheckConsensusSafety() != nil {
			potrViolations++
		}
		// Termination is what Theorem 1 promises; runs that decide early
		// (during the lossy prefix) terminate before the Potr witness
		// round and still count.
		if runErr == nil {
			decided++
		}
		_ = predicate.Potr{}
	}
	t.AddRow("Theorem 1: OTR + Potr terminates", liveRuns, potrViolations, decided)

	// Theorem 2: restricted scope — Π0 decides.
	const restrRuns = 300
	restrOK := 0
	restrViol := 0
	for i := 0; i < restrRuns; i++ {
		n := 4 + rng.Intn(5)
		k := 2*n/3 + 1 // |Π0| > 2n/3
		pi0 := core.FullSet(k)
		initial := make([]core.Value, n)
		for j := range initial {
			initial[j] = core.Value(rng.Intn(4))
		}
		prov := adversary.SpaceUniformRounds{Pi0: pi0, From: 2, To: 50}
		ru, err := core.NewRunner(otr.Algorithm{}, initial, prov)
		if err != nil {
			continue
		}
		ru.RunRounds(10)
		tr := ru.Trace()
		if tr.CheckConsensusSafety() != nil {
			restrViol++
		}
		if tr.DecidedSet().Contains(pi0) {
			restrOK++
		}
	}
	t.AddRow("Theorem 2: PrestrOtr ⇒ Π0 decides", restrRuns, restrViol, restrOK)

	// Theorem 8: translation consensus under kernel-only rounds.
	const trRuns = 200
	trOK := 0
	trViol := 0
	for i := 0; i < trRuns; i++ {
		n := 4 + rng.Intn(6)
		f := (n - 1) / 3 // keep |Π0| > 2n/3
		if f < 1 {
			f = 1
			n = 4
		}
		pi0 := core.FullSet(n - f)
		alg := translation.Algorithm{Inner: otr.Algorithm{}, F: f}
		initial := make([]core.Value, n)
		for j := range initial {
			initial[j] = core.Value(rng.Intn(4))
		}
		prov := adversary.KernelRounds{Pi0: pi0, From: 1, To: 1000, RNG: rng.Fork()}
		ru, err := core.NewRunner(alg, initial, prov)
		if err != nil {
			continue
		}
		ru.RunRounds(core.Round(8 * (f + 1)))
		tr := ru.Trace()
		if tr.CheckConsensusSafety() != nil {
			trViol++
		}
		if tr.DecidedSet().Contains(pi0) {
			trOK++
		}
	}
	t.AddRow("Theorem 8: OTR ∘ translation under Pk", trRuns, trViol, trOK)

	t.Notes = append(t.Notes,
		"safety violations must be 0 in every row",
		fmt.Sprintf("liveness successes must equal runs for the Theorem 1/2/8 rows (seed %d)", seed))
	return t
}
