package experiments

import (
	"context"
	"fmt"

	"heardof/internal/adversary"
	"heardof/internal/core"
	"heardof/internal/otr"
	"heardof/internal/predicate"
	"heardof/internal/sweep"
	"heardof/internal/translation"
	"heardof/internal/xrand"
)

// e7counts aggregates one chunk of randomized runs.
type e7counts struct {
	runs       int
	violations int
	decided    int // -1 marks a safety-only chunk with no liveness claim
}

// e7block builds the cells for one check: total runs split into chunks of
// chunk runs each, every chunk owning an RNG forked deterministically from
// the block's base stream (forks happen at build time, in cell order, so
// chunk streams never depend on scheduling).
func e7block(label string, base *xrand.Rand, total, chunk int,
	one func(rng *xrand.Rand, c *e7counts)) []sweep.Cell {
	var cells []sweep.Cell
	for start := 0; start < total; start += chunk {
		size := chunk
		if start+size > total {
			size = total - start
		}
		rng := base.Fork()
		cells = append(cells, sweep.Cell{
			Label: fmt.Sprintf("%s/%d-%d", label, start, start+size-1),
			Run: func(context.Context) (any, error) {
				c := e7counts{runs: size}
				for i := 0; i < size; i++ {
					one(rng, &c)
				}
				return c, nil
			},
		})
	}
	return cells
}

// E7SafetyAndLiveness checks the correctness theorems statistically:
// Theorem 1 (OTR + P_otr solves consensus), Theorem 2 (restricted scope),
// unconditional safety of OTR under arbitrary heard-of sets, and the
// Theorem 8 translation guarantee. Each check fans out as a block of
// chunked cells; one row per block sums its chunks in cell order.
func (r *Runner) E7SafetyAndLiveness(ctx context.Context) *Table {
	t := &Table{
		ID:     "E7",
		Title:  "Theorems 1, 2, 8 — randomized correctness checks",
		Header: []string{"check", "runs", "safety violations", "liveness successes"},
	}
	rng := xrand.New(r.cfg.Seed)

	// Safety fuzz: arbitrary adversaries, no liveness expected.
	const fuzzRuns = 3000
	fuzz := e7block("E7/safety-fuzz", rng, fuzzRuns, 150, func(rng *xrand.Rand, c *e7counts) {
		c.decided = -1
		n := 2 + rng.Intn(7)
		initial := make([]core.Value, n)
		for k := range initial {
			initial[k] = core.Value(rng.Intn(4))
		}
		prov := &adversary.Arbitrary{RNG: rng.Fork(), EmptyBias: 0.2}
		ru, err := core.NewRunner(otr.Algorithm{}, initial, prov)
		if err != nil {
			return
		}
		ru.RunRounds(25)
		if ru.Trace().CheckConsensusSafety() != nil {
			c.violations++
		}
	})

	// Theorem 1 liveness: Potr-realizing adversaries. Termination is what
	// Theorem 1 promises; runs that decide early (during the lossy
	// prefix) terminate before the Potr witness round and still count.
	const liveRuns = 500
	thm1 := e7block("E7/theorem1", rng, liveRuns, 50, func(rng *xrand.Rand, c *e7counts) {
		n := 2 + rng.Intn(7)
		initial := make([]core.Value, n)
		for k := range initial {
			initial[k] = core.Value(rng.Intn(4))
		}
		prov := adversary.ScriptedPotr{
			R0:     core.Round(2 + rng.Intn(5)),
			Pi0:    core.FullSet(n),
			Before: &adversary.TransmissionLoss{Rate: 0.7, RNG: rng.Fork()},
		}
		ru, err := core.NewRunner(otr.Algorithm{}, initial, prov)
		if err != nil {
			return
		}
		tr, runErr := ru.Run(40)
		if tr.CheckConsensusSafety() != nil {
			c.violations++
		}
		if runErr == nil {
			c.decided++
		}
		_ = predicate.Potr{}
	})

	// Theorem 2: restricted scope — Π0 decides.
	const restrRuns = 300
	thm2 := e7block("E7/theorem2", rng, restrRuns, 50, func(rng *xrand.Rand, c *e7counts) {
		n := 4 + rng.Intn(5)
		k := 2*n/3 + 1 // |Π0| > 2n/3
		pi0 := core.FullSet(k)
		initial := make([]core.Value, n)
		for j := range initial {
			initial[j] = core.Value(rng.Intn(4))
		}
		prov := adversary.SpaceUniformRounds{Pi0: pi0, From: 2, To: 50}
		ru, err := core.NewRunner(otr.Algorithm{}, initial, prov)
		if err != nil {
			return
		}
		ru.RunRounds(10)
		tr := ru.Trace()
		if tr.CheckConsensusSafety() != nil {
			c.violations++
		}
		if tr.DecidedSet().Contains(pi0) {
			c.decided++
		}
	})

	// Theorem 8: translation consensus under kernel-only rounds.
	const trRuns = 200
	thm8 := e7block("E7/theorem8", rng, trRuns, 25, func(rng *xrand.Rand, c *e7counts) {
		n := 4 + rng.Intn(6)
		f := (n - 1) / 3 // keep |Π0| > 2n/3
		if f < 1 {
			f = 1
			n = 4
		}
		pi0 := core.FullSet(n - f)
		alg := translation.Algorithm{Inner: otr.Algorithm{}, F: f}
		initial := make([]core.Value, n)
		for j := range initial {
			initial[j] = core.Value(rng.Intn(4))
		}
		prov := adversary.KernelRounds{Pi0: pi0, From: 1, To: 1000, RNG: rng.Fork()}
		ru, err := core.NewRunner(alg, initial, prov)
		if err != nil {
			return
		}
		ru.RunRounds(core.Round(8 * (f + 1)))
		tr := ru.Trace()
		if tr.CheckConsensusSafety() != nil {
			c.violations++
		}
		if tr.DecidedSet().Contains(pi0) {
			c.decided++
		}
	})

	blocks := []struct {
		row   string
		cells []sweep.Cell
	}{
		{"OTR safety, arbitrary HO sets", fuzz},
		{"Theorem 1: OTR + Potr terminates", thm1},
		{"Theorem 2: PrestrOtr ⇒ Π0 decides", thm2},
		{"Theorem 8: OTR ∘ translation under Pk", thm8},
	}
	var cells []sweep.Cell
	bounds := make([]int, 0, len(blocks)+1) // block i owns cells[bounds[i]:bounds[i+1]]
	bounds = append(bounds, 0)
	for _, b := range blocks {
		cells = append(cells, b.cells...)
		bounds = append(bounds, len(cells))
	}

	results := r.runCells(ctx, t, cells)
	for i, b := range blocks {
		var sum e7counts
		safetyOnly := false
		for _, res := range results[bounds[i]:bounds[i+1]] {
			c, ok := res.Value.(e7counts)
			if !ok {
				continue // failed/timed-out chunk, already a note
			}
			sum.runs += c.runs
			sum.violations += c.violations
			if c.decided < 0 {
				safetyOnly = true
			} else {
				sum.decided += c.decided
			}
		}
		if safetyOnly {
			t.AddRow(b.row, sum.runs, sum.violations, "n/a")
		} else {
			t.AddRow(b.row, sum.runs, sum.violations, sum.decided)
		}
	}

	t.Notes = append(t.Notes,
		"safety violations must be 0 in every row",
		fmt.Sprintf("liveness successes must equal runs for the Theorem 1/2/8 rows (seed %d)", r.cfg.Seed))
	return t
}

// E7SafetyAndLiveness regenerates the correctness table with default
// execution.
func E7SafetyAndLiveness(seed uint64) *Table {
	return New(Config{Seed: seed}).E7SafetyAndLiveness(context.Background())
}
