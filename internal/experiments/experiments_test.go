package experiments

import (
	"bytes"
	"context"
	"strconv"
	"strings"
	"testing"
)

func col(t *testing.T, tbl *Table, name string) int {
	t.Helper()
	for i, h := range tbl.Header {
		if h == name {
			return i
		}
	}
	t.Fatalf("table %s has no column %q (header %v)", tbl.ID, name, tbl.Header)
	return -1
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("not a float: %q", s)
	}
	return v
}

func TestE1RatiosBounded(t *testing.T) {
	tbl := E1Theorem3(1)
	if len(tbl.Rows) == 0 {
		t.Fatal("E1 produced no rows")
	}
	ratio := col(t, tbl, "ratio")
	for _, row := range tbl.Rows {
		if r := parseF(t, row[ratio]); r > 1.0+1e-9 {
			t.Errorf("E1 row %v: ratio %v exceeds 1 (bound violated)", row, r)
		}
	}
}

func TestE2TradeOffDirection(t *testing.T) {
	tbl := E2Corollary4(1)
	p2 := col(t, tbl, "P2otr bound")
	p11 := col(t, tbl, "P11otr bound (each)")
	twice := col(t, tbl, "2×P11otr")
	for _, row := range tbl.Rows {
		b2, b11, b22 := parseF(t, row[p2]), parseF(t, row[p11]), parseF(t, row[twice])
		if !(b11 < b2 && b2 < b22) {
			t.Errorf("trade-off direction broken: p11=%v p2=%v 2·p11=%v", b11, b2, b22)
		}
	}
}

func TestE3BoundRatioIsThreeHalves(t *testing.T) {
	tbl := E3InitialVsNonInitial(1)
	ratio := col(t, tbl, "bound ratio")
	for _, row := range tbl.Rows {
		r := parseF(t, row[ratio])
		if r < 1.5 || r > 1.75 {
			t.Errorf("bound ratio %v outside [1.5, 1.75] in row %v", r, row)
		}
	}
}

func TestE4E5RatiosBounded(t *testing.T) {
	for _, tbl := range []*Table{E4Theorem6(1), E5Theorem7(1)} {
		if len(tbl.Rows) == 0 {
			t.Fatalf("%s produced no rows", tbl.ID)
		}
		ratio := col(t, tbl, "ratio")
		for _, row := range tbl.Rows {
			if r := parseF(t, row[ratio]); r > 1.0+1e-9 {
				t.Errorf("%s row %v: ratio %v exceeds 1", tbl.ID, row, r)
			}
		}
	}
}

func TestE6DownRowsRespectBound(t *testing.T) {
	tbl := E6FullStack(1)
	mode := col(t, tbl, "outsiders")
	ratio := col(t, tbl, "ratio")
	downRows := 0
	for _, row := range tbl.Rows {
		if row[mode] != "down" {
			continue
		}
		downRows++
		if r := parseF(t, row[ratio]); r > 1.0+1e-9 {
			t.Errorf("E6 down row %v: ratio %v exceeds bound", row, r)
		}
	}
	if downRows == 0 {
		t.Error("E6 produced no outsiders-down rows")
	}
}

func TestE7ZeroViolationsFullLiveness(t *testing.T) {
	tbl := E7SafetyAndLiveness(1)
	viol := col(t, tbl, "safety violations")
	runs := col(t, tbl, "runs")
	live := col(t, tbl, "liveness successes")
	for _, row := range tbl.Rows {
		if row[viol] != "0" {
			t.Errorf("row %v: safety violations %s", row, row[viol])
		}
		if row[live] == "n/a" {
			continue
		}
		if row[live] != row[runs] {
			t.Errorf("row %v: liveness %s of %s runs", row, row[live], row[runs])
		}
	}
}

func TestE8ShowsTheGap(t *testing.T) {
	tbl := E8Uniformity(1)
	system := col(t, tbl, "system")
	model := col(t, tbl, "fault model")
	decide := col(t, tbl, "all decide")
	var hoCS, hoCR, ctCR, acrCR string
	for _, row := range tbl.Rows {
		switch {
		case strings.HasPrefix(row[system], "HO") && strings.Contains(row[model], "crash-stop"):
			hoCS = row[decide]
		case strings.HasPrefix(row[system], "HO") && strings.Contains(row[model], "crash-recovery"):
			hoCR = row[decide]
		case strings.HasPrefix(row[system], "Chandra") && strings.Contains(row[model], "crash-recovery"):
			ctCR = row[decide]
		case strings.HasPrefix(row[system], "Aguilera"):
			acrCR = row[decide]
		}
	}
	if hoCS != "true" || hoCR != "true" {
		t.Errorf("HO stack rows: crash-stop=%s crash-recovery=%s, want true/true", hoCS, hoCR)
	}
	if ctCR != "false" {
		t.Errorf("CT crash-recovery = %s, want false (naive reboot blocks)", ctCR)
	}
	if acrCR != "true" {
		t.Errorf("ACR crash-recovery = %s, want true", acrCR)
	}
}

func TestE9HOAlwaysDecides(t *testing.T) {
	tbl := E9LossSweep(1)
	ho := col(t, tbl, "HO stack decided")
	ct := col(t, tbl, "CT-◇S decided")
	loss := col(t, tbl, "loss")
	var ctAtMaxLoss, runsTotal int
	for _, row := range tbl.Rows {
		parts := strings.Split(row[ho], "/")
		if len(parts) != 2 || parts[0] != parts[1] {
			t.Errorf("loss %s: HO decided %s, want all", row[loss], row[ho])
		}
		ctParts := strings.Split(row[ct], "/")
		n, _ := strconv.Atoi(ctParts[0])
		runsTotal, _ = strconv.Atoi(ctParts[1])
		if parseF(t, row[loss]) >= 0.39 {
			ctAtMaxLoss = n
		}
	}
	if ctAtMaxLoss >= runsTotal {
		t.Errorf("CT decided %d/%d at 40%% loss; expected the footnote-2 collapse", ctAtMaxLoss, runsTotal)
	}
}

func TestE10AmortizationAcrossEnvironments(t *testing.T) {
	tbl := E10Service(1)
	if len(tbl.Rows) != 4 {
		t.Fatalf("E10 has %d rows, want 4 (notes: %v)", len(tbl.Rows), tbl.Notes)
	}
	cmds := col(t, tbl, "cmds")
	spc := col(t, tbl, "slots/cmd")
	tput := col(t, tbl, "cmds/round")
	for _, row := range tbl.Rows {
		if row[cmds] != "150" {
			t.Errorf("row %v: completed %s of 150", row, row[cmds])
		}
		if v := parseF(t, row[spc]); v >= 1 {
			t.Errorf("row %v: slots/cmd %v — batching must amortize below the old 1.0", row, v)
		}
		if v := parseF(t, row[tput]); v <= 0 {
			t.Errorf("row %v: throughput %v", row, v)
		}
	}
}

// TestE10DeterministicAcrossParallel is the workload half of this repo's
// determinism contract: the E10 table is byte-identical whether the sweep
// (and the engine pipeline inside each cell) runs on one worker or eight.
func TestE10DeterministicAcrossParallel(t *testing.T) {
	render := func(parallel int) string {
		tbl := New(Config{Seed: 1, Parallel: parallel}).E10Service(context.Background())
		var buf bytes.Buffer
		if err := tbl.Render(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	seq, par := render(1), render(8)
	if seq != par {
		t.Errorf("E10 output differs between -parallel 1 and 8:\n%s\nvs\n%s", seq, par)
	}
}

func TestE11ScalingShape(t *testing.T) {
	tbl := E11Sharding(1)
	if len(tbl.Rows) != 8 {
		t.Fatalf("E11 has %d rows, want 8 (notes: %v)", len(tbl.Rows), tbl.Notes)
	}
	shards := col(t, tbl, "shards")
	dist := col(t, tbl, "dist")
	cmds := col(t, tbl, "cmds")
	tput := col(t, tbl, "cmds/round")
	hot := col(t, tbl, "hot-shard cmds")
	// cmds/round per (dist) keyed by shard count, to check scaling.
	uniform := map[string]float64{}
	for _, row := range tbl.Rows {
		// Weak scaling: 120 commands per shard.
		s := int(parseF(t, row[shards]))
		if want := strconv.Itoa(120 * s); row[cmds] != want {
			t.Errorf("row %v: completed %s of %s", row, row[cmds], want)
		}
		if v := parseF(t, row[tput]); v <= 0 {
			t.Errorf("row %v: throughput %v", row, v)
		}
		h, c := parseF(t, row[hot]), parseF(t, row[cmds])
		if h > c {
			t.Errorf("row %v: hot-shard cmds %v above total %v", row, h, c)
		}
		if row[dist] == "uniform" {
			uniform[row[shards]] = parseF(t, row[tput])
		}
	}
	// Uniform load over more shards must raise aggregate throughput:
	// S=8 over S=1 is the headline scaling claim of the sharded layer.
	if !(uniform["8"] > uniform["1"]) {
		t.Errorf("uniform cmds/round did not scale: S=1 %v vs S=8 %v", uniform["1"], uniform["8"])
	}
}

// TestE11DeterministicAcrossParallel extends the determinism contract to
// the sharded layer: table bytes are identical whether the sweep, the
// shard fan-out inside each cell, and each group's pipeline run on one
// worker or eight.
func TestE11DeterministicAcrossParallel(t *testing.T) {
	render := func(parallel int) string {
		tbl := New(Config{Seed: 1, Parallel: parallel}).E11Sharding(context.Background())
		var buf bytes.Buffer
		if err := tbl.Render(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	seq, par := render(1), render(8)
	if seq != par {
		t.Errorf("E11 output differs between -parallel 1 and 8:\n%s\nvs\n%s", seq, par)
	}
}

func TestAblationTableShape(t *testing.T) {
	tbl := Ablations(1)
	if len(tbl.Rows) != 3 {
		t.Fatalf("ablation table has %d rows, want 3 (notes: %v)", len(tbl.Rows), tbl.Notes)
	}
	effect := col(t, tbl, "effect")
	broken := false
	for _, row := range tbl.Rows {
		if strings.Contains(row[effect], "broken") {
			broken = true
		}
	}
	if !broken {
		t.Error("expected the INIT-quorum ablation to break the predicate")
	}
}

func TestRenderAndMarkdown(t *testing.T) {
	tbl := &Table{
		ID:     "T",
		Title:  "test",
		Header: []string{"a", "b"},
		Notes:  []string{"a note"},
	}
	tbl.AddRow(1, 2.5)
	tbl.AddRow("x", "y")

	var text bytes.Buffer
	if err := tbl.Render(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "== T: test ==") ||
		!strings.Contains(text.String(), "2.50") ||
		!strings.Contains(text.String(), "note: a note") {
		t.Errorf("render output:\n%s", text.String())
	}

	var md bytes.Buffer
	if err := tbl.Markdown(&md); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "| a | b |") || !strings.Contains(md.String(), "| --- | --- |") {
		t.Errorf("markdown output:\n%s", md.String())
	}
}

func TestAllProducesEveryTable(t *testing.T) {
	tables := All(1)
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "EA"}
	if len(tables) != len(want) {
		t.Fatalf("All returned %d tables, want %d", len(tables), len(want))
	}
	for i, tbl := range tables {
		if tbl.ID != want[i] {
			t.Errorf("table %d is %s, want %s", i, tbl.ID, want[i])
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("table %s is empty", tbl.ID)
		}
	}
	var buf bytes.Buffer
	if err := RenderAll(&buf, tables); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("RenderAll produced no output")
	}
}
