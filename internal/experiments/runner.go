package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"heardof/internal/sweep"
)

// Config controls how a Runner executes experiment sweeps.
type Config struct {
	// Seed is the base seed for all randomized runs; every cell derives
	// its own stream from it, so tables depend only on Seed, never on
	// scheduling.
	Seed uint64
	// Parallel is the sweep worker count; 0 means all cores. Output is
	// byte-identical for every value.
	Parallel int
	// CellTimeout bounds each simulation cell; 0 means none. A cell that
	// exceeds it becomes a table note instead of a hang.
	CellTimeout time.Duration
	// OnProgress, if non-nil, receives live per-cell completion events.
	OnProgress func(sweep.Progress)
}

// Runner regenerates experiment tables through the sweep engine. Every
// table is expressed as a slice of independent (configuration, seed)
// cells; the engine fans them out across workers and the Runner folds the
// results back in cell order.
type Runner struct {
	cfg Config
	eng *sweep.Engine
}

// New returns a Runner for the given configuration.
func New(cfg Config) *Runner {
	return &Runner{
		cfg: cfg,
		eng: &sweep.Engine{
			Workers:     cfg.Parallel,
			CellTimeout: cfg.CellTimeout,
			OnProgress:  cfg.OnProgress,
		},
	}
}

// IDs returns the experiment identifiers in canonical order.
func IDs() []string {
	return []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "ea"}
}

// Run regenerates one experiment table by id (e1..e11, ea).
func (r *Runner) Run(ctx context.Context, id string) (*Table, error) {
	switch strings.ToLower(strings.TrimSpace(id)) {
	case "e1":
		return r.E1Theorem3(ctx), nil
	case "e2":
		return r.E2Corollary4(ctx), nil
	case "e3":
		return r.E3InitialVsNonInitial(ctx), nil
	case "e4":
		return r.E4Theorem6(ctx), nil
	case "e5":
		return r.E5Theorem7(ctx), nil
	case "e6":
		return r.E6FullStack(ctx), nil
	case "e7":
		return r.E7SafetyAndLiveness(ctx), nil
	case "e8":
		return r.E8Uniformity(ctx), nil
	case "e9":
		return r.E9LossSweep(ctx), nil
	case "e10":
		return r.E10Service(ctx), nil
	case "e11":
		return r.E11Sharding(ctx), nil
	case "ea":
		return r.Ablations(ctx), nil
	default:
		return nil, fmt.Errorf("unknown experiment %q (want e1..e11 or ea)", id)
	}
}

// All regenerates every experiment table in canonical order.
func (r *Runner) All(ctx context.Context) []*Table {
	tables := make([]*Table, 0, len(IDs()))
	for _, id := range IDs() {
		t, err := r.Run(ctx, id)
		if err != nil { // unreachable for the canonical ids
			t = &Table{ID: strings.ToUpper(id), Notes: []string{err.Error()}}
		}
		tables = append(tables, t)
	}
	return tables
}

// tableOp is a cell's contribution to its table, applied in cell order so
// that row order is independent of completion order.
type tableOp = func(*Table)

// rowCell wraps a computation that yields one table contribution into a
// sweep cell.
func rowCell(label string, run func() (tableOp, error)) sweep.Cell {
	return sweep.Cell{Label: label, Run: func(context.Context) (any, error) {
		op, err := run()
		if err != nil {
			return nil, err
		}
		return op, nil
	}}
}

// runCells executes cells through the engine and folds failures into
// table notes: timeouts and cell errors each become one note, and a
// cancelled sweep is summarized in a single trailing note. The returned
// slice is in cell order and always has one entry per cell (failed cells
// with a nil Value), for experiments that aggregate raw values.
func (r *Runner) runCells(ctx context.Context, t *Table, cells []sweep.Cell) []sweep.Result {
	results, err := r.eng.Run(ctx, cells)
	skipped := 0
	for _, res := range results {
		switch {
		case res.TimedOut:
			t.Notes = append(t.Notes, fmt.Sprintf("%s: timed out after %v; cell abandoned",
				res.Label, r.cfg.CellTimeout))
		case res.Skipped():
			skipped++
		case res.Err != nil:
			t.Notes = append(t.Notes, res.Label+": "+res.Err.Error())
		}
	}
	if err != nil {
		t.Notes = append(t.Notes, fmt.Sprintf("sweep aborted (%v): %d of %d cells not run",
			err, skipped, len(cells)))
	}
	return results
}

// sweepInto runs row-producing cells and applies their contributions to
// the table in cell order.
func (r *Runner) sweepInto(ctx context.Context, t *Table, cells []sweep.Cell) {
	for _, res := range r.runCells(ctx, t, cells) {
		if op, ok := res.Value.(tableOp); ok && op != nil {
			op(t)
		}
	}
}
