package experiments

import (
	"context"
	"errors"
	"fmt"

	"heardof/internal/adversary"
	"heardof/internal/core"
	"heardof/internal/kvstore"
	"heardof/internal/otr"
	"heardof/internal/rsm"
	"heardof/internal/shard"
	"heardof/internal/sweep"
)

// E11 configuration shared by every cell: each shard is an E10-shaped
// group (5 replicas, 8-command batches, 4-deep pipeline). The experiment
// is WEAK scaling: the closed-loop client population and the command
// count grow with the shard count (12 clients and 120 commands per
// shard), so each row offers every shard the same load and the aggregate
// throughput should grow with S — a closed loop with a FIXED population
// cannot scale, because its offered load, not consensus capacity, is the
// binding constraint.
const (
	e11N               = 5
	e11Batch           = 8
	e11Pipeline        = 4
	e11MaxRounds       = 400
	e11ClientsPerShard = 12
	e11OpsPerShard     = 120
	e11Keys            = 96
)

// e11Providers is the mixed per-shard environment: shards cycle through
// good, 30% transmission loss, and rotating crash-recovery — every group
// faces its own fault pattern, which is exactly what per-shard provider
// factories make expressible. With S = 1 the single shard runs good.
func e11Providers(seed uint64) func(s int) func(slot int) core.HOProvider {
	return func(s int) func(slot int) core.HOProvider {
		switch s % 3 {
		case 1:
			return adversary.SlotLoss(0.3, seed+uint64(s)*100003)
		case 2:
			return adversary.SlotRotatingCrash(e11N, 10)
		default:
			return adversary.SlotFull()
		}
	}
}

// E11Sharding measures horizontal scaling of the service layer: the same
// closed-loop workload over S ∈ {1, 2, 4, 8} independent replication
// groups under mixed per-shard fault environments, with uniform and
// skewed (zipfian s=0.99, hash-routed so the hot keys pile onto one
// shard) key popularity. Throughput is aggregate commands per wall
// round, where the wall clock is the run's global one: each closed-loop
// pass costs the slowest active shard's window (shards decide
// concurrently within a pass, passes synchronize the loop) — the cost a
// skewed-hot-shard workload pays is visible as the gap between the
// uniform and zipfian rows at the same S. One cell per row; all numbers
// in simulated rounds, byte-stable across hosts and -parallel.
func (r *Runner) E11Sharding(ctx context.Context) *Table {
	t := &Table{
		ID:    "E11",
		Title: "sharded service — closed-loop scaling over S groups, mixed per-shard environments (n=5/shard, batch 8, pipeline 4)",
		Header: []string{
			"shards", "dist", "cmds", "slots/cmd", "cmds/round",
			"wall rounds", "lat p50", "lat p95", "lat p99", "hot-shard cmds",
		},
	}
	seed := r.cfg.Seed

	type rowSpec struct {
		shards int
		dist   rsm.KeyDist
		off    uint64
	}
	var specs []rowSpec
	for i, s := range []int{1, 2, 4, 8} {
		specs = append(specs,
			rowSpec{s, rsm.Uniform, uint64(1000 + 10*i)},
			rowSpec{s, rsm.Zipfian, uint64(1000 + 10*i + 5)},
		)
	}

	cells := make([]sweep.Cell, 0, len(specs))
	for _, spec := range specs {
		spec := spec
		label := fmt.Sprintf("E11/s=%d/%s", spec.shards, spec.dist)
		cells = append(cells, rowCell(label, func() (tableOp, error) {
			// The Runner's Parallel threads through to the shard-level
			// fan-out and each group's pipeline workers, so the -parallel
			// byte-equivalence contract covers all three layers at once.
			cluster, err := kvstore.NewShardedCluster(
				shard.Config{Shards: spec.shards, Parallel: r.cfg.Parallel}, e11N,
				otr.Algorithm{}, e11Providers(seed+spec.off), e11MaxRounds,
				rsm.Tuning{BatchSize: e11Batch, Pipeline: e11Pipeline, Parallel: r.cfg.Parallel})
			if err != nil {
				return nil, err
			}
			ops := e11OpsPerShard * spec.shards
			res, err := shard.RunWorkload(cluster.Sharded(), rsm.WorkloadConfig{
				Clients: e11ClientsPerShard * spec.shards, Rate: 0.7, WriteRatio: 0.75,
				Keys: e11Keys, Dist: spec.dist, ZipfS: 0.99, Ops: ops,
				MaxSlots: 20 * ops, Seed: seed + spec.off + 1,
			}, kvstore.WorkloadCommand, kvstore.WorkloadRouteKey)
			if err != nil {
				return nil, err
			}
			if !cluster.Converged() {
				return nil, errors.New("a shard's replicas diverged")
			}
			hot := 0
			for _, ps := range res.PerShard {
				if ps.Completed > hot {
					hot = ps.Completed
				}
			}
			agg := res.Aggregate
			return func(t *Table) {
				t.AddRow(spec.shards, spec.dist.String(), agg.Completed,
					agg.SlotsPerCmd, agg.CmdsPerRound, int(agg.WallRounds),
					int(agg.LatencyP50), int(agg.LatencyP95), int(agg.LatencyP99), hot)
			}, nil
		}))
	}
	r.sweepInto(ctx, t, cells)
	t.Notes = append(t.Notes,
		fmt.Sprintf("weak scaling: %d clients and %d commands PER SHARD (arrival rate 0.7/window, 75%% writes, %d keys); shard environments cycle good / loss 30%% / crash-recovery", e11ClientsPerShard, e11OpsPerShard, e11Keys),
		"wall rounds is the run's global clock: Σ over closed-loop passes of the slowest ACTIVE shard's window (shards decide concurrently within a pass); hot-shard cmds shows the skew a zipfian workload concentrates on one group",
	)
	return t
}

// E11Sharding regenerates the sharded-scaling table with default execution.
func E11Sharding(seed uint64) *Table {
	return New(Config{Seed: seed}).E11Sharding(context.Background())
}
