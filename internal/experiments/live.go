// E12: the live smoke comparison — the same replicated-KV workload
// shape pushed through the two implementation layers the repo now has:
// the deterministic simulator (shard.RunWorkload over kvstore, simulated
// rounds) and the live runtime (a livekv cluster over the in-process
// channel transport, real clocks and goroutines). The point is the
// paper's separation of concerns made concrete: the algorithm layer
// (LastVoting instances) is IDENTICAL in both arms; only the layer
// below the rounds changes, and safety — agreement, convergence, zero
// divergence — must survive the move unchanged.
//
// Unlike E1–E11, the live arm measures real time: its numbers vary with
// the host and the scheduler, so E12 is NOT part of the byte-determinism
// contract and is excluded from Runner.All and hobench's default output
// (run `hobench -live`). The simulated columns remain reproducible.

package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"heardof/internal/adversary"
	"heardof/internal/core"
	"heardof/internal/kvstore"
	"heardof/internal/lastvoting"
	"heardof/internal/livekv"
	"heardof/internal/rsm"
	"heardof/internal/shard"
)

// E12 configuration: both arms use LastVoting over n=3 replicas × 2
// groups, ~400 committed commands, fault-free and 10%-loss environments.
const (
	e12N         = 3
	e12Groups    = 2
	e12Ops       = 400
	e12Clients   = 8
	e12MaxRounds = 600
	e12Loss      = 0.10
)

// E12Live builds the comparison table: one row per (mode, environment).
func (r *Runner) E12Live(ctx context.Context) *Table {
	t := &Table{
		ID: "E12",
		Title: fmt.Sprintf("simulated vs live replication — LastVoting, n=%d × %d groups, %d ops, mixed put/get",
			e12N, e12Groups, e12Ops),
		Header: []string{"mode", "env", "cmds", "slots", "slots/cmd", "throughput", "wall", "safety"},
		Notes: []string{
			"simulated rows are deterministic in the seed; live rows measure real time on this host and vary run to run",
			"live arm: in-process channel transport, 1ms round timeout, per-node loss injection at the transport layer",
		},
	}
	for _, loss := range []float64{0, e12Loss} {
		env := "good"
		if loss > 0 {
			env = fmt.Sprintf("%.0f%% loss", loss*100)
		}
		if err := e12Simulated(t, env, loss, r.cfg.Seed); err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("simulated/%s failed: %v", env, err))
		}
		if err := e12LiveArm(ctx, t, env, loss, r.cfg.Seed); err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("live/%s failed: %v", env, err))
		}
	}
	return t
}

// e12Simulated runs the simulator arm through the sharded service layer.
func e12Simulated(t *Table, env string, loss float64, seed uint64) error {
	providers := func(s int) func(slot int) core.HOProvider {
		if loss == 0 {
			return adversary.SlotFull()
		}
		return adversary.SlotLoss(loss, seed+uint64(s)*1000003)
	}
	cluster, err := kvstore.NewShardedCluster(shard.Config{Shards: e12Groups}, e12N,
		lastvoting.Algorithm{}, providers, e12MaxRounds,
		rsm.Tuning{BatchSize: 8, Pipeline: 4})
	if err != nil {
		return err
	}
	//holint:allow nodeterminism E12 measures live host wall time; it is excluded from IDs() and the determinism byte-cmp
	start := time.Now()
	res, err := shard.RunWorkload(cluster.Sharded(), rsm.WorkloadConfig{
		Clients: e12Clients, Rate: 0.7, WriteRatio: 0.6, Keys: 32,
		Ops: e12Ops, MaxSlots: 40 * e12Ops, Seed: seed,
	}, kvstore.WorkloadCommand, kvstore.WorkloadRouteKey)
	if err != nil {
		return err
	}
	safety := "converged"
	if !cluster.Converged() {
		safety = "DIVERGED"
	}
	agg := res.Aggregate
	t.AddRow("simulated", env, agg.Completed, agg.Slots,
		fmt.Sprintf("%.3f", agg.SlotsPerCmd),
		fmt.Sprintf("%.2f cmds/round", agg.CmdsPerRound),
		//holint:allow nodeterminism E12 measures live host wall time; it is excluded from IDs() and the determinism byte-cmp
		fmt.Sprintf("%d rounds (%.0fms host)", agg.WallRounds, float64(time.Since(start))/float64(time.Millisecond)),
		safety)
	return nil
}

// e12LiveArm runs the live arm: the same algorithm over the channel
// transport with real clocks, driven by concurrent closed-loop clients
// performing the hoload-style single-writer read check.
func e12LiveArm(ctx context.Context, t *Table, env string, loss float64, seed uint64) error {
	cluster, err := livekv.NewCluster(livekv.Config{
		Replicas: e12N, Groups: e12Groups, RoundTimeout: time.Millisecond,
	}, seed)
	if err != nil {
		return err
	}
	defer cluster.Close()
	for i := 0; i < cluster.N(); i++ {
		cluster.Faults(i).SetLoss(loss)
	}
	cluster.Start()

	ctx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	perClient := e12Ops / e12Clients
	//holint:allow nodeterminism E12 measures live host wall time; it is excluded from IDs() and the determinism byte-cmp
	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, e12Clients)
	for cl := 0; cl < e12Clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			nd := cluster.Node(cl % cluster.N())
			key := fmt.Sprintf("c%d", cl)
			last := ""
			for i := 1; i <= perClient; i++ {
				if i%3 != 0 || last == "" {
					last = fmt.Sprintf("v%d", i)
					if err := nd.Put(ctx, key, last); err != nil {
						errCh <- err
						return
					}
				} else {
					v, ok, err := nd.Get(ctx, key)
					if err != nil {
						errCh <- err
						return
					}
					if !ok || v != last {
						errCh <- fmt.Errorf("stale read %q, want %q", v, last)
						return
					}
				}
			}
		}(cl)
	}
	wg.Wait()
	//holint:allow nodeterminism E12 measures live host wall time; it is excluded from IDs() and the determinism byte-cmp
	elapsed := time.Since(start)
	close(errCh)
	for err := range errCh {
		return err
	}
	for i := 0; i < cluster.N(); i++ {
		cluster.Faults(i).SetLoss(0)
	}

	safety := "converged, 0 divergent"
	if err := cluster.ConvergedWithin(20 * time.Second); err != nil {
		safety = fmt.Sprintf("NOT CONVERGED: %v", err)
	}
	var cmds int
	var slots uint64
	for _, st := range cluster.Node(0).Status() {
		cmds += st.Stats.Committed
		slots += st.LogLen
	}
	slotsPerCmd := 0.0
	if cmds > 0 {
		slotsPerCmd = float64(slots) / float64(cmds)
	}
	t.AddRow("live", env, cmds, slots,
		fmt.Sprintf("%.3f", slotsPerCmd),
		fmt.Sprintf("%.0f cmds/sec", float64(cmds)/elapsed.Seconds()),
		elapsed.Round(time.Millisecond).String(),
		safety)
	return nil
}

// E12Live regenerates the comparison with default execution.
func E12Live(seed uint64) *Table {
	return New(Config{Seed: seed}).E12Live(context.Background())
}
