package experiments

import (
	"context"
	"fmt"
	"sort"

	"heardof/internal/acr"
	"heardof/internal/core"
	"heardof/internal/ctcs"
	"heardof/internal/fd"
	"heardof/internal/otr"
	"heardof/internal/predimpl"
	"heardof/internal/runtime"
	"heardof/internal/simtime"
	"heardof/internal/stable"
	"heardof/internal/sweep"
)

// hoCrashScenario runs the OTR∘Alg2 stack under a crash schedule and
// returns (decided members OK, last decision time, stable writes).
func hoCrashScenario(n int, crashes []simtime.CrashEvent, members core.PIDSet,
	periods []simtime.Period, seed uint64) (bool, float64, int64, error) {
	initial := make([]core.Value, n)
	for i := range initial {
		initial[i] = core.Value(i%3 + 1)
	}
	stack, err := predimpl.BuildStack(predimpl.StackConfig{
		Kind:      predimpl.UseAlg2,
		Algorithm: otr.Algorithm{},
		Initial:   initial,
		Sim: simtime.Config{
			N: n, Phi: 1, Delta: 5,
			Periods: periods, Crashes: crashes, Seed: seed,
		},
	})
	if err != nil {
		return false, 0, 0, err
	}
	last := stack.RunUntilAllDecided(members, 5000)
	if serr := stack.Trace().CheckConsensusSafety(); serr != nil {
		return false, 0, 0, serr
	}
	return last >= 0, last, stack.Stores.TotalWrites(), nil
}

// E8Uniformity contrasts the paper's uniformity claim (§2.1/§3.3): the
// identical HO stack handles crash-stop AND crash-recovery, while the FD
// world needs two different algorithms (Chandra–Toueg for crash-stop,
// Aguilera et al. for crash-recovery) — and the crash-stop one is unsound
// under recovery. One cell per scenario row.
func (r *Runner) E8Uniformity(ctx context.Context) *Table {
	t := &Table{
		ID:    "E8",
		Title: "§2.1/§3.3 — one HO stack vs two FD algorithms across crash models",
		Header: []string{
			"system", "fault model", "algorithm change needed", "all decide", "decision time", "stable writes",
		},
	}
	seed := r.cfg.Seed
	n := 7
	survivors := core.SetOf(0, 1, 2, 3, 4)
	csCrashes := []simtime.CrashEvent{{P: 5, At: 3, RecoverAt: -1}, {P: 6, At: 5, RecoverAt: -1}}
	csPeriods := []simtime.Period{{Start: 0, Kind: simtime.GoodDown, Pi0: survivors}}
	crCrashes := []simtime.CrashEvent{
		{P: 0, At: 10, RecoverAt: 60}, {P: 3, At: 30, RecoverAt: 90}, {P: 6, At: 55, RecoverAt: 130},
	}
	crPeriods := []simtime.Period{
		{Start: 0, Kind: simtime.Bad},
		{Start: 140, Kind: simtime.GoodDown, Pi0: core.FullSet(n)},
	}
	// §2.1's point for the naive CT reboot: process 0 is down while the
	// others decide; after its reboot it restarts from round 1, nobody
	// answers rounds that are long gone (CT has no decide-reply rule),
	// and it blocks forever.
	recoverySchedule := []runtime.CrashEvent{{P: 0, At: 2, RecoverAt: 60}}

	cells := []sweep.Cell{
		rowCell("E8/HO/crash-stop", func() (tableOp, error) {
			ok, at, writes, err := hoCrashScenario(n, csCrashes, survivors, csPeriods, seed)
			if err != nil {
				return nil, err
			}
			return func(t *Table) {
				t.AddRow("HO stack (OTR∘Alg2)", "crash-stop (SP)", "no", ok, at, writes)
			}, nil
		}),
		rowCell("E8/HO/crash-recovery", func() (tableOp, error) {
			ok, at, writes, err := hoCrashScenario(n, crCrashes, core.FullSet(n), crPeriods, seed)
			if err != nil {
				return nil, err
			}
			return func(t *Table) {
				t.AddRow("HO stack (OTR∘Alg2)", "crash-recovery (DT)", "no", ok, at, writes)
			}, nil
		}),
		rowCell("E8/CT/crash-stop", func() (tableOp, error) {
			ok, at := runCT(5, []runtime.CrashEvent{{P: 4, At: 1, RecoverAt: -1}}, 0, 0, seed)
			return func(t *Table) {
				t.AddRow("Chandra–Toueg ◇S", "crash-stop (SP)", "—", ok, at, 0)
			}, nil
		}),
		rowCell("E8/CT/crash-recovery", func() (tableOp, error) {
			ok, at := runCT(5, recoverySchedule, 0, 0, seed+1)
			return func(t *Table) {
				t.AddRow("Chandra–Toueg ◇S", "crash-recovery", "yes — naive reboot blocks", ok, at, 0)
			}, nil
		}),
		rowCell("E8/ACR/crash-recovery", func() (tableOp, error) {
			// Aguilera et al. ◇Su on the same schedule: the recoverer
			// learns the decision through retransmission + the
			// reply-with-DECIDE rule.
			ok, at, writes := runACR(5, recoverySchedule, seed)
			return func(t *Table) {
				t.AddRow("Aguilera et al. ◇Su", "crash-recovery", "yes — different algorithm+FD", ok, at, writes)
			}, nil
		}),
	}
	r.sweepInto(ctx, t, cells)
	t.Notes = append(t.Notes,
		"the HO rows run byte-identical code in both fault models; the FD rows need two algorithms (5 message kinds, 6 stable keys, retransmission and round-skipping tasks in the crash-recovery one)",
	)
	return t
}

func runCT(n int, crashes []runtime.CrashEvent, loss float64, gst runtime.Time, seed uint64) (bool, float64) {
	nodes := make([]*ctcs.Node, n)
	sim, err := runtime.New(runtime.Config{
		N: n, MinDelay: 0.5, MaxDelay: 1,
		LossProb: loss, GST: gst, StableLossProb: loss,
		Crashes: crashes, Seed: seed,
	}, func(p runtime.NodeID) runtime.Handler {
		nodes[p] = ctcs.NewNodeDeferred(n, core.Value(int(p)%3+1), 2)
		return nodes[p]
	})
	if err != nil {
		return false, 0
	}
	det := fd.NewEventuallyStrong(sim, gst, seed^0x5)
	for _, nd := range nodes {
		nd.SetDetector(det)
	}
	// "Everyone decided" may only be judged once all scheduled recoveries
	// have happened — a node that is down is not a node that decided.
	var lastRecovery runtime.Time
	for _, ce := range crashes {
		if ce.RecoverAt > lastRecovery {
			lastRecovery = ce.RecoverAt
		}
	}
	sim.RunUntilTime(lastRecovery)
	allUpDecided := func() bool {
		for p, nd := range nodes {
			if sim.CrashedForever(runtime.NodeID(p)) {
				continue
			}
			if !sim.Up(runtime.NodeID(p)) {
				return false
			}
			if _, ok := nd.Decided(); !ok {
				return false
			}
		}
		return true
	}
	if !sim.RunUntil(allUpDecided, lastRecovery+600) {
		return false, -1
	}
	return true, sim.Now()
}

func runACR(n int, crashes []runtime.CrashEvent, seed uint64) (bool, float64, int64) {
	nodes := make([]*acr.Node, n)
	stores := stable.NewRegistry()
	sim, err := runtime.New(runtime.Config{
		N: n, MinDelay: 0.5, MaxDelay: 1,
		LossProb: 0.2, GST: 40, Crashes: crashes, Seed: seed,
	}, func(p runtime.NodeID) runtime.Handler {
		nodes[p] = acr.NewNodeDeferred(n, core.Value(int(p)%3+1), stores.For(int(p)), 2, 3)
		return nodes[p]
	})
	if err != nil {
		return false, 0, 0
	}
	det := fd.NewEventuallySu(sim, 40, seed^0xA)
	for _, nd := range nodes {
		nd.SetDetector(det)
	}
	all := func() bool {
		for _, nd := range nodes {
			if _, ok := nd.Decided(); !ok {
				return false
			}
		}
		return true
	}
	if !sim.RunUntil(all, 3000) {
		return false, -1, stores.TotalWrites()
	}
	return true, sim.Now(), stores.TotalWrites()
}

// e9run is one (system, loss, seed) decision attempt.
type e9run struct {
	ok bool
	at float64
}

// E9LossSweep compares decision success under sustained message loss:
// Chandra–Toueg (with a PERFECT failure detector, isolating the link
// assumption) against the HO stack, for which loss is just a transmission
// fault. This is footnote 2 of the paper made empirical. One cell per
// (loss, seed, system) — 240 independent simulations aggregated in cell
// order.
func (r *Runner) E9LossSweep(ctx context.Context) *Table {
	t := &Table{
		ID:    "E9",
		Title: "footnote 2 — decision success under sustained message loss (20 seeds each)",
		Header: []string{
			"loss", "CT-◇S decided", "CT median time", "HO stack decided", "HO median time",
		},
	}
	const runs = 20
	n := 5
	losses := []float64{0, 0.05, 0.1, 0.2, 0.3, 0.4}
	var cells []sweep.Cell
	for _, loss := range losses {
		for s := uint64(0); s < runs; s++ {
			cells = append(cells,
				sweep.Cell{
					Label: fmt.Sprintf("E9/loss=%v/ct/seed=%d", loss, s),
					Run: func(context.Context) (any, error) {
						ok, at := runCT(n, nil, loss, 0, r.cfg.Seed+s)
						return e9run{ok, at}, nil
					},
				},
				sweep.Cell{
					Label: fmt.Sprintf("E9/loss=%v/ho/seed=%d", loss, s),
					Run: func(context.Context) (any, error) {
						ok, at := runHOUnderLoss(n, loss, r.cfg.Seed+s)
						return e9run{ok, at}, nil
					},
				})
		}
	}
	results := r.runCells(ctx, t, cells)
	for li, loss := range losses {
		// Denominators count only cells that actually produced a result:
		// a timed-out or cancelled cell must not masquerade as a
		// decision failure (that distinction is the whole table).
		ctDecided, ctTotal, ctTimes := 0, 0, []float64{}
		hoDecided, hoTotal, hoTimes := 0, 0, []float64{}
		for s := 0; s < runs; s++ {
			base := (li*runs + s) * 2
			if run, ok := results[base].Value.(e9run); ok {
				ctTotal++
				if run.ok {
					ctDecided++
					ctTimes = append(ctTimes, run.at)
				}
			}
			if run, ok := results[base+1].Value.(e9run); ok {
				hoTotal++
				if run.ok {
					hoDecided++
					hoTimes = append(hoTimes, run.at)
				}
			}
		}
		t.AddRow(loss,
			fmt.Sprintf("%d/%d", ctDecided, ctTotal), median(ctTimes),
			fmt.Sprintf("%d/%d", hoDecided, hoTotal), median(hoTimes))
	}
	t.Notes = append(t.Notes,
		"CT runs with a perfect detector from time 0 and loss applied forever: every decided run needed all its wait-untils to dodge loss; the decided fraction collapses as loss grows",
		"the HO stack treats each lost message as a transmission fault and simply takes more rounds")
	return t
}

// runHOUnderLoss runs OTR∘Alg2 in a permanently lossy-but-timely
// environment (synchronous steps, iid loss).
func runHOUnderLoss(n int, loss float64, seed uint64) (bool, float64) {
	initial := make([]core.Value, n)
	for i := range initial {
		initial[i] = core.Value(i%3 + 1)
	}
	stack, err := predimpl.BuildStack(predimpl.StackConfig{
		Kind:      predimpl.UseAlg2,
		Algorithm: otr.Algorithm{},
		Initial:   initial,
		Sim: simtime.Config{
			N: n, Phi: 1, Delta: 5,
			Periods: []simtime.Period{{Start: 0, Kind: simtime.Bad}},
			Bad: simtime.BadConfig{
				LossProb: loss,
				MinDelay: 2.5, MaxDelay: 5,
				MinGap: 1, MaxGap: 1,
			},
			Seed: seed,
		},
	})
	if err != nil {
		return false, 0
	}
	last := stack.RunUntilAllDecided(core.FullSet(n), 20000)
	if stack.Trace().CheckConsensusSafety() != nil {
		return false, -1
	}
	return last >= 0, last
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return -1
	}
	sort.Float64s(xs)
	return xs[len(xs)/2]
}

// Ablations quantifies the DESIGN.md §5 design-choice ablations. One cell
// per ablation; each cell runs its baseline and its ablated variant
// back-to-back because the ablated horizon depends on the baseline bound.
func (r *Runner) Ablations(ctx context.Context) *Table {
	t := &Table{
		ID:     "EA",
		Title:  "ablations — why the paper's design choices matter",
		Header: []string{"ablation", "paper elapsed", "ablated elapsed", "effect"},
	}
	seed := r.cfg.Seed

	fifoBase := predimpl.GoodPeriodExperiment{
		Kind: predimpl.UseAlg2, N: 7, Phi: 1, Delta: 10, X: 2, TG: 300, Seed: seed + 11,
	}
	// A lossless, slow bad period leaves deep buffers of stale messages
	// at tG — exactly the backlog the highest-round-first policy exists
	// to cut through.
	backlog := &simtime.BadConfig{
		LossProb: 0, MinDelay: 1, MaxDelay: 40, MinGap: 0.5, MaxGap: 2,
	}

	quorumBase := predimpl.GoodPeriodExperiment{
		Kind: predimpl.UseAlg3, N: 5, F: 1, Phi: 1, Delta: 5, X: 3, TG: 0, Seed: seed + 13,
	}
	fast := &simtime.BadConfig{LossProb: 0, MinDelay: 1, MaxDelay: 5, MinGap: 0.05, MaxGap: 0.15}

	catchupBase := predimpl.GoodPeriodExperiment{
		Kind: predimpl.UseAlg3, N: 5, F: 2, Phi: 1, Delta: 5, X: 2, TG: 400, Seed: seed + 17,
	}

	cells := []sweep.Cell{
		ablationCell("Alg2 reception policy → FIFO", fifoBase,
			&predimpl.Ablation{Alg2Policy: simtime.FIFO{}}, backlog),
		ablationCell("Alg3 INIT quorum f+1 → 1 (racing outsider)", quorumBase,
			&predimpl.Ablation{InitQuorum: 1}, fast),
		ablationCell("Alg3 higher-round catch-up → disabled", catchupBase,
			&predimpl.Ablation{DisableCatchup: true}, nil),
	}
	r.sweepInto(ctx, t, cells)
	return t
}

func ablationCell(name string, base predimpl.GoodPeriodExperiment,
	ab *predimpl.Ablation, bad *simtime.BadConfig) sweep.Cell {
	return rowCell("EA/"+name, func() (tableOp, error) {
		base.Bad = bad
		pure, err := base.Run()
		if err != nil {
			return nil, fmt.Errorf("baseline failed: %w", err)
		}
		ablated := base
		ablated.Ablation = ab
		ablated.Horizon = base.TG + 30*pure.Bound
		res, err := ablated.Run()
		if err != nil {
			return func(t *Table) {
				t.AddRow(name, pure.Elapsed, "never (horizon 30×bound)", "predicate broken")
			}, nil
		}
		effect := fmt.Sprintf("%.1f× slower", res.Elapsed/pure.Elapsed)
		if res.Elapsed/pure.Elapsed < 1.05 {
			effect = "≈ none (traffic is self-balancing; the policy pays for the proof's constants)"
		}
		return func(t *Table) {
			t.AddRow(name, pure.Elapsed, res.Elapsed, effect)
		}, nil
	})
}

// E8Uniformity regenerates the uniformity table with default execution.
func E8Uniformity(seed uint64) *Table {
	return New(Config{Seed: seed}).E8Uniformity(context.Background())
}

// E9LossSweep regenerates the loss-sweep table with default execution.
func E9LossSweep(seed uint64) *Table {
	return New(Config{Seed: seed}).E9LossSweep(context.Background())
}

// Ablations regenerates the ablation table with default execution.
func Ablations(seed uint64) *Table {
	return New(Config{Seed: seed}).Ablations(context.Background())
}
