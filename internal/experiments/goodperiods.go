package experiments

import (
	"context"
	"fmt"

	"heardof/internal/predimpl"
	"heardof/internal/simtime"
	"heardof/internal/sweep"
)

// E1Theorem3 measures Algorithm 2's good-period consumption for
// P_su(π0, ρ0, ρ0+x−1) in non-initial π0-down good periods against the
// Theorem 3 bound (x+1)(2δ+(n+2)φ+1)φ+δ+φ. One cell per
// (n, δ, φ, x) configuration.
func (r *Runner) E1Theorem3(ctx context.Context) *Table {
	t := &Table{
		ID:     "E1",
		Title:  "Theorem 3 — Alg 2, non-initial π0-down good period (worst-case scheduling)",
		Header: []string{"n", "δ", "φ", "x", "ρ0", "measured", "bound", "ratio"},
	}
	var cells []sweep.Cell
	for _, n := range []int{4, 7, 10} {
		for _, delta := range []float64{5, 20} {
			for _, phi := range []float64{1, 2} {
				for _, x := range []int{1, 2, 3} {
					e := predimpl.GoodPeriodExperiment{
						Kind: predimpl.UseAlg2, N: n, Phi: phi, Delta: delta,
						X: x, TG: 150, Seed: r.cfg.Seed + uint64(n*100+x),
					}
					cells = append(cells, rowCell(
						fmt.Sprintf("E1/n=%d/δ=%v/φ=%v/x=%d", n, delta, phi, x),
						func() (tableOp, error) {
							res, err := e.Run()
							if err != nil {
								return nil, err
							}
							return func(t *Table) {
								t.AddRow(n, delta, phi, x, int(res.Rho0), res.Elapsed, res.Bound, res.Ratio)
							}, nil
						}))
				}
			}
		}
	}
	r.sweepInto(ctx, t, cells)
	t.Notes = append(t.Notes,
		"measured ≤ bound everywhere: the closed form is a sound worst-case bound",
		"the bad period ends at an arbitrary phase, so measured sits below the adversarial worst case")
	return t
}

// E2Corollary4 reports the Corollary 4 trade-off: one long period for
// P_otr^2 versus two shorter periods for P_otr^1/1. One cell per
// (n, δ, φ), each running both strategies.
func (r *Runner) E2Corollary4(ctx context.Context) *Table {
	t := &Table{
		ID:     "E2",
		Title:  "Corollary 4 — P2otr (one period) vs P1/1otr (two periods), Alg 2",
		Header: []string{"n", "δ", "φ", "P2otr bound", "P11otr bound (each)", "2×P11otr", "measured x=2", "measured x=1"},
	}
	var cells []sweep.Cell
	for _, n := range []int{4, 7, 10} {
		for _, delta := range []float64{5, 20} {
			for _, phi := range []float64{1, 2} {
				cells = append(cells, rowCell(
					fmt.Sprintf("E2/n=%d/δ=%v/φ=%v", n, delta, phi),
					func() (tableOp, error) {
						p2 := predimpl.Corollary4P2otrBound(n, phi, delta)
						p11 := predimpl.Corollary4P11otrBound(n, phi, delta)
						m2, err2 := (predimpl.GoodPeriodExperiment{
							Kind: predimpl.UseAlg2, N: n, Phi: phi, Delta: delta,
							X: 2, TG: 150, Seed: r.cfg.Seed + uint64(n),
						}).Run()
						m1, err1 := (predimpl.GoodPeriodExperiment{
							Kind: predimpl.UseAlg2, N: n, Phi: phi, Delta: delta,
							X: 1, TG: 150, Seed: r.cfg.Seed + uint64(n) + 1,
						}).Run()
						if err1 != nil || err2 != nil {
							return nil, fmt.Errorf("%v %v", err1, err2)
						}
						return func(t *Table) {
							t.AddRow(n, delta, phi, p2, p11, 2*p11, m2.Elapsed, m1.Elapsed)
						}, nil
					}))
			}
		}
	}
	r.sweepInto(ctx, t, cells)
	t.Notes = append(t.Notes,
		"trade-off direction matches the paper: p11 < p2 < 2·p11 — one long period beats two short ones in total time, but needs more contiguous good time")
	return t
}

// E3InitialVsNonInitial reproduces the §4.2.1 headline: the ≈3/2 factor
// between non-initial and initial good periods at x=2. One cell per
// (n, δ, φ), each running both scenarios.
func (r *Runner) E3InitialVsNonInitial(ctx context.Context) *Table {
	t := &Table{
		ID:     "E3",
		Title:  "Theorem 5 vs Theorem 3 — initial vs non-initial good periods (x=2)",
		Header: []string{"n", "δ", "φ", "initial meas", "initial bound", "non-init meas", "non-init bound", "bound ratio", "meas ratio"},
	}
	var cells []sweep.Cell
	for _, n := range []int{4, 7, 10} {
		for _, delta := range []float64{5, 20} {
			for _, phi := range []float64{1, 2} {
				cells = append(cells, rowCell(
					fmt.Sprintf("E3/n=%d/δ=%v/φ=%v", n, delta, phi),
					func() (tableOp, error) {
						init, errI := (predimpl.GoodPeriodExperiment{
							Kind: predimpl.UseAlg2, N: n, Phi: phi, Delta: delta,
							X: 2, TG: 0, Seed: r.cfg.Seed,
						}).Run()
						non, errN := (predimpl.GoodPeriodExperiment{
							Kind: predimpl.UseAlg2, N: n, Phi: phi, Delta: delta,
							X: 2, TG: 150, Seed: r.cfg.Seed + 7,
						}).Run()
						if errI != nil || errN != nil {
							return nil, fmt.Errorf("%v %v", errI, errN)
						}
						return func(t *Table) {
							t.AddRow(n, delta, phi,
								init.Elapsed, init.Bound, non.Elapsed, non.Bound,
								non.Bound/init.Bound, non.Elapsed/init.Elapsed)
						}, nil
					}))
			}
		}
	}
	r.sweepInto(ctx, t, cells)
	t.Notes = append(t.Notes,
		"paper: 'a factor of approximately 3/2 between the two cases for the relevant value x = 2' — the bound ratio column sits at 1.5+ε for all configurations")
	return t
}

// E4Theorem6 measures Algorithm 3 in non-initial π0-arbitrary good
// periods against (x+2)[τ0φ+δ+nφ+2φ]+τ0φ. One cell per (n, f, δ, x).
func (r *Runner) E4Theorem6(ctx context.Context) *Table {
	t := &Table{
		ID:     "E4",
		Title:  "Theorem 6 — Alg 3, non-initial π0-arbitrary good period",
		Header: []string{"n", "f", "δ", "φ", "x", "ρ0", "measured", "bound", "ratio"},
	}
	cases := []struct{ n, f int }{{3, 1}, {5, 2}, {7, 3}, {9, 4}}
	var cells []sweep.Cell
	for _, c := range cases {
		for _, delta := range []float64{5, 10} {
			for _, x := range []int{1, 2, 3} {
				e := predimpl.GoodPeriodExperiment{
					Kind: predimpl.UseAlg3, N: c.n, F: c.f, Phi: 1, Delta: delta,
					X: x, TG: 150, Seed: r.cfg.Seed + uint64(c.n*10+x),
				}
				cells = append(cells, rowCell(
					fmt.Sprintf("E4/n=%d/f=%d/δ=%v/x=%d", c.n, c.f, delta, x),
					func() (tableOp, error) {
						res, err := e.Run()
						if err != nil {
							return nil, err
						}
						return func(t *Table) {
							t.AddRow(c.n, c.f, delta, 1.0, x, int(res.Rho0), res.Elapsed, res.Bound, res.Ratio)
						}, nil
					}))
			}
		}
	}
	r.sweepInto(ctx, t, cells)
	t.Notes = append(t.Notes,
		"the (x+2) multiplier covers the Lemma B.8 resynchronization; measured runs need roughly half the bound on average")
	return t
}

// E5Theorem7 measures Algorithm 3's initial good periods against
// (x−1)[τ0φ+δ+nφ+2φ]+τ0φ+φ. One cell per (n, f, δ, x).
func (r *Runner) E5Theorem7(ctx context.Context) *Table {
	t := &Table{
		ID:     "E5",
		Title:  "Theorem 7 — Alg 3, initial π0-arbitrary good period",
		Header: []string{"n", "f", "δ", "x", "measured", "bound", "ratio"},
	}
	cases := []struct{ n, f int }{{3, 1}, {5, 2}, {7, 3}, {9, 4}}
	var cells []sweep.Cell
	for _, c := range cases {
		for _, delta := range []float64{5, 10} {
			for _, x := range []int{1, 2, 3} {
				e := predimpl.GoodPeriodExperiment{
					Kind: predimpl.UseAlg3, N: c.n, F: c.f, Phi: 1, Delta: delta,
					X: x, TG: 0, Seed: r.cfg.Seed + uint64(c.n+x),
				}
				cells = append(cells, rowCell(
					fmt.Sprintf("E5/n=%d/f=%d/δ=%v/x=%d", c.n, c.f, delta, x),
					func() (tableOp, error) {
						res, err := e.Run()
						if err != nil {
							return nil, err
						}
						return func(t *Table) {
							t.AddRow(c.n, c.f, delta, x, res.Elapsed, res.Bound, res.Ratio)
						}, nil
					}))
			}
		}
	}
	r.sweepInto(ctx, t, cells)
	return t
}

// E6FullStack measures the §4.2.2(c) composition — OneThirdRule over the
// Algorithm 4 translation over Algorithm 3 — end to end against
// (2f+5)[τ0φ+δ+nφ+2φ]+τ0φ. One cell per (n, f, tG, outsiders).
func (r *Runner) E6FullStack(ctx context.Context) *Table {
	t := &Table{
		ID:     "E6",
		Title:  "§4.2.2(c) — full stack (OTR ∘ Alg 4 ∘ Alg 3): good-period time to decision",
		Header: []string{"n", "f", "tG", "outsiders", "rounds", "measured", "bound", "ratio"},
	}
	cases := []struct{ n, f int }{{4, 1}, {7, 2}, {10, 3}}
	var cells []sweep.Cell
	for _, c := range cases {
		for _, tg := range []simtime.Time{0, 150} {
			for _, down := range []bool{true, false} {
				e := predimpl.FullStackExperiment{
					N: c.n, F: c.f, Phi: 1, Delta: 5, TG: tg,
					Seed: r.cfg.Seed + uint64(c.n), OutsidersDown: down,
					Horizon: tg + 30*predimpl.Section422cFullStackBound(c.n, c.f, 1, 5),
				}
				mode := "down"
				if !down {
					mode = "active"
				}
				cells = append(cells, rowCell(
					fmt.Sprintf("E6/n=%d/f=%d/tG=%v/%s", c.n, c.f, tg, mode),
					func() (tableOp, error) {
						res, err := e.Run()
						if err != nil {
							return nil, err
						}
						return func(t *Table) {
							t.AddRow(c.n, c.f, tg, mode, int(res.Rounds), res.Elapsed, res.Bound, res.Ratio)
						}, nil
					}))
			}
		}
	}
	r.sweepInto(ctx, t, cells)
	t.Notes = append(t.Notes,
		"the bound targets the outsiders-down adversary; with active outsiders the run is not worst-case-scheduled but must still decide (ratio may exceed 1 only for 'active' rows)",
		"requires f < n/3 so that |π0| = n−f exceeds OneThirdRule's 2n/3 quorum")
	return t
}

// Sequential wrappers, used by tests and callers that do not need to
// configure the engine.

// E1Theorem3 regenerates the Theorem 3 table with default execution.
func E1Theorem3(seed uint64) *Table {
	return New(Config{Seed: seed}).E1Theorem3(context.Background())
}

// E2Corollary4 regenerates the Corollary 4 table with default execution.
func E2Corollary4(seed uint64) *Table {
	return New(Config{Seed: seed}).E2Corollary4(context.Background())
}

// E3InitialVsNonInitial regenerates the Theorem 5 vs 3 table with default
// execution.
func E3InitialVsNonInitial(seed uint64) *Table {
	return New(Config{Seed: seed}).E3InitialVsNonInitial(context.Background())
}

// E4Theorem6 regenerates the Theorem 6 table with default execution.
func E4Theorem6(seed uint64) *Table {
	return New(Config{Seed: seed}).E4Theorem6(context.Background())
}

// E5Theorem7 regenerates the Theorem 7 table with default execution.
func E5Theorem7(seed uint64) *Table {
	return New(Config{Seed: seed}).E5Theorem7(context.Background())
}

// E6FullStack regenerates the §4.2.2(c) table with default execution.
func E6FullStack(seed uint64) *Table {
	return New(Config{Seed: seed}).E6FullStack(context.Background())
}
