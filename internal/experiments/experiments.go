// Package experiments regenerates every quantitative result of Hutle &
// Schiper (DSN 2007) — the per-experiment index lives in DESIGN.md §4 and
// the measured outcomes in EXPERIMENTS.md. Each experiment returns a
// Table that cmd/hobench prints and bench_test.go exercises.
//
// Every table is expressed as a slice of independent (configuration,
// seed) cells executed through internal/sweep's worker pool and folded
// back in cell order, so a table is byte-identical whether it was
// computed on one core or all of them. Use New/Runner to configure
// parallelism, per-cell timeouts and progress reporting; the free
// per-experiment functions run with defaults.
package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Table is one experiment's result table.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row built from the arguments' default formatting.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table in aligned text form.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if _, err := fmt.Fprintln(tw, strings.Join(t.Header, "\t")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(tw, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Markdown renders the table as a GitHub-flavoured markdown table (used
// to regenerate EXPERIMENTS.md).
func (t *Table) Markdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Header, " | ")); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | ")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | ")); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "\n*%s*\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// All runs every experiment in order with default execution (all cores,
// no per-cell timeout). Failures inside an experiment are reported as
// table notes rather than aborting the suite.
func All(seed uint64) []*Table {
	return New(Config{Seed: seed}).All(context.Background())
}

// RenderAll renders all tables as text.
func RenderAll(w io.Writer, tables []*Table) error {
	for _, t := range tables {
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}
