package experiments

import (
	"context"
	"errors"
	"fmt"

	"heardof/internal/adversary"
	"heardof/internal/core"
	"heardof/internal/kvstore"
	"heardof/internal/otr"
	"heardof/internal/rsm"
	"heardof/internal/sweep"
)

// E10 configuration shared by every cell: a 5-replica KV service with
// 8-command batches and a 4-deep slot pipeline, driven by a closed loop
// of 16 clients completing 150 commands.
const (
	e10N         = 5
	e10Batch     = 8
	e10Pipeline  = 4
	e10MaxRounds = 400
	e10Clients   = 16
	e10Ops       = 150
	e10Keys      = 48
	e10MaxSlots  = 2000
)

// e10Provider builds the per-slot HO environment of one E10 row
// (adversary's shared per-slot factories, also used by cmd/hoload).
//
//   - good: fault-free rounds, every slot.
//   - loss: sustained 20% iid transmission loss (DT class), forever.
//   - crash-recovery: a rotating replica is crashed for the first half of
//     every 10-slot epoch and recovers for the second half — a minority
//     is down at any time, so OneThirdRule still clears its 2n/3 quorum.
func e10Provider(env string, seed uint64) func(slot int) core.HOProvider {
	switch env {
	case "loss 20%":
		return adversary.SlotLoss(0.2, seed)
	case "crash-recovery":
		return adversary.SlotRotatingCrash(e10N, 10)
	default: // "good"
		return adversary.SlotFull()
	}
}

// E10Service measures the service layer end to end: the same closed-loop
// workload replayed over the batched + pipelined replication engine in a
// good-period, sustained-loss, and crash-recovery environment. This is
// the scenario-diversity payoff of the predicate abstraction (Shimi et
// al.): one stack, many fault environments, directly comparable numbers.
// One cell per row; throughput and latency are measured in simulated
// rounds, so the table is byte-stable across hosts and -parallel.
func (r *Runner) E10Service(ctx context.Context) *Table {
	t := &Table{
		ID:    "E10",
		Title: "service layer — closed-loop load over the batched+pipelined engine (n=5, batch 8, pipeline 4)",
		Header: []string{
			"environment", "keys", "cmds", "slots", "slots/cmd",
			"cmds/round", "wall rounds", "lat p50", "lat p95", "lat p99",
		},
	}
	seed := r.cfg.Seed

	type rowSpec struct {
		env  string
		dist rsm.KeyDist
		off  uint64
	}
	specs := []rowSpec{
		{"good", rsm.Uniform, 100},
		{"good", rsm.Zipfian, 200},
		{"loss 20%", rsm.Zipfian, 300},
		{"crash-recovery", rsm.Zipfian, 400},
	}

	cells := make([]sweep.Cell, 0, len(specs))
	for _, spec := range specs {
		spec := spec
		cells = append(cells, rowCell("E10/"+spec.env+"/"+spec.dist.String(), func() (tableOp, error) {
			cluster, err := kvstore.NewClusterTuned(e10N, otr.Algorithm{},
				e10Provider(spec.env, seed+spec.off), e10MaxRounds,
				rsm.Tuning{BatchSize: e10Batch, Pipeline: e10Pipeline})
			if err != nil {
				return nil, err
			}
			res, err := rsm.RunWorkload(cluster.Engine(), rsm.WorkloadConfig{
				Clients: e10Clients, Rate: 0.7, WriteRatio: 0.75,
				Keys: e10Keys, Dist: spec.dist, ZipfS: 0.99, Ops: e10Ops,
				MaxSlots: e10MaxSlots, Seed: seed + spec.off + 1,
			}, kvstore.WorkloadCommand)
			if err != nil {
				return nil, err
			}
			if !cluster.Converged() {
				return nil, errors.New("replicas diverged")
			}
			return func(t *Table) {
				t.AddRow(spec.env+" / "+spec.dist.String(), e10Keys,
					res.Completed, res.Slots, res.SlotsPerCmd, res.CmdsPerRound,
					int(res.WallRounds), int(res.LatencyP50), int(res.LatencyP95), int(res.LatencyP99))
			}, nil
		}))
	}
	r.sweepInto(ctx, t, cells)
	t.Notes = append(t.Notes,
		fmt.Sprintf("closed loop: %d clients, arrival rate 0.7/window, 75%% writes, %d commands; latency in rounds from submission to in-order apply", e10Clients, e10Ops),
		"slots/cmd < 1 is the batch codec amortizing consensus (the pre-rsm layer paid exactly 1.0); loss and crashes cost rounds per slot, not slots per command",
	)
	return t
}

// E10Service regenerates the service-layer table with default execution.
func E10Service(seed uint64) *Table {
	return New(Config{Seed: seed}).E10Service(context.Background())
}
