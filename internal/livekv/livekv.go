// Package livekv assembles the live runtime (internal/live) into the
// replicated key-value service the simulator layers already provide in
// simulated time: the kvstore state machine, sharded across Groups
// independent LastVoting replication groups (keys route exactly like
// internal/shard — same FNV string hash, same splitmix64 router), served
// by real server processes over channel or TCP transports.
//
// One Node is one server process's stack: a replica of EVERY group bound
// to a single transport through a live.Mux, plus the per-group state
// machines. Any node can serve any key — reads and writes both travel
// through the replicated log (an OpGet occupies a log position, so it is
// a linearizable read ordered against every write), which is what lets
// cmd/hoload verify read-your-writes linearizability end-to-end over
// HTTP.
//
// The package is the live counterpart of internal/kvstore's Cluster +
// internal/shard's Sharded: the same algorithm (LastVoting by default),
// the same state machine, the same routing — only the implementation
// layer under the rounds changed. DESIGN.md §9 tabulates the mapping.
package livekv

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"heardof/internal/core"
	"heardof/internal/kvstore"
	"heardof/internal/lastvoting"
	"heardof/internal/live"
	"heardof/internal/shard"
	"heardof/internal/wal"
)

// Config parameterizes every node of one deployment (all nodes must
// agree on it).
type Config struct {
	// Replicas is the number of server processes n (one replica of every
	// group each).
	Replicas int
	// Groups is the number of independent replication groups keys are
	// sharded across (≥ 1).
	Groups int
	// Algorithm decides slots (default lastvoting.Algorithm{}); Msg is
	// its wire codec (default lastvoting.WireCodec{}). Override both
	// together.
	Algorithm core.Algorithm
	Msg       live.Codec
	// Router routes keys to groups; nil means shard.HashRouter{}.
	Router shard.Router
	// RoundTimeout, MaxBatch, SyncEvery tune the live replicas; zero
	// values take the live package defaults.
	RoundTimeout time.Duration
	MaxBatch     int
	SyncEvery    time.Duration
	// OpTimeout bounds one Put/Get when the caller's context has no
	// earlier deadline (default 10s).
	OpTimeout time.Duration
	// DataDir, when non-empty, makes THIS node durable: each group gets
	// a write-ahead log + snapshot store under DataDir/group-<g>, and a
	// node restarted with the same directory recovers its logs, state
	// machines, and session dedup before rejoining. DataDir is per-node
	// local state — it does not have to agree across the deployment.
	DataDir string
	// NoFsync skips the per-dispatch fsync (durable against process
	// crashes only, not machine crashes). SnapshotEvery is the snapshot
	// cadence in applied slots per group (0 = the live default, negative
	// = never).
	NoFsync       bool
	SnapshotEvery int
}

// withDefaults fills the zero values.
func (cfg Config) withDefaults() (Config, error) {
	if cfg.Replicas < 1 || cfg.Replicas > core.MaxProcesses {
		return cfg, fmt.Errorf("livekv: %d replicas out of range [1, %d]", cfg.Replicas, core.MaxProcesses)
	}
	if cfg.Groups < 1 {
		return cfg, fmt.Errorf("livekv: %d groups, need ≥ 1", cfg.Groups)
	}
	if cfg.Algorithm == nil {
		cfg.Algorithm = lastvoting.Algorithm{}
		cfg.Msg = lastvoting.WireCodec{}
	}
	if cfg.Msg == nil {
		return cfg, errors.New("livekv: Algorithm set without its wire codec")
	}
	if cfg.Router == nil {
		cfg.Router = shard.HashRouter{}
	}
	if cfg.OpTimeout <= 0 {
		cfg.OpTimeout = 10 * time.Second
	}
	return cfg, nil
}

// groupReplica pairs one group's live replica with its state machine
// and, on durable nodes, its write-ahead store.
type groupReplica struct {
	rep   *live.Replica[kvstore.Command]
	store *wal.Store

	mu sync.Mutex
	sm *kvstore.StateMachine
}

// getResult is what the apply hook returns for an OpGet.
type getResult struct {
	value string
	ok    bool
}

// Node is one server process: replicas of every group over one transport.
type Node struct {
	cfg    Config
	self   core.ProcessID
	tr     live.Transport
	mux    *live.Mux
	groups []*groupReplica
	client uint64
}

// NewNode builds process self's stack on tr (which the node owns from
// here on: Close closes it).
func NewNode(cfg Config, self core.ProcessID, tr live.Transport) (*Node, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if int(self) < 0 || int(self) >= cfg.Replicas {
		return nil, fmt.Errorf("livekv: self %d outside deployment of %d", self, cfg.Replicas)
	}
	nd := &Node{
		cfg:    cfg,
		self:   self,
		tr:     tr,
		mux:    live.NewMux(tr),
		groups: make([]*groupReplica, cfg.Groups),
		client: uint64(self) + 1,
	}
	for g := range nd.groups {
		gr := &groupReplica{sm: kvstore.NewStateMachine()}
		rcfg := live.ReplicaConfig[kvstore.Command]{
			Self:      self,
			N:         cfg.Replicas,
			Algorithm: cfg.Algorithm,
			Msg:       cfg.Msg,
			Batch:     cmdCodec{},
			Transport: nd.mux.Link(uint32(g), 0),
			Apply: func(_ uint64, e live.Entry[kvstore.Command]) any {
				gr.mu.Lock()
				defer gr.mu.Unlock()
				gr.sm.Apply(e.Cmd)
				if e.Cmd.Op == kvstore.OpGet {
					v, ok := gr.sm.Get(e.Cmd.Key)
					return getResult{value: v, ok: ok}
				}
				return nil
			},
			RoundTimeout: cfg.RoundTimeout,
			MaxBatch:     cfg.MaxBatch,
			SyncEvery:    cfg.SyncEvery,
		}
		if cfg.DataDir != "" {
			store, st, err := wal.Open(
				filepath.Join(cfg.DataDir, fmt.Sprintf("group-%d", g)),
				wal.Options{NoSync: cfg.NoFsync})
			if err != nil {
				nd.closeStores()
				return nil, fmt.Errorf("livekv: group %d store: %w", g, err)
			}
			if err := gr.sm.RestoreSnapshot(st.AppState); err != nil {
				store.Close()
				nd.closeStores()
				return nil, fmt.Errorf("livekv: group %d snapshot: %w", g, err)
			}
			gr.store = store
			rcfg.Persist = store
			rcfg.Recovered = st
			rcfg.SnapshotEvery = cfg.SnapshotEvery
			rcfg.SnapshotState = func() []byte {
				gr.mu.Lock()
				defer gr.mu.Unlock()
				return gr.sm.AppendSnapshot(nil)
			}
		}
		rep, err := live.NewReplica(rcfg)
		if err != nil {
			if gr.store != nil {
				gr.store.Close()
			}
			nd.closeStores()
			return nil, err
		}
		gr.rep = rep
		nd.groups[g] = gr
	}
	return nd, nil
}

// closeStores releases the stores of already-built groups after a
// constructor failure.
func (nd *Node) closeStores() {
	for _, gr := range nd.groups {
		if gr != nil && gr.store != nil {
			gr.store.Close()
		}
	}
}

// Start begins participating in every group.
func (nd *Node) Start() {
	for _, g := range nd.groups {
		g.rep.Start()
	}
}

// Checkpoint snapshots every durable group (state machine included)
// and truncates its log — the graceful-shutdown path, so the next start
// replays nothing. A no-op on volatile nodes.
func (nd *Node) Checkpoint() error {
	var first error
	for g, gr := range nd.groups {
		if err := gr.rep.Checkpoint(); err != nil && first == nil {
			first = fmt.Errorf("livekv: group %d checkpoint: %w", g, err)
		}
	}
	return first
}

// Close stops every replica, closes the transport, and releases any
// write-ahead stores.
func (nd *Node) Close() error {
	for _, g := range nd.groups {
		g.rep.Stop()
	}
	err := nd.tr.Close()
	for _, g := range nd.groups {
		if g.store != nil {
			if cerr := g.store.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	}
	return err
}

// GroupFor returns the group owning a key — identical routing to
// internal/shard, so a simulated and a live deployment with the same
// Groups place every key identically.
func (nd *Node) GroupFor(key string) int {
	return nd.cfg.Router.Shard(shard.StringKey(key), nd.cfg.Groups)
}

// do replicates one command through its owning group and waits for the
// apply, bounding the wait with OpTimeout when ctx has no deadline.
func (nd *Node) do(ctx context.Context, cmd kvstore.Command) (live.ApplyResult, error) {
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, nd.cfg.OpTimeout)
		defer cancel()
	}
	g := nd.groups[nd.GroupFor(cmd.Key)]
	ch, _ := g.rep.SubmitNext(nd.client, cmd)
	select {
	case res, ok := <-ch:
		if !ok {
			return res, errors.New("livekv: node stopped before the command committed")
		}
		return res, nil
	case <-ctx.Done():
		return live.ApplyResult{}, fmt.Errorf("livekv: %v %q did not commit in time: %w", cmd.Op, cmd.Key, ctx.Err())
	}
}

// Put replicates a write and returns once it is applied.
func (nd *Node) Put(ctx context.Context, key, value string) error {
	_, err := nd.do(ctx, kvstore.Command{Op: kvstore.OpPut, Key: key, Value: value})
	return err
}

// Delete replicates a deletion.
func (nd *Node) Delete(ctx context.Context, key string) error {
	_, err := nd.do(ctx, kvstore.Command{Op: kvstore.OpDelete, Key: key})
	return err
}

// Get performs a linearizable read: the OpGet rides the replicated log,
// so the value returned is the key's state at the read's log position.
func (nd *Node) Get(ctx context.Context, key string) (string, bool, error) {
	res, err := nd.do(ctx, kvstore.Command{Op: kvstore.OpGet, Key: key})
	if err != nil {
		return "", false, err
	}
	gr, ok := res.Out.(getResult)
	if !ok {
		return "", false, fmt.Errorf("livekv: read of %q produced no result (duplicate submission?)", key)
	}
	return gr.value, gr.ok, nil
}

// GroupStatus is one group's health on one node.
type GroupStatus struct {
	Group       int
	Stats       live.ReplicaStats
	LogLen      uint64
	LogHash     uint64
	Fingerprint string
	Applied     int // commands applied to the state machine
}

// Status reports every group's replica counters, decision-log
// fingerprint, and state-machine fingerprint — what /stats serves and
// what the smoke jobs compare across nodes for divergence.
func (nd *Node) Status() []GroupStatus {
	out := make([]GroupStatus, len(nd.groups))
	for g, gr := range nd.groups {
		gr.mu.Lock()
		fp := gr.sm.Fingerprint()
		applied := gr.sm.Len()
		gr.mu.Unlock()
		logLen, logHash := gr.rep.LogHash()
		out[g] = GroupStatus{
			Group:       g,
			Stats:       gr.rep.Stats(),
			LogLen:      logLen,
			LogHash:     logHash,
			Fingerprint: fp,
			Applied:     applied,
		}
	}
	return out
}

// Self returns this node's process id.
func (nd *Node) Self() core.ProcessID { return nd.self }

// Replica exposes group g's live replica (tests).
func (nd *Node) Replica(g int) *live.Replica[kvstore.Command] { return nd.groups[g].rep }
