// Wire encoding of kvstore command batches for dissemination: a uvarint
// entry count, then per entry the session identity, the op tag, and the
// length-prefixed key/value strings.

package livekv

import (
	"encoding/binary"
	"fmt"

	"heardof/internal/kvstore"
	"heardof/internal/live"
)

// maxString bounds one decoded key or value.
const maxString = 1 << 16

// cmdCodec implements live.BatchCodec for kvstore commands.
type cmdCodec struct{}

// AppendEntries implements live.BatchCodec.
func (cmdCodec) AppendEntries(dst []byte, entries []live.Entry[kvstore.Command]) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(entries)))
	for _, e := range entries {
		dst = binary.AppendUvarint(dst, e.Client)
		dst = binary.AppendUvarint(dst, e.Seq)
		dst = append(dst, byte(e.Cmd.Op))
		dst = binary.AppendUvarint(dst, uint64(len(e.Cmd.Key)))
		dst = append(dst, e.Cmd.Key...)
		dst = binary.AppendUvarint(dst, uint64(len(e.Cmd.Value)))
		dst = append(dst, e.Cmd.Value...)
	}
	return dst
}

// DecodeEntries implements live.BatchCodec.
func (cmdCodec) DecodeEntries(src []byte) ([]live.Entry[kvstore.Command], error) {
	str := func() (string, error) {
		l, n := binary.Uvarint(src)
		if n <= 0 || l > maxString || uint64(len(src)-n) < l {
			return "", fmt.Errorf("livekv: truncated string")
		}
		s := string(src[n : n+int(l)])
		src = src[n+int(l):]
		return s, nil
	}
	count, n := binary.Uvarint(src)
	if n <= 0 || count > 1<<16 {
		return nil, fmt.Errorf("livekv: bad batch entry count")
	}
	src = src[n:]
	entries := make([]live.Entry[kvstore.Command], 0, count)
	for i := uint64(0); i < count; i++ {
		var e live.Entry[kvstore.Command]
		var n int
		if e.Client, n = binary.Uvarint(src); n <= 0 {
			return nil, fmt.Errorf("livekv: truncated client id")
		}
		src = src[n:]
		if e.Seq, n = binary.Uvarint(src); n <= 0 || e.Seq == 0 {
			return nil, fmt.Errorf("livekv: bad sequence number")
		}
		src = src[n:]
		if len(src) < 1 {
			return nil, fmt.Errorf("livekv: truncated op")
		}
		op := kvstore.Op(src[0])
		if op < kvstore.OpPut || op > kvstore.OpGet {
			return nil, fmt.Errorf("livekv: unknown op %d", op)
		}
		e.Cmd.Op = op
		src = src[1:]
		var err error
		if e.Cmd.Key, err = str(); err != nil {
			return nil, err
		}
		if e.Cmd.Value, err = str(); err != nil {
			return nil, err
		}
		entries = append(entries, e)
	}
	return entries, nil
}
