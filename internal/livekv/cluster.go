// In-process cluster assembly: every node of a deployment in one
// process, wired through a ChanNetwork with a per-node fault environment
// — the live analogue of the simulator's per-shard adversaries, used by
// tests, experiment E12, examples, and `hoserve -local`.

package livekv

import (
	"fmt"
	"path/filepath"
	"time"

	"heardof/internal/core"
	"heardof/internal/live"
)

// Cluster is an in-process deployment over the channel transport.
type Cluster struct {
	cfg    Config
	net    *live.ChanNetwork
	faults []*live.Faults
	nodes  []*Node
}

// NewCluster builds (without starting) a Replicas-node deployment.
// faultSeed seeds the per-node fault environments (loss and delay draws;
// real time keeps runs nondeterministic regardless).
func NewCluster(cfg Config, faultSeed uint64) (*Cluster, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	net, err := live.NewChanNetwork(cfg.Replicas, 0)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:    cfg,
		net:    net,
		faults: make([]*live.Faults, cfg.Replicas),
		nodes:  make([]*Node, cfg.Replicas),
	}
	for p := 0; p < cfg.Replicas; p++ {
		c.faults[p] = live.NewFaults(faultSeed + uint64(p)*0x9e3779b9)
		tr := live.WithFaults(net.Transport(core.ProcessID(p)), c.faults[p])
		// DataDir names a deployment root here; every in-process node
		// gets its own subdirectory (real deployments pass one directory
		// per server process instead).
		ncfg := cfg
		if ncfg.DataDir != "" {
			ncfg.DataDir = filepath.Join(cfg.DataDir, fmt.Sprintf("node-%d", p))
		}
		nd, err := NewNode(ncfg, core.ProcessID(p), tr)
		if err != nil {
			return nil, fmt.Errorf("livekv: node %d: %w", p, err)
		}
		c.nodes[p] = nd
	}
	return c, nil
}

// Start launches every node.
func (c *Cluster) Start() {
	for _, nd := range c.nodes {
		nd.Start()
	}
}

// Close stops every node and the network.
func (c *Cluster) Close() {
	for _, nd := range c.nodes {
		nd.Close()
	}
	c.net.Close()
}

// N returns the node count.
func (c *Cluster) N() int { return len(c.nodes) }

// Node returns server process i.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Faults returns node i's fault environment (loss, delay, pause).
func (c *Cluster) Faults(i int) *live.Faults { return c.faults[i] }

// ConvergedWithin polls until every node agrees — per group: equal
// decision-log lengths and hashes, equal state-machine fingerprints, and
// zero divergent observations everywhere — or the deadline passes, in
// which case it reports the first disagreement it was still seeing.
// Submissions must have quiesced first (decided slots still propagate to
// laggards; new submissions would keep the logs moving).
func (c *Cluster) ConvergedWithin(d time.Duration) error {
	deadline := time.Now().Add(d)
	var last error
	for {
		last = c.converged()
		if last == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return last
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// converged checks cross-node agreement once.
func (c *Cluster) converged() error {
	want := c.nodes[0].Status()
	for i, nd := range c.nodes {
		sts := nd.Status()
		for g, st := range sts {
			if st.Stats.Divergent != 0 {
				return fmt.Errorf("node %d group %d observed %d divergent decisions", i, g, st.Stats.Divergent)
			}
			if st.LogLen != want[g].LogLen || st.LogHash != want[g].LogHash {
				return fmt.Errorf("node %d group %d log (%d, %#x) != node 0's (%d, %#x)",
					i, g, st.LogLen, st.LogHash, want[g].LogLen, want[g].LogHash)
			}
			if st.Fingerprint != want[g].Fingerprint {
				return fmt.Errorf("node %d group %d state diverged from node 0", i, g)
			}
		}
	}
	return nil
}
