package livekv

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"heardof/internal/core"
	"heardof/internal/live"
)

// startTCPCluster brings up n nodes over real localhost sockets, each
// behind its own fault environment.
func startTCPCluster(t *testing.T, cfg Config, seed uint64) ([]*Node, []*live.Faults) {
	t.Helper()
	listeners := make([]net.Listener, cfg.Replicas)
	addrs := make([]string, cfg.Replicas)
	for i := range listeners {
		ln, err := live.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*Node, cfg.Replicas)
	faults := make([]*live.Faults, cfg.Replicas)
	for i := range nodes {
		tr, err := live.NewTCP(core.ProcessID(i), listeners[i], addrs)
		if err != nil {
			t.Fatal(err)
		}
		faults[i] = live.NewFaults(seed + uint64(i))
		nd, err := NewNode(cfg, core.ProcessID(i), live.WithFaults(tr, faults[i]))
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
		nd.Start()
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Close()
		}
	})
	return nodes, faults
}

func TestTCPTransportDelivers(t *testing.T) {
	lns := make([]net.Listener, 2)
	addrs := make([]string, 2)
	for i := range lns {
		ln, err := live.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	t0, err := live.NewTCP(0, lns[0], addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()
	t1, err := live.NewTCP(1, lns[1], addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer t1.Close()

	want := live.Envelope{Group: 3, Slot: 7, Round: 11, Kind: live.KindRound, Payload: []byte("frame")}
	// Best-effort transport: the first sends may race the dial; retry
	// until one lands.
	deadline := time.After(5 * time.Second)
	for {
		t0.Send(1, want)
		select {
		case got := <-t1.Recv():
			if got.Group != want.Group || got.Slot != want.Slot || got.From != 0 || string(got.Payload) != "frame" {
				t.Fatalf("got %+v", got)
			}
			return
		case <-time.After(10 * time.Millisecond):
		case <-deadline:
			t.Fatal("no frame arrived over TCP")
		}
	}
}

// TestTCPClusterServesUnderLoss is the in-test version of the CI live
// smoke: a 3-node cluster over real sockets with 10% injected loss
// serving concurrent mixed PUT/GET traffic with linearizable reads, then
// converging with zero divergent decisions.
func TestTCPClusterServesUnderLoss(t *testing.T) {
	cfg := Config{Replicas: 3, Groups: 2, RoundTimeout: 2 * time.Millisecond}
	nodes, faults := startTCPCluster(t, cfg, 77)
	for _, f := range faults {
		f.SetLoss(0.10)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	const clients, opsPerClient = 4, 15
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			nd := nodes[cl%len(nodes)]
			key := fmt.Sprintf("tcp-%d", cl)
			for i := 1; i <= opsPerClient; i++ {
				want := fmt.Sprintf("v%d", i)
				if err := nd.Put(ctx, key, want); err != nil {
					errs <- fmt.Errorf("client %d put %d: %w", cl, i, err)
					return
				}
				if i%4 == 0 {
					v, ok, err := nd.Get(ctx, key)
					if err != nil {
						errs <- fmt.Errorf("client %d get: %w", cl, err)
						return
					}
					if !ok || v != want {
						errs <- fmt.Errorf("client %d: stale read %q/%v, want %q", cl, v, ok, want)
						return
					}
				}
			}
		}(cl)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for _, f := range faults {
		f.SetLoss(0)
	}

	// Convergence across real sockets: equal logs and fingerprints per
	// group, zero divergence.
	deadline := time.Now().Add(20 * time.Second)
	for {
		err := tcpConverged(nodes)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// tcpConverged mirrors Cluster.converged for externally-built nodes.
func tcpConverged(nodes []*Node) error {
	want := nodes[0].Status()
	for i, nd := range nodes {
		for g, st := range nd.Status() {
			if st.Stats.Divergent != 0 {
				return fmt.Errorf("node %d group %d: %d divergent decisions", i, g, st.Stats.Divergent)
			}
			if st.LogLen != want[g].LogLen || st.LogHash != want[g].LogHash || st.Fingerprint != want[g].Fingerprint {
				return fmt.Errorf("node %d group %d not converged with node 0", i, g)
			}
		}
	}
	return nil
}
