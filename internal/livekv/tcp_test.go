package livekv

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"heardof/internal/core"
	"heardof/internal/live"
)

// startTCPCluster brings up n nodes over real localhost sockets, each
// behind its own fault environment.
func startTCPCluster(t *testing.T, cfg Config, seed uint64) ([]*Node, []*live.Faults) {
	t.Helper()
	listeners := make([]net.Listener, cfg.Replicas)
	addrs := make([]string, cfg.Replicas)
	for i := range listeners {
		ln, err := live.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*Node, cfg.Replicas)
	faults := make([]*live.Faults, cfg.Replicas)
	for i := range nodes {
		tr, err := live.NewTCP(core.ProcessID(i), listeners[i], addrs)
		if err != nil {
			t.Fatal(err)
		}
		faults[i] = live.NewFaults(seed + uint64(i))
		nd, err := NewNode(cfg, core.ProcessID(i), live.WithFaults(tr, faults[i]))
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
		nd.Start()
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Close()
		}
	})
	return nodes, faults
}

func TestTCPTransportDelivers(t *testing.T) {
	lns := make([]net.Listener, 2)
	addrs := make([]string, 2)
	for i := range lns {
		ln, err := live.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	t0, err := live.NewTCP(0, lns[0], addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()
	t1, err := live.NewTCP(1, lns[1], addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer t1.Close()

	want := live.Envelope{Group: 3, Slot: 7, Round: 11, Kind: live.KindRound, Payload: []byte("frame")}
	// Best-effort transport: the first sends may race the dial; retry
	// until one lands.
	deadline := time.After(5 * time.Second)
	for {
		t0.Send(1, want)
		select {
		case got := <-t1.Recv():
			if got.Group != want.Group || got.Slot != want.Slot || got.From != 0 || string(got.Payload) != "frame" {
				t.Fatalf("got %+v", got)
			}
			return
		case <-time.After(10 * time.Millisecond):
		case <-deadline:
			t.Fatal("no frame arrived over TCP")
		}
	}
}

// TestTCPClusterServesUnderLoss is the in-test version of the CI live
// smoke: a 3-node cluster over real sockets with 10% injected loss
// serving concurrent mixed PUT/GET traffic with linearizable reads, then
// converging with zero divergent decisions.
func TestTCPClusterServesUnderLoss(t *testing.T) {
	cfg := Config{Replicas: 3, Groups: 2, RoundTimeout: 2 * time.Millisecond}
	nodes, faults := startTCPCluster(t, cfg, 77)
	for _, f := range faults {
		f.SetLoss(0.10)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	const clients, opsPerClient = 4, 15
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			nd := nodes[cl%len(nodes)]
			key := fmt.Sprintf("tcp-%d", cl)
			for i := 1; i <= opsPerClient; i++ {
				want := fmt.Sprintf("v%d", i)
				if err := nd.Put(ctx, key, want); err != nil {
					errs <- fmt.Errorf("client %d put %d: %w", cl, i, err)
					return
				}
				if i%4 == 0 {
					v, ok, err := nd.Get(ctx, key)
					if err != nil {
						errs <- fmt.Errorf("client %d get: %w", cl, err)
						return
					}
					if !ok || v != want {
						errs <- fmt.Errorf("client %d: stale read %q/%v, want %q", cl, v, ok, want)
						return
					}
				}
			}
		}(cl)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for _, f := range faults {
		f.SetLoss(0)
	}

	// Convergence across real sockets: equal logs and fingerprints per
	// group, zero divergence.
	deadline := time.Now().Add(20 * time.Second)
	for {
		err := tcpConverged(nodes)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// tcpConverged mirrors Cluster.converged for externally-built nodes.
func tcpConverged(nodes []*Node) error {
	want := nodes[0].Status()
	for i, nd := range nodes {
		for g, st := range nd.Status() {
			if st.Stats.Divergent != 0 {
				return fmt.Errorf("node %d group %d: %d divergent decisions", i, g, st.Stats.Divergent)
			}
			if st.LogLen != want[g].LogLen || st.LogHash != want[g].LogHash || st.Fingerprint != want[g].Fingerprint {
				return fmt.Errorf("node %d group %d not converged with node 0", i, g)
			}
		}
	}
	return nil
}

// TestTCPNodeRestartFromDisk is the durable counterpart of the live
// package's empty-state rejoin test: a node with a data directory is
// hard-stopped (no checkpoint — the write-ahead log alone must carry
// the state), restarted at the same address with the same directory,
// and must come back with its logs, state machines, and session dedup
// intact, then keep serving.
func TestTCPNodeRestartFromDisk(t *testing.T) {
	dir := t.TempDir()
	listeners := make([]net.Listener, 3)
	addrs := make([]string, 3)
	for i := range listeners {
		ln, err := live.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	mkNode := func(p int, ln net.Listener) *Node {
		cfg := Config{Replicas: 3, Groups: 2, RoundTimeout: 2 * time.Millisecond}
		if p == 2 {
			cfg.DataDir = dir
			cfg.NoFsync = true    // tmpfs-speed; crash model here is SIGKILL, not power loss
			cfg.SnapshotEvery = 4 // cross snapshot+truncate cycles during the load
		}
		tr, err := live.NewTCP(core.ProcessID(p), ln, addrs)
		if err != nil {
			t.Fatal(err)
		}
		nd, err := NewNode(cfg, core.ProcessID(p), tr)
		if err != nil {
			t.Fatal(err)
		}
		nd.Start()
		return nd
	}
	nodes := make([]*Node, 3)
	for p := range nodes {
		nodes[p] = mkNode(p, listeners[p])
	}
	defer func() {
		for _, nd := range nodes {
			if nd != nil {
				nd.Close()
			}
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	for i := 0; i < 12; i++ {
		if err := nodes[i%3].Put(ctx, fmt.Sprintf("k%02d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	waitTCPConverged(t, nodes, 20*time.Second)
	before := nodes[2].Status()

	// Hard stop node 2 (Close stops the replicas and releases the store
	// without checkpointing) and restart it from the same directory.
	nodes[2].Close()
	nodes[2] = nil
	var ln2 net.Listener
	deadline := time.Now().Add(5 * time.Second)
	for {
		var err error
		if ln2, err = live.ListenTCP(addrs[2]); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", addrs[2], err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	nodes[2] = mkNode(2, ln2)

	// Recovery restored every group without refetching history.
	after := nodes[2].Status()
	for g := range after {
		if after[g].LogLen != before[g].LogLen || after[g].LogHash != before[g].LogHash {
			t.Fatalf("group %d log (%d, %#x) after restart, want (%d, %#x)",
				g, after[g].LogLen, after[g].LogHash, before[g].LogLen, before[g].LogHash)
		}
		if after[g].Fingerprint != before[g].Fingerprint {
			t.Fatalf("group %d state machine diverged across restart", g)
		}
		if after[g].Applied != before[g].Applied {
			t.Fatalf("group %d applied %d commands after restart, want %d",
				g, after[g].Applied, before[g].Applied)
		}
	}

	// The restarted node serves reads of pre-crash writes and accepts
	// new load alongside the survivors.
	for i := 0; i < 12; i++ {
		v, ok, err := nodes[2].Get(ctx, fmt.Sprintf("k%02d", i))
		if err != nil {
			t.Fatal(err)
		}
		if !ok || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%02d = %q/%v after restart, want v%d", i, v, ok, i)
		}
	}
	for i := 12; i < 18; i++ {
		if err := nodes[i%3].Put(ctx, fmt.Sprintf("k%02d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatalf("post-restart put %d: %v", i, err)
		}
	}
	waitTCPConverged(t, nodes, 20*time.Second)
}

// waitTCPConverged polls tcpConverged until it holds or the deadline
// passes.
func waitTCPConverged(t *testing.T, nodes []*Node, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		err := tcpConverged(nodes)
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
