package livekv

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"heardof/internal/core"
	"heardof/internal/live"
)

// startCluster builds and starts an in-process cluster, cleaning up with
// the test.
func startCluster(t *testing.T, cfg Config, seed uint64) *Cluster {
	t.Helper()
	c, err := NewCluster(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(c.Close)
	return c
}

func TestClusterPutGetThroughLog(t *testing.T) {
	c := startCluster(t, Config{Replicas: 3, Groups: 2, RoundTimeout: time.Millisecond}, 1)
	ctx := context.Background()

	if err := c.Node(0).Put(ctx, "alice", "100"); err != nil {
		t.Fatal(err)
	}
	// A read through ANY node is linearizable: the write committed
	// before Put returned, so every later read must observe it.
	for i := 0; i < c.N(); i++ {
		v, ok, err := c.Node(i).Get(ctx, "alice")
		if err != nil {
			t.Fatalf("node %d read: %v", i, err)
		}
		if !ok || v != "100" {
			t.Fatalf("node %d read %q/%v, want 100", i, v, ok)
		}
	}
	if err := c.Node(1).Delete(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Node(2).Get(ctx, "alice"); err != nil || ok {
		t.Fatalf("deleted key still visible (ok=%v err=%v)", ok, err)
	}
	if err := c.ConvergedWithin(5 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestClusterConcurrentMixedLoadUnderLoss(t *testing.T) {
	c := startCluster(t, Config{Replicas: 3, Groups: 2, RoundTimeout: time.Millisecond}, 2)
	for i := 0; i < c.N(); i++ {
		c.Faults(i).SetLoss(0.10)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const clients, opsPerClient = 6, 25
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			nd := c.Node(cl % c.N())
			key := fmt.Sprintf("client-%d", cl)
			for i := 1; i <= opsPerClient; i++ {
				want := fmt.Sprintf("v%d", i)
				if err := nd.Put(ctx, key, want); err != nil {
					errs <- fmt.Errorf("client %d put %d: %w", cl, i, err)
					return
				}
				if i%3 == 0 {
					// Single-writer key: a linearizable read must see the
					// write that completed before it.
					v, ok, err := nd.Get(ctx, key)
					if err != nil {
						errs <- fmt.Errorf("client %d get: %w", cl, err)
						return
					}
					if !ok || v != want {
						errs <- fmt.Errorf("client %d: stale read %q/%v, want %q — linearizability violated", cl, v, ok, want)
						return
					}
				}
			}
		}(cl)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i := 0; i < c.N(); i++ {
		c.Faults(i).SetLoss(0)
	}
	if err := c.ConvergedWithin(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestClusterPauseRejoin is the fault-injection coverage the live layer
// exists for: one node is paused mid-run (it neither sends nor hears —
// the live analogue of a crash with running timers), the survivors keep
// committing, and after the pause the node rejoins through the sync path.
// Asserted: no split decisions anywhere, and catch-up bounded by the
// convergence window.
func TestClusterPauseRejoin(t *testing.T) {
	c := startCluster(t, Config{Replicas: 3, Groups: 1, RoundTimeout: time.Millisecond}, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	put := func(i int, node int) {
		t.Helper()
		if err := c.Node(node).Put(ctx, fmt.Sprintf("k%02d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatalf("put %d via node %d: %v", i, node, err)
		}
	}
	for i := 0; i < 5; i++ {
		put(i, i%3)
	}

	// Pause node 2 mid-round: rounds are ~1ms, so the pause lands inside
	// an active slot with overwhelming probability.
	c.Faults(2).SetPaused(true)
	for i := 5; i < 15; i++ {
		put(i, i%2) // survivors only: a majority of 2 of 3 keeps deciding
	}
	before := c.Node(2).Status()[0]

	c.Faults(2).SetPaused(false)
	for i := 15; i < 20; i++ {
		put(i, i%3)
	}
	if err := c.ConvergedWithin(15 * time.Second); err != nil {
		t.Fatalf("paused node did not catch up: %v", err)
	}

	after := c.Node(2).Status()[0]
	if after.LogLen <= before.LogLen {
		t.Fatalf("rejoined node never advanced: %d → %d applied slots", before.LogLen, after.LogLen)
	}
	if after.Stats.SyncDecisions == 0 {
		t.Error("rejoined node reports zero sync decisions — catch-up did not use the sync path")
	}
	for i := 0; i < c.N(); i++ {
		if d := c.Node(i).Status()[0].Stats.Divergent; d != 0 {
			t.Fatalf("node %d observed %d divergent decisions — split decision", i, d)
		}
	}
	// Every committed write must be readable after the rejoin.
	for i := 0; i < 20; i++ {
		v, ok, err := c.Node(2).Get(ctx, fmt.Sprintf("k%02d", i))
		if err != nil {
			t.Fatal(err)
		}
		if !ok || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%02d = %q/%v after rejoin, want v%d", i, v, ok, i)
		}
	}
}

func TestNodeRejectsBadConfig(t *testing.T) {
	net, err := live.NewChanNetwork(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	if _, err := NewNode(Config{Replicas: 0, Groups: 1}, 0, net.Transport(0)); err == nil {
		t.Error("zero replicas accepted")
	}
	if _, err := NewNode(Config{Replicas: 3, Groups: 0}, 0, net.Transport(0)); err == nil {
		t.Error("zero groups accepted")
	}
	if _, err := NewNode(Config{Replicas: 3, Groups: 1}, core.ProcessID(5), net.Transport(0)); err == nil {
		t.Error("out-of-range self accepted")
	}
	if _, err := NewCluster(Config{Replicas: 2, Groups: -1}, 1); err == nil {
		t.Error("negative groups accepted")
	}
}
