package predicate

import (
	"testing"

	"heardof/internal/core"
	"heardof/internal/xrand"
)

func traceOf(n int, rounds ...[]core.PIDSet) *core.Trace {
	tr := core.NewTrace(n, make([]core.Value, n))
	for _, r := range rounds {
		tr.RecordRound(r)
	}
	return tr
}

func uniformRound(n int, pi0 core.PIDSet) []core.PIDSet {
	out := make([]core.PIDSet, n)
	for p := 0; p < n; p++ {
		out[p] = pi0
	}
	return out
}

func pi0UniformRound(n int, pi0 core.PIDSet) []core.PIDSet {
	out := make([]core.PIDSet, n)
	for p := 0; p < n; p++ {
		if pi0.Has(core.ProcessID(p)) {
			out[p] = pi0
		}
	}
	return out
}

func TestSpaceUniform(t *testing.T) {
	pi0 := core.SetOf(0, 1, 2)
	tr := traceOf(4,
		pi0UniformRound(4, pi0),
		pi0UniformRound(4, pi0),
		uniformRound(4, core.SetOf(0)),
	)
	if !(SpaceUniform{Pi0: pi0, From: 1, To: 2}).Holds(tr) {
		t.Error("Psu(Π0,1,2) should hold")
	}
	if (SpaceUniform{Pi0: pi0, From: 1, To: 3}).Holds(tr) {
		t.Error("Psu(Π0,1,3) should fail (round 3 not uniform for Π0)")
	}
	if (SpaceUniform{Pi0: pi0, From: 0, To: 1}).Holds(tr) {
		t.Error("Psu with From<1 should fail")
	}
	if (SpaceUniform{Pi0: pi0, From: 2, To: 5}).Holds(tr) {
		t.Error("Psu past the trace should fail")
	}
}

func TestKernelWeakerThanSpaceUniform(t *testing.T) {
	pi0 := core.SetOf(0, 1)
	// Round where HO ⊋ Π0 for a Π0 member: Pk holds, Psu does not.
	rnd := []core.PIDSet{core.SetOf(0, 1, 2), pi0, core.EmptySet}
	tr := traceOf(3, rnd)
	if !(Kernel{Pi0: pi0, From: 1, To: 1}).Holds(tr) {
		t.Error("Pk should hold")
	}
	if (SpaceUniform{Pi0: pi0, From: 1, To: 1}).Holds(tr) {
		t.Error("Psu should fail (superset, not equality)")
	}
}

func TestPsuImpliesPk(t *testing.T) {
	// Psu(Π0, r1, r2) ⇒ Pk(Π0, r1, r2) on random traces.
	rng := xrand.New(7)
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(6)
		rounds := 1 + rng.Intn(6)
		tr := core.NewTrace(n, make([]core.Value, n))
		for i := 0; i < rounds; i++ {
			ho := make([]core.PIDSet, n)
			for p := range ho {
				ho[p] = core.PIDSet(rng.Uint64()) & core.FullSet(n)
			}
			tr.RecordRound(ho)
		}
		pi0 := core.PIDSet(rng.Uint64()) & core.FullSet(n)
		from := core.Round(1 + rng.Intn(rounds))
		to := from + core.Round(rng.Intn(rounds))
		su := SpaceUniform{Pi0: pi0, From: from, To: to}
		k := Kernel{Pi0: pi0, From: from, To: to}
		if su.Holds(tr) && !k.Holds(tr) {
			t.Fatalf("trial %d: Psu holds but Pk does not", trial)
		}
	}
}

func TestP2otrAndP11otr(t *testing.T) {
	n := 4
	pi0 := core.SetOf(0, 1, 2) // |Π0| = 3 > 8/3
	kernelRound := []core.PIDSet{pi0.Add(3), pi0, pi0.Add(3), core.EmptySet}

	// Consecutive: uniform at r1, kernel at r2.
	tr := traceOf(n, pi0UniformRound(n, pi0), kernelRound)
	if _, ok := FindP2otrWitness(tr, pi0); !ok {
		t.Error("P2otr should hold for consecutive rounds")
	}
	if !(P2otr{Pi0: pi0}).Holds(tr) {
		t.Error("P2otr.Holds disagrees with FindP2otrWitness")
	}
	if !(P11otr{Pi0: pi0}).Holds(tr) {
		t.Error("P2otr ⇒ P11otr violated")
	}

	// Non-consecutive: uniform at r1, junk at r2, kernel at r3.
	junk := make([]core.PIDSet, n)
	tr2 := traceOf(n, pi0UniformRound(n, pi0), junk, kernelRound)
	if (P2otr{Pi0: pi0}).Holds(tr2) {
		t.Error("P2otr should fail with a junk round in between")
	}
	if !(P11otr{Pi0: pi0}).Holds(tr2) {
		t.Error("P11otr should hold for non-consecutive witness rounds")
	}
}

func TestPotrWitness(t *testing.T) {
	n := 4
	pi0 := core.SetOf(0, 1, 2)
	bad := make([]core.PIDSet, n)
	tr := traceOf(n,
		bad,
		uniformRound(n, pi0), // r0 = 2: ALL of Π hear exactly Π0
		uniformRound(n, pi0), // each p has rp = 3 with |HO| = 3 > 8/3
	)
	r0, got, ok := FindPotrWitness(tr)
	if !ok || r0 != 2 || got != pi0 {
		t.Fatalf("FindPotrWitness = (%d, %v, %v), want (2, %v, true)", r0, got, ok, pi0)
	}
	if !(Potr{}).Holds(tr) {
		t.Error("Potr.Holds disagrees")
	}

	// Without the later rounds, Potr fails (no rp > r0).
	tr2 := traceOf(n, bad, uniformRound(n, pi0))
	if (Potr{}).Holds(tr2) {
		t.Error("Potr should fail without later quorum rounds")
	}
}

func TestPotrRequiresGlobalUniformity(t *testing.T) {
	n := 4
	pi0 := core.SetOf(0, 1, 2)
	// Process 3 (outside Π0) hears nothing at the candidate round — P_otr
	// requires ALL of Π to hear Π0, so it fails; PrestrOtr succeeds.
	tr := traceOf(n,
		pi0UniformRound(n, pi0),
		pi0UniformRound(n, pi0),
	)
	if (Potr{}).Holds(tr) {
		t.Error("Potr should fail when a process outside Π0 differs")
	}
	if !(PrestrOtr{}).Holds(tr) {
		t.Error("PrestrOtr should hold")
	}
}

func TestPotrDoesNotImplyPrestrOtr(t *testing.T) {
	// The two Table 1 predicates are incomparable: P_otr's later-round
	// condition is a cardinality bound (|HO| > 2n/3), while P_otr^restr
	// demands HO(p, r_p) ⊇ Π0. A trace whose later quorum rounds miss a
	// Π0 member satisfies the former but not the latter.
	n := 4
	pi0 := core.SetOf(0, 1, 2)
	other := core.SetOf(1, 2, 3) // > 2n/3 but ⊉ Π0 and not space-uniform for itself
	tr := traceOf(n,
		uniformRound(n, pi0),   // r0 = 1 for Potr: everyone hears Π0
		uniformRound(n, other), // rp = 2: |HO| = 3 > 8/3 but misses process 0
	)
	if !(Potr{}).Holds(tr) {
		t.Fatal("Potr should hold")
	}
	if (PrestrOtr{}).Holds(tr) {
		t.Error("PrestrOtr should fail: no later round contains Π0, and " +
			"round 2's set is not space-uniform for its own members at any r0 with a later kernel round")
	}
}

func TestP2otrImpliesPrestrOtrTable1(t *testing.T) {
	// (∃Π0, |Π0| > 2n/3 : P2otr(Π0)) ⇒ PrestrOtr — the displayed
	// implication of §4.2.
	rng := xrand.New(1234)
	found := 0
	for trial := 0; trial < 300; trial++ {
		n := 4 + rng.Intn(4)
		tr := core.NewTrace(n, make([]core.Value, n))
		for i := 0; i < 5; i++ {
			if rng.Bool(0.6) {
				set := core.PIDSet(rng.Uint64()) & core.FullSet(n)
				tr.RecordRound(uniformRound(n, set))
			} else {
				ho := make([]core.PIDSet, n)
				for p := range ho {
					ho[p] = core.FullSet(n)
				}
				tr.RecordRound(ho)
			}
		}
		holds := ExistsPi0(tr, func(pi0 core.PIDSet) Predicate { return P2otr{Pi0: pi0} })
		if holds {
			found++
			if !(PrestrOtr{}).Holds(tr) {
				t.Fatalf("trial %d: P2otr(Π0) holds but PrestrOtr does not", trial)
			}
		}
	}
	if found == 0 {
		t.Error("test vacuous: P2otr never held; adjust generator")
	}
}

func TestMinCardinalityAndMajority(t *testing.T) {
	n := 5
	maj := uniformRound(n, core.SetOf(0, 1, 2))
	tr := traceOf(n, maj, maj)
	if !MajorityEveryRound(n).Holds(tr) {
		t.Error("majority predicate should hold for |HO| = 3 of 5")
	}
	tr2 := traceOf(n, maj, uniformRound(n, core.SetOf(0, 1)))
	if MajorityEveryRound(n).Holds(tr2) {
		t.Error("majority predicate should fail for |HO| = 2 of 5")
	}
	if !(MinCardinality{K: 0}).Holds(tr2) {
		t.Error("MinCard(0) should always hold")
	}
}

func TestNonEmptyKernels(t *testing.T) {
	n := 3
	tr := traceOf(n,
		[]core.PIDSet{core.SetOf(0, 1), core.SetOf(1, 2), core.SetOf(1)},
	)
	if !(NonEmptyKernels{}).Holds(tr) {
		t.Error("kernel {1} should be non-empty")
	}
	tr2 := traceOf(n,
		[]core.PIDSet{core.SetOf(0), core.SetOf(1), core.SetOf(2)},
	)
	if (NonEmptyKernels{}).Holds(tr2) {
		t.Error("disjoint HO sets have an empty kernel")
	}
}

func TestUniformRoundExists(t *testing.T) {
	n := 3
	mixed := []core.PIDSet{core.SetOf(0), core.SetOf(1), core.SetOf(2)}
	tr := traceOf(n, mixed, uniformRound(n, core.SetOf(0, 2)))
	if !(UniformRoundExists{}).Holds(tr) {
		t.Error("round 2 is uniform")
	}
	if (UniformRoundExists{}).Holds(traceOf(n, mixed)) {
		t.Error("no uniform round exists")
	}
}

func TestCombinators(t *testing.T) {
	n := 3
	tr := traceOf(n, uniformRound(n, core.FullSet(n)))
	yes := UniformRoundExists{}
	no := MinCardinality{K: n + 1}
	if !And(yes, Not(no)).Holds(tr) {
		t.Error("And/Not combination failed")
	}
	if !Or(no, yes).Holds(tr) {
		t.Error("Or combination failed")
	}
	if Or(no, Not(yes)).Holds(tr) {
		t.Error("Or of false predicates held")
	}
	if And().Holds(tr) != true || Or().Holds(tr) != false {
		t.Error("empty And/Or have wrong identities")
	}
}

func TestPredicateNames(t *testing.T) {
	names := []struct {
		p    Predicate
		want string
	}{
		{Potr{}, "Potr"},
		{PrestrOtr{}, "PrestrOtr"},
		{NonEmptyKernels{}, "NonEmptyKernels"},
		{UniformRoundExists{}, "UniformRoundExists"},
	}
	for _, tt := range names {
		if tt.p.Name() != tt.want {
			t.Errorf("Name = %q, want %q", tt.p.Name(), tt.want)
		}
	}
	if (SpaceUniform{Pi0: core.SetOf(1), From: 2, To: 3}).Name() == "" {
		t.Error("empty Psu name")
	}
}
