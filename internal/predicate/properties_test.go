package predicate

import (
	"testing"

	"heardof/internal/core"
	"heardof/internal/xrand"
)

// randomTrace builds a random trace for property tests.
func randomTrace(rng *xrand.Rand) *core.Trace {
	n := 2 + rng.Intn(7)
	tr := core.NewTrace(n, make([]core.Value, n))
	rounds := 1 + rng.Intn(8)
	for i := 0; i < rounds; i++ {
		ho := make([]core.PIDSet, n)
		for p := range ho {
			ho[p] = core.PIDSet(rng.Uint64()) & core.FullSet(n)
		}
		tr.RecordRound(ho)
	}
	return tr
}

// Property: P_k is antitone in Π0 — if the kernel property holds for a
// set, it holds for every subset (over the same window).
func TestKernelAntitoneInPi0(t *testing.T) {
	rng := xrand.New(21)
	checked := 0
	for trial := 0; trial < 500; trial++ {
		tr := randomTrace(rng)
		pi0 := core.PIDSet(rng.Uint64()) & core.FullSet(tr.N)
		sub := pi0 & core.PIDSet(rng.Uint64())
		from := core.Round(1 + rng.Intn(int(tr.NumRounds())))
		to := from + core.Round(rng.Intn(int(tr.NumRounds())))
		if to > tr.NumRounds() {
			to = tr.NumRounds()
		}
		if (Kernel{Pi0: pi0, From: from, To: to}).Holds(tr) {
			checked++
			if !(Kernel{Pi0: sub, From: from, To: to}).Holds(tr) && !sub.IsEmpty() == true && sub != pi0 {
				// Careful: Pk(sub) quantifies over members of sub only —
				// each member of sub is also a member of pi0, and its HO
				// contains pi0 ⊇ sub, so this must hold.
				t.Fatalf("trial %d: Pk(%v) holds but Pk(%v) does not", trial, pi0, sub)
			}
		}
	}
	if checked == 0 {
		t.Skip("generator never produced a holding kernel; widen windows")
	}
}

// Property: widening the window can only make Psu/Pk harder — if a window
// holds, every sub-window holds.
func TestWindowMonotonicity(t *testing.T) {
	rng := xrand.New(22)
	for trial := 0; trial < 500; trial++ {
		tr := randomTrace(rng)
		pi0 := core.PIDSet(rng.Uint64()) & core.FullSet(tr.N)
		from := core.Round(1)
		to := tr.NumRounds()
		if (Kernel{Pi0: pi0, From: from, To: to}).Holds(tr) {
			for f := from; f <= to; f++ {
				for e := f; e <= to; e++ {
					if !(Kernel{Pi0: pi0, From: f, To: e}).Holds(tr) {
						t.Fatalf("trial %d: Pk holds on [%d,%d] but not on sub-window [%d,%d]",
							trial, from, to, f, e)
					}
				}
			}
		}
		if (SpaceUniform{Pi0: pi0, From: from, To: to}).Holds(tr) {
			for f := from; f <= to; f++ {
				if !(SpaceUniform{Pi0: pi0, From: f, To: f}).Holds(tr) {
					t.Fatalf("trial %d: Psu holds on [%d,%d] but not at round %d",
						trial, from, to, f)
				}
			}
		}
	}
}

// Property: the witness finders agree with the boolean checkers.
func TestWitnessFindersAgreeWithHolds(t *testing.T) {
	rng := xrand.New(23)
	for trial := 0; trial < 800; trial++ {
		tr := randomTrace(rng)
		_, _, foundPotr := FindPotrWitness(tr)
		if foundPotr != (Potr{}).Holds(tr) {
			t.Fatalf("trial %d: Potr finder and checker disagree", trial)
		}
		_, _, foundRestr := FindPrestrOtrWitness(tr)
		if foundRestr != (PrestrOtr{}).Holds(tr) {
			t.Fatalf("trial %d: PrestrOtr finder and checker disagree", trial)
		}
	}
}

// Property: a Potr witness set is valid — re-checking its definition
// directly on the trace succeeds.
func TestPotrWitnessIsSelfConsistent(t *testing.T) {
	rng := xrand.New(24)
	found := 0
	for trial := 0; trial < 2000; trial++ {
		n := 3 + rng.Intn(4)
		tr := core.NewTrace(n, make([]core.Value, n))
		for i := 0; i < 4; i++ {
			if rng.Bool(0.6) {
				set := core.PIDSet(rng.Uint64()) & core.FullSet(n)
				ho := make([]core.PIDSet, n)
				for p := range ho {
					ho[p] = set
				}
				tr.RecordRound(ho)
			} else {
				ho := make([]core.PIDSet, n)
				for p := range ho {
					ho[p] = core.PIDSet(rng.Uint64()) & core.FullSet(n)
				}
				tr.RecordRound(ho)
			}
		}
		r0, pi0, ok := FindPotrWitness(tr)
		if !ok {
			continue
		}
		found++
		if 3*pi0.Len() <= 2*n {
			t.Fatalf("witness Π0 %v too small for n=%d", pi0, n)
		}
		for p := 0; p < n; p++ {
			if tr.HO(core.ProcessID(p), r0) != pi0 {
				t.Fatalf("witness round %d not uniform at p%d", r0, p)
			}
		}
	}
	if found == 0 {
		t.Error("generator never satisfied Potr; test vacuous")
	}
}
