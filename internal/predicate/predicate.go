// Package predicate implements the communication predicates of Hutle &
// Schiper (DSN 2007) as checkable predicates over recorded HO traces.
//
// A communication predicate is a condition on the collection of heard-of
// sets (HO(p, r)) for p ∈ Π and r > 0. A problem is solved by a pair
// ⟨algorithm, predicate⟩: the algorithm guarantees safety unconditionally
// and the predicate captures the liveness obligation of the environment.
//
// The package provides the predicates of Table 1 (P_otr, P_otr^restr), the
// §4.2 family (P_su, P_k, P_otr^2, P_otr^1/1), generic building blocks
// (space uniformity, kernels, cardinality bounds), and boolean combinators.
package predicate

import (
	"fmt"

	"heardof/internal/core"
	"heardof/internal/quorum"
)

// Predicate is a checkable communication predicate over a finite trace.
// Holds is interpreted over exactly the recorded rounds: existential
// quantifiers over rounds range over [1, trace.NumRounds()].
type Predicate interface {
	// Name returns a short human-readable identifier.
	Name() string
	// Holds reports whether the predicate is satisfied by the trace.
	Holds(tr *core.Trace) bool
}

// Func adapts a function to the Predicate interface.
type Func struct {
	ID string
	F  func(tr *core.Trace) bool
}

// Name implements Predicate.
func (f Func) Name() string { return f.ID }

// Holds implements Predicate.
func (f Func) Holds(tr *core.Trace) bool { return f.F(tr) }

// ---------------------------------------------------------------------------
// Building blocks: P_su and P_k (§4.2).
// ---------------------------------------------------------------------------

// SpaceUniform is P_su(Π0, From, To): every process of Π0 has heard-of set
// exactly Π0 in every round of [From, To].
type SpaceUniform struct {
	Pi0      core.PIDSet
	From, To core.Round
}

// Name implements Predicate.
func (p SpaceUniform) Name() string {
	return fmt.Sprintf("Psu(%s,%d,%d)", p.Pi0, p.From, p.To)
}

// Holds implements Predicate.
func (p SpaceUniform) Holds(tr *core.Trace) bool {
	if p.From < 1 || p.To > tr.NumRounds() || p.From > p.To {
		return false
	}
	for r := p.From; r <= p.To; r++ {
		ok := true
		p.Pi0.ForEach(func(q core.ProcessID) {
			if tr.HO(q, r) != p.Pi0 {
				ok = false
			}
		})
		if !ok {
			return false
		}
	}
	return true
}

// Kernel is P_k(Π0, From, To): every process of Π0 has heard-of set
// containing Π0 (a superset) in every round of [From, To].
type Kernel struct {
	Pi0      core.PIDSet
	From, To core.Round
}

// Name implements Predicate.
func (p Kernel) Name() string {
	return fmt.Sprintf("Pk(%s,%d,%d)", p.Pi0, p.From, p.To)
}

// Holds implements Predicate.
func (p Kernel) Holds(tr *core.Trace) bool {
	if p.From < 1 || p.To > tr.NumRounds() || p.From > p.To {
		return false
	}
	for r := p.From; r <= p.To; r++ {
		ok := true
		p.Pi0.ForEach(func(q core.ProcessID) {
			if !tr.HO(q, r).Contains(p.Pi0) {
				ok = false
			}
		})
		if !ok {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// The §4.2 existential forms.
// ---------------------------------------------------------------------------

// P2otr is P_otr^2(Π0): there is a round r0 with P_su(Π0, r0, r0) followed
// immediately by a round satisfying P_k(Π0, r0+1, r0+1).
type P2otr struct {
	Pi0 core.PIDSet
}

// Name implements Predicate.
func (p P2otr) Name() string { return fmt.Sprintf("P2otr(%s)", p.Pi0) }

// Holds implements Predicate.
func (p P2otr) Holds(tr *core.Trace) bool {
	_, ok := FindP2otrWitness(tr, p.Pi0)
	return ok
}

// FindP2otrWitness returns the smallest r0 witnessing P_otr^2(Π0).
func FindP2otrWitness(tr *core.Trace, pi0 core.PIDSet) (core.Round, bool) {
	last := tr.NumRounds()
	for r0 := core.Round(1); r0+1 <= last; r0++ {
		if (SpaceUniform{Pi0: pi0, From: r0, To: r0}).Holds(tr) &&
			(Kernel{Pi0: pi0, From: r0 + 1, To: r0 + 1}).Holds(tr) {
			return r0, true
		}
	}
	return 0, false
}

// P11otr is P_otr^1/1(Π0): there are rounds r0 < r1 with P_su(Π0, r0, r0)
// and P_k(Π0, r1, r1); the two rounds need not be consecutive.
type P11otr struct {
	Pi0 core.PIDSet
}

// Name implements Predicate.
func (p P11otr) Name() string { return fmt.Sprintf("P11otr(%s)", p.Pi0) }

// Holds implements Predicate.
func (p P11otr) Holds(tr *core.Trace) bool {
	last := tr.NumRounds()
	for r0 := core.Round(1); r0 < last; r0++ {
		if !(SpaceUniform{Pi0: p.Pi0, From: r0, To: r0}).Holds(tr) {
			continue
		}
		for r1 := r0 + 1; r1 <= last; r1++ {
			if (Kernel{Pi0: p.Pi0, From: r1, To: r1}).Holds(tr) {
				return true
			}
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Table 1: P_otr and P_otr^restr.
// ---------------------------------------------------------------------------

// Potr is predicate (1) of Table 1: there exist a round r0 and a set Π0
// with |Π0| > 2n/3 such that every process in Π hears exactly Π0 at r0, and
// every process p has a later round r_p in which it hears more than 2n/3
// processes.
type Potr struct{}

// Name implements Predicate.
func (Potr) Name() string { return "Potr" }

// Holds implements Predicate.
func (Potr) Holds(tr *core.Trace) bool {
	_, _, ok := FindPotrWitness(tr)
	return ok
}

// FindPotrWitness returns the smallest witnessing round r0 and the set Π0
// for P_otr.
func FindPotrWitness(tr *core.Trace) (core.Round, core.PIDSet, bool) {
	n := tr.N
	last := tr.NumRounds()
	all := core.FullSet(n)
	for r0 := core.Round(1); r0 <= last; r0++ {
		pi0 := tr.HO(0, r0)
		if !quorum.ExceedsTwoThirds(pi0.Len(), n) {
			continue
		}
		uniform := true
		all.ForEach(func(p core.ProcessID) {
			if tr.HO(p, r0) != pi0 {
				uniform = false
			}
		})
		if !uniform {
			continue
		}
		// ∀p ∈ Π, ∃rp > r0: |HO(p, rp)| > 2n/3.
		allHaveLater := true
		all.ForEach(func(p core.ProcessID) {
			found := false
			for rp := r0 + 1; rp <= last; rp++ {
				if quorum.ExceedsTwoThirds(tr.HO(p, rp).Len(), n) {
					found = true
					break
				}
			}
			if !found {
				allHaveLater = false
			}
		})
		if allHaveLater {
			return r0, pi0, true
		}
	}
	return 0, 0, false
}

// PrestrOtr is predicate (2) of Table 1, the restricted-scope variant of
// P_otr: the requirements apply only to processes in Π0, and the later
// rounds only need HO(p, r_p) ⊇ Π0.
type PrestrOtr struct{}

// Name implements Predicate.
func (PrestrOtr) Name() string { return "PrestrOtr" }

// Holds implements Predicate.
func (PrestrOtr) Holds(tr *core.Trace) bool {
	_, _, ok := FindPrestrOtrWitness(tr)
	return ok
}

// FindPrestrOtrWitness returns the smallest witnessing round r0 and set Π0
// for P_otr^restr. Candidate sets Π0 are drawn from the heard-of sets
// occurring in the trace (a witness set must equal HO(p, r0) for its own
// members, so it occurs in the trace).
func FindPrestrOtrWitness(tr *core.Trace) (core.Round, core.PIDSet, bool) {
	n := tr.N
	last := tr.NumRounds()
	for r0 := core.Round(1); r0 <= last; r0++ {
		seen := map[core.PIDSet]bool{}
		for p := 0; p < n; p++ {
			pi0 := tr.HO(core.ProcessID(p), r0)
			if seen[pi0] || !quorum.ExceedsTwoThirds(pi0.Len(), n) {
				continue
			}
			seen[pi0] = true
			if prestrWitnessAt(tr, r0, pi0) {
				return r0, pi0, true
			}
		}
	}
	return 0, 0, false
}

func prestrWitnessAt(tr *core.Trace, r0 core.Round, pi0 core.PIDSet) bool {
	// ∀p ∈ Π0: HO(p, r0) = Π0.
	if !(SpaceUniform{Pi0: pi0, From: r0, To: r0}).Holds(tr) {
		return false
	}
	// ∀p ∈ Π0, ∃rp > r0: HO(p, rp) ⊇ Π0.
	last := tr.NumRounds()
	ok := true
	pi0.ForEach(func(p core.ProcessID) {
		found := false
		for rp := r0 + 1; rp <= last; rp++ {
			if tr.HO(p, rp).Contains(pi0) {
				found = true
				break
			}
		}
		if !found {
			ok = false
		}
	})
	return ok
}

// ---------------------------------------------------------------------------
// Generic predicates.
// ---------------------------------------------------------------------------

// MinCardinality requires |HO(p, r)| ≥ K for every process and every
// recorded round. With K = ⌊n/2⌋+1 this is the "every round every process
// hears a majority" example of §3.1.
type MinCardinality struct {
	K int
}

// Name implements Predicate.
func (p MinCardinality) Name() string { return fmt.Sprintf("MinCard(%d)", p.K) }

// Holds implements Predicate.
func (p MinCardinality) Holds(tr *core.Trace) bool {
	for r := core.Round(1); r <= tr.NumRounds(); r++ {
		for q := 0; q < tr.N; q++ {
			if tr.HO(core.ProcessID(q), r).Len() < p.K {
				return false
			}
		}
	}
	return true
}

// MajorityEveryRound is the §3.1 example predicate
// ∀r, ∀p: |HO(p, r)| > n/2.
func MajorityEveryRound(n int) Predicate {
	return Func{
		ID: "MajorityEveryRound",
		F:  MinCardinality{K: quorum.MajorityThreshold(n)}.Holds,
	}
}

// NonEmptyKernels requires every recorded round to have a non-empty kernel
// (∩_p HO(p, r) ≠ ∅), the class of predicates singled out in the Heard-Of
// model paper.
type NonEmptyKernels struct{}

// Name implements Predicate.
func (NonEmptyKernels) Name() string { return "NonEmptyKernels" }

// Holds implements Predicate.
func (NonEmptyKernels) Holds(tr *core.Trace) bool {
	all := core.FullSet(tr.N)
	for r := core.Round(1); r <= tr.NumRounds(); r++ {
		if tr.Kernel(r, all).IsEmpty() {
			return false
		}
	}
	return true
}

// UniformRoundExists requires some round in which all processes hear the
// same set (the first example of §3.1).
type UniformRoundExists struct{}

// Name implements Predicate.
func (UniformRoundExists) Name() string { return "UniformRoundExists" }

// Holds implements Predicate.
func (UniformRoundExists) Holds(tr *core.Trace) bool {
	for r := core.Round(1); r <= tr.NumRounds(); r++ {
		uniform := true
		first := tr.HO(0, r)
		for p := 1; p < tr.N; p++ {
			if tr.HO(core.ProcessID(p), r) != first {
				uniform = false
				break
			}
		}
		if uniform {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Combinators.
// ---------------------------------------------------------------------------

// And returns the conjunction of the predicates.
func And(ps ...Predicate) Predicate {
	return Func{ID: "And", F: func(tr *core.Trace) bool {
		for _, p := range ps {
			if !p.Holds(tr) {
				return false
			}
		}
		return true
	}}
}

// Or returns the disjunction of the predicates.
func Or(ps ...Predicate) Predicate {
	return Func{ID: "Or", F: func(tr *core.Trace) bool {
		for _, p := range ps {
			if p.Holds(tr) {
				return true
			}
		}
		return false
	}}
}

// Not returns the negation of the predicate.
func Not(p Predicate) Predicate {
	return Func{ID: "Not(" + p.Name() + ")", F: func(tr *core.Trace) bool {
		return !p.Holds(tr)
	}}
}

// ExistsPi0 quantifies a Π0-parameterized predicate over all subsets drawn
// from the heard-of sets occurring in the trace whose size exceeds 2n/3,
// e.g. ExistsPi0(tr, P2otr-witness) for the implication
// (∃Π0, |Π0|>2n/3 : P_otr^2(Π0)) ⇒ P_otr^restr.
func ExistsPi0(tr *core.Trace, mk func(pi0 core.PIDSet) Predicate) bool {
	seen := map[core.PIDSet]bool{}
	for r := core.Round(1); r <= tr.NumRounds(); r++ {
		for p := 0; p < tr.N; p++ {
			pi0 := tr.HO(core.ProcessID(p), r)
			if seen[pi0] || !quorum.ExceedsTwoThirds(pi0.Len(), tr.N) {
				continue
			}
			seen[pi0] = true
			if mk(pi0).Holds(tr) {
				return true
			}
		}
	}
	return false
}
