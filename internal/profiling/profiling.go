// Package profiling wires the standard -cpuprofile/-memprofile flags into
// the repo's commands, so perf investigations of the event core need no
// ad-hoc harnesses: any hobench/hosim invocation can emit pprof profiles
// directly.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling (when cpuPath is non-empty) and arranges an
// allocation profile dump (when memPath is non-empty). The returned stop
// func finalizes both and must run before process exit; it is safe to call
// when both paths are empty.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile, memFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
	}
	if memPath != "" {
		// Open up front so a bad path fails before the run, not after it.
		memFile, err = os.Create(memPath)
		if err != nil {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			return nil, fmt.Errorf("-memprofile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("-cpuprofile: %w", err)
			}
		}
		if memFile != nil {
			defer memFile.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.Lookup("allocs").WriteTo(memFile, 0); err != nil {
				return fmt.Errorf("-memprofile: %w", err)
			}
		}
		return nil
	}, nil
}
