// Wire encoding of OneThirdRule round messages for the live runtime
// (internal/live). Living here keeps the payload type unexported: the
// codec is the only sanctioned view of it outside the algorithm.

package otr

import (
	"encoding/binary"
	"fmt"

	"heardof/internal/core"
)

// Wire-format tags. Tag 0 is the null message (a process that "sends
// nothing relevant"): it still travels, because being heard — even with
// a null payload — is membership in HO(p, r).
const (
	wireNil      = 0
	wireEstimate = 1
)

// WireCodec encodes OneThirdRule messages: one tag byte, then the
// estimate as a zigzag varint. It satisfies the live runtime's Codec
// interface structurally.
type WireCodec struct{}

// Encode serializes m.
func (WireCodec) Encode(m core.Message) ([]byte, error) {
	switch v := m.(type) {
	case nil:
		return []byte{wireNil}, nil
	case message:
		return binary.AppendVarint([]byte{wireEstimate}, int64(v.X)), nil
	default:
		return nil, fmt.Errorf("otr: cannot encode foreign payload %T", m)
	}
}

// Decode parses an Encode result.
func (WireCodec) Decode(b []byte) (core.Message, error) {
	if len(b) < 1 {
		return nil, fmt.Errorf("otr: empty wire message")
	}
	switch b[0] {
	case wireNil:
		return nil, nil
	case wireEstimate:
		x, n := binary.Varint(b[1:])
		if n <= 0 {
			return nil, fmt.Errorf("otr: truncated estimate")
		}
		return message{X: core.Value(x)}, nil
	default:
		return nil, fmt.Errorf("otr: unknown wire tag %d", b[0])
	}
}
