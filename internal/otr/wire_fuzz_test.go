package otr

import (
	"testing"

	"heardof/internal/core"
)

// FuzzWireCodecDecode hammers the decode path with arbitrary bytes: it
// must never panic, and any input it accepts must re-encode and decode
// to the same message (the codec is canonical on its own output). The
// seed corpus is real round traffic — what instances actually put on
// the wire — plus the interesting malformed prefixes.
func FuzzWireCodecDecode(f *testing.F) {
	codec := WireCodec{}
	n := 3
	for i, x := range []core.Value{0, 1, -7, 1 << 40, -(1 << 62)} {
		inst := Algorithm{}.NewInstance(core.ProcessID(i%n), n, x)
		enc, err := codec.Encode(inst.Send(1))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte(nil))
	f.Add([]byte{wireNil})
	f.Add([]byte{wireEstimate}) // truncated estimate
	f.Add([]byte{wireEstimate, 0x80})
	f.Add([]byte{0xFF})

	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := codec.Decode(b)
		if err != nil {
			return
		}
		enc, err := codec.Encode(m)
		if err != nil {
			t.Fatalf("decoded %#v from %x but cannot re-encode: %v", m, b, err)
		}
		m2, err := codec.Decode(enc)
		if err != nil {
			t.Fatalf("re-encoding of %#v does not decode: %v", m, err)
		}
		if m2 != m {
			t.Fatalf("round trip changed the message: %#v → %#v", m, m2)
		}
	})
}
