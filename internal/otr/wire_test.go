package otr

import (
	"testing"

	"heardof/internal/core"
)

func TestWireCodecRoundTrip(t *testing.T) {
	codec := WireCodec{}
	for _, want := range []core.Message{nil, message{X: 0}, message{X: -3}, message{X: 1 << 50}} {
		b, err := codec.Encode(want)
		if err != nil {
			t.Fatalf("encode %#v: %v", want, err)
		}
		got, err := codec.Decode(b)
		if err != nil {
			t.Fatalf("decode %#v: %v", want, err)
		}
		if got != want {
			t.Fatalf("round trip %#v → %#v", want, got)
		}
	}
}

func TestWireCodecRejectsMalformed(t *testing.T) {
	codec := WireCodec{}
	if _, err := codec.Encode(42); err == nil {
		t.Error("foreign payload encoded")
	}
	for _, b := range [][]byte{nil, {77}, {wireEstimate}} {
		if _, err := codec.Decode(b); err == nil {
			t.Errorf("decoded malformed %v", b)
		}
	}
}
