// Package otr implements Algorithm 1 of Hutle & Schiper (DSN 2007): the
// OneThirdRule consensus algorithm of Charron-Bost and Schiper's Heard-Of
// model paper.
//
// Every round, each process broadcasts its estimate x_p. On receiving
// messages from more than 2n/3 processes, a process adopts the value shared
// by all-but-at-most-⌊n/3⌋ of the received messages if one exists, and the
// smallest received value otherwise; it decides on a value that occurs in
// more than 2n/3 of the received messages.
//
// Paired with the communication predicate P_otr (or its restricted-scope
// variant P_otr^restr) the algorithm solves consensus (Theorems 1 and 2 of
// the paper); its safety properties hold under arbitrary heard-of sets.
package otr

import (
	"encoding/binary"
	"errors"

	"heardof/internal/core"
	"heardof/internal/quorum"
)

// Algorithm is the OneThirdRule algorithm factory.
type Algorithm struct{}

var _ core.Algorithm = Algorithm{}

// Name implements core.Algorithm.
func (Algorithm) Name() string { return "OneThirdRule" }

// NewInstance implements core.Algorithm.
func (Algorithm) NewInstance(p core.ProcessID, n int, initial core.Value) core.Instance {
	return &Instance{p: p, n: n, x: initial}
}

// message is the round message ⟨x_p⟩.
type message struct {
	X core.Value
}

// Instance is one process's OneThirdRule state: the estimate x_p and the
// decision status.
type Instance struct {
	p core.ProcessID
	n int

	x        core.Value
	decided  bool
	decision core.Value
}

var (
	_ core.Instance    = (*Instance)(nil)
	_ core.Recoverable = (*Instance)(nil)
)

// X returns the current estimate x_p (for tests and debugging).
func (i *Instance) X() core.Value { return i.x }

// Send implements S_p^r: broadcast ⟨x_p⟩.
func (i *Instance) Send(core.Round) core.Message { return message{X: i.x} }

// Transition implements T_p^r (lines 6–13 of Algorithm 1).
func (i *Instance) Transition(_ core.Round, msgs []core.IncomingMessage) {
	m := len(msgs)
	if !quorum.ExceedsTwoThirds(m, i.n) {
		return // |HO(p,r)| ≤ 2n/3: no state change this round
	}

	counts := make(map[core.Value]int, m)
	smallest := core.Value(0)
	haveSmallest := false
	for _, im := range msgs {
		mv, ok := im.Payload.(message)
		if !ok {
			continue // foreign payload: treat as transmission fault
		}
		counts[mv.X]++
		if !haveSmallest || mv.X < smallest {
			smallest = mv.X
			haveSmallest = true
		}
	}
	if len(counts) == 0 {
		return
	}

	// Line 8–11: if the values received, except at most ⌊n/3⌋, are equal
	// to some x̄, adopt x̄; otherwise adopt the smallest received value.
	// Such an x̄ is unique because m > 2n/3.
	slack := quorum.ThirdFloor(i.n)
	adopted := false
	for v, c := range counts {
		if c >= m-slack {
			i.x = v
			adopted = true
			break
		}
	}
	if !adopted {
		i.x = smallest
	}

	// Line 12–13: decide x̄ if more than 2n/3 of the received values equal
	// x̄ (threshold relative to n, not to m).
	for v, c := range counts {
		if quorum.ExceedsTwoThirds(c, i.n) {
			if !i.decided {
				i.decided = true
				i.decision = v
			}
			break
		}
	}
}

// Decided implements core.Instance.
func (i *Instance) Decided() (core.Value, bool) { return i.decision, i.decided }

// ForceStateForTest sets the local state directly. It exists for the
// exhaustive model checker (internal/modelcheck), which reconstructs
// instances from encoded states.
func (i *Instance) ForceStateForTest(x core.Value, decided bool, decision core.Value) {
	i.x, i.decided, i.decision = x, decided, decision
}

// snapshot is the stable-storage image of an instance.
type snapshot struct {
	x        core.Value
	decided  bool
	decision core.Value
}

// Snapshot implements core.Recoverable.
func (i *Instance) Snapshot() core.Snapshot {
	return snapshot{x: i.x, decided: i.decided, decision: i.decision}
}

// Restore implements core.Recoverable.
func (i *Instance) Restore(s core.Snapshot) {
	sn, ok := s.(snapshot)
	if !ok {
		return
	}
	i.x, i.decided, i.decision = sn.x, sn.decided, sn.decision
}

// AppendState appends a canonical byte encoding of the instance state,
// for model-checker fingerprinting (a fast path avoiding reflection).
func (i *Instance) AppendState(dst []byte) []byte {
	dst = binary.AppendVarint(dst, int64(i.x))
	if i.decided {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	return binary.AppendVarint(dst, int64(i.decision))
}

// RestoreState is AppendState's inverse: it loads an instance from its
// canonical encoding, for crash recovery from the durability layer.
func (i *Instance) RestoreState(b []byte) error {
	x, n1 := binary.Varint(b)
	if n1 <= 0 {
		return errors.New("otr: corrupt state: x")
	}
	b = b[n1:]
	if len(b) == 0 || b[0] > 1 {
		return errors.New("otr: corrupt state: decided flag")
	}
	decision, n2 := binary.Varint(b[1:])
	if n2 <= 0 || len(b) != 1+n2 {
		return errors.New("otr: corrupt state: decision")
	}
	i.x, i.decided, i.decision = core.Value(x), b[0] == 1, core.Value(decision)
	return nil
}
