package otr

import (
	"testing"
	"testing/quick"

	"heardof/internal/adversary"
	"heardof/internal/core"
	"heardof/internal/predicate"
	"heardof/internal/xrand"
)

func values(vs ...int64) []core.Value {
	out := make([]core.Value, len(vs))
	for i, v := range vs {
		out[i] = core.Value(v)
	}
	return out
}

func mustRunner(t *testing.T, initial []core.Value, prov core.HOProvider) *core.Runner {
	t.Helper()
	ru, err := core.NewRunner(Algorithm{}, initial, prov)
	if err != nil {
		t.Fatal(err)
	}
	return ru
}

func TestFaultFreeUnanimousDecidesInOneRound(t *testing.T) {
	ru := mustRunner(t, values(5, 5, 5, 5), adversary.Full{})
	tr, err := ru.Run(10)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if tr.NumRounds() != 1 {
		t.Errorf("decided in %d rounds, want 1", tr.NumRounds())
	}
	for p, d := range tr.Decisions {
		if !d.Decided || d.Value != 5 {
			t.Errorf("p%d decision %v, want 5", p, d)
		}
	}
}

func TestFaultFreeMixedValuesDecideInTwoRounds(t *testing.T) {
	ru := mustRunner(t, values(3, 1, 2, 9), adversary.Full{})
	tr, err := ru.Run(10)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Round 1: everyone adopts min = 1. Round 2: everyone decides 1.
	if tr.NumRounds() != 2 {
		t.Errorf("decided in %d rounds, want 2", tr.NumRounds())
	}
	for p, d := range tr.Decisions {
		if !d.Decided || d.Value != 1 {
			t.Errorf("p%d decision %v, want 1", p, d)
		}
	}
}

func TestNoProgressWithoutTwoThirdsQuorum(t *testing.T) {
	// Every process hears only 2 of 4 processes (= 2n/3 not exceeded for
	// n=4? 2*3=6 > 8 is false), so no state changes and nobody decides.
	prov := core.HOProviderFunc(func(r core.Round, n int) []core.PIDSet {
		out := make([]core.PIDSet, n)
		for p := 0; p < n; p++ {
			out[p] = core.SetOf(core.ProcessID(p), core.ProcessID((p+1)%n))
		}
		return out
	})
	ru := mustRunner(t, values(1, 2, 3, 4), prov)
	ru.RunRounds(20)
	for p, inst := range ru.Instances() {
		oi := inst.(*Instance)
		if oi.X() != core.Value(p+1) {
			t.Errorf("p%d estimate changed to %d without quorum", p, oi.X())
		}
		if _, ok := oi.Decided(); ok {
			t.Errorf("p%d decided without quorum", p)
		}
	}
}

func TestAdoptsOverwhelmingValue(t *testing.T) {
	// n=6: five processes hold 9, one holds 1. With full HO sets, all six
	// see five 9s: 5 >= 6 - floor(6/3) = 4, so 9 is adopted everywhere
	// even though 1 is smaller, and 5 > 2*6/3 = 4 decides 9 immediately.
	ru := mustRunner(t, values(9, 9, 9, 9, 9, 1), adversary.Full{})
	tr, err := ru.Run(10)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for p, d := range tr.Decisions {
		if d.Value != 9 {
			t.Errorf("p%d decided %d, want 9", p, d.Value)
		}
	}
}

func TestSmallestRuleWhenNoDominantValue(t *testing.T) {
	// n=3, distinct values, full HO: no value reaches m - floor(n/3) = 2,
	// so everyone adopts min=1; next round everyone decides 1.
	ru := mustRunner(t, values(2, 1, 3), adversary.Full{})
	tr, err := ru.Run(10)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for p, d := range tr.Decisions {
		if d.Value != 1 {
			t.Errorf("p%d decided %d, want 1", p, d.Value)
		}
	}
}

func TestTheorem1LivenessUnderPotr(t *testing.T) {
	// The ScriptedPotr provider guarantees P_otr with r0 = 4 after three
	// totally lossy rounds; OneThirdRule must then decide (Theorem 1).
	for n := 2; n <= 9; n++ {
		pi0 := core.FullSet(n)
		prov := adversary.ScriptedPotr{R0: 4, Pi0: pi0}
		initial := make([]core.Value, n)
		for i := range initial {
			initial[i] = core.Value(i * 7 % 5)
		}
		ru, err := core.NewRunner(Algorithm{}, initial, prov)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := ru.Run(20)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !(predicate.Potr{}).Holds(tr) {
			t.Fatalf("n=%d: provider failed to realize Potr", n)
		}
		if err := tr.CheckConsensusSafety(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !tr.AllDecided() {
			t.Fatalf("n=%d: not all processes decided under Potr", n)
		}
	}
}

func TestTheorem2RestrictedScope(t *testing.T) {
	// Π0 = {0..4} of n=7 (|Π0| = 5 > 14/3). Processes outside Π0 hear
	// nothing; all processes in Π0 must decide (Theorem 2).
	n := 7
	pi0 := core.SetOf(0, 1, 2, 3, 4)
	prov := adversary.SpaceUniformRounds{Pi0: pi0, From: 2, To: 10}
	initial := values(1, 2, 3, 4, 5, 6, 7)
	ru, err := core.NewRunner(Algorithm{}, initial, prov)
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := ru.Run(10)
	if !(predicate.PrestrOtr{}).Holds(tr) {
		t.Fatal("provider failed to realize PrestrOtr")
	}
	if err := tr.CheckConsensusSafety(); err != nil {
		t.Fatal(err)
	}
	if !tr.DecidedSet().Contains(pi0) {
		t.Errorf("decided set %v does not contain Π0 %v", tr.DecidedSet(), pi0)
	}
	_ = n
}

func TestSafetyUnderArbitraryAdversary(t *testing.T) {
	// Agreement and integrity must hold for every heard-of assignment
	// (OneThirdRule never violates safety). 2000 random adversarial runs.
	for seed := uint64(0); seed < 2000; seed++ {
		n := 3 + int(seed%6)
		prov := &adversary.Arbitrary{RNG: xrand.New(seed), EmptyBias: 0.2}
		initial := make([]core.Value, n)
		rng := xrand.New(seed ^ 0xabcdef)
		for i := range initial {
			initial[i] = core.Value(rng.Intn(4))
		}
		ru, err := core.NewRunner(Algorithm{}, initial, prov)
		if err != nil {
			t.Fatal(err)
		}
		ru.RunRounds(30)
		if err := ru.Trace().CheckConsensusSafety(); err != nil {
			t.Fatalf("seed %d n=%d: %v", seed, n, err)
		}
	}
}

func TestSafetyUnderPartition(t *testing.T) {
	// A 4/3 split of n=7: the 4-group is below the 2n/3 threshold
	// (3*4 = 12 ≤ 14), so nobody decides, and safety trivially holds.
	groups := []core.PIDSet{core.SetOf(0, 1, 2, 3), core.SetOf(4, 5, 6)}
	ru := mustRunner(t, values(1, 1, 1, 1, 2, 2, 2), adversary.Partition{Groups: groups})
	ru.RunRounds(20)
	tr := ru.Trace()
	if err := tr.CheckConsensusSafety(); err != nil {
		t.Fatal(err)
	}
	if !tr.DecidedSet().IsEmpty() {
		t.Errorf("processes decided under a below-quorum partition: %v", tr.DecidedSet())
	}
}

func TestMajorityPartitionStillSafe(t *testing.T) {
	// A 6/1 split of n=7: the 6-group exceeds 2n/3 and decides; the
	// singleton cannot. Agreement must hold among deciders.
	groups := []core.PIDSet{core.SetOf(0, 1, 2, 3, 4, 5), core.SetOf(6)}
	ru := mustRunner(t, values(3, 1, 4, 1, 5, 9, 2), adversary.Partition{Groups: groups})
	ru.RunRounds(20)
	tr := ru.Trace()
	if err := tr.CheckConsensusSafety(); err != nil {
		t.Fatal(err)
	}
	if !tr.DecidedSet().Contains(groups[0]) {
		t.Errorf("majority group did not decide: %v", tr.DecidedSet())
	}
	if tr.DecidedSet().Has(6) {
		t.Error("isolated process decided")
	}
}

func TestCrashStopSPClass(t *testing.T) {
	// Crash-stop faults (SP class): 2 of 7 crash at round 3; the rest
	// still exceed 2n/3 (5*3 = 15 > 14) and decide.
	prov := adversary.CrashStop{CrashRound: map[core.ProcessID]core.Round{5: 3, 6: 3}}
	ru := mustRunner(t, values(4, 4, 2, 2, 2, 1, 1), prov)
	tr, err := ru.Run(20)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := tr.CheckConsensusSafety(); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicTransientDTClass(t *testing.T) {
	// DT faults: 15% iid transmission loss; consensus should still be
	// reached quickly with high probability, and safety must always hold.
	decided := 0
	const runs = 50
	for seed := uint64(0); seed < runs; seed++ {
		prov := &adversary.TransmissionLoss{Rate: 0.15, RNG: xrand.New(seed)}
		ru := mustRunner(t, values(1, 2, 3, 4, 5, 6, 7), prov)
		tr, err := ru.Run(100)
		if err == nil {
			decided++
		}
		if serr := tr.CheckConsensusSafety(); serr != nil {
			t.Fatalf("seed %d: %v", seed, serr)
		}
	}
	if decided < runs*9/10 {
		t.Errorf("only %d/%d runs decided under 15%% DT loss", decided, runs)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	inst := Algorithm{}.NewInstance(0, 3, 42).(*Instance)
	inst.Transition(1, []core.IncomingMessage{
		{From: 0, Payload: message{X: 42}},
		{From: 1, Payload: message{X: 42}},
		{From: 2, Payload: message{X: 42}},
	})
	snap := inst.Snapshot()
	if v, ok := inst.Decided(); !ok || v != 42 {
		t.Fatal("instance should have decided 42")
	}

	fresh := Algorithm{}.NewInstance(0, 3, 0).(*Instance)
	fresh.Restore(snap)
	if v, ok := fresh.Decided(); !ok || v != 42 {
		t.Error("restored instance lost decision")
	}
	if fresh.X() != 42 {
		t.Errorf("restored estimate = %d, want 42", fresh.X())
	}
	// Restoring garbage is a no-op.
	fresh.Restore("not a snapshot")
	if v, ok := fresh.Decided(); !ok || v != 42 {
		t.Error("garbage Restore clobbered state")
	}
}

func TestForeignPayloadsIgnored(t *testing.T) {
	inst := Algorithm{}.NewInstance(0, 3, 7).(*Instance)
	inst.Transition(1, []core.IncomingMessage{
		{From: 0, Payload: "garbage"},
		{From: 1, Payload: 123},
		{From: 2, Payload: nil},
	})
	if inst.X() != 7 {
		t.Errorf("estimate changed to %d on foreign payloads", inst.X())
	}
}

// Property: in any single fault-free round over arbitrary initial values,
// all processes adopt the same estimate (the preparation step of Theorem 1).
func TestUniformRoundForcesConvergence(t *testing.T) {
	f := func(raw []int8) bool {
		n := len(raw)
		if n < 1 || n > 16 {
			return true
		}
		initial := make([]core.Value, n)
		for i, v := range raw {
			initial[i] = core.Value(v)
		}
		ru, err := core.NewRunner(Algorithm{}, initial, adversary.Full{})
		if err != nil {
			return false
		}
		ru.RunRounds(1)
		want := ru.Instances()[0].(*Instance).X()
		for _, inst := range ru.Instances() {
			if inst.(*Instance).X() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRestoreStateRoundTrip(t *testing.T) {
	// OTR has no phase bookkeeping: the whole instance is stable state
	// and must round-trip through AppendState/RestoreState exactly.
	inst := Algorithm{}.NewInstance(0, 4, 9).(*Instance)
	inst.ForceStateForTest(42, true, 42)
	rec := Algorithm{}.NewInstance(0, 4, 0).(*Instance)
	if err := rec.RestoreState(inst.AppendState(nil)); err != nil {
		t.Fatal(err)
	}
	if rec.x != 42 {
		t.Errorf("x = %d, want 42", rec.x)
	}
	if v, ok := rec.Decided(); !ok || v != 42 {
		t.Errorf("decision = (%d, %v), want (42, true)", v, ok)
	}

	undecided := Algorithm{}.NewInstance(1, 4, 7).(*Instance)
	rec2 := Algorithm{}.NewInstance(1, 4, 0).(*Instance)
	if err := rec2.RestoreState(undecided.AppendState(nil)); err != nil {
		t.Fatal(err)
	}
	if rec2.x != 7 {
		t.Errorf("x = %d, want 7", rec2.x)
	}
	if _, ok := rec2.Decided(); ok {
		t.Error("undecided instance recovered as decided")
	}

	for _, b := range [][]byte{nil, {0x80}, inst.AppendState(nil)[:2], append(inst.AppendState(nil), 0)} {
		if err := rec2.RestoreState(b); err == nil {
			t.Errorf("RestoreState(%x) accepted corrupt state", b)
		}
	}
}
