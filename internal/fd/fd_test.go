package fd

import (
	"testing"

	"heardof/internal/core"
	"heardof/internal/runtime"
)

type idle struct{}

func (idle) Start(*runtime.Context)                          {}
func (idle) OnMessage(*runtime.Context, runtime.NodeID, any) {}
func (idle) OnTimer(*runtime.Context, int)                   {}
func (idle) OnCrash()                                        {}
func (idle) OnRecover(*runtime.Context)                      {}

func newSim(t *testing.T, n int, crashes []runtime.CrashEvent) *runtime.Sim {
	t.Helper()
	sim, err := runtime.New(runtime.Config{
		N: n, MinDelay: 1, MaxDelay: 2, Seed: 9, Crashes: crashes,
	}, func(runtime.NodeID) runtime.Handler { return idle{} })
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestEventuallyStrongCompleteness(t *testing.T) {
	sim := newSim(t, 4, []runtime.CrashEvent{{P: 3, At: 5, RecoverAt: -1}})
	d := NewEventuallyStrong(sim, 50, 1)
	sim.RunUntilTime(100) // past GST
	sus := d.Suspects(0, 4)
	if !sus.Has(3) {
		t.Error("crashed process not suspected (completeness violated)")
	}
	if sus.Has(1) || sus.Has(2) {
		t.Error("alive process suspected after GST (accuracy violated)")
	}
	if sus.Has(0) {
		t.Error("querier suspects itself")
	}
}

func TestEventuallyStrongPreGSTCanBeWrong(t *testing.T) {
	sim := newSim(t, 6, nil)
	d := NewEventuallyStrong(sim, 1e9, 2)
	wrong := 0
	for i := 0; i < 200; i++ {
		if !d.Suspects(0, 6).IsEmpty() {
			wrong++
		}
	}
	if wrong == 0 {
		t.Error("pre-GST detector never made a false suspicion; unrealistically perfect")
	}
}

func TestEventuallySuTrustAndEpochs(t *testing.T) {
	sim := newSim(t, 3, []runtime.CrashEvent{{P: 1, At: 5, RecoverAt: 20}})
	d := NewEventuallySu(sim, 50, 3)

	sim.RunUntilTime(10) // process 1 down
	v := d.Query(0, 3)
	if v.Trusts(1) {
		t.Error("down process trusted")
	}
	if v.Epoch[1] != 0 {
		t.Errorf("epoch before recovery = %d, want 0", v.Epoch[1])
	}

	sim.RunUntilTime(100) // recovered, past GST
	v = d.Query(0, 3)
	if !v.Trusts(1) {
		t.Error("recovered process not trusted after GST")
	}
	if v.Epoch[1] != 1 {
		t.Errorf("epoch after recovery = %d, want 1", v.Epoch[1])
	}
	if !v.Trusts(0) || !v.Trusts(2) {
		t.Error("stable processes not trusted after GST")
	}
}

func TestEventuallySuAlwaysTrustsSelf(t *testing.T) {
	sim := newSim(t, 3, nil)
	d := NewEventuallySu(sim, 1e9, 4)
	for i := 0; i < 100; i++ {
		if !d.Query(2, 3).Trusts(2) {
			t.Fatal("querier distrusted itself pre-GST")
		}
	}
}

func TestViewTrusts(t *testing.T) {
	v := View{TrustList: core.SetOf(0, 2)}
	if !v.Trusts(0) || v.Trusts(1) || !v.Trusts(2) {
		t.Error("View.Trusts wrong")
	}
}
