// Package fd provides the failure detectors of the baselines in
// Appendix A of Hutle & Schiper (DSN 2007):
//
//   - ◇S (eventually strong, Chandra & Toueg): strong completeness plus
//     eventual weak accuracy. Before GST the detector may suspect
//     arbitrarily; from GST on it suspects exactly the crashed processes.
//   - ◇S_u (Aguilera, Chen & Toueg): for the crash-recovery model; each
//     query returns a trustlist and per-process epoch numbers that
//     increase when a process crashes and recovers.
//
// The detectors are simulation oracles: they read the runtime's ground
// truth, exactly as the failure-detector model assumes an abstract module
// satisfying the axioms. Implementing them over unreliable links is the
// very problem the paper's §1 identifies; here they are granted by fiat so
// that the baselines compete under their own model's best case.
package fd

import (
	"heardof/internal/core"
	"heardof/internal/runtime"
	"heardof/internal/xrand"
)

// EventuallyStrong is a ◇S oracle over a runtime simulation.
type EventuallyStrong struct {
	sim *runtime.Sim
	gst runtime.Time
	rng *xrand.Rand
	// wrongProb is the pre-GST probability that a given alive process is
	// (wrongly) suspected on a query.
	wrongProb float64
}

// NewEventuallyStrong creates a ◇S detector that behaves arbitrarily
// before gst and is perfect afterwards.
func NewEventuallyStrong(sim *runtime.Sim, gst runtime.Time, seed uint64) *EventuallyStrong {
	return &EventuallyStrong{sim: sim, gst: gst, rng: xrand.New(seed), wrongProb: 0.25}
}

// Suspects returns the set D_p of processes suspected by querier at the
// current time: all permanently crashed processes (strong completeness)
// plus, before GST, random false suspicions (no accuracy yet). From GST
// on, no alive process is suspected (eventual weak — in fact strong —
// accuracy).
func (d *EventuallyStrong) Suspects(querier core.ProcessID, n int) core.PIDSet {
	var out core.PIDSet
	now := d.sim.Now()
	for p := 0; p < n; p++ {
		pid := core.ProcessID(p)
		if pid == querier {
			continue
		}
		if !d.sim.Up(pid) {
			out = out.Add(pid)
			continue
		}
		if now < d.gst && d.rng.Bool(d.wrongProb) {
			out = out.Add(pid)
		}
	}
	return out
}

// View is one query result of the ◇S_u detector of Aguilera et al.: the
// processes currently deemed up, and an epoch number per process that
// increases whenever the process crashes and recovers.
type View struct {
	TrustList core.PIDSet
	Epoch     []int64
}

// Trusts reports whether the view trusts p.
func (v View) Trusts(p core.ProcessID) bool { return v.TrustList.Has(p) }

// EventuallySu is the ◇S_u oracle for the crash-recovery model.
type EventuallySu struct {
	sim *runtime.Sim
	gst runtime.Time
	rng *xrand.Rand
	// distrustProb is the pre-GST probability of wrongly distrusting an
	// up process per query.
	distrustProb float64
}

// NewEventuallySu creates a ◇S_u detector stabilizing at gst.
func NewEventuallySu(sim *runtime.Sim, gst runtime.Time, seed uint64) *EventuallySu {
	return &EventuallySu{sim: sim, gst: gst, rng: xrand.New(seed), distrustProb: 0.25}
}

// Query returns the current view for a querier: after GST the trustlist
// is exactly the up processes and epochs are exact; before GST the
// trustlist may wrongly omit up processes.
func (d *EventuallySu) Query(querier core.ProcessID, n int) View {
	v := View{Epoch: make([]int64, n)}
	now := d.sim.Now()
	for p := 0; p < n; p++ {
		pid := core.ProcessID(p)
		v.Epoch[p] = d.sim.Epoch(pid)
		if !d.sim.Up(pid) {
			continue
		}
		if pid != querier && now < d.gst && d.rng.Bool(d.distrustProb) {
			continue // false distrust pre-GST
		}
		v.TrustList = v.TrustList.Add(pid)
	}
	return v
}
