package predimpl

import (
	"fmt"

	"heardof/internal/core"
	"heardof/internal/otr"
	"heardof/internal/simtime"
	"heardof/internal/translation"
)

// FullStackExperiment is the §4.2.2(c) composition measured end to end:
// OneThirdRule over the Algorithm 4 translation over Algorithm 3, in a
// π0-arbitrary good period starting at TG (preceded by a bad period when
// TG > 0). It measures the good-period time until every π0 member has
// decided and compares it against the 2f+3-round bound
// (2f+5)[τ0φ+δ+nφ+2φ]+τ0φ.
//
// Requires |π0| = n−f > 2n/3 (OneThirdRule's quorum), hence f < n/3.
type FullStackExperiment struct {
	N     int
	F     int
	Phi   float64
	Delta float64
	TG    simtime.Time
	Seed  uint64
	// OutsidersDown crashes the π0̄ processes at TG (legal behaviour in a
	// π0-arbitrary period); it makes the run deterministic with respect
	// to the translation's macro heard-of sets. When false, outsiders
	// keep running with lossy links.
	OutsidersDown bool
	// Initial values; defaults to distinct values 0..n-1.
	Initial []core.Value
	// Horizon defaults to TG + 4× the bound.
	Horizon simtime.Time
}

// FullStackResult is the outcome of one end-to-end run.
type FullStackResult struct {
	// Elapsed is last-decision time − TG.
	Elapsed float64
	// Bound is the §4.2.2(c) closed form.
	Bound float64
	// Ratio is Elapsed / Bound.
	Ratio float64
	// Decision is the agreed value.
	Decision core.Value
	// Rounds is the largest outer (Algorithm 3) round executed.
	Rounds core.Round
	Stats  simtime.Stats
}

// Run executes the experiment.
func (e FullStackExperiment) Run() (FullStackResult, error) {
	if 3*e.F >= e.N {
		return FullStackResult{}, fmt.Errorf(
			"full stack requires |π0| = n−f > 2n/3, i.e. f < n/3; got n=%d f=%d", e.N, e.F)
	}
	pi0 := core.FullSet(e.N - e.F)
	bound := Section422cFullStackBound(e.N, e.F, e.Phi, e.Delta)
	horizon := e.Horizon
	if horizon == 0 {
		horizon = e.TG + 4*bound + 100
	}
	initial := e.Initial
	if initial == nil {
		initial = make([]core.Value, e.N)
		for i := range initial {
			initial[i] = core.Value(i)
		}
	}

	var periods []simtime.Period
	if e.TG > 0 {
		periods = append(periods, simtime.Period{Start: 0, Kind: simtime.Bad})
	}
	periods = append(periods, simtime.Period{Start: e.TG, Kind: simtime.GoodArbitrary, Pi0: pi0})

	var crashes []simtime.CrashEvent
	if e.OutsidersDown {
		pi0.Complement(e.N).ForEach(func(p core.ProcessID) {
			crashes = append(crashes, simtime.CrashEvent{P: p, At: e.TG, RecoverAt: -1})
		})
	}

	stack, err := BuildStack(StackConfig{
		Kind:      UseAlg3,
		F:         e.F,
		Algorithm: translation.Algorithm{Inner: otr.Algorithm{}, F: e.F},
		Initial:   initial,
		Sim: simtime.Config{
			N: e.N, Phi: e.Phi, Delta: e.Delta,
			Periods: periods, Crashes: crashes, Seed: e.Seed,
		},
	})
	if err != nil {
		return FullStackResult{}, err
	}

	last := stack.RunUntilAllDecided(pi0, horizon)
	if last < 0 {
		return FullStackResult{}, fmt.Errorf(
			"full stack n=%d f=%d φ=%v δ=%v tg=%v: π0 did not decide by horizon %v",
			e.N, e.F, e.Phi, e.Delta, e.TG, horizon)
	}
	tr := stack.Trace()
	if err := tr.CheckConsensusSafety(); err != nil {
		return FullStackResult{}, fmt.Errorf("safety violated: %w", err)
	}
	var decision core.Value
	pi0.ForEach(func(p core.ProcessID) { decision = tr.Decisions[p].Value })

	return FullStackResult{
		Elapsed:  last - e.TG,
		Bound:    bound,
		Ratio:    (last - e.TG) / bound,
		Decision: decision,
		Rounds:   stack.Recorder.MaxRound(),
		Stats:    stack.Sim.Stats(),
	}, nil
}
