package predimpl

import (
	"fmt"
	"strings"
	"testing"

	"heardof/internal/core"
	"heardof/internal/otr"
	"heardof/internal/simtime"
)

// The golden-equivalence suite pins the observable outputs of the
// discrete-event engine — stats counters, per-process decisions (value and
// round), and contract violations — for fixed seeds across all three
// reception policies. Any change to the event core (heap layout, fan-out
// batching, period caching, policy tie-breaks, buffer removal strategy)
// must reproduce these fingerprints bit-for-bit; the goldens were recorded
// on the pre-optimization engine (container/heap of *event, linear
// PeriodAt scans, splice-removal buffers) and must never be regenerated to
// make a regression pass.

// goldenScenario is one pinned run: a full Alg2/Alg3 stack over the §4.1
// simulator with crashes, a bad period, and a good period, driven to a
// fixed horizon.
type goldenScenario struct {
	name    string
	kind    ProtoKind
	f       int
	n       int
	periods []simtime.Period
	crashes []simtime.CrashEvent
	seed    uint64
	horizon simtime.Time
	// ablation selects a non-default reception policy (the FIFO scenario).
	ablation *Ablation
	stepMode simtime.StepMode
	delivery simtime.DeliveryMode
}

func (g goldenScenario) fingerprint(t *testing.T) string {
	t.Helper()
	initial := make([]core.Value, g.n)
	for i := range initial {
		initial[i] = core.Value(i%3 + 1)
	}
	stack, err := BuildStack(StackConfig{
		Kind:      g.kind,
		F:         g.f,
		Algorithm: otr.Algorithm{},
		Initial:   initial,
		Ablation:  g.ablation,
		Sim: simtime.Config{
			N: g.n, Phi: 1, Delta: 5,
			Periods:      g.periods,
			Crashes:      g.crashes,
			StepMode:     g.stepMode,
			DeliveryMode: g.delivery,
			Seed:         g.seed,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	stack.Sim.RunUntilTime(g.horizon)

	var b strings.Builder
	st := stack.Sim.Stats()
	fmt.Fprintf(&b, "stats{steps=%d sends=%d msgs=%d delivered=%d received=%d dropped=%d purged=%d crashes=%d recoveries=%d}",
		st.Steps, st.Sends, st.MessagesSent, st.Delivered, st.Received,
		st.Dropped, st.Purged, st.Crashes, st.Recoveries)
	fmt.Fprintf(&b, " violations=%d", stack.Sim.ContractViolations())
	tr := stack.Trace()
	for p, d := range tr.Decisions {
		if d.Decided {
			fmt.Fprintf(&b, " p%d=(%d@r%d)", p, d.Value, d.Round)
		} else {
			fmt.Fprintf(&b, " p%d=⊥", p)
		}
	}
	fmt.Fprintf(&b, " now=%v", stack.Sim.Now())
	return b.String()
}

// goldenScenarios covers: Alg2 with HighestRoundFirst (its built-in
// policy), Alg3 with RoundRobinHighest (its built-in policy), Alg3 with a
// FIFO ablation, plus jitter variants that exercise the rng-draw paths
// (step gaps, delivery delays, bad-period loss).
var goldenScenarios = []goldenScenario{
	{
		name: "alg2-highest-round-first",
		kind: UseAlg2, n: 5, seed: 42, horizon: 400,
		periods: []simtime.Period{
			{Start: 0, Kind: simtime.Bad},
			{Start: 60, Kind: simtime.GoodDown, Pi0: core.FullSet(5)},
		},
		crashes: []simtime.CrashEvent{{P: 1, At: 10, RecoverAt: 40}},
	},
	{
		name: "alg2-pi0-down-purge",
		kind: UseAlg2, n: 5, seed: 9, horizon: 500,
		periods: []simtime.Period{
			{Start: 0, Kind: simtime.Bad},
			{Start: 50, Kind: simtime.GoodDown, Pi0: core.SetOf(0, 1, 2)},
			{Start: 300, Kind: simtime.GoodDown, Pi0: core.FullSet(5)},
		},
	},
	{
		name: "alg3-round-robin-highest",
		kind: UseAlg3, f: 2, n: 5, seed: 7, horizon: 600,
		periods: []simtime.Period{
			{Start: 0, Kind: simtime.Bad},
			{Start: 50, Kind: simtime.GoodArbitrary, Pi0: core.SetOf(0, 1, 2)},
		},
		crashes: []simtime.CrashEvent{{P: 4, At: 20, RecoverAt: -1}},
	},
	{
		name: "alg3-fifo-ablation",
		kind: UseAlg3, f: 1, n: 5, seed: 11, horizon: 800,
		periods: []simtime.Period{
			{Start: 0, Kind: simtime.Bad},
			{Start: 40, Kind: simtime.GoodArbitrary, Pi0: core.SetOf(0, 1, 2, 3)},
		},
		ablation: &Ablation{
			Alg3Policy: func(int) simtime.ReceptionPolicy { return simtime.FIFO{} },
		},
	},
	{
		name: "alg2-jitter-modes",
		kind: UseAlg2, n: 4, seed: 23, horizon: 350,
		periods: []simtime.Period{
			{Start: 0, Kind: simtime.Bad},
			{Start: 80, Kind: simtime.GoodDown, Pi0: core.FullSet(4)},
		},
		crashes:  []simtime.CrashEvent{{P: 2, At: 15, RecoverAt: 70}},
		stepMode: simtime.StepJitter,
		delivery: simtime.DeliverJitter,
	},
}

// goldens maps scenario name → fingerprint recorded on the pre-change
// engine. Do not regenerate; see the file comment.
var goldens = map[string]string{
	"alg2-highest-round-first": "stats{steps=1816 sends=106 msgs=530 delivered=492 received=486 dropped=28 purged=0 crashes=1 recoveries=1} violations=0 p0=(1@r4) p1=(1@r4) p2=(1@r4) p3=(1@r4) p4=(1@r4) now=400",
	"alg2-pi0-down-purge":      "stats{steps=1853 sends=109 msgs=545 delivered=415 received=413 dropped=111 purged=4 crashes=2 recoveries=2} violations=0 p0=(1@r17) p1=(1@r17) p2=(1@r17) p3=(1@r17) p4=(1@r17) now=500",
	"alg3-round-robin-highest": "stats{steps=2004 sends=135 msgs=675 delivered=425 received=424 dropped=238 purged=0 crashes=1 recoveries=0} violations=0 p0=(1@r5) p1=(1@r4) p2=(1@r10) p3=(1@r10) p4=⊥ now=600",
	"alg3-fifo-ablation":       "stats{steps=3491 sends=244 msgs=1220 delivered=1009 received=1009 dropped=193 purged=0 crashes=0 recoveries=0} violations=0 p0=(1@r3) p1=(1@r3) p2=(1@r3) p3=(1@r3) p4=(1@r5) now=800",
	"alg2-jitter-modes":        "stats{steps=1199 sends=76 msgs=304 delivered=270 received=268 dropped=22 purged=0 crashes=1 recoveries=1} violations=0 p0=(1@r4) p1=(1@r4) p2=(1@r4) p3=(1@r4) now=350",
}

func TestEngineGoldenEquivalence(t *testing.T) {
	for _, sc := range goldenScenarios {
		t.Run(sc.name, func(t *testing.T) {
			got := sc.fingerprint(t)
			want, ok := goldens[sc.name]
			if !ok {
				t.Fatalf("no golden recorded; engine produced:\n%q", got)
			}
			if got != want {
				t.Errorf("engine output diverged from pinned golden:\n got %s\nwant %s", got, want)
			}
		})
	}
}

// TestEngineGoldenDeterminism guards the goldens themselves: each scenario
// must fingerprint identically on repeated runs in the same binary.
func TestEngineGoldenDeterminism(t *testing.T) {
	sc := goldenScenarios[0]
	if a, b := sc.fingerprint(t), sc.fingerprint(t); a != b {
		t.Errorf("same seed diverged across runs:\n%s\n%s", a, b)
	}
}
