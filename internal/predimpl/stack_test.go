package predimpl

import (
	"testing"

	"heardof/internal/core"
	"heardof/internal/otr"
	"heardof/internal/predicate"
	"heardof/internal/simtime"
)

// TestE8UniformityCrashStopVsCrashRecovery is the heart of experiment E8:
// the *identical* stack (OneThirdRule over Algorithm 2) solves consensus
// in the crash-stop model and in the crash-recovery model with no
// algorithmic change — only the crash schedule differs. This is the gap
// the paper's §2.1 shows failure detectors cannot bridge without a new
// algorithm.
func TestE8UniformityCrashStopVsCrashRecovery(t *testing.T) {
	n := 7
	initial := vals(3, 1, 4, 1, 5, 9, 2)
	survivors := core.SetOf(0, 1, 2, 3, 4) // 5 > 2·7/3

	scenarios := []struct {
		name    string
		crashes []simtime.CrashEvent
		members core.PIDSet // who must decide
		periods []simtime.Period
	}{
		{
			name: "crash-stop (SP): two processes crash permanently",
			crashes: []simtime.CrashEvent{
				{P: 5, At: 3, RecoverAt: -1},
				{P: 6, At: 5, RecoverAt: -1},
			},
			members: survivors,
			periods: []simtime.Period{{Start: 0, Kind: simtime.GoodDown, Pi0: survivors}},
		},
		{
			name: "crash-recovery (DT): every process crashes and recovers",
			crashes: []simtime.CrashEvent{
				{P: 0, At: 10, RecoverAt: 60},
				{P: 3, At: 30, RecoverAt: 90},
				{P: 6, At: 55, RecoverAt: 130},
			},
			members: core.FullSet(n),
			periods: []simtime.Period{
				{Start: 0, Kind: simtime.Bad},
				{Start: 140, Kind: simtime.GoodDown, Pi0: core.FullSet(n)},
			},
		},
	}

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			stack := buildAlg2Stack(t, n, 1, 5, sc.periods, sc.crashes, initial)
			last := stack.RunUntilAllDecided(sc.members, 3000)
			if last < 0 {
				t.Fatal("consensus not reached")
			}
			tr := stack.Trace()
			if err := tr.CheckConsensusSafety(); err != nil {
				t.Fatal(err)
			}
			if !tr.DecidedSet().Contains(sc.members) {
				t.Errorf("decided %v, want ⊇ %v", tr.DecidedSet(), sc.members)
			}
		})
	}
}

// TestConsensusSurvivesBadPeriod: heavy loss and crashes during a bad
// period never violate safety, and the first good period leads to
// decision (the good/bad alternation of §4).
func TestConsensusSurvivesBadPeriod(t *testing.T) {
	n := 5
	for seed := uint64(0); seed < 10; seed++ {
		periods := []simtime.Period{
			{Start: 0, Kind: simtime.Bad},
			{Start: 200, Kind: simtime.GoodDown, Pi0: core.FullSet(n)},
		}
		crashes := []simtime.CrashEvent{
			{P: 1, At: 20, RecoverAt: 100},
			{P: 4, At: 50, RecoverAt: 160},
		}
		stack := buildAlg2Stack(t, n, 1, 5, periods, crashes, vals(9, 7, 5, 3, 1))
		last := stack.RunUntilAllDecided(core.FullSet(n), 2000)
		if last < 0 {
			t.Fatalf("seed %d: consensus not reached after the good period", seed)
		}
		if last < 200 {
			// Deciding during the bad period is possible (loss is
			// probabilistic) and fine; safety is what matters.
			t.Logf("seed %d: decided during the bad period at %v", seed, last)
		}
		if err := stack.Trace().CheckConsensusSafety(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestImplementationRealizesPrestrOtr: the trace produced by the Alg2
// stack in a π0-down good period satisfies the P_otr^restr predicate the
// HO layer was promised (the Figure 1 interface is honoured).
func TestImplementationRealizesPrestrOtr(t *testing.T) {
	n := 7
	pi0 := core.SetOf(0, 1, 2, 3, 4)
	periods := []simtime.Period{{Start: 0, Kind: simtime.GoodDown, Pi0: pi0}}
	stack := buildAlg2Stack(t, n, 1, 5, periods, nil, vals(3, 1, 4, 1, 5, 9, 2))
	stack.Sim.RunUntilTime(400)
	tr := stack.Trace()
	if !(predicate.PrestrOtr{}).Holds(tr) {
		t.Error("implementation-layer trace does not satisfy PrestrOtr")
	}
	r0, pi0Found, _ := predicate.FindPrestrOtrWitness(tr)
	if pi0Found != pi0 {
		t.Errorf("witness Π0 = %v at r0=%d, want %v", pi0Found, r0, pi0)
	}
}

// TestE6FullStackBound: the end-to-end composition decides within the
// §4.2.2(c) bound when the good period is worst-case scheduled.
func TestE6FullStackBound(t *testing.T) {
	cases := []struct{ n, f int }{{4, 1}, {7, 2}, {10, 3}}
	for _, c := range cases {
		for _, tg := range []simtime.Time{0, 150} {
			e := FullStackExperiment{
				N: c.n, F: c.f, Phi: 1, Delta: 5, TG: tg,
				Seed: uint64(c.n*100 + c.f), OutsidersDown: true,
			}
			res, err := e.Run()
			if err != nil {
				t.Fatalf("n=%d f=%d tg=%v: %v", c.n, c.f, tg, err)
			}
			if res.Elapsed > res.Bound+1e-9 {
				t.Errorf("n=%d f=%d tg=%v: elapsed %.1f exceeds bound %.1f",
					c.n, c.f, tg, res.Elapsed, res.Bound)
			}
		}
	}
}

// TestE6FullStackWithActiveOutsiders: with π0̄ processes alive and
// arbitrarily fast/lossy, safety always holds and π0 still decides (the
// harder variant; the bound applies to the outsiders-down adversary).
func TestE6FullStackWithActiveOutsiders(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		e := FullStackExperiment{
			N: 7, F: 2, Phi: 1, Delta: 3, TG: 100,
			Seed: seed, OutsidersDown: false,
			Horizon: 20000,
		}
		res, err := e.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Decision < 0 || res.Decision > 6 {
			t.Errorf("seed %d: decision %d not an initial value", seed, res.Decision)
		}
	}
}

func TestFullStackRejectsBadF(t *testing.T) {
	e := FullStackExperiment{N: 6, F: 2, Phi: 1, Delta: 1}
	if _, err := e.Run(); err == nil {
		t.Error("expected error for f ≥ n/3")
	}
}

func TestBuildStackValidation(t *testing.T) {
	if _, err := BuildStack(StackConfig{
		Kind: UseAlg2, Algorithm: otr.Algorithm{}, Initial: vals(1),
		Sim: simtime.Config{N: 2, Phi: 1, Delta: 1},
	}); err == nil {
		t.Error("expected error for wrong initial length")
	}
	if _, err := BuildStack(StackConfig{
		Kind: UseAlg2, Initial: vals(1, 2),
		Sim: simtime.Config{N: 2, Phi: 1, Delta: 1},
	}); err == nil {
		t.Error("expected error for nil algorithm")
	}
	if UseAlg2.String() != "Alg2" || UseAlg3.String() != "Alg3" {
		t.Error("ProtoKind strings wrong")
	}
}
