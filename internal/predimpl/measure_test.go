package predimpl

import (
	"math"
	"strings"
	"testing"

	"heardof/internal/core"
	"heardof/internal/simtime"
)

func TestExperimentBoundDispatch(t *testing.T) {
	// The Bound method must select the matching theorem.
	tests := []struct {
		name string
		e    GoodPeriodExperiment
		want float64
	}{
		{"Theorem 3", GoodPeriodExperiment{Kind: UseAlg2, N: 4, Phi: 1, Delta: 5, X: 2, TG: 100},
			Theorem3GoodPeriodBound(4, 1, 5, 2)},
		{"Theorem 5", GoodPeriodExperiment{Kind: UseAlg2, N: 4, Phi: 1, Delta: 5, X: 2, TG: 0},
			Theorem5InitialBound(4, 1, 5, 2)},
		{"Theorem 6", GoodPeriodExperiment{Kind: UseAlg3, N: 5, F: 2, Phi: 1, Delta: 5, X: 2, TG: 100},
			Theorem6GoodPeriodBound(5, 1, 5, 2)},
		{"Theorem 7", GoodPeriodExperiment{Kind: UseAlg3, N: 5, F: 2, Phi: 1, Delta: 5, X: 2, TG: 0},
			Theorem7InitialBound(5, 1, 5, 2)},
	}
	for _, tt := range tests {
		if got := tt.e.Bound(); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("%s: Bound = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestExperimentDefaults(t *testing.T) {
	e := GoodPeriodExperiment{Kind: UseAlg3, N: 7, F: 3, Phi: 1, Delta: 5}
	e.defaults()
	if e.X != 1 {
		t.Errorf("X default = %d, want 1", e.X)
	}
	if e.Pi0 != core.FullSet(4) {
		t.Errorf("Pi0 default = %v, want {0..3}", e.Pi0)
	}
	if e.StepMode != simtime.StepWorstCase || e.DeliveryMode != simtime.DeliverWorstCase {
		t.Error("modes not defaulted to worst case")
	}
	e2 := GoodPeriodExperiment{Kind: UseAlg2, N: 4, Phi: 1, Delta: 5}
	e2.defaults()
	if e2.Pi0 != core.FullSet(4) {
		t.Errorf("Alg2 Pi0 default = %v", e2.Pi0)
	}
}

func TestExperimentHorizonFailure(t *testing.T) {
	// An impossible horizon yields a descriptive error, not a hang.
	e := GoodPeriodExperiment{
		Kind: UseAlg2, N: 4, Phi: 1, Delta: 5, X: 2, TG: 100, Seed: 1,
		Horizon: 101, // the good period barely starts
	}
	_, err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "not established") {
		t.Errorf("error = %v, want 'not established'", err)
	}
}

func TestPassiveAlgorithmContract(t *testing.T) {
	inst := passiveAlgorithm{}.NewInstance(0, 3, 0)
	if (passiveAlgorithm{}).Name() != "passive" {
		t.Error("name wrong")
	}
	if msg := inst.Send(7); msg != int64(7) {
		t.Errorf("Send = %v, want round echo", msg)
	}
	inst.Transition(1, nil)
	if _, ok := inst.Decided(); ok {
		t.Error("passive instance decided")
	}
	rec, ok := inst.(core.Recoverable)
	if !ok {
		t.Fatal("passive instance must be recoverable (stable storage)")
	}
	snap := rec.Snapshot()
	inst.Transition(2, nil)
	rec.Restore(snap)
	if pi := inst.(*passiveInstance); pi.rounds != 1 {
		t.Errorf("restored rounds = %d, want 1", pi.rounds)
	}
	rec.Restore("garbage") // no-op
}

func TestFullStackDefaultsAndInitial(t *testing.T) {
	e := FullStackExperiment{N: 4, F: 1, Phi: 1, Delta: 5, Seed: 1, OutsidersDown: true}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision < 0 || res.Decision > 3 {
		t.Errorf("decision %d not one of the default initial values 0..3", res.Decision)
	}
	if res.Rounds < 2 {
		t.Errorf("rounds = %d, suspiciously few", res.Rounds)
	}
	custom := FullStackExperiment{
		N: 4, F: 1, Phi: 1, Delta: 5, Seed: 1, OutsidersDown: true,
		Initial: []core.Value{9, 9, 9, 9},
	}
	res, err = custom.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != 9 {
		t.Errorf("decision = %d, want 9 for unanimous inputs", res.Decision)
	}
}

func TestBadOrZero(t *testing.T) {
	if badOrZero(nil) != (simtime.BadConfig{}) {
		t.Error("nil should produce the zero config")
	}
	b := simtime.BadConfig{LossProb: 0.5}
	if badOrZero(&b) != b {
		t.Error("non-nil should pass through")
	}
}
