package predimpl

import (
	"testing"

	"heardof/internal/simtime"
)

// TestAblationFIFOPolicySlowsAlg2 probes Algorithm 2's reception policy.
// Reproduction finding: Algorithm 2's own traffic is self-balancing (the
// receive-step budget 2δ+(n+2)φ exceeds the n messages a round produces),
// so buffers stay shallow and FIFO costs at most a small constant versus
// highest-round-first. The policy is still required by the PROOFS: Lemma
// B.5's "received by τ+δ+φ" constant holds only under highest-round
// first. The test asserts FIFO is never *faster* and documents the small
// measured gap.
func TestAblationFIFOPolicySlowsAlg2(t *testing.T) {
	base := GoodPeriodExperiment{
		Kind: UseAlg2, N: 7, Phi: 1, Delta: 10, X: 2, TG: 300, Seed: 11,
		// Lossless slow bad period: deep buffers of stale messages at tG.
		Bad: &simtime.BadConfig{LossProb: 0, MinDelay: 1, MaxDelay: 40, MinGap: 0.5, MaxGap: 2},
	}
	pure, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}

	ablated := base
	ablated.Ablation = &Ablation{Alg2Policy: simtime.FIFO{}}
	ablated.Horizon = base.TG + 20*pure.Bound
	fifo, err := ablated.Run()
	if err != nil {
		// Never establishing the window within a generous horizon is an
		// acceptable (and telling) ablation outcome.
		t.Logf("FIFO ablation failed to establish the window at all: %v", err)
		return
	}
	if fifo.Elapsed < pure.Elapsed-1e-9 {
		t.Errorf("FIFO (%.1f) was faster than highest-round-first (%.1f); ablation expected no speedup",
			fifo.Elapsed, pure.Elapsed)
	}
	t.Logf("FIFO %.2f vs highest-round-first %.2f (self-balancing traffic keeps the gap small)",
		fifo.Elapsed, pure.Elapsed)
}

// TestAblationInitQuorumOne shows why the f+1 INIT quorum matters: with
// quorum 1, a π0-arbitrary outsider running far faster than the synchrony
// envelope self-advances on its own INIT (everyone receives their own
// broadcasts), races through rounds, and its high-round ROUND messages
// yank π0 out of rounds prematurely — empty transitions, broken P_k
// windows. With the paper's f+1 quorum the outsider cannot advance alone,
// so π0 is insulated.
func TestAblationInitQuorumOne(t *testing.T) {
	fastOutsider := &simtime.BadConfig{
		LossProb: 0,
		MinDelay: 1, MaxDelay: 5,
		MinGap: 0.05, MaxGap: 0.15, // ~10–20× faster than π0
	}
	base := GoodPeriodExperiment{
		Kind: UseAlg3, N: 5, F: 1, Phi: 1, Delta: 5, X: 3, TG: 0, Seed: 13,
		Bad: fastOutsider,
	}
	pure, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}

	ablated := base
	ablated.Ablation = &Ablation{InitQuorum: 1}
	ablated.Horizon = 20 * pure.Bound
	quick, err := ablated.Run()
	if err != nil {
		t.Logf("quorum-1 ablation never established Pk (expected breakage): %v", err)
		return
	}
	if quick.Elapsed <= pure.Elapsed {
		t.Errorf("quorum-1 (%.1f) not slower than f+1 (%.1f) despite a racing outsider",
			quick.Elapsed, pure.Elapsed)
	}
}

// TestAblationNoCatchup shows the value of the immediate jump on a
// higher-round ROUND message (the "fast synchronization" of §4.2.2):
// without it, a process that fell behind during the bad period
// resynchronizes only via INIT messages, taking far longer.
func TestAblationNoCatchup(t *testing.T) {
	base := GoodPeriodExperiment{
		Kind: UseAlg3, N: 5, F: 2, Phi: 1, Delta: 5, X: 2, TG: 400, Seed: 17,
	}
	pure, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}

	ablated := base
	ablated.Ablation = &Ablation{DisableCatchup: true}
	ablated.Horizon = base.TG + 30*pure.Bound
	slow, err := ablated.Run()
	if err != nil {
		t.Logf("no-catchup ablation never established Pk: %v", err)
		return
	}
	if slow.Elapsed <= pure.Elapsed {
		t.Errorf("no-catchup (%.1f) not slower than catch-up (%.1f)",
			slow.Elapsed, pure.Elapsed)
	}
}

// TestAblationIsolation: ablations must not leak into paper-faithful runs
// (a nil Ablation keeps the defaults).
func TestAblationIsolation(t *testing.T) {
	var ab *Ablation
	a3 := &Alg3{n: 4, f: 1, initQuorum: 2}
	ab.apply3(a3) // nil receiver: no-op
	if a3.initQuorum != 2 || a3.disableCatchup {
		t.Error("nil ablation changed Alg3 state")
	}
	a2 := &Alg2{policy: simtime.HighestRoundFirst{}}
	ab.apply2(a2)
	if _, ok := a2.policy.(simtime.HighestRoundFirst); !ok {
		t.Error("nil ablation changed Alg2 policy")
	}
}
