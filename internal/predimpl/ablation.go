package predimpl

import "heardof/internal/simtime"

// Ablation switches off individual design choices of Algorithms 2 and 3
// so benchmarks can show why the paper's choices matter (DESIGN.md §5).
// The zero value is the paper-faithful configuration.
type Ablation struct {
	// Alg2Policy overrides Algorithm 2's highest-round-first reception
	// policy (e.g. with simtime.FIFO{}).
	Alg2Policy simtime.ReceptionPolicy
	// Alg3Policy, if non-nil, builds a per-process replacement for
	// Algorithm 3's round-robin-highest policy.
	Alg3Policy func(n int) simtime.ReceptionPolicy
	// InitQuorum overrides the f+1 INIT quorum of Algorithm 3 (0 keeps
	// the paper's value). Setting it to 1 lets a single fast process's
	// timeout drag everyone out of a round prematurely.
	InitQuorum int
	// DisableCatchup removes Algorithm 3's immediate jump on a
	// higher-round ROUND message — the "fast synchronization" that
	// distinguishes it from Byzantine clock synchronization (§4.2.2).
	DisableCatchup bool
}

// apply2 configures an Alg2 instance.
func (ab *Ablation) apply2(a *Alg2) {
	if ab == nil {
		return
	}
	if ab.Alg2Policy != nil {
		a.policy = ab.Alg2Policy
	}
}

// apply3 configures an Alg3 instance.
func (ab *Ablation) apply3(a *Alg3) {
	if ab == nil {
		return
	}
	if ab.Alg3Policy != nil {
		a.policyOverride = ab.Alg3Policy
		a.policy = nil
		a.altPolicy = ab.Alg3Policy(a.n)
	}
	if ab.InitQuorum > 0 {
		a.initQuorum = ab.InitQuorum
	}
	a.disableCatchup = ab.DisableCatchup
}
