// Package predimpl is the predicate implementation layer of Figure 1: it
// contains Algorithm 2 (implementing P_su in π0-down good periods) and
// Algorithm 3 (implementing P_k in π0-arbitrary good periods) of Hutle &
// Schiper (DSN 2007), running on the simtime system model and driving an
// arbitrary HO algorithm (core.Instance) above them.
package predimpl

import (
	"sort"

	"heardof/internal/core"
	"heardof/internal/simtime"
)

// TransitionRec records one executed round at one process: the heard-of
// set delivered to the HO layer's transition function and the time it ran.
type TransitionRec struct {
	HO core.PIDSet
	At simtime.Time
}

// DecisionRec records an HO-layer decision with its wall-clock time.
type DecisionRec struct {
	Decided bool
	Value   core.Value
	At      simtime.Time
	Round   core.Round
}

// Recorder collects the observable history of a predicate-implementation
// run: per-process round transitions with their heard-of sets, the first
// send time of every round number, and HO-layer decisions. The good-period
// measurements of EXPERIMENTS.md are all computed from a Recorder.
type Recorder struct {
	n           int
	transitions []map[core.Round]TransitionRec
	firstSend   map[core.Round]simtime.Time
	sendsBy     []map[core.Round]simtime.Time
	recvTimes   []map[core.Round]map[core.ProcessID]simtime.Time
	decisions   []DecisionRec
	maxRound    core.Round
}

// NewRecorder creates a recorder for n processes.
func NewRecorder(n int) *Recorder {
	r := &Recorder{
		n:           n,
		transitions: make([]map[core.Round]TransitionRec, n),
		firstSend:   make(map[core.Round]simtime.Time),
		sendsBy:     make([]map[core.Round]simtime.Time, n),
		recvTimes:   make([]map[core.Round]map[core.ProcessID]simtime.Time, n),
		decisions:   make([]DecisionRec, n),
	}
	for p := 0; p < n; p++ {
		r.transitions[p] = make(map[core.Round]TransitionRec)
		r.sendsBy[p] = make(map[core.Round]simtime.Time)
		r.recvTimes[p] = make(map[core.Round]map[core.ProcessID]simtime.Time)
	}
	return r
}

// RecordReception notes that p received (and retained) the round-rd
// message of process from at time t.
func (r *Recorder) RecordReception(p core.ProcessID, rd core.Round, from core.ProcessID, t simtime.Time) {
	byFrom, ok := r.recvTimes[p][rd]
	if !ok {
		byFrom = make(map[core.ProcessID]simtime.Time)
		r.recvTimes[p][rd] = byFrom
	}
	if _, dup := byFrom[from]; !dup {
		byFrom[from] = t
	}
}

// ReceiptCovered returns the time at which p had received round-rd
// messages from every member of pi0 (false if it has not yet).
func (r *Recorder) ReceiptCovered(p core.ProcessID, rd core.Round, pi0 core.PIDSet) (simtime.Time, bool) {
	byFrom := r.recvTimes[p][rd]
	var latest simtime.Time
	ok := true
	pi0.ForEach(func(q core.ProcessID) {
		t, have := byFrom[q]
		if !have {
			ok = false
			return
		}
		if t > latest {
			latest = t
		}
	})
	if !ok {
		return 0, false
	}
	return latest, true
}

// N returns the number of processes.
func (r *Recorder) N() int { return r.n }

// RecordSend notes that p sent its round-rd message at time t.
func (r *Recorder) RecordSend(p core.ProcessID, rd core.Round, t simtime.Time) {
	if _, ok := r.sendsBy[p][rd]; !ok {
		r.sendsBy[p][rd] = t
	}
	if first, ok := r.firstSend[rd]; !ok || t < first {
		r.firstSend[rd] = t
	}
}

// RecordTransition notes that p executed T_p^rd with heard-of set ho at t.
func (r *Recorder) RecordTransition(p core.ProcessID, rd core.Round, ho core.PIDSet, t simtime.Time) {
	if _, dup := r.transitions[p][rd]; dup {
		return // a recovered process may re-run a round; keep the first
	}
	r.transitions[p][rd] = TransitionRec{HO: ho, At: t}
	if rd > r.maxRound {
		r.maxRound = rd
	}
}

// RecordDecision notes p's first HO-layer decision.
func (r *Recorder) RecordDecision(p core.ProcessID, v core.Value, rd core.Round, t simtime.Time) {
	if r.decisions[p].Decided {
		return
	}
	r.decisions[p] = DecisionRec{Decided: true, Value: v, At: t, Round: rd}
}

// Decision returns p's decision record.
func (r *Recorder) Decision(p core.ProcessID) DecisionRec { return r.decisions[p] }

// AllDecided reports whether every process in members decided.
func (r *Recorder) AllDecided(members core.PIDSet) bool {
	ok := true
	members.ForEach(func(p core.ProcessID) {
		if !r.decisions[p].Decided {
			ok = false
		}
	})
	return ok
}

// LastDecisionTime returns the latest decision time among members, or -1
// if some member has not decided.
func (r *Recorder) LastDecisionTime(members core.PIDSet) simtime.Time {
	var last simtime.Time
	missing := false
	members.ForEach(func(p core.ProcessID) {
		d := r.decisions[p]
		if !d.Decided {
			missing = true
			return
		}
		if d.At > last {
			last = d.At
		}
	})
	if missing {
		return -1
	}
	return last
}

// MaxRound returns the largest round any process has transitioned through.
func (r *Recorder) MaxRound() core.Round { return r.maxRound }

// Transition returns p's transition record for round rd.
func (r *Recorder) Transition(p core.ProcessID, rd core.Round) (TransitionRec, bool) {
	rec, ok := r.transitions[p][rd]
	return rec, ok
}

// Rho0 computes ρ0 as defined in Appendix B for a good period starting at
// tG: the largest round number such that no process has sent a round-ρ0
// message by tG but some process has sent a round-(ρ0−1) message. With no
// sends before tG (an initial good period), ρ0 = 1.
func (r *Recorder) Rho0(tG simtime.Time) core.Round {
	maxSent := core.Round(0)
	//holint:allow nodeterminism max fold; commutative and order-insensitive
	for rd, t := range r.firstSend {
		if t <= tG && rd > maxSent {
			maxSent = rd
		}
	}
	return maxSent + 1
}

// windowDone checks whether every process in pi0 has executed rounds
// [from, to] with heard-of sets accepted by ok, and returns the latest
// transition time of the window.
func (r *Recorder) windowDone(pi0 core.PIDSet, from, to core.Round, ok func(core.PIDSet) bool) (simtime.Time, bool) {
	var latest simtime.Time
	done := true
	pi0.ForEach(func(p core.ProcessID) {
		for rd := from; rd <= to; rd++ {
			rec, have := r.transitions[p][rd]
			if !have || !ok(rec.HO) {
				done = false
				return
			}
			if rec.At > latest {
				latest = rec.At
			}
		}
	})
	return latest, done
}

// PsuWindowDone reports whether P_su(pi0, from, to) has been established:
// every pi0 member executed rounds [from, to] hearing exactly pi0. The
// returned time is when the last transition of the window ran.
func (r *Recorder) PsuWindowDone(pi0 core.PIDSet, from, to core.Round) (simtime.Time, bool) {
	return r.windowDone(pi0, from, to, func(ho core.PIDSet) bool { return ho == pi0 })
}

// PkWindowDone is the P_k analogue: heard-of sets must contain pi0.
func (r *Recorder) PkWindowDone(pi0 core.PIDSet, from, to core.Round) (simtime.Time, bool) {
	return r.windowDone(pi0, from, to, func(ho core.PIDSet) bool { return ho.Contains(pi0) })
}

// FirstPsuWindow searches for the earliest round ρ ≥ minRound such that
// P_su(pi0, ρ, ρ+x−1) has been established, returning ρ and the window's
// completion time.
func (r *Recorder) FirstPsuWindow(pi0 core.PIDSet, x int, minRound core.Round) (core.Round, simtime.Time, bool) {
	for rd := minRound; rd+core.Round(x)-1 <= r.maxRound; rd++ {
		if t, ok := r.PsuWindowDone(pi0, rd, rd+core.Round(x)-1); ok {
			return rd, t, true
		}
	}
	return 0, 0, false
}

// FirstPkWindow is the P_k analogue of FirstPsuWindow.
func (r *Recorder) FirstPkWindow(pi0 core.PIDSet, x int, minRound core.Round) (core.Round, simtime.Time, bool) {
	for rd := minRound; rd+core.Round(x)-1 <= r.maxRound; rd++ {
		if t, ok := r.PkWindowDone(pi0, rd, rd+core.Round(x)-1); ok {
			return rd, t, true
		}
	}
	return 0, 0, false
}

// PkEstablished reports when P_k(pi0, from, to) is established using the
// paper's accounting for the final round (Theorems 6 and 7: "the INIT
// messages can be ignored for the last round"): rounds [from, to−1] count
// when their transitions execute, while round `to` counts as soon as every
// pi0 member has received the round-`to` messages of all of pi0 — exiting
// the round is not part of establishing the predicate.
func (r *Recorder) PkEstablished(pi0 core.PIDSet, from, to core.Round) (simtime.Time, bool) {
	var latest simtime.Time
	done := true
	pi0.ForEach(func(p core.ProcessID) {
		for rd := from; rd < to; rd++ {
			rec, have := r.transitions[p][rd]
			if !have || !rec.HO.Contains(pi0) {
				done = false
				return
			}
			if rec.At > latest {
				latest = rec.At
			}
		}
		t, covered := r.ReceiptCovered(p, to, pi0)
		if !covered {
			done = false
			return
		}
		if t > latest {
			latest = t
		}
	})
	if !done {
		return 0, false
	}
	return latest, true
}

// ToTrace converts the recorded history into a core.Trace over rounds
// 1..MaxRound (unexecuted rounds have empty heard-of sets), so that the
// predicate package can evaluate communication predicates on
// implementation-layer runs.
func (r *Recorder) ToTrace(initial []core.Value) *core.Trace {
	tr := core.NewTrace(r.n, initial)
	for rd := core.Round(1); rd <= r.maxRound; rd++ {
		ho := make([]core.PIDSet, r.n)
		for p := 0; p < r.n; p++ {
			if rec, ok := r.transitions[p][rd]; ok {
				ho[p] = rec.HO
			}
		}
		tr.RecordRound(ho)
	}
	for p := 0; p < r.n; p++ {
		if d := r.decisions[p]; d.Decided {
			tr.RecordDecision(core.ProcessID(p), d.Value, d.Round)
		}
	}
	return tr
}

// RoundsExecuted returns the sorted rounds process p transitioned through.
func (r *Recorder) RoundsExecuted(p core.ProcessID) []core.Round {
	out := make([]core.Round, 0, len(r.transitions[p]))
	//holint:allow nodeterminism key collection is sorted on the next line
	for rd := range r.transitions[p] {
		out = append(out, rd)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
