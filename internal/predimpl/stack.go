package predimpl

import (
	"errors"
	"fmt"

	"heardof/internal/core"
	"heardof/internal/simtime"
	"heardof/internal/stable"
)

// ProtoKind selects which predicate-implementation algorithm a stack runs.
type ProtoKind int

const (
	// UseAlg2 runs Algorithm 2 (π0-down good periods → P_su).
	UseAlg2 ProtoKind = iota + 1
	// UseAlg3 runs Algorithm 3 (π0-arbitrary good periods → P_k).
	UseAlg3
)

// String implements fmt.Stringer.
func (k ProtoKind) String() string {
	switch k {
	case UseAlg2:
		return "Alg2"
	case UseAlg3:
		return "Alg3"
	default:
		return fmt.Sprintf("ProtoKind(%d)", int(k))
	}
}

// StackConfig assembles a full two-layer system (Figure 1): an HO
// algorithm on top of Algorithm 2 or 3 on top of the simtime system model.
type StackConfig struct {
	Kind      ProtoKind
	F         int // Algorithm 3 resilience parameter (ignored by Alg2)
	Algorithm core.Algorithm
	Initial   []core.Value
	Sim       simtime.Config
	// Ablation, if non-nil, disables individual design choices (see the
	// Ablation type); nil runs the paper-faithful algorithms.
	Ablation *Ablation
}

// Stack is a built system ready to run.
type Stack struct {
	Sim      *simtime.Sim
	Recorder *Recorder
	Stores   *stable.Registry
	Protos   []simtime.Proto
	Initial  []core.Value
}

// BuildStack wires the three layers together.
func BuildStack(cfg StackConfig) (*Stack, error) {
	n := cfg.Sim.N
	if len(cfg.Initial) != n {
		return nil, fmt.Errorf("got %d initial values for %d processes", len(cfg.Initial), n)
	}
	if cfg.Algorithm == nil {
		return nil, errors.New("nil HO algorithm")
	}
	if cfg.Kind == UseAlg3 && 2*cfg.F >= n {
		return nil, fmt.Errorf("Algorithm 3 requires f < n/2, got f=%d n=%d", cfg.F, n)
	}

	rec := NewRecorder(n)
	stores := stable.NewRegistry()
	protos := make([]simtime.Proto, n)

	sim, err := simtime.New(cfg.Sim, func(p core.ProcessID) simtime.Proto {
		inst := cfg.Algorithm.NewInstance(p, n, cfg.Initial[p])
		var proto simtime.Proto
		switch cfg.Kind {
		case UseAlg3:
			a3 := NewAlg3(p, n, cfg.F, cfg.Sim.Phi, cfg.Sim.Delta, inst, stores.For(int(p)), rec)
			cfg.Ablation.apply3(a3)
			proto = a3
		default:
			a2 := NewAlg2(p, n, cfg.Sim.Phi, cfg.Sim.Delta, inst, stores.For(int(p)), rec)
			cfg.Ablation.apply2(a2)
			proto = a2
		}
		protos[p] = proto
		return proto
	})
	if err != nil {
		return nil, err
	}
	initial := make([]core.Value, n)
	copy(initial, cfg.Initial)
	return &Stack{Sim: sim, Recorder: rec, Stores: stores, Protos: protos, Initial: initial}, nil
}

// Instance returns the HO-layer instance of process p.
func (s *Stack) Instance(p core.ProcessID) core.Instance {
	switch proto := s.Protos[p].(type) {
	case *Alg2:
		return proto.Instance()
	case *Alg3:
		return proto.Instance()
	default:
		return nil
	}
}

// Trace converts the recorded history to a core.Trace for predicate
// checking.
func (s *Stack) Trace() *core.Trace { return s.Recorder.ToTrace(s.Initial) }

// RunUntilAllDecided advances the simulation until every member of
// `members` has decided at the HO layer, or the horizon passes. It returns
// the time of the last decision, or -1 on timeout.
func (s *Stack) RunUntilAllDecided(members core.PIDSet, horizon simtime.Time) simtime.Time {
	ok := s.Sim.RunUntil(func() bool { return s.Recorder.AllDecided(members) }, horizon)
	if !ok {
		return -1
	}
	return s.Recorder.LastDecisionTime(members)
}
