package predimpl

import (
	"testing"

	"heardof/internal/core"
	"heardof/internal/otr"
	"heardof/internal/simtime"
	"heardof/internal/stable"
	"heardof/internal/translation"
)

func buildAlg3Stack(t *testing.T, n, f int, phi, delta float64, alg core.Algorithm,
	periods []simtime.Period, initial []core.Value, seed uint64) *Stack {
	t.Helper()
	stack, err := BuildStack(StackConfig{
		Kind:      UseAlg3,
		F:         f,
		Algorithm: alg,
		Initial:   initial,
		Sim: simtime.Config{
			N: n, Phi: phi, Delta: delta, Periods: periods, Seed: seed,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return stack
}

func TestAlg3RejectsTooLargeF(t *testing.T) {
	_, err := BuildStack(StackConfig{
		Kind:      UseAlg3,
		F:         2, // needs f < n/2 = 2
		Algorithm: otr.Algorithm{},
		Initial:   vals(1, 2, 3, 4),
		Sim:       simtime.Config{N: 4, Phi: 1, Delta: 1},
	})
	if err == nil {
		t.Fatal("expected error for f ≥ n/2")
	}
}

func TestAlg3ConsensusAllGood(t *testing.T) {
	// In a Π-arbitrary good period with π0 = Π everyone is synchronous;
	// OTR over Algorithm 3 decides.
	n := 4
	periods := []simtime.Period{{Start: 0, Kind: simtime.GoodArbitrary, Pi0: core.FullSet(n)}}
	stack := buildAlg3Stack(t, n, 1, 1, 3, otr.Algorithm{}, periods, vals(5, 5, 5, 5), 1)
	last := stack.RunUntilAllDecided(core.FullSet(n), 1000)
	if last < 0 {
		t.Fatal("consensus not reached")
	}
	if err := stack.Trace().CheckConsensusSafety(); err != nil {
		t.Fatal(err)
	}
	if stack.Sim.ContractViolations() != 0 {
		t.Error("step contract violated")
	}
}

func TestAlg3RoundsAdvanceViaInitQuorum(t *testing.T) {
	// With every process synchronous and no message loss, rounds advance
	// through the INIT quorum mechanism; all processes should reach round
	// 3+ well within a few timeout spans.
	n := 5
	periods := []simtime.Period{{Start: 0, Kind: simtime.GoodArbitrary, Pi0: core.FullSet(n)}}
	stack := buildAlg3Stack(t, n, 2, 1, 2, passiveAlgorithm{}, periods, make([]core.Value, n), 2)
	// τ0 = 2·2 + 11 = 15 steps; a round is ~25 time units.
	stack.Sim.RunUntilTime(200)
	for p := 0; p < n; p++ {
		proto := stack.Protos[p].(*Alg3)
		if proto.Round() < 3 {
			t.Errorf("p%d round = %d, want ≥ 3", p, proto.Round())
		}
	}
	// Every executed round heard everyone (π0 = Π, no loss).
	for p := 0; p < n; p++ {
		for _, rd := range stack.Recorder.RoundsExecuted(core.ProcessID(p)) {
			rec, _ := stack.Recorder.Transition(core.ProcessID(p), rd)
			if proto := stack.Protos[p].(*Alg3); rd < proto.Round() && rec.HO != core.FullSet(n) {
				t.Errorf("p%d round %d HO = %v, want full", p, rd, rec.HO)
			}
		}
	}
}

func TestAlg3ToleratesArbitraryOutsiders(t *testing.T) {
	// f = 2 outsiders with arbitrary speed and lossy links; π0 must still
	// establish P_k and OTR (with |π0| = 5 > 2·7/3) must decide for π0.
	n, f := 7, 2
	pi0 := core.FullSet(n - f)
	periods := []simtime.Period{{Start: 0, Kind: simtime.GoodArbitrary, Pi0: pi0}}
	stack := buildAlg3Stack(t, n, f, 1, 3, otr.Algorithm{}, periods, vals(3, 1, 4, 1, 5, 9, 2), 3)
	last := stack.RunUntilAllDecided(pi0, 3000)
	if last < 0 {
		t.Fatal("π0 did not decide despite a π0-arbitrary good period")
	}
	if err := stack.Trace().CheckConsensusSafety(); err != nil {
		t.Fatal(err)
	}
}

func TestAlg3InitQuorumRequiresFPlusOne(t *testing.T) {
	// Unit-level: feed INIT messages directly and observe round changes.
	store := stable.NewStore()
	inst := otr.Algorithm{}.NewInstance(0, 5, 1)
	a := NewAlg3(0, 5, 2, 1, 10, inst, store, NewRecorder(5))
	if a.Round() != 1 {
		t.Fatal("initial round != 1")
	}
	// Simulate: f INITs for round 2 do not advance; f+1 do. We drive the
	// internal handler through a fake sim via a tiny harness below.
	harness := newProtoHarness(t, a, 5)
	harness.stepSend() // round 1 ROUND broadcast
	harness.inject(1, InitMsg{R: 2, M: nil})
	harness.inject(2, InitMsg{R: 2, M: nil})
	harness.stepRecv()
	harness.stepRecv()
	if a.Round() != 1 {
		t.Fatalf("advanced after %d INITs, want stay at 1", 2)
	}
	harness.inject(3, InitMsg{R: 2, M: nil})
	harness.stepRecv()
	if a.Round() != 2 {
		t.Fatalf("round = %d after f+1 INITs, want 2", a.Round())
	}
}

func TestAlg3CatchesUpOnHigherRoundMessage(t *testing.T) {
	store := stable.NewStore()
	inst := otr.Algorithm{}.NewInstance(0, 5, 1)
	rec := NewRecorder(5)
	a := NewAlg3(0, 5, 2, 1, 10, inst, store, rec)
	harness := newProtoHarness(t, a, 5)
	harness.stepSend()
	harness.inject(1, RoundMsg{R: 7, M: nil})
	harness.stepRecv()
	if a.Round() != 7 {
		t.Fatalf("round = %d after ROUND(7), want 7 (fast synchronization)", a.Round())
	}
	// Rounds 1..6 were executed (1 with messages, 2-6 empty).
	rounds := rec.RoundsExecuted(0)
	if len(rounds) != 6 {
		t.Fatalf("executed rounds = %v, want 1..6", rounds)
	}
}

func TestAlg3InitCountsAsRoundMessage(t *testing.T) {
	// An INIT for round 8 from q counts as a round-7 message from q and
	// triggers a jump to round 7.
	store := stable.NewStore()
	inst := otr.Algorithm{}.NewInstance(0, 5, 1)
	rec := NewRecorder(5)
	a := NewAlg3(0, 5, 2, 1, 10, inst, store, rec)
	harness := newProtoHarness(t, a, 5)
	harness.stepSend()
	harness.inject(2, InitMsg{R: 8, M: nil})
	harness.stepRecv()
	if a.Round() != 7 {
		t.Fatalf("round = %d after INIT(8), want 7", a.Round())
	}
}

func TestAlg3RecoveryRestoresRound(t *testing.T) {
	store := stable.NewStore()
	inst := otr.Algorithm{}.NewInstance(0, 5, 1)
	a := NewAlg3(0, 5, 2, 1, 10, inst, store, nil)
	harness := newProtoHarness(t, a, 5)
	harness.stepSend()
	harness.inject(1, RoundMsg{R: 4, M: nil})
	harness.stepRecv()
	if a.Round() != 4 {
		t.Fatal("setup failed")
	}
	a.OnCrash()
	a.OnRecover()
	if a.Round() != 4 {
		t.Errorf("recovered round = %d, want 4", a.Round())
	}
}

func TestAlg3WithTranslationFullStack(t *testing.T) {
	// The §4.2.2(c) composition: OTR over the Algorithm 4 translation
	// over Algorithm 3, in a π0-arbitrary good period with the outsiders
	// fully arbitrary. |π0| = n − f must exceed 2n/3 for OTR, so n=7, f=2.
	n, f := 7, 2
	pi0 := core.FullSet(n - f)
	alg := translation.Algorithm{Inner: otr.Algorithm{}, F: f}
	periods := []simtime.Period{{Start: 0, Kind: simtime.GoodArbitrary, Pi0: pi0}}
	stack := buildAlg3Stack(t, n, f, 1, 3, alg, periods, vals(3, 1, 4, 1, 5, 9, 2), 5)
	last := stack.RunUntilAllDecided(pi0, 6000)
	if last < 0 {
		t.Fatal("full stack did not decide")
	}
	if err := stack.Trace().CheckConsensusSafety(); err != nil {
		t.Fatal(err)
	}
}

// protoHarness drives a Proto directly, bypassing the event queue, so
// unit tests can inject specific messages. It reuses the simulator with a
// 1-process silent network and a manual buffer.
type protoHarness struct {
	t     *testing.T
	proto simtime.Proto
	sim   *simtime.Sim
}

func newProtoHarness(t *testing.T, proto simtime.Proto, n int) *protoHarness {
	t.Helper()
	cfg := simtime.Config{N: 1, Phi: 1, Delta: 1, Seed: 1}
	sim, err := simtime.New(cfg, func(core.ProcessID) simtime.Proto { return noopProto{} })
	if err != nil {
		t.Fatal(err)
	}
	return &protoHarness{t: t, proto: proto, sim: sim}
}

type noopProto struct{}

func (noopProto) Step(ctx *simtime.StepContext) { ctx.Receive(simtime.FIFO{}) }
func (noopProto) OnCrash()                      {}
func (noopProto) OnRecover()                    {}

// inject places a payload in the harness buffer.
func (h *protoHarness) inject(from core.ProcessID, payload any) {
	h.sim.InjectForTest(0, simtime.Envelope{From: from, To: 0, Payload: payload})
}

// stepSend runs one protocol step expected to broadcast.
func (h *protoHarness) stepSend() { h.step() }

// stepRecv runs one protocol step expected to receive.
func (h *protoHarness) stepRecv() { h.step() }

func (h *protoHarness) step() {
	h.proto.Step(h.sim.StepContextForTest(0))
}
