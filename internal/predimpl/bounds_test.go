package predimpl

import (
	"math"
	"testing"

	"heardof/internal/core"
)

// TestTheorem3And5BoundsSweep is experiment E1+E3 in test form: measured
// good-period consumption of Algorithm 2 never exceeds the closed-form
// bounds, across a parameter sweep, under worst-case scheduling.
func TestTheorem3And5BoundsSweep(t *testing.T) {
	for _, n := range []int{2, 4, 7, 10} {
		for _, delta := range []float64{2, 5, 20} {
			for _, phi := range []float64{1, 2} {
				for _, x := range []int{1, 2, 3} {
					for _, tg := range []float64{0, 150} {
						e := GoodPeriodExperiment{
							Kind: UseAlg2, N: n, Phi: phi, Delta: delta,
							X: x, TG: tg, Seed: uint64(n*1000 + int(delta)*10 + x),
						}
						res, err := e.Run()
						if err != nil {
							t.Fatalf("n=%d δ=%v φ=%v x=%d tg=%v: %v", n, delta, phi, x, tg, err)
						}
						if res.Elapsed > res.Bound+1e-9 {
							t.Errorf("n=%d δ=%v φ=%v x=%d tg=%v: elapsed %.2f exceeds bound %.2f",
								n, delta, phi, x, tg, res.Elapsed, res.Bound)
						}
						if tg == 0 && math.Abs(res.Ratio-1) > 0.02 {
							// Initial good periods under worst-case
							// scheduling should sit essentially at the
							// Theorem 5 bound (tightness).
							t.Errorf("n=%d δ=%v φ=%v x=%d initial ratio %.3f, want ≈ 1",
								n, delta, phi, x, res.Ratio)
						}
					}
				}
			}
		}
	}
}

// TestTheorem6And7BoundsSweep is experiment E4+E5 in test form for
// Algorithm 3 in π0-arbitrary good periods.
func TestTheorem6And7BoundsSweep(t *testing.T) {
	cases := []struct{ n, f int }{{3, 1}, {5, 2}, {7, 3}, {9, 2}}
	for _, c := range cases {
		for _, delta := range []float64{2, 5, 10} {
			for _, phi := range []float64{1, 2} {
				for _, x := range []int{1, 2, 3} {
					for _, tg := range []float64{0, 150} {
						e := GoodPeriodExperiment{
							Kind: UseAlg3, N: c.n, F: c.f, Phi: phi, Delta: delta,
							X: x, TG: tg, Seed: uint64(c.n*1000 + int(delta)*10 + x),
						}
						res, err := e.Run()
						if err != nil {
							t.Fatalf("n=%d f=%d δ=%v φ=%v x=%d tg=%v: %v", c.n, c.f, delta, phi, x, tg, err)
						}
						if res.Elapsed > res.Bound+1e-9 {
							t.Errorf("n=%d f=%d δ=%v φ=%v x=%d tg=%v: elapsed %.2f exceeds bound %.2f",
								c.n, c.f, delta, phi, x, tg, res.Elapsed, res.Bound)
						}
					}
				}
			}
		}
	}
}

// TestFactorThreeHalvesAtX2 checks the paper's §4.2.1 headline: the
// non-initial/initial good-period length ratio is ≈ 3/2 for x = 2, both
// on the closed-form bounds and within slack on measurements.
func TestFactorThreeHalvesAtX2(t *testing.T) {
	for _, n := range []int{4, 7, 10} {
		for _, delta := range []float64{5, 20} {
			b3 := Theorem3GoodPeriodBound(n, 1, delta, 2)
			b5 := Theorem5InitialBound(n, 1, delta, 2)
			ratio := b3 / b5
			if ratio < 1.5 || ratio > 1.75 {
				t.Errorf("n=%d δ=%v: bound ratio %.3f outside [1.5, 1.75]", n, delta, ratio)
			}
		}
	}
}

// TestCorollary4TradeOff checks the Corollary 4 trade-off direction: one
// P2otr period is longer than each of the two P1/1otr periods, but
// shorter than their sum.
func TestCorollary4TradeOff(t *testing.T) {
	for _, n := range []int{4, 7, 10} {
		for _, delta := range []float64{2, 5, 20} {
			for _, phi := range []float64{1, 2} {
				p2 := Corollary4P2otrBound(n, phi, delta)
				p11 := Corollary4P11otrBound(n, phi, delta)
				if p2 <= p11 {
					t.Errorf("n=%d δ=%v φ=%v: P2otr %.1f not longer than one P11otr period %.1f",
						n, delta, phi, p2, p11)
				}
				if p2 >= 2*p11 {
					t.Errorf("n=%d δ=%v φ=%v: P2otr %.1f not shorter than two P11otr periods %.1f",
						n, delta, phi, p2, 2*p11)
				}
			}
		}
	}
}

// TestBoundsGrowLinearly checks the shape of the bounds: linear in x and
// in δ, as the formulas state.
func TestBoundsGrowLinearly(t *testing.T) {
	base := Theorem3GoodPeriodBound(4, 1, 5, 1)
	step := Theorem3GoodPeriodBound(4, 1, 5, 2) - base
	for x := 3; x <= 6; x++ {
		want := base + float64(x-1)*step
		got := Theorem3GoodPeriodBound(4, 1, 5, x)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("Theorem3 not linear in x at x=%d: got %v want %v", x, got, want)
		}
	}
	b1 := Theorem6GoodPeriodBound(5, 1, 2, 1)
	b2 := Theorem6GoodPeriodBound(5, 1, 4, 1)
	b3 := Theorem6GoodPeriodBound(5, 1, 6, 1)
	if math.Abs((b3-b2)-(b2-b1)) > 1e-9 {
		t.Error("Theorem6 not linear in δ")
	}
}

// TestMeasurementDeterminism: the same experiment with the same seed
// reproduces the same numbers exactly.
func TestMeasurementDeterminism(t *testing.T) {
	e := GoodPeriodExperiment{Kind: UseAlg3, N: 5, F: 2, Phi: 1.5, Delta: 4, X: 2, TG: 80, Seed: 321}
	r1, err1 := e.Run()
	r2, err2 := e.Run()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if r1.Elapsed != r2.Elapsed || r1.Rho0 != r2.Rho0 || r1.Stats != r2.Stats {
		t.Errorf("non-deterministic measurement: %+v vs %+v", r1, r2)
	}
}

// TestRho0Definition pins down the Appendix B definition of ρ0.
func TestRho0Definition(t *testing.T) {
	rec := NewRecorder(3)
	if got := rec.Rho0(10); got != 1 {
		t.Errorf("ρ0 with no sends = %d, want 1", got)
	}
	rec.RecordSend(0, 1, 2)
	rec.RecordSend(1, 1, 3)
	rec.RecordSend(0, 2, 8)
	rec.RecordSend(2, 5, 50) // after tG
	if got := rec.Rho0(10); got != 3 {
		t.Errorf("ρ0 = %d, want 3 (rounds 1,2 sent by t=10)", got)
	}
	if got := rec.Rho0(60); got != 6 {
		t.Errorf("ρ0 = %d, want 6", got)
	}
}

func TestRecorderWindowsAndTrace(t *testing.T) {
	pi0 := core.SetOf(0, 1)
	rec := NewRecorder(3)
	rec.RecordTransition(0, 1, pi0, 5)
	rec.RecordTransition(1, 1, pi0, 6)
	rec.RecordTransition(0, 2, pi0.Add(2), 9)
	rec.RecordTransition(1, 2, pi0, 10)

	if at, ok := rec.PsuWindowDone(pi0, 1, 1); !ok || at != 6 {
		t.Errorf("PsuWindowDone(1,1) = (%v, %v), want (6, true)", at, ok)
	}
	if _, ok := rec.PsuWindowDone(pi0, 1, 2); ok {
		t.Error("Psu(1,2) should fail: p0 heard a superset at round 2")
	}
	if at, ok := rec.PkWindowDone(pi0, 1, 2); !ok || at != 10 {
		t.Errorf("PkWindowDone(1,2) = (%v, %v), want (10, true)", at, ok)
	}

	// Receipt-based accounting for the final round.
	rec.RecordReception(0, 3, 0, 11)
	rec.RecordReception(0, 3, 1, 12)
	rec.RecordReception(1, 3, 0, 11.5)
	if _, ok := rec.PkEstablished(pi0, 1, 3); ok {
		t.Error("PkEstablished should fail: p1 missing round-3 message from 1")
	}
	rec.RecordReception(1, 3, 1, 13)
	if at, ok := rec.PkEstablished(pi0, 1, 3); !ok || at != 13 {
		t.Errorf("PkEstablished = (%v, %v), want (13, true)", at, ok)
	}

	// Duplicate receptions/transitions keep the first timestamp.
	rec.RecordReception(1, 3, 1, 99)
	if at, _ := rec.PkEstablished(pi0, 1, 3); at != 13 {
		t.Error("duplicate reception overwrote the timestamp")
	}
	rec.RecordTransition(0, 1, core.EmptySet, 99)
	if tr, _ := rec.Transition(0, 1); tr.HO != pi0 {
		t.Error("duplicate transition overwrote the record")
	}

	// Trace conversion: 3 rounds, sparse HO sets default to empty.
	rec.RecordDecision(0, 42, 2, 9)
	tr := rec.ToTrace(make([]core.Value, 3))
	// Only executed (transitioned) rounds are materialized: receptions for
	// round 3 alone do not extend the trace.
	if tr.NumRounds() != 2 {
		t.Fatalf("trace rounds = %d, want 2", tr.NumRounds())
	}
	if tr.HO(2, 1) != core.EmptySet {
		t.Error("unexecuted process should have empty HO")
	}
	if tr.HO(0, 2) != pi0.Add(2) {
		t.Error("trace HO mismatch")
	}
	if d := tr.Decisions[0]; !d.Decided || d.Value != 42 || d.Round != 2 {
		t.Errorf("trace decision = %v", d)
	}

	// FirstPsuWindow/FirstPkWindow search.
	if rd, _, ok := rec.FirstPsuWindow(pi0, 1, 1); !ok || rd != 1 {
		t.Errorf("FirstPsuWindow = (%d, %v)", rd, ok)
	}
	if rd, _, ok := rec.FirstPkWindow(pi0, 2, 1); !ok || rd != 1 {
		t.Errorf("FirstPkWindow = (%d, %v)", rd, ok)
	}
	if _, _, ok := rec.FirstPsuWindow(pi0, 5, 1); ok {
		t.Error("FirstPsuWindow found an impossible window")
	}
}
