package predimpl

import (
	"heardof/internal/core"
	"heardof/internal/simtime"
	"heardof/internal/stable"
)

// InitMsg is the ⟨INIT, ρ, msg⟩ message of Algorithm 3: a process that has
// exhausted its receive-step budget for round ρ−1 announces its intention
// to enter round ρ, carrying its round-(ρ−1) payload. Receiving f+1
// distinct INITs for r_p+1 lets a process advance; receiving an INIT for a
// higher round counts as a round-(ρ−1) message.
type InitMsg struct {
	R core.Round // the round the sender wants to enter
	M core.Message
}

// RoundNumber implements simtime.RoundMessage: an INIT for round ρ orders
// like a round-ρ message (it is fresher than the round-(ρ−1) ROUND
// messages it accompanies).
func (m InitMsg) RoundNumber() core.Round { return m.R }

// Alg3 is Algorithm 3 of the paper: it ensures P_k(π0, ·, ·) in a
// "π0-arbitrary" good period, tolerating f < n/2 processes outside π0
// with completely arbitrary behaviour. Its timeout is τ0 = 2δ + (2n+1)φ
// receive steps; its reception policy is round-robin-highest so that a
// fast arbitrary process cannot starve the slow ones; and a process that
// sees a ROUND message for a higher round joins it immediately — the
// "fast synchronization" distinguishing it from Byzantine clock
// synchronization algorithms.
//
// The paper's loop sends the INIT inside the receive loop when i ≥ τ0; a
// send occupies its own atomic step, and the proofs account for exactly
// one INIT per good-period round (Lemma B.8), so the INIT is sent when the
// timeout first expires and re-sent every τ0 receive steps thereafter
// (lost INITs from bad periods must eventually be replaced or the system
// would stall).
type Alg3 struct {
	p       core.ProcessID
	n       int
	f       int
	timeout float64 // τ0 = 2δ + (2n+1)φ, in receive steps
	inst    core.Instance
	store   *stable.Store
	rec     *Recorder
	policy  *simtime.RoundRobinHighest

	// Ablation knobs (zero values = paper-faithful behaviour).
	policyOverride func(n int) simtime.ReceptionPolicy
	altPolicy      simtime.ReceptionPolicy
	initQuorum     int
	disableCatchup bool

	// Volatile state.
	phase    int // alg3Send, alg3Recv, alg3SendInit
	rp       core.Round
	nextR    core.Round
	i        int
	nextInit float64
	lastMsg  core.Message
	msgsRcv  map[core.Round]map[core.ProcessID]core.Message
	initFrom map[core.Round]core.PIDSet
}

const (
	alg3Send = iota + 1
	alg3Recv
	alg3SendInit
)

var _ simtime.Proto = (*Alg3)(nil)

// Alg3Timeout returns τ0 = 2δ + (2n+1)φ.
func Alg3Timeout(n int, phi, delta float64) float64 {
	return 2*delta + float64(2*n+1)*phi
}

// NewAlg3 builds process p's Algorithm 3 protocol around the HO instance
// inst; f is the resilience parameter (f < n/2). The recorder may be nil.
func NewAlg3(p core.ProcessID, n, f int, phi, delta float64, inst core.Instance,
	store *stable.Store, rec *Recorder) *Alg3 {
	a := &Alg3{
		p:          p,
		n:          n,
		f:          f,
		timeout:    Alg3Timeout(n, phi, delta),
		inst:       inst,
		store:      store,
		rec:        rec,
		policy:     &simtime.RoundRobinHighest{N: n},
		initQuorum: f + 1,
	}
	a.resetVolatile()
	a.rp = 1
	a.nextR = 1
	a.persist()
	return a
}

// Instance returns the HO-layer instance driven by this protocol.
func (a *Alg3) Instance() core.Instance { return a.inst }

// Round returns the current round r_p.
func (a *Alg3) Round() core.Round { return a.rp }

func (a *Alg3) resetVolatile() {
	a.phase = alg3Send
	a.i = 0
	a.nextInit = a.timeout
	a.lastMsg = nil
	a.msgsRcv = make(map[core.Round]map[core.ProcessID]core.Message)
	a.initFrom = make(map[core.Round]core.PIDSet)
	if a.policyOverride != nil {
		a.policy = nil
		a.altPolicy = a.policyOverride(a.n)
	} else {
		a.policy = &simtime.RoundRobinHighest{N: a.n}
	}
}

// receptionPolicy returns the active policy (paper's round-robin-highest
// unless an ablation overrode it).
func (a *Alg3) receptionPolicy() simtime.ReceptionPolicy {
	if a.altPolicy != nil {
		return a.altPolicy
	}
	return a.policy
}

func (a *Alg3) persist() {
	a.store.Save(keyRound, a.rp)
	if rec, ok := a.inst.(core.Recoverable); ok {
		a.store.Save(keyState, rec.Snapshot())
	}
}

// Step implements simtime.Proto (one atomic step of Algorithm 3's loop).
func (a *Alg3) Step(ctx *simtime.StepContext) {
	switch a.phase {
	case alg3Send:
		// Lines 7–9: send ⟨ROUND, rp, S_p^rp(s_p)⟩ to all.
		a.lastMsg = a.inst.Send(a.rp)
		ctx.Broadcast(RoundMsg{R: a.rp, M: a.lastMsg})
		if a.rec != nil {
			a.rec.RecordSend(a.p, a.rp, ctx.Now())
		}
		a.i = 0
		a.nextInit = a.timeout
		a.phase = alg3Recv

	case alg3SendInit:
		// Line 20: send ⟨INIT, rp+1, msg⟩ to all (its own send step).
		ctx.Broadcast(InitMsg{R: a.rp + 1, M: a.lastMsg})
		a.phase = alg3Recv

	default: // alg3Recv
		a.receiveStep(ctx)
	}
}

func (a *Alg3) receiveStep(ctx *simtime.StepContext) {
	// Line 11: receive a message.
	if env, ok := ctx.Receive(a.receptionPolicy()); ok {
		switch m := env.Payload.(type) {
		case RoundMsg:
			// Line 12–15 for ⟨ROUND, msg, r′⟩.
			if m.R >= a.rp {
				a.record(m.R, env.From, m.M, ctx.Now())
			}
			if m.R > a.rp && !a.disableCatchup {
				a.nextR = maxRound(a.nextR, m.R)
			}
		case InitMsg:
			// Line 12–15 for ⟨INIT, msg, r′+1⟩: counts as a round-r′
			// message with r′ = m.R−1.
			rPrime := m.R - 1
			if rPrime >= a.rp {
				a.record(rPrime, env.From, m.M, ctx.Now())
			}
			if rPrime > a.rp {
				a.nextR = maxRound(a.nextR, rPrime)
			}
			// Lines 16–17: f+1 distinct INITs for rp+1.
			a.initFrom[m.R] = a.initFrom[m.R].Add(env.From)
			if a.initFrom[a.rp+1].Len() >= a.initQuorum {
				a.nextR = maxRound(a.nextR, a.rp+1)
			}
		}
	}

	// Lines 18–20: i is incremented after the receive; at the timeout the
	// INIT for the next round is sent. The paper's loop would resend on
	// every subsequent step (i ≥ τ0 stays true), while its proofs account
	// for a single INIT send per round; we resend every τ0 receive steps,
	// which matches the good-period accounting (a good-period round
	// completes before a second INIT fires) and preserves liveness when
	// an INIT is lost in a bad period.
	a.i++
	if float64(a.i) >= a.nextInit {
		a.nextInit += a.timeout
		a.phase = alg3SendInit
	}

	if a.nextR != a.rp {
		a.finishRounds(ctx.Now())
	}
}

func (a *Alg3) record(rd core.Round, from core.ProcessID, m core.Message, now simtime.Time) {
	byFrom, ok := a.msgsRcv[rd]
	if !ok {
		byFrom = make(map[core.ProcessID]core.Message)
		a.msgsRcv[rd] = byFrom
	}
	if _, dup := byFrom[from]; !dup {
		byFrom[from] = m
		if a.rec != nil {
			a.rec.RecordReception(a.p, rd, from, now)
		}
	}
}

// finishRounds runs lines 21–24.
func (a *Alg3) finishRounds(now simtime.Time) {
	inbox, ho := collectInbox(a.msgsRcv[a.rp])
	a.inst.Transition(a.rp, inbox)
	a.observe(a.rp, ho, now)

	for rd := a.rp + 1; rd < a.nextR; rd++ {
		a.inst.Transition(rd, nil)
		a.observe(rd, core.EmptySet, now)
	}

	//holint:allow nodeterminism conditional delete-all; each key is judged independently
	for rd := range a.msgsRcv {
		if rd < a.nextR {
			delete(a.msgsRcv, rd)
		}
	}
	//holint:allow nodeterminism conditional delete-all; each key is judged independently
	for rd := range a.initFrom {
		if rd <= a.nextR {
			delete(a.initFrom, rd)
		}
	}

	a.rp = a.nextR
	a.persist()
	a.phase = alg3Send
}

func (a *Alg3) observe(rd core.Round, ho core.PIDSet, now simtime.Time) {
	if a.rec == nil {
		return
	}
	a.rec.RecordTransition(a.p, rd, ho, now)
	if v, ok := a.inst.Decided(); ok {
		a.rec.RecordDecision(a.p, v, rd, now)
	}
}

// OnCrash implements simtime.Proto.
func (a *Alg3) OnCrash() {
	a.msgsRcv = nil
	a.initFrom = nil
}

// OnRecover implements simtime.Proto: reload r_p and s_p, reinitialize
// volatile state, restart at the loop head.
func (a *Alg3) OnRecover() {
	a.resetVolatile()
	if v, ok := a.store.Load(keyRound); ok {
		if rd, isRound := v.(core.Round); isRound {
			a.rp = rd
		}
	}
	a.nextR = a.rp
	if v, ok := a.store.Load(keyState); ok {
		if rec, isRec := a.inst.(core.Recoverable); isRec {
			rec.Restore(v)
		}
	}
}

// Theorem6GoodPeriodBound is the closed-form bound of Theorem 6: minimal
// length of a π0-arbitrary good period for P_k(π0, ρ0+1, ρ0+x) with
// f < n/2 (τ0 = 2δ+2nφ+φ):
//
//	(x+2)[τ0φ + δ + nφ + 2φ] + τ0φ.
func Theorem6GoodPeriodBound(n int, phi, delta float64, x int) float64 {
	tau0 := 2*delta + 2*float64(n)*phi + phi
	return float64(x+2)*(tau0*phi+delta+float64(n)*phi+2*phi) + tau0*phi
}

// Theorem7InitialBound is the closed-form bound of Theorem 7: minimal
// length of an initial good period for P_k(π0, 1, x):
//
//	(x−1)[τ0φ + δ + nφ + 2φ] + τ0φ + φ.
func Theorem7InitialBound(n int, phi, delta float64, x int) float64 {
	tau0 := 2*delta + 2*float64(n)*phi + phi
	return float64(x-1)*(tau0*phi+delta+float64(n)*phi+2*phi) + tau0*phi + phi
}

// Section422cFullStackBound is the §4.2.2(c) composition: the minimal
// π0-arbitrary good period for P_otr^2(π0) via Algorithms 3+4, i.e. 2f+3
// rounds satisfying P_k:
//
//	(2f+5)[τ0φ + δ + nφ + 2φ] + τ0φ.
func Section422cFullStackBound(n, f int, phi, delta float64) float64 {
	tau0 := 2*delta + 2*float64(n)*phi + phi
	return float64(2*f+5)*(tau0*phi+delta+float64(n)*phi+2*phi) + tau0*phi
}
