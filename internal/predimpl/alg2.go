package predimpl

import (
	"math"

	"heardof/internal/core"
	"heardof/internal/simtime"
	"heardof/internal/stable"
)

// RoundMsg is the message of Algorithm 2: the HO-layer payload tagged with
// its round number.
type RoundMsg struct {
	R core.Round
	M core.Message
}

// RoundNumber implements simtime.RoundMessage for the highest-round-first
// reception policy.
func (m RoundMsg) RoundNumber() core.Round { return m.R }

// Stable-storage keys shared by Algorithms 2 and 3: the paper stores the
// round number r_p and the HO-algorithm state s_p.
const (
	keyRound = "rp"
	keyState = "sp"
)

// Alg2 is Algorithm 2 of the paper: it ensures P_su(π0, ·, ·) in a
// "π0-down" good period. Each round consists of one send step followed by
// receive steps until ⌈2δ+(n+2)φ⌉ of them have been taken (timeout) or a
// higher-round message arrives; then the HO layer's transition function
// runs for the finished round and empty transitions for any skipped
// rounds.
//
// r_p and s_p live on stable storage; msgsRcv, next_r and i_p are volatile
// and reinitialized on recovery, exactly as in the paper.
type Alg2 struct {
	p       core.ProcessID
	n       int
	timeout float64 // 2δ + (n+2)φ, in receive steps
	inst    core.Instance
	store   *stable.Store
	rec     *Recorder
	policy  simtime.ReceptionPolicy

	// Volatile state.
	sending bool
	rp      core.Round
	nextR   core.Round
	ip      int
	msgsRcv map[core.Round]map[core.ProcessID]core.Message
}

var _ simtime.Proto = (*Alg2)(nil)

// Alg2Timeout returns the receive-step budget of a round: 2δ + (n+2)φ.
func Alg2Timeout(n int, phi, delta float64) float64 {
	return 2*delta + float64(n+2)*phi
}

// NewAlg2 builds process p's Algorithm 2 protocol around the HO instance
// inst. The recorder may be nil.
func NewAlg2(p core.ProcessID, n int, phi, delta float64, inst core.Instance,
	store *stable.Store, rec *Recorder) *Alg2 {
	a := &Alg2{
		p:       p,
		n:       n,
		timeout: Alg2Timeout(n, phi, delta),
		inst:    inst,
		store:   store,
		rec:     rec,
		policy:  simtime.HighestRoundFirst{},
	}
	a.resetVolatile()
	a.rp = 1
	a.nextR = 1
	a.persist()
	return a
}

// Instance returns the HO-layer instance driven by this protocol.
func (a *Alg2) Instance() core.Instance { return a.inst }

// Round returns the current round r_p (for tests).
func (a *Alg2) Round() core.Round { return a.rp }

func (a *Alg2) resetVolatile() {
	a.sending = true
	a.ip = 0
	a.msgsRcv = make(map[core.Round]map[core.ProcessID]core.Message)
}

func (a *Alg2) persist() {
	a.store.Save(keyRound, a.rp)
	if rec, ok := a.inst.(core.Recoverable); ok {
		a.store.Save(keyState, rec.Snapshot())
	}
}

// Step implements simtime.Proto (the while loop of Algorithm 2, one atomic
// step per invocation).
func (a *Alg2) Step(ctx *simtime.StepContext) {
	if a.sending {
		// Lines 7–9: send ⟨S_p^rp(s_p), rp⟩ to all.
		msg := a.inst.Send(a.rp)
		ctx.Broadcast(RoundMsg{R: a.rp, M: msg})
		if a.rec != nil {
			a.rec.RecordSend(a.p, a.rp, ctx.Now())
		}
		a.ip = 0
		a.sending = false
		return
	}

	// Line 11–12: i_p is incremented and checked against the timeout
	// before the receive of the same iteration.
	a.ip++
	if float64(a.ip) >= a.timeout {
		a.nextR = maxRound(a.nextR, a.rp+1)
	}

	// Lines 14–18: receive one message (or λ).
	if env, ok := ctx.Receive(a.policy); ok {
		if rm, isRound := env.Payload.(RoundMsg); isRound {
			if rm.R >= a.rp {
				a.record(rm.R, env.From, rm.M, ctx.Now())
			}
			if rm.R > a.rp {
				a.nextR = maxRound(a.nextR, rm.R)
			}
		}
	}

	if a.nextR != a.rp {
		a.finishRounds(ctx.Now())
	}
}

func (a *Alg2) record(rd core.Round, from core.ProcessID, m core.Message, now simtime.Time) {
	byFrom, ok := a.msgsRcv[rd]
	if !ok {
		byFrom = make(map[core.ProcessID]core.Message)
		a.msgsRcv[rd] = byFrom
	}
	if _, dup := byFrom[from]; !dup {
		byFrom[from] = m
		if a.rec != nil {
			a.rec.RecordReception(a.p, rd, from, now)
		}
	}
}

// finishRounds runs lines 19–22: T_p^rp with the received round-rp
// messages, empty transitions for skipped rounds, then advances to next_r.
func (a *Alg2) finishRounds(now simtime.Time) {
	inbox, ho := collectInbox(a.msgsRcv[a.rp])
	a.inst.Transition(a.rp, inbox)
	a.observe(a.rp, ho, now)

	for rd := a.rp + 1; rd < a.nextR; rd++ {
		a.inst.Transition(rd, nil)
		a.observe(rd, core.EmptySet, now)
	}

	// Discard messages for rounds below the new round (the space
	// optimization the paper notes is safe).
	//holint:allow nodeterminism conditional delete-all; each key is judged independently
	for rd := range a.msgsRcv {
		if rd < a.nextR {
			delete(a.msgsRcv, rd)
		}
	}

	a.rp = a.nextR
	a.persist()
	a.sending = true
}

func (a *Alg2) observe(rd core.Round, ho core.PIDSet, now simtime.Time) {
	if a.rec == nil {
		return
	}
	a.rec.RecordTransition(a.p, rd, ho, now)
	if v, ok := a.inst.Decided(); ok {
		a.rec.RecordDecision(a.p, v, rd, now)
	}
}

// OnCrash implements simtime.Proto: all volatile state is lost.
func (a *Alg2) OnCrash() {
	a.msgsRcv = nil
}

// OnRecover implements simtime.Proto: r_p and s_p are reloaded from stable
// storage; msgsRcv and next_r are reinitialized and the algorithm restarts
// at its loop head (line 6), i.e. by sending its round-r_p message.
func (a *Alg2) OnRecover() {
	a.resetVolatile()
	if v, ok := a.store.Load(keyRound); ok {
		if rd, isRound := v.(core.Round); isRound {
			a.rp = rd
		}
	}
	a.nextR = a.rp
	if v, ok := a.store.Load(keyState); ok {
		if rec, isRec := a.inst.(core.Recoverable); isRec {
			rec.Restore(v)
		}
	}
}

func maxRound(a, b core.Round) core.Round {
	if a > b {
		return a
	}
	return b
}

// collectInbox converts a per-sender message map into a deterministic
// inbox slice plus its heard-of set.
func collectInbox(byFrom map[core.ProcessID]core.Message) ([]core.IncomingMessage, core.PIDSet) {
	if len(byFrom) == 0 {
		return nil, core.EmptySet
	}
	var ho core.PIDSet
	//holint:allow nodeterminism commutative set fold; the inbox below is built in PIDSet order
	for from := range byFrom {
		ho = ho.Add(from)
	}
	inbox := make([]core.IncomingMessage, 0, len(byFrom))
	ho.ForEach(func(from core.ProcessID) {
		inbox = append(inbox, core.IncomingMessage{From: from, Payload: byFrom[from]})
	})
	return inbox, ho
}

// Theorem3GoodPeriodBound is the closed-form bound of Theorem 3: the
// minimal length of a (non-initial) π0-down good period after which
// Algorithm 2 guarantees P_su(π0, ρ0, ρ0+x−1):
//
//	(x+1)(2δ+(n+2)φ+1)φ + δ + φ.
func Theorem3GoodPeriodBound(n int, phi, delta float64, x int) float64 {
	return float64(x+1)*(2*delta+float64(n+2)*phi+1)*phi + delta + phi
}

// Theorem5InitialBound is the closed-form bound of Theorem 5: the minimal
// length of an initial good period for P_su(π0, 1, x):
//
//	x(2δ+(n+2)φ+1)φ.
func Theorem5InitialBound(n int, phi, delta float64, x int) float64 {
	return float64(x) * (2*delta + float64(n+2)*phi + 1) * phi
}

// Corollary4P2otrBound is the single-good-period length for P_otr^2 via
// Algorithm 2 (Corollary 4): (6δ+3nφ+6φ+3)φ + δ + φ.
func Corollary4P2otrBound(n int, phi, delta float64) float64 {
	return (6*delta+3*float64(n)*phi+6*phi+3)*phi + delta + phi
}

// Corollary4P11otrBound is the per-period length when P_otr^1/1 is
// implemented with two good periods (Corollary 4): (4δ+2nφ+4φ+2)φ + δ + φ.
func Corollary4P11otrBound(n int, phi, delta float64) float64 {
	return (4*delta+2*float64(n)*phi+4*phi+2)*phi + delta + phi
}

// CeilTimeout returns the integral number of receive steps implied by the
// real-valued timeout (for tests that count steps).
func CeilTimeout(timeout float64) int { return int(math.Ceil(timeout)) }
