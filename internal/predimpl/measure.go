package predimpl

import (
	"fmt"

	"heardof/internal/core"
	"heardof/internal/simtime"
)

// GoodPeriodExperiment measures how much good-period time Algorithm 2 or 3
// needs to establish its predicate — the empirical counterpart of
// Theorems 3, 5, 6 and 7. The schedule is: a bad period on [0, TG) (absent
// when TG = 0, the "initial good period" scenario), then a good period of
// the configured kind lasting to the horizon. The run measures the time
// from TG until the target predicate window is established.
type GoodPeriodExperiment struct {
	Kind  ProtoKind
	N     int
	F     int     // Alg3 only
	Phi   float64 // φ
	Delta float64 // δ
	X     int     // window width (consecutive predicate rounds)
	TG    simtime.Time
	Pi0   core.PIDSet // defaults to Π for Alg2, Π minus the F top ids for Alg3
	Seed  uint64

	// StepMode/DeliveryMode default to worst case, which is what the
	// paper's bounds describe.
	StepMode     simtime.StepMode
	DeliveryMode simtime.DeliveryMode
	// Horizon defaults to TG plus four times the theorem bound.
	Horizon simtime.Time
	// Ablation, if non-nil, runs the experiment with a design choice
	// disabled (see the Ablation type).
	Ablation *Ablation
	// Bad, if non-nil, overrides the bad-period/outsider behaviour
	// envelope (step gaps, delays, loss).
	Bad *simtime.BadConfig
}

// GoodPeriodResult is the outcome of one measurement.
type GoodPeriodResult struct {
	Rho0        core.Round
	WindowStart core.Round
	WindowEnd   core.Round
	// Elapsed is the good-period time consumed until the window was
	// established (completion time − TG).
	Elapsed float64
	// Bound is the corresponding theorem's closed-form worst-case bound.
	Bound float64
	// Ratio is Elapsed / Bound (≤ 1 when the run respects the model).
	Ratio float64
	// Stats are the simulator counters at completion.
	Stats simtime.Stats
	// StableWrites counts stable-storage writes across all processes.
	StableWrites int64
}

func (e *GoodPeriodExperiment) defaults() {
	if e.StepMode == 0 {
		e.StepMode = simtime.StepWorstCase
	}
	if e.DeliveryMode == 0 {
		e.DeliveryMode = simtime.DeliverWorstCase
	}
	if e.Pi0.IsEmpty() {
		if e.Kind == UseAlg3 {
			e.Pi0 = core.FullSet(e.N - e.F)
		} else {
			e.Pi0 = core.FullSet(e.N)
		}
	}
	if e.X == 0 {
		e.X = 1
	}
}

// Bound returns the theorem bound matching the experiment's configuration.
func (e *GoodPeriodExperiment) Bound() float64 {
	e.defaults()
	switch {
	case e.Kind == UseAlg2 && e.TG > 0:
		return Theorem3GoodPeriodBound(e.N, e.Phi, e.Delta, e.X)
	case e.Kind == UseAlg2:
		return Theorem5InitialBound(e.N, e.Phi, e.Delta, e.X)
	case e.TG > 0:
		return Theorem6GoodPeriodBound(e.N, e.Phi, e.Delta, e.X)
	default:
		return Theorem7InitialBound(e.N, e.Phi, e.Delta, e.X)
	}
}

// Run executes the experiment.
func (e GoodPeriodExperiment) Run() (GoodPeriodResult, error) {
	e.defaults()
	bound := e.Bound()
	horizon := e.Horizon
	if horizon == 0 {
		horizon = e.TG + 4*bound + 50
	}

	goodKind := simtime.GoodDown
	if e.Kind == UseAlg3 {
		goodKind = simtime.GoodArbitrary
	}
	var periods []simtime.Period
	if e.TG > 0 {
		periods = append(periods, simtime.Period{Start: 0, Kind: simtime.Bad})
	}
	periods = append(periods, simtime.Period{Start: e.TG, Kind: goodKind, Pi0: e.Pi0})

	stack, err := BuildStack(StackConfig{
		Kind:      e.Kind,
		F:         e.F,
		Algorithm: passiveAlgorithm{},
		Initial:   make([]core.Value, e.N),
		Ablation:  e.Ablation,
		Sim: simtime.Config{
			N:            e.N,
			Phi:          e.Phi,
			Delta:        e.Delta,
			Periods:      periods,
			StepMode:     e.StepMode,
			DeliveryMode: e.DeliveryMode,
			Bad:          badOrZero(e.Bad),
			Seed:         e.Seed,
		},
	})
	if err != nil {
		return GoodPeriodResult{}, err
	}

	// Advance to the good period start, anchor ρ0 there, then run until
	// the predicate window is established.
	stack.Sim.RunUntilTime(e.TG)
	rho0 := stack.Recorder.Rho0(e.TG)

	var from, to core.Round
	if e.TG > 0 {
		// Theorem 3: P_su(π0, ρ0, ρ0+x−1); Theorem 6: P_k(π0, ρ0+1, ρ0+x)
		// — with our ρ0 anchored at "first unsent round", both windows
		// start at ρ0.
		from, to = rho0, rho0+core.Round(e.X)-1
	} else {
		from, to = 1, core.Round(e.X)
	}

	window := func() (simtime.Time, bool) {
		if e.Kind == UseAlg2 {
			return stack.Recorder.PsuWindowDone(e.Pi0, from, to)
		}
		return stack.Recorder.PkEstablished(e.Pi0, from, to)
	}
	ok := stack.Sim.RunUntil(func() bool { _, done := window(); return done }, horizon)
	if !ok {
		return GoodPeriodResult{}, fmt.Errorf(
			"%v n=%d f=%d φ=%v δ=%v x=%d: predicate window [%d,%d] not established by horizon %v",
			e.Kind, e.N, e.F, e.Phi, e.Delta, e.X, from, to, horizon)
	}
	doneAt, _ := window()
	elapsed := doneAt - e.TG

	return GoodPeriodResult{
		Rho0:         rho0,
		WindowStart:  from,
		WindowEnd:    to,
		Elapsed:      elapsed,
		Bound:        bound,
		Ratio:        elapsed / bound,
		Stats:        stack.Sim.Stats(),
		StableWrites: stack.Stores.TotalWrites(),
	}, nil
}

func badOrZero(b *simtime.BadConfig) simtime.BadConfig {
	if b == nil {
		return simtime.BadConfig{}
	}
	return *b
}

// passiveAlgorithm is the trivial HO algorithm used when only the
// predicate layer is being measured: it sends its round number and never
// decides.
type passiveAlgorithm struct{}

// Name implements core.Algorithm.
func (passiveAlgorithm) Name() string { return "passive" }

// NewInstance implements core.Algorithm.
func (passiveAlgorithm) NewInstance(p core.ProcessID, n int, initial core.Value) core.Instance {
	return &passiveInstance{}
}

type passiveInstance struct {
	rounds int
}

func (pi *passiveInstance) Send(r core.Round) core.Message { return int64(r) }

func (pi *passiveInstance) Transition(core.Round, []core.IncomingMessage) { pi.rounds++ }

func (pi *passiveInstance) Decided() (core.Value, bool) { return 0, false }

// Snapshot implements core.Recoverable.
func (pi *passiveInstance) Snapshot() core.Snapshot { return pi.rounds }

// Restore implements core.Recoverable.
func (pi *passiveInstance) Restore(s core.Snapshot) {
	if v, ok := s.(int); ok {
		pi.rounds = v
	}
}
