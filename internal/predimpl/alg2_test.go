package predimpl

import (
	"testing"

	"heardof/internal/core"
	"heardof/internal/otr"
	"heardof/internal/simtime"
	"heardof/internal/stable"
)

func buildAlg2Stack(t *testing.T, n int, phi, delta float64, periods []simtime.Period, crashes []simtime.CrashEvent, initial []core.Value) *Stack {
	t.Helper()
	stack, err := BuildStack(StackConfig{
		Kind:      UseAlg2,
		Algorithm: otr.Algorithm{},
		Initial:   initial,
		Sim: simtime.Config{
			N: n, Phi: phi, Delta: delta,
			Periods: periods, Crashes: crashes, Seed: 7,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return stack
}

func vals(vs ...int64) []core.Value {
	out := make([]core.Value, len(vs))
	for i, v := range vs {
		out[i] = core.Value(v)
	}
	return out
}

func TestAlg2ConsensusInInitialGoodPeriod(t *testing.T) {
	n := 4
	stack := buildAlg2Stack(t, n, 1, 5, nil, nil, vals(3, 1, 4, 1))
	last := stack.RunUntilAllDecided(core.FullSet(n), 500)
	if last < 0 {
		t.Fatal("consensus not reached in an initial good period")
	}
	tr := stack.Trace()
	if err := tr.CheckConsensusSafety(); err != nil {
		t.Fatal(err)
	}
	if !tr.AllDecided() {
		t.Fatal("trace missing decisions")
	}
	// The decided value is 1 (everyone adopts the minimum, then decides).
	for p := 0; p < n; p++ {
		if tr.Decisions[p].Value != 1 {
			t.Errorf("p%d decided %d, want 1", p, tr.Decisions[p].Value)
		}
	}
	if stack.Sim.ContractViolations() != 0 {
		t.Error("step contract violated")
	}
}

func TestAlg2RoundAdvancesByTimeoutWithoutMessages(t *testing.T) {
	// A single process alone (π0 = {0} of n=1): rounds advance purely by
	// the receive-step timeout.
	stack := buildAlg2Stack(t, 1, 1, 2, nil, nil, vals(9))
	stack.Sim.RunUntilTime(100)
	proto, ok := stack.Protos[0].(*Alg2)
	if !ok {
		t.Fatal("wrong proto type")
	}
	if proto.Round() < 5 {
		t.Errorf("round = %d after 100 time units, want ≥ 5", proto.Round())
	}
	// Every executed round decided nothing but ran a transition with
	// HO = {0} (it hears itself).
	rec, okT := stack.Recorder.Transition(0, 1)
	if !okT || rec.HO != core.SetOf(0) {
		t.Errorf("round 1 transition = %+v ok=%v, want HO {0}", rec, okT)
	}
}

func TestAlg2JumpsToHigherRound(t *testing.T) {
	// Process 1 crashes at t=0? Instead: make process 0 slow via a bad
	// period for it... Simplest: two processes, one is down initially
	// (crash at 0, recover later). The recovered process receives a
	// higher-round message and must jump without executing the missed
	// rounds' sends.
	n := 2
	periods := []simtime.Period{{Start: 0, Kind: simtime.GoodDown, Pi0: core.FullSet(n)}}
	crashes := []simtime.CrashEvent{{P: 1, At: 0.5, RecoverAt: 120}}
	stack := buildAlg2Stack(t, n, 1, 2, periods, crashes, vals(5, 6))
	stack.Sim.RunUntilTime(200)

	p1 := stack.Protos[1].(*Alg2)
	p0 := stack.Protos[0].(*Alg2)
	if p0.Round() < 10 {
		t.Fatalf("p0 round = %d, expected to be far ahead", p0.Round())
	}
	if p1.Round() < p0.Round()-2 {
		t.Errorf("p1 round = %d did not catch up to p0 round = %d", p1.Round(), p0.Round())
	}
	// The skipped rounds were executed as empty transitions (recorded
	// sparsely — at least one empty-HO round exists).
	rounds := stack.Recorder.RoundsExecuted(1)
	if len(rounds) == 0 {
		t.Fatal("p1 executed no rounds")
	}
}

func TestAlg2CrashRecoveryKeepsRoundAndState(t *testing.T) {
	n := 3
	crashes := []simtime.CrashEvent{{P: 2, At: 50, RecoverAt: 80}}
	stack := buildAlg2Stack(t, n, 1, 2, nil, crashes, vals(4, 4, 4))
	// With unanimous inputs everyone decides 4 quickly, before the crash.
	last := stack.RunUntilAllDecided(core.FullSet(n), 40)
	if last < 0 {
		t.Fatal("no decision before crash")
	}
	stack.Sim.RunUntilTime(200)
	// After recovery, p2's OTR instance must still report its decision
	// (restored from stable storage).
	if v, ok := stack.Instance(2).Decided(); !ok || v != 4 {
		t.Errorf("recovered instance decision = (%v, %v), want (4, true)", v, ok)
	}
	p2 := stack.Protos[2].(*Alg2)
	if p2.Round() < 2 {
		t.Errorf("recovered round = %d, want the stored round", p2.Round())
	}
	if err := stack.Trace().CheckConsensusSafety(); err != nil {
		t.Fatal(err)
	}
}

func TestAlg2RecoverWithEmptyStoreStartsAtRoundOne(t *testing.T) {
	inst := otr.Algorithm{}.NewInstance(0, 2, 1)
	a := NewAlg2(0, 2, 1, 2, inst, stable.NewStore(), nil)
	a.OnCrash()
	a.OnRecover()
	if a.Round() != 1 {
		t.Errorf("round after empty-store recovery = %d, want 1", a.Round())
	}
}

func TestAlg2StablePersistence(t *testing.T) {
	store := stable.NewStore()
	inst := otr.Algorithm{}.NewInstance(0, 1, 7)
	a := NewAlg2(0, 1, 1.0, 1.0, inst, store, nil)
	if v, ok := store.Load(keyRound); !ok || v.(core.Round) != 1 {
		t.Error("initial round not persisted")
	}
	_ = a
	if store.Writes() < 2 {
		t.Errorf("writes = %d, want ≥ 2 (round and state)", store.Writes())
	}
}

func TestAlg2TimeoutFormula(t *testing.T) {
	// 2δ + (n+2)φ for n=4, φ=2, δ=5: 10 + 12 = 22.
	if got := Alg2Timeout(4, 2, 5); got != 22 {
		t.Errorf("Alg2Timeout = %v, want 22", got)
	}
	if CeilTimeout(21.5) != 22 || CeilTimeout(22) != 22 {
		t.Error("CeilTimeout wrong")
	}
}

func TestBoundFormulas(t *testing.T) {
	// Spot-check the closed forms at n=4, φ=1, δ=5, x=2.
	// Theorem 3: (x+1)(2δ+(n+2)φ+1)φ+δ+φ = 3·17+6 = 57.
	if got := Theorem3GoodPeriodBound(4, 1, 5, 2); got != 57 {
		t.Errorf("Theorem3 = %v, want 57", got)
	}
	// Theorem 5: x(2δ+(n+2)φ+1)φ = 2·17 = 34.
	if got := Theorem5InitialBound(4, 1, 5, 2); got != 34 {
		t.Errorf("Theorem5 = %v, want 34", got)
	}
	// Corollary 4, P2otr: (6δ+3nφ+6φ+3)φ+δ+φ = (30+12+6+3)+6 = 57.
	if got := Corollary4P2otrBound(4, 1, 5); got != 57 {
		t.Errorf("Corollary4 P2otr = %v, want 57", got)
	}
	// Corollary 4, P1/1otr: (4δ+2nφ+4φ+2)φ+δ+φ = (20+8+4+2)+6 = 40.
	if got := Corollary4P11otrBound(4, 1, 5); got != 40 {
		t.Errorf("Corollary4 P11otr = %v, want 40", got)
	}
	// Theorem 6 (n=5, φ=1, δ=5, x=1): τ0=21; 3·(21+5+5+2)+21 = 120.
	if got := Theorem6GoodPeriodBound(5, 1, 5, 1); got != 120 {
		t.Errorf("Theorem6 = %v, want 120", got)
	}
	// Theorem 7 (same, x=1): 0+21+1 = 22.
	if got := Theorem7InitialBound(5, 1, 5, 1); got != 22 {
		t.Errorf("Theorem7 = %v, want 22", got)
	}
	// §4.2.2(c) (n=5, f=2, φ=1, δ=5): 9·33+21 = 318.
	if got := Section422cFullStackBound(5, 2, 1, 5); got != 318 {
		t.Errorf("Section422c = %v, want 318", got)
	}
}

func TestRoundMsgRoundNumber(t *testing.T) {
	var rm simtime.RoundMessage = RoundMsg{R: 9}
	if rm.RoundNumber() != 9 {
		t.Error("RoundMsg round number wrong")
	}
	var im simtime.RoundMessage = InitMsg{R: 4}
	if im.RoundNumber() != 4 {
		t.Error("InitMsg round number wrong")
	}
}
