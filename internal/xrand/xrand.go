// Package xrand provides a small, fast, deterministic random number
// generator (splitmix64) with an explicit seed. Experiments and adversaries
// use it instead of math/rand so that every run is reproducible across Go
// versions and platforms, and so that independent components can own
// independent streams.
package xrand

import (
	"math"
	"sort"
)

// Rand is a splitmix64 generator. The zero value is a valid generator
// seeded with 0; prefer New for clarity.
type Rand struct {
	state uint64
}

// New returns a generator with the given seed. Distinct seeds yield
// well-separated streams.
func New(seed uint64) *Rand { return &Rand{state: seed} }

// Fork returns a new independent generator derived from this one.
func (r *Rand) Fork() *Rand { return New(r.Uint64() ^ 0x9e3779b97f4a7c15) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, matching
// math/rand semantics (programming error, not runtime condition).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative pseudo-random int64.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Between returns a uniform float64 in [lo, hi). If hi <= lo it returns lo.
func (r *Rand) Between(lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + r.Float64()*(hi-lo)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// Zipf samples integers in [0, n) with P(k) ∝ 1/(k+1)^s — the skewed key
// distribution of workload generators (s ≈ 1 is the classic YCSB-style
// hot-key workload; s = 0 degenerates to uniform). The implementation
// precomputes the CDF and inverts it by binary search, so sampling is
// deterministic given the underlying Rand.
type Zipf struct {
	r   *Rand
	cdf []float64
}

// NewZipf creates a sampler over [0, n) with exponent s ≥ 0. It panics if
// n <= 0 or s < 0 (programming error, matching Intn).
func NewZipf(r *Rand, s float64, n int) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with non-positive n")
	}
	if s < 0 {
		panic("xrand: NewZipf with negative exponent")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	return &Zipf{r: r, cdf: cdf}
}

// Next returns the next sample.
func (z *Zipf) Next() int {
	u := z.r.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}
