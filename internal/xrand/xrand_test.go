package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collided %d/1000 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(7)
	sum := 0.0
	const k = 100000
	for i := 0; i < k; i++ {
		sum += r.Float64()
	}
	if mean := sum / k; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ≈ 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(2)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) hit only %d values", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestBetween(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		v := r.Between(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Between(2,5) = %v", v)
		}
	}
	if r.Between(4, 4) != 4 || r.Between(5, 3) != 5 {
		t.Error("degenerate Between wrong")
	}
}

func TestBool(t *testing.T) {
	r := New(4)
	if r.Bool(0) {
		t.Error("Bool(0) = true")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) = false")
	}
	trues := 0
	for i := 0; i < 10000; i++ {
		if r.Bool(0.3) {
			trues++
		}
	}
	if trues < 2700 || trues > 3300 {
		t.Errorf("Bool(0.3) true %d/10000 times", trues)
	}
}

func TestPerm(t *testing.T) {
	r := New(5)
	p := r.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
	if len(r.Perm(0)) != 0 {
		t.Error("Perm(0) not empty")
	}
}

func TestInt63NonNegative(t *testing.T) {
	r := New(6)
	for i := 0; i < 1000; i++ {
		if r.Int63() < 0 {
			t.Fatal("Int63 negative")
		}
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(9)
	f1 := parent.Fork()
	f2 := parent.Fork()
	if f1.Uint64() == f2.Uint64() {
		t.Error("forked streams start identically")
	}
}

func TestZipfSkewAndRange(t *testing.T) {
	z := NewZipf(New(5), 1.0, 10)
	counts := make([]int, 10)
	const draws = 20000
	for i := 0; i < draws; i++ {
		k := z.Next()
		if k < 0 || k >= 10 {
			t.Fatalf("sample %d out of range", k)
		}
		counts[k]++
	}
	// With s=1 the head key carries ~34% of the mass; key 9 ~3.4%.
	if counts[0] < counts[9]*3 {
		t.Errorf("no skew: counts[0]=%d counts[9]=%d", counts[0], counts[9])
	}
	if counts[0] == draws {
		t.Error("degenerate sampler: every draw hit key 0")
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z := NewZipf(New(7), 0, 4)
	counts := make([]int, 4)
	for i := 0; i < 8000; i++ {
		counts[z.Next()]++
	}
	for k, c := range counts {
		if c < 1600 || c > 2400 { // 2000 ± 20%
			t.Errorf("s=0 not uniform: counts[%d]=%d", k, c)
		}
	}
}

func TestZipfDeterministic(t *testing.T) {
	a, b := NewZipf(New(9), 0.99, 100), NewZipf(New(9), 0.99, 100)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("diverged at draw %d", i)
		}
	}
}

func TestZipfPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewZipf(New(1), 1, 0) },
		func() { NewZipf(New(1), -0.5, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// TestZipfCDFProperties is the property test over the sampler's internals:
// for a sweep of (s, n) the precomputed CDF must be strictly increasing
// (every key has positive mass), its final entry must be exactly 1.0
// (the normalization divides the running sum by itself, so the last entry
// is sum/sum — bitwise 1.0, which guarantees Next can never fall off the
// end for any u < 1), and every sample must land in [0, n).
func TestZipfCDFProperties(t *testing.T) {
	exponents := []float64{0, 0.5, 0.99, 1.0, 1.5, 3}
	sizes := []int{1, 2, 7, 48, 1000}
	for _, s := range exponents {
		for _, n := range sizes {
			z := NewZipf(New(11), s, n)
			if len(z.cdf) != n {
				t.Fatalf("s=%v n=%d: cdf has %d entries", s, n, len(z.cdf))
			}
			prev := 0.0
			for k, c := range z.cdf {
				if !(c > prev) {
					t.Errorf("s=%v n=%d: cdf[%d]=%v not above cdf[%d]=%v", s, n, k, c, k-1, prev)
				}
				prev = c
			}
			if last := z.cdf[n-1]; last != 1.0 {
				t.Errorf("s=%v n=%d: final CDF entry %v, want exactly 1.0", s, n, last)
			}
			for i := 0; i < 2000; i++ {
				if k := z.Next(); k < 0 || k >= n {
					t.Fatalf("s=%v n=%d: sample %d outside [0, %d)", s, n, k, n)
				}
			}
		}
	}
}
