// Fuzz coverage for the live runtime's inbound surface: the envelope
// decoder and the replica core's envelope handlers. Both sit directly
// behind the network — every byte a peer (or an attacker on the TCP
// port) sends flows through here — so neither may ever panic, and
// undecodable payloads must be counted and dropped, not acted on.

package live

import (
	"bytes"
	"testing"

	"heardof/internal/core"
	"heardof/internal/otr"
)

// FuzzDecodeEnvelope: arbitrary bytes must never panic the frame
// decoder, and any frame it accepts must re-encode and decode to the
// same envelope. Seeds are real traffic captured from a replica core
// working a submission, plus handcrafted malformed frames.
func FuzzDecodeEnvelope(f *testing.F) {
	for _, env := range coreTraffic(f) {
		f.Add(AppendEnvelope(nil, env))
	}
	good := AppendEnvelope(nil, Envelope{Group: 1, Slot: 2, Round: 3, From: 4, Kind: KindSync, Payload: []byte{1, 2}})
	f.Add(good)
	f.Add(good[:3])
	f.Add([]byte(nil))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}) // overlong uvarint
	f.Add(AppendEnvelope(nil, Envelope{From: core.ProcessID(core.MaxProcesses), Kind: KindRound}))

	f.Fuzz(func(t *testing.T, b []byte) {
		env, err := DecodeEnvelope(b)
		if err != nil {
			return
		}
		again, err := DecodeEnvelope(AppendEnvelope(nil, env))
		if err != nil {
			t.Fatalf("accepted frame does not re-encode: %+v: %v", env, err)
		}
		if again.Group != env.Group || again.Slot != env.Slot || again.Round != env.Round ||
			again.From != env.From || again.Kind != env.Kind || !bytes.Equal(again.Payload, env.Payload) {
			t.Fatalf("round trip changed the envelope: %+v → %+v", env, again)
		}
	})
}

// FuzzReplicaCoreStep: a freshly built replica core must survive any
// single inbound envelope — arbitrary kind, positioning, and payload —
// without panicking, and must count the ones it cannot decode.
func FuzzReplicaCoreStep(f *testing.F) {
	for _, env := range coreTraffic(f) {
		f.Add(uint8(env.Kind), env.Slot, uint64(env.Round), uint8(env.From), env.Payload)
	}
	f.Add(uint8(KindRound), uint64(1), uint64(1), uint8(1), []byte{0xFF})
	f.Add(uint8(KindBatch), uint64(0), uint64(0), uint8(2), []byte(nil))
	f.Add(uint8(KindSync), uint64(0), uint64(0), uint8(1), []byte{0xFF, 0xFF, 0xFF})
	f.Add(uint8(99), uint64(0), uint64(0), uint8(1), []byte("junk"))

	f.Fuzz(func(t *testing.T, kind uint8, slot, round uint64, from uint8, payload []byte) {
		c := newFuzzCore(t)
		// Give the core live state so round/batch/sync handlers exercise
		// their non-idle paths too.
		c.Step(Event[string]{Kind: EvSubmit, Client: 1, Seq: 1, Cmd: "a"})
		before := c.Counters()
		res := c.Step(Event[string]{Kind: EvEnvelope, Env: Envelope{
			Slot: slot, Round: core.Round(round % (1 << 20)),
			From: core.ProcessID(int(from) % 3), Kind: Kind(kind), Payload: payload,
		}})
		after := c.Counters()
		if after.Malformed < before.Malformed {
			t.Fatalf("malformed counter went backwards: %d → %d", before.Malformed, after.Malformed)
		}
		for _, a := range res.Applied {
			if a.Slot == 0 {
				t.Fatalf("applied slot 0 from envelope kind=%d payload=%x", kind, payload)
			}
		}
	})
}

// TestMalformedPayloadsCounted pins the accounting: each undecodable
// inbound payload bumps ReplicaStats.Malformed exactly once and
// produces no outbound traffic and no applies.
func TestMalformedPayloadsCounted(t *testing.T) {
	c := newFuzzCore(t)
	cases := []struct {
		name string
		env  Envelope
	}{
		{"round bad tag", Envelope{Slot: 1, Round: 1, From: 1, Kind: KindRound, Payload: []byte{0xFF}}},
		{"round truncated", Envelope{Slot: 1, Round: 1, From: 1, Kind: KindRound, Payload: []byte{1, 0x80}}},
		{"batch empty", Envelope{From: 1, Kind: KindBatch}},
		{"batch id zero", Envelope{From: 1, Kind: KindBatch, Payload: appendVarint(nil, 0)}},
		{"batch bad entries", Envelope{From: 1, Kind: KindBatch, Payload: appendVarint(nil, 7)}},
		{"batch pull empty", Envelope{From: 1, Kind: KindBatchPull}},
		{"sync empty", Envelope{From: 1, Kind: KindSync}},
		{"sync slot zero", Envelope{From: 1, Kind: KindSync,
			Payload: appendVarint(appendUvarint(appendUvarint(nil, 1), 0), 5)}},
		{"sync pull empty", Envelope{From: 1, Kind: KindSyncPull}},
		{"unknown kind", Envelope{From: 1, Kind: Kind(42), Payload: []byte("x")}},
	}
	for i, tc := range cases {
		res := c.Step(Event[string]{Kind: EvEnvelope, Env: tc.env})
		if got := c.Counters().Malformed; got != i+1 {
			t.Fatalf("%s: Malformed = %d, want %d", tc.name, got, i+1)
		}
		if len(res.Out) != 0 || len(res.Applied) != 0 {
			t.Fatalf("%s: malformed input had effects: %+v", tc.name, res)
		}
	}
}

// newFuzzCore builds an idle 3-replica core (self = 0, OTR, string
// commands) for the envelope-surface tests.
func newFuzzCore(t testing.TB) *ReplicaCore[string] {
	t.Helper()
	c, err := NewReplicaCore(CoreConfig[string]{
		Self: 0, N: 3,
		Algorithm: otr.Algorithm{},
		Msg:       otr.WireCodec{},
		Batch:     strCodec{},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// coreTraffic captures the envelopes a core actually emits while
// working a submission — the seed corpus's "real round traffic".
func coreTraffic(f *testing.F) []Envelope {
	c := newFuzzCore(f)
	var envs []Envelope
	collect := func(res StepResult[string]) {
		for _, o := range res.Out {
			envs = append(envs, o.Env)
		}
	}
	collect(c.Step(Event[string]{Kind: EvSubmit, Client: 1, Seq: 1, Cmd: "put"}))
	collect(c.Step(Event[string]{Kind: EvRoundTimeout}))
	collect(c.Step(Event[string]{Kind: EvTick}))
	if len(envs) == 0 {
		f.Fatal("seed core emitted no traffic — corpus generator is broken")
	}
	return envs
}
