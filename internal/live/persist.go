// The durability seam between ReplicaCore and internal/wal: the
// Persister interface the core notifies of every protocol fact that
// must survive a crash, and the recovery path that rebuilds a core
// from a recovered wal.State.
//
// Write-ahead discipline, enforced by the shell: every Save* a core
// step issues is made durable by one Persister.Sync() BEFORE any
// envelope of that step is transmitted or any submitter acknowledged.
// Since all externally visible behavior flows through envelopes and
// acks, no peer or client can ever have observed state the log does
// not hold — which is exactly the paper's crash-RECOVERY model (the
// stable-storage variables survive, the volatile round position does
// not). Quorum-durable dissemination is a corollary: propose() saves a
// batch body in the same step that first broadcasts its id, so by the
// time any replica can vote for the id, the contents are on the
// proposer's disk and a recovered proposer still serves batch pulls —
// closing the PR-5 stall window for crash-RECOVERY faults.
//
// What is persisted (and when):
//
//	SaveBatch     propose() and handleBatch(): batch contents at first sight
//	SaveVote      transitionRound(): instance state (the locked vote) after
//	              every undecided transition
//	SaveDecision  recordDecision(): a slot's decided batch id
//	SaveApplied   applySlot(): the applied slot and its fresh (client,seq)
//	              advancements
//
// What is NOT: pending submissions (unacknowledged — clients retry),
// peer commit-index observations (re-learned from traffic), and the
// round position (volatile by the paper's model; recovery restarts the
// slot's instance at round 1 with the restored vote and the jump rule
// re-aligns it with the group).

package live

import (
	"fmt"

	"heardof/internal/wal"
)

// Persister receives the core's durable protocol facts. wal.Store is
// the disk implementation; nil (in CoreConfig/ReplicaConfig) means
// volatile operation — the default, keeping every in-memory test and
// the model checker byte-identical to a persister-free build.
//
// Save* calls buffer; Sync makes everything buffered durable. The
// byte slices passed to SaveBatch/SaveVote are not retained.
type Persister interface {
	SaveBatch(bid int64, contents []byte)
	SaveVote(slot uint64, state []byte)
	SaveDecision(slot uint64, bid int64)
	SaveApplied(slot uint64, bid int64, fresh []wal.ClientSeq)
	Sync() error
	Snapshot(st *wal.State) error
}

var _ Persister = (*wal.Store)(nil)

// statePersistent marks algorithm instances whose state can round-trip
// through the durability layer (otr and lastvoting qualify).
type statePersistent interface {
	stateAppender
	RestoreState(b []byte) error
}

// RestoreReplicaCore rebuilds a core from recovered durable state — the
// crash-RECOVERY transition. Everything stable returns: the applied
// log (and its hash, recomputed), session high-water marks, retained
// batches, decided-but-unapplied slots, the batch counter (so new
// batch ids never collide with durable pre-crash ones), and the newest
// vote state, which is re-installed into the slot's fresh instance
// when consensus for it restarts. Everything volatile is gone: pending
// submissions, peer observations, and the round position.
//
// MutForgetVote (model checker only) drops the restored vote — the
// seeded recovery bug that lets a second attempt contradict a decision
// the first attempt's quorum already fixed.
func RestoreReplicaCore[C any](cfg CoreConfig[C], st *wal.State) (*ReplicaCore[C], error) {
	c, err := NewReplicaCore(cfg)
	if err != nil {
		return nil, err
	}
	if st == nil {
		return c, nil
	}
	const fnvPrime = 1099511628211
	for i, bid := range st.Log {
		c.log = append(c.log, bid)
		c.logHash = (c.logHash ^ uint64(i+1)) * fnvPrime
		c.logHash = (c.logHash ^ uint64(bid)) * fnvPrime
	}
	for client, seq := range st.HWM {
		c.hwm[client] = seq
		c.maxSeen[client] = seq
	}
	c.stats.Committed = st.Committed
	for bid, enc := range st.Batches {
		if bid == 0 {
			return nil, fmt.Errorf("live: recovered state holds the no-op batch id")
		}
		entries, err := c.cfg.Batch.DecodeEntries(enc)
		if err != nil {
			return nil, fmt.Errorf("live: recovered batch %#x: %w", bid, err)
		}
		c.batches[bid] = entries
		// Own durable batches bound the sequence numbers this replica has
		// already packed: never hand a client a seq below them, or a
		// pre-crash batch deciding later would swallow the new command.
		for _, e := range entries {
			if e.Seq > c.maxSeen[e.Client] {
				c.maxSeen[e.Client] = e.Seq
			}
		}
	}
	for bid := range c.batches {
		if !c.batchApplied(bid) {
			// Re-offer every unapplied recovered batch — including our own:
			// their pending-queue provenance is volatile and gone, so
			// adoption is how their commands get committed without a client
			// retry.
			c.offered[bid] = struct{}{}
		}
	}
	for _, bid := range c.log {
		if bid != 0 {
			if _, held := c.batches[bid]; held {
				c.inLog[bid] = true
			}
		}
	}
	c.batchSeq = st.BatchSeq
	const seqMask = (int64(1) << 40) - 1
	for bid := range c.batches {
		if bid>>40 == int64(c.cfg.Self)+1 && bid&seqMask > c.batchSeq {
			c.batchSeq = bid & seqMask
		}
	}
	for slot, bid := range st.Decided {
		if slot > uint64(len(c.log)) {
			c.decided[slot] = bid
		}
	}
	next := uint64(len(c.log)) + 1
	switch {
	case st.VoteSlot > next:
		return nil, fmt.Errorf("live: recovered vote for slot %d beyond next slot %d", st.VoteSlot, next)
	case st.VoteSlot == next && len(st.Vote) > 0 && cfg.Mutation&MutForgetVote == 0:
		// Validate the encoding now (startSlot cannot return an error).
		probe := c.cfg.Algorithm.NewInstance(c.cfg.Self, c.cfg.N, 0)
		sp, ok := probe.(statePersistent)
		if !ok {
			return nil, fmt.Errorf("live: algorithm %T cannot restore persisted votes", probe)
		}
		if err := sp.RestoreState(st.Vote); err != nil {
			return nil, fmt.Errorf("live: recovered vote: %w", err)
		}
		c.restoredVote = append([]byte(nil), st.Vote...)
		c.restoredVoteSlot = st.VoteSlot
		// The slot was mid-consensus: restart it even with nothing else
		// queued, so the locked vote re-enters the group's next attempt.
		c.poked = true
	}
	return c, nil
}

// PersistState projects the core's durable state — what a Persister
// that saw every Save* since birth would recover. Used for snapshots
// (with the shell adding the application state) and as the model
// checker's crash-recovery image. The application fields (AppSlots,
// AppState, Tail) are the shell's to fill.
func (c *ReplicaCore[C]) PersistState() *wal.State {
	st := &wal.State{
		Log:       append([]int64(nil), c.log...),
		Committed: c.stats.Committed,
		HWM:       make(map[uint64]uint64, len(c.hwm)),
		BatchSeq:  c.batchSeq,
		Batches:   make(map[int64][]byte, len(c.batches)),
		Decided:   make(map[uint64]int64, len(c.decided)),
	}
	for client, seq := range c.hwm {
		st.HWM[client] = seq
	}
	for bid, entries := range c.batches {
		st.Batches[bid] = c.cfg.Batch.AppendEntries(nil, entries)
	}
	for slot, bid := range c.decided {
		st.Decided[slot] = bid
	}
	if c.cur != nil {
		if sa, ok := c.cur.inst.(stateAppender); ok {
			st.VoteSlot, st.Vote = c.cur.slot, sa.AppendState(nil)
		}
	} else if c.restoredVoteSlot > uint64(len(c.log)) {
		st.VoteSlot = c.restoredVoteSlot
		st.Vote = append([]byte(nil), c.restoredVote...)
	}
	return st
}

// Recover returns the replica this core would restart as after a
// crash: its durable state reloaded, its volatile state lost. Because
// it is literally PersistState piped through RestoreReplicaCore, the
// model checker's crash-RECOVERY transition explores the same recovery
// code the production shell runs from disk.
func (c *ReplicaCore[C]) Recover() *ReplicaCore[C] {
	d, err := RestoreReplicaCore(c.cfg, c.PersistState())
	if err != nil {
		panic(fmt.Sprintf("live: self-recovery failed: %v", err))
	}
	return d
}

// EntriesOf returns a retained batch's entries (the shell's recovery
// path re-applies the log tail through them). The slice is shared;
// callers must not mutate it.
func (c *ReplicaCore[C]) EntriesOf(bid int64) ([]Entry[C], bool) {
	entries, ok := c.batches[bid]
	return entries, ok
}

// persistVote saves the running instance's state after a transition.
func (c *ReplicaCore[C]) persistVote() {
	if c.cfg.Persist == nil || c.cur == nil {
		return
	}
	if sa, ok := c.cur.inst.(stateAppender); ok {
		c.cfg.Persist.SaveVote(c.cur.slot, sa.AppendState(nil))
	}
}

// persistFresh extracts the fresh (client,seq) advancements of a
// step's applied entries, nil when no persister is configured.
func (c *ReplicaCore[C]) persistFresh(applied []AppliedEntry[C], from int) []wal.ClientSeq {
	if c.cfg.Persist == nil {
		return nil
	}
	var fresh []wal.ClientSeq
	for _, ae := range applied[from:] {
		if ae.Fresh {
			fresh = append(fresh, wal.ClientSeq{Client: ae.Entry.Client, Seq: ae.Entry.Seq})
		}
	}
	return fresh
}
