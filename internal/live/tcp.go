// TCPTransport: the real-deployment transport. Every process listens on
// one address and lazily dials each peer; envelopes travel as
// length-prefixed binary frames. The transport is deliberately
// best-effort — a send while a peer is unreachable, a full write queue,
// or a torn connection all just LOSE messages, because the layers above
// were built for fair-lossy links: retransmission is the round
// structure's job (every round resends fresh state), not the socket's.
// That keeps reconnect logic trivial and maps the paper's transmission
// faults one-to-one onto real network weather.

package live

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"heardof/internal/core"
)

// dialBackoff paces reconnect attempts to an unreachable peer.
const dialBackoff = 100 * time.Millisecond

// TCPTransport connects the n processes of a deployment over sockets.
type TCPTransport struct {
	self  core.ProcessID
	addrs []string
	ln    net.Listener
	recv  chan Envelope
	peers []*tcpPeer

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{} // accepted connections, for Close
	wg     sync.WaitGroup
}

// ListenTCP binds addr (use "host:0" to let the kernel pick a port; the
// chosen address is ln.Addr()).
func ListenTCP(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}

// NewTCP builds process self's transport from its already-bound listener
// and the peer address table (addrs[self] is informational only). It
// starts the accept loop and one writer per peer.
func NewTCP(self core.ProcessID, ln net.Listener, addrs []string) (*TCPTransport, error) {
	n := len(addrs)
	if n < 1 || n > core.MaxProcesses {
		return nil, fmt.Errorf("live: %d peer addresses out of range [1, %d]", n, core.MaxProcesses)
	}
	if int(self) < 0 || int(self) >= n {
		return nil, fmt.Errorf("live: self %d outside address table of %d", self, n)
	}
	if ln == nil {
		return nil, fmt.Errorf("live: nil listener")
	}
	t := &TCPTransport{
		self:  self,
		addrs: addrs,
		ln:    ln,
		recv:  make(chan Envelope, 4096),
		peers: make([]*tcpPeer, n),
		conns: make(map[net.Conn]struct{}),
	}
	for q := range t.peers {
		if core.ProcessID(q) == self {
			continue
		}
		p := &tcpPeer{addr: addrs[q], queue: make(chan []byte, 1024), done: make(chan struct{})}
		t.peers[q] = p
		t.wg.Add(1)
		go func() { defer t.wg.Done(); p.writeLoop() }()
	}
	t.wg.Add(1)
	go func() { defer t.wg.Done(); t.acceptLoop() }()
	return t, nil
}

// Send implements Transport: frame the envelope and enqueue it to the
// peer's writer; drop on overflow or after Close.
func (t *TCPTransport) Send(to core.ProcessID, env Envelope) {
	env.From = t.self
	if to == t.self {
		select {
		case t.recv <- env:
		default:
		}
		return
	}
	if int(to) < 0 || int(to) >= len(t.peers) || t.peers[to] == nil {
		return
	}
	frame := make([]byte, 4, 4+64+len(env.Payload))
	frame = AppendEnvelope(frame, env)
	if len(frame) > maxFrame {
		return
	}
	binary.BigEndian.PutUint32(frame[:4], uint32(len(frame)-4))
	select {
	case t.peers[to].queue <- frame:
	default: // writer backed up: loss, not backpressure
	}
}

// Recv implements Transport.
func (t *TCPTransport) Recv() <-chan Envelope { return t.recv }

// Close implements Transport: stop accepting, tear down every
// connection, and close the receive channel once the loops drain.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := make([]net.Conn, 0, len(t.conns))
	for c := range t.conns {
		conns = append(conns, c)
	}
	t.mu.Unlock()
	err := t.ln.Close()
	for _, p := range t.peers {
		if p != nil {
			close(p.done)
		}
	}
	for _, c := range conns {
		c.Close()
	}
	t.wg.Wait()
	close(t.recv)
	return err
}

// isClosed reports whether Close ran.
func (t *TCPTransport) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

// acceptLoop turns inbound connections into frame readers.
func (t *TCPTransport) acceptLoop() {
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.conns[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.readLoop(conn)
			t.mu.Lock()
			delete(t.conns, conn)
			t.mu.Unlock()
			conn.Close()
		}()
	}
}

// readLoop decodes frames off one connection until it breaks. Malformed
// frames poison the connection (the peer will redial); decode errors on
// a well-framed envelope just drop that envelope.
func (t *TCPTransport) readLoop(conn net.Conn) {
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(lenBuf[:])
		if size == 0 || size > maxFrame {
			return
		}
		buf := make([]byte, size)
		if _, err := io.ReadFull(conn, buf); err != nil {
			return
		}
		env, err := DecodeEnvelope(buf)
		if err != nil {
			continue
		}
		if t.isClosed() {
			return
		}
		select {
		case t.recv <- env:
		default: // receiver backed up: loss
		}
	}
}

// tcpPeer is the outbound side of one peer link.
type tcpPeer struct {
	addr  string
	queue chan []byte
	done  chan struct{}
}

// writeLoop dials lazily, writes frames, and on any error drops the
// connection and backs off before redialing. Frames arriving while
// disconnected are consumed and lost — the transport contract.
func (p *tcpPeer) writeLoop() {
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	lastDial := time.Time{}
	for {
		select {
		case <-p.done:
			return
		case frame := <-p.queue:
			if conn == nil {
				if wait := dialBackoff - time.Since(lastDial); wait > 0 {
					select {
					case <-time.After(wait):
					case <-p.done:
						return
					}
				}
				lastDial = time.Now()
				c, err := net.DialTimeout("tcp", p.addr, time.Second)
				if err != nil {
					continue // the frame is lost; later frames retry
				}
				conn = c
			}
			conn.SetWriteDeadline(time.Now().Add(time.Second))
			if _, err := conn.Write(frame); err != nil {
				conn.Close()
				conn = nil
			}
		}
	}
}
