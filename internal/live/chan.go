// ChanNetwork: the in-process transport. Each process owns a buffered
// inbox channel; Send is a non-blocking enqueue to the destination's
// inbox, so a slow receiver loses messages instead of stalling the
// cluster — the same fair-lossy link the HO model assumes, realized with
// goroutines and channels. Reliable in itself; compose WithFaults for
// loss, delay, and pause injection.

package live

import (
	"fmt"
	"sync"

	"heardof/internal/core"
)

// ChanNetwork connects n in-process processes with buffered channels.
type ChanNetwork struct {
	n       int
	inboxes []chan Envelope

	mu     sync.Mutex
	closed []bool
}

// NewChanNetwork creates a network of n processes with per-process inbox
// buffers of the given size (0 means 1024).
func NewChanNetwork(n, buffer int) (*ChanNetwork, error) {
	if n < 1 || n > core.MaxProcesses {
		return nil, fmt.Errorf("live: network size %d out of range [1, %d]", n, core.MaxProcesses)
	}
	if buffer < 1 {
		buffer = 1024
	}
	cn := &ChanNetwork{n: n, inboxes: make([]chan Envelope, n), closed: make([]bool, n)}
	for i := range cn.inboxes {
		cn.inboxes[i] = make(chan Envelope, buffer)
	}
	return cn, nil
}

// N returns the network size.
func (cn *ChanNetwork) N() int { return cn.n }

// Transport returns process p's endpoint.
func (cn *ChanNetwork) Transport(p core.ProcessID) Transport {
	return &chanTransport{net: cn, self: p}
}

// deliver enqueues without blocking; overflow is loss.
func (cn *ChanNetwork) deliver(to core.ProcessID, env Envelope) {
	if int(to) < 0 || int(to) >= cn.n {
		return
	}
	cn.mu.Lock()
	defer cn.mu.Unlock()
	if cn.closed[to] {
		return
	}
	select {
	case cn.inboxes[to] <- env:
	default:
	}
}

// closeEndpoint shuts one process's inbox exactly once.
func (cn *ChanNetwork) closeEndpoint(p core.ProcessID) {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	if !cn.closed[p] {
		cn.closed[p] = true
		close(cn.inboxes[p])
	}
}

// Close shuts every endpoint.
func (cn *ChanNetwork) Close() {
	for p := 0; p < cn.n; p++ {
		cn.closeEndpoint(core.ProcessID(p))
	}
}

// chanTransport is one process's view of a ChanNetwork.
type chanTransport struct {
	net  *ChanNetwork
	self core.ProcessID
}

var _ Transport = (*chanTransport)(nil)

// Send implements Transport.
func (t *chanTransport) Send(to core.ProcessID, env Envelope) {
	env.From = t.self
	t.net.deliver(to, env)
}

// Recv implements Transport.
func (t *chanTransport) Recv() <-chan Envelope { return t.net.inboxes[t.self] }

// Close implements Transport: it closes only this endpoint.
func (t *chanTransport) Close() error {
	t.net.closeEndpoint(t.self)
	return nil
}
