package live

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"heardof/internal/core"
	"heardof/internal/otr"
)

// strCodec is a minimal BatchCodec over string commands.
type strCodec struct{}

func (strCodec) AppendEntries(dst []byte, entries []Entry[string]) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(entries)))
	for _, e := range entries {
		dst = binary.AppendUvarint(dst, e.Client)
		dst = binary.AppendUvarint(dst, e.Seq)
		dst = binary.AppendUvarint(dst, uint64(len(e.Cmd)))
		dst = append(dst, e.Cmd...)
	}
	return dst
}

func (strCodec) DecodeEntries(src []byte) ([]Entry[string], error) {
	count, n := binary.Uvarint(src)
	if n <= 0 || count > 1<<16 {
		return nil, fmt.Errorf("bad count")
	}
	src = src[n:]
	out := make([]Entry[string], 0, count)
	for i := uint64(0); i < count; i++ {
		var e Entry[string]
		var n int
		if e.Client, n = binary.Uvarint(src); n <= 0 {
			return nil, fmt.Errorf("bad client")
		}
		src = src[n:]
		if e.Seq, n = binary.Uvarint(src); n <= 0 {
			return nil, fmt.Errorf("bad seq")
		}
		src = src[n:]
		l, n := binary.Uvarint(src)
		if n <= 0 || uint64(len(src)-n) < l {
			return nil, fmt.Errorf("bad cmd")
		}
		e.Cmd = string(src[n : n+int(l)])
		src = src[n+int(l):]
		out = append(out, e)
	}
	return out, nil
}

// applyLog records one replica's applied commands.
type applyLog struct {
	mu   sync.Mutex
	cmds []string
}

func (l *applyLog) hook(_ uint64, e Entry[string]) any {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.cmds = append(l.cmds, e.Cmd)
	return len(l.cmds)
}

func (l *applyLog) snapshot() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.cmds...)
}

// newTestGroup builds n replicas over a channel network, one fault
// environment per process.
func newTestGroup(t *testing.T, n int, seed uint64) (reps []*Replica[string], logs []*applyLog, faults []*Faults, stop func()) {
	t.Helper()
	net, err := NewChanNetwork(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	reps = make([]*Replica[string], n)
	logs = make([]*applyLog, n)
	faults = make([]*Faults, n)
	for p := 0; p < n; p++ {
		faults[p] = NewFaults(seed + uint64(p))
		logs[p] = &applyLog{}
		rep, err := NewReplica(ReplicaConfig[string]{
			Self:      core.ProcessID(p),
			N:         n,
			Algorithm: otr.Algorithm{},
			Msg:       otr.WireCodec{},
			Batch:     strCodec{},
			Transport: WithFaults(net.Transport(core.ProcessID(p)), faults[p]),
			Apply:     logs[p].hook,
			// Brisk pacing keeps the tests snappy; correctness must not
			// depend on the timeout value.
			RoundTimeout: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		reps[p] = rep
	}
	for _, r := range reps {
		r.Start()
	}
	return reps, logs, faults, func() {
		for _, r := range reps {
			r.Stop()
		}
		net.Close()
	}
}

// waitApplied asserts ch resolves within d.
func waitApplied(t *testing.T, ch <-chan ApplyResult, d time.Duration, what string) ApplyResult {
	t.Helper()
	select {
	case res, ok := <-ch:
		if !ok {
			t.Fatalf("%s: replica stopped before commit", what)
		}
		return res
	case <-time.After(d):
		t.Fatalf("%s: not applied within %v", what, d)
	}
	return ApplyResult{}
}

// requireSameLogs waits for the replicas to reach one decision log (a
// trailing slot may still be propagating when the waiters fire), then
// asserts the applied command sequences match and nobody observed a
// divergent decision.
func requireSameLogs(t *testing.T, reps []*Replica[string], logs []*applyLog) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		wantLen, wantHash := reps[0].LogHash()
		same := true
		for _, r := range reps[1:] {
			if l, h := r.LogHash(); l != wantLen || h != wantHash {
				same = false
				break
			}
		}
		if same {
			break
		}
		if time.Now().After(deadline) {
			for p, r := range reps {
				l, h := r.LogHash()
				t.Logf("replica %d: %d slots, hash %#x", p, l, h)
			}
			t.Fatal("decision logs never converged")
		}
		time.Sleep(2 * time.Millisecond)
	}
	want := logs[0].snapshot()
	for p := 1; p < len(logs); p++ {
		got := logs[p].snapshot()
		if len(got) != len(want) {
			t.Fatalf("replica %d applied %d commands, replica 0 applied %d", p, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("replica %d command %d = %q, replica 0 has %q", p, i, got[i], want[i])
			}
		}
	}
	for p, r := range reps {
		if st := r.Stats(); st.Divergent != 0 {
			t.Fatalf("replica %d observed %d divergent decisions", p, st.Divergent)
		}
	}
}

func TestReplicaCommitsAcrossGroup(t *testing.T) {
	reps, logs, _, stop := newTestGroup(t, 3, 100)
	defer stop()

	var chans []<-chan ApplyResult
	for i := 0; i < 10; i++ {
		ch, _ := reps[i%3].SubmitNext(uint64(i%3)+1, fmt.Sprintf("cmd-%d", i))
		chans = append(chans, ch)
	}
	for i, ch := range chans {
		waitApplied(t, ch, 10*time.Second, fmt.Sprintf("cmd-%d", i))
	}
	// Committed-on-submitter implies applied there; give the other
	// replicas a beat to apply the tail, then compare logs.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := []ReplicaStats{reps[0].Stats(), reps[1].Stats(), reps[2].Stats()}
		if st[0].Committed == st[1].Committed && st[1].Committed == st[2].Committed && st[0].Committed >= 10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("commit counts never converged: %d/%d/%d", st[0].Committed, st[1].Committed, st[2].Committed)
		}
		time.Sleep(2 * time.Millisecond)
	}
	requireSameLogs(t, reps, logs)
}

func TestReplicaCommitsUnderLoss(t *testing.T) {
	reps, logs, faults, stop := newTestGroup(t, 3, 200)
	defer stop()
	for _, f := range faults {
		f.SetLoss(0.2)
	}

	var chans []<-chan ApplyResult
	for i := 0; i < 20; i++ {
		ch, _ := reps[i%3].SubmitNext(uint64(i%3)+1, fmt.Sprintf("lossy-%d", i))
		chans = append(chans, ch)
	}
	for i, ch := range chans {
		waitApplied(t, ch, 30*time.Second, fmt.Sprintf("lossy-%d", i))
	}
	for _, f := range faults {
		f.SetLoss(0)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		a, b, c := reps[0].Stats().Committed, reps[1].Stats().Committed, reps[2].Stats().Committed
		if a == b && b == c && a >= 20 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("commit counts never converged under loss: %d/%d/%d", a, b, c)
		}
		time.Sleep(2 * time.Millisecond)
	}
	requireSameLogs(t, reps, logs)
}

// TestReplicaPrunesAppliedBatches pins the GC horizon: batch contents
// whose slot every replica has applied must be released, so a
// long-running server's memory tracks the in-flight window, not the
// write history.
func TestReplicaPrunesAppliedBatches(t *testing.T) {
	reps, _, _, stop := newTestGroup(t, 3, 400)
	defer stop()

	const total = 60
	var chans []<-chan ApplyResult
	for i := 0; i < total; i++ {
		ch, _ := reps[i%3].SubmitNext(uint64(i%3)+1, fmt.Sprintf("gc-%d", i))
		chans = append(chans, ch)
	}
	for i, ch := range chans {
		waitApplied(t, ch, 20*time.Second, fmt.Sprintf("gc-%d", i))
	}
	// Quiesce: convergence plus at least one idle heartbeat so every
	// replica has observed its peers' final commit indexes.
	deadline := time.Now().Add(10 * time.Second)
	for {
		worst := 0
		for _, r := range reps {
			if h := r.Stats().BatchesHeld; h > worst {
				worst = h
			}
		}
		if worst <= 8 {
			break
		}
		if time.Now().After(deadline) {
			for p, r := range reps {
				t.Logf("replica %d holds %d batches", p, r.Stats().BatchesHeld)
			}
			t.Fatalf("batches never pruned: worst replica holds %d after %d commands", worst, total)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestReplicaDuplicateSubmissionAppliesOnce(t *testing.T) {
	reps, logs, _, stop := newTestGroup(t, 3, 300)
	defer stop()

	ch, err := reps[0].Submit(9, 1, "only-once")
	if err != nil {
		t.Fatal(err)
	}
	waitApplied(t, ch, 10*time.Second, "first submission")
	dup, err := reps[0].Submit(9, 1, "only-once")
	if err != nil {
		t.Fatal(err)
	}
	if res := waitApplied(t, dup, 5*time.Second, "retry"); !res.Dup {
		t.Fatalf("retry of an applied seq reported %+v, want Dup", res)
	}
	if _, err := reps[0].Submit(9, 0, "zero"); err == nil {
		t.Fatal("sequence 0 accepted")
	}
	count := 0
	for _, c := range logs[0].snapshot() {
		if c == "only-once" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("command applied %d times, want exactly once", count)
	}
}
