// Model-checker support for ReplicaCore: deep cloning (the checker
// forks a core per explored event) and a canonical state encoding (the
// checker's fingerprint for reachable-state dedup). Both require the
// algorithm's instances to implement core.Recoverable — true for every
// algorithm in this repo — because a running slot's instance state must
// be copied and serialized. The production shell never calls these.

package live

import (
	"fmt"
	"sort"

	"heardof/internal/core"
)

// stateAppender is the fast fingerprint path: instances that can append
// a canonical byte encoding of their state skip the reflective
// Snapshot-formatting fallback (otr and lastvoting implement it).
type stateAppender interface {
	AppendState(dst []byte) []byte
}

// Clone deep-copies the core. The clone shares nothing mutable with the
// original: maps, slices, and the running instance (via its
// core.Recoverable snapshot) are all duplicated. Batch entry slices are
// shared — they are immutable after creation.
func (c *ReplicaCore[C]) Clone() *ReplicaCore[C] {
	d := &ReplicaCore[C]{
		cfg:       c.cfg,
		pending:   append([]Entry[C](nil), c.pending...),
		batches:   make(map[int64][]Entry[C], len(c.batches)),
		inLog:     make(map[int64]bool, len(c.inLog)),
		offered:   make(map[int64]struct{}, len(c.offered)),
		decided:   make(map[uint64]int64, len(c.decided)),
		maxSeen:   make(map[uint64]uint64, len(c.maxSeen)),
		log:       append([]int64(nil), c.log...),
		logHash:   c.logHash,
		hwm:       make(map[uint64]uint64, len(c.hwm)),
		batchSeq:  c.batchSeq,
		poked:     c.poked,
		blockedOn: c.blockedOn,
		eagerPush: c.eagerPush,

		restoredVote:     append([]byte(nil), c.restoredVote...),
		restoredVoteSlot: c.restoredVoteSlot,
		peerApplied:      make(map[core.ProcessID]uint64, len(c.peerApplied)),
		prunedTo:         c.prunedTo,
		stats:            c.stats,
	}
	for k, v := range c.batches {
		d.batches[k] = v
	}
	for k, v := range c.inLog {
		d.inLog[k] = v
	}
	for k := range c.offered {
		d.offered[k] = struct{}{}
	}
	for k, v := range c.decided {
		d.decided[k] = v
	}
	for k, v := range c.maxSeen {
		d.maxSeen[k] = v
	}
	for k, v := range c.hwm {
		d.hwm[k] = v
	}
	for k, v := range c.peerApplied {
		d.peerApplied[k] = v
	}
	if c.cur != nil {
		d.cur = c.cloneSlotRun(c.cur)
	}
	return d
}

// cloneSlotRun deep-copies a running slot, restoring the instance from
// its recoverable snapshot.
func (c *ReplicaCore[C]) cloneSlotRun(s *slotRun) *slotRun {
	inst := c.cfg.Algorithm.NewInstance(c.cfg.Self, c.cfg.N, 0)
	rec, ok := inst.(core.Recoverable)
	src, ok2 := s.inst.(core.Recoverable)
	if !ok || !ok2 {
		panic(fmt.Sprintf("live: model checking requires a core.Recoverable algorithm, got %T", s.inst))
	}
	rec.Restore(src.Snapshot())
	d := &slotRun{
		slot:   s.slot,
		inst:   inst,
		r:      s.r,
		target: s.target,
		heard:  make(map[core.ProcessID]core.Message, len(s.heard)),
		future: make(map[core.Round]map[core.ProcessID]core.Message, len(s.future)),
	}
	for p, m := range s.heard {
		d.heard[p] = m
	}
	for r, fr := range s.future {
		cp := make(map[core.ProcessID]core.Message, len(fr))
		for p, m := range fr {
			cp[p] = m
		}
		d.future[r] = cp
	}
	return d
}

// AppendFingerprint appends a canonical encoding of the protocol state
// to dst, for the checker's reachable-state dedup. Two cores encode
// equal iff they are protocol-equivalent; service counters (Rounds,
// Committed, …) are deliberately excluded so paths that differ only in
// bookkeeping merge. inLog is derivable from log and prunedTo and is
// likewise omitted.
func (c *ReplicaCore[C]) AppendFingerprint(dst []byte) []byte {
	dst = appendVarint(dst, c.batchSeq)
	dst = appendVarint(dst, c.blockedOn)
	dst = appendUvarint(dst, c.eagerPush)
	dst = appendUvarint(dst, c.prunedTo)
	if c.poked {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = appendUvarint(dst, c.restoredVoteSlot)
	dst = appendUvarint(dst, uint64(len(c.restoredVote)))
	dst = append(dst, c.restoredVote...)

	dst = appendUvarint(dst, uint64(len(c.log)))
	for _, bid := range c.log {
		dst = appendVarint(dst, bid)
	}

	dst = c.appendEntrySlice(dst, c.pending)

	bids := make([]int64, 0, len(c.batches))
	for bid := range c.batches {
		bids = append(bids, bid)
	}
	sort.Slice(bids, func(i, j int) bool { return bids[i] < bids[j] })
	dst = appendUvarint(dst, uint64(len(bids)))
	for _, bid := range bids {
		dst = appendVarint(dst, bid)
		dst = c.appendEntrySlice(dst, c.batches[bid])
	}

	bids = bids[:0]
	for bid := range c.offered {
		bids = append(bids, bid)
	}
	sort.Slice(bids, func(i, j int) bool { return bids[i] < bids[j] })
	dst = appendUvarint(dst, uint64(len(bids)))
	for _, bid := range bids {
		dst = appendVarint(dst, bid)
	}

	slots := make([]uint64, 0, len(c.decided))
	for s := range c.decided {
		slots = append(slots, s)
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
	dst = appendUvarint(dst, uint64(len(slots)))
	for _, s := range slots {
		dst = appendUvarint(dst, s)
		dst = appendVarint(dst, c.decided[s])
	}

	dst = appendU64Map(dst, c.maxSeen)
	dst = appendU64Map(dst, c.hwm)

	dst = appendUvarint(dst, uint64(len(c.peerApplied)))
	pids := make([]int, 0, len(c.peerApplied))
	for p := range c.peerApplied {
		pids = append(pids, int(p))
	}
	sort.Ints(pids)
	for _, p := range pids {
		dst = appendUvarint(dst, uint64(p))
		dst = appendUvarint(dst, c.peerApplied[core.ProcessID(p)])
	}

	if c.cur == nil {
		return append(dst, 0)
	}

	// Frozen-window quotient: once the running round has reached the
	// MaxRound bound, its collection window never closes again (the
	// transition is refused by construction), so the heard set, jump
	// target, buffered future rounds, and the instance's own state are
	// all DEAD — no future behavior can read them. Only the slot number
	// stays live (a sync-delivered decision for it drops the run).
	// Encoding just the slot merges every heard/target/instance variant
	// of a frozen window into one state — without it, delivering round
	// messages into frozen windows multiplies the explored space by
	// each window's 2^(n-1) heard subsets, purely as noise.
	if c.cfg.MaxRound > 0 && c.cur.r >= c.cfg.MaxRound {
		dst = append(dst, 2)
		return appendUvarint(dst, c.cur.slot)
	}

	dst = append(dst, 1)
	dst = appendUvarint(dst, c.cur.slot)
	dst = appendUvarint(dst, uint64(c.cur.r))
	target := c.cur.target
	if c.cfg.MaxRound > 0 && target > c.cfg.MaxRound {
		// Any target beyond the bound behaves identically (closed() only
		// asks whether it exceeds the current round).
		target = c.cfg.MaxRound
	}
	dst = appendUvarint(dst, uint64(target))
	if sa, ok := c.cur.inst.(stateAppender); ok {
		dst = sa.AppendState(dst)
	} else {
		rec, ok := c.cur.inst.(core.Recoverable)
		if !ok {
			panic(fmt.Sprintf("live: model checking requires a core.Recoverable algorithm, got %T", c.cur.inst))
		}
		dst = fmt.Appendf(dst, "%#v", rec.Snapshot())
	}
	dst = c.appendHeard(dst, c.cur.heard)
	rounds := make([]int, 0, len(c.cur.future))
	for r := range c.cur.future {
		// Future rounds at or past the bound merge into a frozen window
		// if ever entered: dead for the same reason.
		if c.cfg.MaxRound > 0 && core.Round(r) >= c.cfg.MaxRound {
			continue
		}
		rounds = append(rounds, int(r))
	}
	sort.Ints(rounds)
	dst = appendUvarint(dst, uint64(len(rounds)))
	for _, r := range rounds {
		dst = appendUvarint(dst, uint64(r))
		dst = c.appendHeard(dst, c.cur.future[core.Round(r)])
	}
	return dst
}

// appendEntrySlice canonically encodes an entry slice via the batch codec.
func (c *ReplicaCore[C]) appendEntrySlice(dst []byte, entries []Entry[C]) []byte {
	b := c.cfg.Batch.AppendEntries(nil, entries)
	dst = appendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// appendHeard canonically encodes one round's heard map via the message
// codec.
func (c *ReplicaCore[C]) appendHeard(dst []byte, heard map[core.ProcessID]core.Message) []byte {
	pids := make([]int, 0, len(heard))
	for p := range heard {
		pids = append(pids, int(p))
	}
	sort.Ints(pids)
	dst = appendUvarint(dst, uint64(len(pids)))
	for _, p := range pids {
		dst = appendUvarint(dst, uint64(p))
		b, err := c.cfg.Msg.Encode(heard[core.ProcessID(p)])
		if err != nil {
			b = []byte("!enc")
		}
		dst = appendUvarint(dst, uint64(len(b)))
		dst = append(dst, b...)
	}
	return dst
}

// appendU64Map canonically encodes a uint64→uint64 map.
func appendU64Map(dst []byte, m map[uint64]uint64) []byte {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	dst = appendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		dst = appendUvarint(dst, k)
		dst = appendUvarint(dst, m[k])
	}
	return dst
}
