// The round driver: pacing of one core.Instance through
// communication-closed rounds. This is the live counterpart of
// core.Runner.StepRound — same contract (rounds strictly increasing,
// every round exactly once, inbox slice call-scoped), different clock:
// instead of an HOProvider choosing heard-of sets, HO(p, r) is whatever
// arrived before the round closed.
//
// A round closes when the first of these happens:
//
//   - all n round-r messages arrived (the good-period fast path: in a
//     synchronous spell every round closes at network speed, not at the
//     timeout — the live realization of the paper's good periods);
//   - any peer was observed already past round r (it closed r without
//     us; a round-r message can no longer reach it, so the driver
//     transitions immediately and fast-forwards to the highest round
//     seen, consuming buffered messages on the way). This jump rule is
//     what keeps processes ROUND-ALIGNED: without it, two survivors of a
//     larger group can drift a constant number of rounds apart and stay
//     there forever — the leader drops the laggard's stale rounds while
//     both advance at one timeout per round — and no phase ever
//     completes. Jumping re-aligns a laggard in one hop and only ever
//     shrinks heard-of sets, which the algorithm layer absorbs;
//   - the per-round timeout fires (the bad-period slow path).
//
// Cutting a round short only shrinks HO(p, r), which the algorithm layer
// already tolerates by construction — that is the entire point of the
// abstraction.
//
// The driver is a pure state machine (slotRun): it advances on delivered
// messages and timeout EVENTS, never on a clock of its own, so the same
// code runs under the replica's goroutine shell (which turns timer fires
// into events) and under the exhaustive model checker (which enumerates
// event interleavings). Time lives in the shell; the protocol lives here.

package live

import (
	"heardof/internal/core"
)

// slotRun is the round-driver state of one consensus slot: the instance,
// the current round's partial heard-of set, buffered future-round
// messages, and the highest peer round observed (the jump target).
type slotRun struct {
	slot   uint64
	inst   core.Instance
	r      core.Round
	heard  map[core.ProcessID]core.Message
	future map[core.Round]map[core.ProcessID]core.Message
	target core.Round
}

// newSlotRun opens a slot's one instance at round 0; the caller advances
// into round 1 with beginRound.
func newSlotRun(slot uint64, inst core.Instance) *slotRun {
	return &slotRun{
		slot:   slot,
		inst:   inst,
		future: make(map[core.Round]map[core.ProcessID]core.Message),
	}
}

// deliver records one decoded round message. It reports whether the
// current round's collection window is now closed (all heard, or — unless
// the jump rule is mutated out — a peer was seen past the current round).
func (s *slotRun) deliver(n int, from core.ProcessID, round core.Round, payload core.Message, noJump bool) (closed bool) {
	if round > s.target {
		s.target = round
	}
	switch {
	case round < s.r:
		// A stale round: its HO membership window has closed.
	case round == s.r:
		if _, dup := s.heard[from]; !dup {
			s.heard[from] = payload
		}
	default:
		fr := s.future[round]
		if fr == nil {
			fr = make(map[core.ProcessID]core.Message, n)
			s.future[round] = fr
		}
		if _, dup := fr[from]; !dup {
			fr[from] = payload
		}
	}
	return s.closed(n, noJump)
}

// closed reports whether the current round's collection window is over:
// every process heard, or (jump rule) a peer observed past this round.
func (s *slotRun) closed(n int, noJump bool) bool {
	if len(s.heard) >= n {
		return true
	}
	return !noJump && s.target > s.r
}

// inbox assembles the closed round's messages in process order:
// deterministic given the heard set, mirroring the simulator's
// presentation.
func (s *slotRun) inbox(n int) []core.IncomingMessage {
	msgs := make([]core.IncomingMessage, 0, len(s.heard))
	for q := 0; q < n; q++ {
		if pl, ok := s.heard[core.ProcessID(q)]; ok {
			msgs = append(msgs, core.IncomingMessage{From: core.ProcessID(q), Payload: pl})
		}
	}
	return msgs
}

// enter moves to round r: adopt its buffered future messages as the heard
// set and self-deliver payload (self-delivery never crosses the network).
func (s *slotRun) enter(n int, r core.Round, self core.ProcessID, payload core.Message) {
	s.r = r
	s.heard = s.future[r]
	delete(s.future, r)
	if s.heard == nil {
		s.heard = make(map[core.ProcessID]core.Message, n)
	}
	s.heard[self] = payload
}
