// The round driver: real-time pacing of one core.Instance through
// communication-closed rounds. This is the live counterpart of
// core.Runner.StepRound — same contract (rounds strictly increasing,
// every round exactly once, inbox slice call-scoped), different clock:
// instead of an HOProvider choosing heard-of sets, HO(p, r) is whatever
// arrived before the round closed.
//
// A round closes when the first of these happens:
//
//   - all n round-r messages arrived (the good-period fast path: in a
//     synchronous spell every round closes at network speed, not at the
//     timeout — the live realization of the paper's good periods);
//   - any peer was observed already past round r (it closed r without
//     us; a round-r message can no longer reach it, so the driver
//     transitions immediately and fast-forwards to the highest round
//     seen, consuming buffered messages on the way). This jump rule is
//     what keeps processes ROUND-ALIGNED: without it, two survivors of a
//     larger group can drift a constant number of rounds apart and stay
//     there forever — the leader drops the laggard's stale rounds while
//     both advance at one timeout per round — and no phase ever
//     completes. Jumping re-aligns a laggard in one hop and only ever
//     shrinks heard-of sets, which the algorithm layer absorbs;
//   - the per-round timeout fires (the bad-period slow path).
//
// Cutting a round short only shrinks HO(p, r), which the algorithm layer
// already tolerates by construction — that is the entire point of the
// abstraction.

package live

import (
	"context"
	"time"

	"heardof/internal/core"
)

// roundMsg is a decoded round-r message for the slot being driven.
type roundMsg struct {
	From    core.ProcessID
	Round   core.Round
	Payload core.Message
}

// slotReport is the outcome of driving one instance.
type slotReport struct {
	Decided bool
	Value   core.Value
	Rounds  core.Round // rounds executed before returning
	Aborted bool       // stopped because the slot was decided externally
}

// runSlot paces inst through rounds over send/in until it decides, the
// abort channel closes (the replica learned the slot's decision through
// sync), or the context ends. There is deliberately NO round budget: a
// slot that cannot reach quorum (partition, paused majority) keeps
// executing rounds at timeout pace until the environment heals or the
// decision arrives externally. Restarting a slot with a fresh instance
// would discard the algorithm's locked state (LastVoting's vote and
// timestamp) and allow a second attempt to decide differently from a
// first-attempt decision the retrier never saw — a genuine agreement
// violation, so one slot gets exactly one instance for the replica's
// lifetime. send broadcasts one round message to the peers; in carries
// decoded inbound round messages of this slot; timeout bounds each
// round's collection window.
func runSlot(ctx context.Context, self core.ProcessID, n int, inst core.Instance,
	send func(r core.Round, m core.Message), in <-chan roundMsg,
	abort <-chan struct{}, timeout time.Duration) slotReport {

	// future buffers messages for rounds beyond the current one; target
	// is the highest round any peer was seen in. Rounds at or below
	// target never wait: the driver fast-forwards through them, draining
	// the buffer, until it rejoins the group's frontier.
	future := make(map[core.Round]map[core.ProcessID]core.Message)
	var target core.Round

	timer := time.NewTimer(timeout)
	defer timer.Stop()

	for r := core.Round(1); ; r++ {
		payload := inst.Send(r)
		send(r, payload)

		heard := future[r]
		delete(future, r)
		if heard == nil {
			heard = make(map[core.ProcessID]core.Message, n)
		}
		heard[self] = payload // self-delivery never crosses the network

		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(timeout)

	collect:
		for len(heard) < n && target <= r {
			select {
			case m, ok := <-in:
				if !ok {
					return slotReport{Rounds: r - 1, Aborted: true}
				}
				if m.Round > target {
					target = m.Round
				}
				switch {
				case m.Round < r:
					// A stale round: its HO membership window has closed.
				case m.Round == r:
					if _, dup := heard[m.From]; !dup {
						heard[m.From] = m.Payload
					}
				default:
					fr := future[m.Round]
					if fr == nil {
						fr = make(map[core.ProcessID]core.Message, n)
						future[m.Round] = fr
					}
					if _, dup := fr[m.From]; !dup {
						fr[m.From] = m.Payload
					}
				}
			case <-timer.C:
				break collect
			case <-abort:
				return slotReport{Rounds: r - 1, Aborted: true}
			case <-ctx.Done():
				return slotReport{Rounds: r - 1, Aborted: true}
			}
		}

		// Deliver the inbox in process order: deterministic given the
		// heard set, mirroring the simulator's presentation.
		msgs := make([]core.IncomingMessage, 0, len(heard))
		for q := 0; q < n; q++ {
			if pl, ok := heard[core.ProcessID(q)]; ok {
				msgs = append(msgs, core.IncomingMessage{From: core.ProcessID(q), Payload: pl})
			}
		}
		inst.Transition(r, msgs)
		if v, ok := inst.Decided(); ok {
			return slotReport{Decided: true, Value: v, Rounds: r}
		}
	}
}
