// Package live is the real-time deployment runtime: it runs the SAME
// core.Instance algorithms (OneThirdRule, LastVoting) that every other
// layer of this repo executes inside the deterministic simulator, but over
// real asynchronous transports with real clocks — the first layer of the
// codebase that escapes simulated time.
//
// The paper's separation of concerns is preserved exactly. An algorithm
// is still the pair ⟨S_p^r, T_p^r⟩ behind core.Instance, and it still
// sees only communication-closed rounds and heard-of sets. What changes
// is the implementation layer below it (the role Algorithms 2–4 play in
// the paper): instead of a simulated good period, a per-round TIMEOUT
// bounds how long a process waits for round-r messages. When the network
// behaves — messages arrive within the timeout — every process hears
// everyone and the rounds realize P_otr-style predicates; when it does
// not, heard-of sets shrink, which at the algorithm layer is
// indistinguishable from the transmission faults of §2. Safety never
// depends on the timeout; only liveness does, exactly the paper's split.
//
// The runtime has three levels:
//
//   - Transport: best-effort envelope delivery between the n processes of
//     a group. ChanNetwork is the in-process goroutine/channel transport
//     (tests, single-binary deployments); TCPTransport speaks
//     length-prefixed frames over real sockets (multi-process
//     deployments). WithFaults wraps any transport with message loss,
//     delay, and process pause injection — faults are a property of the
//     environment, never of the algorithm.
//   - Round driver (runSlot): paces one core.Instance through rounds.
//     Each round broadcasts S_p^r, collects round-r messages until all n
//     arrived, any peer is observed already past r (the jump rule that
//     keeps processes round-aligned — see node.go), or the timeout
//     fires, then applies T_p^r. Messages for future rounds are buffered;
//     rounds are delivered to the instance in strictly increasing order,
//     as the core.Instance contract requires.
//   - Replica: a replicated-state-machine service over a sequence of
//     consensus slots — the live counterpart of internal/rsm. Commands
//     are disseminated as identified batches (the decided core.Value is a
//     batch id, unique by construction: proposer ⊕ counter), client
//     sessions carry (client, seq) identities with high-water-mark dedup
//     so every command applies exactly once, and decided slots propagate
//     to laggards through a pull/push sync protocol that doubles as the
//     decide-retransmission and crash-rejoin path.
//
// Everything here is intentionally NOT deterministic: runs race real
// goroutines against real timers. Tests therefore assert invariants
// (agreement, exactly-once apply, bounded catch-up) rather than byte
// outputs; the simulator layers retain the byte-determinism contracts.
// See DESIGN.md §9 for the full simulation-vs-live boundary table.
package live

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"heardof/internal/core"
	"heardof/internal/xrand"
)

// Kind discriminates envelope payloads on the wire.
type Kind uint8

const (
	// KindRound carries one consensus round message S_p^r.
	KindRound Kind = iota + 1
	// KindBatch disseminates a command batch: varint batch id, then the
	// BatchCodec encoding of its entries.
	KindBatch
	// KindBatchPull requests a batch by id (varint batch id).
	KindBatchPull
	// KindSync pushes decided slots to a laggard: uvarint pair count,
	// then (uvarint slot, varint batch id) pairs.
	KindSync
	// KindSyncPull asks peers for decisions from a slot on (uvarint
	// first slot wanted).
	KindSyncPull
)

// Envelope is the unit of transport delivery. Group multiplexes several
// replication groups over one transport (see Mux); Slot and Round
// position consensus messages; From identifies the sender (the runtime is
// not Byzantine-tolerant — peers are trusted, as in the paper).
type Envelope struct {
	Group   uint32
	Slot    uint64
	Round   core.Round
	From    core.ProcessID
	Kind    Kind
	Payload []byte
}

// Transport is best-effort, FIFO-less envelope delivery among the n
// processes of a deployment. Send must never block indefinitely and may
// drop (a dropped message is a transmission fault — the HO abstraction
// absorbs it). Recv returns the inbound channel; it is closed by Close.
type Transport interface {
	Send(to core.ProcessID, env Envelope)
	Recv() <-chan Envelope
	Close() error
}

// Codec translates algorithm round messages to bytes. Implementations
// live next to their algorithm (otr.WireCodec, lastvoting.WireCodec) so
// unexported payload types stay unexported. A nil core.Message (the HO
// model's null message, "sends nothing relevant") must round-trip: the
// live runtime still transmits it, because hearing a process — even with
// a null payload — is membership in HO(p, r), which algorithms like
// OneThirdRule count.
type Codec interface {
	Encode(m core.Message) ([]byte, error)
	Decode(b []byte) (core.Message, error)
}

// maxFrame bounds a single decoded envelope (and a TCP frame).
const maxFrame = 1 << 20

// AppendEnvelope encodes env after dst: uvarint group, slot, round, from,
// one kind byte, then the raw payload.
//
//holint:hotpath
func AppendEnvelope(dst []byte, env Envelope) []byte {
	dst = binary.AppendUvarint(dst, uint64(env.Group))
	dst = binary.AppendUvarint(dst, env.Slot)
	dst = binary.AppendUvarint(dst, uint64(env.Round))
	dst = binary.AppendUvarint(dst, uint64(env.From))
	dst = append(dst, byte(env.Kind))
	return append(dst, env.Payload...)
}

// errMalformed reports an undecodable envelope or payload. The
// per-field variants below wrap it once, at package level, so the
// decode path returns a preallocated sentinel instead of formatting a
// fresh error per rejected frame — a hostile peer spraying garbage
// must not be able to drive the receiver's allocator. All of them
// satisfy errors.Is(err, errMalformed).
var (
	errMalformed   = errors.New("live: malformed message")
	errFrameTooBig = fmt.Errorf("%w: frame exceeds %d bytes", errMalformed, maxFrame)
	errBadGroup    = fmt.Errorf("%w: group", errMalformed)
	errBadSlot     = fmt.Errorf("%w: slot", errMalformed)
	errBadRound    = fmt.Errorf("%w: round", errMalformed)
	errBadSender   = fmt.Errorf("%w: sender", errMalformed)
	errBadKind     = fmt.Errorf("%w: kind", errMalformed)
)

// DecodeEnvelope parses one encoded envelope. The returned payload
// aliases b.
//
//holint:hotpath
func DecodeEnvelope(b []byte) (Envelope, error) {
	var env Envelope
	if len(b) > maxFrame {
		return env, errFrameTooBig
	}
	group, n := binary.Uvarint(b)
	if n <= 0 || group > 1<<32-1 {
		return env, errBadGroup
	}
	b = b[n:]
	slot, n := binary.Uvarint(b)
	if n <= 0 {
		return env, errBadSlot
	}
	b = b[n:]
	round, n := binary.Uvarint(b)
	if n <= 0 || round > 1<<31 {
		return env, errBadRound
	}
	b = b[n:]
	from, n := binary.Uvarint(b)
	if n <= 0 || from >= uint64(core.MaxProcesses) {
		return env, errBadSender
	}
	b = b[n:]
	if len(b) < 1 {
		return env, errBadKind
	}
	kind := Kind(b[0])
	if kind < KindRound || kind > KindSyncPull {
		return env, errBadKind
	}
	env = Envelope{
		Group: uint32(group), Slot: slot, Round: core.Round(round),
		From: core.ProcessID(from), Kind: kind, Payload: b[1:],
	}
	return env, nil
}

// Faults is the transport-layer fault environment of one process: iid
// message loss, uniform send delay, and pause (a paused process neither
// sends nor hears — the live analogue of a crashed process whose
// volatile timers keep running, or of a network partition of one).
// All knobs may be flipped while traffic flows.
type Faults struct {
	mu        sync.Mutex
	rng       *xrand.Rand
	loss      float64
	delayLo   time.Duration
	delayHi   time.Duration
	paused    bool
	dropped   int
	delivered int
}

// NewFaults returns a fault environment with no faults enabled. seed
// drives the loss/delay draws (real time still makes runs nondeterministic;
// the seed only decouples tests from each other).
func NewFaults(seed uint64) *Faults {
	return &Faults{rng: xrand.New(seed)}
}

// SetLoss sets the iid per-message drop probability in [0, 1).
func (f *Faults) SetLoss(p float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.loss = p
}

// SetDelay sets the uniform per-message send delay range.
func (f *Faults) SetDelay(lo, hi time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.delayLo, f.delayHi = lo, hi
}

// SetPaused pauses or resumes the process: while paused every inbound and
// outbound message is dropped.
func (f *Faults) SetPaused(p bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.paused = p
}

// Dropped returns the number of messages this environment has eaten.
func (f *Faults) Dropped() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

// sendFate draws the fate of one outbound message.
func (f *Faults) sendFate() (drop bool, delay time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.paused || (f.loss > 0 && f.rng.Bool(f.loss)) {
		f.dropped++
		return true, 0
	}
	f.delivered++
	if f.delayHi > f.delayLo {
		return false, f.delayLo + time.Duration(f.rng.Intn(int(f.delayHi-f.delayLo)))
	}
	return false, f.delayLo
}

// recvDrop reports whether an inbound message is eaten (pause only: loss
// is charged once, on the sending side).
func (f *Faults) recvDrop() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.paused {
		f.dropped++
		return true
	}
	return false
}

// faultTransport wraps a Transport with a Faults environment.
type faultTransport struct {
	inner Transport
	f     *Faults
	out   chan Envelope
	wg    sync.WaitGroup
}

// WithFaults wraps t so that every send and receive passes through the
// fault environment f. Close closes the inner transport and waits for
// the pump goroutine to drain out.
func WithFaults(t Transport, f *Faults) Transport {
	ft := &faultTransport{inner: t, f: f, out: make(chan Envelope, 1024)}
	ft.wg.Add(1)
	go ft.pump()
	return ft
}

// Send implements Transport.
func (ft *faultTransport) Send(to core.ProcessID, env Envelope) {
	drop, delay := ft.f.sendFate()
	if drop {
		return
	}
	if delay > 0 {
		time.AfterFunc(delay, func() { ft.inner.Send(to, env) })
		return
	}
	ft.inner.Send(to, env)
}

// Recv implements Transport.
func (ft *faultTransport) Recv() <-chan Envelope { return ft.out }

// Close implements Transport: it closes the inner transport (whose
// Recv close terminates the pump) and awaits the pump's exit, so no
// goroutine outlives the transport.
func (ft *faultTransport) Close() error {
	err := ft.inner.Close()
	ft.wg.Wait()
	return err
}

// pump filters the inbound stream through the pause gate. It exits
// when the inner transport's Recv channel closes (on Close).
func (ft *faultTransport) pump() {
	defer ft.wg.Done()
	for env := range ft.inner.Recv() {
		if ft.f.recvDrop() {
			continue
		}
		select {
		case ft.out <- env:
		default: // backpressure = loss, the HO-friendly overflow policy
		}
	}
	close(ft.out)
}

// Mux multiplexes several replication groups over one Transport: each
// group registers a Link, envelopes route by Envelope.Group, and
// unroutable envelopes are dropped. One server process hosting a replica
// of every group (the cmd/hoserve deployment shape) runs one transport
// and one Mux.
type Mux struct {
	tr Transport

	mu     sync.Mutex
	groups map[uint32]chan Envelope
}

// NewMux starts routing t's inbound stream. Close the underlying
// transport to stop it; every link's Recv channel closes when the
// transport's does.
func NewMux(t Transport) *Mux {
	m := &Mux{tr: t, groups: make(map[uint32]chan Envelope)}
	//holint:allow goleak route's lifetime IS the transport's: the underlying Recv close drains and exits it, and Mux deliberately exposes no Close of its own (the transport owns the lifecycle)
	go m.route()
	return m
}

// Link registers a group endpoint. The returned Link implements
// Transport scoped to that group. buffer sizes its inbound channel.
func (m *Mux) Link(group uint32, buffer int) *Link {
	if buffer < 1 {
		buffer = 256
	}
	ch := make(chan Envelope, buffer)
	m.mu.Lock()
	m.groups[group] = ch
	m.mu.Unlock()
	return &Link{mux: m, group: group, in: ch}
}

// route demultiplexes until the transport closes, then closes every
// group channel.
func (m *Mux) route() {
	for env := range m.tr.Recv() {
		m.mu.Lock()
		ch := m.groups[env.Group]
		m.mu.Unlock()
		if ch == nil {
			continue
		}
		select {
		case ch <- env:
		default: // a slow group loses messages, not the whole process
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, ch := range m.groups {
		close(ch)
	}
}

// Varint shorthands shared by the payload encoders.
func appendUvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }
func appendVarint(dst []byte, v int64) []byte   { return binary.AppendVarint(dst, v) }
func uvarint(b []byte) (uint64, int)            { return binary.Uvarint(b) }
func varint(b []byte) (int64, int)              { return binary.Varint(b) }

// Link is one group's view of a multiplexed transport.
type Link struct {
	mux   *Mux
	group uint32
	in    chan Envelope
}

var _ Transport = (*Link)(nil)

// Send implements Transport, stamping the link's group.
func (l *Link) Send(to core.ProcessID, env Envelope) {
	env.Group = l.group
	l.mux.tr.Send(to, env)
}

// Recv implements Transport.
func (l *Link) Recv() <-chan Envelope { return l.in }

// Close implements Transport. Closing a link is a no-op: the shared
// transport owns the lifecycle (close IT to stop every group).
func (l *Link) Close() error { return nil }
