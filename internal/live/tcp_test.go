package live

import (
	"net"
	"testing"
	"time"

	"heardof/internal/core"
	"heardof/internal/lastvoting"
)

// TestTCPListenerRestartRejoins runs a 3-replica group over real
// sockets and crash-recovers one replica the hard way: its listener is
// closed mid-run, the group commits commands without it, and then a
// fresh replica rebinds the SAME address and rejoins with empty state.
// The surviving peers' writers must reconnect through their dial
// backoff, the rejoiner must rebuild the whole log via the sync path,
// and session dedup must hold across the restart: a retried sequence
// number is refused as a duplicate even by the replica that learned
// the client's history purely through replication.
//
// The crash happens BEFORE p2 applies anything: batch retention prunes
// a slot's contents once every replica has applied it, so an
// empty-state rejoin is only recoverable while the GC horizon is still
// pinned by the crashed peer (exactly the retention analysis the model
// checker's gc-needed-batch invariant encodes). A replica that loses
// its state after the whole group applied needs a state-transfer
// mechanism this layer does not have.
func TestTCPListenerRestartRejoins(t *testing.T) {
	const n = 3
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for p := 0; p < n; p++ {
		ln, err := ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[p] = ln
		addrs[p] = ln.Addr().String()
	}

	transports := make([]*TCPTransport, n)
	reps := make([]*Replica[string], n)
	logs := make([]*applyLog, n)
	newNode := func(p core.ProcessID, ln net.Listener) (*TCPTransport, *Replica[string], *applyLog) {
		tr, err := NewTCP(p, ln, addrs)
		if err != nil {
			t.Fatal(err)
		}
		lg := &applyLog{}
		// LastVoting, not OTR: its majority quorums keep deciding with one
		// of three replicas crashed (OTR's >2n/3 threshold cannot).
		rep, err := NewReplica(ReplicaConfig[string]{
			Self: p, N: n,
			Algorithm: lastvoting.Algorithm{},
			Msg:       lastvoting.WireCodec{},
			Batch:     strCodec{},
			Transport: tr,
			Apply:     lg.hook,
			// Brisk pacing: rejoin latency is dial backoff + a couple of
			// sync heartbeats, and the test waits on real sockets.
			RoundTimeout: time.Millisecond,
			SyncEvery:    20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep.Start()
		return tr, rep, lg
	}
	for p := 0; p < n; p++ {
		transports[p], reps[p], logs[p] = newNode(core.ProcessID(p), lns[p])
	}
	defer func() {
		for p := 0; p < n; p++ {
			if reps[p] != nil {
				reps[p].Stop()
			}
			if transports[p] != nil {
				transports[p].Close()
			}
		}
	}()

	submit := func(seq uint64, cmd string) {
		t.Helper()
		ch, err := reps[0].Submit(1, seq, cmd)
		if err != nil {
			t.Fatal(err)
		}
		res := waitApplied(t, ch, 10*time.Second, cmd)
		if res.Dup {
			t.Fatalf("%s: fresh submission resolved as duplicate", cmd)
		}
	}

	// Crash-stop p2 before any traffic: replica halted, listener and
	// connections torn down, GC horizon pinned at its commit index 0.
	reps[2].Stop()
	transports[2].Close()
	reps[2], transports[2] = nil, nil

	// Phase 1: the survivors are a majority; commits must flow while
	// every frame sent to p2's dead address is lost (each failed dial
	// exercises the writer's backoff-and-retry path).
	submit(1, "c1")
	submit(2, "c2")
	submit(3, "c3")
	submit(4, "c4")

	// Restart: rebind the SAME address (retry — the old listener's close
	// may still be settling) and rejoin with a brand-new replica whose
	// core has no memory of phases 1–2.
	var ln2 net.Listener
	waitFor(t, 5*time.Second, "rebind p2's address", func() bool {
		var err error
		ln2, err = ListenTCP(addrs[2])
		return err == nil
	})
	transports[2], reps[2], logs[2] = newNode(2, ln2)

	// Phase 2: more traffic after the restart; the rejoiner must both
	// replay the history it missed and follow new commits.
	submit(5, "c5")
	waitFor(t, 10*time.Second, "p2 rebuilds the full log", func() bool {
		h0, l0 := reps[0].LogHash()
		h2, l2 := reps[2].LogHash()
		return l2 == l0 && h2 == h0 && reps[2].Stats().Applied == reps[0].Stats().Applied
	})

	// Dedup across the restart: p2 learned client 1's history purely via
	// batch replay, yet its high-water mark must refuse the retry.
	ch, err := reps[2].Submit(1, 2, "c2-retry")
	if err != nil {
		t.Fatal(err)
	}
	if res := waitApplied(t, ch, 5*time.Second, "c2-retry"); !res.Dup {
		t.Fatalf("restarted replica re-accepted an applied sequence number: %+v", res)
	}

	// Every replica applied each command exactly once, in log order.
	want := []string{"c1", "c2", "c3", "c4", "c5"}
	for p := 0; p < n; p++ {
		got := logs[p].snapshot()
		if len(got) != len(want) {
			t.Fatalf("replica %d applied %v, want %v", p, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("replica %d applied %v, want %v", p, got, want)
			}
		}
		if d := reps[p].Stats().Divergent; d != 0 {
			t.Fatalf("replica %d observed %d divergent decisions", p, d)
		}
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
