package live

import (
	"fmt"
	"testing"
	"time"

	"heardof/internal/otr"
	"heardof/internal/wal"
)

// benchSlot measures committed slots per second through a single-node
// replica (n=1 decides locally, so the cost is the shell dispatch, the
// core step, and — when persist is non-nil — the write-ahead sync).
// The three variants bound the durability tax: volatile (PR-5
// behavior), buffered writes (NoSync), and full fsync-per-dispatch.
func benchSlot(b *testing.B, persist Persister) {
	net, err := NewChanNetwork(1, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer net.Close()
	lg := &applyLog{}
	rep, err := NewReplica(ReplicaConfig[string]{
		Self: 0, N: 1,
		Algorithm:     otr.Algorithm{},
		Msg:           otr.WireCodec{},
		Batch:         strCodec{},
		Transport:     net.Transport(0),
		Apply:         lg.hook,
		Persist:       persist,
		SnapshotEvery: -1, // isolate append cost from checkpoint cost
		RoundTimeout:  time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	rep.Start()
	defer rep.Stop()

	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		ch, _ := rep.SubmitNext(1, fmt.Sprintf("cmd-%d", i))
		if res := <-ch; res.Dup {
			b.Fatal("fresh submission reported as duplicate")
		}
	}
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "slots/sec")
}

func BenchmarkReplica_Volatile(b *testing.B) {
	benchSlot(b, nil)
}

func BenchmarkReplica_PersistedSlotNoSync(b *testing.B) {
	s, _, err := wal.Open(b.TempDir(), wal.Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	benchSlot(b, s)
}

func BenchmarkReplica_PersistedSlot(b *testing.B) {
	s, _, err := wal.Open(b.TempDir(), wal.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	benchSlot(b, s)
}
