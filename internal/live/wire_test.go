package live

import (
	"bytes"
	"testing"
	"time"

	"heardof/internal/core"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	cases := []Envelope{
		{Group: 0, Slot: 1, Round: 1, From: 0, Kind: KindRound, Payload: []byte{1, 2, 3}},
		{Group: 7, Slot: 1 << 40, Round: 9999, From: 63, Kind: KindSyncPull, Payload: nil},
		{Group: 1<<32 - 1, Slot: 0, Round: 0, From: 5, Kind: KindBatch, Payload: bytes.Repeat([]byte{0xAB}, 512)},
	}
	for _, want := range cases {
		enc := AppendEnvelope(nil, want)
		got, err := DecodeEnvelope(enc)
		if err != nil {
			t.Fatalf("decode(%+v): %v", want, err)
		}
		if got.Group != want.Group || got.Slot != want.Slot || got.Round != want.Round ||
			got.From != want.From || got.Kind != want.Kind || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
	}
}

func TestEnvelopeDecodeRejectsMalformed(t *testing.T) {
	good := AppendEnvelope(nil, Envelope{Group: 1, Slot: 2, Round: 3, From: 4, Kind: KindRound})
	cases := map[string][]byte{
		"empty":      nil,
		"truncated":  good[:2],
		"no kind":    good[:len(good)-1],
		"bad kind":   append(good[:len(good)-1:len(good)-1], 0xFF),
		"bad sender": AppendEnvelope(nil, Envelope{From: core.ProcessID(core.MaxProcesses), Kind: KindRound}),
	}
	for name, b := range cases {
		if _, err := DecodeEnvelope(b); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestChanNetworkDelivers(t *testing.T) {
	net, err := NewChanNetwork(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	t0, t2 := net.Transport(0), net.Transport(2)
	t0.Send(2, Envelope{Slot: 9, Kind: KindRound, Payload: []byte("hi")})
	select {
	case env := <-t2.Recv():
		if env.From != 0 || env.Slot != 9 || string(env.Payload) != "hi" {
			t.Fatalf("got %+v", env)
		}
	case <-time.After(time.Second):
		t.Fatal("message never arrived")
	}
}

func TestFaultsPauseDropsBothDirections(t *testing.T) {
	net, err := NewChanNetwork(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	f := NewFaults(1)
	paused := WithFaults(net.Transport(0), f)
	other := net.Transport(1)

	f.SetPaused(true)
	paused.Send(1, Envelope{Kind: KindRound})
	other.Send(0, Envelope{Kind: KindRound})
	time.Sleep(20 * time.Millisecond)
	select {
	case env := <-other.Recv():
		t.Fatalf("paused process leaked a send: %+v", env)
	default:
	}
	select {
	case env := <-paused.Recv():
		t.Fatalf("paused process heard a message: %+v", env)
	default:
	}
	if f.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", f.Dropped())
	}

	f.SetPaused(false)
	other.Send(0, Envelope{Kind: KindRound, Payload: []byte("back")})
	select {
	case env := <-paused.Recv():
		if string(env.Payload) != "back" {
			t.Fatalf("got %+v", env)
		}
	case <-time.After(time.Second):
		t.Fatal("resumed process hears nothing")
	}
}

func TestFaultsLossDropsRoughlyAtRate(t *testing.T) {
	net, err := NewChanNetwork(2, 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	f := NewFaults(42)
	f.SetLoss(0.3)
	lossy := WithFaults(net.Transport(0), f)
	const total = 2000
	for i := 0; i < total; i++ {
		lossy.Send(1, Envelope{Kind: KindRound})
	}
	d := f.Dropped()
	if d < total/5 || d > total/2 {
		t.Fatalf("dropped %d of %d at rate 0.3 — loss injection broken", d, total)
	}
}
