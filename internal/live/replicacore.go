// ReplicaCore: the replica protocol as a pure step function. Everything
// that makes the live replica a PROTOCOL — round-message delivery into
// the per-slot instance, batch dissemination and adopt-newest-offered
// proposals, push/pull decision sync, apply-side (client,seq) dedup, and
// batch GC against the min-peer-applied horizon — lives here as
//
//	state × event → state′ × outbound envelopes × applied entries
//
// with no goroutines, channels, clocks, or I/O. Two consumers drive it:
//
//   - Replica (replica.go), the production shell: one goroutine feeds
//     transport deliveries, round-timeout fires, and heartbeat ticks in
//     as events, sends the returned envelopes, and resolves waiters for
//     the returned applied entries. Real time exists only there.
//   - The exhaustive model checker (internal/modelcheck), which clones
//     cores, enumerates every interleaving of the same events over a
//     message soup, and checks safety invariants on each reachable
//     state. Because both run THIS code, what the checker verifies is
//     the deployed protocol, not a hand-written model of it.
//
// Within one Step the core self-drives to a local fixpoint: any event
// may unblock applying decided slots, which may free the core to start
// the next slot's consensus, which may (for n=1 or a jumped backlog)
// close rounds immediately. Events are therefore coarse "something
// happened" edges; the core owns all protocol sequencing.

package live

import (
	"errors"
	"fmt"

	"heardof/internal/core"
)

// Mutation re-introduces a previously fixed protocol bug, for the model
// checker's seeded-mutant suite (DESIGN.md §10): each mutant must make
// the checker report a violation, proving the checker would have caught
// the original bug. Production configurations MUST leave this zero;
// NewReplica rejects anything else.
type Mutation uint16

const (
	// MutFreshRetry restarts an undecided slot with a fresh instance
	// after RetryAfter rounds — the pre-PR-5-review bug that discarded
	// LastVoting's locked vote (x_p, ts_p) and let a second attempt
	// decide differently from a first-attempt decision it never saw.
	MutFreshRetry Mutation = 1 << iota
	// MutNoJump disables the jump rule (see node.go): a process never
	// closes a round early on observing a peer beyond it. Two survivors
	// of a larger group can then drift a constant number of rounds apart
	// forever — the livelock the jump rule was introduced to fix.
	MutNoJump
	// MutForgetVote makes crash-RECOVERY drop the persisted locked vote
	// (RestoreReplicaCore skips re-installing it): the recovered replica
	// restarts its slot from scratch and can help decide a value a
	// pre-crash quorum that included its vote already contradicts — the
	// split decision durability exists to prevent.
	MutForgetVote
)

// CoreConfig parameterizes one process's protocol core. It is the
// protocol subset of ReplicaConfig: no transport, no timeouts, no apply
// hook — those belong to the shell driving the core.
type CoreConfig[C any] struct {
	// Self and N identify this process within the group's n processes.
	Self core.ProcessID
	N    int
	// Algorithm decides each slot; Msg is its wire codec.
	Algorithm core.Algorithm
	Msg       Codec
	// Batch serializes command batches.
	Batch BatchCodec[C]
	// MaxBatch caps commands per proposal (default 64).
	MaxBatch int

	// Persist, when non-nil, receives every protocol fact that must be
	// durable (see persist.go). The core only buffers saves; the shell
	// owns the Sync barrier. Nil means volatile operation.
	Persist Persister

	// Mutation re-enables a seeded protocol bug (model checker only).
	Mutation Mutation
	// RetryAfter is MutFreshRetry's trigger: rounds before an undecided
	// slot is restarted with a fresh instance (default 5 when mutated).
	RetryAfter core.Round

	// MaxRound, when nonzero, freezes a slot's round progression at that
	// round: the collection window of round MaxRound never closes. This
	// is a model-checking bound (rounds are unbounded in production —
	// the checker needs a finite state space) and must be zero in the
	// shell.
	MaxRound core.Round
	// MaxSlots, when nonzero, stops the core from STARTING consensus for
	// slots beyond it (externally decided slots still apply). A model
	// bound like MaxRound; zero in the shell.
	MaxSlots uint64
}

// EventKind discriminates core events.
type EventKind uint8

const (
	// EvEnvelope delivers one inbound transport envelope.
	EvEnvelope EventKind = iota + 1
	// EvSubmit accepts a local command under a client session.
	EvSubmit
	// EvRoundTimeout closes the running round's collection window (the
	// shell's per-round timer fired; the checker schedules it freely).
	EvRoundTimeout
	// EvTick is the idle anti-entropy edge: re-pull a missing decided
	// batch, or probe peers for decisions when fully idle.
	EvTick
	// EvNudge carries no input; it just lets the core re-run its
	// advance fixpoint (used by the shell after Submit registered work).
	EvNudge
)

// Event is one core input.
type Event[C any] struct {
	Kind EventKind
	// Env is EvEnvelope's payload.
	Env Envelope
	// Client, Seq, Cmd are EvSubmit's payload.
	Client, Seq uint64
	Cmd         C
}

// Outbound is one envelope the step wants transmitted. To == AllPeers
// broadcasts to every process but self.
type Outbound struct {
	To  core.ProcessID
	Env Envelope
}

// AllPeers broadcasts an outbound envelope to the whole group.
const AllPeers = core.ProcessID(-1)

// AppliedEntry reports one entry committed by a step, in commit order.
// Fresh entries passed session dedup (the shell runs the Apply hook and
// counts them); stale ones resolve as duplicates.
type AppliedEntry[C any] struct {
	Slot  uint64
	Entry Entry[C]
	Fresh bool
}

// StepResult is everything a step asks its driver to do.
type StepResult[C any] struct {
	// Out lists envelopes to transmit, in order.
	Out []Outbound
	// Applied lists entries committed by this step, in commit order.
	Applied []AppliedEntry[C]
	// SubmitDup reports that an EvSubmit's sequence number was at or
	// below the client's applied high-water mark.
	SubmitDup bool
}

// ReplicaCore is the protocol state of one replica. It is NOT
// goroutine-safe: the shell serializes access under its mutex, the
// checker is single-threaded per exploration branch.
type ReplicaCore[C any] struct {
	cfg CoreConfig[C]

	pending   []Entry[C]
	batches   map[int64][]Entry[C]
	inLog     map[int64]bool     // batch ids a log slot decided (retention anchor)
	offered   map[int64]struct{} // peer batches not yet fully applied
	decided   map[uint64]int64   // slot → batch id, not yet applied
	maxSeen   map[uint64]uint64  // client → highest accepted seq
	log       []int64            // applied decisions; log[i] decided slot i+1
	logHash   uint64
	hwm       map[uint64]uint64 // client → highest applied seq
	batchSeq  int64
	poked     bool   // round traffic for our next slot arrived while idle
	blockedOn int64  // decided batch id whose contents are being pulled
	eagerPush uint64 // own-decided slot to push once applied

	// restoredVote holds a crash-recovered instance encoding until
	// consensus for its slot restarts and re-installs it (persist.go).
	restoredVote     []byte
	restoredVoteSlot uint64

	// peerApplied tracks each peer's last observed commit index (their
	// round messages carry their current slot; their sync pulls carry
	// applied+1). Batches of slots every replica has applied are pruned
	// — the GC horizon that keeps long-running servers bounded. A peer
	// that has never been heard from pins the horizon at 0.
	peerApplied map[core.ProcessID]uint64
	prunedTo    uint64

	cur *slotRun // non-nil while a slot instance runs

	stats ReplicaStats
}

// maxSyncPairs caps decisions per sync push.
const maxSyncPairs = 128

// NewReplicaCore validates the configuration and builds an idle core.
func NewReplicaCore[C any](cfg CoreConfig[C]) (*ReplicaCore[C], error) {
	if cfg.N < 1 || cfg.N > core.MaxProcesses {
		return nil, fmt.Errorf("live: group size %d out of range [1, %d]", cfg.N, core.MaxProcesses)
	}
	if int(cfg.Self) < 0 || int(cfg.Self) >= cfg.N {
		return nil, fmt.Errorf("live: self %d outside group of %d", cfg.Self, cfg.N)
	}
	if cfg.Algorithm == nil || cfg.Msg == nil || cfg.Batch == nil {
		return nil, errors.New("live: nil algorithm, codec, or batch codec")
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.Mutation&MutFreshRetry != 0 && cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 5
	}
	if cfg.Persist != nil {
		if _, ok := cfg.Algorithm.NewInstance(cfg.Self, cfg.N, 0).(statePersistent); !ok {
			return nil, fmt.Errorf("live: algorithm %T cannot persist instance state", cfg.Algorithm)
		}
	}
	return &ReplicaCore[C]{
		cfg:         cfg,
		batches:     make(map[int64][]Entry[C]),
		inLog:       make(map[int64]bool),
		offered:     make(map[int64]struct{}),
		decided:     make(map[uint64]int64),
		maxSeen:     make(map[uint64]uint64),
		hwm:         make(map[uint64]uint64),
		peerApplied: make(map[core.ProcessID]uint64),
		logHash:     14695981039346656037, // FNV-64 offset basis
	}, nil
}

// Step applies one event and self-drives to a fixpoint: apply every
// decided-and-fetchable slot, then start the next slot's consensus if
// there is work. The returned result is the step's complete effect.
func (c *ReplicaCore[C]) Step(ev Event[C]) StepResult[C] {
	var res StepResult[C]
	switch ev.Kind {
	case EvEnvelope:
		c.handleEnvelope(ev.Env, &res)
	case EvSubmit:
		c.handleSubmit(ev, &res)
	case EvRoundTimeout:
		if c.cur != nil {
			c.transitionRound(&res)
			c.closeRounds(&res)
		}
	case EvTick:
		c.handleTick(&res)
	case EvNudge:
	}
	c.advance(&res)
	return res
}

// ---------------------------------------------------------------------
// Event handlers.

// handleSubmit records a fresh submission (or flags a duplicate).
func (c *ReplicaCore[C]) handleSubmit(ev Event[C], res *StepResult[C]) {
	if ev.Seq > c.maxSeen[ev.Client] {
		c.maxSeen[ev.Client] = ev.Seq
	}
	if ev.Seq <= c.hwm[ev.Client] {
		res.SubmitDup = true
		return
	}
	for _, e := range c.pending {
		if e.Client == ev.Client && e.Seq == ev.Seq {
			return // a resubmission of a still-pending command
		}
	}
	c.pending = append(c.pending, Entry[C]{Client: ev.Client, Seq: ev.Seq, Cmd: ev.Cmd})
}

// Accept records a submission WITHOUT driving the protocol forward — the
// shell's submit path, which nudges its event loop to advance instead of
// running consensus on the submitter's goroutine. It reports whether the
// sequence number was already applied (a duplicate).
func (c *ReplicaCore[C]) Accept(client, seq uint64, cmd C) (dup bool) {
	var res StepResult[C]
	c.handleSubmit(Event[C]{Kind: EvSubmit, Client: client, Seq: seq, Cmd: cmd}, &res)
	return res.SubmitDup
}

// handleTick is the anti-entropy edge: while consensus runs it is a
// no-op (round pacing owns the clock); while blocked on decided batch
// contents it re-pulls them; while idle it probes peers for decisions
// we may have missed.
func (c *ReplicaCore[C]) handleTick(res *StepResult[C]) {
	if c.cur != nil {
		return
	}
	if c.blockedOn != 0 {
		res.Out = append(res.Out, Outbound{To: AllPeers, Env: Envelope{
			Kind: KindBatchPull, From: c.cfg.Self, Payload: appendVarint(nil, c.blockedOn)}})
		return
	}
	next := uint64(len(c.log)) + 1
	res.Out = append(res.Out, Outbound{To: AllPeers, Env: Envelope{
		Slot: next, Kind: KindSyncPull, From: c.cfg.Self, Payload: appendUvarint(nil, next)}})
}

// handleEnvelope dispatches one inbound envelope.
func (c *ReplicaCore[C]) handleEnvelope(env Envelope, res *StepResult[C]) {
	switch env.Kind {
	case KindRound:
		c.handleRound(env, res)
	case KindBatch:
		c.handleBatch(env, res)
	case KindBatchPull:
		if bid, n := varint(env.Payload); n > 0 {
			if entries, ok := c.batches[bid]; ok {
				payload := c.cfg.Batch.AppendEntries(appendVarint(nil, bid), entries)
				res.Out = append(res.Out, Outbound{To: env.From, Env: Envelope{
					Kind: KindBatch, From: c.cfg.Self, Payload: payload}})
			}
		} else {
			c.stats.Malformed++
		}
	case KindSync:
		c.handleSync(env, res)
	case KindSyncPull:
		if from, n := uvarint(env.Payload); n > 0 {
			if from > 0 {
				c.notePeerApplied(env.From, from-1)
			}
			c.pushDecisions(env.From, from, res)
		} else {
			c.stats.Malformed++
		}
	default:
		c.stats.Malformed++
	}
}

// handleRound classifies a consensus message by slot: current → the
// running instance (or a work poke when idle); old → the sender lags,
// push decisions; future → we lag, pull decisions.
func (c *ReplicaCore[C]) handleRound(env Envelope, res *StepResult[C]) {
	msg, err := c.cfg.Msg.Decode(env.Payload)
	if err != nil {
		c.stats.Malformed++
		return
	}
	// A round message for slot s says its sender has applied s−1.
	if env.Slot > 0 {
		c.notePeerApplied(env.From, env.Slot-1)
	}
	next := uint64(len(c.log)) + 1
	switch {
	case env.Slot == next:
		if c.cur != nil {
			if c.cur.deliver(c.cfg.N, env.From, env.Round, msg, c.cfg.Mutation&MutNoJump != 0) {
				c.transitionRound(res)
				c.closeRounds(res)
			}
		} else {
			c.poked = true
		}
	case env.Slot < next:
		c.pushDecisions(env.From, env.Slot, res)
	default: // env.Slot > next: we lag
		res.Out = append(res.Out, Outbound{To: env.From, Env: Envelope{
			Kind: KindSyncPull, From: c.cfg.Self, Payload: appendUvarint(nil, next)}})
	}
}

// handleBatch stores a disseminated batch.
func (c *ReplicaCore[C]) handleBatch(env Envelope, res *StepResult[C]) {
	b := env.Payload
	bid, n := varint(b)
	if n <= 0 || bid <= 0 {
		c.stats.Malformed++
		return
	}
	entries, err := c.cfg.Batch.DecodeEntries(b[n:])
	if err != nil {
		c.stats.Malformed++
		return
	}
	if _, ok := c.batches[bid]; !ok {
		c.batches[bid] = entries
		if c.cfg.Persist != nil {
			c.cfg.Persist.SaveBatch(bid, b[n:])
		}
		if !c.batchApplied(bid) {
			c.offered[bid] = struct{}{}
		}
	}
}

// handleSync records pushed decisions.
func (c *ReplicaCore[C]) handleSync(env Envelope, res *StepResult[C]) {
	b := env.Payload
	count, n := uvarint(b)
	if n <= 0 || count > maxSyncPairs {
		c.stats.Malformed++
		return
	}
	b = b[n:]
	for i := uint64(0); i < count; i++ {
		slot, n1 := uvarint(b)
		if n1 <= 0 {
			c.stats.Malformed++
			return
		}
		bid, n2 := varint(b[n1:])
		if n2 <= 0 {
			c.stats.Malformed++
			return
		}
		b = b[n1+n2:]
		if slot == 0 {
			c.stats.Malformed++
			return
		}
		c.recordDecision(slot, bid, true)
	}
}

// ---------------------------------------------------------------------
// Consensus round sequencing (state machine in node.go).

// transitionRound closes the current round: apply T_p^r to the heard
// set, observe a decision, or (mutated) retry with a fresh instance.
func (c *ReplicaCore[C]) transitionRound(res *StepResult[C]) {
	if c.cfg.MaxRound > 0 && c.cur.r >= c.cfg.MaxRound {
		return // model bound: round MaxRound's window never closes
	}
	r := c.cur.r
	c.cur.inst.Transition(r, c.cur.inbox(c.cfg.N))
	c.stats.Rounds++
	if v, ok := c.cur.inst.Decided(); ok {
		slot := c.cur.slot
		c.cur = nil
		c.eagerPush = slot
		c.recordDecision(slot, int64(v), false)
		return
	}
	// The transition may have adopted or locked a vote: persist the
	// instance state before the next round's send can reveal it.
	c.persistVote()
	if c.cfg.Mutation&MutFreshRetry != 0 && r >= c.cfg.RetryAfter {
		// SEEDED BUG: discard the instance — and with it any locked
		// algorithm state — and let advance start a fresh attempt.
		c.cur = nil
		c.poked = true
		return
	}
	c.nextRound(res)
}

// nextRound enters the following round and broadcasts S_p^r.
func (c *ReplicaCore[C]) nextRound(res *StepResult[C]) {
	r := c.cur.r + 1
	payload := c.cur.inst.Send(r)
	c.cur.enter(c.cfg.N, r, c.cfg.Self, payload)
	c.emitRound(r, payload, res)
}

// closeRounds fast-forwards through rounds whose collection window is
// already closed (jumped backlog, or n=1 hearing itself).
func (c *ReplicaCore[C]) closeRounds(res *StepResult[C]) {
	for c.cur != nil && c.cur.closed(c.cfg.N, c.cfg.Mutation&MutNoJump != 0) {
		if c.cfg.MaxRound > 0 && c.cur.r >= c.cfg.MaxRound {
			return // model bound (see transitionRound)
		}
		c.transitionRound(res)
	}
}

// emitRound broadcasts one round message, counting undecodable payloads.
func (c *ReplicaCore[C]) emitRound(r core.Round, m core.Message, res *StepResult[C]) {
	b, err := c.cfg.Msg.Encode(m)
	if err != nil {
		c.stats.Malformed++
		return
	}
	res.Out = append(res.Out, Outbound{To: AllPeers, Env: Envelope{
		Slot: c.cur.slot, Round: r, Kind: KindRound, From: c.cfg.Self, Payload: b}})
}

// ---------------------------------------------------------------------
// The advance fixpoint: apply, then start.

// advance applies every decided slot whose contents are at hand, then
// starts the next slot's consensus if idle work exists, repeating until
// nothing changes.
func (c *ReplicaCore[C]) advance(res *StepResult[C]) {
	for {
		progressed := false
		for {
			slot := uint64(len(c.log)) + 1
			bid, ok := c.decided[slot]
			if !ok {
				break
			}
			if bid != 0 {
				if _, have := c.batches[bid]; !have {
					// Pull the missing contents; EvTick retries. The wait
					// is deliberately unbounded: the id was DECIDED, so
					// applying anything else would diverge (see the
					// fault-envelope note in replica.go's package comment).
					if c.blockedOn != bid {
						c.blockedOn = bid
						res.Out = append(res.Out, Outbound{To: AllPeers, Env: Envelope{
							Kind: KindBatchPull, From: c.cfg.Self, Payload: appendVarint(nil, bid)}})
					}
					break
				}
			}
			c.blockedOn = 0
			c.applySlot(slot, bid, res)
			progressed = true
		}
		if c.eagerPush != 0 && uint64(len(c.log)) >= c.eagerPush {
			// Eager push: peers that lost the deciding round learn the
			// outcome now instead of at the next sync trigger.
			from := c.eagerPush
			c.eagerPush = 0
			c.pushDecisions(AllPeers, from, res)
		}
		if c.cur == nil && c.blockedOn == 0 && c.hasWork() {
			if c.startSlot(res) {
				progressed = true
			}
		}
		if !progressed {
			return
		}
	}
}

// hasWork reports whether consensus for the next slot is warranted: a
// local or offered batch to commit, or peer round traffic showing the
// group is deciding it.
func (c *ReplicaCore[C]) hasWork() bool {
	if len(c.pending) > 0 || len(c.offered) > 0 {
		return true
	}
	if _, ok := c.decided[uint64(len(c.log))+1]; ok {
		return true
	}
	return c.poked
}

// startSlot opens the next slot's one instance and enters round 1.
func (c *ReplicaCore[C]) startSlot(res *StepResult[C]) bool {
	slot := uint64(len(c.log)) + 1
	if c.cfg.MaxSlots > 0 && slot > c.cfg.MaxSlots {
		return false // model bound: no consensus beyond the slot budget
	}
	c.poked = false
	proposal := c.propose(res)
	inst := c.cfg.Algorithm.NewInstance(c.cfg.Self, c.cfg.N, core.Value(proposal))
	if c.restoredVoteSlot != 0 {
		if c.restoredVoteSlot == slot {
			// Crash recovery: re-install the persisted instance state —
			// the locked vote — over the fresh proposal. The encoding was
			// validated at restore time; the round position restarts at 1
			// and the jump rule re-aligns us with the group.
			if sp, ok := inst.(statePersistent); ok {
				_ = sp.RestoreState(c.restoredVote)
			}
		}
		c.restoredVote, c.restoredVoteSlot = nil, 0
	}
	c.cur = newSlotRun(slot, inst)
	c.nextRound(res)
	c.closeRounds(res)
	return true
}

// propose picks this attempt's initial value: a fresh batch of local
// pending commands, else the newest offered peer batch, else the no-op 0.
func (c *ReplicaCore[C]) propose(res *StepResult[C]) int64 {
	if len(c.pending) > 0 {
		k := len(c.pending)
		if k > c.cfg.MaxBatch {
			k = c.cfg.MaxBatch
		}
		entries := make([]Entry[C], k)
		copy(entries, c.pending[:k])
		c.batchSeq++
		bid := (int64(c.cfg.Self)+1)<<40 | c.batchSeq
		c.batches[bid] = entries
		enc := c.cfg.Batch.AppendEntries(nil, entries)
		if c.cfg.Persist != nil {
			// Quorum-durable dissemination: the batch body is on our own
			// disk (after the shell's sync barrier) before any peer can see
			// — let alone vote for — its id.
			c.cfg.Persist.SaveBatch(bid, enc)
		}
		payload := append(appendVarint(nil, bid), enc...)
		res.Out = append(res.Out, Outbound{To: AllPeers, Env: Envelope{
			Kind: KindBatch, From: c.cfg.Self, Payload: payload}})
		return bid
	}
	var best int64
	for id := range c.offered {
		if id > best {
			best = id
		}
	}
	return best
}

// ---------------------------------------------------------------------
// Decisions, apply, GC.

// recordDecision folds one decision observation in. Conflicting
// observations for a slot — from our own instance, a peer's sync, or the
// applied log — increment Divergent and keep the first value, so a
// safety violation is counted, visible in /stats, and never silently
// overwritten.
func (c *ReplicaCore[C]) recordDecision(slot uint64, bid int64, viaSync bool) {
	if slot <= uint64(len(c.log)) {
		if c.log[slot-1] != bid {
			c.stats.Divergent++
		}
		return
	}
	if prev, ok := c.decided[slot]; ok {
		if prev != bid {
			c.stats.Divergent++
		}
		return
	}
	c.decided[slot] = bid
	if c.cfg.Persist != nil {
		c.cfg.Persist.SaveDecision(slot, bid)
	}
	if viaSync {
		c.stats.SyncDecisions++
	}
	if c.cur != nil && c.cur.slot == slot {
		// The running attempt's slot was decided externally: its one
		// instance is retired undecided (never restarted — restarting
		// would discard locked algorithm state; see node.go).
		c.cur = nil
	}
}

// applySlot commits slot's batch: apply fresh entries in order under
// session dedup, advance the log, prune. Contents must be at hand.
func (c *ReplicaCore[C]) applySlot(slot uint64, bid int64, res *StepResult[C]) {
	var entries []Entry[C]
	if bid != 0 {
		entries = c.batches[bid]
	}
	appliedFrom := len(res.Applied)
	for _, e := range entries {
		ae := AppliedEntry[C]{Slot: slot, Entry: e}
		if e.Seq > c.hwm[e.Client] {
			c.hwm[e.Client] = e.Seq
			ae.Fresh = true
			c.stats.Committed++
		}
		res.Applied = append(res.Applied, ae)
	}
	if len(entries) > 0 {
		// Drop applied commands from the local pending queue and retire
		// fully-applied offered batches.
		keep := c.pending[:0]
		for _, e := range c.pending {
			if e.Seq > c.hwm[e.Client] {
				keep = append(keep, e)
			}
		}
		c.pending = keep
		for id := range c.offered {
			if c.batchApplied(id) {
				delete(c.offered, id)
			}
		}
	}
	if c.cfg.Persist != nil {
		c.cfg.Persist.SaveApplied(slot, bid, c.persistFresh(res.Applied, appliedFrom))
	}
	delete(c.decided, slot)
	c.log = append(c.log, bid)
	if bid != 0 {
		c.inLog[bid] = true
	}
	const fnvPrime = 1099511628211
	c.logHash = (c.logHash ^ slot) * fnvPrime
	c.logHash = (c.logHash ^ uint64(bid)) * fnvPrime
	c.pruneBatches()
}

// pruneBatches bounds batch retention with two rules.
//
// Decided batches (in the log) are kept until every replica's observed
// commit index passes their slot: a laggard only ever pulls the batch
// of the slot it is applying, applied+1 ≤ horizon+1, so nothing past
// the horizon can be pulled again. A peer that was never heard from —
// or a long-dead one — pins this horizon, trading memory for its
// ability to rejoin from the log; bounded-membership GC is future work.
//
// Undecided batches (losing or superseded proposals — under contention
// most proposals lose) are dropped as soon as all their entries are at
// or below the local high-water marks: any replica that could still
// PROPOSE such a batch is by construction one that retains its
// contents (adoption only offers ids whose contents arrived, and a
// replica behind on the entries keeps them), so a later decision of
// the id can still be served.
func (c *ReplicaCore[C]) pruneBatches() {
	horizon := uint64(len(c.log))
	for q := 0; q < c.cfg.N; q++ {
		p := core.ProcessID(q)
		if p == c.cfg.Self {
			continue
		}
		if pa, ok := c.peerApplied[p]; !ok {
			horizon = 0
			break
		} else if pa < horizon {
			horizon = pa
		}
	}
	for s := c.prunedTo + 1; s <= horizon; s++ {
		if bid := c.log[s-1]; bid != 0 {
			delete(c.batches, bid)
			delete(c.inLog, bid)
		}
	}
	if horizon > c.prunedTo {
		c.prunedTo = horizon
	}
	for bid := range c.batches {
		if !c.inLog[bid] && c.batchApplied(bid) {
			delete(c.batches, bid)
			delete(c.offered, bid)
		}
	}
}

// notePeerApplied folds in an observation of a peer's commit index and
// re-runs the pruner (the horizon can advance on peer progress alone,
// e.g. after the local log has quiesced).
func (c *ReplicaCore[C]) notePeerApplied(p core.ProcessID, applied uint64) {
	if applied > c.peerApplied[p] {
		c.peerApplied[p] = applied
		c.pruneBatches()
	}
}

// batchApplied reports whether every entry of a known batch is at or
// below its client's high-water mark.
func (c *ReplicaCore[C]) batchApplied(bid int64) bool {
	entries, ok := c.batches[bid]
	if !ok {
		return false
	}
	for _, e := range entries {
		if e.Seq > c.hwm[e.Client] {
			return false
		}
	}
	return true
}

// pushDecisions emits the applied decisions from slot `from` on, to one
// peer or everyone. The shell rate-limits targeted pushes per peer.
func (c *ReplicaCore[C]) pushDecisions(to core.ProcessID, from uint64, res *StepResult[C]) {
	if from == 0 {
		from = 1
	}
	applied := uint64(len(c.log))
	if from > applied {
		return
	}
	count := applied - from + 1
	if count > maxSyncPairs {
		count = maxSyncPairs
	}
	payload := appendUvarint(nil, count)
	for s := from; s < from+count; s++ {
		payload = appendUvarint(payload, s)
		payload = appendVarint(payload, c.log[s-1])
	}
	res.Out = append(res.Out, Outbound{To: to, Env: Envelope{
		Kind: KindSync, From: c.cfg.Self, Payload: payload}})
}

// ---------------------------------------------------------------------
// Observers (shell and checker).

// LogFingerprint returns the applied slot count and the running FNV hash
// of the (slot, batch id) decision sequence.
func (c *ReplicaCore[C]) LogFingerprint() (uint64, uint64) {
	return uint64(len(c.log)), c.logHash
}

// DecisionLogCopy copies the applied decisions.
func (c *ReplicaCore[C]) DecisionLogCopy() []int64 {
	out := make([]int64, len(c.log))
	copy(out, c.log)
	return out
}

// LogAt returns the decided batch id of an applied slot (1-based), or
// false if the slot is beyond the log.
func (c *ReplicaCore[C]) LogAt(slot uint64) (int64, bool) {
	if slot == 0 || slot > uint64(len(c.log)) {
		return 0, false
	}
	return c.log[slot-1], true
}

// Counters snapshots the service counters, deriving the length-based
// fields from the current state.
func (c *ReplicaCore[C]) Counters() ReplicaStats {
	st := c.stats
	st.Applied = uint64(len(c.log))
	st.Pending = len(c.pending)
	st.BatchesHeld = len(c.batches)
	return st
}

// RoundState reports the running consensus attempt, if any.
func (c *ReplicaCore[C]) RoundState() (slot uint64, round core.Round, active bool) {
	if c.cur == nil {
		return 0, 0, false
	}
	return c.cur.slot, c.cur.r, true
}

// Blocked returns the decided batch id apply is waiting for (0 if none).
func (c *ReplicaCore[C]) Blocked() int64 { return c.blockedOn }

// NextSeq returns the client's next fresh sequence number.
func (c *ReplicaCore[C]) NextSeq(client uint64) uint64 { return c.maxSeen[client] + 1 }

// SeqApplied reports whether a client sequence number is at or below the
// applied high-water mark (i.e. a duplicate).
func (c *ReplicaCore[C]) SeqApplied(client, seq uint64) bool { return seq <= c.hwm[client] }

// NextSlot returns the first unapplied slot.
func (c *ReplicaCore[C]) NextSlot() uint64 { return uint64(len(c.log)) + 1 }

// DecidedUnapplied copies the decided-but-unapplied slot map.
func (c *ReplicaCore[C]) DecidedUnapplied() map[uint64]int64 {
	out := make(map[uint64]int64, len(c.decided))
	for s, b := range c.decided {
		out[s] = b
	}
	return out
}

// HoldsBatch reports whether the core retains a batch's contents.
func (c *ReplicaCore[C]) HoldsBatch(bid int64) bool {
	_, ok := c.batches[bid]
	return ok
}

// BatchesCreated returns this proposer's batch counter: ids
// (Self+1)<<40 | k for 1 ≤ k ≤ BatchesCreated() exist or existed.
func (c *ReplicaCore[C]) BatchesCreated() int64 { return c.batchSeq }
