package live

import (
	"fmt"
	"testing"
	"time"

	"heardof/internal/core"
	"heardof/internal/lastvoting"
	"heardof/internal/wal"
)

// TestE12ADiskVsEmptyRejoin is the measured experiment behind
// EXPERIMENTS.md E12a: the same crash is recovered twice — once from
// the replica's write-ahead state, once from nothing — and the two
// rejoins are compared on decisions refetched and recovery outcome.
//
// Shape (both arms): replica 2 participates in a first load segment,
// the group prunes those batches (everyone applied them), replica 2
// crashes, the survivors commit a second segment, replica 2 rejoins.
// The disk arm recovers the pruned first segment from its own log and
// only refetches the downtime backlog; the empty arm needs the whole
// history from the survivors, but the first segment's batches no
// longer exist anywhere — it can learn those decisions yet never apply
// them, so it stalls at commit index 0. Recovery cost is proportional
// to downtime with a log, and unbounded (here: impossible) without
// one.
func TestE12ADiskVsEmptyRejoin(t *testing.T) {
	const (
		n        = 3
		segment  = 40 // commands per load segment
		stallObs = 1200 * time.Millisecond
	)

	// run builds the common scenario and hands the rejoin to the arm.
	run := func(t *testing.T, rejoin func(t *testing.T, dir string, net *ChanNetwork, targetLen uint64, targetHash uint64)) {
		dir := t.TempDir()
		net, err := NewChanNetwork(n, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer net.Close()

		reps := make([]*Replica[string], n)
		logs := make([]*applyLog, n)
		mk := func(p core.ProcessID, persist Persister, rec *wal.State) *Replica[string] {
			lg := logs[p]
			rep, err := NewReplica(ReplicaConfig[string]{
				Self: p, N: n,
				Algorithm: lastvoting.Algorithm{},
				Msg:       lastvoting.WireCodec{},
				Batch:     strCodec{},
				Transport: net.Transport(p),
				Apply:     lg.hook,
				Persist:   persist, Recovered: rec,
				SnapshotState: lg.snapshotState,
				SnapshotEvery: 16,
				RoundTimeout:  time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			return rep
		}
		store, st, err := wal.Open(dir, wal.Options{NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		for p := 0; p < n; p++ {
			logs[p] = &applyLog{}
			if p == 2 {
				reps[p] = mk(core.ProcessID(p), store, st)
			} else {
				reps[p] = mk(core.ProcessID(p), nil, nil)
			}
			reps[p].Start()
		}
		defer func() {
			for _, r := range reps {
				if r != nil {
					r.Stop()
				}
			}
		}()

		// Segment 1: everyone participates.
		for i := 0; i < segment; i++ {
			ch, _ := reps[i%n].SubmitNext(uint64(i%n+1), fmt.Sprintf("s1-%d", i))
			waitApplied(t, ch, 10*time.Second, "segment 1")
		}
		requireSameLogs(t, reps, logs)

		// Wait for the GC horizon to pass segment 1 on the survivors:
		// every replica applied it, so its batches get pruned everywhere —
		// the empty arm must not be able to refetch them.
		deadline := time.Now().Add(10 * time.Second)
		for reps[0].Stats().BatchesHeld > 0 || reps[1].Stats().BatchesHeld > 0 {
			if time.Now().After(deadline) {
				t.Fatalf("segment-1 batches never pruned: %d/%d held",
					reps[0].Stats().BatchesHeld, reps[1].Stats().BatchesHeld)
			}
			time.Sleep(2 * time.Millisecond)
		}

		// Crash replica 2 (hard stop, no checkpoint).
		reps[2].Stop()
		reps[2] = nil
		if err := store.Close(); err != nil {
			t.Fatal(err)
		}

		// Segment 2: the survivors keep committing — the downtime backlog.
		for i := 0; i < segment; i++ {
			ch, _ := reps[i%2].SubmitNext(uint64(i%2+1), fmt.Sprintf("s2-%d", i))
			waitApplied(t, ch, 10*time.Second, "segment 2")
		}
		deadline = time.Now().Add(10 * time.Second)
		for {
			l0, h0 := reps[0].LogHash()
			l1, h1 := reps[1].LogHash()
			if l0 == l1 && h0 == h1 {
				rejoin(t, dir, net, l0, h0)
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("survivors never agreed: (%d, %#x) vs (%d, %#x)", l0, h0, l1, h1)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	t.Run("disk", func(t *testing.T) {
		run(t, func(t *testing.T, dir string, net *ChanNetwork, targetLen, targetHash uint64) {
			openStart := time.Now()
			store, st, err := wal.Open(dir, wal.Options{NoSync: true})
			if err != nil {
				t.Fatal(err)
			}
			defer store.Close()
			lg := &applyLog{}
			lg.restoreState(st.AppState)
			rep, err := NewReplica(ReplicaConfig[string]{
				Self: 2, N: n,
				Algorithm: lastvoting.Algorithm{},
				Msg:       lastvoting.WireCodec{},
				Batch:     strCodec{},
				Transport: net.Transport(2),
				Apply:     lg.hook,
				Persist:   store, Recovered: st,
				SnapshotState: lg.snapshotState,
				SnapshotEvery: 16,
				RoundTimeout:  time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			openDur := time.Since(openStart)
			localLen, _ := rep.LogHash()

			rep.Start()
			defer rep.Stop()
			catchStart := time.Now()
			deadline := time.Now().Add(10 * time.Second)
			for {
				l, h := rep.LogHash()
				if l == targetLen && h == targetHash {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("disk rejoin never caught up: (%d, %#x) != (%d, %#x)", l, h, targetLen, targetHash)
				}
				time.Sleep(time.Millisecond)
			}
			catchDur := time.Since(catchStart)
			st2 := rep.Stats()
			t.Logf("E12a disk rejoin: restore %d slots locally in %v, caught up %d backlog slots in %v (%d via sync), divergent=%d",
				localLen, openDur.Round(time.Microsecond), targetLen-localLen,
				catchDur.Round(time.Millisecond), st2.SyncDecisions, st2.Divergent)
			if localLen == 0 {
				t.Fatal("disk rejoin restored nothing")
			}
			if st2.Divergent != 0 {
				t.Fatalf("disk rejoin observed %d divergent decisions", st2.Divergent)
			}
		})
	})

	t.Run("empty", func(t *testing.T) {
		run(t, func(t *testing.T, dir string, net *ChanNetwork, targetLen, _ uint64) {
			lg := &applyLog{}
			rep, err := NewReplica(ReplicaConfig[string]{
				Self: 2, N: n,
				Algorithm:    lastvoting.Algorithm{},
				Msg:          lastvoting.WireCodec{},
				Batch:        strCodec{},
				Transport:    net.Transport(2),
				Apply:        lg.hook,
				RoundTimeout: time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			rep.Start()
			defer rep.Stop()

			// The whole history must be refetched, but segment 1's batches
			// were pruned group-wide: apply is in-order, so the empty
			// rejoiner stalls at commit index 0 no matter how long it waits.
			time.Sleep(stallObs)
			st := rep.Stats()
			l, _ := rep.LogHash()
			t.Logf("E12a empty rejoin: needs all %d slots refetched, applied %d after %v (segment-1 batches pruned group-wide) — stalled",
				targetLen, l, stallObs)
			if l != 0 {
				t.Fatalf("empty rejoiner applied %d slots without segment-1 batch contents", l)
			}
			if st.Divergent != 0 {
				t.Fatalf("empty rejoin observed %d divergent decisions", st.Divergent)
			}
		})
	})
}
