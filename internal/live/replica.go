// Replica: the live replicated-state-machine service — the counterpart
// of internal/rsm's Engine, rebuilt for a world without a shared memory.
// In the simulator the engine owns every process and a common pending
// table, so a slot can decide a bitmask over commands everybody already
// sees. Live, each replica knows only its own submissions, so the layer
// splits replication into the two classic halves:
//
//   - Dissemination: a proposer packs its pending commands into a BATCH,
//     assigns it an id that is unique by construction ((proposer+1) in
//     the high bits, a local counter below — no hashing, no collisions),
//     and broadcasts the contents best-effort. Batches are re-pulled on
//     demand, so dissemination only needs fair-lossy links.
//   - Agreement: each slot runs one core.Instance (LastVoting, OTR, …)
//     whose proposals are batch IDS (they fit core.Value). A replica
//     with nothing to propose adopts the newest batch it has heard of,
//     or proposes 0, the no-op batch. Deciding an id whose contents have
//     not arrived yet just delays APPLY, never agreement.
//
// Commands carry (client, seq) session identities; apply keeps a
// high-water mark per client, so overlapping batches (a retried command
// landing in two proposals) still apply exactly once — the same
// exactly-once contract rsm's sessions give, enforced at the other end.
//
// Decided slots spread through a sync protocol that doubles as the
// decide-retransmission and the crash-rejoin path: any round message for
// an old slot reveals a laggard, and any for a future slot reveals that
// WE lag; both trigger a (rate-limited) push or pull of the decision
// log. A replica paused mid-round therefore rejoins by replaying
// decisions, not consensus.
//
// Fault envelope: transmission faults of any rate and crash-RECOVERY
// (pause/rejoin — the paper's model, where {r_p, s_p} survive) are
// fully handled. Permanent crash-STOP of a proposer in the window
// after its batch id was decided but before its contents reached any
// other replica loses the only copy of those contents, and apply for
// that slot waits (pulling) until a holder returns — the same way any
// log-based system stalls on losing committed-but-unreplicated data.
// Closing that window (quorum-acked dissemination before proposing, or
// carrying contents in the consensus payload) is an open ROADMAP item.

package live

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"heardof/internal/core"
)

// Entry is one replicated command with its client-session identity.
type Entry[C any] struct {
	Client uint64
	Seq    uint64
	Cmd    C
}

// BatchCodec serializes command batches for dissemination.
type BatchCodec[C any] interface {
	// AppendEntries encodes entries after dst.
	AppendEntries(dst []byte, entries []Entry[C]) []byte
	// DecodeEntries parses an AppendEntries encoding.
	DecodeEntries(src []byte) ([]Entry[C], error)
}

// ApplyResult reports the fate of a submitted command to its waiter.
type ApplyResult struct {
	// Slot is the consensus slot that committed the command.
	Slot uint64
	// Out is whatever the Apply hook returned (e.g. the value a
	// linearizable read observed at apply time).
	Out any
	// Dup marks a submission whose sequence number was already applied.
	Dup bool
}

// ReplicaStats are one replica's service counters. Live runs are not
// deterministic, so these are measurements, not reproducible tables.
type ReplicaStats struct {
	// Applied is the commit index: slots applied so far.
	Applied uint64
	// Committed counts commands applied (exactly-once, after dedup).
	Committed int
	// Divergent counts conflicting decision observations for one slot.
	// Consensus safety says it stays 0; the live smoke jobs assert it.
	Divergent int
	// SyncDecisions counts slots learned through the sync path instead
	// of this replica's own consensus instance.
	SyncDecisions int
	// Rounds accumulates consensus rounds executed by this replica.
	Rounds int64
	// Pending counts accepted-but-uncommitted local submissions.
	Pending int
	// BatchesHeld counts disseminated batches currently retained.
	// Batches of slots every replica has applied are pruned, so on a
	// healthy cluster this stays near the in-flight window instead of
	// growing with history.
	BatchesHeld int
	// Malformed counts undecodable inbound payloads (dropped).
	Malformed int
}

// ReplicaConfig parameterizes one process's replica of one group.
type ReplicaConfig[C any] struct {
	// Self and N identify this process within the group's n processes.
	Self core.ProcessID
	N    int
	// Algorithm decides each slot; Msg is its wire codec.
	Algorithm core.Algorithm
	Msg       Codec
	// Batch serializes command batches.
	Batch BatchCodec[C]
	// Transport connects the group (a Mux Link when several groups share
	// one socket). The replica does not close it.
	Transport Transport
	// Apply is invoked once per committed command, in commit order, from
	// the replica's apply goroutine; its return value reaches the
	// submitter's ApplyResult.Out.
	Apply func(slot uint64, e Entry[C]) any
	// RoundTimeout bounds each round's collection window (default 2ms —
	// the live stand-in for the good-period bound Φ+2Δ). A slot has no
	// ROUND budget: its one instance runs until it decides or the
	// decision arrives via sync (see runSlot — restarting an instance
	// would discard locked algorithm state and break agreement).
	RoundTimeout time.Duration
	// MaxBatch caps commands per proposal (default 64).
	MaxBatch int
	// SyncEvery paces the idle anti-entropy heartbeat (default 250ms).
	SyncEvery time.Duration
}

// waiterKey identifies a submission.
type waiterKey struct{ client, seq uint64 }

// Replica runs one process's share of a replicated command log.
type Replica[C any] struct {
	cfg ReplicaConfig[C]

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu        sync.Mutex
	pending   []Entry[C]
	batches   map[int64][]Entry[C]
	inLog     map[int64]bool // batch ids a log slot decided (retention anchor)
	batchWait map[int64]chan struct{}
	offered   map[int64]struct{} // peer batches not yet fully applied
	decided   map[uint64]int64   // slot → batch id, not yet applied
	maxSeen   map[uint64]uint64  // client → highest accepted seq
	log       []int64            // applied decisions; log[i] decided slot i+1
	logHash   uint64
	hwm       map[uint64]uint64 // client → highest applied seq
	waiters   map[waiterKey]chan ApplyResult
	curIn     chan roundMsg // non-nil while a slot instance runs
	curAbort  chan struct{}
	curClosed bool
	poked     bool // round traffic for our next slot arrived while idle
	batchSeq  int64
	stats     ReplicaStats

	lastPush map[core.ProcessID]time.Time // sync-push rate limiter
	lastPull map[core.ProcessID]time.Time // sync-pull rate limiter

	// peerApplied tracks each peer's last observed commit index (their
	// round messages carry their current slot; their sync pulls carry
	// applied+1). Batches of slots every replica has applied are pruned
	// — the GC horizon that keeps long-running servers bounded. A peer
	// that has never been heard from pins the horizon at 0.
	peerApplied map[core.ProcessID]uint64
	prunedTo    uint64

	workCh chan struct{}
}

// maxSyncPairs caps decisions per sync push.
const maxSyncPairs = 128

// syncRateLimit is the minimum interval between sync messages to one peer.
const syncRateLimit = 20 * time.Millisecond

// NewReplica validates the configuration and builds a stopped replica;
// call Start to begin participating.
func NewReplica[C any](cfg ReplicaConfig[C]) (*Replica[C], error) {
	if cfg.N < 1 || cfg.N > core.MaxProcesses {
		return nil, fmt.Errorf("live: group size %d out of range [1, %d]", cfg.N, core.MaxProcesses)
	}
	if int(cfg.Self) < 0 || int(cfg.Self) >= cfg.N {
		return nil, fmt.Errorf("live: self %d outside group of %d", cfg.Self, cfg.N)
	}
	if cfg.Algorithm == nil || cfg.Msg == nil || cfg.Batch == nil || cfg.Transport == nil {
		return nil, errors.New("live: nil algorithm, codec, batch codec, or transport")
	}
	if cfg.RoundTimeout <= 0 {
		cfg.RoundTimeout = 2 * time.Millisecond
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.SyncEvery <= 0 {
		cfg.SyncEvery = 250 * time.Millisecond
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Replica[C]{
		cfg: cfg, ctx: ctx, cancel: cancel,
		batches:   make(map[int64][]Entry[C]),
		inLog:     make(map[int64]bool),
		batchWait: make(map[int64]chan struct{}),
		offered:   make(map[int64]struct{}),
		decided:   make(map[uint64]int64),
		maxSeen:   make(map[uint64]uint64),
		hwm:       make(map[uint64]uint64),
		waiters:   make(map[waiterKey]chan ApplyResult),
		lastPush:    make(map[core.ProcessID]time.Time),
		lastPull:    make(map[core.ProcessID]time.Time),
		peerApplied: make(map[core.ProcessID]uint64),
		logHash:   14695981039346656037, // FNV-64 offset basis
		workCh:    make(chan struct{}, 1),
	}, nil
}

// Start launches the demux and driver goroutines.
func (r *Replica[C]) Start() {
	r.wg.Add(2)
	go func() { defer r.wg.Done(); r.demux() }()
	go func() { defer r.wg.Done(); r.drive() }()
}

// Stop halts the replica (it does not close the transport) and releases
// every outstanding waiter with a zero ApplyResult.
func (r *Replica[C]) Stop() {
	r.cancel()
	r.wg.Wait()
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, ch := range r.waiters {
		close(ch)
		delete(r.waiters, k)
	}
}

// Submit accepts a command under a client session; sequence numbers must
// be positive and fresh per client (a seq at or below the client's
// applied high-water mark is a duplicate and resolves immediately). The
// returned channel receives exactly one ApplyResult when the command
// commits (buffered: never blocks the replica), or closes without a
// value if the replica stops first.
//
// A client's submissions to one replica must carry increasing sequence
// numbers in submission order — batches are prefixes of the pending
// queue, so an out-of-order seq could be skipped by dedup forever. Use
// SubmitNext unless you are deliberately modeling retries.
func (r *Replica[C]) Submit(client, seq uint64, cmd C) (<-chan ApplyResult, error) {
	if seq == 0 {
		return nil, errors.New("live: sequence numbers start at 1")
	}
	ch := make(chan ApplyResult, 1)
	r.mu.Lock()
	if seq <= r.hwm[client] {
		r.mu.Unlock()
		ch <- ApplyResult{Dup: true}
		return ch, nil
	}
	r.accept(client, seq, cmd, ch)
	r.mu.Unlock()
	r.signalWork()
	return ch, nil
}

// SubmitNext enters cmd at the client's next fresh sequence number,
// assigned atomically with enqueueing — the safe path for concurrent
// submitters sharing a client session (e.g. HTTP handlers of one server
// process). It returns the waiter and the sequence used.
func (r *Replica[C]) SubmitNext(client uint64, cmd C) (<-chan ApplyResult, uint64) {
	ch := make(chan ApplyResult, 1)
	r.mu.Lock()
	seq := r.maxSeen[client] + 1
	r.accept(client, seq, cmd, ch)
	r.mu.Unlock()
	r.signalWork()
	return ch, seq
}

// accept records a fresh submission. Callers hold mu.
func (r *Replica[C]) accept(client, seq uint64, cmd C, ch chan ApplyResult) {
	if seq > r.maxSeen[client] {
		r.maxSeen[client] = seq
	}
	key := waiterKey{client, seq}
	if old, ok := r.waiters[key]; ok {
		close(old) // a resubmission supersedes the previous waiter
	} else {
		r.pending = append(r.pending, Entry[C]{Client: client, Seq: seq, Cmd: cmd})
	}
	r.waiters[key] = ch
}

// Stats returns a snapshot of the service counters.
func (r *Replica[C]) Stats() ReplicaStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.stats
	st.Applied = uint64(len(r.log))
	st.Pending = len(r.pending)
	st.BatchesHeld = len(r.batches)
	return st
}

// LogHash fingerprints the applied decision log (slot, batch id)
// sequence: equal prefixes hash equal, so replicas of one group must
// agree on it up to their commit indexes.
func (r *Replica[C]) LogHash() (uint64, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return uint64(len(r.log)), r.logHash
}

// DecisionLog copies the applied decisions (for tests).
func (r *Replica[C]) DecisionLog() []int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int64, len(r.log))
	copy(out, r.log)
	return out
}

// signalWork nudges the driver without blocking.
func (r *Replica[C]) signalWork() {
	select {
	case r.workCh <- struct{}{}:
	default:
	}
}

// ---------------------------------------------------------------------
// Driver: the sequential slot loop.

// drive runs slots until the context ends: apply known decisions, idle
// when there is no work, otherwise run one consensus attempt.
func (r *Replica[C]) drive() {
	hb := time.NewTicker(r.cfg.SyncEvery)
	defer hb.Stop()
	for r.ctx.Err() == nil {
		slot := r.commitIndex() + 1
		if bid, ok := r.peekDecision(slot); ok {
			if !r.applySlot(slot, bid) {
				return
			}
			continue
		}
		if !r.hasWork(slot) {
			select {
			case <-r.workCh:
			case <-hb.C:
				r.broadcast(Envelope{Slot: slot, Kind: KindSyncPull,
					From: r.cfg.Self, Payload: appendUvarint(nil, slot)})
			case <-r.ctx.Done():
				return
			}
			continue
		}
		proposal := r.propose()
		inst := r.cfg.Algorithm.NewInstance(r.cfg.Self, r.cfg.N, core.Value(proposal))
		in, abort := r.openSlot(slot)
		rep := runSlot(r.ctx, r.cfg.Self, r.cfg.N, inst, r.roundSender(slot),
			in, abort, r.cfg.RoundTimeout)
		r.closeSlot()
		r.mu.Lock()
		r.stats.Rounds += int64(rep.Rounds)
		r.mu.Unlock()
		if rep.Decided {
			r.recordDecision(slot, int64(rep.Value), false)
			if bid, ok := r.peekDecision(slot); ok {
				if !r.applySlot(slot, bid) {
					return
				}
				// Eager push: peers that lost the deciding round learn
				// the outcome now instead of at the next sync trigger.
				r.pushDecisions(allPeers, slot)
			}
		}
	}
}

// allPeers broadcasts a push to the whole group.
const allPeers = core.ProcessID(-1)

// commitIndex returns the applied slot count.
func (r *Replica[C]) commitIndex() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return uint64(len(r.log))
}

// peekDecision reports slot's decision if known.
func (r *Replica[C]) peekDecision(slot uint64) (int64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	bid, ok := r.decided[slot]
	return bid, ok
}

// hasWork reports whether the driver should run consensus for slot: a
// local or offered batch to commit, or peer round traffic showing the
// group is deciding it.
func (r *Replica[C]) hasWork(slot uint64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.pending) > 0 || len(r.offered) > 0 {
		return true
	}
	if _, ok := r.decided[slot]; ok {
		return true
	}
	if r.poked {
		r.poked = false
		return true
	}
	return false
}

// propose picks this attempt's initial value: a fresh batch of local
// pending commands, else the newest offered peer batch, else the no-op 0.
func (r *Replica[C]) propose() int64 {
	r.mu.Lock()
	if len(r.pending) > 0 {
		k := len(r.pending)
		if k > r.cfg.MaxBatch {
			k = r.cfg.MaxBatch
		}
		entries := make([]Entry[C], k)
		copy(entries, r.pending[:k])
		r.batchSeq++
		bid := (int64(r.cfg.Self)+1)<<40 | r.batchSeq
		r.batches[bid] = entries
		payload := r.cfg.Batch.AppendEntries(appendVarint(nil, bid), entries)
		r.mu.Unlock()
		r.broadcast(Envelope{Kind: KindBatch, From: r.cfg.Self, Payload: payload})
		return bid
	}
	var best int64
	for id := range r.offered {
		if id > best {
			best = id
		}
	}
	r.mu.Unlock()
	return best
}

// openSlot installs the inbound round channel for a running instance.
func (r *Replica[C]) openSlot(slot uint64) (<-chan roundMsg, <-chan struct{}) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.curIn = make(chan roundMsg, 16*r.cfg.N)
	r.curAbort = make(chan struct{})
	r.curClosed = false
	if _, ok := r.decided[slot]; ok {
		// The decision raced in between the driver's check and here.
		r.curClosed = true
		close(r.curAbort)
	}
	return r.curIn, r.curAbort
}

// closeSlot retires the running instance's channels.
func (r *Replica[C]) closeSlot() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.curIn = nil
	r.curAbort = nil
	r.curClosed = false
}

// roundSender broadcasts one round message of slot to the peers.
func (r *Replica[C]) roundSender(slot uint64) func(core.Round, core.Message) {
	return func(round core.Round, m core.Message) {
		b, err := r.cfg.Msg.Encode(m)
		if err != nil {
			r.mu.Lock()
			r.stats.Malformed++
			r.mu.Unlock()
			return
		}
		r.broadcast(Envelope{Slot: slot, Round: round, Kind: KindRound, From: r.cfg.Self, Payload: b})
	}
}

// broadcast sends env to every peer but self.
func (r *Replica[C]) broadcast(env Envelope) {
	for q := 0; q < r.cfg.N; q++ {
		if p := core.ProcessID(q); p != r.cfg.Self {
			r.cfg.Transport.Send(p, env)
		}
	}
}

// recordDecision folds one decision observation in. Conflicting
// observations for a slot — from our own instance, a peer's sync, or the
// applied log — increment Divergent and keep the first value, so a
// safety violation is counted, visible in /stats, and never silently
// overwritten.
func (r *Replica[C]) recordDecision(slot uint64, bid int64, viaSync bool) {
	r.mu.Lock()
	if slot <= uint64(len(r.log)) {
		if r.log[slot-1] != bid {
			r.stats.Divergent++
		}
		r.mu.Unlock()
		return
	}
	if prev, ok := r.decided[slot]; ok {
		if prev != bid {
			r.stats.Divergent++
		}
		r.mu.Unlock()
		return
	}
	r.decided[slot] = bid
	if viaSync {
		r.stats.SyncDecisions++
	}
	if slot == uint64(len(r.log))+1 && r.curAbort != nil && !r.curClosed {
		r.curClosed = true
		close(r.curAbort)
	}
	r.mu.Unlock()
	r.signalWork()
}

// applySlot commits slot's batch: fetch contents if needed, apply fresh
// entries in order under session dedup, release waiters, advance the
// log. Returns false only when the replica is stopping.
func (r *Replica[C]) applySlot(slot uint64, bid int64) bool {
	var entries []Entry[C]
	if bid != 0 {
		var ok bool
		if entries, ok = r.fetchBatch(bid); !ok {
			return false
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range entries {
		key := waiterKey{e.Client, e.Seq}
		res := ApplyResult{Slot: slot, Dup: true}
		if e.Seq > r.hwm[e.Client] {
			r.hwm[e.Client] = e.Seq
			res.Dup = false
			if r.cfg.Apply != nil {
				res.Out = r.cfg.Apply(slot, e)
			}
			r.stats.Committed++
		}
		if ch, ok := r.waiters[key]; ok {
			ch <- res // buffered(1), sole send
			delete(r.waiters, key)
		}
	}
	if len(entries) > 0 {
		// Drop applied commands from the local pending queue and retire
		// fully-applied offered batches.
		keep := r.pending[:0]
		for _, e := range r.pending {
			if e.Seq > r.hwm[e.Client] {
				keep = append(keep, e)
			}
		}
		r.pending = keep
		for id := range r.offered {
			if r.batchApplied(id) {
				delete(r.offered, id)
			}
		}
	}
	delete(r.decided, slot)
	r.log = append(r.log, bid)
	if bid != 0 {
		r.inLog[bid] = true
	}
	const fnvPrime = 1099511628211
	r.logHash = (r.logHash ^ slot) * fnvPrime
	r.logHash = (r.logHash ^ uint64(bid)) * fnvPrime
	r.pruneBatches()
	return true
}

// pruneBatches bounds batch retention with two rules. Callers hold mu.
//
// Decided batches (in the log) are kept until every replica's observed
// commit index passes their slot: a laggard only ever pulls the batch
// of the slot it is applying, applied+1 ≤ horizon+1, so nothing past
// the horizon can be pulled again. A peer that was never heard from —
// or a long-dead one — pins this horizon, trading memory for its
// ability to rejoin from the log; bounded-membership GC is future work.
//
// Undecided batches (losing or superseded proposals — under contention
// most proposals lose) are dropped as soon as all their entries are at
// or below the local high-water marks: any replica that could still
// PROPOSE such a batch is by construction one that retains its
// contents (adoption only offers ids whose contents arrived, and a
// replica behind on the entries keeps them), so a later decision of
// the id can still be served.
func (r *Replica[C]) pruneBatches() {
	horizon := uint64(len(r.log))
	for q := 0; q < r.cfg.N; q++ {
		p := core.ProcessID(q)
		if p == r.cfg.Self {
			continue
		}
		if pa, ok := r.peerApplied[p]; !ok {
			horizon = 0
			break
		} else if pa < horizon {
			horizon = pa
		}
	}
	for s := r.prunedTo + 1; s <= horizon; s++ {
		if bid := r.log[s-1]; bid != 0 {
			delete(r.batches, bid)
			delete(r.inLog, bid)
		}
	}
	if horizon > r.prunedTo {
		r.prunedTo = horizon
	}
	for bid := range r.batches {
		if !r.inLog[bid] && r.batchApplied(bid) {
			delete(r.batches, bid)
			delete(r.offered, bid)
		}
	}
}

// notePeerApplied folds in an observation of a peer's commit index and
// re-runs the pruner (the horizon can advance on peer progress alone,
// e.g. after the local log has quiesced). Callers hold mu.
func (r *Replica[C]) notePeerApplied(p core.ProcessID, applied uint64) {
	if applied > r.peerApplied[p] {
		r.peerApplied[p] = applied
		r.pruneBatches()
	}
}

// batchApplied reports whether every entry of a known batch is at or
// below its client's high-water mark. Callers hold mu.
func (r *Replica[C]) batchApplied(bid int64) bool {
	entries, ok := r.batches[bid]
	if !ok {
		return false
	}
	for _, e := range entries {
		if e.Seq > r.hwm[e.Client] {
			return false
		}
	}
	return true
}

// fetchBatch blocks until batch bid's contents are known, pulling from
// peers on a retry ticker. It reports false when the replica stops.
// The wait is deliberately unbounded: the id was DECIDED, so applying
// anything else (or skipping) would diverge from replicas that have the
// contents; if every holder is gone for good we stall rather than fork
// (see the fault-envelope note in the package comment).
func (r *Replica[C]) fetchBatch(bid int64) ([]Entry[C], bool) {
	pull := appendVarint(nil, bid)
	for {
		r.mu.Lock()
		if entries, ok := r.batches[bid]; ok {
			r.mu.Unlock()
			return entries, true
		}
		w := r.batchWait[bid]
		if w == nil {
			w = make(chan struct{})
			r.batchWait[bid] = w
		}
		r.mu.Unlock()
		r.broadcast(Envelope{Kind: KindBatchPull, From: r.cfg.Self, Payload: pull})
		select {
		case <-w:
		case <-time.After(50 * time.Millisecond):
		case <-r.ctx.Done():
			return nil, false
		}
	}
}

// ---------------------------------------------------------------------
// Demux: the inbound message pump.

// demux routes inbound envelopes until the transport closes or the
// replica stops.
func (r *Replica[C]) demux() {
	in := r.cfg.Transport.Recv()
	for {
		select {
		case env, ok := <-in:
			if !ok {
				return
			}
			r.handle(env)
		case <-r.ctx.Done():
			return
		}
	}
}

// handle dispatches one envelope.
func (r *Replica[C]) handle(env Envelope) {
	switch env.Kind {
	case KindRound:
		r.handleRound(env)
	case KindBatch:
		r.handleBatch(env)
	case KindBatchPull:
		if bid, n := varint(env.Payload); n > 0 {
			r.mu.Lock()
			entries, ok := r.batches[bid]
			var payload []byte
			if ok {
				payload = r.cfg.Batch.AppendEntries(appendVarint(nil, bid), entries)
			}
			r.mu.Unlock()
			if ok {
				r.cfg.Transport.Send(env.From, Envelope{Kind: KindBatch, From: r.cfg.Self, Payload: payload})
			}
		} else {
			r.noteMalformed()
		}
	case KindSync:
		r.handleSync(env)
	case KindSyncPull:
		if from, n := uvarint(env.Payload); n > 0 {
			if from > 0 {
				r.mu.Lock()
				r.notePeerApplied(env.From, from-1)
				r.mu.Unlock()
			}
			r.pushDecisions(env.From, from)
		} else {
			r.noteMalformed()
		}
	}
}

// handleRound classifies a consensus message by slot: current → the
// running instance (or a work poke when idle); old → the sender lags, push
// decisions; future → we lag, pull decisions.
func (r *Replica[C]) handleRound(env Envelope) {
	msg, err := r.cfg.Msg.Decode(env.Payload)
	if err != nil {
		r.noteMalformed()
		return
	}
	r.mu.Lock()
	cur := uint64(len(r.log)) + 1
	// A round message for slot s says its sender has applied s−1.
	if env.Slot > 0 {
		r.notePeerApplied(env.From, env.Slot-1)
	}
	switch {
	case env.Slot == cur:
		if r.curIn != nil {
			select {
			case r.curIn <- roundMsg{From: env.From, Round: env.Round, Payload: msg}:
			default: // overflow = loss; the next round resends
			}
		} else {
			r.poked = true
		}
		r.mu.Unlock()
		r.signalWork()
	case env.Slot < cur:
		r.mu.Unlock()
		r.pushDecisions(env.From, env.Slot)
	default: // env.Slot > cur: we lag
		limited := r.rateLimited(r.lastPull, env.From)
		applied := cur - 1
		r.mu.Unlock()
		if !limited {
			r.cfg.Transport.Send(env.From, Envelope{Kind: KindSyncPull, From: r.cfg.Self,
				Payload: appendUvarint(nil, applied+1)})
		}
	}
}

// handleBatch stores a disseminated batch and wakes adopters and pullers.
func (r *Replica[C]) handleBatch(env Envelope) {
	b := env.Payload
	bid, n := varint(b)
	if n <= 0 || bid <= 0 {
		r.noteMalformed()
		return
	}
	entries, err := r.cfg.Batch.DecodeEntries(b[n:])
	if err != nil {
		r.noteMalformed()
		return
	}
	r.mu.Lock()
	if _, ok := r.batches[bid]; !ok {
		r.batches[bid] = entries
		if !r.batchApplied(bid) {
			r.offered[bid] = struct{}{}
		}
	}
	if w, ok := r.batchWait[bid]; ok {
		close(w)
		delete(r.batchWait, bid)
	}
	r.mu.Unlock()
	r.signalWork()
}

// handleSync records pushed decisions.
func (r *Replica[C]) handleSync(env Envelope) {
	b := env.Payload
	count, n := uvarint(b)
	if n <= 0 || count > maxSyncPairs {
		r.noteMalformed()
		return
	}
	b = b[n:]
	for i := uint64(0); i < count; i++ {
		slot, n1 := uvarint(b)
		if n1 <= 0 {
			r.noteMalformed()
			return
		}
		bid, n2 := varint(b[n1:])
		if n2 <= 0 {
			r.noteMalformed()
			return
		}
		b = b[n1+n2:]
		if slot == 0 {
			r.noteMalformed()
			return
		}
		r.recordDecision(slot, bid, true)
	}
}

// pushDecisions sends the applied decisions from slot `from` on to one
// peer (or everyone for allPeers), rate-limited per destination.
func (r *Replica[C]) pushDecisions(to core.ProcessID, from uint64) {
	if from == 0 {
		from = 1
	}
	r.mu.Lock()
	if to != allPeers && r.rateLimited(r.lastPush, to) {
		r.mu.Unlock()
		return
	}
	applied := uint64(len(r.log))
	if from > applied {
		r.mu.Unlock()
		return
	}
	count := applied - from + 1
	if count > maxSyncPairs {
		count = maxSyncPairs
	}
	payload := appendUvarint(nil, count)
	for s := from; s < from+count; s++ {
		payload = appendUvarint(payload, s)
		payload = appendVarint(payload, r.log[s-1])
	}
	r.mu.Unlock()
	env := Envelope{Kind: KindSync, From: r.cfg.Self, Payload: payload}
	if to == allPeers {
		r.broadcast(env)
	} else {
		r.cfg.Transport.Send(to, env)
	}
}

// rateLimited updates and checks a per-peer limiter. Callers hold mu.
func (r *Replica[C]) rateLimited(m map[core.ProcessID]time.Time, p core.ProcessID) bool {
	now := time.Now()
	if now.Sub(m[p]) < syncRateLimit {
		return true
	}
	m[p] = now
	return false
}

// noteMalformed counts a dropped undecodable message.
func (r *Replica[C]) noteMalformed() {
	r.mu.Lock()
	r.stats.Malformed++
	r.mu.Unlock()
}
