// Replica: the live replicated-state-machine service — the counterpart
// of internal/rsm's Engine, rebuilt for a world without a shared memory.
// In the simulator the engine owns every process and a common pending
// table, so a slot can decide a bitmask over commands everybody already
// sees. Live, each replica knows only its own submissions, so the layer
// splits replication into the two classic halves:
//
//   - Dissemination: a proposer packs its pending commands into a BATCH,
//     assigns it an id that is unique by construction ((proposer+1) in
//     the high bits, a local counter below — no hashing, no collisions),
//     and broadcasts the contents best-effort. Batches are re-pulled on
//     demand, so dissemination only needs fair-lossy links.
//   - Agreement: each slot runs one core.Instance (LastVoting, OTR, …)
//     whose proposals are batch IDS (they fit core.Value). A replica
//     with nothing to propose adopts the newest batch it has heard of,
//     or proposes 0, the no-op batch. Deciding an id whose contents have
//     not arrived yet just delays APPLY, never agreement.
//
// Commands carry (client, seq) session identities; apply keeps a
// high-water mark per client, so overlapping batches (a retried command
// landing in two proposals) still apply exactly once — the same
// exactly-once contract rsm's sessions give, enforced at the other end.
//
// Decided slots spread through a sync protocol that doubles as the
// decide-retransmission and the crash-rejoin path: any round message for
// an old slot reveals a laggard, and any for a future slot reveals that
// WE lag; both trigger a (rate-limited) push or pull of the decision
// log. A replica paused mid-round therefore rejoins by replaying
// decisions, not consensus.
//
// ALL of the above is protocol logic, and none of it lives in this
// file: it is ReplicaCore (replicacore.go), a pure step function that
// the exhaustive model checker (internal/modelcheck) explores directly.
// Replica is the production SHELL around that core — one event-loop
// goroutine that turns transport deliveries, round-timeout fires, pull
// retries, and heartbeat ticks into core events, transmits the
// envelopes each step returns (rate-limiting targeted sync traffic),
// runs the Apply hook for committed entries, and resolves submitter
// waiters. Time, goroutines, and channels stop at this boundary.
//
// Fault envelope: transmission faults of any rate and crash-RECOVERY
// are fully handled — with a Persister configured, kill -9 included:
// the wal package is the paper's stable storage, the sync-before-send
// barrier in dispatch makes every externally visible fact durable
// first, and a restarted replica reloads snapshot+log (locked votes,
// decisions, dedup high-water marks, batch contents) and rejoins via
// the ordinary sync path. The PR-5 dissemination-window stall is
// closed for that model: a proposer's batch body is on its own disk
// before the id is proposed, so a recovered proposer always serves the
// pull (the model checker's CheckStallRecovery probe proves it).
// Permanent crash-STOP of a proposer — machine gone, disk gone — in
// the window after its batch id was decided but before its contents
// reached any other replica still loses the only copy, and apply for
// that slot waits (pulling) until a holder returns — the same way any
// log-based system stalls on losing committed-but-unreplicated data;
// the CheckStall probe keeps that residual limitation documented and
// tested. Volatile (Persister-less) replicas keep the pre-durability
// envelope: pause/rejoin recovers, restart is data loss.

package live

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"heardof/internal/core"
	"heardof/internal/wal"
)

// Entry is one replicated command with its client-session identity.
type Entry[C any] struct {
	Client uint64
	Seq    uint64
	Cmd    C
}

// BatchCodec serializes command batches for dissemination.
type BatchCodec[C any] interface {
	// AppendEntries encodes entries after dst.
	AppendEntries(dst []byte, entries []Entry[C]) []byte
	// DecodeEntries parses an AppendEntries encoding. It runs on raw
	// network input, so implementations must validate before they
	// allocate — in particular, bound the entry count before sizing a
	// slice from it (a hostile header otherwise turns a few bytes into
	// a giant allocation).
	DecodeEntries(src []byte) ([]Entry[C], error)
}

// ApplyResult reports the fate of a submitted command to its waiter.
type ApplyResult struct {
	// Slot is the consensus slot that committed the command.
	Slot uint64
	// Out is whatever the Apply hook returned (e.g. the value a
	// linearizable read observed at apply time).
	Out any
	// Dup marks a submission whose sequence number was already applied.
	Dup bool
}

// ReplicaStats are one replica's service counters. Live runs are not
// deterministic, so these are measurements, not reproducible tables.
type ReplicaStats struct {
	// Applied is the commit index: slots applied so far.
	Applied uint64
	// Committed counts commands applied (exactly-once, after dedup).
	Committed int
	// Divergent counts conflicting decision observations for one slot.
	// Consensus safety says it stays 0; the live smoke jobs assert it.
	Divergent int
	// SyncDecisions counts slots learned through the sync path instead
	// of this replica's own consensus instance.
	SyncDecisions int
	// Rounds accumulates consensus rounds executed by this replica.
	Rounds int64
	// Pending counts accepted-but-uncommitted local submissions.
	Pending int
	// BatchesHeld counts disseminated batches currently retained.
	// Batches of slots every replica has applied are pruned, so on a
	// healthy cluster this stays near the in-flight window instead of
	// growing with history.
	BatchesHeld int
	// Malformed counts undecodable inbound payloads (dropped).
	Malformed int
}

// ReplicaConfig parameterizes one process's replica of one group.
type ReplicaConfig[C any] struct {
	// Self and N identify this process within the group's n processes.
	Self core.ProcessID
	N    int
	// Algorithm decides each slot; Msg is its wire codec.
	Algorithm core.Algorithm
	Msg       Codec
	// Batch serializes command batches.
	Batch BatchCodec[C]
	// Transport connects the group (a Mux Link when several groups share
	// one socket). The replica does not close it.
	Transport Transport
	// Apply is invoked once per committed command, in commit order, from
	// the replica's event loop; its return value reaches the submitter's
	// ApplyResult.Out.
	Apply func(slot uint64, e Entry[C]) any
	// RoundTimeout bounds each round's collection window (default 2ms —
	// the live stand-in for the good-period bound Φ+2Δ). A slot has no
	// ROUND budget: its one instance runs until it decides or the
	// decision arrives via sync (restarting an instance would discard
	// locked algorithm state and break agreement; the model checker's
	// MutFreshRetry mutant proves it).
	RoundTimeout time.Duration
	// MaxBatch caps commands per proposal (default 64).
	MaxBatch int
	// SyncEvery paces the idle anti-entropy heartbeat (default 250ms).
	SyncEvery time.Duration

	// Persist, when non-nil, is the durability layer (typically a
	// wal.Store): every protocol fact a core step saves is made durable
	// by one Sync before the step's envelopes are transmitted or its
	// waiters acknowledged. Nil keeps the replica volatile.
	Persist Persister
	// Recovered is the state to restart from (the wal.Open result for
	// Persist's directory). Nil or zero-valued means a fresh replica.
	// The log tail beyond its application snapshot is re-applied through
	// Apply before the event loop starts.
	Recovered *wal.State
	// SnapshotState captures the application state machine's snapshot
	// encoding, called under the replica's lock right after Apply ran
	// for every entry the snapshot covers.
	SnapshotState func() []byte
	// SnapshotEvery takes a snapshot (truncating the log) every that
	// many applied slots (default 1024; negative disables).
	SnapshotEvery int
}

// syncRateLimit is the minimum interval between targeted sync messages
// to one peer.
const syncRateLimit = 20 * time.Millisecond

// pullRetry paces re-pulls of a decided batch whose contents are missing.
const pullRetry = 50 * time.Millisecond

// waiterKey identifies a submission.
type waiterKey struct{ client, seq uint64 }

// Replica runs one process's share of a replicated command log.
type Replica[C any] struct {
	cfg ReplicaConfig[C]

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu      sync.Mutex
	core    *ReplicaCore[C]
	waiters map[waiterKey]chan ApplyResult

	snapLast   uint64 // applied-slot count at the last snapshot
	persistErr error  // first durability failure; the replica halts on it

	lastPush map[core.ProcessID]time.Time // targeted sync-push rate limiter
	lastPull map[core.ProcessID]time.Time // targeted sync-pull rate limiter

	workCh chan struct{}
}

// NewReplica validates the configuration and builds a stopped replica;
// call Start to begin participating.
func NewReplica[C any](cfg ReplicaConfig[C]) (*Replica[C], error) {
	if cfg.Transport == nil {
		return nil, errors.New("live: nil transport")
	}
	ccfg := CoreConfig[C]{
		Self:      cfg.Self,
		N:         cfg.N,
		Algorithm: cfg.Algorithm,
		Msg:       cfg.Msg,
		Batch:     cfg.Batch,
		MaxBatch:  cfg.MaxBatch,
		Persist:   cfg.Persist,
	}
	var rc *ReplicaCore[C]
	var err error
	if cfg.Recovered != nil {
		rc, err = RestoreReplicaCore(ccfg, cfg.Recovered)
	} else {
		rc, err = NewReplicaCore(ccfg)
	}
	if err != nil {
		return nil, err
	}
	if cfg.RoundTimeout <= 0 {
		cfg.RoundTimeout = 2 * time.Millisecond
	}
	if cfg.SyncEvery <= 0 {
		cfg.SyncEvery = 250 * time.Millisecond
	}
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = 1024
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &Replica[C]{
		cfg: cfg, ctx: ctx, cancel: cancel,
		core:     rc,
		waiters:  make(map[waiterKey]chan ApplyResult),
		lastPush: make(map[core.ProcessID]time.Time),
		lastPull: make(map[core.ProcessID]time.Time),
		workCh:   make(chan struct{}, 1),
	}
	if cfg.Recovered != nil {
		// Catch the application up with the protocol log: re-apply the
		// fresh entries of every slot past the recovered app snapshot. The
		// batches are present by construction — a batch is durable before
		// (or with) the apply record that references it.
		r.snapLast = cfg.Recovered.AppSlots
		for _, ap := range cfg.Recovered.Tail {
			if ap.Bid == 0 || cfg.Apply == nil {
				continue
			}
			entries, ok := rc.EntriesOf(ap.Bid)
			if !ok && len(ap.Fresh) > 0 {
				cancel()
				return nil, fmt.Errorf("live: recovery: batch %#x of applied slot %d missing", ap.Bid, ap.Slot)
			}
			for _, e := range entries {
				for _, cs := range ap.Fresh {
					if e.Client == cs.Client && e.Seq == cs.Seq {
						cfg.Apply(ap.Slot, e)
						break
					}
				}
			}
		}
	}
	return r, nil
}

// Start launches the event loop.
func (r *Replica[C]) Start() {
	r.wg.Add(1)
	go func() { defer r.wg.Done(); r.run() }()
}

// Stop halts the replica (it does not close the transport) and releases
// every outstanding waiter with a zero ApplyResult.
func (r *Replica[C]) Stop() {
	r.cancel()
	r.wg.Wait()
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, ch := range r.waiters {
		close(ch)
		delete(r.waiters, k)
	}
}

// Submit accepts a command under a client session; sequence numbers must
// be positive and fresh per client (a seq at or below the client's
// applied high-water mark is a duplicate and resolves immediately). The
// returned channel receives exactly one ApplyResult when the command
// commits (buffered: never blocks the replica), or closes without a
// value if the replica stops first.
//
// A client's submissions to one replica must carry increasing sequence
// numbers in submission order — batches are prefixes of the pending
// queue, so an out-of-order seq could be skipped by dedup forever. Use
// SubmitNext unless you are deliberately modeling retries.
func (r *Replica[C]) Submit(client, seq uint64, cmd C) (<-chan ApplyResult, error) {
	if seq == 0 {
		return nil, errors.New("live: sequence numbers start at 1")
	}
	ch := make(chan ApplyResult, 1)
	r.mu.Lock()
	if r.core.Accept(client, seq, cmd) {
		r.mu.Unlock()
		ch <- ApplyResult{Dup: true}
		return ch, nil
	}
	r.supersede(waiterKey{client, seq}, ch)
	r.mu.Unlock()
	r.signalWork()
	return ch, nil
}

// SubmitNext enters cmd at the client's next fresh sequence number,
// assigned atomically with enqueueing — the safe path for concurrent
// submitters sharing a client session (e.g. HTTP handlers of one server
// process). It returns the waiter and the sequence used.
func (r *Replica[C]) SubmitNext(client uint64, cmd C) (<-chan ApplyResult, uint64) {
	ch := make(chan ApplyResult, 1)
	r.mu.Lock()
	seq := r.core.NextSeq(client)
	if r.core.Accept(client, seq, cmd) {
		r.mu.Unlock()
		ch <- ApplyResult{Slot: 0, Dup: true}
		return ch, seq
	}
	r.supersede(waiterKey{client, seq}, ch)
	r.mu.Unlock()
	r.signalWork()
	return ch, seq
}

// supersede installs a waiter, closing any previous waiter of the same
// submission (a resubmission supersedes it). Callers hold mu.
func (r *Replica[C]) supersede(key waiterKey, ch chan ApplyResult) {
	if old, ok := r.waiters[key]; ok {
		close(old)
	}
	r.waiters[key] = ch
}

// Stats returns a snapshot of the service counters.
func (r *Replica[C]) Stats() ReplicaStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.core.Counters()
}

// LogHash fingerprints the applied decision log (slot, batch id)
// sequence: equal prefixes hash equal, so replicas of one group must
// agree on it up to their commit indexes.
func (r *Replica[C]) LogHash() (uint64, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.core.LogFingerprint()
}

// DecisionLog copies the applied decisions (for tests).
func (r *Replica[C]) DecisionLog() []int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.core.DecisionLogCopy()
}

// Checkpoint takes a durability snapshot now — protocol state plus the
// SnapshotState application capture — and truncates the log, so the
// next restart replays from here instead of from the log's start. The
// graceful-shutdown path (hoserve's SIGTERM handler) calls this; it is
// a no-op without a persister.
func (r *Replica[C]) Checkpoint() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cfg.Persist == nil {
		return nil
	}
	if r.persistErr != nil {
		return r.persistErr
	}
	return r.checkpointLocked()
}

// checkpointLocked snapshots under mu.
func (r *Replica[C]) checkpointLocked() error {
	st := r.core.PersistState()
	st.AppSlots = uint64(len(st.Log))
	if r.cfg.SnapshotState != nil {
		st.AppState = r.cfg.SnapshotState()
	}
	if err := r.cfg.Persist.Snapshot(st); err != nil {
		return err
	}
	r.snapLast = st.AppSlots
	return nil
}

// Err reports the durability failure that halted the replica, if any.
func (r *Replica[C]) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.persistErr
}

// signalWork nudges the event loop without blocking.
func (r *Replica[C]) signalWork() {
	select {
	case r.workCh <- struct{}{}:
	default:
	}
}

// ---------------------------------------------------------------------
// The event loop.

// run is the replica's only goroutine: it feeds events into the core and
// keeps the two shell timers — the per-round collection window and the
// missing-batch pull retry — consistent with the core's state.
func (r *Replica[C]) run() {
	in := r.cfg.Transport.Recv()
	hb := time.NewTicker(r.cfg.SyncEvery)
	defer hb.Stop()

	roundTimer := newStoppedTimer()
	defer roundTimer.Stop()
	retryTimer := newStoppedTimer()
	defer retryTimer.Stop()

	// The (slot, round) the round timer was last armed for: re-arm
	// whenever the core enters a different round.
	var armedSlot uint64
	var armedRound core.Round

	reconcile := func() {
		r.mu.Lock()
		slot, round, active := r.core.RoundState()
		blocked := r.core.Blocked() != 0
		r.mu.Unlock()
		if active {
			if slot != armedSlot || round != armedRound {
				armedSlot, armedRound = slot, round
				resetTimer(roundTimer, r.cfg.RoundTimeout)
			}
		} else if armedSlot != 0 || armedRound != 0 {
			armedSlot, armedRound = 0, 0
			stopTimer(roundTimer)
		}
		if blocked {
			resetTimer(retryTimer, pullRetry)
		} else {
			stopTimer(retryTimer)
		}
	}
	reconcile()

	for {
		select {
		case env, ok := <-in:
			if !ok {
				return
			}
			r.dispatch(Event[C]{Kind: EvEnvelope, Env: env})
		case <-r.workCh:
			r.dispatch(Event[C]{Kind: EvNudge})
		case <-roundTimer.C:
			armedSlot, armedRound = 0, 0 // fired: re-arm via reconcile
			r.dispatch(Event[C]{Kind: EvRoundTimeout})
		case <-retryTimer.C:
			r.dispatch(Event[C]{Kind: EvTick})
		case <-hb.C:
			r.dispatch(Event[C]{Kind: EvTick})
		case <-r.ctx.Done():
			return
		}
		reconcile()
	}
}

// dispatch runs one core step and executes its effects: the durability
// barrier FIRST (everything the step saved is synced before any of its
// output becomes visible), then the Apply hook and waiter resolution
// for committed entries (under mu, in commit order), then transmission
// of the step's envelopes with targeted sync traffic rate-limited per
// peer. A durability failure halts the replica — acknowledging or
// gossiping state the disk refused would turn the next crash into the
// split-brain the log exists to prevent, so the replica goes silent
// (crash-stop) instead.
func (r *Replica[C]) dispatch(ev Event[C]) {
	r.mu.Lock()
	res := r.core.Step(ev)
	if r.cfg.Persist != nil {
		//holint:allow lockorder the sync-before-send barrier is atomic with the step by design: no envelope or ack of this step may become visible before the fsync, and every other mu path is a step that must serialize behind the barrier anyway (DESIGN.md §11)
		if err := r.cfg.Persist.Sync(); err != nil {
			if r.persistErr == nil {
				r.persistErr = err
			}
			r.mu.Unlock()
			r.cancel()
			return
		}
	}
	for _, ae := range res.Applied {
		out := ApplyResult{Slot: ae.Slot, Dup: !ae.Fresh}
		if ae.Fresh && r.cfg.Apply != nil {
			out.Out = r.cfg.Apply(ae.Slot, ae.Entry)
		}
		key := waiterKey{ae.Entry.Client, ae.Entry.Seq}
		if ch, ok := r.waiters[key]; ok {
			//holint:allow lockorder the waiter channel is buffered(1) and this delete makes it the sole send ever, so the send cannot block
			ch <- out
			delete(r.waiters, key)
		}
	}
	if r.cfg.Persist != nil && r.cfg.SnapshotEvery > 0 {
		if n, _ := r.core.LogFingerprint(); n >= r.snapLast+uint64(r.cfg.SnapshotEvery) {
			// The Apply hook just ran for everything in the log, so the
			// app snapshot lines up with the protocol snapshot.
			if err := r.checkpointLocked(); err != nil {
				if r.persistErr == nil {
					r.persistErr = err
				}
				r.mu.Unlock()
				r.cancel()
				return
			}
		}
	}
	var send []Outbound
	if len(res.Out) > 0 {
		now := time.Now()
		send = res.Out[:0]
		for _, o := range res.Out {
			if o.To != AllPeers {
				switch o.Env.Kind {
				case KindSync:
					if r.rateLimited(r.lastPush, o.To, now) {
						continue
					}
				case KindSyncPull:
					if r.rateLimited(r.lastPull, o.To, now) {
						continue
					}
				}
			}
			send = append(send, o)
		}
	}
	r.mu.Unlock()
	for _, o := range send {
		if o.To == AllPeers {
			r.broadcast(o.Env)
		} else {
			r.cfg.Transport.Send(o.To, o.Env)
		}
	}
}

// broadcast sends env to every peer but self.
func (r *Replica[C]) broadcast(env Envelope) {
	for q := 0; q < r.cfg.N; q++ {
		if p := core.ProcessID(q); p != r.cfg.Self {
			r.cfg.Transport.Send(p, env)
		}
	}
}

// rateLimited updates and checks a per-peer limiter. Callers hold mu.
func (r *Replica[C]) rateLimited(m map[core.ProcessID]time.Time, p core.ProcessID, now time.Time) bool {
	if now.Sub(m[p]) < syncRateLimit {
		return true
	}
	m[p] = now
	return false
}

// ---------------------------------------------------------------------
// Timer plumbing.

// newStoppedTimer returns a timer that is not running and whose channel
// is empty.
func newStoppedTimer() *time.Timer {
	t := time.NewTimer(time.Hour)
	stopTimer(t)
	return t
}

// stopTimer stops t and drains a pending fire.
func stopTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
}

// resetTimer (re)arms t for d from now.
func resetTimer(t *time.Timer, d time.Duration) {
	stopTimer(t)
	t.Reset(d)
}
