package live

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strings"
	"testing"
	"time"

	"heardof/internal/core"
	"heardof/internal/lastvoting"
	"heardof/internal/otr"
	"heardof/internal/wal"
)

// snapshotCmds / restoreCmds give applyLog a trivial snapshot codec so
// the durability tests can exercise the full app-state path.
func (l *applyLog) snapshotState() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	return []byte(strings.Join(l.cmds, "\x00"))
}

func (l *applyLog) restoreState(b []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(b) > 0 {
		l.cmds = strings.Split(string(b), "\x00")
	}
}

// TestReplicaRestartFromDisk is the end-to-end durability flow: a
// persisted replica commits load (crossing several snapshot
// boundaries), hard-stops without a graceful checkpoint, restarts from
// its data dir, and rejoins with log, applied commands, and session
// dedup intact — then keeps committing.
func TestReplicaRestartFromDisk(t *testing.T) {
	const n = 3
	dir := t.TempDir()
	net, err := NewChanNetwork(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()

	reps := make([]*Replica[string], n)
	logs := make([]*applyLog, n)
	newRep := func(p core.ProcessID, persist Persister, rec *wal.State) *Replica[string] {
		lg := logs[p]
		rep, err := NewReplica(ReplicaConfig[string]{
			Self: p, N: n,
			Algorithm: lastvoting.Algorithm{},
			Msg:       lastvoting.WireCodec{},
			Batch:     strCodec{},
			Transport: net.Transport(p),
			Apply:     lg.hook,
			Persist:   persist, Recovered: rec,
			SnapshotState: lg.snapshotState,
			SnapshotEvery: 4, // cross several snapshot+truncate cycles
			RoundTimeout:  time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	store, st, err := wal.Open(dir, wal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < n; p++ {
		logs[p] = &applyLog{}
		if p == 2 {
			reps[p] = newRep(core.ProcessID(p), store, st)
		} else {
			reps[p] = newRep(core.ProcessID(p), nil, nil)
		}
		reps[p].Start()
	}
	defer func() {
		for _, r := range reps {
			if r != nil {
				r.Stop()
			}
		}
	}()

	// Phase 1: load through every replica, including the persisted one.
	for i := 0; i < 12; i++ {
		p := i % n
		ch, _ := reps[p].SubmitNext(uint64(p+1), fmt.Sprintf("cmd-%d", i))
		waitApplied(t, ch, 10*time.Second, fmt.Sprintf("cmd-%d", i))
	}
	requireSameLogs(t, reps, logs)
	preLen, preHash := reps[2].LogHash()
	preCommitted := reps[2].Stats().Committed

	// Hard stop: no Checkpoint — recovery must come from snapshot+log
	// alone (everything externally visible was synced before it left).
	reps[2].Stop()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart from the same directory.
	store2, st2, err := wal.Open(dir, wal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(st2.Log)) != preLen {
		t.Fatalf("recovered %d slots, stopped at %d", len(st2.Log), preLen)
	}
	logs[2] = &applyLog{}
	logs[2].restoreState(st2.AppState)
	reps[2] = newRep(2, store2, st2)
	reps[2].Start()
	// Stop before closing the store (the run goroutine syncs to it);
	// this runs before the stop-all defer above, which skips nil.
	defer func() {
		reps[2].Stop()
		reps[2] = nil
		store2.Close()
	}()

	if gotLen, gotHash := reps[2].LogHash(); gotLen != preLen || gotHash != preHash {
		t.Fatalf("restart log fingerprint (%d, %#x) != pre-crash (%d, %#x)",
			gotLen, gotHash, preLen, preHash)
	}
	if got := reps[2].Stats().Committed; got != preCommitted {
		t.Fatalf("restart committed %d != pre-crash %d", got, preCommitted)
	}
	if got := logs[2].snapshot(); len(got) != preCommitted {
		t.Fatalf("restart app state has %d commands, want %d", len(got), preCommitted)
	}

	// Session dedup survived: an already-applied (client, seq) resolves
	// as a duplicate, not a second apply.
	dupCh, err := reps[2].Submit(3, 1, "cmd-2-replayed")
	if err != nil {
		t.Fatal(err)
	}
	if res := waitApplied(t, dupCh, 10*time.Second, "dup probe"); !res.Dup {
		t.Fatal("pre-crash sequence number re-applied after restart")
	}

	// Phase 2: the restarted replica keeps committing with the group.
	for i := 12; i < 20; i++ {
		p := i % n
		ch, _ := reps[p].SubmitNext(uint64(p+1), fmt.Sprintf("cmd-%d", i))
		waitApplied(t, ch, 10*time.Second, fmt.Sprintf("cmd-%d", i))
	}
	requireSameLogs(t, reps, logs)
	for p, r := range reps {
		if d := r.Stats().Divergent; d != 0 {
			t.Fatalf("replica %d observed %d divergent decisions", p, d)
		}
	}
}

// TestRestartFromDiskAfterGC pins down what the durable log buys over
// the empty-state rejoin documented in TestTCPListenerRestartRejoins:
// once every replica applied a slot, its batch is GC'd everywhere, so
// an empty-state rejoiner could never refetch it — but a disk rejoiner
// does not need to: its own log already covers the pruned history.
func TestRestartFromDiskAfterGC(t *testing.T) {
	const n = 3
	dir := t.TempDir()
	net, err := NewChanNetwork(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()

	reps := make([]*Replica[string], n)
	logs := make([]*applyLog, n)
	mk := func(p core.ProcessID, persist Persister, rec *wal.State) *Replica[string] {
		lg := logs[p]
		rep, err := NewReplica(ReplicaConfig[string]{
			Self: p, N: n,
			Algorithm: otr.Algorithm{},
			Msg:       otr.WireCodec{},
			Batch:     strCodec{},
			Transport: net.Transport(p),
			Apply:     lg.hook,
			Persist:   persist, Recovered: rec,
			SnapshotState: lg.snapshotState,
			RoundTimeout:  time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	store, st, err := wal.Open(dir, wal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < n; p++ {
		logs[p] = &applyLog{}
		if p == 2 {
			reps[p] = mk(core.ProcessID(p), store, st)
		} else {
			reps[p] = mk(core.ProcessID(p), nil, nil)
		}
		reps[p].Start()
	}
	defer func() {
		for _, r := range reps {
			if r != nil {
				r.Stop()
			}
		}
	}()

	for i := 0; i < 8; i++ {
		ch, _ := reps[i%n].SubmitNext(uint64(i%n+1), fmt.Sprintf("v-%d", i))
		waitApplied(t, ch, 10*time.Second, "load")
	}
	requireSameLogs(t, reps, logs)

	// Wait for the GC horizon to pass the whole log on a survivor.
	deadline := time.Now().Add(10 * time.Second)
	for reps[0].Stats().BatchesHeld > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("batches never pruned: %d held", reps[0].Stats().BatchesHeld)
		}
		time.Sleep(2 * time.Millisecond)
	}

	preLen, preHash := reps[2].LogHash()
	reps[2].Stop()
	store.Close()

	store2, st2, err := wal.Open(dir, wal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	logs[2] = &applyLog{}
	logs[2].restoreState(st2.AppState)
	reps[2] = mk(2, store2, st2)
	reps[2].Start()
	// Stop before closing the store (the run goroutine syncs to it);
	// this runs before the stop-all defer above, which skips nil.
	defer func() {
		reps[2].Stop()
		reps[2] = nil
		store2.Close()
	}()

	// No refetch needed: the log IS the history the group pruned.
	if gotLen, gotHash := reps[2].LogHash(); gotLen != preLen || gotHash != preHash {
		t.Fatalf("rejoin fingerprint (%d, %#x) != pre-crash (%d, %#x)", gotLen, gotHash, preLen, preHash)
	}
	ch, _ := reps[2].SubmitNext(9, "after-gc")
	waitApplied(t, ch, 10*time.Second, "post-rejoin submit")
	requireSameLogs(t, reps, logs)
}

// TestRecoverMatchesDiskRestore ties the model checker's crash-RECOVERY
// transition (ReplicaCore.Recover, a pure-state projection) to the
// production path (wal.Open + RestoreReplicaCore): driving one core
// with a real store and a sync barrier after every step, the two
// recovery routes agree on all protocol state — the disk route may
// only retain MORE batch contents (log records outlive in-memory GC
// until the next snapshot), which is pure availability upside.
func TestRecoverMatchesDiskRestore(t *testing.T) {
	dir := t.TempDir()
	store, st0, err := wal.Open(dir, wal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(st0.Log) != 0 {
		t.Fatal("fresh dir not empty")
	}
	cfg := CoreConfig[string]{
		Self: 0, N: 1,
		Algorithm: lastvoting.Algorithm{},
		Msg:       lastvoting.WireCodec{},
		Batch:     strCodec{},
		Persist:   store,
	}
	c, err := NewReplicaCore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// n=1: every submit decides and applies within its own step.
	for i := 0; i < 5; i++ {
		c.Step(Event[string]{Kind: EvSubmit, Client: 1, Seq: uint64(i + 1), Cmd: fmt.Sprintf("c%d", i)})
		if err := store.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := c.LogFingerprint(); n != 5 {
		t.Fatalf("applied %d slots, want 5", n)
	}

	mem := c.Recover()
	store.Close()
	store2, st, err := wal.Open(dir, wal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	cfg.Persist = nil
	disk, err := RestoreReplicaCore(cfg, st)
	if err != nil {
		t.Fatal(err)
	}

	memLen, memHash := mem.LogFingerprint()
	diskLen, diskHash := disk.LogFingerprint()
	if memLen != diskLen || memHash != diskHash {
		t.Fatalf("log fingerprints differ: mem (%d, %#x) vs disk (%d, %#x)",
			memLen, memHash, diskLen, diskHash)
	}
	if a, b := mem.NextSeq(1), disk.NextSeq(1); a != b {
		t.Fatalf("next seq differ: %d vs %d", a, b)
	}
	if a, b := mem.BatchesCreated(), disk.BatchesCreated(); a != b {
		t.Fatalf("batch counters differ: %d vs %d", a, b)
	}
	if a, b := mem.Counters().Committed, disk.Counters().Committed; a != b {
		t.Fatalf("committed differ: %d vs %d", a, b)
	}
	for slot := uint64(1); slot <= memLen; slot++ {
		bid, _ := mem.LogAt(slot)
		// Disk retains at least what memory recovery retains.
		if mem.HoldsBatch(bid) && !disk.HoldsBatch(bid) {
			t.Fatalf("disk restore lost batch %#x of slot %d", bid, slot)
		}
	}
}

// TestRestoredVoteInstalled checks the locked-vote mechanics in
// isolation: a recovered core holding a persisted instance state
// re-installs it — estimate included — when consensus for the slot
// restarts, and MutForgetVote (the seeded recovery bug) drops it.
func TestRestoredVoteInstalled(t *testing.T) {
	alg := lastvoting.Algorithm{}
	locked := alg.NewInstance(1, 3, core.Value(4242))
	vote := locked.(interface{ AppendState(dst []byte) []byte }).AppendState(nil)

	st := &wal.State{
		Log:     []int64{7},
		HWM:     map[uint64]uint64{1: 1},
		Batches: map[int64][]byte{},
		Decided: map[uint64]int64{},
		// The vote belongs to the next slot (2): mid-consensus crash.
		VoteSlot: 2,
		Vote:     vote,
	}
	cfg := CoreConfig[string]{
		Self: 1, N: 3,
		Algorithm: alg,
		Msg:       lastvoting.WireCodec{},
		Batch:     strCodec{},
	}
	c, err := RestoreReplicaCore(cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.PersistState(); got.VoteSlot != 2 || !bytes.Equal(got.Vote, vote) {
		t.Fatalf("restored core does not carry the vote: %+v", got)
	}
	// Any step restarts the slot (the restore poked the core); the new
	// instance must carry the locked estimate.
	c.Step(Event[string]{Kind: EvNudge})
	if slot, _, active := c.RoundState(); !active || slot != 2 {
		t.Fatalf("consensus did not restart for slot 2 (active=%v slot=%d)", active, slot)
	}
	after := c.PersistState()
	if after.VoteSlot != 2 {
		t.Fatalf("running instance not persisted: %+v", after)
	}
	if x, n := binary.Varint(after.Vote); n <= 0 || x != 4242 {
		t.Fatalf("restored instance lost the locked estimate: x=%d", x)
	}

	// The mutant forgets: same state, vote gone.
	cfg.Mutation = MutForgetVote
	m, err := RestoreReplicaCore(cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.PersistState(); got.VoteSlot != 0 || len(got.Vote) != 0 {
		t.Fatalf("MutForgetVote kept the vote: %+v", got)
	}
}

// TestStaleVoteDropped: a persisted vote for an already-applied slot is
// ignored on restore (the decision superseded it).
func TestStaleVoteDropped(t *testing.T) {
	alg := otr.Algorithm{}
	vote := alg.NewInstance(0, 3, core.Value(9)).(interface {
		AppendState(dst []byte) []byte
	}).AppendState(nil)
	st := &wal.State{
		Log:      []int64{9},
		HWM:      map[uint64]uint64{},
		Batches:  map[int64][]byte{},
		Decided:  map[uint64]int64{},
		VoteSlot: 1, // slot 1 already applied
		Vote:     vote,
	}
	c, err := RestoreReplicaCore(CoreConfig[string]{
		Self: 0, N: 3,
		Algorithm: alg,
		Msg:       otr.WireCodec{},
		Batch:     strCodec{},
	}, st)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.PersistState(); got.VoteSlot != 0 {
		t.Fatalf("stale vote survived restore: %+v", got)
	}
}
