package core

// Message is an algorithm-specific round-message payload. Payloads must be
// treated as immutable once returned from Send: the runner may deliver the
// same payload value to many processes.
type Message any

// IncomingMessage pairs a round-message payload with its sender.
type IncomingMessage struct {
	From    ProcessID
	Payload Message
}

// Senders returns the heard-of set implied by a message vector.
func Senders(msgs []IncomingMessage) PIDSet {
	var s PIDSet
	for _, m := range msgs {
		s = s.Add(m.From)
	}
	return s
}

// Instance is one process's instance of an HO algorithm: the pair
// ⟨S_p^r, T_p^r⟩ of the paper plus decision observation.
//
// The contract mirrors the communication-closed round structure:
//
//   - Send(r) is S_p^r applied to the current state. It must be free of
//     observable side effects (the paper notes that calling S_p^r never
//     changes s_p), because the implementation layer may skip invoking it
//     for rounds it jumps over.
//   - Transition(r, msgs) is T_p^r(μ⃗, s_p). msgs is the partial vector of
//     round-r messages received; its set of senders is HO(p, r). A nil or
//     empty slice models a round in which nothing was heard. The slice is
//     only valid for the duration of the call — the runner reuses its
//     backing array across rounds — so implementations must copy anything
//     they keep (payload values may be retained; they are immutable).
//   - Rounds are delivered in strictly increasing order, every round
//     exactly once (skipped rounds get an empty Transition call).
type Instance interface {
	// Send returns the round-r message (S_p^r).
	Send(r Round) Message
	// Transition applies T_p^r to the received partial vector.
	Transition(r Round, msgs []IncomingMessage)
	// Decided reports the instance's decision, if any.
	Decided() (Value, bool)
}

// Algorithm is a factory of per-process instances of an HO algorithm.
type Algorithm interface {
	// Name identifies the algorithm in traces and benchmarks.
	Name() string
	// NewInstance creates process p's instance in a system of n processes
	// with initial value initial.
	NewInstance(p ProcessID, n int, initial Value) Instance
}

// Snapshot is an opaque deep copy of an instance's state, used to model
// stable storage in the crash-recovery model. Implementations must
// guarantee that mutating the live instance after Snapshot does not affect
// the snapshot, and vice versa.
type Snapshot any

// Recoverable is implemented by instances whose state can be saved to and
// restored from stable storage (the s_p of Algorithms 2 and 3).
type Recoverable interface {
	// Snapshot returns a deep copy of the instance state.
	Snapshot() Snapshot
	// Restore replaces the instance state with a previously taken snapshot.
	Restore(s Snapshot)
}
