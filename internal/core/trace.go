package core

import "fmt"

// RoundRecord captures the heard-of sets of one round: HO[p] is HO(p, r).
type RoundRecord struct {
	HO []PIDSet
}

// Trace is the record of an HO computation: the heard-of sets of every
// executed round and the decision status of every process. Communication
// predicates (package predicate) are evaluated over traces.
type Trace struct {
	N         int
	Initial   []Value
	Rounds    []RoundRecord
	Decisions []Decision
}

// NewTrace creates an empty trace for n processes with the given initial
// values (copied).
func NewTrace(n int, initial []Value) *Trace {
	iv := make([]Value, len(initial))
	copy(iv, initial)
	return &Trace{
		N:         n,
		Initial:   iv,
		Decisions: make([]Decision, n),
	}
}

// NumRounds returns the number of recorded rounds.
func (t *Trace) NumRounds() Round { return Round(len(t.Rounds)) }

// HO returns HO(p, r), or the empty set if round r was not recorded.
func (t *Trace) HO(p ProcessID, r Round) PIDSet {
	if r < 1 || int(r) > len(t.Rounds) {
		return EmptySet
	}
	return t.Rounds[r-1].HO[p]
}

// RecordRound appends the heard-of sets of the next round. The slice is
// copied.
func (t *Trace) RecordRound(ho []PIDSet) {
	cp := make([]PIDSet, len(ho))
	copy(cp, ho)
	t.Rounds = append(t.Rounds, RoundRecord{HO: cp})
}

// RecordDecision records the first decision of process p; later calls for
// the same process are ignored (a process decides at most once).
func (t *Trace) RecordDecision(p ProcessID, v Value, r Round) {
	if t.Decisions[p].Decided {
		return
	}
	t.Decisions[p] = Decision{Decided: true, Value: v, Round: r}
}

// AllDecided reports whether every process in Π decided.
func (t *Trace) AllDecided() bool {
	for _, d := range t.Decisions {
		if !d.Decided {
			return false
		}
	}
	return true
}

// DecidedSet returns the set of processes that decided.
func (t *Trace) DecidedSet() PIDSet {
	var s PIDSet
	for p, d := range t.Decisions {
		if d.Decided {
			s = s.Add(ProcessID(p))
		}
	}
	return s
}

// AgreementHolds reports whether no two processes decided differently (the
// agreement property of consensus).
func (t *Trace) AgreementHolds() bool {
	var first *Value
	for i := range t.Decisions {
		d := t.Decisions[i]
		if !d.Decided {
			continue
		}
		if first == nil {
			v := d.Value
			first = &v
		} else if *first != d.Value {
			return false
		}
	}
	return true
}

// IntegrityHolds reports whether every decision value is the initial value
// of some process (the integrity property of consensus).
func (t *Trace) IntegrityHolds() bool {
	initials := make(map[Value]bool, len(t.Initial))
	for _, v := range t.Initial {
		initials[v] = true
	}
	for _, d := range t.Decisions {
		if d.Decided && !initials[d.Value] {
			return false
		}
	}
	return true
}

// AgreedValue returns the single value every process decided. It fails if
// any process is still undecided (wrapping ErrNotDecided, so callers can
// test for the condition with errors.Is) or if two processes decided
// differently. It is the safe way to extract "the" decision from a trace:
// reading Decisions[0].Value raw silently returns the zero Value for an
// undecided process and masks agreement violations.
func (t *Trace) AgreedValue() (Value, error) {
	if len(t.Decisions) == 0 {
		return 0, fmt.Errorf("trace records no processes: %w", ErrNotDecided)
	}
	undecided := 0
	for _, d := range t.Decisions {
		if !d.Decided {
			undecided++
		}
	}
	if undecided > 0 {
		return 0, fmt.Errorf("%d of %d processes undecided: %w", undecided, len(t.Decisions), ErrNotDecided)
	}
	if !t.AgreementHolds() {
		return 0, fmt.Errorf("agreement violated: decisions %v", t.Decisions)
	}
	return t.Decisions[0].Value, nil
}

// CheckConsensusSafety returns an error describing the first safety
// violation found (agreement or integrity), or nil.
func (t *Trace) CheckConsensusSafety() error {
	if !t.AgreementHolds() {
		return fmt.Errorf("agreement violated: decisions %v", t.Decisions)
	}
	if !t.IntegrityHolds() {
		return fmt.Errorf("integrity violated: decisions %v, initial %v", t.Decisions, t.Initial)
	}
	return nil
}

// Kernel returns the kernel of round r: the set of processes heard by
// every process in listeners, i.e. ∩_{p∈listeners} HO(p, r).
func (t *Trace) Kernel(r Round, listeners PIDSet) PIDSet {
	k := FullSet(t.N)
	listeners.ForEach(func(p ProcessID) {
		k = k.Intersect(t.HO(p, r))
	})
	return k
}

// MaxDecisionRound returns the largest round at which some process decided,
// or 0 if nobody decided.
func (t *Trace) MaxDecisionRound() Round {
	var max Round
	for _, d := range t.Decisions {
		if d.Decided && d.Round > max {
			max = d.Round
		}
	}
	return max
}
