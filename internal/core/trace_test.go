package core

import (
	"errors"
	"testing"
)

func traceWith(n int, initial []Value, rounds ...[]PIDSet) *Trace {
	tr := NewTrace(n, initial)
	for _, r := range rounds {
		tr.RecordRound(r)
	}
	return tr
}

func TestTraceHOOutOfRange(t *testing.T) {
	tr := traceWith(2, []Value{1, 2}, []PIDSet{SetOf(0), SetOf(0, 1)})
	if tr.HO(0, 0) != EmptySet {
		t.Error("HO at round 0 not empty")
	}
	if tr.HO(0, 2) != EmptySet {
		t.Error("HO past last round not empty")
	}
	if tr.HO(1, 1) != SetOf(0, 1) {
		t.Error("HO(1,1) wrong")
	}
}

func TestTraceDecisionsAndAgreement(t *testing.T) {
	tr := NewTrace(3, []Value{7, 8, 9})
	if tr.AllDecided() {
		t.Error("AllDecided on fresh trace")
	}
	tr.RecordDecision(0, 7, 2)
	tr.RecordDecision(0, 8, 3) // ignored: first decision wins
	if d := tr.Decisions[0]; !d.Decided || d.Value != 7 || d.Round != 2 {
		t.Errorf("decision 0 = %v", d)
	}
	tr.RecordDecision(1, 7, 4)
	if !tr.AgreementHolds() {
		t.Error("agreement should hold")
	}
	tr.RecordDecision(2, 9, 4)
	if tr.AgreementHolds() {
		t.Error("agreement should be violated (7 vs 9)")
	}
	if !tr.AllDecided() {
		t.Error("AllDecided should hold")
	}
	if tr.DecidedSet() != SetOf(0, 1, 2) {
		t.Errorf("DecidedSet = %v", tr.DecidedSet())
	}
	if tr.MaxDecisionRound() != 4 {
		t.Errorf("MaxDecisionRound = %d", tr.MaxDecisionRound())
	}
}

func TestTraceIntegrity(t *testing.T) {
	tr := NewTrace(2, []Value{1, 2})
	tr.RecordDecision(0, 2, 1)
	if !tr.IntegrityHolds() {
		t.Error("integrity should hold for initial value")
	}
	tr.RecordDecision(1, 42, 1)
	if tr.IntegrityHolds() {
		t.Error("integrity should be violated for non-initial value")
	}
	if err := tr.CheckConsensusSafety(); err == nil {
		t.Error("CheckConsensusSafety should report a violation")
	}
}

func TestTraceKernel(t *testing.T) {
	tr := traceWith(3, []Value{0, 0, 0},
		[]PIDSet{SetOf(0, 1, 2), SetOf(0, 1), SetOf(1, 2)},
	)
	if k := tr.Kernel(1, FullSet(3)); k != SetOf(1) {
		t.Errorf("Kernel = %v, want {1}", k)
	}
	if k := tr.Kernel(1, SetOf(0, 1)); k != SetOf(0, 1) {
		t.Errorf("restricted Kernel = %v, want {0,1}", k)
	}
}

func TestRecordRoundCopies(t *testing.T) {
	ho := []PIDSet{SetOf(0), SetOf(1)}
	tr := NewTrace(2, []Value{0, 0})
	tr.RecordRound(ho)
	ho[0] = SetOf(0, 1) // mutate caller slice
	if tr.HO(0, 1) != SetOf(0) {
		t.Error("RecordRound did not copy the slice")
	}
}

func TestAgreedValueAllDecided(t *testing.T) {
	tr := NewTrace(3, []Value{7, 7, 7})
	tr.RecordDecision(0, 7, 1)
	tr.RecordDecision(1, 7, 2)
	tr.RecordDecision(2, 7, 2)
	v, err := tr.AgreedValue()
	if err != nil {
		t.Fatalf("AgreedValue: %v", err)
	}
	if v != 7 {
		t.Errorf("AgreedValue = %d, want 7", v)
	}
}

func TestAgreedValueUndecided(t *testing.T) {
	tr := NewTrace(3, []Value{7, 7, 7})
	tr.RecordDecision(0, 7, 1)
	if _, err := tr.AgreedValue(); !errors.Is(err, ErrNotDecided) {
		t.Errorf("error = %v, want ErrNotDecided", err)
	}
	// The buggy pattern this replaces: Decisions[0] decided while others
	// have not — a raw Decisions[0].Value read would succeed silently.
	tr2 := NewTrace(2, []Value{1, 2})
	tr2.RecordDecision(0, 1, 1)
	if _, err := tr2.AgreedValue(); !errors.Is(err, ErrNotDecided) {
		t.Errorf("partially decided trace: error = %v, want ErrNotDecided", err)
	}
}

func TestAgreedValueDisagreement(t *testing.T) {
	tr := NewTrace(2, []Value{1, 2})
	tr.RecordDecision(0, 1, 1)
	tr.RecordDecision(1, 2, 1)
	_, err := tr.AgreedValue()
	if err == nil {
		t.Fatal("AgreedValue accepted disagreeing decisions")
	}
	if errors.Is(err, ErrNotDecided) {
		t.Error("disagreement misreported as not-decided")
	}
}

func TestAgreedValueEmptyTrace(t *testing.T) {
	tr := &Trace{}
	if _, err := tr.AgreedValue(); !errors.Is(err, ErrNotDecided) {
		t.Errorf("empty trace: error = %v, want ErrNotDecided", err)
	}
}
