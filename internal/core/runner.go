package core

import (
	"errors"
	"fmt"
)

// HOProvider chooses the heard-of sets of each round — it plays the role of
// the environment (or adversary) at the HO layer. An implementation may be
// scripted, random, or derived from a fault model; package adversary
// provides a library of providers.
type HOProvider interface {
	// HOSets returns the heard-of set of every process for round r:
	// result[p] = HO(p, r). Membership of q in HO(p, r) means process p
	// receives the round-r message of q. The runner clamps the sets to
	// valid process identifiers.
	HOSets(r Round, n int) []PIDSet
}

// HOProviderFunc adapts a function to the HOProvider interface.
type HOProviderFunc func(r Round, n int) []PIDSet

// HOSets implements HOProvider.
func (f HOProviderFunc) HOSets(r Round, n int) []PIDSet { return f(r, n) }

// ErrNotDecided is returned by Runner.Run when the round budget is
// exhausted before every process decided.
var ErrNotDecided = errors.New("round budget exhausted before all processes decided")

// Runner executes an HO algorithm in lock-step rounds against an
// HOProvider. It is the coarse-grained execution model of §3 of the paper:
// the transition function of round r is called with exactly the messages
// selected by the provider's heard-of sets. The runner is deterministic
// given a deterministic provider.
type Runner struct {
	n     int
	insts []Instance
	prov  HOProvider
	trace *Trace
	round Round

	// onRound, if set, is called after each executed round.
	onRound func(r Round, rec RoundRecord)

	// Scratch storage reused across StepRound calls so a round allocates
	// nothing beyond what the provider and trace must retain. inboxArena
	// backs every process's inbox slice for the round; Instance.Transition
	// must not retain its msgs slice past the call (see the Instance
	// contract).
	msgs       []Message
	clamped    []PIDSet
	inboxArena []IncomingMessage
}

// NewRunner creates a runner for one consensus instance over n = len(initial)
// processes.
func NewRunner(alg Algorithm, initial []Value, prov HOProvider) (*Runner, error) {
	n := len(initial)
	if n < 1 || n > MaxProcesses {
		return nil, fmt.Errorf("system size %d out of range [1, %d]", n, MaxProcesses)
	}
	if prov == nil {
		return nil, errors.New("nil HOProvider")
	}
	insts := make([]Instance, n)
	for p := 0; p < n; p++ {
		insts[p] = alg.NewInstance(ProcessID(p), n, initial[p])
	}
	return &Runner{
		n:       n,
		insts:   insts,
		prov:    prov,
		trace:   NewTrace(n, initial),
		round:   1,
		msgs:    make([]Message, n),
		clamped: make([]PIDSet, n),
	}, nil
}

// SetRoundHook registers a callback invoked after every executed round.
func (ru *Runner) SetRoundHook(fn func(r Round, rec RoundRecord)) { ru.onRound = fn }

// N returns the system size.
func (ru *Runner) N() int { return ru.n }

// Round returns the next round to be executed.
func (ru *Runner) Round() Round { return ru.round }

// Instances exposes the per-process instances (for inspection in tests).
func (ru *Runner) Instances() []Instance { return ru.insts }

// Trace returns the trace recorded so far.
func (ru *Runner) Trace() *Trace { return ru.trace }

// StepRound executes one communication-closed round: collects S_p^r from
// every process, asks the provider for the heard-of sets, and applies
// T_p^r everywhere.
func (ru *Runner) StepRound() {
	r := ru.round
	full := FullSet(ru.n)

	msgs := ru.msgs
	for p := 0; p < ru.n; p++ {
		msgs[p] = ru.insts[p].Send(r)
	}

	hos := ru.prov.HOSets(r, ru.n)
	clamped := ru.clamped
	for p := 0; p < ru.n; p++ {
		var ho PIDSet
		if p < len(hos) {
			ho = hos[p].Intersect(full)
		}
		clamped[p] = ho
	}

	arena := ru.inboxArena[:0]
	for p := 0; p < ru.n; p++ {
		start := len(arena)
		clamped[p].ForEach(func(q ProcessID) {
			arena = append(arena, IncomingMessage{From: q, Payload: msgs[q]})
		})
		// Full-capacity slice so an append by the instance cannot step on
		// the next process's inbox.
		inbox := arena[start:len(arena):len(arena)]
		ru.insts[p].Transition(r, inbox)
		if v, ok := ru.insts[p].Decided(); ok {
			ru.trace.RecordDecision(ProcessID(p), v, r)
		}
	}
	// Zero the stale tail beyond this round's use so payloads from an
	// earlier, larger round are not pinned indefinitely; entries within
	// len are overwritten next round.
	clear(arena[len(arena):cap(arena)])
	ru.inboxArena = arena[:0]

	ru.trace.RecordRound(clamped)
	if ru.onRound != nil {
		ru.onRound(r, ru.trace.Rounds[len(ru.trace.Rounds)-1])
	}
	ru.round++
}

// Run executes rounds until every process has decided or maxRounds rounds
// have been executed in total. It returns the trace and ErrNotDecided if
// the budget ran out first.
func (ru *Runner) Run(maxRounds Round) (*Trace, error) {
	for ru.round <= maxRounds {
		ru.StepRound()
		if ru.trace.AllDecided() {
			return ru.trace, nil
		}
	}
	if ru.trace.AllDecided() {
		return ru.trace, nil
	}
	return ru.trace, ErrNotDecided
}

// RunRounds executes exactly k additional rounds regardless of decisions.
func (ru *Runner) RunRounds(k Round) *Trace {
	for i := Round(0); i < k; i++ {
		ru.StepRound()
	}
	return ru.trace
}

// RunUntil executes rounds until cond returns true or maxRounds rounds have
// been executed; it reports whether cond was satisfied.
func (ru *Runner) RunUntil(cond func(*Trace) bool, maxRounds Round) bool {
	for ru.round <= maxRounds {
		if cond(ru.trace) {
			return true
		}
		ru.StepRound()
	}
	return cond(ru.trace)
}
