package core

import (
	"math/bits"
	"strconv"
	"strings"
)

// MaxProcesses is the largest supported system size. PIDSet is a 64-bit
// bitset, which covers every experiment in the paper (all use n ≤ 16).
const MaxProcesses = 64

// PIDSet is an immutable-by-value set of process identifiers backed by a
// 64-bit bitmask. The zero value is the empty set.
type PIDSet uint64

// EmptySet is the set containing no processes.
const EmptySet PIDSet = 0

// FullSet returns the set {0, 1, ..., n-1}.
func FullSet(n int) PIDSet {
	if n <= 0 {
		return 0
	}
	if n >= MaxProcesses {
		return ^PIDSet(0)
	}
	return PIDSet(1)<<uint(n) - 1
}

// SetOf returns the set containing exactly the given processes.
func SetOf(ps ...ProcessID) PIDSet {
	var s PIDSet
	for _, p := range ps {
		s = s.Add(p)
	}
	return s
}

// Add returns the set with p added.
func (s PIDSet) Add(p ProcessID) PIDSet {
	if p < 0 || p >= MaxProcesses {
		return s
	}
	return s | PIDSet(1)<<uint(p)
}

// Remove returns the set with p removed.
func (s PIDSet) Remove(p ProcessID) PIDSet {
	if p < 0 || p >= MaxProcesses {
		return s
	}
	return s &^ (PIDSet(1) << uint(p))
}

// Has reports whether p is a member of the set.
func (s PIDSet) Has(p ProcessID) bool {
	if p < 0 || p >= MaxProcesses {
		return false
	}
	return s&(PIDSet(1)<<uint(p)) != 0
}

// Len returns the number of members (|s|).
func (s PIDSet) Len() int { return bits.OnesCount64(uint64(s)) }

// IsEmpty reports whether the set has no members.
func (s PIDSet) IsEmpty() bool { return s == 0 }

// Union returns s ∪ t.
func (s PIDSet) Union(t PIDSet) PIDSet { return s | t }

// Intersect returns s ∩ t.
func (s PIDSet) Intersect(t PIDSet) PIDSet { return s & t }

// Diff returns s \ t.
func (s PIDSet) Diff(t PIDSet) PIDSet { return s &^ t }

// Contains reports whether s ⊇ t.
func (s PIDSet) Contains(t PIDSet) bool { return s&t == t }

// SubsetOf reports whether s ⊆ t.
func (s PIDSet) SubsetOf(t PIDSet) bool { return t.Contains(s) }

// Complement returns Π \ s for a system of n processes.
func (s PIDSet) Complement(n int) PIDSet { return FullSet(n) &^ s }

// Members returns the members in ascending order.
func (s PIDSet) Members() []ProcessID {
	out := make([]ProcessID, 0, s.Len())
	for v := uint64(s); v != 0; {
		p := bits.TrailingZeros64(v)
		out = append(out, ProcessID(p))
		v &^= 1 << uint(p)
	}
	return out
}

// Min returns the smallest member, or -1 if the set is empty.
func (s PIDSet) Min() ProcessID {
	if s == 0 {
		return -1
	}
	return ProcessID(bits.TrailingZeros64(uint64(s)))
}

// ForEach calls fn for every member in ascending order.
func (s PIDSet) ForEach(fn func(ProcessID)) {
	for v := uint64(s); v != 0; {
		p := bits.TrailingZeros64(v)
		fn(ProcessID(p))
		v &^= 1 << uint(p)
	}
}

// String implements fmt.Stringer, e.g. "{0,2,5}".
func (s PIDSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(p ProcessID) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(strconv.Itoa(int(p)))
	})
	b.WriteByte('}')
	return b.String()
}
