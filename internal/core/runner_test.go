package core

import (
	"errors"
	"testing"
)

// echoAlg is a trivial HO algorithm for runner tests: a process decides on
// its own value as soon as it hears a majority including itself.
type echoAlg struct{}

func (echoAlg) Name() string { return "echo" }

func (echoAlg) NewInstance(p ProcessID, n int, initial Value) Instance {
	return &echoInst{p: p, n: n, v: initial}
}

type echoInst struct {
	p       ProcessID
	n       int
	v       Value
	decided bool
	rounds  []Round
	heard   []PIDSet
}

func (e *echoInst) Send(Round) Message { return e.v }

func (e *echoInst) Transition(r Round, msgs []IncomingMessage) {
	e.rounds = append(e.rounds, r)
	ho := Senders(msgs)
	e.heard = append(e.heard, ho)
	if 2*ho.Len() > e.n && ho.Has(e.p) {
		e.decided = true
	}
}

func (e *echoInst) Decided() (Value, bool) { return e.v, e.decided }

func TestRunnerRoundsAreSequential(t *testing.T) {
	ru, err := NewRunner(echoAlg{}, []Value{1, 2, 3}, HOProviderFunc(func(r Round, n int) []PIDSet {
		return []PIDSet{EmptySet, EmptySet, EmptySet}
	}))
	if err != nil {
		t.Fatal(err)
	}
	ru.RunRounds(5)
	inst, ok := ru.Instances()[0].(*echoInst)
	if !ok {
		t.Fatal("unexpected instance type")
	}
	if len(inst.rounds) != 5 {
		t.Fatalf("got %d transitions, want 5", len(inst.rounds))
	}
	for i, r := range inst.rounds {
		if r != Round(i+1) {
			t.Fatalf("round %d delivered as %d", i+1, r)
		}
	}
}

func TestRunnerDeliversPerHOSet(t *testing.T) {
	script := [][]PIDSet{
		{SetOf(0, 1), SetOf(2), EmptySet},
		{FullSet(3), FullSet(3), FullSet(3)},
	}
	ru, err := NewRunner(echoAlg{}, []Value{1, 2, 3}, HOProviderFunc(func(r Round, n int) []PIDSet {
		return script[r-1]
	}))
	if err != nil {
		t.Fatal(err)
	}
	ru.RunRounds(2)
	for p := 0; p < 3; p++ {
		inst := ru.Instances()[p].(*echoInst)
		for i := range script {
			if inst.heard[i] != script[i][p] {
				t.Errorf("p%d round %d heard %v, want %v", p, i+1, inst.heard[i], script[i][p])
			}
		}
	}
	tr := ru.Trace()
	if tr.HO(0, 1) != SetOf(0, 1) || tr.HO(2, 1) != EmptySet {
		t.Error("trace HO sets do not match script")
	}
}

func TestRunnerRunStopsOnDecision(t *testing.T) {
	ru, err := NewRunner(echoAlg{}, []Value{1, 2, 3}, HOProviderFunc(func(r Round, n int) []PIDSet {
		full := FullSet(n)
		return []PIDSet{full, full, full}
	}))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ru.Run(10)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if tr.NumRounds() != 1 {
		t.Errorf("decided after %d rounds, want 1", tr.NumRounds())
	}
	if !tr.AllDecided() {
		t.Error("not all decided")
	}
}

func TestRunnerRunBudgetExhausted(t *testing.T) {
	ru, err := NewRunner(echoAlg{}, []Value{1, 2}, HOProviderFunc(func(r Round, n int) []PIDSet {
		return []PIDSet{EmptySet, EmptySet}
	}))
	if err != nil {
		t.Fatal(err)
	}
	_, err = ru.Run(3)
	if !errors.Is(err, ErrNotDecided) {
		t.Fatalf("Run error = %v, want ErrNotDecided", err)
	}
}

func TestRunnerClampsHOSets(t *testing.T) {
	ru, err := NewRunner(echoAlg{}, []Value{1, 2}, HOProviderFunc(func(r Round, n int) []PIDSet {
		// Provider claims a process 5 that does not exist, and returns a
		// short slice missing process 1.
		return []PIDSet{SetOf(0, 1, 5)}
	}))
	if err != nil {
		t.Fatal(err)
	}
	ru.StepRound()
	tr := ru.Trace()
	if tr.HO(0, 1) != SetOf(0, 1) {
		t.Errorf("HO(0,1) = %v, want {0,1}", tr.HO(0, 1))
	}
	if tr.HO(1, 1) != EmptySet {
		t.Errorf("HO(1,1) = %v, want {}", tr.HO(1, 1))
	}
}

func TestRunnerValidation(t *testing.T) {
	if _, err := NewRunner(echoAlg{}, nil, Full0{}); err == nil {
		t.Error("expected error for n = 0")
	}
	if _, err := NewRunner(echoAlg{}, make([]Value, 65), Full0{}); err == nil {
		t.Error("expected error for n > 64")
	}
	if _, err := NewRunner(echoAlg{}, []Value{1}, nil); err == nil {
		t.Error("expected error for nil provider")
	}
}

// Full0 is a tiny local provider to avoid importing package adversary
// (which would create an import cycle in tests).
type Full0 struct{}

func (Full0) HOSets(_ Round, n int) []PIDSet {
	out := make([]PIDSet, n)
	for p := range out {
		out[p] = FullSet(n)
	}
	return out
}

func TestRunnerRoundHook(t *testing.T) {
	ru, err := NewRunner(echoAlg{}, []Value{1, 2}, Full0{})
	if err != nil {
		t.Fatal(err)
	}
	var calls int
	ru.SetRoundHook(func(r Round, rec RoundRecord) {
		calls++
		if len(rec.HO) != 2 {
			t.Errorf("hook got %d HO sets", len(rec.HO))
		}
	})
	ru.RunRounds(3)
	if calls != 3 {
		t.Errorf("hook called %d times, want 3", calls)
	}
}

func TestRunnerRunUntil(t *testing.T) {
	ru, err := NewRunner(echoAlg{}, []Value{1, 2, 3}, Full0{})
	if err != nil {
		t.Fatal(err)
	}
	ok := ru.RunUntil(func(tr *Trace) bool { return tr.NumRounds() >= 2 }, 10)
	if !ok || ru.Trace().NumRounds() != 2 {
		t.Errorf("RunUntil stopped at %d rounds, ok=%v", ru.Trace().NumRounds(), ok)
	}
	if ru.RunUntil(func(tr *Trace) bool { return false }, 4) {
		t.Error("RunUntil reported success for unsatisfiable condition")
	}
}
