// Package core implements the Heard-Of (HO) computation model of
// Charron-Bost and Schiper as used in Hutle & Schiper (DSN 2007),
// "Communication Predicates: A High-Level Abstraction for Coping with
// Transient and Dynamic Faults".
//
// An HO algorithm is a pair of functions per round r and process p: a
// sending function S_p^r and a transition function T_p^r. Computation
// proceeds in communication-closed rounds: in round r every process sends a
// message computed from its state, and then makes a state transition based
// on the partial vector of round-r messages it received. The support of
// that vector is the heard-of set HO(p, r). Faults never appear explicitly
// at this layer; a process q missing from HO(p, r) simply means the round-r
// message from q to p suffered a transmission fault.
//
// The package provides the algorithm interfaces, a deterministic lock-step
// Runner that executes HO algorithms against an HOProvider (an adversary
// choosing heard-of sets), and Trace recording so that communication
// predicates (package predicate) can be checked after the fact.
package core

import (
	"fmt"
	"strconv"
)

// ProcessID identifies a process in Π. Processes are numbered 0 through
// n-1.
type ProcessID int

// Round is a communication-closed round number. Rounds are numbered
// starting at 1, matching the paper (r > 0).
type Round int

// Value is a consensus proposal or decision value. The paper leaves the
// value domain abstract but requires a total order ("smallest x_q
// received" in Algorithm 1), which int64 provides.
type Value int64

// String implements fmt.Stringer.
func (p ProcessID) String() string { return "p" + strconv.Itoa(int(p)) }

// String implements fmt.Stringer.
func (r Round) String() string { return "r" + strconv.Itoa(int(r)) }

// Decision records whether and how a process decided.
type Decision struct {
	Decided bool
	Value   Value
	Round   Round // round at whose end the decision was taken
}

// String implements fmt.Stringer.
func (d Decision) String() string {
	if !d.Decided {
		return "undecided"
	}
	return fmt.Sprintf("decided(%d@%s)", d.Value, d.Round)
}
