package core

import (
	"testing"
	"testing/quick"
)

func TestFullSet(t *testing.T) {
	tests := []struct {
		n    int
		want PIDSet
	}{
		{0, 0},
		{-3, 0},
		{1, 1},
		{2, 3},
		{4, 0xF},
		{64, ^PIDSet(0)},
		{100, ^PIDSet(0)},
	}
	for _, tt := range tests {
		if got := FullSet(tt.n); got != tt.want {
			t.Errorf("FullSet(%d) = %x, want %x", tt.n, got, tt.want)
		}
	}
}

func TestSetOfAndMembers(t *testing.T) {
	s := SetOf(0, 2, 5, 2)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	got := s.Members()
	want := []ProcessID{0, 2, 5}
	if len(got) != len(want) {
		t.Fatalf("Members = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members = %v, want %v", got, want)
		}
	}
}

func TestAddRemoveHas(t *testing.T) {
	var s PIDSet
	s = s.Add(3)
	if !s.Has(3) {
		t.Error("Has(3) after Add(3) = false")
	}
	if s.Has(4) {
		t.Error("Has(4) = true on {3}")
	}
	s = s.Remove(3)
	if !s.IsEmpty() {
		t.Error("set not empty after removing only member")
	}
	// Out-of-range operations are no-ops.
	if s.Add(-1) != s || s.Add(64) != s || s.Remove(-1) != s {
		t.Error("out-of-range Add/Remove changed the set")
	}
	if s.Has(-1) || s.Has(64) {
		t.Error("Has on out-of-range id = true")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := SetOf(0, 1, 2)
	b := SetOf(2, 3)
	if got := a.Union(b); got != SetOf(0, 1, 2, 3) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); got != SetOf(2) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Diff(b); got != SetOf(0, 1) {
		t.Errorf("Diff = %v", got)
	}
	if !a.Contains(SetOf(0, 2)) {
		t.Error("Contains subset = false")
	}
	if a.Contains(SetOf(0, 3)) {
		t.Error("Contains non-subset = true")
	}
	if !SetOf(0, 2).SubsetOf(a) {
		t.Error("SubsetOf = false")
	}
	if got := a.Complement(4); got != SetOf(3) {
		t.Errorf("Complement = %v", got)
	}
}

func TestMin(t *testing.T) {
	if EmptySet.Min() != -1 {
		t.Error("Min of empty set != -1")
	}
	if SetOf(5, 2, 9).Min() != 2 {
		t.Error("Min of {2,5,9} != 2")
	}
}

func TestString(t *testing.T) {
	if got := SetOf(0, 2, 5).String(); got != "{0,2,5}" {
		t.Errorf("String = %q", got)
	}
	if got := EmptySet.String(); got != "{}" {
		t.Errorf("String(empty) = %q", got)
	}
}

// Property: union is commutative, associative, and monotone in Contains.
func TestPIDSetUnionProperties(t *testing.T) {
	f := func(a, b, c uint64) bool {
		x, y, z := PIDSet(a), PIDSet(b), PIDSet(c)
		if x.Union(y) != y.Union(x) {
			return false
		}
		if x.Union(y.Union(z)) != x.Union(y).Union(z) {
			return false
		}
		return x.Union(y).Contains(x) && x.Union(y).Contains(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: De Morgan over a fixed 64-process universe.
func TestPIDSetDeMorgan(t *testing.T) {
	f := func(a, b uint64) bool {
		x, y := PIDSet(a), PIDSet(b)
		lhs := x.Union(y).Complement(64)
		rhs := x.Complement(64).Intersect(y.Complement(64))
		return lhs == rhs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Len is |Members| and ForEach visits ascending members.
func TestPIDSetLenMembersConsistency(t *testing.T) {
	f := func(a uint64) bool {
		s := PIDSet(a)
		ms := s.Members()
		if len(ms) != s.Len() {
			return false
		}
		prev := ProcessID(-1)
		for _, p := range ms {
			if p <= prev || !s.Has(p) {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Diff and Intersect partition the set.
func TestPIDSetDiffPartition(t *testing.T) {
	f := func(a, b uint64) bool {
		x, y := PIDSet(a), PIDSet(b)
		d := x.Diff(y)
		i := x.Intersect(y)
		return d.Union(i) == x && d.Intersect(i) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
