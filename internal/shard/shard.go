// Package shard is the horizontal-scaling layer over internal/rsm: a
// Sharded[C] partitions clients and keys across S independent replication
// groups (one rsm.Engine each) and drives all groups' consensus windows
// concurrently through internal/sweep.
//
// The paper's separation of concerns carries through unchanged: each
// group faces its OWN fault environment — its rsm.Config carries its own
// per-slot core.HOProvider factory — so one deployment can run shard 2
// under sustained 30% transmission loss while every other shard enjoys
// good periods, the per-subsystem "elementary behavioral patterns" view
// of Shimi et al. Sharding is pure scaling; fault handling stays
// per-group and orthogonal (De Florio's application-layer argument).
//
// Determinism contract (the same one internal/sweep and internal/rsm
// give): shards are self-contained — a shard owns its engine, its
// environment providers, and its RNG streams — and results are merged in
// shard-index order, so every observable output (applied logs, stats,
// latencies, workload tables) is byte-identical for every Parallel
// setting, both the shard-level worker count here and each group's own
// pipeline parallelism.
package shard

import (
	"context"
	"errors"
	"fmt"

	"heardof/internal/core"
	"heardof/internal/rsm"
	"heardof/internal/sweep"
)

// Router maps a key to one of S shards. Implementations must be pure
// functions of (key, shards): no RNG, no mutable state — that is what
// makes routing seed- and scheduling-independent, and what guarantees
// every key routes to exactly one shard.
type Router interface {
	Shard(key uint64, shards int) int
}

// HashRouter is the default Router: a splitmix64 finalizer mix of the key
// reduced mod shards. The mix spreads adjacent integer keys (workload key
// indexes k, k+1, …) across shards instead of striping them.
type HashRouter struct{}

// Shard implements Router.
func (HashRouter) Shard(key uint64, shards int) int {
	z := key + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(shards))
}

// ModRouter routes key mod shards — the transparent choice for tests and
// for workloads that want adjacent keys on adjacent shards.
type ModRouter struct{}

// Shard implements Router.
func (ModRouter) Shard(key uint64, shards int) int {
	return int(key % uint64(shards))
}

// StringKey hashes a string key (e.g. a kvstore key) into the uint64 key
// space routers operate on, using FNV-1a.
func StringKey(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// Config parameterizes a Sharded service.
type Config struct {
	// Shards is the number of independent replication groups, ≥ 1.
	Shards int
	// Router routes keys to shards; nil means HashRouter{}.
	Router Router
	// Parallel is the shard-level sweep worker count used when several
	// groups decide windows in the same call; 0 means Shards workers.
	// Observable state is identical for every value.
	Parallel int
}

// Sharded replicates commands of type C across Shards independent
// replication groups. Client sessions are per (shard, client): a client's
// sequence numbers are dense within each shard it touches, so rsm's
// exactly-once dedup applies unchanged inside every group.
type Sharded[C any] struct {
	cfg     Config
	router  Router
	engines []*rsm.Engine[C]
	eng     *sweep.Engine
}

// New creates a sharded service. group supplies each shard's rsm.Config —
// in particular its Provider, which is that shard's private fault
// environment — and apply is invoked for every (shard, replica, committed
// command) triple, in commit order within each shard.
func New[C any](cfg Config, group func(shard int) rsm.Config, apply func(shard, replica int, cmd C)) (*Sharded[C], error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: Shards = %d, need ≥ 1", cfg.Shards)
	}
	if group == nil || apply == nil {
		return nil, errors.New("shard: nil group config or apply function")
	}
	if cfg.Router == nil {
		cfg.Router = HashRouter{}
	}
	workers := cfg.Parallel
	if workers <= 0 {
		workers = cfg.Shards
	}
	s := &Sharded[C]{
		cfg:     cfg,
		router:  cfg.Router,
		engines: make([]*rsm.Engine[C], cfg.Shards),
		eng:     &sweep.Engine{Workers: workers},
	}
	for i := range s.engines {
		i := i
		e, err := rsm.New(group(i), func(replica int, cmd C) { apply(i, replica, cmd) })
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		s.engines[i] = e
	}
	return s, nil
}

// Shards returns the shard count.
func (s *Sharded[C]) Shards() int { return s.cfg.Shards }

// Engine returns shard i's replication engine.
func (s *Sharded[C]) Engine(i int) *rsm.Engine[C] { return s.engines[i] }

// Route returns the shard owning a key.
func (s *Sharded[C]) Route(key uint64) int {
	return s.router.Shard(key, s.cfg.Shards)
}

// Submit offers a command keyed by key under a client session on the
// owning shard. seq is the client's sequence number WITHIN that shard
// (sessions are per (shard, client)); dedup follows rsm.Engine.Submit.
func (s *Sharded[C]) Submit(key uint64, client rsm.ClientID, seq uint64, cmd C) (shard int, accepted bool, err error) {
	shard = s.Route(key)
	accepted, err = s.engines[shard].Submit(client, seq, cmd)
	return shard, accepted, err
}

// SubmitNext enters cmd on the owning shard at the client's next fresh
// sequence number there, returning the shard and the sequence used.
func (s *Sharded[C]) SubmitNext(key uint64, client rsm.ClientID, cmd C) (shard int, seq uint64) {
	shard = s.Route(key)
	return shard, s.engines[shard].SubmitNext(client, cmd)
}

// Pending counts accepted-but-uncommitted commands across all shards.
func (s *Sharded[C]) Pending() int {
	total := 0
	for _, e := range s.engines {
		total += e.Pending()
	}
	return total
}

// Stats returns the aggregate engine counters: every counter is the sum
// across shards EXCEPT WallRounds, which is the max — for burst drains
// (Drain, DecideWindows) the groups run fully concurrently from a common
// origin, so aggregate elapsed time is the slowest shard's clock. The
// closed-loop harness (RunWorkload) reports its own pass-accumulated
// aggregate clock instead, because its passes synchronize shards.
func (s *Sharded[C]) Stats() rsm.Stats {
	var agg rsm.Stats
	for _, e := range s.engines {
		st := e.Stats()
		agg.Slots += st.Slots
		agg.Launched += st.Launched
		agg.Aborted += st.Aborted
		agg.Committed += st.Committed
		agg.TotalRounds += st.TotalRounds
		if st.WallRounds > agg.WallRounds {
			agg.WallRounds = st.WallRounds
		}
	}
	return agg
}

// ShardStats returns shard i's own counters.
func (s *Sharded[C]) ShardStats(i int) rsm.Stats { return s.engines[i].Stats() }

// Latencies returns the commit latencies of every committed command,
// concatenated in shard-index order (each shard's slice is in its own
// commit order, in that shard's wall rounds).
func (s *Sharded[C]) Latencies() []core.Round {
	var out []core.Round
	for _, e := range s.engines {
		out = append(out, e.Latencies()...)
	}
	return out
}

// activeShards lists the shards with pending commands, in index order.
func (s *Sharded[C]) activeShards() []int {
	active := make([]int, 0, len(s.engines))
	for i, e := range s.engines {
		if e.Pending() > 0 {
			active = append(active, i)
		}
	}
	return active
}

// runShards executes run(shard) for every listed shard concurrently
// through the sweep pool (inline when only one shard is listed) and
// merges the outcomes in shard-index order: committed counts sum, and
// the first failing shard's error is returned wrapped with its index.
// This index-ordered merge is the whole determinism argument of the
// layer — see the package comment.
func (s *Sharded[C]) runShards(active []int, run func(shard int) (int, error)) (int, error) {
	if len(active) == 0 {
		return 0, nil
	}
	type outcome struct {
		n   int
		err error
	}
	outs := make([]outcome, len(active))
	if len(active) == 1 {
		n, err := run(active[0])
		outs[0] = outcome{n: n, err: err}
	} else {
		cells := make([]sweep.Cell, len(active))
		for j := range active {
			j := j
			cells[j] = sweep.Cell{
				Label: fmt.Sprintf("shard=%d", active[j]),
				Run: func(context.Context) (any, error) {
					n, err := run(active[j])
					return outcome{n: n, err: err}, nil
				},
			}
		}
		results, _ := s.eng.Run(context.Background(), cells)
		for j, res := range results {
			if res.Err != nil { // a cell panic; cells themselves never error
				outs[j] = outcome{err: res.Err}
			} else {
				outs[j] = res.Value.(outcome)
			}
		}
	}
	committed := 0
	var firstErr error
	for j, out := range outs {
		committed += out.n
		if out.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("shard %d: %w", active[j], out.err)
		}
	}
	return committed, firstErr
}

// DecideWindows runs one pipelined window on every shard that has pending
// commands, concurrently through the sweep pool, and returns the total
// number of commands committed. Shards with nothing pending are skipped
// (no no-op slots are spent on idle groups); if NO shard has pending
// commands the call is a no-op.
//
// If shards fail, the first failure in shard-index order is returned
// (wrapping the shard's error, which itself wraps rsm.ErrSlotUndecided on
// budget exhaustion); commands committed by other shards in the same call
// are still counted and applied.
func (s *Sharded[C]) DecideWindows() (int, error) {
	return s.runShards(s.activeShards(), func(shard int) (int, error) {
		return s.engines[shard].DecideWindow()
	})
}

// Drain decides windows on every shard until nothing is pending anywhere
// or a shard exhausts maxSlotsPerShard consensus launches, returning the
// total number of commands committed. Shards drain concurrently; each
// shard's Drain is the rsm one, so every undecided path satisfies
// errors.Is(err, rsm.ErrSlotUndecided) and the first failing shard (in
// shard-index order) is reported.
func (s *Sharded[C]) Drain(maxSlotsPerShard int) (int, error) {
	return s.runShards(s.activeShards(), func(shard int) (int, error) {
		return s.engines[shard].Drain(maxSlotsPerShard)
	})
}
