package shard

import (
	"fmt"
	"testing"

	"heardof/internal/adversary"
	"heardof/internal/core"
	"heardof/internal/otr"
	"heardof/internal/rsm"
)

// The BenchmarkShard_* suite extends the service-layer perf trajectory to
// the sharded layer: scripts/bench.sh parses the cmds/sec, cmds/round and
// shards metrics into BENCH_kv.json (schema bench_kv/v2). Each
// sub-benchmark fixes the PER-SHARD load, so the shards=1..8 rows are a
// weak-scaling curve in two clocks:
//
//   - cmds/round is aggregate simulated throughput — the aggregate wall
//     clock is the slowest shard's (groups run concurrently in simulated
//     time), so it scales ~linearly with S regardless of host cores.
//   - cmds/sec is host throughput — it scales with S up to GOMAXPROCS
//     (independent groups drain concurrently through the sweep pool) and
//     holds flat beyond, which doubles as a sharding-overhead check: a
//     flat curve on a saturated host means zero cross-shard coordination
//     cost.

func benchSharded(b *testing.B, shards int, provider func(int) func(int) core.HOProvider,
	tune rsm.Tuning) *Sharded[string] {
	b.Helper()
	s, err := New[string](Config{Shards: shards, Router: ModRouter{}},
		func(shard int) rsm.Config {
			return rsm.Config{
				N: 5, Algorithm: otr.Algorithm{}, Provider: provider(shard), MaxRounds: 500,
				BatchSize: tune.BatchSize, Pipeline: tune.Pipeline, Parallel: tune.Parallel,
			}
		}, func(int, int, string) {})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkShard_DrainFaultFree drains 200 commands PER SHARD through
// 63-wide batches in a fault-free environment — the pure scaling path:
// aggregate cmds/sec across the shards=1,2,4,8 rows is the headline
// weak-scaling measurement of the sharded layer.
func BenchmarkShard_DrainFaultFree(b *testing.B) {
	const perShard = 200
	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cmds := perShard * shards
			var st rsm.Stats
			for i := 0; i < b.N; i++ {
				s := benchSharded(b, shards, func(int) func(int) core.HOProvider {
					return adversary.SlotFull()
				}, rsm.Tuning{})
				for j := 0; j < cmds; j++ {
					s.SubmitNext(uint64(j), rsm.ClientID(j%8), "put k=v")
				}
				if _, err := s.Drain(perShard); err != nil {
					b.Fatal(err)
				}
				st = s.Stats()
			}
			b.ReportMetric(float64(shards), "shards")
			b.ReportMetric(float64(cmds*b.N)/b.Elapsed().Seconds(), "cmds/sec")
			if st.WallRounds > 0 {
				b.ReportMetric(float64(st.Committed)/float64(st.WallRounds), "cmds/round")
			}
		})
	}
}

// BenchmarkShard_WorkloadMixedEnv runs the E11-shaped closed loop: 12
// zipfian clients per shard completing 120 commands per shard, with
// shard environments cycling good / 30% loss / crash-recovery.
func BenchmarkShard_WorkloadMixedEnv(b *testing.B) {
	const (
		clientsPerShard = 12
		opsPerShard     = 120
	)
	mixed := func(seed uint64) func(int) func(int) core.HOProvider {
		return func(shard int) func(int) core.HOProvider {
			switch shard % 3 {
			case 1:
				return adversary.SlotLoss(0.3, seed+uint64(shard)*100003)
			case 2:
				return adversary.SlotRotatingCrash(5, 10)
			default:
				return adversary.SlotFull()
			}
		}
	}
	for _, shards := range []int{1, 4} {
		shards := shards
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			ops := opsPerShard * shards
			var last Result
			for i := 0; i < b.N; i++ {
				s := benchSharded(b, shards, mixed(uint64(i)+1),
					rsm.Tuning{BatchSize: 8, Pipeline: 4})
				res, err := RunWorkload(s, rsm.WorkloadConfig{
					Clients: clientsPerShard * shards, Rate: 0.7, WriteRatio: 0.75,
					Keys: 96, Dist: rsm.Zipfian, ZipfS: 0.99, Ops: ops,
					MaxSlots: 20 * ops, Seed: uint64(i) + 1,
				}, func(op rsm.Op) string {
					return fmt.Sprintf("c%d#%d k%d", op.Client, op.Seq, op.Key)
				}, nil)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(shards), "shards")
			b.ReportMetric(float64(ops*b.N)/b.Elapsed().Seconds(), "cmds/sec")
			b.ReportMetric(last.Aggregate.CmdsPerRound, "cmds/round")
		})
	}
}
