// Sharded closed-loop workload generation: the same client population and
// arrival process as rsm.RunWorkload, with every operation routed to the
// shard owning its key. Each pass submits arrivals, then drives one
// consensus window on EVERY shard with pending commands concurrently —
// the aggregate wall clock of a pass is the slowest shard's window, which
// is exactly what concurrent independent groups cost in simulated time.
//
// Everything is deterministic in (shard config, per-shard engine configs,
// WorkloadConfig): routing is a pure function, the workload owns a single
// RNG stream consumed in client order, and shard windows are merged in
// shard-index order.

package shard

import (
	"errors"
	"fmt"
	"sort"

	"heardof/internal/core"
	"heardof/internal/rsm"
	"heardof/internal/xrand"
)

// Result reports a sharded closed-loop run: the aggregate view plus each
// shard's own rsm.WorkloadResult (computed from that shard's counters and
// latencies, so per-shard tails under heterogeneous environments are
// visible next to the aggregate).
type Result struct {
	// Aggregate sums the per-shard counters and pools the latencies for
	// its percentiles. Its WallRounds is the run's GLOBAL clock: the
	// closed loop synchronizes shards once per pass (clients observe
	// completions, then submit), so each pass costs the slowest active
	// shard's window and the run costs the sum of those maxima. That is
	// ≥ every per-shard clock (an idle shard's own clock does not
	// advance) and ≤ their sum.
	Aggregate rsm.WorkloadResult
	// PerShard holds one result per shard, indexed by shard; WallRounds
	// there is that shard's own clock (it advances only while the shard
	// decides).
	PerShard []rsm.WorkloadResult
}

// RunWorkload drives a closed loop over a fresh sharded service. The
// configuration is rsm.WorkloadConfig read with two sharded twists:
// MaxSlots is the GLOBAL consensus-launch budget summed across shards
// (a hard bound, allocated to shards in shard-index order each pass), and
// each generated op's Seq is the per-(shard, client) sequence number used
// for dedup on the owning shard.
//
// keyOf maps a generated operation to the uint64 routing key; nil means
// uint64(op.Key). Pass the application's own mapping whenever commands
// will also be routed outside this harness — kvstore workloads use
// kvstore.WorkloadRouteKey so workload-driven and Submit-driven traffic
// agree on every key's owning shard.
func RunWorkload[C any](s *Sharded[C], cfg rsm.WorkloadConfig, makeCmd func(rsm.Op) C,
	keyOf func(rsm.Op) uint64) (Result, error) {
	var res Result
	for i, e := range s.engines {
		if e.Stats().Launched != 0 || e.Pending() != 0 {
			return res, fmt.Errorf("shard: RunWorkload needs fresh engines (shard %d is used)", i)
		}
	}
	if err := cfg.Validate(); err != nil {
		return res, fmt.Errorf("shard: %w", err)
	}
	if makeCmd == nil {
		return res, errors.New("shard: nil command constructor")
	}
	if keyOf == nil {
		keyOf = func(op rsm.Op) uint64 { return uint64(op.Key) }
	}

	rng := xrand.New(cfg.Seed)
	var zipf *xrand.Zipf
	if cfg.Dist == rsm.Zipfian {
		zipf = xrand.NewZipf(rng.Fork(), cfg.ZipfS, cfg.Keys)
	}
	nextKey := func() int {
		if zipf != nil {
			return zipf.Next()
		}
		return rng.Intn(cfg.Keys)
	}

	// Per-(client, shard) sequence counters keep each client's stream
	// dense within every shard it touches, and outstanding[c] tracks the
	// closed loop's single in-flight command per client.
	type inflight struct {
		shard int
		seq   uint64
	}
	nextSeq := make([][]uint64, cfg.Clients)
	for c := range nextSeq {
		nextSeq[c] = make([]uint64, s.Shards())
	}
	outstanding := make([]inflight, cfg.Clients) // seq == 0 means idle
	submitted := 0
	// aggWall is the run's global clock: Σ over passes of the slowest
	// active shard's window. Per-shard engine clocks advance only while
	// that shard decides, so max over them would undercount whenever
	// activity alternates across shards between passes.
	var aggWall core.Round

	finish := func(err error) (Result, error) {
		res.PerShard = make([]rsm.WorkloadResult, s.Shards())
		agg := rsm.WorkloadResult{WallRounds: aggWall}
		var pooled []core.Round
		for i, e := range s.engines {
			st, lats := e.Stats(), e.Latencies()
			res.PerShard[i] = rsm.ResultFromStats(st, lats)
			agg.Completed += st.Committed
			agg.Slots += st.Slots
			agg.Launched += st.Launched
			agg.TotalRounds += st.TotalRounds
			pooled = append(pooled, lats...) // lats was sorted in place; pooled re-sorts anyway
		}
		if agg.Completed > 0 {
			agg.SlotsPerCmd = float64(agg.Slots) / float64(agg.Completed)
		}
		if agg.WallRounds > 0 {
			agg.CmdsPerRound = float64(agg.Completed) / float64(agg.WallRounds)
		}
		sort.Slice(pooled, func(i, j int) bool { return pooled[i] < pooled[j] })
		agg.LatencyP50 = rsm.Percentile(pooled, 0.50)
		agg.LatencyP95 = rsm.Percentile(pooled, 0.95)
		agg.LatencyP99 = rsm.Percentile(pooled, 0.99)
		res.Aggregate = agg
		return res, err
	}

	committed := func() int {
		total := 0
		for _, e := range s.engines {
			total += e.Stats().Committed
		}
		return total
	}
	launched := func() int {
		total := 0
		for _, e := range s.engines {
			total += e.Stats().Launched
		}
		return total
	}

	// Termination mirrors rsm.RunWorkload: every pass either submits
	// (bounded by Ops), launches slots (bounded by MaxSlots), or advances
	// the RNG toward the next arrival; the guard catches pathological
	// rates.
	guard := 1000 * (cfg.MaxSlots + cfg.Ops + 1)
	for iter := 0; committed() < cfg.Ops; iter++ {
		if iter > guard {
			return finish(fmt.Errorf("shard: workload stalled after %d passes (rate %v too low?)", iter, cfg.Rate))
		}
		for c := 0; c < cfg.Clients && submitted < cfg.Ops; c++ {
			client := rsm.ClientID(c)
			if fl := outstanding[c]; fl.seq != 0 {
				if s.engines[fl.shard].AppliedSeq(client) < fl.seq {
					continue // closed loop: one outstanding command per client
				}
				outstanding[c] = inflight{}
			}
			if !rng.Bool(cfg.Rate) {
				continue
			}
			write := rng.Bool(cfg.WriteRatio)
			key := nextKey()
			sh := s.Route(keyOf(rsm.Op{Client: client, Write: write, Key: key}))
			nextSeq[c][sh]++
			op := rsm.Op{Client: client, Seq: nextSeq[c][sh], Write: write, Key: key}
			if ok, err := s.engines[sh].Submit(client, op.Seq, makeCmd(op)); err != nil || !ok {
				return finish(fmt.Errorf("shard %d: workload submit rejected (ok=%v): %w", sh, ok, err))
			}
			outstanding[c] = inflight{shard: sh, seq: op.Seq}
			submitted++
		}
		if s.Pending() == 0 {
			continue // nothing arrived this pass; no slots to spend
		}
		remaining := cfg.MaxSlots - launched()
		if remaining <= 0 {
			return finish(fmt.Errorf("shard: workload slot budget exhausted with %d of %d committed: %w",
				committed(), cfg.Ops, rsm.ErrSlotUndecided))
		}
		// Allocate the remaining global budget across this pass's windows
		// in shard-index order, clamping each shard's window so MaxSlots
		// stays a hard launch bound.
		active := make([]int, 0, s.Shards())
		caps := make(map[int]int, s.Shards())
		before := make(map[int]core.Round, s.Shards())
		for i, e := range s.engines {
			if e.Pending() == 0 || remaining == 0 {
				continue
			}
			want := e.PlannedWindow(remaining)
			active = append(active, i)
			caps[i] = want
			before[i] = e.Stats().WallRounds
			remaining -= want
		}
		_, werr := s.runShards(active, func(shard int) (int, error) {
			return s.engines[shard].DecideWindowCapped(caps[shard])
		})
		// The pass costs the slowest active shard's window — account it
		// even when the pass failed (those rounds were burned).
		var passWall core.Round
		for _, i := range active {
			if d := s.engines[i].Stats().WallRounds - before[i]; d > passWall {
				passWall = d
			}
		}
		aggWall += passWall
		if werr != nil {
			return finish(fmt.Errorf("shard: workload window failed: %w", werr))
		}
	}
	return finish(nil)
}
