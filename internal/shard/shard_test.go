package shard

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"heardof/internal/adversary"
	"heardof/internal/core"
	"heardof/internal/otr"
	"heardof/internal/rsm"
)

// shardLogs collects apply calls per (shard, replica) so tests can check
// per-shard convergence and exactly-once application.
type shardLogs struct{ byShard [][][]string }

func newShardLogs(shards, n int) *shardLogs {
	l := &shardLogs{byShard: make([][][]string, shards)}
	for s := range l.byShard {
		l.byShard[s] = make([][]string, n)
	}
	return l
}

func (l *shardLogs) apply(shard, replica int, cmd string) {
	l.byShard[shard][replica] = append(l.byShard[shard][replica], cmd)
}

func (l *shardLogs) converged() bool {
	for _, replicas := range l.byShard {
		for _, lg := range replicas[1:] {
			if !reflect.DeepEqual(lg, replicas[0]) {
				return false
			}
		}
	}
	return true
}

func (l *shardLogs) firstDuplicate() (string, bool) {
	seen := make(map[string]bool)
	for _, replicas := range l.byShard {
		for _, cmd := range replicas[0] {
			if seen[cmd] {
				return cmd, true
			}
			seen[cmd] = true
		}
	}
	return "", false
}

func (l *shardLogs) total() int {
	n := 0
	for _, replicas := range l.byShard {
		n += len(replicas[0])
	}
	return n
}

// groupConfig builds each shard's rsm.Config with its own environment.
func groupConfig(n int, provider func(shard int) func(slot int) core.HOProvider, tune rsm.Tuning) func(int) rsm.Config {
	return func(shard int) rsm.Config {
		return rsm.Config{
			N: n, Algorithm: otr.Algorithm{}, Provider: provider(shard), MaxRounds: 500,
			BatchSize: tune.BatchSize, Pipeline: tune.Pipeline, Parallel: tune.Parallel,
		}
	}
}

func allGood(int) func(slot int) core.HOProvider {
	return adversary.SlotFull()
}

func newSharded(t *testing.T, cfg Config, n int, provider func(shard int) func(slot int) core.HOProvider,
	tune rsm.Tuning) (*Sharded[string], *shardLogs) {
	t.Helper()
	l := newShardLogs(cfg.Shards, n)
	s, err := New[string](cfg, groupConfig(n, provider, tune), l.apply)
	if err != nil {
		t.Fatal(err)
	}
	return s, l
}

func TestRoutingProperty(t *testing.T) {
	// Every key routes to exactly one shard in [0, S), and routing is a
	// pure function: independent of instance, seed, Parallel, and call
	// history. This is the property test of the routing layer.
	for _, router := range []Router{HashRouter{}, ModRouter{}} {
		for _, shards := range []int{1, 2, 4, 8, 13} {
			counts := make([]int, shards)
			for key := uint64(0); key < 1<<14; key++ {
				sh := router.Shard(key, shards)
				if sh < 0 || sh >= shards {
					t.Fatalf("%T: key %d routed to shard %d outside [0, %d)", router, key, sh, shards)
				}
				if again := router.Shard(key, shards); again != sh {
					t.Fatalf("%T: key %d routed to %d then %d", router, key, sh, again)
				}
				counts[sh]++
			}
			for sh, c := range counts {
				if c == 0 && shards <= 16 {
					t.Errorf("%T: shard %d received no keys of 2^14 (S=%d)", router, sh, shards)
				}
			}
		}
	}
	// Routing is independent of the Sharded instance's seed-bearing
	// engines and Parallel setting: two services with different shard
	// parallelism and environments route every key identically.
	mk := func(parallel int, seed uint64) *Sharded[string] {
		s, _ := New[string](Config{Shards: 8, Parallel: parallel},
			groupConfig(3, func(shard int) func(int) core.HOProvider {
				return adversary.SlotLoss(0.3, seed+uint64(shard))
			}, rsm.Tuning{}), func(int, int, string) {})
		return s
	}
	a, b := mk(1, 1), mk(8, 999)
	for key := uint64(0); key < 4096; key++ {
		if a.Route(key) != b.Route(key) {
			t.Fatalf("key %d routes differently across instances: %d vs %d", key, a.Route(key), b.Route(key))
		}
	}
}

func TestStringKeyDeterministic(t *testing.T) {
	if StringKey("k001") != StringKey("k001") {
		t.Error("StringKey not deterministic")
	}
	if StringKey("k001") == StringKey("k002") {
		t.Error("distinct keys collided (FNV-1a on 4-byte keys)")
	}
}

func TestShardedDrainConvergesAndAggregates(t *testing.T) {
	s, l := newSharded(t, Config{Shards: 4}, 3, allGood, rsm.Tuning{BatchSize: 8})
	const cmds = 96
	perShard := make([]int, 4)
	for i := 0; i < cmds; i++ {
		key := uint64(i)
		sh, seq := s.SubmitNext(key, rsm.ClientID(i%5), fmt.Sprintf("k%d", i))
		if seq == 0 {
			t.Fatalf("submit %d rejected", i)
		}
		perShard[sh]++
	}
	if s.Pending() != cmds {
		t.Fatalf("pending = %d, want %d", s.Pending(), cmds)
	}
	n, err := s.Drain(100)
	if err != nil {
		t.Fatal(err)
	}
	if n != cmds {
		t.Errorf("drained %d of %d", n, cmds)
	}
	if !l.converged() {
		t.Error("a shard's replicas diverged")
	}
	if dup, has := l.firstDuplicate(); has {
		t.Errorf("command %q applied twice", dup)
	}
	if l.total() != cmds {
		t.Errorf("applied %d commands, want %d", l.total(), cmds)
	}
	// Aggregate counters are sums; WallRounds is the max across shards.
	agg := s.Stats()
	sums := rsm.Stats{}
	for i := 0; i < s.Shards(); i++ {
		st := s.ShardStats(i)
		sums.Slots += st.Slots
		sums.Launched += st.Launched
		sums.Aborted += st.Aborted
		sums.Committed += st.Committed
		sums.TotalRounds += st.TotalRounds
		if st.WallRounds > sums.WallRounds {
			sums.WallRounds = st.WallRounds
		}
		if perShard[i] != st.Committed {
			t.Errorf("shard %d committed %d, routed %d", i, st.Committed, perShard[i])
		}
	}
	if agg != sums {
		t.Errorf("aggregate stats %+v != recomputed %+v", agg, sums)
	}
	if len(s.Latencies()) != cmds {
		t.Errorf("pooled latencies %d, want %d", len(s.Latencies()), cmds)
	}
}

func TestHeterogeneousShardEnvironments(t *testing.T) {
	// The scenario class this layer exists for: shard 2 under 30%
	// transmission loss while every other shard runs fault-free. All
	// shards still converge and complete; the lossy shard pays more
	// consensus rounds per slot.
	provider := func(shard int) func(int) core.HOProvider {
		if shard == 2 {
			return adversary.SlotLoss(0.3, 77)
		}
		return adversary.SlotFull()
	}
	s, l := newSharded(t, Config{Shards: 4, Router: ModRouter{}}, 5, provider,
		rsm.Tuning{BatchSize: 4, Pipeline: 2})
	const cmds = 64
	for i := 0; i < cmds; i++ {
		s.SubmitNext(uint64(i), rsm.ClientID(i%4), fmt.Sprintf("k%d", i))
	}
	if n, err := s.Drain(200); err != nil || n != cmds {
		t.Fatalf("drain: n=%d err=%v", n, err)
	}
	if !l.converged() {
		t.Error("replicas diverged under heterogeneous environments")
	}
	lossy, good := s.ShardStats(2), s.ShardStats(0)
	if lossy.Slots == 0 || good.Slots == 0 {
		t.Fatalf("expected both shards to decide slots: %+v vs %+v", lossy, good)
	}
	lossyRPS := float64(lossy.TotalRounds) / float64(lossy.Slots)
	goodRPS := float64(good.TotalRounds) / float64(good.Slots)
	if lossyRPS <= goodRPS {
		t.Errorf("lossy shard rounds/slot %.2f not above fault-free %.2f", lossyRPS, goodRPS)
	}
}

func TestDecideWindowsSkipsIdleShards(t *testing.T) {
	s, _ := newSharded(t, Config{Shards: 3, Router: ModRouter{}}, 3, allGood, rsm.Tuning{})
	// All keys land on shard 1.
	for i := 0; i < 5; i++ {
		s.Submit(1, 1, uint64(i+1), fmt.Sprintf("k%d", i))
	}
	n, err := s.DecideWindows()
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("committed %d, want 5", n)
	}
	for _, idle := range []int{0, 2} {
		if st := s.ShardStats(idle); st.Slots != 0 || st.Launched != 0 {
			t.Errorf("idle shard %d spent slots: %+v", idle, st)
		}
	}
	// A fully idle service is a no-op, not an empty slot per shard.
	if n, err := s.DecideWindows(); err != nil || n != 0 {
		t.Errorf("idle DecideWindows = (%d, %v), want (0, nil)", n, err)
	}
	if st := s.Stats(); st.Slots != 1 {
		t.Errorf("aggregate slots = %d, want 1", st.Slots)
	}
}

func TestShardFailureIsAttributed(t *testing.T) {
	// Shard 1's environment never delivers anything: its windows fail
	// with ErrSlotUndecided and the error names the shard; the healthy
	// shard's commands still commit in the same call.
	provider := func(shard int) func(int) core.HOProvider {
		if shard == 1 {
			return func(int) core.HOProvider { return adversary.Silence{} }
		}
		return adversary.SlotFull()
	}
	l := newShardLogs(2, 3)
	s, err := New[string](Config{Shards: 2, Router: ModRouter{}},
		func(shard int) rsm.Config {
			return rsm.Config{N: 3, Algorithm: otr.Algorithm{}, Provider: provider(shard), MaxRounds: 5}
		}, l.apply)
	if err != nil {
		t.Fatal(err)
	}
	s.Submit(0, 1, 1, "healthy")
	s.Submit(1, 1, 1, "doomed")
	n, werr := s.DecideWindows()
	if !errors.Is(werr, rsm.ErrSlotUndecided) {
		t.Fatalf("error = %v, want ErrSlotUndecided", werr)
	}
	if !strings.Contains(werr.Error(), "shard 1") {
		t.Errorf("error %q does not attribute shard 1", werr)
	}
	if n != 1 {
		t.Errorf("committed %d, want the healthy shard's 1", n)
	}
	if _, derr := s.Drain(3); !errors.Is(derr, rsm.ErrSlotUndecided) {
		t.Errorf("drain error = %v, want ErrSlotUndecided", derr)
	}
}

// shardFingerprint captures every observable output of a sharded run.
func shardFingerprint(s *Sharded[string], l *shardLogs) string {
	return fmt.Sprintf("%v|%+v|%v|%v", l.byShard, s.Stats(), perShardStats(s), s.Latencies())
}

func perShardStats(s *Sharded[string]) []rsm.Stats {
	out := make([]rsm.Stats, s.Shards())
	for i := range out {
		out[i] = s.ShardStats(i)
	}
	return out
}

func TestShardParallelSettingInvisible(t *testing.T) {
	// The sharded determinism contract: byte-identical logs, stats and
	// latencies whether shards are driven by 1 worker or 8, and whether
	// each group's pipeline runs on 1 worker or 4 — under heterogeneous
	// lossy environments.
	run := func(shardParallel, engineParallel int) string {
		provider := func(shard int) func(int) core.HOProvider {
			return adversary.SlotLoss(0.2+0.05*float64(shard), 300+uint64(shard))
		}
		s, l := newSharded(t, Config{Shards: 4, Parallel: shardParallel}, 5, provider,
			rsm.Tuning{BatchSize: 6, Pipeline: 4, Parallel: engineParallel})
		for i := 0; i < 80; i++ {
			s.SubmitNext(uint64(i*131), rsm.ClientID(i%6), fmt.Sprintf("m%d", i))
		}
		if _, err := s.Drain(300); err != nil {
			t.Fatal(err)
		}
		return shardFingerprint(s, l)
	}
	ref := run(1, 1)
	for _, combo := range [][2]int{{8, 1}, {1, 4}, {8, 4}, {3, 2}} {
		if got := run(combo[0], combo[1]); got != ref {
			t.Errorf("state differs between Parallel=(1,1) and Parallel=(%d,%d)", combo[0], combo[1])
		}
	}
}

func TestNewValidation(t *testing.T) {
	group := groupConfig(3, allGood, rsm.Tuning{})
	apply := func(int, int, string) {}
	if _, err := New[string](Config{Shards: 0}, group, apply); err == nil {
		t.Error("Shards=0 accepted")
	}
	if _, err := New[string](Config{Shards: 2}, nil, apply); err == nil {
		t.Error("nil group accepted")
	}
	if _, err := New[string](Config{Shards: 2}, group, nil); err == nil {
		t.Error("nil apply accepted")
	}
	// A bad group config is surfaced with its shard index.
	bad := func(shard int) rsm.Config {
		cfg := group(shard)
		if shard == 1 {
			cfg.MaxRounds = 0
		}
		return cfg
	}
	if _, err := New[string](Config{Shards: 3}, bad, apply); err == nil || !strings.Contains(err.Error(), "shard 1") {
		t.Errorf("bad group config error = %v, want shard-1 attribution", err)
	}
}
