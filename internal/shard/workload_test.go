package shard

import (
	"errors"
	"fmt"
	"testing"

	"heardof/internal/adversary"
	"heardof/internal/core"
	"heardof/internal/otr"
	"heardof/internal/rsm"
)

func opCmd(op rsm.Op) string {
	kind := "r"
	if op.Write {
		kind = "w"
	}
	return fmt.Sprintf("%s c%d#%d k%d", kind, op.Client, op.Seq, op.Key)
}

// mixedEnv cycles good / 30%-loss / crash-recovery across shards.
func mixedEnv(n int) func(shard int) func(slot int) core.HOProvider {
	return func(shard int) func(slot int) core.HOProvider {
		switch shard % 3 {
		case 1:
			return adversary.SlotLoss(0.3, 500+uint64(shard))
		case 2:
			return adversary.SlotRotatingCrash(n, 10)
		default:
			return adversary.SlotFull()
		}
	}
}

func TestShardedWorkloadCompletes(t *testing.T) {
	s, l := newSharded(t, Config{Shards: 4}, 5, mixedEnv(5), rsm.Tuning{BatchSize: 8, Pipeline: 4})
	res, err := RunWorkload(s, rsm.WorkloadConfig{
		Clients: 12, Rate: 0.8, WriteRatio: 0.7, Keys: 64,
		Dist: rsm.Zipfian, ZipfS: 0.99, Ops: 160, MaxSlots: 2000, Seed: 4,
	}, opCmd, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggregate.Completed != 160 {
		t.Errorf("completed %d of 160", res.Aggregate.Completed)
	}
	if res.Aggregate.SlotsPerCmd >= 1 {
		t.Errorf("slots/cmd = %v; batching should amortize below 1", res.Aggregate.SlotsPerCmd)
	}
	if res.Aggregate.CmdsPerRound <= 0 {
		t.Errorf("throughput = %v", res.Aggregate.CmdsPerRound)
	}
	if len(res.PerShard) != 4 {
		t.Fatalf("per-shard results: %d, want 4", len(res.PerShard))
	}
	sum, slots, launched := 0, 0, 0
	maxWall := core.Round(0)
	for i, ps := range res.PerShard {
		sum += ps.Completed
		slots += ps.Slots
		launched += ps.Launched
		if ps.WallRounds > maxWall {
			maxWall = ps.WallRounds
		}
		if ps.Completed > 0 && (ps.LatencyP50 < 1 || ps.LatencyP95 < ps.LatencyP50 || ps.LatencyP99 < ps.LatencyP95) {
			t.Errorf("shard %d percentiles out of order: %+v", i, ps)
		}
	}
	if sum != res.Aggregate.Completed || slots != res.Aggregate.Slots || launched != res.Aggregate.Launched {
		t.Errorf("per-shard sums (%d, %d, %d) don't match aggregate (%d, %d, %d)",
			sum, slots, launched, res.Aggregate.Completed, res.Aggregate.Slots, res.Aggregate.Launched)
	}
	// The aggregate clock accumulates the slowest active shard's window
	// per pass: at least the slowest shard's own clock (equality when one
	// shard dominates every pass), at most the sum of all shard clocks.
	var sumWall core.Round
	for _, ps := range res.PerShard {
		sumWall += ps.WallRounds
	}
	if res.Aggregate.WallRounds < maxWall || res.Aggregate.WallRounds > sumWall {
		t.Errorf("aggregate wall %d outside [max shard wall %d, sum %d]",
			res.Aggregate.WallRounds, maxWall, sumWall)
	}
	if !l.converged() {
		t.Error("a shard's replicas diverged")
	}
	if dup, has := l.firstDuplicate(); has {
		t.Errorf("command %q applied twice", dup)
	}
}

func TestShardedWorkloadDeterministicAndParallelInvisible(t *testing.T) {
	run := func(shardParallel, engineParallel int) (Result, string) {
		s, l := newSharded(t, Config{Shards: 4, Parallel: shardParallel}, 5, mixedEnv(5),
			rsm.Tuning{BatchSize: 6, Pipeline: 4, Parallel: engineParallel})
		res, err := RunWorkload(s, rsm.WorkloadConfig{
			Clients: 10, Rate: 0.7, WriteRatio: 0.6, Keys: 48,
			Dist: rsm.Zipfian, ZipfS: 0.99, Ops: 120, MaxSlots: 2000, Seed: 21,
		}, opCmd, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res, shardFingerprint(s, l)
	}
	r1, f1 := run(1, 1)
	r2, f2 := run(8, 4)
	if fmt.Sprintf("%+v", r1) != fmt.Sprintf("%+v", r2) {
		t.Errorf("workload results differ across Parallel settings:\n%+v\nvs\n%+v", r1, r2)
	}
	if f1 != f2 {
		t.Error("engine fingerprints differ across Parallel settings")
	}
	// And a same-setting replay is bit-identical too.
	r3, f3 := run(1, 1)
	if fmt.Sprintf("%+v", r1) != fmt.Sprintf("%+v", r3) || f1 != f3 {
		t.Error("identical runs diverged")
	}
}

func TestShardedWorkloadSingleShardMatchesRSM(t *testing.T) {
	// With S = 1 every op routes to the one group, per-shard sequence
	// numbers coincide with global ones, and the generator consumes its
	// RNG in the same order as rsm.RunWorkload — so the sharded harness
	// must reproduce the unsharded one exactly, op for op.
	cfg := rsm.WorkloadConfig{
		Clients: 8, Rate: 0.75, WriteRatio: 0.7, Keys: 32,
		Dist: rsm.Zipfian, ZipfS: 0.99, Ops: 90, MaxSlots: 1000, Seed: 13,
	}
	s, sl := newSharded(t, Config{Shards: 1}, 5, allGood, rsm.Tuning{BatchSize: 8, Pipeline: 4})
	sres, err := RunWorkload(s, cfg, opCmd, nil)
	if err != nil {
		t.Fatal(err)
	}

	// The reference: the plain rsm harness over one engine with the same
	// tuning and the same fault-free environment.
	var rlog []string
	ref, err := rsm.New(rsm.Config{
		N: 5, Algorithm: otr.Algorithm{}, Provider: adversary.SlotFull(), MaxRounds: 500,
		BatchSize: 8, Pipeline: 4,
	}, func(replica int, cmd string) {
		if replica == 0 {
			rlog = append(rlog, cmd)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	rres, err := rsm.RunWorkload(ref, cfg, opCmd)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", sres.Aggregate) != fmt.Sprintf("%+v", rres) {
		t.Errorf("S=1 aggregate differs from rsm.RunWorkload:\n%+v\nvs\n%+v", sres.Aggregate, rres)
	}
	if fmt.Sprint(sl.byShard[0][0]) != fmt.Sprint(rlog) {
		t.Error("S=1 applied log differs from the unsharded engine's")
	}
}

func TestShardedWorkloadBudgetIsGlobalHardBound(t *testing.T) {
	s, _ := newSharded(t, Config{Shards: 4}, 3, allGood, rsm.Tuning{BatchSize: 1, Pipeline: 4})
	_, err := RunWorkload(s, rsm.WorkloadConfig{
		Clients: 8, Rate: 1, WriteRatio: 1, Keys: 32,
		Ops: 400, MaxSlots: 6, Seed: 2,
	}, opCmd, nil)
	if !errors.Is(err, rsm.ErrSlotUndecided) {
		t.Fatalf("error = %v, want ErrSlotUndecided", err)
	}
	if launched := s.Stats().Launched; launched > 6 {
		t.Errorf("launched %d consensus instances, budget was 6 (hard bound)", launched)
	}
}

func TestShardedWorkloadValidation(t *testing.T) {
	good := rsm.WorkloadConfig{Clients: 1, Rate: 0.5, WriteRatio: 0.5, Keys: 1, Ops: 1, MaxSlots: 10, Seed: 1}
	mutations := []func(*rsm.WorkloadConfig){
		func(c *rsm.WorkloadConfig) { c.Clients = 0 },
		func(c *rsm.WorkloadConfig) { c.Rate = 0 },
		func(c *rsm.WorkloadConfig) { c.Rate = 1.5 },
		func(c *rsm.WorkloadConfig) { c.WriteRatio = -0.1 },
		func(c *rsm.WorkloadConfig) { c.Keys = 0 },
		func(c *rsm.WorkloadConfig) { c.Ops = 0 },
		func(c *rsm.WorkloadConfig) { c.MaxSlots = 0 },
		func(c *rsm.WorkloadConfig) { c.ZipfS = -0.5 },
	}
	for i, mut := range mutations {
		s, _ := newSharded(t, Config{Shards: 2}, 3, allGood, rsm.Tuning{})
		cfg := good
		mut(&cfg)
		if _, err := RunWorkload(s, cfg, opCmd, nil); err == nil {
			t.Errorf("mutation %d accepted: %+v", i, cfg)
		}
	}
	s, _ := newSharded(t, Config{Shards: 2}, 3, allGood, rsm.Tuning{})
	if _, err := RunWorkload[string](s, good, nil, nil); err == nil {
		t.Error("nil makeCmd accepted")
	}
	// A used service is rejected.
	s2, _ := newSharded(t, Config{Shards: 2}, 3, allGood, rsm.Tuning{})
	s2.SubmitNext(1, 1, "x")
	if _, err := RunWorkload(s2, good, opCmd, nil); err == nil {
		t.Error("non-fresh service accepted")
	}
}
