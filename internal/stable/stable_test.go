package stable

import "testing"

func TestSaveLoadDelete(t *testing.T) {
	s := NewStore()
	if _, ok := s.Load("missing"); ok {
		t.Error("Load on empty store succeeded")
	}
	s.Save("rp", 7)
	if v, ok := s.Load("rp"); !ok || v != 7 {
		t.Errorf("Load = (%v, %v)", v, ok)
	}
	s.Save("rp", 8)
	if v, _ := s.Load("rp"); v != 8 {
		t.Error("overwrite failed")
	}
	s.Delete("rp")
	if _, ok := s.Load("rp"); ok {
		t.Error("Delete did not remove the key")
	}
}

func TestCounters(t *testing.T) {
	s := NewStore()
	s.Save("a", 1)
	s.Save("b", 2)
	s.Load("a")
	if s.Writes() != 2 {
		t.Errorf("writes = %d, want 2", s.Writes())
	}
	if s.Reads() != 1 {
		t.Errorf("reads = %d, want 1", s.Reads())
	}
}

func TestKeysSorted(t *testing.T) {
	s := NewStore()
	s.Save("z", 1)
	s.Save("a", 2)
	s.Save("m", 3)
	got := s.Keys()
	want := []string{"a", "m", "z"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", got, want)
		}
	}
}

func TestRegistrySurvivesLookups(t *testing.T) {
	r := NewRegistry()
	s1 := r.For(3)
	s1.Save("k", "v")
	s2 := r.For(3)
	if v, ok := s2.Load("k"); !ok || v != "v" {
		t.Error("registry handed out a different store for the same process")
	}
	if r.For(4) == s1 {
		t.Error("different processes share a store")
	}
	r.For(4).Save("x", 1)
	if r.TotalWrites() != 2 {
		t.Errorf("TotalWrites = %d, want 2", r.TotalWrites())
	}
}
