// Package stable models the per-process stable storage of the paper's
// crash-recovery model: Algorithms 2 and 3 keep the round number r_p and
// the algorithm state s_p on stable storage; a recovering process wipes
// all volatile state and rebuilds itself from the store.
//
// The store counts writes so that benchmarks can report stable-storage
// traffic (the paper notes that reading stable storage is inefficient and
// describes the in-memory-copy optimization; the counter makes the cost
// visible).
package stable

import "sort"

// Store is one process's stable storage: a key-value map that survives
// crashes. Values must already be deep copies (core.Snapshot contract);
// the store does not copy them.
type Store struct {
	data   map[string]any
	writes int64
	reads  int64
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{data: make(map[string]any)}
}

// Save durably stores v under key.
func (s *Store) Save(key string, v any) {
	s.data[key] = v
	s.writes++
}

// Load returns the value stored under key.
func (s *Store) Load(key string) (any, bool) {
	s.reads++
	v, ok := s.data[key]
	return v, ok
}

// Delete removes key.
func (s *Store) Delete(key string) { delete(s.data, key) }

// Keys returns the stored keys in sorted order.
func (s *Store) Keys() []string {
	out := make([]string, 0, len(s.data))
	for k := range s.data {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Writes returns the number of Save calls.
func (s *Store) Writes() int64 { return s.writes }

// Reads returns the number of Load calls.
func (s *Store) Reads() int64 { return s.reads }

// Registry hands out one store per process index and keeps them across
// crashes (stable storage outlives the process).
type Registry struct {
	stores map[int]*Store
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{stores: make(map[int]*Store)}
}

// For returns the store of process p, creating it on first use.
func (r *Registry) For(p int) *Store {
	st, ok := r.stores[p]
	if !ok {
		st = NewStore()
		r.stores[p] = st
	}
	return st
}

// TotalWrites sums Save calls across all stores.
func (r *Registry) TotalWrites() int64 {
	var total int64
	for _, st := range r.stores {
		total += st.Writes()
	}
	return total
}
