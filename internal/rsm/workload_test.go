package rsm

import (
	"errors"
	"fmt"
	"testing"

	"heardof/internal/adversary"
	"heardof/internal/core"
	"heardof/internal/xrand"
)

func workloadEngine(t *testing.T, provider func(int) core.HOProvider, pipeline int) (*Engine[string], *logs) {
	t.Helper()
	l := newLogs(5)
	e := newEngine(t, Config{N: 5, Provider: provider, BatchSize: 8, Pipeline: pipeline, MaxRounds: 500}, l)
	return e, l
}

func opCmd(op Op) string {
	kind := "r"
	if op.Write {
		kind = "w"
	}
	return fmt.Sprintf("%s c%d#%d k%d", kind, op.Client, op.Seq, op.Key)
}

func TestWorkloadClosedLoopCompletes(t *testing.T) {
	e, l := workloadEngine(t, fullProvider, 4)
	res, err := RunWorkload(e, WorkloadConfig{
		Clients: 10, Rate: 0.8, WriteRatio: 0.7, Keys: 32,
		Dist: Zipfian, ZipfS: 0.99, Ops: 120, MaxSlots: 400, Seed: 3,
	}, opCmd)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 120 {
		t.Errorf("completed %d of 120", res.Completed)
	}
	if res.SlotsPerCmd >= 1 {
		t.Errorf("slots/cmd = %v; batching should amortize below 1", res.SlotsPerCmd)
	}
	if res.CmdsPerRound <= 0 {
		t.Errorf("throughput = %v", res.CmdsPerRound)
	}
	if res.LatencyP50 < 1 || res.LatencyP95 < res.LatencyP50 || res.LatencyP99 < res.LatencyP95 {
		t.Errorf("latency percentiles out of order: p50=%d p95=%d p99=%d",
			res.LatencyP50, res.LatencyP95, res.LatencyP99)
	}
	if !l.converged() {
		t.Error("replicas diverged")
	}
	if dup, has := l.firstDuplicate(); has {
		t.Errorf("command %q applied twice", dup)
	}
}

func TestWorkloadUnderLossStillExactlyOnce(t *testing.T) {
	rng := xrand.New(23)
	provider := func(int) core.HOProvider {
		return &adversary.TransmissionLoss{Rate: 0.25, RNG: rng.Fork()}
	}
	e, l := workloadEngine(t, provider, 4)
	res, err := RunWorkload(e, WorkloadConfig{
		Clients: 6, Rate: 0.9, WriteRatio: 0.5, Keys: 16,
		Dist: Uniform, Ops: 60, MaxSlots: 600, Seed: 5,
	}, opCmd)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 60 {
		t.Errorf("completed %d of 60", res.Completed)
	}
	if !l.converged() {
		t.Error("replicas diverged under loss")
	}
	if dup, has := l.firstDuplicate(); has {
		t.Errorf("command %q applied twice", dup)
	}
}

func TestWorkloadDeterministic(t *testing.T) {
	run := func() (WorkloadResult, string) {
		provider := func(slot int) core.HOProvider {
			return &adversary.TransmissionLoss{Rate: 0.15, RNG: xrand.New(5000 + uint64(slot))}
		}
		e, l := workloadEngine(t, provider, 4)
		res, err := RunWorkload(e, WorkloadConfig{
			Clients: 8, Rate: 0.7, WriteRatio: 0.6, Keys: 24,
			Dist: Zipfian, ZipfS: 0.99, Ops: 80, MaxSlots: 500, Seed: 11,
		}, opCmd)
		if err != nil {
			t.Fatal(err)
		}
		return res, fingerprint(e, l)
	}
	r1, f1 := run()
	r2, f2 := run()
	if r1 != r2 {
		t.Errorf("results differ: %+v vs %+v", r1, r2)
	}
	if f1 != f2 {
		t.Error("engine fingerprints differ between identical runs")
	}
}

func TestWorkloadBudgetExhaustion(t *testing.T) {
	e, _ := workloadEngine(t, fullProvider, 1)
	_, err := RunWorkload(e, WorkloadConfig{
		Clients: 4, Rate: 1, WriteRatio: 1, Keys: 4,
		Ops: 500, MaxSlots: 3, Seed: 1,
	}, opCmd)
	if !errors.Is(err, ErrSlotUndecided) {
		t.Errorf("error = %v, want ErrSlotUndecided", err)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	// Regression: the old implementation rounded q·n half-up
	// (int(q·n+0.5)−1), which undershoots the nearest rank ⌈q·n⌉−1
	// whenever frac(q·n) ∈ (0, 0.5) — e.g. n=39, q=0.95 gave index 36
	// instead of 37.
	seq := func(n int) []core.Round {
		out := make([]core.Round, n)
		for i := range out {
			out[i] = core.Round(i) // sorted[i] == i, so values ARE indexes
		}
		return out
	}
	tests := []struct {
		n    int
		q    float64
		want core.Round
	}{
		{39, 0.95, 37},   // ⌈37.05⌉−1 = 37; the old code picked 36
		{39, 0.50, 19},   // ⌈19.5⌉−1 = 19
		{39, 0.99, 38},   // ⌈38.61⌉−1 = 38
		{150, 0.99, 148}, // ⌈148.5⌉−1 = 148; the old code picked 147
		{100, 0.95, 94},  // q·n integral: ⌈95⌉−1 = 94
		{100, 0.50, 49},
		{1, 0.99, 0},
		{10, 0.01, 0}, // ⌈0.1⌉−1 = 0
		{4, 1.0, 3},   // q = 1 is the maximum
		// Float guard: 0.07·100 is 7.000000000000001 in float64; a naive
		// ceil would overshoot to rank 7 where exact ⌈7⌉−1 = 6.
		{100, 0.07, 6},
	}
	for _, tt := range tests {
		if got := Percentile(seq(tt.n), tt.q); got != tt.want {
			t.Errorf("Percentile(n=%d, q=%v) = %d, want %d", tt.n, tt.q, got, tt.want)
		}
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("Percentile(empty) = %d, want 0", got)
	}
}

func TestZipfExponentZeroIsHonored(t *testing.T) {
	// Regression: ZipfS == 0 used to be treated as "unset → 0.99", so an
	// explicit `-zipf 0` silently ran the YCSB default. Now an explicit 0
	// runs s = 0 (uniform through the Zipf sampler) and must generate a
	// different key sequence than s = 0.99.
	keysFor := func(s float64) []string {
		e, _ := workloadEngine(t, fullProvider, 1)
		var keys []string
		_, err := RunWorkload(e, WorkloadConfig{
			Clients: 4, Rate: 0.9, WriteRatio: 1, Keys: 64,
			Dist: Zipfian, ZipfS: s, Ops: 80, MaxSlots: 400, Seed: 9,
		}, func(op Op) string {
			k := fmt.Sprintf("k%d", op.Key)
			keys = append(keys, k)
			return k
		})
		if err != nil {
			t.Fatalf("s=%v: %v", s, err)
		}
		return keys
	}
	zero, ycsb := keysFor(0), keysFor(0.99)
	if fmt.Sprint(zero) == fmt.Sprint(ycsb) {
		t.Error("ZipfS=0 generated the same keys as ZipfS=0.99 — the explicit 0 was overridden")
	}
	// s = 0 is uniform: with 80 draws over 64 keys no key should dominate
	// the way a 0.99-skewed stream's hottest key does.
	count := func(keys []string) map[string]int {
		m := make(map[string]int)
		for _, k := range keys {
			m[k]++
		}
		return m
	}
	max := func(m map[string]int) int {
		best := 0
		for _, c := range m {
			if c > best {
				best = c
			}
		}
		return best
	}
	if mz, my := max(count(zero)), max(count(ycsb)); mz >= my {
		t.Errorf("hottest-key count under s=0 (%d) not below s=0.99 (%d) — s=0 should be uniform", mz, my)
	}
}

func TestWorkloadValidation(t *testing.T) {
	good := WorkloadConfig{Clients: 1, Rate: 0.5, WriteRatio: 0.5, Keys: 1, Ops: 1, MaxSlots: 10, Seed: 1}
	mutations := []func(*WorkloadConfig){
		func(c *WorkloadConfig) { c.Clients = 0 },
		func(c *WorkloadConfig) { c.Rate = 0 },
		func(c *WorkloadConfig) { c.Rate = 1.5 },
		func(c *WorkloadConfig) { c.WriteRatio = -0.1 },
		func(c *WorkloadConfig) { c.Keys = 0 },
		func(c *WorkloadConfig) { c.Ops = 0 },
		func(c *WorkloadConfig) { c.MaxSlots = 0 },
		func(c *WorkloadConfig) { c.ZipfS = -0.5 },
	}
	for i, mut := range mutations {
		e, _ := workloadEngine(t, fullProvider, 1)
		cfg := good
		mut(&cfg)
		if _, err := RunWorkload(e, cfg, opCmd); err == nil {
			t.Errorf("mutation %d accepted: %+v", i, cfg)
		}
	}
	e, _ := workloadEngine(t, fullProvider, 1)
	if _, err := RunWorkload[string](e, good, nil); err == nil {
		t.Error("nil makeCmd accepted")
	}
	// A used engine is rejected.
	e2, _ := workloadEngine(t, fullProvider, 1)
	e2.Submit(1, 1, "x")
	if _, err := RunWorkload(e2, good, opCmd); err == nil {
		t.Error("non-fresh engine accepted")
	}
}
