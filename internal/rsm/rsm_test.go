package rsm

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"heardof/internal/adversary"
	"heardof/internal/core"
	"heardof/internal/otr"
	"heardof/internal/xrand"
)

func fullProvider(int) core.HOProvider { return adversary.Full{} }

// logs collects apply calls per replica so tests can check convergence and
// exactly-once application.
type logs struct{ byReplica [][]string }

func newLogs(n int) *logs { return &logs{byReplica: make([][]string, n)} }

func (l *logs) apply(replica int, cmd string) {
	l.byReplica[replica] = append(l.byReplica[replica], cmd)
}

// converged reports whether every replica applied the same commands in the
// same order, and dup reports the first command applied twice anywhere.
func (l *logs) converged() bool {
	for _, lg := range l.byReplica[1:] {
		if !reflect.DeepEqual(lg, l.byReplica[0]) {
			return false
		}
	}
	return true
}

func (l *logs) firstDuplicate() (string, bool) {
	seen := make(map[string]bool)
	for _, cmd := range l.byReplica[0] {
		if seen[cmd] {
			return cmd, true
		}
		seen[cmd] = true
	}
	return "", false
}

func newEngine(t *testing.T, cfg Config, l *logs) *Engine[string] {
	t.Helper()
	if cfg.Algorithm == nil {
		cfg.Algorithm = otr.Algorithm{}
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = 300
	}
	e, err := New(cfg, l.apply)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func submitN(t *testing.T, e *Engine[string], client ClientID, from, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		ok, err := e.Submit(client, uint64(from+i+1), fmt.Sprintf("c%d-%d", client, from+i+1))
		if err != nil || !ok {
			t.Fatalf("submit %d: ok=%v err=%v", from+i, ok, err)
		}
	}
}

func TestBatchAmortization(t *testing.T) {
	// The acceptance bound of this PR: M commands with batch size B drain
	// in ≤ ⌈M/B⌉ + 1 slots — versus exactly M slots with the pre-rsm
	// one-command-per-slot layer.
	for _, tc := range []struct{ m, b int }{{200, 63}, {100, 10}, {64, 63}, {5, 1}} {
		l := newLogs(4)
		e := newEngine(t, Config{N: 4, Provider: fullProvider, BatchSize: tc.b}, l)
		submitN(t, e, 1, 0, tc.m)
		n, err := e.Drain(tc.m + 2)
		if err != nil {
			t.Fatalf("M=%d B=%d: %v", tc.m, tc.b, err)
		}
		if n != tc.m {
			t.Fatalf("M=%d B=%d: committed %d", tc.m, tc.b, n)
		}
		bound := (tc.m+tc.b-1)/tc.b + 1
		if s := e.Stats().Slots; s > bound {
			t.Errorf("M=%d B=%d: used %d slots, want ≤ ⌈M/B⌉+1 = %d", tc.m, tc.b, s, bound)
		}
		if !l.converged() {
			t.Errorf("M=%d B=%d: replicas diverged", tc.m, tc.b)
		}
	}
}

func TestPipeliningReducesWallRounds(t *testing.T) {
	// 4 chunks in flight cost max (not sum) of their rounds: wall rounds
	// stay below total consensus rounds.
	l := newLogs(4)
	e := newEngine(t, Config{N: 4, Provider: fullProvider, BatchSize: 8, Pipeline: 4}, l)
	submitN(t, e, 1, 0, 32)
	if _, err := e.Drain(10); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Slots != 4 {
		t.Fatalf("slots = %d, want 4", st.Slots)
	}
	if st.WallRounds >= st.TotalRounds {
		t.Errorf("wall rounds %d not below total rounds %d despite 4-deep pipeline",
			st.WallRounds, st.TotalRounds)
	}
}

func TestSessionDedupExactlyOnce(t *testing.T) {
	l := newLogs(3)
	e := newEngine(t, Config{N: 3, Provider: fullProvider}, l)

	if ok, err := e.Submit(7, 1, "put x"); err != nil || !ok {
		t.Fatalf("first submit: ok=%v err=%v", ok, err)
	}
	// Retry before the command commits: dropped.
	if ok, err := e.Submit(7, 1, "put x"); err != nil || ok {
		t.Fatalf("pending retry accepted: ok=%v err=%v", ok, err)
	}
	if _, err := e.Drain(5); err != nil {
		t.Fatal(err)
	}
	// Retry after the command committed: still dropped.
	if ok, err := e.Submit(7, 1, "put x"); err != nil || ok {
		t.Fatalf("post-commit retry accepted: ok=%v err=%v", ok, err)
	}
	if _, err := e.Drain(5); err != nil {
		t.Fatal(err)
	}
	if got := len(l.byReplica[0]); got != 1 {
		t.Errorf("command applied %d times, want exactly once", got)
	}
	if e.AppliedSeq(7) != 1 {
		t.Errorf("AppliedSeq = %d, want 1", e.AppliedSeq(7))
	}
	if _, err := e.Submit(7, 0, "bad"); err == nil {
		t.Error("sequence 0 accepted")
	}
}

func TestSubmitNextAutoSession(t *testing.T) {
	l := newLogs(3)
	e := newEngine(t, Config{N: 3, Provider: fullProvider}, l)
	if seq := e.SubmitNext(4, "a"); seq != 1 {
		t.Errorf("first SubmitNext seq = %d, want 1", seq)
	}
	if seq := e.SubmitNext(4, "b"); seq != 2 {
		t.Errorf("second SubmitNext seq = %d, want 2", seq)
	}
	// SubmitNext advances past explicitly submitted sequences too.
	if ok, err := e.Submit(4, 10, "c"); err != nil || !ok {
		t.Fatalf("explicit submit: ok=%v err=%v", ok, err)
	}
	if seq := e.SubmitNext(4, "d"); seq != 11 {
		t.Errorf("SubmitNext after seq 10 = %d, want 11", seq)
	}
	if _, err := e.Drain(5); err != nil {
		t.Fatal(err)
	}
	if got := len(l.byReplica[0]); got != 4 {
		t.Errorf("applied %d commands, want 4", got)
	}
}

func TestConvergenceAndExactlyOnceUnderLoss(t *testing.T) {
	// Lossy adversary (DT class), batched and 4-deep pipelined: replicas
	// converge and every retried command applies exactly once.
	rng := xrand.New(17)
	provider := func(int) core.HOProvider {
		return &adversary.TransmissionLoss{Rate: 0.2, RNG: rng.Fork()}
	}
	l := newLogs(5)
	e := newEngine(t, Config{N: 5, Provider: provider, BatchSize: 8, Pipeline: 4, MaxRounds: 500}, l)
	const cmds = 60
	for i := 0; i < cmds; i++ {
		client := ClientID(i % 3)
		seq := uint64(i/3 + 1)
		if ok, err := e.Submit(client, seq, fmt.Sprintf("c%d-%d", client, seq)); err != nil || !ok {
			t.Fatalf("submit %d: ok=%v err=%v", i, ok, err)
		}
		// Every submission is retried once (a client that timed out).
		if ok, _ := e.Submit(client, seq, fmt.Sprintf("c%d-%d", client, seq)); ok {
			t.Fatalf("retry of %d accepted", i)
		}
	}
	n, err := e.Drain(200)
	if err != nil {
		t.Fatal(err)
	}
	if n != cmds {
		t.Errorf("committed %d of %d", n, cmds)
	}
	if !l.converged() {
		t.Error("replicas diverged under loss")
	}
	if dup, has := l.firstDuplicate(); has {
		t.Errorf("command %q applied twice", dup)
	}
}

// crashRecoveryProvider crashes one rotating process for a range of slots
// and lets it recover afterwards — a crash-recovery schedule at slot
// granularity (a minority is down, OneThirdRule still clears 2n/3).
func crashRecoveryProvider(n int) func(slot int) core.HOProvider {
	return func(slot int) core.HOProvider {
		switch {
		case slot >= 2 && slot < 6:
			return adversary.CrashStop{CrashRound: map[core.ProcessID]core.Round{core.ProcessID(n - 1): 1}}
		case slot >= 8 && slot < 12:
			return adversary.CrashStop{CrashRound: map[core.ProcessID]core.Round{core.ProcessID(n - 2): 1}}
		default:
			return adversary.Full{}
		}
	}
}

func TestConvergenceAndExactlyOnceUnderCrashRecovery(t *testing.T) {
	l := newLogs(5)
	e := newEngine(t, Config{N: 5, Provider: crashRecoveryProvider(5), BatchSize: 4, Pipeline: 2}, l)
	const cmds = 56
	for i := 0; i < cmds; i++ {
		client := ClientID(i % 4)
		seq := uint64(i/4 + 1)
		if ok, err := e.Submit(client, seq, fmt.Sprintf("c%d-%d", client, seq)); err != nil || !ok {
			t.Fatalf("submit %d: ok=%v err=%v", i, ok, err)
		}
		e.Submit(client, seq, "retry") // duplicate, dropped
	}
	n, err := e.Drain(100)
	if err != nil {
		t.Fatal(err)
	}
	if n != cmds {
		t.Errorf("committed %d of %d", n, cmds)
	}
	if !l.converged() {
		t.Error("replicas diverged across crash-recovery slots")
	}
	if dup, has := l.firstDuplicate(); has {
		t.Errorf("command %q applied twice", dup)
	}
}

// fingerprint captures every observable output of an engine run.
func fingerprint(e *Engine[string], l *logs) string {
	return fmt.Sprintf("%v|%+v|%v", l.byReplica, e.Stats(), e.Latencies())
}

func TestParallelSettingInvisible(t *testing.T) {
	// The same workload through Parallel=1 and Parallel=8 engines yields
	// byte-identical logs, stats and latencies: pipelining is driven
	// through internal/sweep, whose results are index-ordered.
	run := func(parallel int) string {
		provider := func(slot int) core.HOProvider {
			return &adversary.TransmissionLoss{Rate: 0.25, RNG: xrand.New(1000 + uint64(slot))}
		}
		l := newLogs(5)
		e := newEngine(t, Config{
			N: 5, Provider: provider, BatchSize: 6, Pipeline: 8,
			Parallel: parallel, MaxRounds: 500,
		}, l)
		for i := 0; i < 90; i++ {
			if ok, err := e.Submit(ClientID(i%5), uint64(i/5+1), fmt.Sprintf("m%d", i)); err != nil || !ok {
				t.Fatalf("submit %d: ok=%v err=%v", i, ok, err)
			}
		}
		if _, err := e.Drain(200); err != nil {
			t.Fatal(err)
		}
		return fingerprint(e, l)
	}
	seq, par := run(1), run(8)
	if seq != par {
		t.Errorf("engine state differs between Parallel=1 and Parallel=8:\n%s\nvs\n%s", seq, par)
	}
}

func TestWindowFailureDiscardsSpeculativeSlots(t *testing.T) {
	// Slot 0 decides, slot 1 (in flight in the same window) cannot: the
	// window commits its decided prefix, the failed chunk and everything
	// after it stay pending in submission order, and the error carries
	// the ErrSlotUndecided sentinel.
	calls := 0
	provider := func(slot int) core.HOProvider {
		calls++
		if calls == 2 { // the first window's second slot
			return adversary.Silence{}
		}
		return adversary.Full{}
	}
	l := newLogs(3)
	e := newEngine(t, Config{N: 3, Provider: provider, BatchSize: 2, Pipeline: 3, MaxRounds: 5}, l)
	submitN(t, e, 1, 0, 6)

	n, err := e.DecideWindow()
	if !errors.Is(err, ErrSlotUndecided) {
		t.Fatalf("error = %v, want ErrSlotUndecided", err)
	}
	if n != 2 {
		t.Errorf("committed %d commands, want the 2 of the decided prefix slot", n)
	}
	st := e.Stats()
	if st.Slots != 1 || st.Launched != 3 || st.Aborted != 2 {
		t.Errorf("stats = %+v, want slots=1 launched=3 aborted=2", st)
	}
	if e.Pending() != 4 {
		t.Fatalf("pending = %d, want 4", e.Pending())
	}

	// Recovery: the remaining commands drain in submission order.
	if _, err := e.Drain(10); err != nil {
		t.Fatal(err)
	}
	want := []string{"c1-1", "c1-2", "c1-3", "c1-4", "c1-5", "c1-6"}
	if !reflect.DeepEqual(l.byReplica[0], want) {
		t.Errorf("commit order %v, want %v", l.byReplica[0], want)
	}
	if !l.converged() {
		t.Error("replicas diverged after a window abort")
	}
}

func TestFailedSlotRetriesUnderFreshEnvironment(t *testing.T) {
	// Providers are keyed by LAUNCH number, not committed-slot number: a
	// slot whose environment never decides is retried under the next
	// launch's environment instead of deterministically replaying the
	// fatal one forever (which is what slot-keyed indexes would do with
	// factories like adversary.SlotLoss).
	provider := func(launch int) core.HOProvider {
		if launch == 0 {
			return adversary.Silence{}
		}
		return adversary.Full{}
	}
	l := newLogs(3)
	e := newEngine(t, Config{N: 3, Provider: provider, MaxRounds: 5}, l)
	submitN(t, e, 1, 0, 3)
	if _, err := e.DecideWindow(); !errors.Is(err, ErrSlotUndecided) {
		t.Fatalf("first window error = %v, want ErrSlotUndecided", err)
	}
	// The retry is launch 1 → Full → decides.
	n, err := e.Drain(5)
	if err != nil {
		t.Fatalf("retry after failed slot: %v", err)
	}
	if n != 3 {
		t.Errorf("retry committed %d of 3", n)
	}
}

func TestDrainBudgetIsAHardLaunchBound(t *testing.T) {
	// The final window is clamped to the remaining budget: a 4-deep
	// pipeline must not overshoot Drain(3) to 4 launches.
	l := newLogs(3)
	e := newEngine(t, Config{N: 3, Provider: fullProvider, BatchSize: 1, Pipeline: 4}, l)
	submitN(t, e, 1, 0, 10)
	n, err := e.Drain(3)
	if !errors.Is(err, ErrSlotUndecided) {
		t.Fatalf("error = %v, want ErrSlotUndecided (budget exhausted)", err)
	}
	if got := e.Stats().Launched; got != 3 {
		t.Errorf("launched %d instances under Drain(3), want exactly 3", got)
	}
	if n != 3 || e.Pending() != 7 {
		t.Errorf("committed %d pending %d, want 3 and 7", n, e.Pending())
	}
}

func TestDrainBudgetExhaustedKeepsSentinel(t *testing.T) {
	l := newLogs(3)
	e := newEngine(t, Config{N: 3, Provider: fullProvider, BatchSize: 1}, l)
	submitN(t, e, 1, 0, 5)
	n, err := e.Drain(2)
	if !errors.Is(err, ErrSlotUndecided) {
		t.Fatalf("error = %v, want ErrSlotUndecided", err)
	}
	if n != 2 || e.Pending() != 3 {
		t.Errorf("committed %d pending %d, want 2 and 3", n, e.Pending())
	}
}

func TestEmptyWindowIsNoOpSlot(t *testing.T) {
	l := newLogs(3)
	e := newEngine(t, Config{N: 3, Provider: fullProvider}, l)
	n, err := e.DecideWindow()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("empty window committed %d commands", n)
	}
	if e.Stats().Slots != 1 {
		t.Errorf("slots = %d, want 1", e.Stats().Slots)
	}
}

func TestLatencyAccounting(t *testing.T) {
	l := newLogs(3)
	e := newEngine(t, Config{N: 3, Provider: fullProvider}, l)
	submitN(t, e, 1, 0, 2)
	if _, err := e.Drain(3); err != nil {
		t.Fatal(err)
	}
	lats := e.Latencies()
	if len(lats) != 2 {
		t.Fatalf("latencies = %v, want 2 entries", lats)
	}
	for _, lat := range lats {
		if lat < 1 {
			t.Errorf("latency %d < 1 round", lat)
		}
	}
	if e.Stats().WallRounds < 1 {
		t.Error("wall clock did not advance")
	}
}

func TestNewValidation(t *testing.T) {
	apply := func(int, string) {}
	bad := []Config{
		{N: 0, Algorithm: otr.Algorithm{}, Provider: fullProvider, MaxRounds: 10},
		{N: 3, Provider: fullProvider, MaxRounds: 10},
		{N: 3, Algorithm: otr.Algorithm{}, MaxRounds: 10},
		{N: 3, Algorithm: otr.Algorithm{}, Provider: fullProvider},
		{N: 3, Algorithm: otr.Algorithm{}, Provider: fullProvider, MaxRounds: 10, BatchSize: 64},
		{N: 3, Algorithm: otr.Algorithm{}, Provider: fullProvider, MaxRounds: 10, BatchSize: -1},
		{N: 3, Algorithm: otr.Algorithm{}, Provider: fullProvider, MaxRounds: 10, Pipeline: -2},
	}
	for i, cfg := range bad {
		if _, err := New(cfg, apply); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := New[string](Config{N: 3, Algorithm: otr.Algorithm{}, Provider: fullProvider, MaxRounds: 10}, nil); err == nil {
		t.Error("nil apply accepted")
	}
}
