// Package rsm is the shared replication engine under internal/kvstore and
// internal/abcast — the service layer the paper's introduction motivates
// ("consensus … appears when implementing atomic broadcast, group
// membership, etc."), scaled past one-command-per-slot:
//
//   - Command batching. Each consensus slot decides a BATCH of commands.
//     Proposals are bitmasks over a window of up to 63 uncommitted
//     commands (the codec abcast pioneered, generalized here), so one
//     consensus instance amortizes over bursts: draining M commands with
//     batch size B takes ⌈M/B⌉ slots instead of M.
//   - Slot pipelining. Up to W consecutive slots run in flight at once,
//     each over a disjoint chunk of the pending window, executed through
//     internal/sweep's deterministic worker pool and applied strictly in
//     slot order. The engine's observable state is byte-identical for
//     every Parallel setting — the same guarantee the experiment tables
//     have.
//   - Client sessions with dedup. Commands carry a (client, sequence)
//     identity; a retried submission whose sequence number was already
//     accepted is dropped at the door, so every command is applied
//     exactly once no matter how often a client retries.
//
// Faults live where they always do in this repo: each slot's consensus
// instance runs against a per-slot core.HOProvider, so the same service
// stack can be driven through fault-free, lossy, and crash-recovery
// environments (package adversary) and measured — see RunWorkload and
// experiments E10.
package rsm

import (
	"context"
	"errors"
	"fmt"

	"heardof/internal/core"
	"heardof/internal/sweep"
)

// MaxBatch is the widest batch one slot can decide: proposals are bitmasks
// in a core.Value and bit 63 stays clear so masks remain non-negative.
const MaxBatch = 63

// ClientID identifies a client session.
type ClientID int

// ErrSlotUndecided is returned when replication cannot complete because a
// slot's consensus instance exhausted its round budget, or a Drain ran out
// of slot budget with commands still pending. Both kvstore and abcast
// surface this sentinel unchanged, so errors.Is works across the stack.
var ErrSlotUndecided = errors.New("rsm: slot undecided within the round budget")

// Config parameterizes an Engine.
type Config struct {
	// N is the number of consensus processes (= replicas).
	N int
	// Algorithm decides each slot (OneThirdRule in every current user).
	Algorithm core.Algorithm
	// Provider supplies the HO environment of each consensus instance.
	// The index is the instance's LAUNCH number: it advances past failed
	// and discarded speculative instances, so a retried slot draws a
	// fresh environment rather than deterministically replaying the
	// fault pattern that killed it (with no failures, launch number and
	// slot number coincide). With Pipeline > 1, providers of concurrent
	// instances are used from different goroutines; Provider is always
	// CALLED sequentially in launch order, so forking a shared RNG per
	// call is safe, but the returned providers must not share mutable
	// state with each other.
	Provider func(slot int) core.HOProvider
	// MaxRounds bounds each slot's consensus instance.
	MaxRounds core.Round
	// BatchSize caps commands per slot, 1..MaxBatch. 0 means MaxBatch.
	BatchSize int
	// Pipeline is the number of slots in flight per window, ≥ 1. 0 means 1.
	Pipeline int
	// Parallel is the sweep worker count for in-flight slots; 0 means
	// Pipeline workers. Observable engine state is identical for every
	// value.
	Parallel int
}

// Tuning groups the service-layer knobs the applications built on the
// engine (kvstore, abcast) pass through: zero values mean the Config
// defaults (MaxBatch-wide batches, no pipelining).
type Tuning struct {
	BatchSize int
	Pipeline  int
	Parallel  int
}

// entry is one accepted command with its session identity and the wall
// round at which it was accepted (for latency accounting).
type entry[C any] struct {
	client    ClientID
	seq       uint64
	cmd       C
	submitted core.Round
}

// Stats are cumulative engine counters. All fields are deterministic
// functions of the submission history and the per-slot environments.
type Stats struct {
	// Slots counts committed consensus slots (including empty batches).
	Slots int
	// Launched counts consensus instances started, including failed ones
	// and speculative instances discarded when an earlier slot failed.
	Launched int
	// Aborted counts launched instances that did not commit.
	Aborted int
	// Committed counts commands applied.
	Committed int
	// TotalRounds sums rounds across committed slots (consensus work).
	TotalRounds core.Round
	// WallRounds is elapsed wall-clock time in rounds: pipelined slots of
	// one window run concurrently, so a window costs the max of its
	// slots' rounds, not the sum.
	WallRounds core.Round
}

// Engine replicates commands of type C across N state machines.
type Engine[C any] struct {
	cfg   Config
	apply func(replica int, cmd C)

	table   []entry[C] // append-only accepted-command table
	pending []int      // table indexes awaiting commit, FIFO
	maxSeen map[ClientID]uint64
	applied map[ClientID]uint64

	stats     Stats
	latencies []core.Round
	eng       *sweep.Engine
}

// New creates an engine; apply is invoked for every (replica, committed
// command) pair, replicas in order, commands in the total commit order.
func New[C any](cfg Config, apply func(replica int, cmd C)) (*Engine[C], error) {
	if cfg.N < 1 || cfg.N > core.MaxProcesses {
		return nil, fmt.Errorf("rsm: n = %d out of range [1, %d]", cfg.N, core.MaxProcesses)
	}
	if cfg.Algorithm == nil || cfg.Provider == nil {
		return nil, errors.New("rsm: nil algorithm or provider")
	}
	if cfg.MaxRounds < 1 {
		return nil, fmt.Errorf("rsm: MaxRounds = %d, need ≥ 1", cfg.MaxRounds)
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = MaxBatch
	}
	if cfg.BatchSize < 1 || cfg.BatchSize > MaxBatch {
		return nil, fmt.Errorf("rsm: BatchSize = %d out of range [1, %d]", cfg.BatchSize, MaxBatch)
	}
	if cfg.Pipeline == 0 {
		cfg.Pipeline = 1
	}
	if cfg.Pipeline < 1 {
		return nil, fmt.Errorf("rsm: Pipeline = %d, need ≥ 1", cfg.Pipeline)
	}
	if apply == nil {
		return nil, errors.New("rsm: nil apply function")
	}
	workers := cfg.Parallel
	if workers <= 0 {
		workers = cfg.Pipeline
	}
	return &Engine[C]{
		cfg:     cfg,
		apply:   apply,
		maxSeen: make(map[ClientID]uint64),
		applied: make(map[ClientID]uint64),
		eng:     &sweep.Engine{Workers: workers},
	}, nil
}

// Submit offers a command under a client session. Sequence numbers must be
// positive; a submission whose sequence is not above the client's
// high-water mark is a retry (or a reordered duplicate) and is dropped —
// accepted reports whether the command entered the log. Dedup covers both
// pending and already-applied commands, so a retry is applied exactly
// once in total.
func (e *Engine[C]) Submit(client ClientID, seq uint64, cmd C) (accepted bool, err error) {
	if seq == 0 {
		return false, fmt.Errorf("rsm: client %d submitted sequence 0 (sequences start at 1)", client)
	}
	if seq <= e.maxSeen[client] {
		return false, nil
	}
	e.accept(client, seq, cmd)
	return true, nil
}

// SubmitNext enters cmd under the client's session at the next fresh
// sequence number (it can never be rejected as a duplicate), returning
// the sequence used. It is the auto-session path for callers that model
// every submission as a new command — kvstore.Submit and
// abcast.Broadcast — rather than a client retrying an identified one.
func (e *Engine[C]) SubmitNext(client ClientID, cmd C) uint64 {
	seq := e.maxSeen[client] + 1
	e.accept(client, seq, cmd)
	return seq
}

// accept records a deduplicated submission.
//
//holint:hotpath
func (e *Engine[C]) accept(client ClientID, seq uint64, cmd C) {
	e.maxSeen[client] = seq
	e.table = append(e.table, entry[C]{client: client, seq: seq, cmd: cmd, submitted: e.stats.WallRounds})
	e.pending = append(e.pending, len(e.table)-1)
}

// Pending counts accepted-but-uncommitted commands.
func (e *Engine[C]) Pending() int { return len(e.pending) }

// Stats returns a copy of the cumulative counters.
func (e *Engine[C]) Stats() Stats { return e.stats }

// Latencies returns the commit latency, in wall rounds, of every committed
// command in commit order. The slice is a copy.
func (e *Engine[C]) Latencies() []core.Round {
	out := make([]core.Round, len(e.latencies))
	copy(out, e.latencies)
	return out
}

// AppliedSeq returns the highest sequence number applied for a client.
func (e *Engine[C]) AppliedSeq(client ClientID) uint64 { return e.applied[client] }

// slotResult is the outcome of one in-flight consensus instance.
type slotResult struct {
	mask   core.Value
	rounds core.Round
}

// DecideWindow runs one pipelined window: up to Pipeline consensus
// instances over disjoint chunks of the pending queue (one empty-batch
// slot if nothing is pending), applied in slot order. It returns the
// number of commands committed.
//
// If a slot fails (budget exhausted or a safety violation), the slots
// before it in the window are committed, the failed slot and every later
// in-flight slot are discarded as speculative — their commands stay
// pending in submission order — and the error (wrapping ErrSlotUndecided
// for budget exhaustion) is returned.
func (e *Engine[C]) DecideWindow() (int, error) {
	return e.decideWindow(e.cfg.Pipeline)
}

// DecideWindowCapped is DecideWindow with the window's in-flight slot
// count additionally capped at maxSlots ≥ 1. Callers that spread a global
// launch budget across several engines (the sharded layer) clamp each
// group's window with it.
func (e *Engine[C]) DecideWindowCapped(maxSlots int) (int, error) {
	if maxSlots < 1 {
		return 0, fmt.Errorf("rsm: window cap %d, need ≥ 1", maxSlots)
	}
	return e.decideWindow(maxSlots)
}

// PlannedWindow returns the number of consensus instances the next
// DecideWindowCapped(maxChunks) call would launch given the current
// pending queue — the launch budget a caller must reserve for it. It
// returns 0 when maxChunks < 1.
func (e *Engine[C]) PlannedWindow(maxChunks int) int {
	if maxChunks < 1 {
		return 0
	}
	return e.windowChunks(maxChunks)
}

// windowChunks computes the in-flight slot count of the next window under
// the cap: ⌈pending/BatchSize⌉ (at least one — an empty no-op slot),
// clamped by Pipeline and maxChunks.
func (e *Engine[C]) windowChunks(maxChunks int) int {
	b := e.cfg.BatchSize
	chunks := (len(e.pending) + b - 1) / b
	if chunks == 0 {
		chunks = 1 // an explicit empty batch, like a no-op slot
	}
	if chunks > e.cfg.Pipeline {
		chunks = e.cfg.Pipeline
	}
	if chunks > maxChunks {
		chunks = maxChunks
	}
	return chunks
}

// decideWindow is DecideWindow bounded to at most maxChunks in-flight
// slots (callers with a slot budget clamp the final window with it).
func (e *Engine[C]) decideWindow(maxChunks int) (int, error) {
	b := e.cfg.BatchSize
	chunks := e.windowChunks(maxChunks)

	runs := make([]func() (slotResult, error), chunks)
	chunkLen := make([]int, chunks)
	for i := 0; i < chunks; i++ {
		lo := i * b
		hi := lo + b
		if hi > len(e.pending) {
			hi = len(e.pending)
		}
		chunkLen[i] = hi - lo
		var mask core.Value
		if n := hi - lo; n > 0 {
			mask = core.Value(1)<<uint(n) - 1
		}
		slot := e.stats.Launched + i // launch number; == slot number when nothing has failed
		prov := e.cfg.Provider(slot) // sequential, in launch order
		initial := make([]core.Value, e.cfg.N)
		for p := range initial {
			initial[p] = mask
		}
		// A failed slot still reports its rounds (it burned them before
		// giving up), so WallRounds accounts for failed windows too.
		runs[i] = func() (slotResult, error) {
			ru, err := core.NewRunner(e.cfg.Algorithm, initial, prov)
			if err != nil {
				return slotResult{}, err
			}
			tr, rerr := ru.Run(e.cfg.MaxRounds)
			if rerr != nil {
				return slotResult{rounds: tr.NumRounds()}, fmt.Errorf("slot %d: %w", slot, ErrSlotUndecided)
			}
			if serr := tr.CheckConsensusSafety(); serr != nil {
				return slotResult{rounds: tr.NumRounds()}, fmt.Errorf("slot %d: %w", slot, serr)
			}
			v, verr := tr.AgreedValue()
			if verr != nil {
				return slotResult{rounds: tr.NumRounds()}, fmt.Errorf("slot %d: %w", slot, verr)
			}
			return slotResult{mask: v, rounds: tr.NumRounds()}, nil
		}
	}
	e.stats.Launched += chunks

	// A one-slot window (the unpipelined default) runs inline; only real
	// pipelining pays for the sweep pool's goroutines. Either way the
	// outcomes are folded below in slot order.
	type outcome struct {
		sr  slotResult
		err error
	}
	outs := make([]outcome, chunks)
	if chunks == 1 {
		sr, rerr := runs[0]()
		outs[0] = outcome{sr: sr, err: rerr}
	} else {
		cells := make([]sweep.Cell, chunks)
		for i, run := range runs {
			cells[i] = sweep.Cell{
				Label: fmt.Sprintf("slot=%d", e.stats.Launched-chunks+i),
				Run: func(context.Context) (any, error) {
					sr, rerr := run()
					return outcome{sr: sr, err: rerr}, nil
				},
			}
		}
		results, _ := e.eng.Run(context.Background(), cells)
		for i, res := range results {
			if res.Err != nil { // a cell panic; cells themselves never error
				outs[i] = outcome{err: res.Err}
			} else {
				outs[i] = res.Value.(outcome)
			}
		}
	}

	committed := 0
	removed := make([]bool, len(e.pending))
	var windowWall core.Round // max rounds over the slots processed so far
	var err error
	for i, out := range outs {
		if out.sr.rounds > windowWall {
			windowWall = out.sr.rounds
		}
		if out.err != nil {
			e.stats.Aborted += chunks - i
			err = out.err
			break
		}
		sr := out.sr
		// In-order apply: slot i cannot apply before slots < i, so its
		// commands commit at the running max of the window's rounds.
		n, cerr := e.commitSlot(i*b, chunkLen[i], sr, removed, e.stats.WallRounds+windowWall)
		if cerr != nil {
			e.stats.Aborted += chunks - i
			err = cerr
			break
		}
		committed += n
		e.stats.Slots++
		e.stats.TotalRounds += sr.rounds
	}
	e.stats.WallRounds += windowWall

	// Compact the pending queue, preserving submission order.
	keep := e.pending[:0]
	for i, idx := range e.pending {
		if !removed[i] {
			keep = append(keep, idx)
		}
	}
	e.pending = keep
	return committed, err
}

// commitSlot applies the commands a slot's decided mask selected from its
// chunk of the pending queue.
//
//holint:hotpath
func (e *Engine[C]) commitSlot(lo, n int, sr slotResult, removed []bool, at core.Round) (int, error) {
	if sr.mask < 0 || (n < MaxBatch && sr.mask >= core.Value(1)<<uint(n)) {
		return 0, e.badMask(sr, n)
	}
	count := 0
	for i := 0; i < n; i++ {
		if sr.mask&(core.Value(1)<<uint(i)) == 0 {
			continue
		}
		pos := lo + i
		ent := e.table[e.pending[pos]]
		removed[pos] = true
		for r := 0; r < e.cfg.N; r++ {
			e.apply(r, ent.cmd)
		}
		if ent.seq > e.applied[ent.client] {
			e.applied[ent.client] = ent.seq
		}
		e.latencies = append(e.latencies, at-ent.submitted)
		e.stats.Committed++
		count++
	}
	return count, nil
}

// badMask formats the out-of-chunk decided-mask error — outlined from
// commitSlot so the commit loop's steady state stays allocation-free.
// noinline keeps the compiler from folding the fmt.Errorf argument
// boxing back into the annotated caller.
//
//go:noinline
func (e *Engine[C]) badMask(sr slotResult, n int) error {
	return fmt.Errorf("rsm: slot %d decided mask %#x outside its %d-command chunk", e.stats.Slots, sr.mask, n)
}

// Drain decides windows until nothing is pending or maxSlots consensus
// instances have been launched in this call (the final window is clamped
// to the remaining budget, so maxSlots is a hard bound). It returns the
// number of commands committed. Every undecided path — a failed slot as
// well as an exhausted slot budget with commands still pending —
// satisfies errors.Is(err, ErrSlotUndecided).
func (e *Engine[C]) Drain(maxSlots int) (int, error) {
	total := 0
	launched := 0
	for launched < maxSlots && len(e.pending) > 0 {
		before := e.stats.Launched
		n, err := e.decideWindow(maxSlots - launched)
		total += n
		launched += e.stats.Launched - before
		if err != nil {
			return total, err
		}
	}
	if len(e.pending) > 0 {
		return total, fmt.Errorf("rsm: %d commands still pending after %d slots: %w",
			len(e.pending), launched, ErrSlotUndecided)
	}
	return total, nil
}
