// Closed-loop workload generation over an Engine: a configurable client
// population drives the replication service and the run reports
// throughput, slot amortization, and latency-in-rounds percentiles.
// Everything is deterministic in (engine config, WorkloadConfig), so the
// same workload can be replayed across fault environments — the scenario
// diversity that Shimi et al. argue is the payoff of the predicate
// abstraction — and compared number-for-number.

package rsm

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"heardof/internal/core"
	"heardof/internal/xrand"
)

// KeyDist selects the key-popularity distribution of a workload.
type KeyDist int

const (
	// Uniform draws keys uniformly from the key space.
	Uniform KeyDist = iota
	// Zipfian draws keys with P(k) ∝ 1/(k+1)^s — a hot-key workload.
	Zipfian
)

// String implements fmt.Stringer.
func (d KeyDist) String() string {
	if d == Zipfian {
		return "zipfian"
	}
	return "uniform"
}

// Op is one generated operation, handed to the command constructor.
type Op struct {
	Client ClientID
	Seq    uint64
	// Write distinguishes the read/write mix (the engine replicates both:
	// a read through the log is a linearizable read).
	Write bool
	// Key is an index into the key space.
	Key int
}

// WorkloadConfig parameterizes a closed-loop run: each of Clients clients
// keeps at most one command outstanding, submitting a new one with
// probability Rate per window while idle, until Ops commands have been
// submitted and committed.
type WorkloadConfig struct {
	// Clients is the closed-loop client population.
	Clients int
	// Rate is the per-window submission probability of an idle client
	// (the arrival process), in (0, 1].
	Rate float64
	// WriteRatio is the fraction of writes in the mix, in [0, 1].
	WriteRatio float64
	// Keys is the key-space size.
	Keys int
	// Dist selects Uniform or Zipfian keys.
	Dist KeyDist
	// ZipfS is the Zipfian exponent. An explicit 0 is honored as s = 0
	// (a uniform draw through the Zipf sampler); defaults such as the
	// YCSB 0.99 live in the flag/config layer (cmd/hoload -zipf), not
	// here, so `-zipf 0` means what it says.
	ZipfS float64
	// Ops is the total number of commands to commit.
	Ops int
	// MaxSlots bounds consensus instances launched before giving up.
	MaxSlots int
	// Seed drives the workload's private RNG stream.
	Seed uint64
}

// WorkloadResult reports a run's service-level measurements. All fields
// are deterministic; none depend on wall-clock time or scheduling.
type WorkloadResult struct {
	// Completed counts committed commands (== Ops on success).
	Completed int
	// Slots and Launched mirror the engine counters for the run.
	Slots    int
	Launched int
	// WallRounds is elapsed service time in rounds; TotalRounds is
	// consensus work in rounds (> WallRounds when pipelining overlaps).
	WallRounds  core.Round
	TotalRounds core.Round
	// SlotsPerCmd is Slots/Completed — the amortization the batch codec
	// buys (1.0 would be the old one-command-per-slot layer).
	SlotsPerCmd float64
	// CmdsPerRound is Completed/WallRounds — closed-loop throughput in
	// commands per simulated round.
	CmdsPerRound float64
	// LatencyP50/P95/P99 are commit-latency percentiles in rounds,
	// measured from submission to in-order apply.
	LatencyP50, LatencyP95, LatencyP99 core.Round
}

// Validate checks the generator parameters — the part of the
// configuration shared by every workload harness (this package's
// RunWorkload and internal/shard's).
func (cfg WorkloadConfig) Validate() error {
	if cfg.Clients < 1 {
		return fmt.Errorf("workload needs ≥ 1 client, got %d", cfg.Clients)
	}
	if !(cfg.Rate > 0 && cfg.Rate <= 1) {
		return fmt.Errorf("workload rate %v outside (0, 1]", cfg.Rate)
	}
	if cfg.WriteRatio < 0 || cfg.WriteRatio > 1 {
		return fmt.Errorf("write ratio %v outside [0, 1]", cfg.WriteRatio)
	}
	if cfg.Keys < 1 || cfg.Ops < 1 || cfg.MaxSlots < 1 {
		return fmt.Errorf("workload needs positive Keys, Ops and MaxSlots (got %d, %d, %d)",
			cfg.Keys, cfg.Ops, cfg.MaxSlots)
	}
	if cfg.ZipfS < 0 {
		return fmt.Errorf("zipfian exponent %v is negative", cfg.ZipfS)
	}
	return nil
}

// ResultFromStats derives a WorkloadResult from engine counters and the
// (not necessarily sorted) latencies of the same run — the one mapping
// from raw counters to service-level numbers, shared by this harness and
// the per-shard views of internal/shard. lats is sorted in place.
func ResultFromStats(st Stats, lats []core.Round) WorkloadResult {
	var res WorkloadResult
	res.Completed = st.Committed
	res.Slots = st.Slots
	res.Launched = st.Launched
	res.WallRounds = st.WallRounds
	res.TotalRounds = st.TotalRounds
	if st.Committed > 0 {
		res.SlotsPerCmd = float64(st.Slots) / float64(st.Committed)
	}
	if st.WallRounds > 0 {
		res.CmdsPerRound = float64(st.Committed) / float64(st.WallRounds)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	res.LatencyP50 = Percentile(lats, 0.50)
	res.LatencyP95 = Percentile(lats, 0.95)
	res.LatencyP99 = Percentile(lats, 0.99)
	return res
}

// RunWorkload drives a closed loop over a fresh engine. makeCmd turns a
// generated operation into the engine's command type. The engine must be
// unused (zero committed commands); reusing one would fold the previous
// run into the reported counters.
func RunWorkload[C any](e *Engine[C], cfg WorkloadConfig, makeCmd func(Op) C) (WorkloadResult, error) {
	var res WorkloadResult
	if e.stats.Launched != 0 || e.Pending() != 0 {
		return res, errors.New("rsm: RunWorkload needs a fresh engine")
	}
	if err := cfg.Validate(); err != nil {
		return res, fmt.Errorf("rsm: %w", err)
	}
	if makeCmd == nil {
		return res, errors.New("rsm: nil command constructor")
	}

	rng := xrand.New(cfg.Seed)
	var zipf *xrand.Zipf
	if cfg.Dist == Zipfian {
		zipf = xrand.NewZipf(rng.Fork(), cfg.ZipfS, cfg.Keys)
	}
	nextKey := func() int {
		if zipf != nil {
			return zipf.Next()
		}
		return rng.Intn(cfg.Keys)
	}

	nextSeq := make([]uint64, cfg.Clients) // last sequence submitted per client
	submitted := 0
	finish := func(err error) (WorkloadResult, error) {
		res = ResultFromStats(e.Stats(), e.Latencies())
		return res, err
	}

	// The loop always terminates: every pass either submits (bounded by
	// Ops), launches slots (bounded by MaxSlots), or advances the RNG
	// toward the next arrival; the guard catches a pathological Rate.
	guard := 1000 * (cfg.MaxSlots + cfg.Ops + 1)
	for iter := 0; e.Stats().Committed < cfg.Ops; iter++ {
		if iter > guard {
			return finish(fmt.Errorf("rsm: workload stalled after %d passes (rate %v too low?)", iter, cfg.Rate))
		}
		for c := 0; c < cfg.Clients && submitted < cfg.Ops; c++ {
			client := ClientID(c)
			if nextSeq[c] > e.AppliedSeq(client) {
				continue // closed loop: one outstanding command per client
			}
			if !rng.Bool(cfg.Rate) {
				continue
			}
			nextSeq[c]++
			op := Op{Client: client, Seq: nextSeq[c], Write: rng.Bool(cfg.WriteRatio), Key: nextKey()}
			if ok, err := e.Submit(client, op.Seq, makeCmd(op)); err != nil || !ok {
				return finish(fmt.Errorf("rsm: workload submit rejected (ok=%v): %w", ok, err))
			}
			submitted++
		}
		if e.Pending() == 0 {
			continue // nothing arrived this pass; no slot to spend
		}
		remaining := cfg.MaxSlots - e.Stats().Launched
		if remaining <= 0 {
			return finish(fmt.Errorf("rsm: workload slot budget exhausted with %d of %d committed: %w",
				e.Stats().Committed, cfg.Ops, ErrSlotUndecided))
		}
		// Clamp the window so MaxSlots is a hard launch bound.
		if _, err := e.decideWindow(remaining); err != nil {
			return finish(fmt.Errorf("rsm: workload window failed: %w", err))
		}
	}
	return finish(nil)
}

// Percentile returns the q-quantile of an already-sorted latency slice
// using the nearest-rank definition — index ⌈q·n⌉−1 — or 0 for an empty
// slice. (An earlier version rounded q·n half-up, which picks the rank
// BELOW the nearest rank whenever q·n falls strictly between two
// integers by less than 0.5 — e.g. n=39, q=0.95: ⌈37.05⌉−1 = 37, but
// round-half-up gave 36.) Shared by the per-group and sharded workload
// harnesses.
func Percentile(sorted []core.Round, q float64) core.Round {
	if len(sorted) == 0 {
		return 0
	}
	// The epsilon guards the ceil against float64 products landing one
	// ulp ABOVE an exact integer q·n (0.07·100 = 7.000000000000001 would
	// otherwise yield rank 8 where exact arithmetic says 7).
	const eps = 1e-9
	rank := int(math.Ceil(q*float64(len(sorted))-eps)) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
