package rsm

import (
	"fmt"
	"testing"

	"heardof/internal/adversary"
	"heardof/internal/core"
	"heardof/internal/otr"
	"heardof/internal/xrand"
)

// The BenchmarkRSM_* suite is the service-layer perf trajectory:
// scripts/bench.sh parses the cmds/sec and slots/cmd metrics into
// BENCH_kv.json (schema bench_kv/v1). One iteration is one complete
// drain or workload, so cmds/sec reads as end-to-end replicated-command
// throughput of the simulated service.

func benchEngine(b *testing.B, provider func(int) core.HOProvider, tune Tuning) *Engine[string] {
	b.Helper()
	e, err := New(Config{
		N: 5, Algorithm: otr.Algorithm{}, Provider: provider, MaxRounds: 500,
		BatchSize: tune.BatchSize, Pipeline: tune.Pipeline, Parallel: tune.Parallel,
	}, func(int, string) {})
	if err != nil {
		b.Fatal(err)
	}
	return e
}

func reportServiceMetrics(b *testing.B, cmds int, st Stats) {
	b.Helper()
	b.ReportMetric(float64(cmds*b.N)/b.Elapsed().Seconds(), "cmds/sec")
	if st.Committed > 0 {
		b.ReportMetric(float64(st.Slots)/float64(st.Committed), "slots/cmd")
	}
}

// BenchmarkRSM_DrainBatched drains a 200-command burst through 63-wide
// batches in a fault-free environment (the pure batch-codec fast path).
func BenchmarkRSM_DrainBatched(b *testing.B) {
	const cmds = 200
	var st Stats
	for i := 0; i < b.N; i++ {
		e := benchEngine(b, func(int) core.HOProvider { return adversary.Full{} }, Tuning{})
		for j := 0; j < cmds; j++ {
			e.Submit(ClientID(j%8), uint64(j/8+1), "put k=v")
		}
		if _, err := e.Drain(cmds); err != nil {
			b.Fatal(err)
		}
		st = e.Stats()
	}
	reportServiceMetrics(b, cmds, st)
}

// BenchmarkRSM_DrainPipelinedLossy drains 120 commands through 8-wide
// batches, 4 slots in flight, under 20% transmission loss.
func BenchmarkRSM_DrainPipelinedLossy(b *testing.B) {
	const cmds = 120
	var st Stats
	for i := 0; i < b.N; i++ {
		rng := xrand.New(uint64(i) + 1)
		e := benchEngine(b, func(int) core.HOProvider {
			return &adversary.TransmissionLoss{Rate: 0.2, RNG: rng.Fork()}
		}, Tuning{BatchSize: 8, Pipeline: 4})
		for j := 0; j < cmds; j++ {
			e.Submit(ClientID(j%8), uint64(j/8+1), "put k=v")
		}
		if _, err := e.Drain(cmds); err != nil {
			b.Fatal(err)
		}
		st = e.Stats()
	}
	reportServiceMetrics(b, cmds, st)
}

// BenchmarkRSM_ClosedLoopWorkload runs the E10-shaped closed loop: 16
// zipfian clients completing 150 commands, fault-free.
func BenchmarkRSM_ClosedLoopWorkload(b *testing.B) {
	const cmds = 150
	var st Stats
	for i := 0; i < b.N; i++ {
		e := benchEngine(b, func(int) core.HOProvider { return adversary.Full{} },
			Tuning{BatchSize: 8, Pipeline: 4})
		_, err := RunWorkload(e, WorkloadConfig{
			Clients: 16, Rate: 0.7, WriteRatio: 0.75, Keys: 48,
			Dist: Zipfian, ZipfS: 0.99, Ops: cmds, MaxSlots: 2000, Seed: uint64(i) + 1,
		}, func(op Op) string {
			return fmt.Sprintf("c%d#%d k%d", op.Client, op.Seq, op.Key)
		})
		if err != nil {
			b.Fatal(err)
		}
		st = e.Stats()
	}
	reportServiceMetrics(b, cmds, st)
}
