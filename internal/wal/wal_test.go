package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// fill appends a representative record mix: two batches, votes for a
// slot, its decision, and its apply.
func fill(s *Store) {
	s.SaveBatch((1<<40)|1, []byte{0x01, 'a', 'b'})
	s.SaveBatch((3<<40)|1, []byte{0x01, 'c', 'd'})
	s.SaveVote(1, []byte{9, 9})
	s.SaveVote(1, []byte{9, 10}) // later transition supersedes
	s.SaveDecision(1, (1<<40)|1)
	s.SaveApplied(1, (1<<40)|1, []ClientSeq{{Client: 1, Seq: 1}, {Client: 2, Seq: 3}})
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Log) != 0 || len(st.Batches) != 0 || st.VoteSlot != 0 {
		t.Fatalf("fresh dir recovered non-empty state: %+v", st)
	}
	fill(s)
	s.SaveVote(2, []byte{7})
	s.SaveDecision(2, (3<<40)|1)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if want := []int64{(1 << 40) | 1}; !reflect.DeepEqual(st2.Log, want) {
		t.Fatalf("log = %v, want %v", st2.Log, want)
	}
	if st2.Committed != 2 {
		t.Fatalf("committed = %d, want 2", st2.Committed)
	}
	if st2.HWM[1] != 1 || st2.HWM[2] != 3 {
		t.Fatalf("hwm = %v", st2.HWM)
	}
	if !bytes.Equal(st2.Batches[(1<<40)|1], []byte{0x01, 'a', 'b'}) ||
		!bytes.Equal(st2.Batches[(3<<40)|1], []byte{0x01, 'c', 'd'}) {
		t.Fatalf("batches = %v", st2.Batches)
	}
	if st2.VoteSlot != 2 || !bytes.Equal(st2.Vote, []byte{7}) {
		t.Fatalf("vote = (%d, %v), want (2, [7])", st2.VoteSlot, st2.Vote)
	}
	if st2.Decided[2] != (3<<40)|1 || len(st2.Decided) != 1 {
		t.Fatalf("decided = %v", st2.Decided)
	}
	if len(st2.Tail) != 1 || st2.Tail[0].Slot != 1 || len(st2.Tail[0].Fresh) != 2 {
		t.Fatalf("tail = %+v", st2.Tail)
	}
	if st2.AppSlots != 0 {
		t.Fatalf("appSlots = %d, want 0 (no snapshot)", st2.AppSlots)
	}
}

func TestSnapshotTruncatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fill(s)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	grown := s.LogBytes()

	snap := newState()
	snap.Log = []int64{(1 << 40) | 1}
	snap.Committed = 2
	snap.HWM[1], snap.HWM[2] = 1, 3
	snap.BatchSeq = 1
	snap.Batches[(3<<40)|1] = []byte{0x01, 'c', 'd'}
	snap.AppState = []byte("app-v1")
	if err := s.Snapshot(snap); err != nil {
		t.Fatal(err)
	}
	if s.LogBytes() >= grown {
		t.Fatalf("snapshot did not truncate the log: %d >= %d", s.LogBytes(), grown)
	}
	// Post-snapshot records land in the fresh log.
	s.SaveDecision(2, (3<<40)|1)
	s.SaveApplied(2, (3<<40)|1, []ClientSeq{{Client: 3, Seq: 1}})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if want := []int64{(1 << 40) | 1, (3 << 40) | 1}; !reflect.DeepEqual(st.Log, want) {
		t.Fatalf("log = %v, want %v", st.Log, want)
	}
	if st.AppSlots != 1 || !bytes.Equal(st.AppState, []byte("app-v1")) {
		t.Fatalf("app snapshot = (%d, %q)", st.AppSlots, st.AppState)
	}
	if len(st.Tail) != 1 || st.Tail[0].Slot != 2 {
		t.Fatalf("tail = %+v, want the one post-snapshot apply", st.Tail)
	}
	if st.Committed != 3 || st.HWM[3] != 1 || st.BatchSeq != 1 {
		t.Fatalf("committed=%d hwm=%v batchSeq=%d", st.Committed, st.HWM, st.BatchSeq)
	}
}

// TestStaleLogReplaysIdempotently is the crash window between snapshot
// rename and log truncation: the whole pre-snapshot log replays over
// the new snapshot without changing the recovered state.
func TestStaleLogReplaysIdempotently(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fill(s)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	staleLog, err := os.ReadFile(filepath.Join(dir, "log"))
	if err != nil {
		t.Fatal(err)
	}
	snap := newState()
	snap.Log = []int64{(1 << 40) | 1}
	snap.Committed = 2
	snap.HWM[1], snap.HWM[2] = 1, 3
	if err := s.Snapshot(snap); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Simulate the crash: put the pre-snapshot log back.
	if err := os.WriteFile(filepath.Join(dir, "log"), staleLog, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if want := []int64{(1 << 40) | 1}; !reflect.DeepEqual(st.Log, want) {
		t.Fatalf("log = %v, want %v (stale applies must be skipped)", st.Log, want)
	}
	if st.Committed != 2 || len(st.Tail) != 0 {
		t.Fatalf("committed=%d tail=%+v, want 2 and no tail", st.Committed, st.Tail)
	}
	// Stale batch records re-add contents — harmless, more availability.
	if !bytes.Equal(st.Batches[(1<<40)|1], []byte{0x01, 'a', 'b'}) {
		t.Fatalf("batches = %v", st.Batches)
	}
}

// TestTornTailTruncated covers the kill -9 artifacts named by the
// issue: a torn final record, a flipped CRC, and a truncated length
// prefix all end the valid prefix cleanly, and Open cuts the file back
// to it.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.SaveDecision(1, 7)
	s.SaveApplied(1, 7, nil)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	good, err := os.ReadFile(filepath.Join(dir, "log"))
	if err != nil {
		t.Fatal(err)
	}

	// The first record's framed size, for cutting into the second.
	_, n, ok := nextRecord(good[len(logMagic):])
	if !ok {
		t.Fatal("self-check: first record unreadable")
	}
	mutate := map[string]func([]byte) []byte{
		"torn final record": func(b []byte) []byte { return b[:len(b)-3] },
		"flipped crc": func(b []byte) []byte {
			b = append([]byte(nil), b...)
			b[len(logMagic)+n+4] ^= 0xff // the second record's CRC field
			return b
		},
		"truncated length prefix": func(b []byte) []byte {
			// Magic + first record + 2 bytes of the next header.
			return b[:len(logMagic)+n+2]
		},
	}

	for name, f := range mutate {
		t.Run(name, func(t *testing.T) {
			d := t.TempDir()
			if err := os.WriteFile(filepath.Join(d, "log"), f(good), 0o644); err != nil {
				t.Fatal(err)
			}
			s2, st, err := Open(d, Options{})
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			defer s2.Close()
			// Only the intact prefix survives; for these mutations that is
			// the decision record alone (the apply was damaged or cut).
			if len(st.Log) != 0 || st.Decided[1] != 7 {
				t.Fatalf("recovered %+v, want decision only", st)
			}
			fi, err := os.Stat(filepath.Join(d, "log"))
			if err != nil {
				t.Fatal(err)
			}
			if fi.Size() != int64(len(logMagic)+n) {
				t.Fatalf("file not truncated to valid prefix: %d", fi.Size())
			}
			// The store must be appendable after truncation.
			s2.SaveApplied(1, 7, nil)
			if err := s2.Sync(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSemanticCorruptionFails: records that pass their CRC but decode
// to nonsense (unknown kind, apply gap) are unexpected corruption and
// must fail Open rather than load a guess.
func TestSemanticCorruptionFails(t *testing.T) {
	t.Run("unknown kind", func(t *testing.T) {
		dir := t.TempDir()
		s, _, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		start := s.beginRecord()
		s.buf = append(s.buf, 99, 1, 2, 3)
		s.endRecord(start)
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
		s.Close()
		if _, _, err := Open(dir, Options{}); err == nil {
			t.Fatal("unknown record kind did not fail recovery")
		}
	})
	t.Run("apply gap", func(t *testing.T) {
		dir := t.TempDir()
		s, _, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		s.SaveApplied(5, 7, nil) // slot 5 with nothing applied before it
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
		s.Close()
		if _, _, err := Open(dir, Options{}); err == nil {
			t.Fatal("apply gap did not fail recovery")
		}
	})
}

func TestStateCodecRoundTrip(t *testing.T) {
	st := newState()
	st.Log = []int64{(1 << 40) | 1, 0, (2 << 40) | 5}
	st.Committed = 11
	st.HWM[4] = 9
	st.BatchSeq = 5
	st.Batches[(2<<40)|5] = []byte("entries")
	st.Decided[4] = (1 << 40) | 2
	st.VoteSlot = 4
	st.Vote = []byte{1, 2}
	st.AppState = []byte("sm")

	got := newState()
	if err := decodeState(appendState(nil, st), got); err != nil {
		t.Fatal(err)
	}
	st.Tail, got.Tail = nil, nil
	if !reflect.DeepEqual(st, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, st)
	}
}
