// Canonical snapshot encoding of State: varint/uvarint fields, maps
// sorted by key, byte fields length-prefixed. Deterministic so equal
// states encode equal (snapshot files of converged replicas differ
// only in their proposer-local fields).

package wal

import (
	"encoding/binary"
	"errors"
	"sort"
)

// appendState encodes st after dst.
func appendState(dst []byte, st *State) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(st.Log)))
	for _, bid := range st.Log {
		dst = binary.AppendVarint(dst, bid)
	}
	dst = binary.AppendUvarint(dst, uint64(st.Committed))

	clients := make([]uint64, 0, len(st.HWM))
	for c := range st.HWM {
		clients = append(clients, c)
	}
	sort.Slice(clients, func(i, j int) bool { return clients[i] < clients[j] })
	dst = binary.AppendUvarint(dst, uint64(len(clients)))
	for _, c := range clients {
		dst = binary.AppendUvarint(dst, c)
		dst = binary.AppendUvarint(dst, st.HWM[c])
	}

	dst = binary.AppendVarint(dst, st.BatchSeq)

	bids := make([]int64, 0, len(st.Batches))
	for bid := range st.Batches {
		bids = append(bids, bid)
	}
	sort.Slice(bids, func(i, j int) bool { return bids[i] < bids[j] })
	dst = binary.AppendUvarint(dst, uint64(len(bids)))
	for _, bid := range bids {
		dst = binary.AppendVarint(dst, bid)
		dst = appendBytes(dst, st.Batches[bid])
	}

	slots := make([]uint64, 0, len(st.Decided))
	for s := range st.Decided {
		slots = append(slots, s)
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
	dst = binary.AppendUvarint(dst, uint64(len(slots)))
	for _, s := range slots {
		dst = binary.AppendUvarint(dst, s)
		dst = binary.AppendVarint(dst, st.Decided[s])
	}

	dst = binary.AppendUvarint(dst, st.VoteSlot)
	dst = appendBytes(dst, st.Vote)
	dst = appendBytes(dst, st.AppState)
	return dst
}

// decodeState parses an appendState encoding into st (whose maps must
// be non-nil). The Tail and AppSlots fields are recovery-side only and
// not part of the encoding.
func decodeState(b []byte, st *State) error {
	nlog, n := binary.Uvarint(b)
	if n <= 0 || nlog > maxRecord {
		return errors.New("corrupt snapshot: log length")
	}
	b = b[n:]
	st.Log = make([]int64, 0, nlog)
	for i := uint64(0); i < nlog; i++ {
		bid, m := binary.Varint(b)
		if m <= 0 {
			return errors.New("corrupt snapshot: log entry")
		}
		b = b[m:]
		st.Log = append(st.Log, bid)
	}
	committed, n := binary.Uvarint(b)
	if n <= 0 {
		return errors.New("corrupt snapshot: committed")
	}
	b = b[n:]
	st.Committed = int(committed)

	nhwm, n := binary.Uvarint(b)
	if n <= 0 || nhwm > maxRecord {
		return errors.New("corrupt snapshot: hwm count")
	}
	b = b[n:]
	for i := uint64(0); i < nhwm; i++ {
		client, m1 := binary.Uvarint(b)
		if m1 <= 0 {
			return errors.New("corrupt snapshot: hwm client")
		}
		seq, m2 := binary.Uvarint(b[m1:])
		if m2 <= 0 {
			return errors.New("corrupt snapshot: hwm seq")
		}
		b = b[m1+m2:]
		st.HWM[client] = seq
	}

	batchSeq, n := binary.Varint(b)
	if n <= 0 {
		return errors.New("corrupt snapshot: batchSeq")
	}
	b = b[n:]
	st.BatchSeq = batchSeq

	nbatch, n := binary.Uvarint(b)
	if n <= 0 || nbatch > maxRecord {
		return errors.New("corrupt snapshot: batch count")
	}
	b = b[n:]
	for i := uint64(0); i < nbatch; i++ {
		bid, m := binary.Varint(b)
		if m <= 0 || bid == 0 {
			return errors.New("corrupt snapshot: batch id")
		}
		b = b[m:]
		var contents []byte
		var err error
		contents, b, err = takeBytes(b)
		if err != nil {
			return errors.New("corrupt snapshot: batch contents")
		}
		st.Batches[bid] = contents
	}

	ndec, n := binary.Uvarint(b)
	if n <= 0 || ndec > maxRecord {
		return errors.New("corrupt snapshot: decided count")
	}
	b = b[n:]
	for i := uint64(0); i < ndec; i++ {
		slot, m1 := binary.Uvarint(b)
		if m1 <= 0 || slot == 0 {
			return errors.New("corrupt snapshot: decided slot")
		}
		bid, m2 := binary.Varint(b[m1:])
		if m2 <= 0 {
			return errors.New("corrupt snapshot: decided bid")
		}
		b = b[m1+m2:]
		st.Decided[slot] = bid
	}

	voteSlot, n := binary.Uvarint(b)
	if n <= 0 {
		return errors.New("corrupt snapshot: vote slot")
	}
	b = b[n:]
	st.VoteSlot = voteSlot
	var err error
	st.Vote, b, err = takeBytes(b)
	if err != nil {
		return errors.New("corrupt snapshot: vote state")
	}
	st.AppState, b, err = takeBytes(b)
	if err != nil {
		return errors.New("corrupt snapshot: app state")
	}
	if len(b) != 0 {
		return errors.New("corrupt snapshot: trailing bytes")
	}
	return nil
}

// appendBytes length-prefixes v onto dst (nil encodes as empty).
func appendBytes(dst, v []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(v)))
	return append(dst, v...)
}

// takeBytes decodes one length-prefixed field, returning a copy and
// the rest of b.
func takeBytes(b []byte) ([]byte, []byte, error) {
	n, m := binary.Uvarint(b)
	if m <= 0 || n > maxRecord || uint64(len(b)-m) < n {
		return nil, nil, errors.New("bad length prefix")
	}
	var out []byte
	if n > 0 {
		out = append([]byte(nil), b[m:m+int(n)]...)
	}
	return out, b[m+int(n):], nil
}
