// Package wal is the per-replica durability layer: an append-only,
// CRC-framed, fsync-batched write-ahead log of protocol facts a replica
// cannot afford to re-derive — disseminated batch contents, locked-vote
// instance state, decided slots, and applied (client,seq) high-water
// marks — plus periodic whole-state snapshots that truncate the log.
//
// The paper's fault model is crash-RECOVERY: a process loses its
// volatile round position but keeps stable storage. This package IS
// that stable storage for internal/live replicas. The contract with
// the shell (live.Replica) is write-ahead at step granularity: every
// Save* issued by a core step is made durable by one Sync() before any
// envelope of that step is transmitted or any waiter acknowledged, so
// no external observer can ever have seen state this log does not
// hold. Quorum-durable dissemination falls out of the same barrier — a
// batch body is on its proposer's disk before the batch id appears in
// any proposal.
//
// On-disk layout under one directory (one replica × one group):
//
//	log       magic ∥ record*      (the write-ahead log)
//	snapshot  magic ∥ one record   (the latest full-state snapshot)
//
// where record = [uint32 LE body length][uint32 LE CRC32-C(body)][body]
// and body = kind byte ∥ payload. Recovery reads snapshot (if any),
// then replays log records in order, idempotently: records older than
// the snapshot are skipped by slot comparison, so a crash between
// snapshot rename and log truncation is harmless. A torn or
// CRC-corrupt record ends the valid prefix — replay stops cleanly at
// the last intact record and Open truncates the tail (the expected
// kill -9 artifact). A record that passes its CRC but fails to decode,
// or that implies a gap in the applied log, is unexpected corruption
// and fails Open instead of silently loading a guess.
//
// A Store is not goroutine-safe: the replica shell serializes all
// access under its own mutex (Save*/Sync/Snapshot run on the event
// loop; Close after Stop).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// ClientSeq is one applied session-dedup advancement: client's applied
// high-water mark rose to Seq.
type ClientSeq struct {
	Client uint64
	Seq    uint64
}

// Apply is one applied slot recovered from the log tail (after the
// snapshot), with the (client,seq) pairs that were fresh at apply time
// — exactly what the application layer must re-apply to catch its
// state machine up to the protocol log.
type Apply struct {
	Slot  uint64
	Bid   int64
	Fresh []ClientSeq
}

// State is a replica's durable protocol state: what Open recovers and
// what Snapshot persists. Zero-valued fields mean a fresh replica.
type State struct {
	// Log holds the applied decisions: Log[i] is the batch id slot i+1
	// decided (0 = no-op).
	Log []int64
	// Committed counts commands applied exactly-once over the whole
	// history (the cross-node ReplicaStats.Committed invariant).
	Committed int
	// HWM is the per-client applied high-water mark after Log.
	HWM map[uint64]uint64
	// BatchSeq is the proposer's own batch counter at snapshot time;
	// restart must resume above it or batch ids would collide.
	BatchSeq int64
	// Batches holds retained batch contents (encoded entries) by id.
	Batches map[int64][]byte
	// Decided maps decided-but-unapplied slots to their batch ids.
	Decided map[uint64]int64
	// VoteSlot/Vote hold the newest persisted consensus-instance state
	// (the locked vote): the slot it belongs to and the algorithm's
	// canonical encoding. Stale if VoteSlot ≤ len(Log).
	VoteSlot uint64
	Vote     []byte
	// AppSlots is the applied-slot count the AppState snapshot covers;
	// Tail lists the applies recovered from the log beyond it, in
	// order, for the shell to replay through its Apply hook.
	AppSlots uint64
	AppState []byte
	Tail     []Apply
}

// newState returns a fresh (empty) State with its maps allocated.
func newState() *State {
	return &State{
		HWM:     make(map[uint64]uint64),
		Batches: make(map[int64][]byte),
		Decided: make(map[uint64]int64),
	}
}

// Record kinds (first body byte).
const (
	recBatch    = 1 // varint bid ∥ contents
	recVote     = 2 // uvarint slot ∥ instance state
	recDecision = 3 // uvarint slot ∥ varint bid
	recApply    = 4 // uvarint slot ∥ varint bid ∥ uvarint count ∥ (uvarint client ∥ uvarint seq)*
)

var (
	logMagic  = []byte("HOWAL\x01\x00\x00")
	snapMagic = []byte("HOSNAP\x01")
)

// maxRecord bounds one record body; larger length prefixes are treated
// as corruption (live batch frames are capped well below this).
const maxRecord = 1 << 22

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options tune a Store.
type Options struct {
	// NoSync skips fsync on Sync and Snapshot (buffered writes still
	// flush to the OS). For benchmarks and tests measuring the fsync
	// tax; crash durability is off.
	NoSync bool
}

// Store is one replica's open durability directory. It is not
// goroutine-safe: the owning replica's dispatch loop is the single
// writer, and Close must happen-after the replica has stopped (stop
// the replica, then close its store).
type Store struct {
	dir      string
	opt      Options
	f        *os.File // the log, open for append
	buf      []byte   // pending appended records, flushed by Sync
	dirty    bool     // records appended since the last fsync
	logBytes int64    // current log file length incl. buffered
	err      error    // sticky first failure
}

// Open recovers the durable state under dir (creating it if needed)
// and returns the store open for appending. The returned State is
// zero-valued for a fresh directory. A torn log tail is truncated;
// deeper corruption fails.
func Open(dir string, opt Options) (*Store, *State, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	st := newState()
	if err := readSnapshot(filepath.Join(dir, "snapshot"), st); err != nil {
		return nil, nil, err
	}
	logPath := filepath.Join(dir, "log")
	raw, err := os.ReadFile(logPath)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, err
	}
	valid, rerr := replayLog(st, raw)
	if rerr != nil {
		return nil, nil, fmt.Errorf("wal: %s: %w", logPath, rerr)
	}
	f, err := os.OpenFile(logPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if len(raw) == 0 {
		if _, err := f.Write(logMagic); err != nil {
			f.Close()
			return nil, nil, err
		}
		valid = int64(len(logMagic))
	} else if valid < int64(len(raw)) {
		// Torn tail from the crash this recovery is for: cut it so new
		// records never interleave with garbage.
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(valid, 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &Store{dir: dir, opt: opt, f: f, logBytes: valid}, st, nil
}

// ---------------------------------------------------------------------
// Appending.

// errRecordTooBig is the sticky failure for a record body over
// maxRecord (a sentinel, not a formatted error: the append path is
// pinned zero-alloc and the size that overflowed is gone anyway —
// replay treats oversized length prefixes as the torn tail).
var errRecordTooBig = errors.New("wal: record body exceeds maxRecord")

// beginRecord reserves an 8-byte frame header at the tail of the
// write buffer and returns the offset where the record body starts;
// the caller appends the body in place and seals it with endRecord.
// Framing directly into s.buf keeps the Save* path allocation-free
// (the buffer's growth is amortized across records).
func (s *Store) beginRecord() int {
	s.buf = append(s.buf, 0, 0, 0, 0, 0, 0, 0, 0)
	return len(s.buf)
}

// endRecord seals the record begun at start, filling the reserved
// header with the body's length and checksum; an oversized body rolls
// the whole frame back and sticks errRecordTooBig.
func (s *Store) endRecord(start int) {
	body := s.buf[start:]
	if len(body) > maxRecord {
		s.buf = s.buf[:start-8]
		s.err = errRecordTooBig
		return
	}
	binary.LittleEndian.PutUint32(s.buf[start-8:], uint32(len(body)))
	binary.LittleEndian.PutUint32(s.buf[start-4:], crc32.Checksum(body, crcTable))
	s.logBytes += int64(8 + len(body))
	s.dirty = true
}

// SaveBatch logs a disseminated batch's contents (encoded entries).
// The bytes are copied; callers may reuse the slice.
//
//holint:hotpath
func (s *Store) SaveBatch(bid int64, contents []byte) {
	if s.err != nil {
		return
	}
	start := s.beginRecord()
	s.buf = append(s.buf, recBatch)
	s.buf = binary.AppendVarint(s.buf, bid)
	s.buf = append(s.buf, contents...)
	s.endRecord(start)
}

// SaveVote logs the running instance's state after a transition — the
// locked vote the paper's crash-recovery algorithm keeps in stable
// storage.
//
//holint:hotpath
func (s *Store) SaveVote(slot uint64, state []byte) {
	if s.err != nil {
		return
	}
	start := s.beginRecord()
	s.buf = append(s.buf, recVote)
	s.buf = binary.AppendUvarint(s.buf, slot)
	s.buf = append(s.buf, state...)
	s.endRecord(start)
}

// SaveDecision logs a decided-but-not-yet-applied slot.
//
//holint:hotpath
func (s *Store) SaveDecision(slot uint64, bid int64) {
	if s.err != nil {
		return
	}
	start := s.beginRecord()
	s.buf = append(s.buf, recDecision)
	s.buf = binary.AppendUvarint(s.buf, slot)
	s.buf = binary.AppendVarint(s.buf, bid)
	s.endRecord(start)
}

// SaveApplied logs one applied slot with its fresh (client,seq)
// advancements.
//
//holint:hotpath
func (s *Store) SaveApplied(slot uint64, bid int64, fresh []ClientSeq) {
	if s.err != nil {
		return
	}
	start := s.beginRecord()
	s.buf = append(s.buf, recApply)
	s.buf = binary.AppendUvarint(s.buf, slot)
	s.buf = binary.AppendVarint(s.buf, bid)
	s.buf = binary.AppendUvarint(s.buf, uint64(len(fresh)))
	for _, cs := range fresh {
		s.buf = binary.AppendUvarint(s.buf, cs.Client)
		s.buf = binary.AppendUvarint(s.buf, cs.Seq)
	}
	s.endRecord(start)
}

// Sync makes every buffered record durable (the shell's sync-before-
// send barrier). A no-op when nothing was appended since the last call.
func (s *Store) Sync() error {
	if s.err != nil {
		return s.err
	}
	if !s.dirty {
		return nil
	}
	if _, err := s.f.Write(s.buf); err != nil {
		s.err = err
		return err
	}
	s.buf = s.buf[:0]
	if !s.opt.NoSync {
		if err := s.f.Sync(); err != nil {
			s.err = err
			return err
		}
	}
	s.dirty = false
	return nil
}

// LogBytes returns the current log length (snapshot-policy input).
func (s *Store) LogBytes() int64 { return s.logBytes }

// Err returns the sticky first failure, if any.
func (s *Store) Err() error { return s.err }

// Close flushes, syncs, and releases the log file.
func (s *Store) Close() error {
	if s.f == nil {
		return s.err
	}
	serr := s.Sync()
	cerr := s.f.Close()
	s.f = nil
	if s.err == nil {
		s.err = errors.New("wal: store closed")
	}
	if serr != nil {
		return serr
	}
	return cerr
}

// ---------------------------------------------------------------------
// Snapshots.

// Snapshot atomically replaces the on-disk snapshot with st and
// truncates the log, bounding replay work and the batch-retention
// horizon by snapshot age. Crash-safe at every point: the snapshot is
// written to a temp file and renamed in, and a stale log replays
// idempotently over the new snapshot.
func (s *Store) Snapshot(st *State) error {
	if s.err != nil {
		return s.err
	}
	if err := s.Sync(); err != nil {
		return err
	}
	body := appendState([]byte{0}, st) // kind byte 0: the one snapshot record
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(body, crcTable))

	tmp := filepath.Join(s.dir, "snapshot.tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		s.err = err
		return err
	}
	_, werr := f.Write(append(append(append([]byte{}, snapMagic...), hdr[:]...), body...))
	if werr == nil && !s.opt.NoSync {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp, filepath.Join(s.dir, "snapshot"))
	}
	if werr != nil {
		s.err = werr
		return werr
	}
	if !s.opt.NoSync {
		if d, derr := os.Open(s.dir); derr == nil {
			d.Sync() // best-effort: make the rename durable
			d.Close()
		}
	}
	// The log is now redundant up to st: truncate and restart it.
	if err := s.f.Truncate(0); err != nil {
		s.err = err
		return err
	}
	if _, err := s.f.Seek(0, 0); err != nil {
		s.err = err
		return err
	}
	if _, err := s.f.Write(logMagic); err != nil {
		s.err = err
		return err
	}
	if !s.opt.NoSync {
		if err := s.f.Sync(); err != nil {
			s.err = err
			return err
		}
	}
	s.logBytes = int64(len(logMagic))
	return nil
}

// ---------------------------------------------------------------------
// Recovery: snapshot decode + log replay.

// readSnapshot loads the snapshot file into st (no-op if absent).
func readSnapshot(path string, st *State) error {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	if len(raw) < len(snapMagic) || string(raw[:len(snapMagic)]) != string(snapMagic) {
		return fmt.Errorf("wal: %s: bad magic", path)
	}
	body, n, ok := nextRecord(raw[len(snapMagic):])
	if !ok || n != len(raw)-len(snapMagic) || len(body) == 0 || body[0] != 0 {
		return fmt.Errorf("wal: %s: corrupt snapshot record", path)
	}
	if err := decodeState(body[1:], st); err != nil {
		return fmt.Errorf("wal: %s: %w", path, err)
	}
	st.AppSlots = uint64(len(st.Log))
	return nil
}

// nextRecord frames one record off b: (body, bytes consumed, ok).
// !ok means b starts a torn or corrupt record — the valid prefix ends
// here.
func nextRecord(b []byte) ([]byte, int, bool) {
	if len(b) < 8 {
		return nil, 0, false
	}
	n := binary.LittleEndian.Uint32(b[0:])
	crc := binary.LittleEndian.Uint32(b[4:])
	if n > maxRecord || len(b) < int(8+n) {
		return nil, 0, false
	}
	body := b[8 : 8+n]
	if crc32.Checksum(body, crcTable) != crc {
		return nil, 0, false
	}
	return body, int(8 + n), true
}

// replayLog folds the log's records into st and returns the length of
// the valid prefix. A framing failure (torn tail) stops replay
// cleanly; a framed-but-undecodable record or an apply gap is an
// error.
func replayLog(st *State, raw []byte) (int64, error) {
	if len(raw) == 0 {
		return 0, nil
	}
	if len(raw) < len(logMagic) || string(raw[:len(logMagic)]) != string(logMagic) {
		return 0, errors.New("bad log magic")
	}
	off := len(logMagic)
	for off < len(raw) {
		body, n, ok := nextRecord(raw[off:])
		if !ok {
			break // torn tail: the valid prefix ends here
		}
		if err := applyRecord(st, body); err != nil {
			return 0, err
		}
		off += n
	}
	return int64(off), nil
}

// applyRecord folds one framed record into st, idempotently with
// respect to the snapshot it replays over.
func applyRecord(st *State, body []byte) error {
	if len(body) == 0 {
		return errors.New("empty record")
	}
	b := body[1:]
	switch body[0] {
	case recBatch:
		bid, n := binary.Varint(b)
		if n <= 0 || bid == 0 {
			return errors.New("corrupt batch record")
		}
		st.Batches[bid] = append([]byte(nil), b[n:]...)
	case recVote:
		slot, n := binary.Uvarint(b)
		if n <= 0 || slot == 0 {
			return errors.New("corrupt vote record")
		}
		if slot >= st.VoteSlot { // later records carry newer state
			st.VoteSlot = slot
			st.Vote = append([]byte(nil), b[n:]...)
		}
	case recDecision:
		slot, n1 := binary.Uvarint(b)
		bid, n2 := binary.Varint(b[n1:])
		if n1 <= 0 || n2 <= 0 || slot == 0 {
			return errors.New("corrupt decision record")
		}
		if slot > uint64(len(st.Log)) {
			if _, ok := st.Decided[slot]; !ok {
				st.Decided[slot] = bid
			}
		}
	case recApply:
		slot, n1 := binary.Uvarint(b)
		if n1 <= 0 || slot == 0 {
			return errors.New("corrupt apply record")
		}
		b = b[n1:]
		bid, n2 := binary.Varint(b)
		if n2 <= 0 {
			return errors.New("corrupt apply record")
		}
		b = b[n2:]
		count, n3 := binary.Uvarint(b)
		if n3 <= 0 || count > maxRecord/2 {
			return errors.New("corrupt apply record")
		}
		b = b[n3:]
		fresh := make([]ClientSeq, 0, count)
		for i := uint64(0); i < count; i++ {
			client, m1 := binary.Uvarint(b)
			if m1 <= 0 {
				return errors.New("corrupt apply record")
			}
			seq, m2 := binary.Uvarint(b[m1:])
			if m2 <= 0 {
				return errors.New("corrupt apply record")
			}
			b = b[m1+m2:]
			fresh = append(fresh, ClientSeq{Client: client, Seq: seq})
		}
		switch {
		case slot <= uint64(len(st.Log)):
			// Pre-snapshot record surviving an interrupted truncation.
		case slot == uint64(len(st.Log))+1:
			st.Log = append(st.Log, bid)
			delete(st.Decided, slot)
			for _, cs := range fresh {
				if cs.Seq > st.HWM[cs.Client] {
					st.HWM[cs.Client] = cs.Seq
				}
			}
			st.Committed += len(fresh)
			st.Tail = append(st.Tail, Apply{Slot: slot, Bid: bid, Fresh: fresh})
		default:
			return fmt.Errorf("apply gap: slot %d after %d applied", slot, len(st.Log))
		}
	default:
		return fmt.Errorf("unknown record kind %d", body[0])
	}
	return nil
}
