package wal

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALDecode throws arbitrary bytes at the log replay path. The
// contract under fuzzing: never panic, never mis-frame (the reported
// valid prefix is within the input and replays deterministically), and
// on success never invent state a clean replay of the same prefix
// would not produce. The corpus is seeded with a real log capture plus
// the three kill -9 artifacts the issue names: a torn final record, a
// flipped CRC, and a truncated length prefix.
func FuzzWALDecode(f *testing.F) {
	dir := f.TempDir()
	s, _, err := Open(dir, Options{NoSync: true})
	if err != nil {
		f.Fatal(err)
	}
	fill(s)
	s.SaveVote(2, []byte{1, 2, 3})
	s.SaveDecision(2, (3<<40)|1)
	s.SaveApplied(2, (3<<40)|1, []ClientSeq{{Client: 2, Seq: 4}})
	if err := s.Sync(); err != nil {
		f.Fatal(err)
	}
	s.Close()
	capture, err := os.ReadFile(filepath.Join(dir, "log"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(capture)
	f.Add(capture[:len(capture)-5]) // torn final record
	flipped := append([]byte(nil), capture...)
	flipped[len(capture)-20] ^= 0x40
	f.Add(flipped) // corrupted body → CRC mismatch
	crcFlip := append([]byte(nil), capture...)
	crcFlip[len(logMagic)+4] ^= 0x01
	f.Add(crcFlip)                   // flipped CRC field of the first record
	f.Add(capture[:len(logMagic)+3]) // truncated length prefix
	f.Add([]byte{})
	f.Add([]byte("HOWAL\x01\x00\x00"))

	f.Fuzz(func(t *testing.T, raw []byte) {
		st := newState()
		valid, err := replayLog(st, raw)
		if err != nil {
			return // rejected as corrupt: fine, as long as it didn't panic
		}
		if valid < 0 || valid > int64(len(raw)) {
			t.Fatalf("valid prefix %d outside input of %d bytes", valid, len(raw))
		}
		// Replaying the accepted prefix alone must reproduce the result
		// (what Open's truncation relies on).
		st2 := newState()
		valid2, err2 := replayLog(st2, raw[:valid])
		if err2 != nil || valid2 != valid {
			t.Fatalf("prefix replay diverged: valid %d→%d err=%v", valid, valid2, err2)
		}
		if len(st2.Log) != len(st.Log) || st2.Committed != st.Committed {
			t.Fatalf("prefix replay state diverged: %+v vs %+v", st2, st)
		}
		// The applied log must never contain gaps relative to the tail.
		for i, ap := range st.Tail {
			if ap.Slot != uint64(len(st.Log)-len(st.Tail)+i+1) {
				t.Fatalf("tail slot %d out of order in %+v", ap.Slot, st.Tail)
			}
		}
	})
}

// FuzzSnapshotDecode throws arbitrary bytes at the snapshot state
// decoder (reachable through a CRC-valid snapshot file).
func FuzzSnapshotDecode(f *testing.F) {
	st := newState()
	st.Log = []int64{(1 << 40) | 1, 0}
	st.Committed = 3
	st.HWM[1] = 2
	st.BatchSeq = 1
	st.Batches[(1<<40)|1] = []byte{0x01, 'a'}
	st.Decided[3] = (2 << 40) | 1
	st.VoteSlot = 3
	st.Vote = []byte{5}
	st.AppState = []byte("sm")
	f.Add(appendState(nil, st))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, raw []byte) {
		got := newState()
		if err := decodeState(raw, got); err != nil {
			return
		}
		// Accepted snapshots must re-encode decodably (not necessarily
		// byte-identical: e.g. Committed truncation is rejected above,
		// but map iteration is canonicalized by sorting).
		back := newState()
		if err := decodeState(appendState(nil, got), back); err != nil {
			t.Fatalf("re-encode of accepted snapshot rejected: %v", err)
		}
	})
}
