package wal

import (
	"os"
	"path/filepath"
	"testing"
)

// benchAppend measures one applied slot's worth of log traffic (a
// decision, an apply with one fresh pair, and a sync barrier) per
// iteration — the per-commit durability tax of the live replica.
func benchAppend(b *testing.B, opt Options) {
	dir := b.TempDir()
	s, _, err := Open(dir, opt)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	fresh := []ClientSeq{{Client: 1, Seq: 1}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot := uint64(i + 1)
		fresh[0].Seq = slot
		s.SaveDecision(slot, 7)
		s.SaveApplied(slot, 7, fresh)
		if err := s.Sync(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/sec")
}

// BenchmarkWAL_Append is the no-fsync variant (buffered writes only).
func BenchmarkWAL_Append(b *testing.B) { benchAppend(b, Options{NoSync: true}) }

// BenchmarkWAL_AppendFsync pays a real fsync per barrier.
func BenchmarkWAL_AppendFsync(b *testing.B) { benchAppend(b, Options{}) }

// BenchmarkWAL_Replay10k measures recovery: each iteration replays a
// log of 10k applied slots, so ns/op IS the replay time per 10k
// entries.
func BenchmarkWAL_Replay10k(b *testing.B) {
	dir := b.TempDir()
	s, _, err := Open(dir, Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		slot := uint64(i + 1)
		s.SaveDecision(slot, 7)
		s.SaveApplied(slot, 7, []ClientSeq{{Client: 1, Seq: slot}})
	}
	if err := s.Sync(); err != nil {
		b.Fatal(err)
	}
	s.Close()
	raw, err := os.ReadFile(filepath.Join(dir, "log"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := newState()
		if _, err := replayLog(st, raw); err != nil {
			b.Fatal(err)
		}
		if len(st.Log) != 10_000 {
			b.Fatalf("replayed %d slots", len(st.Log))
		}
	}
}
