// Package adversary provides HO-set providers (core.HOProvider) that model
// the fault taxonomy of §2.2 of Hutle & Schiper (DSN 2007) at the HO layer:
//
//   - SP (static permanent): crash-stop — a fixed subset of processes
//     crash and stay crashed (CrashStop).
//   - ST (static transient): a fixed subset suffers intermittent send or
//     receive omissions (SendOmission, ReceiveOmission).
//   - DP (dynamic permanent): any process may fail permanently
//     (CrashStop with arbitrary victims).
//   - DT (dynamic transient): every message may independently be lost
//     (TransmissionLoss) — the most general benign class.
//
// It also provides scripted providers that realize specific communication
// predicates (ScriptedPotr, GoodBad, SpaceUniformRounds) and adversarial
// providers for safety fuzzing (Arbitrary, Partition).
//
// All randomized providers are deterministic for a given seed.
package adversary

import (
	"heardof/internal/core"
	"heardof/internal/xrand"
)

// Full is the fault-free environment: HO(p, r) = Π for all p, r.
type Full struct{}

// HOSets implements core.HOProvider.
func (Full) HOSets(_ core.Round, n int) []core.PIDSet {
	all := core.FullSet(n)
	out := make([]core.PIDSet, n)
	for p := range out {
		out[p] = all
	}
	return out
}

// Silence is the degenerate environment in which nothing is ever heard
// (every round is totally lossy). P_otr explicitly allows such rounds to
// occur between its witness rounds.
type Silence struct{}

// HOSets implements core.HOProvider.
func (Silence) HOSets(_ core.Round, n int) []core.PIDSet {
	return make([]core.PIDSet, n)
}

// ---------------------------------------------------------------------------
// Fault classes.
// ---------------------------------------------------------------------------

// CrashStop models the SP class (crash-stop): process p is absent from
// every heard-of set from round CrashRound[p] on. A crashed process is
// indistinguishable (at this layer) from one that receives everything and
// sends nothing, as §3.2 observes, so crashed processes keep full
// heard-of sets of the surviving senders.
type CrashStop struct {
	// CrashRound maps a victim to the first round in which its messages
	// are no longer received. Processes absent from the map never crash.
	CrashRound map[core.ProcessID]core.Round
}

// HOSets implements core.HOProvider.
func (c CrashStop) HOSets(r core.Round, n int) []core.PIDSet {
	alive := core.FullSet(n)
	for p, cr := range c.CrashRound {
		if r >= cr {
			alive = alive.Remove(p)
		}
	}
	out := make([]core.PIDSet, n)
	for p := range out {
		out[p] = alive
	}
	return out
}

// TransmissionLoss models the DT class: every (sender, receiver, round)
// transmission is independently lost with probability Rate. With Rate = 0
// it degenerates to Full.
type TransmissionLoss struct {
	Rate float64
	RNG  *xrand.Rand
}

// HOSets implements core.HOProvider.
func (t *TransmissionLoss) HOSets(_ core.Round, n int) []core.PIDSet {
	out := make([]core.PIDSet, n)
	for p := 0; p < n; p++ {
		var ho core.PIDSet
		for q := 0; q < n; q++ {
			if !t.RNG.Bool(t.Rate) {
				ho = ho.Add(core.ProcessID(q))
			}
		}
		out[p] = ho
	}
	return out
}

// SendOmission models the ST class with send-omission faults: every
// message sent by a process in Faulty is lost with probability Rate
// (uniformly for the round: an omitted send reaches nobody with
// probability Rate per destination, modelling per-message omissions).
type SendOmission struct {
	Faulty core.PIDSet
	Rate   float64
	RNG    *xrand.Rand
}

// HOSets implements core.HOProvider.
func (s *SendOmission) HOSets(_ core.Round, n int) []core.PIDSet {
	out := make([]core.PIDSet, n)
	for p := 0; p < n; p++ {
		var ho core.PIDSet
		for q := 0; q < n; q++ {
			if s.Faulty.Has(core.ProcessID(q)) && s.RNG.Bool(s.Rate) {
				continue
			}
			ho = ho.Add(core.ProcessID(q))
		}
		out[p] = ho
	}
	return out
}

// ReceiveOmission models the ST class with receive-omission faults: every
// message destined to a process in Faulty is lost with probability Rate.
type ReceiveOmission struct {
	Faulty core.PIDSet
	Rate   float64
	RNG    *xrand.Rand
}

// HOSets implements core.HOProvider.
func (s *ReceiveOmission) HOSets(_ core.Round, n int) []core.PIDSet {
	out := make([]core.PIDSet, n)
	for p := 0; p < n; p++ {
		var ho core.PIDSet
		for q := 0; q < n; q++ {
			if s.Faulty.Has(core.ProcessID(p)) && s.RNG.Bool(s.Rate) {
				continue
			}
			ho = ho.Add(core.ProcessID(q))
		}
		out[p] = ho
	}
	return out
}

// ---------------------------------------------------------------------------
// Adversarial providers (safety fuzzing).
// ---------------------------------------------------------------------------

// Arbitrary draws every heard-of set independently and uniformly from all
// subsets of Π (optionally biased towards empty sets). The OneThirdRule
// safety properties must survive any such run.
type Arbitrary struct {
	RNG *xrand.Rand
	// EmptyBias, if positive, replaces each set with ∅ with this
	// probability, exercising totally lossy rounds.
	EmptyBias float64
}

// HOSets implements core.HOProvider.
func (a *Arbitrary) HOSets(_ core.Round, n int) []core.PIDSet {
	out := make([]core.PIDSet, n)
	for p := 0; p < n; p++ {
		if a.RNG.Bool(a.EmptyBias) {
			out[p] = core.EmptySet
			continue
		}
		out[p] = core.PIDSet(a.RNG.Uint64()) & core.FullSet(n)
	}
	return out
}

// Partition splits Π into groups; every process hears exactly its own
// group, forever. No group of size ≤ 2n/3 can decide under OneThirdRule,
// and no two groups can decide differently regardless of size.
type Partition struct {
	Groups []core.PIDSet
}

// HOSets implements core.HOProvider.
func (pa Partition) HOSets(_ core.Round, n int) []core.PIDSet {
	out := make([]core.PIDSet, n)
	for p := 0; p < n; p++ {
		for _, g := range pa.Groups {
			if g.Has(core.ProcessID(p)) {
				out[p] = g
				break
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Scripted / predicate-realizing providers.
// ---------------------------------------------------------------------------

// Scripted replays an explicit per-round script; rounds beyond the script
// fall through to Then (or Full if Then is nil).
type Scripted struct {
	Rounds [][]core.PIDSet
	Then   core.HOProvider
}

// HOSets implements core.HOProvider.
func (s Scripted) HOSets(r core.Round, n int) []core.PIDSet {
	if int(r) <= len(s.Rounds) {
		return s.Rounds[r-1]
	}
	then := s.Then
	if then == nil {
		then = Full{}
	}
	return then.HOSets(r, n)
}

// ScriptedPotr realizes P_otr: before round R0 it behaves like Before (an
// arbitrary bad period; defaults to heavy loss); at round R0 every process
// hears exactly Pi0; after R0 every process hears Pi0 every round (so
// every process has its r_p). Pi0 must satisfy |Pi0| > 2n/3 for P_otr to
// hold; the provider does not check this.
type ScriptedPotr struct {
	R0     core.Round
	Pi0    core.PIDSet
	Before core.HOProvider
}

// HOSets implements core.HOProvider.
func (s ScriptedPotr) HOSets(r core.Round, n int) []core.PIDSet {
	switch {
	case r < s.R0:
		before := s.Before
		if before == nil {
			before = Silence{}
		}
		return before.HOSets(r, n)
	default:
		out := make([]core.PIDSet, n)
		for p := range out {
			out[p] = s.Pi0
		}
		return out
	}
}

// SpaceUniformRounds makes rounds [From, To] space-uniform for Pi0
// (members of Pi0 hear exactly Pi0, everyone else hears nothing) and
// delegates all other rounds to Else (default Silence).
type SpaceUniformRounds struct {
	Pi0      core.PIDSet
	From, To core.Round
	Else     core.HOProvider
}

// HOSets implements core.HOProvider.
func (s SpaceUniformRounds) HOSets(r core.Round, n int) []core.PIDSet {
	if r >= s.From && r <= s.To {
		out := make([]core.PIDSet, n)
		for p := 0; p < n; p++ {
			if s.Pi0.Has(core.ProcessID(p)) {
				out[p] = s.Pi0
			}
		}
		return out
	}
	el := s.Else
	if el == nil {
		el = Silence{}
	}
	return el.HOSets(r, n)
}

// KernelRounds makes rounds [From, To] satisfy P_k(Pi0, From, To): members
// of Pi0 hear Pi0 plus a random extra subset; everyone else hears a random
// set. Other rounds delegate to Else (default Silence).
type KernelRounds struct {
	Pi0      core.PIDSet
	From, To core.Round
	RNG      *xrand.Rand
	Else     core.HOProvider
}

// HOSets implements core.HOProvider.
func (k KernelRounds) HOSets(r core.Round, n int) []core.PIDSet {
	if r >= k.From && r <= k.To {
		out := make([]core.PIDSet, n)
		for p := 0; p < n; p++ {
			extra := core.PIDSet(k.RNG.Uint64()) & core.FullSet(n)
			if k.Pi0.Has(core.ProcessID(p)) {
				out[p] = k.Pi0.Union(extra)
			} else {
				out[p] = extra
			}
		}
		return out
	}
	el := k.Else
	if el == nil {
		el = Silence{}
	}
	return el.HOSets(r, n)
}

// GoodBad alternates bad and good phases at the HO layer: rounds in a bad
// phase use heavy random loss; rounds in a good phase are space-uniform
// for Pi0. Phases have fixed lengths, starting with a bad phase.
type GoodBad struct {
	Pi0       core.PIDSet
	BadLen    core.Round
	GoodLen   core.Round
	BadLoss   float64
	RNG       *xrand.Rand
	badPhase  *TransmissionLoss
	goodCache []core.PIDSet
}

// HOSets implements core.HOProvider.
func (g *GoodBad) HOSets(r core.Round, n int) []core.PIDSet {
	cycle := g.BadLen + g.GoodLen
	if cycle <= 0 {
		return Full{}.HOSets(r, n)
	}
	pos := (r - 1) % cycle
	if pos < g.BadLen {
		if g.badPhase == nil {
			g.badPhase = &TransmissionLoss{Rate: g.BadLoss, RNG: g.RNG}
		}
		return g.badPhase.HOSets(r, n)
	}
	if g.goodCache == nil {
		g.goodCache = make([]core.PIDSet, n)
		for p := 0; p < n; p++ {
			if g.Pi0.Has(core.ProcessID(p)) {
				g.goodCache[p] = g.Pi0
			}
		}
	}
	out := make([]core.PIDSet, n)
	copy(out, g.goodCache)
	return out
}

// ---------------------------------------------------------------------------
// Per-slot environment factories for the service layer (internal/rsm).
// ---------------------------------------------------------------------------

// SlotFull is the fault-free per-slot environment: every slot's instance
// runs under HO(p, r) = Π.
func SlotFull() func(slot int) core.HOProvider {
	return func(int) core.HOProvider { return Full{} }
}

// SlotLoss subjects every slot to iid transmission loss. Each slot's
// provider owns an RNG derived from (seed, slot), so the factory is
// deterministic regardless of pipelining or call order.
func SlotLoss(rate float64, seed uint64) func(slot int) core.HOProvider {
	return func(slot int) core.HOProvider {
		return &TransmissionLoss{Rate: rate, RNG: xrand.New(seed + 1000003*uint64(slot))}
	}
}

// SlotRotatingCrash is a crash-recovery schedule at slot granularity: in
// every epochLen-slot epoch, one rotating process is crashed for the
// first half and recovers for the second. At most one process is down at
// a time, so a >2n/3-quorum algorithm keeps deciding throughout.
func SlotRotatingCrash(n, epochLen int) func(slot int) core.HOProvider {
	return func(slot int) core.HOProvider {
		epoch, phase := slot/epochLen, slot%epochLen
		if phase < epochLen/2 {
			victim := core.ProcessID(epoch % n)
			return CrashStop{CrashRound: map[core.ProcessID]core.Round{victim: 1}}
		}
		return Full{}
	}
}
