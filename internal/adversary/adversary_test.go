package adversary

import (
	"testing"

	"heardof/internal/core"
	"heardof/internal/predicate"
	"heardof/internal/xrand"
)

func collectTrace(prov core.HOProvider, n int, rounds core.Round) *core.Trace {
	tr := core.NewTrace(n, make([]core.Value, n))
	for r := core.Round(1); r <= rounds; r++ {
		ho := prov.HOSets(r, n)
		clamped := make([]core.PIDSet, n)
		for p := 0; p < n; p++ {
			if p < len(ho) {
				clamped[p] = ho[p].Intersect(core.FullSet(n))
			}
		}
		tr.RecordRound(clamped)
	}
	return tr
}

func TestFullAndSilence(t *testing.T) {
	n := 5
	full := Full{}.HOSets(3, n)
	for p, ho := range full {
		if ho != core.FullSet(n) {
			t.Errorf("Full: HO(%d) = %v", p, ho)
		}
	}
	silent := Silence{}.HOSets(3, n)
	for p, ho := range silent {
		if !ho.IsEmpty() {
			t.Errorf("Silence: HO(%d) = %v", p, ho)
		}
	}
}

func TestCrashStopRemovesVictimsFromRoundOn(t *testing.T) {
	prov := CrashStop{CrashRound: map[core.ProcessID]core.Round{2: 3}}
	n := 4
	before := prov.HOSets(2, n)
	after := prov.HOSets(3, n)
	if !before[0].Has(2) {
		t.Error("victim missing before crash round")
	}
	if after[0].Has(2) {
		t.Error("victim present at crash round")
	}
	if prov.HOSets(10, n)[0].Has(2) {
		t.Error("crash is not permanent (SP class violated)")
	}
}

func TestTransmissionLossRateZeroAndOne(t *testing.T) {
	n := 4
	none := &TransmissionLoss{Rate: 0, RNG: xrand.New(1)}
	for _, ho := range none.HOSets(1, n) {
		if ho != core.FullSet(n) {
			t.Error("rate 0 lost a message")
		}
	}
	all := &TransmissionLoss{Rate: 1, RNG: xrand.New(1)}
	for _, ho := range all.HOSets(1, n) {
		if !ho.IsEmpty() {
			t.Error("rate 1 delivered a message")
		}
	}
}

func TestTransmissionLossIsDeterministicPerSeed(t *testing.T) {
	mk := func() *core.Trace {
		return collectTrace(&TransmissionLoss{Rate: 0.3, RNG: xrand.New(77)}, 5, 10)
	}
	a, b := mk(), mk()
	for r := core.Round(1); r <= 10; r++ {
		for p := 0; p < 5; p++ {
			if a.HO(core.ProcessID(p), r) != b.HO(core.ProcessID(p), r) {
				t.Fatal("same seed produced different HO sets")
			}
		}
	}
}

func TestSendOmissionOnlyAffectsFaultySenders(t *testing.T) {
	prov := &SendOmission{Faulty: core.SetOf(0), Rate: 1, RNG: xrand.New(3)}
	for p, ho := range prov.HOSets(1, 4) {
		if ho.Has(0) {
			t.Errorf("p%d heard faulty sender with omission rate 1", p)
		}
		if !ho.Has(1) || !ho.Has(2) || !ho.Has(3) {
			t.Errorf("p%d lost a message from a correct sender", p)
		}
	}
}

func TestReceiveOmissionOnlyAffectsFaultyReceivers(t *testing.T) {
	prov := &ReceiveOmission{Faulty: core.SetOf(1), Rate: 1, RNG: xrand.New(3)}
	hos := prov.HOSets(1, 4)
	if !hos[1].IsEmpty() {
		t.Error("faulty receiver heard something at rate 1")
	}
	if hos[0] != core.FullSet(4) || hos[2] != core.FullSet(4) {
		t.Error("correct receiver lost messages")
	}
}

func TestPartitionAssignsGroups(t *testing.T) {
	groups := []core.PIDSet{core.SetOf(0, 1), core.SetOf(2, 3, 4)}
	hos := Partition{Groups: groups}.HOSets(1, 5)
	if hos[0] != groups[0] || hos[1] != groups[0] {
		t.Error("group 0 members got wrong HO set")
	}
	if hos[4] != groups[1] {
		t.Error("group 1 member got wrong HO set")
	}
}

func TestScriptedFallsThroughToThen(t *testing.T) {
	script := Scripted{
		Rounds: [][]core.PIDSet{{core.SetOf(1), core.SetOf(0)}},
		Then:   Silence{},
	}
	if got := script.HOSets(1, 2); got[0] != core.SetOf(1) {
		t.Errorf("scripted round = %v", got)
	}
	if got := script.HOSets(2, 2); !got[0].IsEmpty() {
		t.Error("fall-through round not from Then")
	}
	noThen := Scripted{}
	if got := noThen.HOSets(1, 2); got[0] != core.FullSet(2) {
		t.Error("nil Then should default to Full")
	}
}

func TestScriptedPotrRealizesPotr(t *testing.T) {
	n := 5
	pi0 := core.SetOf(0, 1, 2, 3) // 4 > 10/3
	tr := collectTrace(ScriptedPotr{R0: 3, Pi0: pi0}, n, 6)
	r0, got, ok := predicate.FindPotrWitness(tr)
	if !ok {
		t.Fatal("ScriptedPotr trace does not satisfy Potr")
	}
	if r0 != 3 || got != pi0 {
		t.Errorf("witness = (%d, %v), want (3, %v)", r0, got, pi0)
	}
}

func TestSpaceUniformRoundsRealizesPsu(t *testing.T) {
	n := 5
	pi0 := core.SetOf(1, 2, 3)
	tr := collectTrace(SpaceUniformRounds{Pi0: pi0, From: 2, To: 4}, n, 5)
	if !(predicate.SpaceUniform{Pi0: pi0, From: 2, To: 4}).Holds(tr) {
		t.Error("Psu not realized")
	}
	if !tr.HO(0, 2).IsEmpty() {
		t.Error("process outside Π0 heard something")
	}
	if !tr.HO(1, 5).IsEmpty() {
		t.Error("round outside window should default to Silence")
	}
}

func TestKernelRoundsRealizesPk(t *testing.T) {
	n := 6
	pi0 := core.SetOf(0, 2, 4)
	prov := KernelRounds{Pi0: pi0, From: 1, To: 8, RNG: xrand.New(5)}
	tr := collectTrace(prov, n, 8)
	if !(predicate.Kernel{Pi0: pi0, From: 1, To: 8}).Holds(tr) {
		t.Error("Pk not realized")
	}
}

func TestGoodBadCycles(t *testing.T) {
	n := 4
	pi0 := core.SetOf(0, 1, 2)
	prov := &GoodBad{Pi0: pi0, BadLen: 2, GoodLen: 2, BadLoss: 1, RNG: xrand.New(9)}
	tr := collectTrace(prov, n, 8)
	// Rounds 3,4 and 7,8 are good (space-uniform for Π0).
	for _, r := range []core.Round{3, 4, 7, 8} {
		if !(predicate.SpaceUniform{Pi0: pi0, From: r, To: r}).Holds(tr) {
			t.Errorf("round %d should be space-uniform", r)
		}
	}
	// Bad rounds with loss 1 are silent.
	for _, r := range []core.Round{1, 2, 5, 6} {
		if !tr.HO(0, r).IsEmpty() {
			t.Errorf("bad round %d not silent at loss 1", r)
		}
	}
	zero := &GoodBad{}
	if got := zero.HOSets(1, n); got[0] != core.FullSet(n) {
		t.Error("degenerate GoodBad should behave like Full")
	}
}

func TestArbitraryEmptyBias(t *testing.T) {
	prov := &Arbitrary{RNG: xrand.New(11), EmptyBias: 1}
	for _, ho := range prov.HOSets(1, 5) {
		if !ho.IsEmpty() {
			t.Error("EmptyBias 1 produced a non-empty set")
		}
	}
	some := &Arbitrary{RNG: xrand.New(11)}
	nonEmpty := 0
	for r := core.Round(1); r <= 20; r++ {
		for _, ho := range some.HOSets(r, 8) {
			if !ho.IsEmpty() {
				nonEmpty++
			}
		}
	}
	if nonEmpty == 0 {
		t.Error("Arbitrary produced only empty sets")
	}
}
