package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"heardof/internal/xrand"
)

// numberedCells builds n self-contained cells whose values depend only on
// their index (each owns a deterministic RNG), mimicking a (config, seed)
// simulation grid.
func numberedCells(n int) []Cell {
	cells := make([]Cell, n)
	for i := range cells {
		cells[i] = Cell{
			Label: fmt.Sprintf("cell/%d", i),
			Run: func(context.Context) (any, error) {
				rng := xrand.New(uint64(i))
				sum := uint64(0)
				for k := 0; k < 100; k++ {
					sum += rng.Uint64()
				}
				return sum, nil
			},
		}
	}
	return cells
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	cells := numberedCells(64)
	var reference []Result
	for _, workers := range []int{1, 2, 8, 0} {
		eng := &Engine{Workers: workers}
		results, err := eng.Run(context.Background(), cells)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(results) != len(cells) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(results), len(cells))
		}
		for i, r := range results {
			if r.Index != i || r.Label != cells[i].Label {
				t.Fatalf("workers=%d: result %d has index %d label %q", workers, i, r.Index, r.Label)
			}
			if r.Err != nil {
				t.Fatalf("workers=%d cell %d: %v", workers, i, r.Err)
			}
		}
		if reference == nil {
			reference = results
			continue
		}
		for i := range results {
			if results[i].Value != reference[i].Value {
				t.Errorf("workers=%d cell %d: value %v differs from sequential %v",
					workers, i, results[i].Value, reference[i].Value)
			}
		}
	}
}

func TestErrorsAreCellLocal(t *testing.T) {
	boom := errors.New("boom")
	cells := numberedCells(8)
	cells[3].Run = func(context.Context) (any, error) { return nil, boom }
	cells[5].Run = func(context.Context) (any, error) { panic("deliberate") }

	results, err := (&Engine{Workers: 4}).Run(context.Background(), cells)
	if err != nil {
		t.Fatalf("sweep error: %v (cell failures must stay per-cell)", err)
	}
	if !errors.Is(results[3].Err, boom) {
		t.Errorf("cell 3 err = %v, want %v", results[3].Err, boom)
	}
	if results[5].Err == nil || results[5].Value != nil {
		t.Errorf("panicking cell 5: err=%v value=%v, want recovered error", results[5].Err, results[5].Value)
	}
	for _, i := range []int{0, 1, 2, 4, 6, 7} {
		if results[i].Err != nil {
			t.Errorf("healthy cell %d got err %v", i, results[i].Err)
		}
	}
}

func TestCancellationMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const n = 50
	started := make(chan struct{}, n)
	cells := make([]Cell, n)
	for i := range cells {
		cells[i] = Cell{
			Label: fmt.Sprintf("cancel/%d", i),
			Run: func(ctx context.Context) (any, error) {
				started <- struct{}{}
				select {
				case <-ctx.Done():
					return nil, ctx.Err()
				case <-time.After(10 * time.Second):
					return "finished", nil
				}
			},
		}
	}
	go func() {
		<-started // at least one cell is in flight
		cancel()
	}()

	doneCh := make(chan struct{})
	var results []Result
	var err error
	go func() {
		results, err = (&Engine{Workers: 4}).Run(ctx, cells)
		close(doneCh)
	}()
	select {
	case <-doneCh:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
	neverRan := 0
	for i, r := range results {
		if r.Err == nil {
			t.Errorf("cell %d reported success despite cancellation", i)
		}
		if r.Elapsed == 0 {
			neverRan++
		}
	}
	if neverRan == 0 {
		t.Error("expected some cells to be skipped entirely (none were)")
	}
}

func TestPerCellTimeout(t *testing.T) {
	cells := []Cell{
		{Label: "fast", Run: func(context.Context) (any, error) { return "ok", nil }},
		{Label: "hung", Run: func(ctx context.Context) (any, error) {
			<-ctx.Done() // honours cancellation, but only after the deadline
			return nil, ctx.Err()
		}},
		{Label: "fast2", Run: func(context.Context) (any, error) { return "ok", nil }},
	}
	doneCh := make(chan struct{})
	var results []Result
	var err error
	go func() {
		results, err = (&Engine{Workers: 2, CellTimeout: 50 * time.Millisecond}).Run(context.Background(), cells)
		close(doneCh)
	}()
	select {
	case <-doneCh:
	case <-time.After(5 * time.Second):
		t.Fatal("sweep hung on a timed-out cell")
	}
	if err != nil {
		t.Fatalf("sweep error: %v (timeouts must not abort the sweep)", err)
	}
	if !results[1].TimedOut || !errors.Is(results[1].Err, ErrCellTimeout) {
		t.Errorf("hung cell: TimedOut=%v Err=%v, want ErrCellTimeout", results[1].TimedOut, results[1].Err)
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil || results[i].Value != "ok" {
			t.Errorf("cell %d: value=%v err=%v, want ok/nil", i, results[i].Value, results[i].Err)
		}
	}
}

func TestTimeoutAbandonsUncooperativeCell(t *testing.T) {
	release := make(chan struct{})
	cells := []Cell{{
		Label: "ignores-ctx",
		Run: func(context.Context) (any, error) {
			<-release // simulates a cell that cannot observe its context
			return "late", nil
		},
	}}
	doneCh := make(chan struct{})
	var results []Result
	go func() {
		results, _ = (&Engine{Workers: 1, CellTimeout: 20 * time.Millisecond}).Run(context.Background(), cells)
		close(doneCh)
	}()
	select {
	case <-doneCh:
	case <-time.After(5 * time.Second):
		t.Fatal("sweep blocked on a cell that ignores its context")
	}
	close(release)
	if !results[0].TimedOut {
		t.Errorf("result = %+v, want TimedOut", results[0])
	}
}

func TestProgressCallback(t *testing.T) {
	const n = 20
	var mu sync.Mutex
	var dones []int
	total := 0
	eng := &Engine{
		Workers: 4,
		OnProgress: func(p Progress) {
			mu.Lock()
			defer mu.Unlock()
			dones = append(dones, p.Done)
			total = p.Total
		},
	}
	if _, err := eng.Run(context.Background(), numberedCells(n)); err != nil {
		t.Fatal(err)
	}
	if total != n || len(dones) != n {
		t.Fatalf("progress: total=%d callbacks=%d, want %d/%d", total, len(dones), n, n)
	}
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("progress Done sequence %v is not monotonic", dones)
		}
	}
}

func TestEmptySweep(t *testing.T) {
	results, err := (&Engine{}).Run(context.Background(), nil)
	if err != nil || len(results) != 0 {
		t.Fatalf("empty sweep: results=%v err=%v", results, err)
	}
}
