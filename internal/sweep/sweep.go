// Package sweep is the concurrent experiment-orchestration engine: it
// fans independent simulation cells out across a worker pool and hands the
// results back in cell order, so that a table assembled from a parallel
// sweep is byte-identical to the one a sequential sweep produces.
//
// The unit of work is a Cell — typically one (configuration, seed)
// simulation. Cells must be self-contained: a cell owns its RNG, its
// simulator, and everything else it mutates, and two cells never share
// mutable state. Under that contract the engine guarantees that
// Engine.Run's result slice depends only on the cells themselves, never on
// the worker count or on scheduling.
//
// The engine supports per-cell timeouts, cancellation of the whole sweep
// via context.Context, and a progress callback for live reporting.
// internal/experiments builds every table through this package, and
// cmd/hobench / cmd/hosim expose it as -parallel / -timeout flags.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// ErrCellTimeout marks a cell that exceeded Engine.CellTimeout. The
// sweep as a whole continues; callers typically surface the timeout as a
// table note instead of a row.
var ErrCellTimeout = errors.New("sweep: cell timed out")

// Cell is one independent unit of a sweep.
type Cell struct {
	// Label identifies the cell in progress output, timeout notes and
	// errors, e.g. "E1/n=7/δ=5/x=2".
	Label string
	// Run computes the cell. It receives a context that is cancelled
	// when the sweep is cancelled or the cell's timeout fires;
	// long-running cells should honour it, but the engine also guards
	// cells that cannot: a timed-out cell is abandoned to finish in the
	// background while the sweep moves on.
	Run func(ctx context.Context) (any, error)
}

// Result is the outcome of one cell. Results are reported in cell order
// (Index), never in completion order.
type Result struct {
	Index int
	Label string
	// Value is what Cell.Run returned. It is nil when the cell failed,
	// timed out, or was skipped because the sweep was cancelled.
	Value any
	// Err is the cell's error, ErrCellTimeout, or the context error for
	// cells the sweep never ran.
	Err error
	// TimedOut reports that Err is ErrCellTimeout.
	TimedOut bool
	// Completed reports that the cell's Run finished and Value/Err are
	// its own outcome (as opposed to a timeout or a cancelled sweep).
	Completed bool
	// Elapsed is wall-clock time spent in the cell. It depends on load
	// and scheduling — report it in logs, never in deterministic output.
	Elapsed time.Duration
}

// Skipped reports that the sweep never obtained an outcome from this
// cell: it was cancelled (sweep-level) before or during its run, rather
// than completing, failing, or timing out on its own. Callers use this
// to separate "not run" accounting from genuine per-cell failures.
func (r Result) Skipped() bool { return !r.Completed && !r.TimedOut }

// Progress is a snapshot handed to Engine.OnProgress after each cell
// completes. Done counts completed cells (in completion order — the only
// place the engine exposes scheduling).
type Progress struct {
	Done  int
	Total int
	// Last is the result that just completed.
	Last Result
}

// Engine runs sweeps. The zero value is ready to use: all cores, no
// per-cell timeout, no progress reporting. An Engine is stateless across
// Run calls and safe for concurrent use.
type Engine struct {
	// Workers is the number of concurrent cells. 0 (or negative) means
	// runtime.GOMAXPROCS(0). Workers == 1 is the sequential reference
	// execution that parallel runs must reproduce byte-for-byte.
	Workers int
	// CellTimeout bounds each cell's run time; 0 means no bound. A cell
	// that exceeds it yields a Result with TimedOut set and the sweep
	// continues with the remaining cells.
	CellTimeout time.Duration
	// OnProgress, if non-nil, is called after each cell completes. Calls
	// are serialized; the callback must be fast and must not call back
	// into the Engine.
	OnProgress func(Progress)
}

// Run executes all cells and returns their results indexed by cell —
// results[i] belongs to cells[i] regardless of completion order.
//
// If ctx is cancelled mid-sweep, Run stops dispatching, waits for
// in-flight cells, marks never-run cells with ctx's error, and returns
// the partial results alongside that error. Cell failures and timeouts
// are per-cell data, not sweep errors: Run returns a nil error for them.
func (e *Engine) Run(ctx context.Context, cells []Cell) ([]Result, error) {
	results := make([]Result, len(cells))
	for i, c := range cells {
		results[i] = Result{Index: i, Label: c.Label}
	}
	if len(cells) == 0 {
		return results, ctx.Err()
	}

	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	jobs := make(chan int)
	go func() {
		defer close(jobs)
		for i := range cells {
			select {
			case jobs <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex // guards ran, done, results writes, OnProgress
		ran  = make([]bool, len(cells))
		done int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				r := e.runCell(ctx, i, cells[i])
				mu.Lock()
				results[i] = r
				ran[i] = true
				done++
				if e.OnProgress != nil {
					e.OnProgress(Progress{Done: done, Total: len(cells), Last: r})
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		for i := range results {
			if !ran[i] {
				results[i].Err = err
			}
		}
		return results, err
	}
	return results, nil
}

// runCell executes one cell, enforcing the per-cell timeout. The cell
// body runs in its own goroutine so that a cell which ignores its context
// can still be abandoned: its eventual result is discarded through the
// buffered channel.
func (e *Engine) runCell(ctx context.Context, index int, c Cell) Result {
	res := Result{Index: index, Label: c.Label}
	cellCtx := ctx
	if e.CellTimeout > 0 {
		var cancel context.CancelFunc
		cellCtx, cancel = context.WithTimeout(ctx, e.CellTimeout)
		defer cancel()
	}

	type outcome struct {
		value any
		err   error
	}
	ch := make(chan outcome, 1)
	//holint:allow nodeterminism Elapsed is a host-wall-time measurement, excluded from the byte-identical output contract
	start := time.Now()
	go func() {
		defer func() {
			if p := recover(); p != nil {
				ch <- outcome{err: fmt.Errorf("sweep: cell %q panicked: %v", c.Label, p)}
			}
		}()
		v, err := c.Run(cellCtx)
		ch <- outcome{value: v, err: err}
	}()

	select {
	case out := <-ch:
		res.Value, res.Err = out.value, out.err
		res.Completed = true
	case <-cellCtx.Done():
		if ctx.Err() != nil {
			res.Err = ctx.Err()
		} else {
			res.Err = ErrCellTimeout
			res.TimedOut = true
		}
	}
	//holint:allow nodeterminism Elapsed is a host-wall-time measurement, excluded from the byte-identical output contract
	res.Elapsed = time.Since(start)
	return res
}
