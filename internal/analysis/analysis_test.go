package analysis

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureCases runs an analyzer over its violating / clean / suppress
// fixture trio: seeded violations must be killed exactly, clean
// controls must stay silent, justified suppressions must hold and
// reasonless ones must themselves be findings.
func fixtureCases(t *testing.T, az *Analyzer) {
	t.Helper()
	for _, c := range []string{"violating", "clean", "suppress"} {
		t.Run(c, func(t *testing.T) {
			RunFixture(t, filepath.Join("testdata", az.Name, c), az)
		})
	}
}

func TestNoDeterminismFixtures(t *testing.T) { fixtureCases(t, NoDeterminism) }
func TestPureStepFixtures(t *testing.T)      { fixtureCases(t, PureStep) }
func TestAllocBoundFixtures(t *testing.T)    { fixtureCases(t, AllocBound) }
func TestErrCmpFixtures(t *testing.T)        { fixtureCases(t, ErrCmp) }
func TestSyncBarrierFixtures(t *testing.T)   { fixtureCases(t, SyncBarrier) }
func TestAtomicMixFixtures(t *testing.T)     { fixtureCases(t, AtomicMix) }
func TestGoLeakFixtures(t *testing.T)        { fixtureCases(t, GoLeak) }
func TestLockOrderFixtures(t *testing.T)     { fixtureCases(t, LockOrder) }
func TestHotPathFixtures(t *testing.T)       { fixtureCases(t, HotPath) }

// TestDirectiveHygiene pins that malformed and unknown-analyzer
// directives are findings regardless of which analyzers run.
func TestDirectiveHygiene(t *testing.T) {
	RunFixture(t, filepath.Join("testdata", "directives"))
}

// recordingTB captures harness failures so the harness itself can be
// tested (the repository's mutant discipline, applied to the linter's
// own test driver).
type recordingTB struct {
	errors []string
	fatals []string
}

func (r *recordingTB) Helper() {}
func (r *recordingTB) Errorf(format string, args ...any) {
	r.errors = append(r.errors, fmt.Sprintf(format, args...))
}
func (r *recordingTB) Fatalf(format string, args ...any) {
	r.fatals = append(r.fatals, fmt.Sprintf(format, args...))
}

// TestHarnessReportsMismatches proves RunFixture fails loudly in both
// directions: a diagnostic no want claims, and a want no diagnostic
// matches. Without this, a broken analyzer and a broken fixture would
// both pass silently.
func TestHarnessReportsMismatches(t *testing.T) {
	rec := &recordingTB{}
	RunFixture(rec, filepath.Join("testdata", "harness", "mismatch"), ErrCmp)
	if len(rec.fatals) > 0 {
		t.Fatalf("fixture failed to load: %v", rec.fatals)
	}
	if len(rec.errors) != 2 {
		t.Fatalf("got %d harness errors, want 2: %v", len(rec.errors), rec.errors)
	}
	if !strings.Contains(rec.errors[0], "unexpected diagnostic") {
		t.Errorf("first error should report the unclaimed diagnostic: %s", rec.errors[0])
	}
	if !strings.Contains(rec.errors[1], "no diagnostic matched") {
		t.Errorf("second error should report the unmatched want: %s", rec.errors[1])
	}
}

// TestAllRegistersEveryAnalyzer pins the registry: an analyzer missing
// from All() never runs under cmd/holint and its directives would be
// rejected as unknown.
func TestAllRegistersEveryAnalyzer(t *testing.T) {
	names := map[string]bool{}
	for _, az := range All() {
		if az.Name == "" || az.Doc == "" || az.Run == nil {
			t.Errorf("analyzer %q is missing a name, doc, or run function", az.Name)
		}
		if names[az.Name] {
			t.Errorf("duplicate analyzer name %q", az.Name)
		}
		names[az.Name] = true
	}
	for _, want := range []string{"nodeterminism", "purestep", "allocbound", "errcmp", "syncbarrier",
		"atomicmix", "goleak", "lockorder", "hotpath"} {
		if !names[want] {
			t.Errorf("All() is missing %q", want)
		}
	}
}

// TestRepositoryIsClean runs the whole suite over the repository — the
// same gate CI's lint job applies through cmd/holint.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check")
	}
	prog, err := Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	// Full coverage: a skipped package is an unanalyzed one, so the
	// degradation path (TestLoadDegradesOnBrokenDependency) must never
	// trigger on the repository itself.
	for _, s := range prog.Skipped {
		t.Errorf("loader skipped %s: %s", s.Path, s.Note)
	}
	for _, d := range Run(prog, All()) {
		t.Errorf("%s", d)
	}
}
