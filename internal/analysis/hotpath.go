// hotpath pins the zero-alloc property PR 2 bought with benchmarks
// (−99% allocs/op on the simulator hot loop) as a per-commit static
// gate. A function annotated
//
//	//holint:hotpath
//
// directly above its declaration is declared allocation-free on its
// steady-state path: the simtime event loop, the rsm batch codec, the
// live envelope encode/decode, the wal append path. The annotation has
// two enforcement halves:
//
//   - This analyzer (always on) checks annotation hygiene — a
//     directive that does not precede a function declaration is dead
//     and gets flagged — and the allocations visible without the
//     compiler: calls into fmt and errors.New allocate on every call
//     by construction, so an annotated function must outline such cold
//     paths into unannotated helpers or use package-level sentinels.
//
//   - `holint -escape` (CI's lint job) shells out to `go build
//     -gcflags=-m` and fails on any heap escape or closure allocation
//     the compiler reports inside an annotated function — the
//     authoritative check, see escape.go.
//
// Both halves share CollectHotpaths, so an annotation the static half
// accepts is exactly one the escape gate watches.

package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// hotpathDirective marks a function as pinned allocation-free.
const hotpathDirective = "//holint:hotpath"

// HotPath is the hot-path annotation analyzer (the static half of the
// escape gate).
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc: "checks //holint:hotpath annotations: placement hygiene, and no " +
		"fmt/errors.New calls inside annotated zero-alloc functions " +
		"(`holint -escape` adds the compiler-backed escape check)",
	AppliesTo: inModule,
	Run:       runHotPath,
}

func runHotPath(pass *Pass) {
	fns, misplaced := hotpathFuncs(pass.Pkg)
	for _, pos := range misplaced {
		pass.Reportf(pos, "//holint:hotpath must sit directly above a function declaration: anywhere else the annotation pins nothing and the escape gate ignores it")
	}
	for _, fd := range fns {
		checkHotpathBody(pass, fd)
	}
}

// hotpathFuncs splits a package's //holint:hotpath directives into the
// function declarations they annotate and the positions of directives
// attached to nothing.
func hotpathFuncs(pkg *Package) (fns []*ast.FuncDecl, misplaced []token.Pos) {
	for _, f := range pkg.Files {
		claimed := make(map[*ast.Comment]bool)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			annotated := false
			for _, c := range fd.Doc.List {
				if isHotpathDirective(c.Text) {
					claimed[c] = true
					annotated = true
				}
			}
			if annotated && fd.Body != nil {
				fns = append(fns, fd)
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if isHotpathDirective(c.Text) && !claimed[c] {
					misplaced = append(misplaced, c.Pos())
				}
			}
		}
	}
	return fns, misplaced
}

// isHotpathDirective matches the directive, tolerating a trailing
// comment after whitespace.
func isHotpathDirective(text string) bool {
	if !strings.HasPrefix(text, hotpathDirective) {
		return false
	}
	rest := text[len(hotpathDirective):]
	return rest == "" || rest[0] == ' ' || rest[0] == '\t'
}

// checkHotpathBody flags calls that allocate by construction inside an
// annotated function.
func checkHotpathBody(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(info, call)
		if fn == nil {
			return true
		}
		switch path := funcPkgPath(fn); {
		case path == "fmt":
			pass.Reportf(call.Pos(), "fmt.%s in //holint:hotpath function %s allocates on every call: outline the cold path into an unannotated helper or use a package-level sentinel", fn.Name(), fd.Name.Name)
		case path == "errors" && fn.Name() == "New":
			pass.Reportf(call.Pos(), "errors.New in //holint:hotpath function %s allocates on every call: hoist the sentinel to a package-level var", fd.Name.Name)
		}
		return true
	})
}
