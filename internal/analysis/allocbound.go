// allocbound enforces the allocate-after-validate contract on wire
// decode paths (documented on live.BatchCodec): a length or count read
// off the network must be bounded before it sizes an allocation,
// otherwise a few hostile header bytes buy a giant make() — the exact
// bug class the PR-6 fuzz targets caught in a test codec.
//
// The check is deliberately syntactic about "bounded": any comparison
// mentioning the size variable earlier in the function (a guard like
// `if n > maxEntries { return err }`, a clamp, a == length check)
// counts as the dominating bound. That keeps false positives near zero
// on real decoders while still catching the bug's signature, which is
// the complete absence of a check.

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AllocBound is the decode-path allocation analyzer.
var AllocBound = &Analyzer{
	Name: "allocbound",
	Doc: "flags make() sized by decoded wire input without a dominating bound " +
		"check in decode-path functions (allocate-after-validate)",
	AppliesTo: inModule,
	Run:       runAllocBound,
}

func runAllocBound(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !isDecodeContext(pass.Pkg.Info, fd) {
				continue
			}
			checkDecodeAllocs(pass, fd)
			checkDecodeLoopAppends(pass, fd)
		}
	}
}

// isDecodeContext reports whether a function is a wire-decode path:
// its name says so, or its body reads raw bytes through
// encoding/binary.
func isDecodeContext(info *types.Info, fd *ast.FuncDecl) bool {
	name := fd.Name.Name
	for _, marker := range []string{"Decode", "decode", "Unmarshal", "unmarshal"} {
		if strings.Contains(name, marker) {
			return true
		}
	}
	if name == "RestoreState" { // crash-recovery instance decode (persist.go)
		return true
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(info, call)
		if fn != nil && funcPkgPath(fn) == "encoding/binary" && isBinaryRead(fn.Name()) {
			found = true
		}
		return true
	})
	return found
}

// checkDecodeAllocs flags unbounded variable-sized make() calls in fd.
func checkDecodeAllocs(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || info.Uses[id] != types.Universe.Lookup("make") {
			return true
		}
		// Check every size argument (len, and cap if present).
		for _, size := range call.Args[1:] {
			if bounded, vars := sizeBounded(info, fd, call.Pos(), size); !bounded {
				what := "expression"
				if len(vars) > 0 {
					what = vars[0].Name()
				}
				pass.Reportf(call.Pos(), "make() sized by %s in a decode path without a dominating bound check: validate the decoded size before allocating (allocate-after-validate, see live.BatchCodec)", what)
				break
			}
		}
		return true
	})
}

// checkDecodeLoopAppends flags the incremental twin of the make() bug:
// a loop that appends to a slice while iterating up to a decoded
// count. `for i := 0; i < n; i++ { out = append(out, e) }` allocates
// just as much memory as `make([]T, n)` — it only does it a page at a
// time, so the unbounded-preallocation check never sees it. The
// loop's own `i < n` condition is the iteration count, not a
// validation of it, so the dominating bound must sit before the loop.
func checkDecodeLoopAppends(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond == nil {
			return true
		}
		limit := loopLimitExpr(info, loop)
		if limit == nil || !growsSlice(info, loop.Body) {
			return true
		}
		if bounded, vars := sizeBounded(info, fd, loop.Pos(), limit); !bounded {
			what := "a decoded count"
			if len(vars) > 0 {
				what = vars[0].Name()
			}
			pass.Reportf(loop.Pos(), "loop appends up to %s without a dominating bound check: the loop condition only counts iterations, it does not validate the decoded size — check it before the loop (allocate-after-validate, see live.BatchCodec)", what)
		}
		return true
	})
}

// loopLimitExpr extracts the non-induction side of a counted loop's
// condition — the expression that decides how many iterations run.
// Returns nil for loops that are not a recognizable `i OP limit` shape.
func loopLimitExpr(info *types.Info, loop *ast.ForStmt) ast.Expr {
	be, ok := ast.Unparen(loop.Cond).(*ast.BinaryExpr)
	if !ok {
		return nil
	}
	switch be.Op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.NEQ:
	default:
		return nil
	}
	ind := inductionVars(info, loop)
	if len(ind) == 0 {
		return nil
	}
	xInd, yInd := usesAnyVar(info, be.X, ind), usesAnyVar(info, be.Y, ind)
	switch {
	case xInd && !yInd:
		return be.Y
	case yInd && !xInd:
		return be.X
	}
	return nil
}

// inductionVars collects the loop's counter variables: anything
// defined or assigned in the init statement, or stepped in the post
// statement.
func inductionVars(info *types.Info, loop *ast.ForStmt) map[*types.Var]bool {
	ind := make(map[*types.Var]bool)
	record := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if v, ok := info.Defs[id].(*types.Var); ok {
				ind[v] = true
			} else if v, ok := info.Uses[id].(*types.Var); ok {
				ind[v] = true
			}
		}
	}
	if as, ok := loop.Init.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			record(lhs)
		}
	}
	switch post := loop.Post.(type) {
	case *ast.IncDecStmt:
		record(post.X)
	case *ast.AssignStmt:
		for _, lhs := range post.Lhs {
			record(lhs)
		}
	}
	return ind
}

// usesAnyVar reports whether e reads any of the given variables.
func usesAnyVar(info *types.Info, e ast.Expr, vars map[*types.Var]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok && vars[v] {
				found = true
			}
		}
		return true
	})
	return found
}

// growsSlice reports whether a statement block calls the append
// builtin — the signature of incremental slice growth.
func growsSlice(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && info.Uses[id] == types.Universe.Lookup("append") {
			found = true
		}
		return true
	})
	return found
}

// isBinaryRead distinguishes encoding/binary's wire-reading functions
// (decode evidence) from its writers (Put*/Append*/Write encode, they
// prove nothing about inputs).
func isBinaryRead(name string) bool {
	return !strings.HasPrefix(name, "Put") && !strings.HasPrefix(name, "Append") && name != "Write"
}

// sizeBounded decides whether a make() size expression is safe:
// constant, derived from len/cap of data already in hand, arithmetic
// over bounded parts, clamped via the min builtin, or a variable some
// comparison earlier in the function bounds.
func sizeBounded(info *types.Info, fd *ast.FuncDecl, allocPos token.Pos, size ast.Expr) (bool, []*types.Var) {
	size = ast.Unparen(size)
	if tv, ok := info.Types[size]; ok && tv.Value != nil {
		return true, nil // constant
	}
	switch e := size.(type) {
	case *ast.BinaryExpr:
		// Arithmetic is bounded iff both operands are.
		lok, lvars := sizeBounded(info, fd, allocPos, e.X)
		rok, rvars := sizeBounded(info, fd, allocPos, e.Y)
		return lok && rok, append(lvars, rvars...)
	case *ast.CallExpr:
		// Unwrap conversions (int(n), uint32(n), ...) and len/cap/min.
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return sizeBounded(info, fd, allocPos, e.Args[0])
		}
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			switch info.Uses[id] {
			case types.Universe.Lookup("len"), types.Universe.Lookup("cap"):
				return true, nil // sized by data already in memory
			case types.Universe.Lookup("min"):
				// min(n, bound) is a clamp if any argument is bounded.
				for _, a := range e.Args {
					if ok, _ := sizeBounded(info, fd, allocPos, a); ok {
						return true, nil
					}
				}
			}
		}
	}
	vars := sizeVars(info, size)
	if len(vars) == 0 {
		return false, nil // opaque expression: cannot argue a bound
	}
	for _, v := range vars {
		if !varBoundedBefore(info, fd, allocPos, v) {
			return false, vars
		}
	}
	return true, vars
}

// sizeVars collects the variables a size expression reads.
func sizeVars(info *types.Info, e ast.Expr) []*types.Var {
	var vars []*types.Var
	seen := map[*types.Var]bool{}
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := info.Uses[id].(*types.Var); ok && !seen[v] {
			seen[v] = true
			vars = append(vars, v)
		}
		return true
	})
	return vars
}

// varBoundedBefore reports whether any comparison earlier in the
// function mentions v — the syntactic stand-in for a dominating bound
// check.
func varBoundedBefore(info *types.Info, fd *ast.FuncDecl, allocPos token.Pos, v *types.Var) bool {
	bounded := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if bounded {
			return false
		}
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Pos() >= allocPos {
			return true
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		default:
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			for _, sv := range sizeVars(info, side) {
				if sv == v {
					bounded = true
					return false
				}
			}
		}
		return true
	})
	return bounded
}
