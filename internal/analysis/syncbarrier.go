// syncbarrier protects the PR-7 write-ahead barrier in internal/live:
// a dispatch path — any function that runs a ReplicaCore step — must
// make the step's saved protocol facts durable (one Persister.Sync)
// BEFORE any of the step's output becomes externally visible: before
// envelopes reach the transport and before waiter acks are sent. An
// envelope or ack that leaves first would let a peer or client observe
// state the disk does not hold, turning the next crash into exactly
// the split-brain the log exists to prevent.
//
// Mechanically: in every function that calls ReplicaCore.Step, each
// visible effect after the Step call — a Transport.Send (directly or
// through a helper that reaches one), or a channel send — must come
// after a Persister.Sync call in that same function. The nil-persister
// guard (`if cfg.Persist != nil { … Sync() }`) satisfies the check:
// what the analyzer pins is the ORDER of the barrier relative to the
// effects, the refactor hazard that reintroduces the bug.

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SyncBarrier is the write-ahead-barrier analyzer.
var SyncBarrier = &Analyzer{
	Name: "syncbarrier",
	Doc: "in internal/live, flags dispatch paths where envelopes or acks can " +
		"leave before Persister.Sync (the write-ahead barrier of DESIGN.md §11)",
	AppliesTo: func(path string) bool { return path == "heardof/internal/live" },
	Run:       runSyncBarrier,
}

func runSyncBarrier(pass *Pass) {
	pkg := pass.Pkg
	scope := pkg.Types.Scope()
	transportIface := namedInterface(scope, "Transport")
	persisterIface := namedInterface(scope, "Persister")
	stepMethods := methodsNamed(scope, "ReplicaCore", "Step")
	if transportIface == nil || len(stepMethods) == 0 {
		return // the package under this contract always declares both
	}

	// Pass 1: which package functions can emit an envelope — call
	// Transport.Send directly, or reach a function that does?
	emitters := make(map[*types.Func]bool)
	decls := packageFuncs(pkg)
	for fn, fd := range decls {
		if bodyCallsTransportSend(pkg.Info, fd, transportIface) {
			emitters[fn] = true
		}
	}
	for changed := true; changed; { // transitive closure over static calls
		changed = false
		for fn, fd := range decls {
			if emitters[fn] {
				continue
			}
			callsEmitter := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if callee := calleeOf(pkg.Info, call); callee != nil && emitters[callee] {
						callsEmitter = true
					}
				}
				return !callsEmitter
			})
			if callsEmitter {
				emitters[fn] = true
				changed = true
			}
		}
	}

	// Pass 2: vet every dispatch path (function calling ReplicaCore.Step).
	for _, fd := range decls {
		checkDispatchPath(pass, fd, stepMethods, persisterIface, transportIface, emitters)
	}
}

// checkDispatchPath enforces Step ≺ Sync ≺ {sends, acks} positionally
// within one function.
func checkDispatchPath(pass *Pass, fd *ast.FuncDecl, stepMethods map[*types.Func]bool, persisterIface, transportIface *types.Interface, emitters map[*types.Func]bool) {
	info := pass.Pkg.Info
	stepPos := ast.Node(nil)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if stepPos != nil {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if callee := calleeOf(info, call); callee != nil && stepMethods[callee] {
				stepPos = call
			}
		}
		return true
	})
	if stepPos == nil {
		return // not a dispatch path
	}

	// Locate the barrier: the first Persister.Sync after the step.
	syncPos := token.NoPos
	if persisterIface != nil {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if syncPos.IsValid() {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok || call.Pos() < stepPos.Pos() {
				return true
			}
			if isIfaceMethodCall(info, call, persisterIface, "Sync") {
				syncPos = call.Pos()
			}
			return true
		})
	}

	report := func(n ast.Node, what string) {
		pass.Reportf(n.Pos(), "%s in %s before the Persister.Sync barrier: a peer or client could observe state the log does not hold (write-ahead barrier, DESIGN.md §11)", what, fd.Name.Name)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil || !n.Pos().IsValid() || n.Pos() <= stepPos.Pos() {
			return true
		}
		early := !syncPos.IsValid() || n.Pos() < syncPos
		switch n := n.(type) {
		case *ast.SendStmt:
			if early {
				report(n, "ack leaves (channel send)")
			}
		case *ast.CallExpr:
			if !early {
				return true
			}
			if isIfaceMethodCall(info, n, transportIface, "Send") {
				report(n, "envelope leaves (Transport.Send)")
			} else if callee := calleeOf(info, n); callee != nil && emitters[callee] {
				report(n, "envelope leaves (via "+callee.Name()+")")
			}
		}
		return true
	})
}

// namedInterface resolves a package-scope interface type by name.
func namedInterface(scope *types.Scope, name string) *types.Interface {
	tn, ok := scope.Lookup(name).(*types.TypeName)
	if !ok {
		return nil
	}
	iface, _ := tn.Type().Underlying().(*types.Interface)
	return iface
}

// methodsNamed collects a named type's methods with the given name
// (generic origin), keyed for call-site matching.
func methodsNamed(scope *types.Scope, typeName, method string) map[*types.Func]bool {
	out := make(map[*types.Func]bool)
	tn, ok := scope.Lookup(typeName).(*types.TypeName)
	if !ok {
		return out
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return out
	}
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == method {
			out[m.Origin()] = true
		}
	}
	return out
}

// packageFuncs indexes the package's function declarations by object.
func packageFuncs(pkg *Package) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				out[fn.Origin()] = fd
			}
		}
	}
	return out
}

// bodyCallsTransportSend reports whether fd directly calls Send on a
// value whose type is (or implements) the Transport interface.
func bodyCallsTransportSend(info *types.Info, fd *ast.FuncDecl, transport *types.Interface) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isIfaceMethodCall(info, call, transport, "Send") {
			found = true
		}
		return true
	})
	return found
}

// isIfaceMethodCall reports whether call invokes a method with the
// given name on a receiver that is — or implements — iface.
func isIfaceMethodCall(info *types.Info, call *ast.CallExpr, iface *types.Interface, name string) bool {
	if iface == nil {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	return types.Implements(recv, iface) ||
		types.Implements(types.NewPointer(recv), iface) ||
		types.Identical(recv.Underlying(), iface)
}
