// errcmp enforces sentinel-error matching through errors.Is. The
// service layers deliberately wrap their sentinels (core.ErrNotDecided
// travels inside AgreedValue errors, rsm.ErrSlotUndecided is aliased by
// kvstore and abcast, the wal errors gain context on the replay path),
// so a == comparison that happens to pass today silently stops matching
// the first time a call site adds %w context.

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrCmp is the sentinel-comparison analyzer.
var ErrCmp = &Analyzer{
	Name: "errcmp",
	Doc: "flags ==/!= comparisons and switch cases matching sentinel errors " +
		"(package-level error variables); errors.Is survives wrapping, == does not",
	AppliesTo: inModule,
	Run:       runErrCmp,
}

func runErrCmp(pass *Pass) {
	info := pass.Pkg.Info
	pass.inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			if s := sentinelErrOperand(info, n.X, n.Y); s != nil {
				pass.Reportf(n.Pos(), "%s comparison against sentinel %s breaks on wrapped errors; use errors.Is(err, %s)", n.Op, s.Name(), s.Name())
			}
		case *ast.SwitchStmt:
			if n.Tag == nil {
				return true
			}
			tv, ok := info.Types[n.Tag]
			if !ok || !isErrorType(tv.Type) {
				return true
			}
			for _, cl := range n.Body.List {
				cc, ok := cl.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					if s := sentinelErr(info, e); s != nil {
						pass.Reportf(e.Pos(), "switch case matches sentinel %s by ==, which breaks on wrapped errors; use errors.Is", s.Name())
					}
				}
			}
		}
		return true
	})
}

// sentinelErrOperand returns the sentinel error variable of an
// error-vs-error comparison, or nil if neither operand is one (or if
// the other side is not an error, e.g. comparing unrelated values).
func sentinelErrOperand(info *types.Info, x, y ast.Expr) *types.Var {
	for _, pair := range [2][2]ast.Expr{{x, y}, {y, x}} {
		s := sentinelErr(info, pair[0])
		if s == nil {
			continue
		}
		if tv, ok := info.Types[pair[1]]; ok && isErrorType(tv.Type) {
			return s
		}
	}
	return nil
}

// sentinelErr resolves e to a package-level error variable, or nil.
func sentinelErr(info *types.Info, e ast.Expr) *types.Var {
	v := pkgLevelVar(info, e)
	if v == nil || !isErrorType(v.Type()) {
		return nil
	}
	return v
}
