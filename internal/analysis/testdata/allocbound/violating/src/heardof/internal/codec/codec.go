// Package codec is a fixture: decode paths sizing allocations from
// wire input with no dominating bound check.
package codec

import "encoding/binary"

// DecodeFrame reads a length prefix and allocates without a bound.
func DecodeFrame(b []byte) []byte {
	n := binary.BigEndian.Uint32(b)
	buf := make([]byte, int(n)) // want `allocbound: make\(\) sized by n in a decode path`
	copy(buf, b[4:])
	return buf
}

// unmarshalEntries sizes a map from a decoded count.
func unmarshalEntries(b []byte) map[uint64]uint64 {
	count, _ := binary.Uvarint(b)
	return make(map[uint64]uint64, count) // want `allocbound: make\(\) sized by count in a decode path`
}

// decodeList grows a slice one element at a time up to a decoded
// count: the incremental twin of the unbounded make().
func decodeList(b []byte) []uint64 {
	count, _ := binary.Uvarint(b)
	var out []uint64
	for i := 0; i < int(count); i++ { // want `allocbound: loop appends up to count without a dominating bound check`
		out = append(out, uint64(i))
	}
	return out
}
