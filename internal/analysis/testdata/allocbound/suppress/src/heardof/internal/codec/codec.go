// Package codec is a fixture: suppression discipline for allocbound.
package codec

import "encoding/binary"

// DecodeTrusted carries a justified suppression.
func DecodeTrusted(b []byte) []byte {
	n := binary.BigEndian.Uint32(b)
	//holint:allow allocbound fixture: b is a local file this process wrote, not wire input
	return make([]byte, int(n))
}

// DecodeBare carries a reasonless suppression: the hole and the
// unsuppressed finding both surface.
func DecodeBare(b []byte) []byte {
	n := binary.BigEndian.Uint32(b)
	//holint:allow allocbound // want `holint: //holint:allow allocbound needs a justification`
	return make([]byte, int(n)) // want `allocbound: make\(\) sized by n in a decode path`
}
