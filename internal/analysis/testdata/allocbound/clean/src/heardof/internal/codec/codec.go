// Package codec is a fixture: the clean control for allocbound —
// validated, clamped, len-derived, and encode-side allocations all
// stay legal.
package codec

import (
	"encoding/binary"
	"errors"
)

// ErrFrame reports an oversized frame.
var ErrFrame = errors.New("codec: frame length exceeds payload")

// DecodeFrame validates the decoded length before allocating.
func DecodeFrame(b []byte) ([]byte, error) {
	n := binary.BigEndian.Uint32(b)
	if int(n) > len(b)-4 {
		return nil, ErrFrame
	}
	buf := make([]byte, int(n))
	copy(buf, b[4:])
	return buf, nil
}

// decodeAll sizes from data already in hand (len/cap arithmetic).
func decodeAll(b []byte) []byte {
	out := make([]byte, len(b), len(b)+8)
	copy(out, b)
	return out
}

// decodeClamped bounds the count with the min builtin.
func decodeClamped(b []byte) []uint64 {
	count, _ := binary.Uvarint(b)
	return make([]uint64, min(int(count), 1024))
}

// decodeListChecked validates the decoded count before the loop that
// grows the slice, so the incremental allocation is bounded.
func decodeListChecked(b []byte) ([]uint64, error) {
	count, _ := binary.Uvarint(b)
	if count > 1024 {
		return nil, ErrFrame
	}
	var out []uint64
	for i := 0; i < int(count); i++ {
		out = append(out, uint64(i))
	}
	return out, nil
}

// decodeBytesLoop iterates up to len of data already in hand: the
// limit cannot exceed memory the caller has already paid for.
func decodeBytesLoop(b []byte) []byte {
	n, _ := binary.Uvarint(b)
	_ = n
	var out []byte
	for i := 0; i < len(b); i++ {
		out = append(out, b[i]^0xff)
	}
	return out
}

// Encode is a writer: Put* calls are not decode evidence, so its
// length-derived allocation needs no guard.
func Encode(v uint32, payload []byte) []byte {
	buf := make([]byte, 4, 4+len(payload))
	binary.BigEndian.PutUint32(buf, v)
	return append(buf, payload...)
}
