// Package wire is a fixture driven through a recording TB by the
// harness's own test: one diagnostic no want claims, and one want no
// diagnostic ever matches, so RunFixture must fail in both directions.
package wire

import "errors"

// ErrGone is the sentinel.
var ErrGone = errors.New("wire: gone")

// IsGone compares with == and deliberately carries no want.
func IsGone(err error) bool {
	return err == ErrGone
}

// Fine is clean but wants a diagnostic anyway.
func Fine() int {
	return 1 // want `errcmp: impossible`
}
