// Package x is a fixture: directive hygiene the framework itself
// enforces, independent of which analyzers run.
package x

//holint:allow // want `holint: malformed //holint:allow directive`
func A() {}

//holint:allow nosuchanalyzer because reasons // want `holint: //holint:allow names unknown analyzer "nosuchanalyzer"`
func B() {}
