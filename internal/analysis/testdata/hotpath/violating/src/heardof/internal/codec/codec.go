// Package codec is a fixture: hotpath annotation misuse — misplaced
// directives and by-construction allocations in annotated functions.
package codec

import (
	"errors"
	"fmt"
)

//holint:hotpath // want `hotpath: //holint:hotpath must sit directly above a function declaration`
var buf [64]byte

// Append frames a value on the pinned zero-alloc path, but builds its
// error with fmt.
//
//holint:hotpath
func Append(dst []byte, v uint32) ([]byte, error) {
	if v > 1<<24 {
		return nil, fmt.Errorf("codec: value %d out of range", v) // want `hotpath: fmt.Errorf in //holint:hotpath function Append allocates on every call`
	}
	return append(dst, byte(v>>16), byte(v>>8), byte(v)), nil
}

// Decode allocates its sentinel on every call.
//
//holint:hotpath
func Decode(b []byte) (uint32, error) {
	if len(b) < 3 {
		return 0, errors.New("codec: short buffer") // want `hotpath: errors.New in //holint:hotpath function Decode allocates on every call`
	}
	return uint32(b[0])<<16 | uint32(b[1])<<8 | uint32(b[2]), nil
}
