// Package codec is a fixture: the clean controls for hotpath —
// annotated functions using sentinels and outlined cold paths, and an
// unannotated function free to use fmt.
package codec

import (
	"errors"
	"fmt"
)

// ErrRange is the hoisted sentinel the hot path returns.
var ErrRange = errors.New("codec: value out of range")

// Append frames a value with a package-level sentinel error.
//
//holint:hotpath
func Append(dst []byte, v uint32) ([]byte, error) {
	if v > 1<<24 {
		return nil, ErrRange
	}
	return append(dst, byte(v>>16), byte(v>>8), byte(v)), nil
}

// Decode outlines its descriptive error into an unannotated helper.
//
//holint:hotpath
func Decode(b []byte) (uint32, error) {
	if len(b) < 3 {
		return 0, shortBuffer(len(b))
	}
	return uint32(b[0])<<16 | uint32(b[1])<<8 | uint32(b[2]), nil
}

// shortBuffer is the cold path: unannotated, so it may allocate a
// descriptive error.
func shortBuffer(n int) error {
	return fmt.Errorf("codec: short buffer: %d bytes", n)
}
