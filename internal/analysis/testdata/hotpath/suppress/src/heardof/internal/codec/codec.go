// Package codec is a fixture: suppression discipline for hotpath.
package codec

import "fmt"

// Append keeps fmt on a branch measured never to be taken in steady
// state — a justified suppression.
//
//holint:hotpath
func Append(dst []byte, v uint32) ([]byte, error) {
	if v > 1<<24 {
		//holint:allow hotpath fixture: corruption-only branch, never taken in steady state
		return nil, fmt.Errorf("codec: value %d out of range", v)
	}
	return append(dst, byte(v>>16), byte(v>>8), byte(v)), nil
}

// Decode suppresses without a reason: the hole and the finding both
// surface.
//
//holint:hotpath
func Decode(b []byte) (uint32, error) {
	if len(b) < 3 {
		//holint:allow hotpath // want `holint: //holint:allow hotpath needs a justification`
		return 0, fmt.Errorf("codec: short buffer") // want `hotpath: fmt.Errorf in //holint:hotpath function Decode allocates on every call`
	}
	return uint32(b[0])<<16 | uint32(b[1])<<8 | uint32(b[2]), nil
}
