// Package otr is a fixture: suppression discipline on the pure-step
// contract (package-level functions of an algorithm package are
// roots).
package otr

import "time"

// Boot carries a justified suppression.
func Boot() int64 {
	//holint:allow purestep fixture: startup-only timestamp, outside the replayed step path
	return time.Now().UnixNano()
}

// Tick carries a suppression with no justification: the hole itself
// and the unsuppressed finding both surface.
func Tick() int64 {
	//holint:allow purestep // want `holint: //holint:allow purestep needs a justification`
	return time.Now().UnixNano() // want `purestep: .*calls time\.Now`
}
