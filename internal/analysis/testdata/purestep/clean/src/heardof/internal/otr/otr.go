// Package otr is a fixture: a pure algorithm package (clean control).
package otr

// Inst is the fixture instance; every method is a pure fold.
type Inst struct {
	est     string
	decided bool
}

// Send emits the current estimate.
func (i *Inst) Send(round int) string { return i.est }

// Transition folds the inbox deterministically.
func (i *Inst) Transition(round int, inbox []string) {
	for _, m := range inbox {
		if m > i.est {
			i.est = m
		}
	}
	if len(inbox) > 2 {
		i.decided = true
	}
}

// Decided reports the decision.
func (i *Inst) Decided() (string, bool) { return i.est, i.decided }
