// Package live is a fixture: a pure protocol core (clean control).
package live

// StepResult is a step's output.
type StepResult struct{ Outbound []int }

// ReplicaCore is the fixture protocol core.
type ReplicaCore struct{ round int }

// Step is a pure function of the event.
func (rc *ReplicaCore) Step(event int) StepResult {
	rc.round++
	return StepResult{Outbound: []int{rc.round + event}}
}
