// Package shell is a fixture: impure code OUTSIDE the pure-step roots
// stays legal — the shell's whole job is goroutines and clocks.
package shell

import "time"

// Shell pumps events; it is not a root and nothing roots reach it.
type Shell struct{ events chan int }

// Run spawns the pump.
func (s *Shell) Run() {
	go func() {
		for range s.events {
			_ = time.Now()
		}
	}()
}
