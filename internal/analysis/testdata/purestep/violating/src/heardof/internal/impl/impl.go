// Package impl is a fixture: a core.Instance implementation OUTSIDE
// the algorithm packages, rooted purely through the Implements check.
package impl

// Impl implements core.Instance structurally.
type Impl struct{ ch chan int }

// Send pushes onto a channel.
func (m *Impl) Send(round int) string {
	m.ch <- round // want `purestep: .*sends on a channel`
	return ""
}

// Transition receives from a channel and reaches a select through a
// helper method.
func (m *Impl) Transition(round int, inbox []string) {
	<-m.ch // want `purestep: .*receives from a channel`
	m.wait()
}

// Decided closes the channel.
func (m *Impl) Decided() (string, bool) {
	close(m.ch) // want `purestep: .*closes a channel`
	return "", false
}

// wait is reached from Transition, not itself a root.
func (m *Impl) wait() {
	select { // want `purestep: .*selects on channels`
	default:
	}
}
