// Package otr is a fixture: an algorithm package with seeded
// impurity, including I/O reached two static hops from a root.
package otr

import (
	"os"
	"time"
)

// Inst is the fixture instance.
type Inst struct{ decided bool }

// Send is a root; it reads the wall clock.
func (i *Inst) Send(round int) string {
	_ = time.Now() // want `purestep: .*calls time\.Now`
	return "m"
}

// Transition is a root; it spawns a goroutine and reaches file I/O
// through a helper chain.
func (i *Inst) Transition(round int, inbox []string) {
	go audit(inbox) // want `purestep: .*spawns a goroutine`
	audit(inbox)
}

// Decided is pure.
func (i *Inst) Decided() (string, bool) { return "", i.decided }

// audit reaches os.WriteFile transitively.
func audit(inbox []string) { persist(inbox) }

func persist(inbox []string) {
	os.WriteFile("audit", []byte("x"), 0o644) // want `purestep: .*calls os\.WriteFile`
}
