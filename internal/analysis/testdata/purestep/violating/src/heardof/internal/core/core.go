// Package core is a fixture: the Instance contract interface whose
// implementations are pure-step roots.
package core

// Instance is the fixture HO instance interface.
type Instance interface {
	Send(round int) string
	Transition(round int, inbox []string)
	Decided() (string, bool)
}
