// Package live is a fixture: a ReplicaCore whose Step method touches
// channels.
package live

// ReplicaCore is the fixture protocol core; its methods are roots.
type ReplicaCore struct{ n int }

// Step makes and drains a channel.
func (rc *ReplicaCore) Step(events chan int) int {
	acks := make(chan int, rc.n) // want `purestep: .*makes a channel`
	total := 0
	for v := range events { // want `purestep: .*ranges over a channel`
		total += v
	}
	_ = acks
	return total
}
