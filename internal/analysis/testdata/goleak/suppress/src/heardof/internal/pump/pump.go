// Package pump is a fixture: suppression discipline for goleak.
package pump

// Pump carries one justified and one reasonless suppression.
type Pump struct {
	in  chan int
	out chan int
}

// StartDaemon runs for the process lifetime by design.
func (p *Pump) StartDaemon() {
	//holint:allow goleak fixture: process-lifetime daemon, torn down by exit
	go func() {
		for v := range p.in {
			p.out <- v
		}
	}()
}

// StartBare suppresses without a reason: the hole and the finding both
// surface.
func (p *Pump) StartBare() {
	//holint:allow goleak // want `holint: //holint:allow goleak needs a justification`
	go func() { // want `goleak: long-running goroutine is not tracked by a sync.WaitGroup.Done`
		for v := range p.in {
			p.out <- v
		}
	}()
}
