// Package pump is a fixture: the clean controls for goleak — every
// goroutine either terminates visibly and is awaited, or is a bounded
// helper that needs no tracking.
package pump

import (
	"context"
	"sync"
)

// Pump tears down cleanly.
type Pump struct {
	in   chan int
	out  chan int
	done chan struct{}
	wg   sync.WaitGroup
}

// Start launches a tracked loop that returns on the close signal.
func (p *Pump) Start(ctx context.Context) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for {
			select {
			case v := <-p.in:
				p.out <- v
			case <-ctx.Done():
				return
			}
		}
	}()
}

// StartDrain ranges over the input channel (ends when in closes) and is
// awaited through the WaitGroup.
func (p *Pump) StartDrain() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for v := range p.in {
			p.out <- v
		}
	}()
}

// StartBreak exits its loop with a loop-targeted break.
func (p *Pump) StartBreak() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for {
			v, ok := <-p.in
			if !ok {
				break
			}
			p.out <- v
		}
	}()
}

// StartOnce launches a bounded helper: one send, then it returns —
// no loop, so no WaitGroup needed.
func (p *Pump) StartOnce(v int) {
	go func() { p.out <- v }()
}

// Close stops the pump and awaits every tracked goroutine.
func (p *Pump) Close() {
	close(p.done)
	close(p.in)
	p.wg.Wait()
}
