// Package pump is a fixture: goroutines with no statically visible
// termination path.
package pump

import "sync"

// Pump leaks in three distinct shapes.
type Pump struct {
	in  chan int
	out chan int
	wg  sync.WaitGroup
}

// Start launches a bare spin loop: no exit at all.
func (p *Pump) Start() {
	go func() {
		for { // want `goleak: goroutine launched at pump.go:16 runs an unconditional loop with no exit path`
			p.out <- <-p.in
		}
	}()
}

// StartSelect launches the classic select leak: the unlabeled break
// exits the select, never the loop.
func (p *Pump) StartSelect() {
	go func() {
		for { // want `goleak: .* unconditional loop with no exit path`
			select {
			case v := <-p.in:
				if v < 0 {
					break
				}
				p.out <- v
			}
		}
	}()
}

// run is the named-function variant of the same leak.
func (p *Pump) run() {
	for { // want `goleak: .* unconditional loop with no exit path`
		p.out <- <-p.in
	}
}

// StartNamed reaches run through the static call graph.
func (p *Pump) StartNamed() {
	go p.run()
}

// StartUntracked has an exit path (the range ends when in closes) but
// nothing a Close can wait on.
func (p *Pump) StartUntracked() {
	go func() { // want `goleak: long-running goroutine is not tracked by a sync.WaitGroup.Done`
		for v := range p.in {
			p.out <- v
		}
	}()
}
