// Package sweep is a fixture: suppression discipline for
// nodeterminism — a justified //holint:allow silences a finding, a
// reasonless one is itself a finding and suppresses nothing.
package sweep

// MaxKey is an order-insensitive fold, justified.
func MaxKey(m map[int]int) int {
	best := 0
	//holint:allow nodeterminism commutative max fold; iteration order cannot change the result
	for k := range m {
		if k > best {
			best = k
		}
	}
	return best
}

// Sum carries a suppression with no justification: both the hole and
// the unsuppressed finding surface.
func Sum(m map[int]int) int {
	total := 0
	//holint:allow nodeterminism // want `holint: //holint:allow nodeterminism needs a justification`
	for k := range m { // want `nodeterminism: map iteration order is nondeterministic`
		total += k
	}
	return total
}
