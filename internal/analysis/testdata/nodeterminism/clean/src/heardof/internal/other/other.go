// Package other is a fixture: map iteration outside the
// determinism-contract packages stays legal.
package other

// Count folds a map; this package is not under the byte-identical
// output contract, so the unordered range is fine.
func Count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
