// Package sweep is a fixture: the clean control for a
// determinism-contract package — ordered folds, duration arithmetic
// without clock reads.
package sweep

import "time"

// Sum folds a slice in index order.
func Sum(vs []int) int {
	total := 0
	for _, v := range vs {
		total += v
	}
	return total
}

// Stretch does duration arithmetic: time TYPES are legal, clock READS
// are not.
func Stretch(d time.Duration) time.Duration { return 2 * d }
