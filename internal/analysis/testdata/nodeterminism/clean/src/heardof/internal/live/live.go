// Package live is a fixture: the live layer's clocks are exempt — its
// whole point is real time.
package live

import "time"

// Uptime reads the wall clock legally.
func Uptime(start time.Time) time.Duration { return time.Since(start) }
