// Package sweep is a fixture: a determinism-contract package with
// seeded violations (unordered map fold, wall clock, ambient entropy).
package sweep

import (
	"math/rand" // want `nodeterminism: import of math/rand`
	"time"
)

// Sum folds a map in iteration order.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m { // want `nodeterminism: map iteration order is nondeterministic`
		total += v
	}
	return total
}

// Stamp reads the wall clock.
func Stamp() int64 {
	return time.Now().UnixNano() // want `nodeterminism: time.Now reads the wall clock`
}

// Draw uses ambient entropy (flagged at the import, not per call).
func Draw() int { return rand.Intn(10) }
