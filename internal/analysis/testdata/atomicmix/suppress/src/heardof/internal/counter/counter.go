// Package counter is a fixture: suppression discipline for atomicmix.
package counter

import "sync/atomic"

// Stats is written plainly only in the constructor, before the value
// is shared — a justified suppression.
type Stats struct {
	ops uint64
}

// New seeds the counter before any goroutine can see the value.
func New(seed uint64) *Stats {
	s := &Stats{}
	//holint:allow atomicmix fixture: s is not yet shared, the store cannot race
	s.ops = seed
	return s
}

// Record bumps atomically.
func (s *Stats) Record() { atomic.AddUint64(&s.ops, 1) }

// Drain resets plainly with a reasonless suppression: the hole and the
// finding both surface.
func (s *Stats) Drain() uint64 {
	//holint:allow atomicmix // want `holint: //holint:allow atomicmix needs a justification`
	old := s.ops // want `atomicmix: ops is accessed via sync/atomic`
	return old
}
