// Package counter is a fixture: variables accessed atomically in one
// place and plainly in another.
package counter

import "sync/atomic"

// Stats mixes atomic increments with plain reads.
type Stats struct {
	ops  uint64
	errs uint64
}

// Record bumps the counters atomically.
func (s *Stats) Record(failed bool) {
	atomic.AddUint64(&s.ops, 1)
	if failed {
		atomic.AddUint64(&s.errs, 1)
	}
}

// Snapshot reads them plainly: a data race against Record.
func (s *Stats) Snapshot() (uint64, uint64) {
	return s.ops, s.errs // want `atomicmix: ops is accessed via sync/atomic` `atomicmix: errs is accessed via sync/atomic`
}

// Reset writes plainly: the same race on the store side.
func (s *Stats) Reset() {
	s.ops = 0 // want `atomicmix: ops is accessed via sync/atomic`
}

// seq is a package-level var with the same mix.
var seq uint64

// Next claims a sequence number atomically.
func Next() uint64 { return atomic.AddUint64(&seq, 1) }

// Peek reads it plainly.
func Peek() uint64 {
	return seq // want `atomicmix: seq is accessed via sync/atomic`
}
