// Package counter is a fixture: the clean control for atomicmix —
// all-atomic access, typed atomics, and plain variables never touched
// by sync/atomic all stay legal.
package counter

import "sync/atomic"

// Stats keeps every access to its counters atomic.
type Stats struct {
	ops   uint64
	total atomic.Uint64 // typed atomic: the mix is unrepresentable
}

// Record bumps atomically.
func (s *Stats) Record() {
	atomic.AddUint64(&s.ops, 1)
	s.total.Add(1)
}

// Snapshot reads atomically.
func (s *Stats) Snapshot() (uint64, uint64) {
	return atomic.LoadUint64(&s.ops), s.total.Load()
}

// plainSeq is never accessed through sync/atomic, so plain access is
// fine (whatever guards it is out of this analyzer's scope).
var plainSeq uint64

// NextPlain increments under the caller's lock.
func NextPlain() uint64 {
	plainSeq++
	return plainSeq
}
