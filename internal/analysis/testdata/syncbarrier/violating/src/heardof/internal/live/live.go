// Package live is a fixture: dispatch paths that let a step's output
// escape before the Persister.Sync write-ahead barrier.
package live

// Envelope is a wire message.
type Envelope struct{ To int }

// Transport carries envelopes.
type Transport interface {
	Send(e Envelope)
}

// Persister is the durability interface.
type Persister interface {
	Sync() error
}

// StepResult is a step's output.
type StepResult struct {
	Outbound []Envelope
	Acked    bool
}

// ReplicaCore is the fixture protocol core.
type ReplicaCore struct{ round int }

// Step advances the core.
func (rc *ReplicaCore) Step() StepResult {
	rc.round++
	return StepResult{Outbound: []Envelope{{To: rc.round}}}
}

// Replica is the shell.
type Replica struct {
	core ReplicaCore
	tr   Transport
	disk Persister
	acks chan bool
}

// dispatchLeaky sends before the barrier.
func (r *Replica) dispatchLeaky() {
	res := r.core.Step()
	for _, e := range res.Outbound {
		r.tr.Send(e) // want `syncbarrier: envelope leaves \(Transport\.Send\)`
	}
	r.disk.Sync()
}

// dispatchAckLeak acks before the barrier.
func (r *Replica) dispatchAckLeak() {
	res := r.core.Step()
	r.acks <- res.Acked // want `syncbarrier: ack leaves \(channel send\)`
	r.disk.Sync()
}

// dispatchViaHelper reaches the transport through a helper.
func (r *Replica) dispatchViaHelper() {
	res := r.core.Step()
	r.broadcast(res.Outbound) // want `syncbarrier: envelope leaves \(via broadcast\)`
	r.disk.Sync()
}

// dispatchNoBarrier never syncs at all.
func (r *Replica) dispatchNoBarrier() {
	res := r.core.Step()
	r.broadcast(res.Outbound) // want `syncbarrier: envelope leaves \(via broadcast\)`
}

// broadcast hands envelopes to the transport.
func (r *Replica) broadcast(out []Envelope) {
	for _, e := range out {
		r.tr.Send(e)
	}
}
