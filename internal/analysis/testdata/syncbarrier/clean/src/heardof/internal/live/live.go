// Package live is a fixture: the clean control for syncbarrier — the
// barrier lands between the step and every visible effect.
package live

// Envelope is a wire message.
type Envelope struct{ To int }

// Transport carries envelopes.
type Transport interface {
	Send(e Envelope)
}

// Persister is the durability interface.
type Persister interface {
	Sync() error
}

// StepResult is a step's output.
type StepResult struct {
	Outbound []Envelope
	Acked    bool
}

// ReplicaCore is the fixture protocol core.
type ReplicaCore struct{ round int }

// Step advances the core.
func (rc *ReplicaCore) Step() StepResult {
	rc.round++
	return StepResult{Outbound: []Envelope{{To: rc.round}}}
}

// Replica is the shell.
type Replica struct {
	core ReplicaCore
	tr   Transport
	disk Persister
	acks chan bool
}

// dispatch applies the barrier (nil-guarded, as production does)
// before any envelope or ack leaves.
func (r *Replica) dispatch() {
	res := r.core.Step()
	if r.disk != nil {
		r.disk.Sync()
	}
	for _, e := range res.Outbound {
		r.tr.Send(e)
	}
	r.acks <- res.Acked
}

// broadcastOnly never steps the core: not a dispatch path, sends are
// unconstrained.
func (r *Replica) broadcastOnly(out []Envelope) {
	for _, e := range out {
		r.tr.Send(e)
	}
}
