// Package live is a fixture: suppression discipline for syncbarrier.
package live

// Envelope is a wire message.
type Envelope struct{ To int }

// Transport carries envelopes.
type Transport interface {
	Send(e Envelope)
}

// Persister is the durability interface.
type Persister interface {
	Sync() error
}

// ReplicaCore is the fixture protocol core.
type ReplicaCore struct{ round int }

// Step advances the core.
func (rc *ReplicaCore) Step() int {
	rc.round++
	return rc.round
}

// Replica is the shell.
type Replica struct {
	core ReplicaCore
	tr   Transport
	disk Persister
}

// dispatchMetrics carries a justified suppression.
func (r *Replica) dispatchMetrics() {
	r.core.Step()
	//holint:allow syncbarrier fixture: metrics envelope, carries no protocol state
	r.tr.Send(Envelope{})
	r.disk.Sync()
}

// dispatchBare carries a reasonless suppression: the hole and the
// unsuppressed finding both surface.
func (r *Replica) dispatchBare() {
	r.core.Step()
	//holint:allow syncbarrier // want `holint: //holint:allow syncbarrier needs a justification`
	r.tr.Send(Envelope{}) // want `syncbarrier: envelope leaves \(Transport\.Send\)`
	r.disk.Sync()
}
