// Package live is a fixture: the clean controls for lockorder — locks
// released before blocking, non-blocking channel ops under a lock, a
// consistent two-lock order, and a conditional early unlock whose
// fall-through path stays correctly locked.
package live

import "sync"

// Envelope is the wire unit.
type Envelope struct{ Payload []byte }

// Transport moves envelopes (mirrors the real live.Transport).
type Transport interface {
	Send(to int, env Envelope) error
	Close() error
}

// Persister makes protocol facts durable (mirrors live.Persister).
type Persister interface {
	Sync() error
}

// Node releases its mutex before every blocking operation.
type Node struct {
	mu      sync.Mutex
	seq     int
	tr      Transport
	persist Persister
	acks    chan int
}

// Dispatch snapshots under the lock, then blocks unlocked.
func (n *Node) Dispatch(env Envelope) error {
	n.mu.Lock()
	n.seq++
	to := n.seq
	n.mu.Unlock()
	if err := n.tr.Send(to, env); err != nil {
		return err
	}
	return n.persist.Sync()
}

// TryAck performs a non-blocking send under the lock: select with a
// default never stalls, so holding the lock is legal.
func (n *Node) TryAck(id int) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	select {
	case n.acks <- id:
		return true
	default:
		return false
	}
}

// Drop closes the channel under the lock: close never blocks.
func (n *Node) Drop() {
	n.mu.Lock()
	defer n.mu.Unlock()
	close(n.acks)
}

// Submit unlocks early on the duplicate path and sends only after the
// main path's unlock: neither send happens while locked.
func (n *Node) Submit(id int) {
	n.mu.Lock()
	if id == n.seq {
		n.mu.Unlock()
		n.acks <- id
		return
	}
	n.seq = id
	n.mu.Unlock()
	n.acks <- id
}

// Pair takes its two locks in one global order on every path.
type Pair struct {
	a, b sync.Mutex
}

// First nests b under a.
func (p *Pair) First() {
	p.a.Lock()
	p.b.Lock()
	p.b.Unlock()
	p.a.Unlock()
}

// Second uses the same order: no cycle.
func (p *Pair) Second() {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock()
	defer p.b.Unlock()
}
