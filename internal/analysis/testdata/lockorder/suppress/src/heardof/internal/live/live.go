// Package live is a fixture: suppression discipline for lockorder.
package live

import "sync"

// Persister makes protocol facts durable (mirrors live.Persister).
type Persister interface {
	Sync() error
}

// Node holds the lock across its write-ahead barrier by design.
type Node struct {
	mu      sync.Mutex
	persist Persister
	acks    chan int
}

// Dispatch carries the justified suppression: the barrier must be
// atomic with the step it persists.
func (n *Node) Dispatch() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	//holint:allow lockorder fixture: the sync barrier is atomic with the step by design
	return n.persist.Sync()
}

// Ack suppresses without a reason: the hole and the finding both
// surface.
func (n *Node) Ack(id int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	//holint:allow lockorder // want `holint: //holint:allow lockorder needs a justification`
	n.acks <- id // want `lockorder: holds mu across a blocking channel send`
}
