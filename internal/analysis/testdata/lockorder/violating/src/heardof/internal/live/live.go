// Package live is a fixture: mutexes held across blocking operations
// and a cyclic acquisition order.
package live

import "sync"

// Envelope is the wire unit.
type Envelope struct{ Payload []byte }

// Transport moves envelopes (mirrors the real live.Transport).
type Transport interface {
	Send(to int, env Envelope) error
	Close() error
}

// Persister makes protocol facts durable (mirrors live.Persister).
type Persister interface {
	Sync() error
}

// Node holds its mutex across every blocking shape.
type Node struct {
	mu      sync.Mutex
	tr      Transport
	persist Persister
	acks    chan int
	stop    chan struct{}
}

// Dispatch sends and syncs under the lock.
func (n *Node) Dispatch(env Envelope) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.tr.Send(1, env); err != nil { // want `lockorder: holds mu across Transport.Send`
		return err
	}
	return n.persist.Sync() // want `lockorder: holds mu across Persister.Sync`
}

// Ack performs a plain channel send while locked.
func (n *Node) Ack(id int) {
	n.mu.Lock()
	n.acks <- id // want `lockorder: holds mu across a blocking channel send`
	n.mu.Unlock()
}

// Wait blocks on a receive and a bare select while locked.
func (n *Node) Wait() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	select { // want `lockorder: holds mu across a blocking select`
	case v := <-n.acks:
		return v
	case <-n.stop:
		return 0
	}
}

// emit reaches Transport.Send one call deep.
func (n *Node) emit(env Envelope) { n.tr.Send(2, env) }

// Flush holds the lock across a call that reaches a blocking op.
func (n *Node) Flush(env Envelope) {
	n.mu.Lock()
	n.emit(env) // want `lockorder: holds mu across a call to emit, which reaches Transport.Send`
	n.mu.Unlock()
}

// Pair seeds the two halves of a lock-order cycle.
type Pair struct {
	a, b sync.Mutex
}

// LeftRight takes a then b.
func (p *Pair) LeftRight() {
	p.a.Lock()
	p.b.Lock() // want `lockorder: acquiring b while holding a closes a lock-order cycle`
	p.b.Unlock()
	p.a.Unlock()
}

// RightLeft takes b then a: the opposite order.
func (p *Pair) RightLeft() {
	p.b.Lock()
	p.a.Lock() // want `lockorder: acquiring a while holding b closes a lock-order cycle`
	p.a.Unlock()
	p.b.Unlock()
}

// Recurse re-locks a mutex it already holds.
func (p *Pair) Recurse() {
	p.a.Lock()
	defer p.a.Unlock()
	p.a.Lock() // want `lockorder: a is locked while already held: self-deadlock`
	p.a.Unlock()
}
