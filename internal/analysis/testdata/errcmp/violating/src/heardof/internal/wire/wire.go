// Package wire is a fixture: sentinel errors matched with == / != /
// switch, the comparisons that silently break once a call site wraps.
package wire

import "errors"

// ErrClosed is the package sentinel.
var ErrClosed = errors.New("wire: closed")

// IsClosed matches the sentinel the fragile way.
func IsClosed(err error) bool {
	return err == ErrClosed // want `errcmp: == comparison against sentinel ErrClosed`
}

// Open reports non-closed errors.
func Open(err error) bool {
	if ErrClosed != err { // want `errcmp: != comparison against sentinel ErrClosed`
		return true
	}
	return false
}

// Classify switches on the error value.
func Classify(err error) string {
	switch err {
	case ErrClosed: // want `errcmp: switch case matches sentinel ErrClosed`
		return "closed"
	case nil:
		return "ok"
	}
	return "other"
}
