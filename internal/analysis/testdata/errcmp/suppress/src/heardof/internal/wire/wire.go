// Package wire is a fixture: suppression discipline for errcmp.
package wire

import "errors"

// ErrMarker is a sentinel never wrapped by construction.
var ErrMarker = errors.New("wire: marker")

// IsMarker carries a justified suppression.
func IsMarker(err error) bool {
	//holint:allow errcmp fixture: identity marker, never wrapped by construction
	return err == ErrMarker
}

// HasMarker carries a reasonless suppression: the hole and the
// unsuppressed finding both surface.
func HasMarker(err error) bool {
	//holint:allow errcmp // want `holint: //holint:allow errcmp needs a justification`
	return err == ErrMarker // want `errcmp: == comparison against sentinel ErrMarker`
}
