// Package wire is a fixture: the clean control for errcmp —
// errors.Is, nil checks, and non-sentinel comparisons all stay legal.
package wire

import "errors"

// ErrClosed is the package sentinel.
var ErrClosed = errors.New("wire: closed")

// IsClosed matches through errors.Is.
func IsClosed(err error) bool { return errors.Is(err, ErrClosed) }

// Done treats nil specially; == nil is not a sentinel comparison.
func Done(err error) bool { return err == nil }

// SameCode compares non-error values.
func SameCode(a, b int) bool { return a == b }

// matches compares two locals: neither side is a package-level
// sentinel, so identity comparison is the caller's business.
func matches(err, target error) bool { return err == target }
