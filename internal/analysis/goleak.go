// goleak enforces statically visible termination for every goroutine
// the module launches. The live layer's shutdown story (Replica.Stop,
// TCPTransport.Close, the live-smoke kill -9 scenario) depends on every
// background goroutine both HAVING an exit path and being AWAITED by
// whoever tears it down; the pipelining work multiplies the launch
// sites. Two rules, checked over the static call graph reachable from
// each `go` statement:
//
//  1. Exit path: every unconditional loop (`for {}`, `for ;; {}`)
//     reachable from the goroutine must contain a way out — a return, or
//     a break that targets that loop. A `for { select { ... } }` whose
//     cases never return is the classic leak shape this kills; an
//     unlabeled break inside a select case exits the select, not the
//     loop, and deliberately does not count. A range over a channel
//     needs no exit: it ends when the channel closes.
//
//  2. Observability: a long-running goroutine — one whose reachable
//     body contains an unconditional loop or a range over a channel —
//     must be tracked by a sync.WaitGroup.Done (usually deferred) so a
//     Close/Stop can await its exit. Bounded helpers (a goroutine that
//     sends one value and returns) need no tracking.
//
// Calls through interfaces and function values are not chased: the
// boundary is the same declared one purestep uses. A goroutine whose
// launch expression cannot be resolved statically is skipped, not
// flagged.

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"
)

// GoLeak is the goroutine-termination analyzer.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc: "flags go statements whose goroutine has no statically visible " +
		"termination path (an unconditional loop with no exit, or a " +
		"long-running goroutine no WaitGroup.Done makes awaitable)",
	ProgramWide: true,
	Run:         runGoLeak,
}

func runGoLeak(pass *Pass) {
	for _, pkg := range pass.Prog.Pkgs {
		if !inModule(pkg.Path) {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				checkGoStmt(pass, pkg, gs)
				return true
			})
		}
	}
}

// goTarget resolves the body a go statement runs: a literal's body
// directly, or the declaration of a statically known callee.
func goTarget(prog *Program, pkg *Package, call *ast.CallExpr) *ast.BlockStmt {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	if fn := calleeOf(pkg.Info, call); fn != nil && !isInterfaceMethod(fn) {
		if fs, ok := prog.FuncDecl(fn); ok {
			return fs.Decl.Body
		}
	}
	return nil
}

// checkGoStmt applies both goleak rules to one launch site.
func checkGoStmt(pass *Pass, pkg *Package, gs *ast.GoStmt) {
	body := goTarget(pass.Prog, pkg, gs.Call)
	if body == nil {
		return // dynamic launch: declared boundary
	}
	w := &leakWalk{prog: pass.Prog, seen: make(map[*ast.BlockStmt]bool)}
	w.walk(body, pkg)

	for _, pos := range w.endless {
		pass.Reportf(pos, "goroutine launched at %s runs an unconditional loop with no exit path: return on a close signal (ctx.Done or a closed channel), or range over the input channel (goroutine leak)", relPosition(pass.Prog.Fset.Position(gs.Pos())))
	}
	if len(w.endless) == 0 && w.longRunning && !w.hasDone {
		pass.Reportf(gs.Pos(), "long-running goroutine is not tracked by a sync.WaitGroup.Done: Close/Stop cannot await its exit (goroutine leak on teardown)")
	}
}

// relPosition renders a position basename:line for diagnostics that
// reference a second location (full paths vary by checkout).
func relPosition(p token.Position) string {
	return filepath.Base(p.Filename) + ":" + strconv.Itoa(p.Line)
}

// leakWalk accumulates facts over the bodies statically reachable from
// one go statement.
type leakWalk struct {
	prog *Program
	seen map[*ast.BlockStmt]bool
	// endless are reachable unconditional loops with no exit.
	endless []token.Pos
	// longRunning is set by any unconditional loop or channel range.
	longRunning bool
	// hasDone is set by a reachable sync.WaitGroup.Done call.
	hasDone bool
}

func (w *leakWalk) walk(body *ast.BlockStmt, pkg *Package) {
	if body == nil || w.seen[body] {
		return
	}
	w.seen[body] = true
	info := pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false // a nested goroutine is its own launch site
		case *ast.ForStmt:
			if n.Cond == nil {
				w.longRunning = true
				if !loopHasExit(n) {
					w.endless = append(w.endless, n.Pos())
				}
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					w.longRunning = true // exits when the channel closes, but lives as long as it
				}
			}
		case *ast.CallExpr:
			fn := calleeOf(info, n)
			if fn == nil {
				return true
			}
			if funcPkgPath(fn) == "sync" && fn.Name() == "Done" {
				if named := recvNamed(fn); named != nil && named.Obj().Name() == "WaitGroup" {
					w.hasDone = true
				}
			}
			if inModule(funcPkgPath(fn)) && !isInterfaceMethod(fn) {
				if fs, ok := w.prog.FuncDecl(fn); ok {
					w.walk(fs.Decl.Body, fs.Pkg)
				}
			}
		}
		return true
	})
}

// loopHasExit reports whether an unconditional for loop contains a way
// out: a return, or a break/goto that leaves the loop. Unlabeled breaks
// bind to the innermost for/switch/select, so one inside a nested
// select exits the select, not this loop — the classic leak.
func loopHasExit(loop *ast.ForStmt) bool {
	found := false
	var scan func(n ast.Node, breakable bool)
	scan = func(n ast.Node, breakable bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if found || m == nil {
				return false
			}
			switch m := m.(type) {
			case *ast.FuncLit:
				return false // its returns do not exit this loop
			case *ast.ReturnStmt:
				found = true
				return false
			case *ast.BranchStmt:
				switch m.Tok {
				case token.BREAK:
					if breakable || m.Label != nil {
						found = true
					}
				case token.GOTO:
					found = true // may jump past the loop: benefit of the doubt
				}
				return false
			case *ast.ForStmt:
				scan(m.Body, false)
				return false
			case *ast.RangeStmt:
				scan(m.Body, false)
				return false
			case *ast.SwitchStmt:
				scan(m.Body, false)
				return false
			case *ast.TypeSwitchStmt:
				scan(m.Body, false)
				return false
			case *ast.SelectStmt:
				scan(m.Body, false)
				return false
			}
			return true
		})
	}
	scan(loop.Body, true)
	return found
}
