// The fixture harness behind the holint test suite, mirroring
// golang.org/x/tools/go/analysis/analysistest without the dependency.
// A fixture is a GOPATH-shaped tree — testdata/<case>/src/<import
// path>/*.go — whose files carry expectations as trailing comments:
//
//	for k := range m { // want `nodeterminism: map iteration`
//
// Each `// want` holds one or more quoted regular expressions; every
// expectation must be matched by a diagnostic on its line, and every
// diagnostic must be claimed by an expectation, so a fixture pins the
// analyzer's findings exactly — seeded violations must be killed and
// clean controls must stay silent. Expectations are matched against
// "analyzer: message" so a fixture can pin which analyzer fired.
//
// Fixture import paths may (and for path-scoped analyzers must) shadow
// real module paths like heardof/internal/live: fixture packages
// resolve against each other first and the standard library's export
// data second, never against the real repository, so a fixture can
// seed violations into a miniature copy of a contract package.

package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// TB is the subset of testing.TB the harness reports through (an
// interface so the package itself does not import testing).
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// expectation is one parsed `// want` regexp, anchored to a file:line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// RunFixture loads the fixture tree rooted at dir (dir/src/<import
// path>/*.go), runs the analyzers over it, and compares the resulting
// diagnostics against the fixture's `// want` expectations.
func RunFixture(tb TB, dir string, analyzers ...*Analyzer) {
	tb.Helper()
	prog, wants, err := loadFixture(dir)
	if err != nil {
		tb.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags := Run(prog, analyzers)

	for _, d := range diags {
		got := d.Analyzer + ": " + d.Message
		claimed := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(got) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			tb.Errorf("%s: unexpected diagnostic: %s", posLabel(d.Pos.Filename, d.Pos.Line, dir), got)
		}
	}
	for _, w := range wants {
		if !w.matched {
			tb.Errorf("%s: no diagnostic matched `%s`", posLabel(w.file, w.line, dir), w.re)
		}
	}
}

// posLabel renders a fixture-relative file:line for failure messages.
func posLabel(file string, line int, dir string) string {
	if rel, err := filepath.Rel(dir, file); err == nil {
		file = rel
	}
	return fmt.Sprintf("%s:%d", file, line)
}

// wantRe splits a source line into code and its `// want` suffix;
// wantArgRe tokenizes the suffix's quoted regexps (backquoted or
// double-quoted).
var (
	wantRe    = regexp.MustCompile(`//\s*want\s+(.*)$`)
	wantArgRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")
)

// extractWants parses a fixture file's expectations and blanks them
// out of the returned source (preserving byte offsets), so that a
// `// want` trailing a //holint:allow directive never becomes part of
// the directive's reason text.
func extractWants(filename string, src []byte) ([]byte, []*expectation, error) {
	var wants []*expectation
	out := append([]byte(nil), src...)
	for lineNo, line := 1, 0; line < len(out); lineNo++ {
		end := line
		for end < len(out) && out[end] != '\n' {
			end++
		}
		if loc := wantRe.FindSubmatchIndex(out[line:end]); loc != nil {
			args := string(out[line+loc[2] : line+loc[3]])
			matches := wantArgRe.FindAllStringSubmatch(args, -1)
			if len(matches) == 0 {
				return nil, nil, fmt.Errorf("%s:%d: `// want` with no quoted regexp", filename, lineNo)
			}
			for _, m := range matches {
				text := m[1]
				if m[2] != "" || (text == "" && strings.HasPrefix(m[0], `"`)) {
					unq, err := strconv.Unquote(m[0])
					if err != nil {
						return nil, nil, fmt.Errorf("%s:%d: bad want string %s: %v", filename, lineNo, m[0], err)
					}
					text = unq
				}
				re, err := regexp.Compile(text)
				if err != nil {
					return nil, nil, fmt.Errorf("%s:%d: bad want regexp: %v", filename, lineNo, err)
				}
				wants = append(wants, &expectation{file: filename, line: lineNo, re: re})
			}
			for i := line + loc[0]; i < end; i++ {
				out[i] = ' '
			}
		}
		line = end + 1
	}
	return out, wants, nil
}

// loadFixture parses and type-checks every package under dir/src,
// returning the analyzable program and the fixture's expectations.
func loadFixture(dir string) (*Program, []*expectation, error) {
	srcRoot := filepath.Join(dir, "src")
	fset := token.NewFileSet()
	files := make(map[string][]*ast.File) // import path -> parsed files
	var wants []*expectation
	var paths []string

	err := filepath.WalkDir(srcRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		rel, err := filepath.Rel(srcRoot, filepath.Dir(path))
		if err != nil {
			return err
		}
		pkgPath := filepath.ToSlash(rel)
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		blanked, w, err := extractWants(path, src)
		if err != nil {
			return err
		}
		wants = append(wants, w...)
		f, err := parser.ParseFile(fset, path, blanked, parser.ParseComments)
		if err != nil {
			return err
		}
		if len(files[pkgPath]) == 0 {
			paths = append(paths, pkgPath)
		}
		files[pkgPath] = append(files[pkgPath], f)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("no .go files under %s", srcRoot)
	}
	sort.Strings(paths)

	std, err := stdImporter(fset, files)
	if err != nil {
		return nil, nil, err
	}
	prog := &Program{Fset: fset, funcs: make(map[*types.Func]*FuncSource)}
	fl := &fixtureLoader{
		prog:    prog,
		files:   files,
		checked: make(map[string]*types.Package),
		std:     std,
	}
	for _, path := range paths {
		if _, err := fl.check(path, nil); err != nil {
			return nil, nil, err
		}
	}
	sort.Slice(prog.Pkgs, func(i, j int) bool { return prog.Pkgs[i].Path < prog.Pkgs[j].Path })
	prog.indexFuncs()
	return prog, wants, nil
}

// stdImporter builds the export-data importer covering every
// non-fixture import the fixture files mention (one `go list` call).
func stdImporter(fset *token.FileSet, files map[string][]*ast.File) (types.Importer, error) {
	external := make(map[string]bool)
	for _, fs := range files {
		for _, f := range fs {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if _, fixture := files[path]; !fixture {
					external[path] = true
				}
			}
		}
	}
	exports := make(map[string]string)
	if len(external) > 0 {
		patterns := make([]string, 0, len(external))
		for path := range external {
			patterns = append(patterns, path)
		}
		sort.Strings(patterns)
		listed, err := goList("", patterns)
		if err != nil {
			return nil, err
		}
		for _, lp := range listed {
			if lp.Export != "" {
				exports[lp.ImportPath] = lp.Export
			}
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		p, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("fixture: no export data for %q", path)
		}
		return os.Open(p)
	}
	return importer.ForCompiler(fset, "gc", lookup), nil
}

// fixtureLoader type-checks fixture packages in dependency order,
// resolving imports fixture-first, export-data second.
type fixtureLoader struct {
	prog    *Program
	files   map[string][]*ast.File
	checked map[string]*types.Package
	std     types.Importer
}

// Import implements types.Importer.
func (fl *fixtureLoader) Import(path string) (*types.Package, error) {
	if _, ok := fl.files[path]; ok {
		return fl.check(path, nil)
	}
	return fl.std.Import(path)
}

// check type-checks one fixture package (memoized).
func (fl *fixtureLoader) check(path string, stack []string) (*types.Package, error) {
	if tp, ok := fl.checked[path]; ok {
		return tp, nil
	}
	for _, s := range stack {
		if s == path {
			return nil, fmt.Errorf("fixture import cycle through %s", path)
		}
	}
	for _, f := range fl.files[path] {
		for _, imp := range f.Imports {
			dep, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if _, fixture := fl.files[dep]; fixture {
				if _, err := fl.check(dep, append(stack, path)); err != nil {
					return nil, err
				}
			}
		}
	}
	info := newTypesInfo()
	conf := types.Config{Importer: fl}
	tp, err := conf.Check(path, fl.prog.Fset, fl.files[path], info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %v", path, err)
	}
	fl.checked[path] = tp
	fl.prog.Pkgs = append(fl.prog.Pkgs, &Package{Path: path, Files: fl.files[path], Types: tp, Info: info})
	return tp, nil
}
