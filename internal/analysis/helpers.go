// AST/type-resolution helpers shared by the holint analyzers.

package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// modulePrefix scopes path-based checks to this repository's packages.
const modulePrefix = "heardof"

// calleeOf resolves a call expression's static callee to its (generic
// origin) function object. Dynamic calls through function values return
// nil; interface-method calls return the interface method.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // explicit generic instantiation f[T](...)
		if x, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = x
		} else if s, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = s.Sel
		}
	case *ast.IndexListExpr:
		if x, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = x
		} else if s, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = s.Sel
		}
	}
	if id == nil {
		return nil
	}
	if fn, ok := info.Uses[id].(*types.Func); ok {
		return fn.Origin()
	}
	return nil
}

// funcPkgPath returns the import path of the package declaring fn
// ("" for builtins).
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isInterfaceMethod reports whether fn is declared on an interface (so
// a call through it is dynamic).
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// recvNamed returns the named type of fn's receiver, dereferencing one
// pointer, or nil for non-methods.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// errorIface is the universe error interface.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t satisfies the error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}

// pkgLevelVar resolves an expression to the package-level variable it
// names (an ident or a pkg.Name selector), or nil.
func pkgLevelVar(info *types.Info, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil
	}
	return v
}

// inModule reports whether an import path belongs to this repository.
func inModule(path string) bool {
	return path == modulePrefix || strings.HasPrefix(path, modulePrefix+"/")
}
