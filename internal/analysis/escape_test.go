package analysis

import (
	"strings"
	"testing"
)

// escapeModule is a throwaway module exercising the compiler-backed
// hotpath gate: one clean annotated function, one annotated function
// that forces a heap escape, one suppressed escape, and one
// unannotated function whose escapes must not be flagged.
var escapeModule = map[string]string{
	"go.mod": "module escgate\n\ngo 1.24\n",
	"hot/hot.go": `// Package hot pins functions for the escape gate test.
package hot

// Sum stays on the stack: the gate must pass it.
//
//holint:hotpath
func Sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// Leak forces the classic escape: returning the address of a local
// moves it to the heap. The gate must fail on it.
//
//holint:hotpath
func Leak() *int {
	x := 42
	return &x
}

// Quiet carries a justified suppression for the same shape.
//
//holint:hotpath
func Quiet() *int {
	//holint:allow hotpath escape-gate fixture: one-shot init path, measured cold
	y := 7
	return &y
}

// Cold is unannotated: its escape is nobody's business.
func Cold() *int {
	z := 9
	return &z
}
`,
}

// TestEscapeGateFlagsForcedEscape proves both acceptance directions of
// `holint -escape`: a deliberate escape inside a //holint:hotpath
// function fails the gate, while clean, suppressed, and unannotated
// functions pass.
func TestEscapeGateFlagsForcedEscape(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the compiler")
	}
	dir := t.TempDir()
	writeTree(t, dir, escapeModule)

	diags, err := CheckEscapes(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly the Leak escape: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "hotpath" {
		t.Errorf("analyzer = %q, want hotpath", d.Analyzer)
	}
	if !strings.Contains(d.Message, "Leak") || !strings.Contains(d.Message, "moved to heap") {
		t.Errorf("message = %q, want it to name Leak and the compiler's moved-to-heap diagnostic", d.Message)
	}
}

// TestRepositoryEscapeClean runs the compiler gate over the repository
// — the same check CI's lint job applies through `holint -escape` —
// so every committed //holint:hotpath annotation is verified
// allocation-free (or carries a reasoned suppression).
func TestRepositoryEscapeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module compile")
	}
	diags, err := CheckEscapes("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
