// The package loader behind holint: an offline, dependency-free stand-in
// for golang.org/x/tools/go/packages. It shells out to `go list -export
// -deps` once for the package graph, type-checks the module's own
// packages from source (the analyzers need ASTs with full type
// information), and resolves every out-of-module import — the standard
// library — through the compiler's export data, so a run needs neither
// network access nor a populated module cache.

package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one type-checked module package under analysis.
type Package struct {
	// Path is the package's import path (e.g. heardof/internal/live).
	Path string
	// Files are the package's parsed non-test sources, with comments.
	Files []*ast.File
	// Types and Info carry the go/types results for Files.
	Types *types.Package
	Info  *types.Info
}

// Program is a load result: every module package matched by the load
// patterns, type-checked, plus the indexes program-wide analyzers need.
type Program struct {
	Fset *token.FileSet
	// Pkgs holds the module packages in a deterministic (path) order.
	Pkgs []*Package
	// Skipped lists packages the loader could not analyze — a parse or
	// type error in the package or one of its dependencies — each with
	// a note saying why. A broken package degrades to a skip so one
	// rotten dependency does not silence the analyzers for the whole
	// module; callers that need full coverage (CI, the repository
	// cleanliness test) must check this list is empty.
	Skipped []Skip

	funcs map[*types.Func]*FuncSource
}

// Skip records one package the loader dropped and why.
type Skip struct {
	Path string
	Note string
}

// FuncSource locates a function declaration in the program.
type FuncSource struct {
	Pkg  *Package
	Decl *ast.FuncDecl
}

// FuncDecl resolves a function object (its generic origin) to its
// declaration, if the function is declared in a loaded module package.
func (p *Program) FuncDecl(fn *types.Func) (*FuncSource, bool) {
	fs, ok := p.funcs[fn.Origin()]
	return fs, ok
}

// PackageByPath returns the loaded package with the given import path.
func (p *Program) PackageByPath(path string) (*Package, bool) {
	for _, pkg := range p.Pkgs {
		if pkg.Path == path {
			return pkg, true
		}
	}
	return nil, false
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Export     string
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load type-checks the module packages matched by patterns (run from
// dir; empty dir means the current directory). Standard-library imports
// resolve through export data, so loading works fully offline.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	byPath := make(map[string]*listedPackage, len(listed))
	var modulePaths []string
	for _, lp := range listed {
		byPath[lp.ImportPath] = lp
		if !lp.Standard && (lp.Name != "" || lp.Error != nil) {
			modulePaths = append(modulePaths, lp.ImportPath)
		}
	}
	sort.Strings(modulePaths)

	prog := &Program{
		Fset:  token.NewFileSet(),
		funcs: make(map[*types.Func]*FuncSource),
	}
	ld := &loader{
		prog:    prog,
		byPath:  byPath,
		checked: make(map[string]*types.Package),
		failed:  make(map[string]error),
	}
	ld.exportImporter = importer.ForCompiler(prog.Fset, "gc", ld.lookupExport)

	for _, path := range modulePaths {
		if _, err := ld.check(path, nil); err != nil {
			prog.Skipped = append(prog.Skipped, Skip{Path: path, Note: err.Error()})
		}
	}
	sort.Slice(prog.Skipped, func(i, j int) bool { return prog.Skipped[i].Path < prog.Skipped[j].Path })
	sort.Slice(prog.Pkgs, func(i, j int) bool { return prog.Pkgs[i].Path < prog.Pkgs[j].Path })
	prog.indexFuncs()
	return prog, nil
}

// goList runs `go list -e -export -deps -json` and decodes the stream.
// Per-package errors (a broken package under -e) stay on the returned
// entries for the loader to degrade into skips; only a failure of the
// listing itself is an error.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, &lp)
	}
	return pkgs, nil
}

// loader resolves imports while type-checking module packages in
// dependency order.
type loader struct {
	prog           *Program
	byPath         map[string]*listedPackage
	checked        map[string]*types.Package // module packages checked from source
	failed         map[string]error          // memoized per-package failures (for skip notes)
	exportImporter types.Importer            // everything else, via export data
}

// lookupExport serves a package's compiler export data to the gc
// importer (which resolves transitive references through this same
// lookup, so the -deps closure covers everything it will ask for).
func (ld *loader) lookupExport(path string) (io.ReadCloser, error) {
	lp, ok := ld.byPath[path]
	if !ok || lp.Export == "" {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(lp.Export)
}

// Import implements types.Importer for module-internal imports first,
// falling back to export data.
func (ld *loader) Import(path string) (*types.Package, error) {
	if lp, ok := ld.byPath[path]; ok && !lp.Standard {
		return ld.check(path, nil)
	}
	return ld.exportImporter.Import(path)
}

// check type-checks one module package from source (memoized, failures
// included: a package that failed once reports the same note to every
// dependent instead of re-failing differently).
func (ld *loader) check(path string, stack []string) (*types.Package, error) {
	if tp, ok := ld.checked[path]; ok {
		return tp, nil
	}
	if err, ok := ld.failed[path]; ok {
		return nil, err
	}
	tp, err := ld.checkUncached(path, stack)
	if err != nil {
		ld.failed[path] = err
		return nil, err
	}
	return tp, nil
}

func (ld *loader) checkUncached(path string, stack []string) (*types.Package, error) {
	for _, s := range stack {
		if s == path {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
	}
	lp := ld.byPath[path]
	if lp == nil {
		return nil, fmt.Errorf("package %q not in load graph", path)
	}
	if lp.Error != nil {
		return nil, fmt.Errorf("go list: %s", lp.Error.Err)
	}
	// Check dependencies first so type identities are shared.
	for _, imp := range lp.Imports {
		if real, ok := lp.ImportMap[imp]; ok {
			imp = real
		}
		if dep, ok := ld.byPath[imp]; ok && !dep.Standard && imp != "unsafe" {
			if _, err := ld.check(imp, append(stack, path)); err != nil {
				return nil, fmt.Errorf("dependency %s is broken: %v", imp, err)
			}
		}
	}

	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(ld.prog.Fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newTypesInfo()
	conf := types.Config{Importer: ld}
	tp, err := conf.Check(path, ld.prog.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	ld.checked[path] = tp
	ld.prog.Pkgs = append(ld.prog.Pkgs, &Package{Path: path, Files: files, Types: tp, Info: info})
	return tp, nil
}

// newTypesInfo allocates the go/types fact maps the analyzers consume.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// indexFuncs maps every declared function object to its declaration.
func (p *Program) indexFuncs() {
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					p.funcs[fn.Origin()] = &FuncSource{Pkg: pkg, Decl: fd}
				}
			}
		}
	}
}
