// Package analysis is holint: a suite of custom static analyzers that
// turn the repository's prose correctness contracts into
// compile-time-checked invariants. Each analyzer guards a contract a
// real bug motivated (DESIGN.md §12 maps them):
//
//   - nodeterminism: no unordered map iteration in the
//     determinism-contract packages, no wall clocks or entropy outside
//     the live layer (the PR-1 acr retransmission-map bug class).
//   - purestep: ReplicaCore, the core.Instance implementations, and
//     everything they statically reach stay free of goroutines,
//     channels, clocks, and I/O, so the model checker's coverage of the
//     production step function stays sound (PR 6).
//   - allocbound: decode paths never size an allocation from wire input
//     without a dominating bound check (the PR-6 fuzz-caught unbounded
//     preallocation).
//   - errcmp: sentinel errors are matched with errors.Is, never ==
//     (wrapped errors silently break ==).
//   - syncbarrier: in internal/live, no envelope or ack leaves a
//     dispatch path before Persister.Sync (the PR-7 write-ahead
//     barrier).
//   - atomicmix: a variable whose address ever feeds sync/atomic is
//     accessed atomically everywhere — one plain access elsewhere is a
//     data race the race detector only sees under the right schedule.
//   - goleak: every go statement in non-test code terminates visibly —
//     unconditional loops need an exit path, long-running goroutines
//     need a sync.WaitGroup.Done a Close can await.
//   - lockorder: in the live layer no mutex is held across
//     Transport.Send, Persister.Sync, or a blocking channel op, and the
//     static lock-acquisition graph is cycle-free.
//   - hotpath: //holint:hotpath-annotated functions stay off fmt and
//     errors.New; the compiler-backed half (CheckEscapes, `holint
//     -escape`) parses go build -gcflags=-m output and fails on any
//     heap escape inside an annotated function.
//
// The suite is built directly on go/ast and go/types rather than
// golang.org/x/tools/go/analysis so the repository keeps its
// zero-dependency property; the Analyzer/Pass/Diagnostic shapes mirror
// that package deliberately, and cmd/holint is the multichecker.
//
// A true positive that is justified can be suppressed with a directive
// on, or on the line above, the flagged line:
//
//	//holint:allow <analyzer> <reason>
//
// The reason is mandatory: a suppression without one is itself a
// diagnostic. Fixtures under testdata/ prove every analyzer kills its
// seeded violations (the model checker's mutant discipline, applied to
// the linter).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer is one named static check.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics and in
	// //holint:allow directives.
	Name string
	// Doc is a one-paragraph description of the enforced contract.
	Doc string
	// AppliesTo reports whether the analyzer inspects a package. Nil
	// means every loaded package.
	AppliesTo func(pkgPath string) bool
	// ProgramWide analyzers run once over the whole program (Pass.Pkg is
	// nil); others run once per applicable package.
	ProgramWide bool
	// Run performs the check, reporting findings through the pass.
	Run func(pass *Pass)
}

// A Pass carries one analyzer execution's inputs and collects its
// diagnostics.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	// Pkg is the package under analysis (nil for program-wide runs).
	Pkg *Package

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Prog.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// All returns the holint suite in its canonical order.
func All() []*Analyzer {
	return []*Analyzer{
		NoDeterminism,
		PureStep,
		AllocBound,
		ErrCmp,
		SyncBarrier,
		AtomicMix,
		GoLeak,
		LockOrder,
		HotPath,
	}
}

// Run executes the analyzers over the program and returns the surviving
// diagnostics, position-sorted: suppressed findings are dropped,
// malformed suppression directives are themselves findings.
func Run(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, az := range analyzers {
		if az.ProgramWide {
			az.Run(&Pass{Analyzer: az, Prog: prog, diags: &diags})
			continue
		}
		for _, pkg := range prog.Pkgs {
			if az.AppliesTo != nil && !az.AppliesTo(pkg.Path) {
				continue
			}
			az.Run(&Pass{Analyzer: az, Prog: prog, Pkg: pkg, diags: &diags})
		}
	}
	diags = applySuppressions(prog, diags)
	sortDiagnostics(diags)
	return diags
}

// sortDiagnostics orders findings by position then analyzer.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// allowDirective is the suppression marker. The full form is
// `//holint:allow <analyzer> <reason>`; it silences that analyzer's
// findings on its own line and on the line directly below (so it can
// trail the flagged statement or sit above it).
const allowDirective = "//holint:allow"

var directiveRe = regexp.MustCompile(`^//holint:allow\s+([A-Za-z0-9_-]+)[ \t]*(.*)$`)

// applySuppressions filters diags through the //holint:allow directives
// found in the program's files and appends a diagnostic for every
// malformed directive (missing analyzer or missing reason).
func applySuppressions(prog *Program, diags []Diagnostic) []Diagnostic {
	type key struct {
		file     string
		line     int
		analyzer string
	}
	allowed := make(map[key]bool)
	known := make(map[string]bool)
	for _, az := range All() {
		known[az.Name] = true
	}

	var out []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, allowDirective) {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					m := directiveRe.FindStringSubmatch(c.Text)
					switch {
					case m == nil:
						out = append(out, Diagnostic{Pos: pos, Analyzer: "holint",
							Message: "malformed //holint:allow directive: want `//holint:allow <analyzer> <reason>`"})
					case !known[m[1]]:
						out = append(out, Diagnostic{Pos: pos, Analyzer: "holint",
							Message: fmt.Sprintf("//holint:allow names unknown analyzer %q", m[1])})
					case strings.TrimSpace(m[2]) == "":
						out = append(out, Diagnostic{Pos: pos, Analyzer: "holint",
							Message: fmt.Sprintf("//holint:allow %s needs a justification: a suppression without a reason is a contract hole", m[1])})
					default:
						allowed[key{pos.Filename, pos.Line, m[1]}] = true
						allowed[key{pos.Filename, pos.Line + 1, m[1]}] = true
					}
				}
			}
		}
	}
	for _, d := range diags {
		if allowed[key{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// inspect walks every file of the pass's package, calling fn for each
// node; fn returning false prunes the subtree.
func (p *Pass) inspect(fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}
