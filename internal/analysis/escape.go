// The compiler-backed half of the hotpath gate (`holint -escape`).
// Static analysis cannot decide what allocates — escape analysis can,
// and the compiler already runs it — so instead of approximating, this
// runner shells out to `go build -gcflags=-m=1`, parses the compiler's
// own escape diagnostics, and fails on any heap escape, heap move, or
// closure allocation whose position falls inside a function annotated
// //holint:hotpath. The build is cache-friendly: the gc toolchain
// replays -m diagnostics from the build cache, so a clean re-run costs
// a cache probe, not a recompile.
//
// Two subtleties the runner handles:
//
//   - Generic functions (the rsm batch path) produce escape
//     diagnostics only when an instantiating package compiles, and the
//     positions map back to the generic source. The runner therefore
//     compiles every matched package and matches positions globally,
//     deduplicating the repeats from multiple instantiations.
//
//   - `go build` writes main-package binaries to the current
//     directory. Non-main packages build with no -o; main packages
//     build with -o pointed at a throwaway directory.
//
// Findings are ordinary holint diagnostics (analyzer "hotpath"), so
// `//holint:allow hotpath <reason>` suppresses one with the usual
// mandatory-reason discipline.

package analysis

import (
	"bytes"
	"fmt"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// hotpathRange is one annotated function's source extent.
type hotpathRange struct {
	file       string // absolute path
	start, end int    // line range, inclusive
	name       string // function name, for messages
}

// CheckEscapes runs the compiler escape gate over the module packages
// matched by patterns (from dir; empty dir means the current
// directory). It returns the surviving diagnostics — compiler-reported
// escapes inside //holint:hotpath functions, after suppression — plus
// any malformed-directive findings, exactly like Run.
func CheckEscapes(dir string, patterns ...string) ([]Diagnostic, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}

	var ranges []hotpathRange
	for _, pkg := range prog.Pkgs {
		fns, _ := hotpathFuncs(pkg) // misplaced directives are the static analyzer's findings
		for _, fd := range fns {
			start := prog.Fset.Position(fd.Pos())
			end := prog.Fset.Position(fd.End())
			ranges = append(ranges, hotpathRange{
				file:  start.Filename,
				start: start.Line,
				end:   end.Line,
				name:  fd.Name.Name,
			})
		}
	}
	if len(ranges) == 0 {
		return applySuppressions(prog, nil), nil
	}

	out, err := buildWithEscapeDiagnostics(dir, patterns)
	if err != nil {
		return nil, err
	}
	diags := matchEscapeDiagnostics(dir, out, ranges)
	diags = applySuppressions(prog, diags)
	sortDiagnostics(diags)
	return diags, nil
}

// buildWithEscapeDiagnostics compiles the matched packages with
// -gcflags=-m=1 and returns the combined compiler output. Main
// packages get -o into a throwaway directory so no binaries land in
// the module.
func buildWithEscapeDiagnostics(dir string, patterns []string) ([]byte, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	var mains, libs []string
	for _, lp := range listed {
		// Non-standard packages in the -deps closure are the module's own
		// (the module has no third-party deps); errored ones are already
		// skips in the Load half and cannot build.
		if lp.Standard || lp.Name == "" || lp.Error != nil {
			continue
		}
		if lp.Name == "main" {
			mains = append(mains, lp.ImportPath)
		} else {
			libs = append(libs, lp.ImportPath)
		}
	}

	var out bytes.Buffer
	build := func(extra []string, pkgs []string) error {
		if len(pkgs) == 0 {
			return nil
		}
		args := append(append([]string{"build", "-gcflags=-m=1"}, extra...), pkgs...)
		cmd := exec.Command("go", args...)
		cmd.Dir = dir
		cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
		cmd.Stdout = &out
		cmd.Stderr = &out
		if err := cmd.Run(); err != nil {
			return fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, out.Bytes())
		}
		return nil
	}
	if err := build(nil, libs); err != nil {
		return nil, err
	}
	if len(mains) > 0 {
		tmp, err := os.MkdirTemp("", "holint-escape-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		if err := build([]string{"-o", tmp}, mains); err != nil {
			return nil, err
		}
	}
	return out.Bytes(), nil
}

// escapeLineRe parses one compiler diagnostic: file:line:col: message.
var escapeLineRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// escapeFailure classifies the diagnostics that mean a heap
// allocation. "escapes to heap" covers values and func literals
// (closure allocation); "moved to heap" covers stack variables the
// compiler relocated. Everything else -m prints ("does not escape",
// "can inline", "leaking param", ...) is informational.
func escapeFailure(msg string) bool {
	return strings.Contains(msg, "escapes to heap") || strings.Contains(msg, "moved to heap")
}

// matchEscapeDiagnostics turns compiler output lines that land inside
// an annotated range into hotpath diagnostics, deduplicating generic
// instantiation repeats.
func matchEscapeDiagnostics(dir string, out []byte, ranges []hotpathRange) []Diagnostic {
	absDir, err := filepath.Abs(dir)
	if err != nil {
		absDir = dir
	}
	byFile := make(map[string][]hotpathRange)
	for _, r := range ranges {
		byFile[r.file] = append(byFile[r.file], r)
	}
	seen := make(map[string]bool)
	var diags []Diagnostic
	for _, line := range strings.Split(string(out), "\n") {
		m := escapeLineRe.FindStringSubmatch(line)
		if m == nil || !escapeFailure(m[4]) {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(absDir, file)
		}
		lineNo, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		for _, r := range byFile[file] {
			if lineNo < r.start || lineNo > r.end {
				continue
			}
			key := fmt.Sprintf("%s:%d:%d:%s", file, lineNo, col, m[4])
			if seen[key] {
				break
			}
			seen[key] = true
			diags = append(diags, Diagnostic{
				Pos:      token.Position{Filename: file, Line: lineNo, Column: col},
				Analyzer: "hotpath",
				Message: fmt.Sprintf("heap allocation in //holint:hotpath function %s: %s (compiler escape analysis); keep the steady-state path allocation-free or outline the cold branch",
					r.name, m[4]),
			})
			break
		}
	}
	return diags
}
