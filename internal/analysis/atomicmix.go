// atomicmix enforces the all-or-nothing rule of the sync/atomic memory
// model: once any code path accesses a variable through sync/atomic,
// every access must go through sync/atomic. A plain load racing an
// atomic store is undefined behavior the race detector only catches if
// a test happens to interleave it; the mix is also a reliable sign
// that the variable's synchronization story was never written down.
// The pipelining work will lean on atomic counters (in-flight slot
// windows, coalesced-write highwater marks), so the mix becomes a
// merge blocker rather than a review convention.
//
// The analyzer is program-wide: pass 1 collects every variable (field
// or package/local var) whose address is taken by a sync/atomic call
// anywhere in the module; pass 2 flags every other syntactic use of
// those variables. Taking the address to hand it to a helper counts as
// a plain use — deliberately so: the helper's discipline is invisible
// here, and the fix (migrate to atomic.Int64 & friends, which make the
// mix unrepresentable) is always available. Typed atomics are ignored:
// they cannot be mixed.

package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// AtomicMix is the atomic-vs-plain access analyzer.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc: "flags plain reads/writes of variables that are accessed via " +
		"sync/atomic elsewhere (mixed access is a data race by construction)",
	ProgramWide: true,
	Run:         runAtomicMix,
}

func runAtomicMix(pass *Pass) {
	// Pass 1: variables whose address feeds a sync/atomic call, plus
	// the identifier occurrences that belong to those calls (they are
	// the sanctioned accesses).
	atomicVars := make(map[*types.Var]string) // var -> atomic func name seen
	sanctioned := make(map[*ast.Ident]bool)
	for _, pkg := range pass.Prog.Pkgs {
		if !inModule(pkg.Path) {
			continue
		}
		info := pkg.Info
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				fn := calleeOf(info, call)
				if fn == nil || funcPkgPath(fn) != "sync/atomic" {
					return true
				}
				addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
				if !ok {
					return true
				}
				v := addressedVar(info, addr.X)
				if v == nil {
					return true
				}
				if _, seen := atomicVars[v]; !seen {
					atomicVars[v] = fn.Name()
				}
				// Every ident inside the &x / &s.f operand is sanctioned.
				ast.Inspect(addr, func(m ast.Node) bool {
					if mid, ok := m.(*ast.Ident); ok {
						sanctioned[mid] = true
					}
					return true
				})
				return true
			})
		}
	}
	if len(atomicVars) == 0 {
		return
	}

	// Pass 2: any other use of an atomic-accessed variable is a mix.
	var diags []struct {
		id *ast.Ident
		v  *types.Var
	}
	for _, pkg := range pass.Prog.Pkgs {
		if !inModule(pkg.Path) {
			continue
		}
		info := pkg.Info
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || sanctioned[id] {
					return true
				}
				v, ok := info.Uses[id].(*types.Var)
				if !ok {
					return true
				}
				if _, tracked := atomicVars[v]; tracked {
					diags = append(diags, struct {
						id *ast.Ident
						v  *types.Var
					}{id, v})
				}
				return true
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].id.Pos() < diags[j].id.Pos() })
	for _, d := range diags {
		pass.Reportf(d.id.Pos(), "%s is accessed via sync/atomic (%s) elsewhere but read/written plainly here: mixed access is a data race; use sync/atomic everywhere or a typed atomic (atomic.Int64 & friends)", d.v.Name(), atomicVars[d.v])
	}
}

// addressedVar resolves the operand of a unary & to the variable it
// addresses: a plain identifier or the field of a selector chain.
// Index expressions and other lvalues return nil (per-element atomics
// cannot be tracked variable-wise).
func addressedVar(info *types.Info, e ast.Expr) *types.Var {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if v, ok := info.Uses[x.Sel].(*types.Var); ok {
			return v
		}
	}
	return nil
}
