// lockorder guards the deadlock shapes the live layer can actually
// hit. The shell around the pure ReplicaCore holds sync.Mutexes for
// microseconds by design (DESIGN.md §11): a mutex held across a
// blocking operation — a Transport.Send that can stall on a dead TCP
// peer, a Persister.Sync that is an fsync, an unbuffered channel op —
// turns one slow peer into a stalled replica; and two mutexes taken in
// opposite orders on different paths deadlock the first time the
// schedules interleave. Both shapes are invisible to the race detector
// (they are liveness bugs, not races), so they get a static gate.
//
// The analyzer runs over internal/live and internal/livekv. Per
// function it walks the body branch-sensitively, tracking the set of
// locks held (a conditional unlock-and-return does not end the held
// region of the fall-through path), and:
//
//   - flags any blocking operation — channel send/receive, select
//     without default, range over a channel, Transport.Send,
//     Persister.Sync, or a call that statically reaches one — while a
//     lock is held. Sends and receives inside a select WITH a default
//     are non-blocking and legal.
//   - records every acquisition made while another lock is held (the
//     lock graph), propagating acquisitions through the static call
//     graph, and flags cycles: lock A taken under B on one path while
//     B is taken under A on another.
//   - flags re-acquiring a lock already held (self-deadlock).
//
// Calls through interfaces (other than the named blocking methods) and
// function values are not chased — the same declared soundness
// boundary as purestep; closures are analyzed as their own bodies.

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder is the lock-graph / hold-across-blocking analyzer.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "in internal/live and internal/livekv, flags mutexes held across " +
		"blocking operations (Transport.Send, Persister.Sync, channel ops) " +
		"and cyclic lock-acquisition orders",
	ProgramWide: true,
	Run:         runLockOrder,
}

// lockOrderPkgs are the concurrency-shell packages under the contract.
var lockOrderPkgs = map[string]bool{
	"heardof/internal/live":   true,
	"heardof/internal/livekv": true,
}

// funcFacts is one function's lock summary, propagated through the
// call graph.
type funcFacts struct {
	acquires map[*types.Var]bool
	// blocks describes the first blocking operation the function can
	// reach ("" if none).
	blocks string
	// calls are the scoped static callees.
	calls []*types.Func
}

// lockEdge records "to acquired while from was held" with its site.
type lockEdge struct {
	from, to *types.Var
	pos      token.Pos
}

func runLockOrder(pass *Pass) {
	ctx := &lockCtx{
		facts: make(map[*types.Func]*funcFacts),
		decls: make(map[*types.Func]*declInPkg),
	}
	// The blocking interfaces live in the live package; a program that
	// does not load it (or a fixture shadowing it) may omit them.
	if livePkg, ok := pass.Prog.PackageByPath("heardof/internal/live"); ok {
		ctx.transport = namedInterface(livePkg.Types.Scope(), "Transport")
		ctx.persister = namedInterface(livePkg.Types.Scope(), "Persister")
	}

	// Phase A: per-function direct summaries. Register every scoped
	// function first so call-edge detection (which tests facts
	// membership) sees the full set regardless of walk order.
	for _, pkg := range pass.Prog.Pkgs {
		if !lockOrderPkgs[pkg.Path] {
			continue
		}
		for fn, fd := range packageFuncs(pkg) {
			ctx.decls[fn] = &declInPkg{pkg: pkg, fd: fd}
			ctx.facts[fn] = &funcFacts{acquires: make(map[*types.Var]bool)}
		}
	}
	for fn, d := range ctx.decls {
		facts := ctx.facts[fn]
		w := &lockWalker{ctx: ctx, pkg: d.pkg,
			onAcquire: func(v *types.Var, _ token.Pos, _ []*types.Var) { facts.acquires[v] = true },
			onBlocking: func(desc string, _ token.Pos, _ []*types.Var) {
				if facts.blocks == "" {
					facts.blocks = desc
				}
			},
			onCall: func(callee *types.Func, _ token.Pos, _ []*types.Var) { facts.calls = append(facts.calls, callee) },
		}
		w.walkStmts(d.fd.Body.List, nil)
	}

	// Phase B: transitive closure of acquires and blocks.
	for changed := true; changed; {
		changed = false
		for _, facts := range ctx.facts {
			for _, callee := range facts.calls {
				cf, ok := ctx.facts[callee]
				if !ok {
					continue
				}
				for v := range cf.acquires {
					if !facts.acquires[v] {
						facts.acquires[v] = true
						changed = true
					}
				}
				if facts.blocks == "" && cf.blocks != "" {
					facts.blocks = callee.Name() + ", which reaches " + cf.blocks
					changed = true
				}
			}
		}
	}

	// Phase C: report. Walk every declared function and every closure
	// with live held-set tracking.
	var edges []lockEdge
	onBlocking := func(desc string, pos token.Pos, held []*types.Var) {
		if len(held) == 0 {
			return
		}
		pass.Reportf(pos, "holds %s across %s: a stalled peer or fsync stalls every path that needs the lock (lockorder contract)", lockNames(held), desc)
	}
	for _, pkg := range pass.Prog.Pkgs {
		if !lockOrderPkgs[pkg.Path] {
			continue
		}
		for _, f := range pkg.Files {
			// Collect the bodies to check: each declared function and
			// each closure, walked exactly once.
			var bodies []*ast.BlockStmt
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					bodies = append(bodies, fd.Body)
				}
			}
			ast.Inspect(f, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					bodies = append(bodies, lit.Body)
				}
				return true
			})
			for _, body := range bodies {
				w := &lockWalker{ctx: ctx, pkg: pkg,
					onAcquire: func(v *types.Var, pos token.Pos, held []*types.Var) {
						for _, h := range held {
							if h == v {
								pass.Reportf(pos, "%s is locked while already held: self-deadlock (lockorder contract)", v.Name())
								return
							}
						}
						for _, h := range held {
							edges = append(edges, lockEdge{from: h, to: v, pos: pos})
						}
					},
					onBlocking: onBlocking,
					onCall: func(fn *types.Func, pos token.Pos, held []*types.Var) {
						if len(held) == 0 {
							return
						}
						cf, ok := ctx.facts[fn]
						if !ok {
							return
						}
						if cf.blocks != "" {
							pass.Reportf(pos, "holds %s across a call to %s, which reaches %s: a stalled peer or fsync stalls every path that needs the lock (lockorder contract)", lockNames(held), fn.Name(), cf.blocks)
						}
						for v := range cf.acquires {
							for _, h := range held {
								if h == v {
									pass.Reportf(pos, "call to %s re-acquires %s, which is already held: self-deadlock (lockorder contract)", fn.Name(), v.Name())
								} else {
									edges = append(edges, lockEdge{from: h, to: v, pos: pos})
								}
							}
						}
					},
				}
				w.walkStmts(body.List, nil)
			}
		}
	}

	reportLockCycles(pass, edges)
}

// declInPkg pairs a declaration with its package (for cross-package
// walks between live and livekv).
type declInPkg struct {
	pkg *Package
	fd  *ast.FuncDecl
}

// lockNames renders a held set for a message.
func lockNames(held []*types.Var) string {
	names := make([]string, len(held))
	for i, v := range held {
		names[i] = v.Name()
	}
	return strings.Join(names, ", ")
}

// reportLockCycles flags every edge that closes a cycle in the lock
// graph (to can reach from again), deduplicated per (from, to) pair.
func reportLockCycles(pass *Pass, edges []lockEdge) {
	adj := make(map[*types.Var]map[*types.Var]token.Pos)
	for _, e := range edges {
		if adj[e.from] == nil {
			adj[e.from] = make(map[*types.Var]token.Pos)
		}
		if _, ok := adj[e.from][e.to]; !ok {
			adj[e.from][e.to] = e.pos
		}
	}
	var reaches func(from, to *types.Var, seen map[*types.Var]bool) bool
	reaches = func(from, to *types.Var, seen map[*types.Var]bool) bool {
		if from == to {
			return true
		}
		if seen[from] {
			return false
		}
		seen[from] = true
		for next := range adj[from] {
			if reaches(next, to, seen) {
				return true
			}
		}
		return false
	}
	type cyc struct {
		pos      token.Pos
		from, to *types.Var
	}
	var found []cyc
	for from, outs := range adj {
		for to, pos := range outs {
			if reaches(to, from, map[*types.Var]bool{}) {
				found = append(found, cyc{pos, from, to})
			}
		}
	}
	sort.Slice(found, func(i, j int) bool { return found[i].pos < found[j].pos })
	for _, c := range found {
		pass.Reportf(c.pos, "acquiring %s while holding %s closes a lock-order cycle: the opposite order exists on another path, and the first adverse interleaving deadlocks both (lockorder contract)", c.to.Name(), c.from.Name())
	}
}

// lockWalker walks one function body branch-sensitively, tracking the
// held-lock set and emitting acquisition, blocking, and call events.
type lockWalker struct {
	ctx *lockCtx
	pkg *Package

	onAcquire  func(v *types.Var, pos token.Pos, held []*types.Var)
	onBlocking func(desc string, pos token.Pos, held []*types.Var)
	onCall     func(fn *types.Func, pos token.Pos, held []*types.Var)
}

// lockCtx is the shared program-level state.
type lockCtx struct {
	transport *types.Interface
	persister *types.Interface
	facts     map[*types.Func]*funcFacts
	decls     map[*types.Func]*declInPkg
}

// heldSet is an ordered held-lock list (acquisition order).
type heldSet []*types.Var

func (h heldSet) clone() heldSet { return append(heldSet(nil), h...) }

func (h heldSet) without(v *types.Var) heldSet {
	out := h[:0:0]
	for _, x := range h {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

func (h heldSet) union(o heldSet) heldSet {
	out := h.clone()
	for _, v := range o {
		dup := false
		for _, x := range out {
			if x == v {
				dup = true
			}
		}
		if !dup {
			out = append(out, v)
		}
	}
	return out
}

// walkStmts walks a statement list; it returns the held set at the
// fall-through exit, or nil terminated=true when every path returns.
func (w *lockWalker) walkStmts(list []ast.Stmt, held heldSet) (heldSet, bool) {
	for _, s := range list {
		var terminated bool
		held, terminated = w.walkStmt(s, held)
		if terminated {
			return held, true
		}
	}
	return held, false
}

func (w *lockWalker) walkStmt(s ast.Stmt, held heldSet) (heldSet, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		return w.scanExpr(s.X, held, false), false
	case *ast.SendStmt:
		held = w.scanExpr(s.Chan, held, false)
		held = w.scanExpr(s.Value, held, false)
		w.onBlocking("a blocking channel send", s.Arrow, held)
		return held, false
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			held = w.scanExpr(e, held, false)
		}
		for _, e := range s.Lhs {
			held = w.scanExpr(e, held, false)
		}
		return held, false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						held = w.scanExpr(e, held, false)
					}
				}
			}
		}
		return held, false
	case *ast.IncDecStmt:
		return w.scanExpr(s.X, held, false), false
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			held = w.scanExpr(e, held, false)
		}
		return held, true
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held to the end of the
		// function, which the held set already models by not removing
		// it; any other deferred call's effects are out of scope.
		return held, false
	case *ast.GoStmt:
		for _, e := range s.Call.Args {
			held = w.scanExpr(e, held, false)
		}
		return held, false
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, held)
	case *ast.BlockStmt:
		return w.walkStmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = w.walkStmt(s.Init, held)
		}
		held = w.scanExpr(s.Cond, held, false)
		thenHeld, thenTerm := w.walkStmts(s.Body.List, held.clone())
		elseHeld, elseTerm := held, false
		if s.Else != nil {
			elseHeld, elseTerm = w.walkStmt(s.Else, held.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return held, true
		case thenTerm:
			return elseHeld, false
		case elseTerm:
			return thenHeld, false
		default:
			return thenHeld.union(elseHeld), false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = w.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			held = w.scanExpr(s.Cond, held, false)
		}
		w.walkStmts(s.Body.List, held.clone())
		return held, false
	case *ast.RangeStmt:
		held = w.scanExpr(s.X, held, false)
		if tv, ok := w.pkg.Info.Types[s.X]; ok && tv.Type != nil {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				w.onBlocking("a range over a channel", s.For, held)
			}
		}
		w.walkStmts(s.Body.List, held.clone())
		return held, false
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			w.onBlocking("a blocking select", s.Select, held)
		}
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			caseHeld := held.clone()
			if cc.Comm != nil {
				// The comm op is the select's, never separately
				// blocking; calls inside it still count.
				caseHeld, _ = w.walkCommStmt(cc.Comm, caseHeld)
			}
			w.walkStmts(cc.Body, caseHeld)
		}
		return held, false
	case *ast.SwitchStmt:
		if s.Init != nil {
			held, _ = w.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			held = w.scanExpr(s.Tag, held, false)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, held.clone())
			}
		}
		return held, false
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, held.clone())
			}
		}
		return held, false
	}
	return held, false
}

// walkCommStmt walks a select communication statement with its channel
// operation muted.
func (w *lockWalker) walkCommStmt(s ast.Stmt, held heldSet) (heldSet, bool) {
	switch s := s.(type) {
	case *ast.SendStmt:
		held = w.scanExpr(s.Chan, held, true)
		held = w.scanExpr(s.Value, held, true)
		return held, false
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			held = w.scanExpr(e, held, true)
		}
		return held, false
	case *ast.ExprStmt:
		return w.scanExpr(s.X, held, true), false
	}
	return held, false
}

// scanExpr processes an expression's lock, call, and channel events in
// source order. muteChanOps suppresses receive reporting (used for
// select comms, whose blocking is the select's).
func (w *lockWalker) scanExpr(e ast.Expr, held heldSet, muteChanOps bool) heldSet {
	if e == nil {
		return held
	}
	info := w.pkg.Info
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // analyzed as its own body
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !muteChanOps {
				w.onBlocking("a blocking channel receive", n.OpPos, held)
			}
		case *ast.CallExpr:
			if v, op := w.mutexOp(n); v != nil {
				if op > 0 {
					w.onAcquire(v, n.Pos(), held)
					held = append(held.clone(), v)
				} else {
					held = held.without(v)
				}
				return false
			}
			if isIfaceMethodCall(info, n, w.ctx.transport, "Send") {
				w.onBlocking("Transport.Send", n.Pos(), held)
			} else if isIfaceMethodCall(info, n, w.ctx.persister, "Sync") {
				w.onBlocking("Persister.Sync (an fsync)", n.Pos(), held)
			} else if fn := calleeOf(info, n); fn != nil && !isInterfaceMethod(fn) {
				if _, scoped := w.ctx.facts[fn]; scoped {
					w.onCall(fn, n.Pos(), held)
				}
			}
		}
		return true
	})
	return held
}

// mutexOp classifies a call as a sync.Mutex/RWMutex acquisition (+1)
// or release (-1) and resolves the lock's identity (the variable or
// field holding the mutex). Unresolvable receivers return nil.
func (w *lockWalker) mutexOp(call *ast.CallExpr) (*types.Var, int) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, 0
	}
	var op int
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = 1
	case "Unlock", "RUnlock":
		op = -1
	default:
		return nil, 0
	}
	fn, ok := w.pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || funcPkgPath(fn) != "sync" {
		return nil, 0
	}
	named := recvNamed(fn)
	if named == nil || (named.Obj().Name() != "Mutex" && named.Obj().Name() != "RWMutex") {
		return nil, 0
	}
	if v := addressedVar(w.pkg.Info, sel.X); v != nil {
		return v, op
	}
	return nil, 0
}
