// purestep enforces the pure step-function contract from PR 6: the
// exhaustive model checker (internal/modelcheck) explores the
// PRODUCTION protocol code — ReplicaCore and the core.Instance
// algorithm implementations — so that code must stay a pure function
// of its inputs: no goroutines, no channel operations, no wall clocks,
// no ambient entropy, no direct I/O. Anything impure would exist only
// on the production path, exactly the gap between model and deployment
// the shared-core architecture exists to close.
//
// The check walks the static call graph from the contract roots (every
// function of the algorithm packages, every ReplicaCore method, every
// method of a core.Instance implementation) through the module's own
// functions. Calls through interfaces (Persister, BatchCodec, Codec,
// Instance itself) are the declared soundness boundary — the same
// boundary the model checker assumes, documented on those interfaces —
// and are not chased.

package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// pureStepAlgorithmPkgs are packages whose entire contents are pure-step
// roots (the live algorithm implementations and their wire codecs).
var pureStepAlgorithmPkgs = map[string]bool{
	"heardof/internal/otr":        true,
	"heardof/internal/lastvoting": true,
}

// pureStepCorePkg/pureStepCoreType name the shared protocol core whose
// methods are roots.
const (
	pureStepCorePkg      = "heardof/internal/live"
	pureStepCoreType     = "ReplicaCore"
	pureStepInstancePkg  = "heardof/internal/core"
	pureStepInstanceName = "Instance"
)

// pureStepDenyPkgs are packages whose functions a pure step must not
// call directly. (Interface dispatch is the declared boundary and is
// not chased; these catch hard-wired impurity.)
var pureStepDenyPkgs = map[string]string{
	"os":           "file and system I/O",
	"os/exec":      "process execution",
	"os/signal":    "signal handling",
	"net":          "network I/O",
	"net/http":     "network I/O",
	"syscall":      "raw system calls",
	"math/rand":    "ambient entropy",
	"math/rand/v2": "ambient entropy",
	"crypto/rand":  "ambient entropy",
	"sync":         "goroutine coordination",
	"sync/atomic":  "goroutine coordination",
	"runtime":      "runtime manipulation",
}

// PureStep is the pure step-function analyzer.
var PureStep = &Analyzer{
	Name: "purestep",
	Doc: "enforces that ReplicaCore, the core.Instance implementations, and " +
		"everything they statically reach spawn no goroutines and touch no " +
		"channels, clocks, entropy, or I/O (the model checker's soundness contract)",
	ProgramWide: true,
	Run:         runPureStep,
}

func runPureStep(pass *Pass) {
	roots := pureStepRoots(pass.Prog)

	type workItem struct {
		fn   *types.Func
		root string
	}
	var queue []workItem
	for _, r := range roots {
		queue = append(queue, workItem{r.fn, r.why})
	}
	visited := make(map[*types.Func]bool)

	for len(queue) > 0 {
		item := queue[0]
		queue = queue[1:]
		if visited[item.fn] {
			continue
		}
		visited[item.fn] = true
		src, ok := pass.Prog.FuncDecl(item.fn)
		if !ok || src.Decl.Body == nil {
			continue
		}
		info := src.Pkg.Info
		label := item.fn.FullName()
		ast.Inspect(src.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "%s (pure-step: %s) spawns a goroutine; the model checker cannot explore concurrency inside a step", label, item.root)
			case *ast.SendStmt:
				pass.Reportf(n.Pos(), "%s (pure-step: %s) sends on a channel; steps communicate only through their StepResult", label, item.root)
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pass.Reportf(n.Pos(), "%s (pure-step: %s) receives from a channel; steps take input only through their Event", label, item.root)
				}
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(), "%s (pure-step: %s) selects on channels; scheduling belongs to the shell, not the core", label, item.root)
			case *ast.RangeStmt:
				if tv, ok := info.Types[n.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						pass.Reportf(n.Pos(), "%s (pure-step: %s) ranges over a channel", label, item.root)
					}
				}
			case *ast.CallExpr:
				if diag := pureStepCheckCall(pass, info, n, label, item.root); diag != nil {
					queue = append(queue, workItem{diag, item.root})
				}
			}
			return true
		})
	}
}

// pureStepCheckCall vets one call site, reporting impurity; it returns
// a module-internal callee to traverse into, or nil.
func pureStepCheckCall(pass *Pass, info *types.Info, call *ast.CallExpr, label, root string) *types.Func {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch info.Uses[id] {
		case types.Universe.Lookup("close"):
			pass.Reportf(call.Pos(), "%s (pure-step: %s) closes a channel", label, root)
			return nil
		case types.Universe.Lookup("make"):
			if len(call.Args) > 0 {
				if tv, ok := info.Types[call.Args[0]]; ok && tv.IsType() {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						pass.Reportf(call.Pos(), "%s (pure-step: %s) makes a channel", label, root)
					}
				}
			}
			return nil
		}
	}
	fn := calleeOf(info, call)
	if fn == nil || isInterfaceMethod(fn) {
		return nil // dynamic or interface-boundary call: not chased
	}
	pkgPath := funcPkgPath(fn)
	switch {
	case pkgPath == "" || inModule(pkgPath):
		if _, ok := pass.Prog.FuncDecl(fn); ok {
			return fn
		}
		return nil
	case pkgPath == "time" && clockFuncs[fn.Name()]:
		pass.Reportf(call.Pos(), "%s (pure-step: %s) calls time.%s: the step function must not read the wall clock", label, root, fn.Name())
	default:
		if why, deny := pureStepDenyPkgs[pkgPath]; deny {
			pass.Reportf(call.Pos(), "%s (pure-step: %s) calls %s.%s (%s): a pure step performs no I/O or concurrency", label, root, pkgPath, fn.Name(), why)
		}
	}
	return nil
}

// pureStepRoot is one contract entry point.
type pureStepRoot struct {
	fn  *types.Func
	why string
}

// pureStepRoots gathers the contract roots present in the program.
func pureStepRoots(prog *Program) []pureStepRoot {
	var roots []pureStepRoot
	add := func(fn *types.Func, why string) {
		roots = append(roots, pureStepRoot{fn, why})
	}

	// The core.Instance interface, if its package is loaded, marks every
	// implementing named type's methods as roots.
	var instanceIface *types.Interface
	if corePkg, ok := prog.PackageByPath(pureStepInstancePkg); ok {
		if tn, ok := corePkg.Types.Scope().Lookup(pureStepInstanceName).(*types.TypeName); ok {
			instanceIface, _ = tn.Type().Underlying().(*types.Interface)
		}
	}

	for _, pkg := range prog.Pkgs {
		wholePkg := pureStepAlgorithmPkgs[pkg.Path]
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			switch obj := scope.Lookup(name).(type) {
			case *types.Func:
				if wholePkg {
					add(obj, fmt.Sprintf("algorithm package %s", pkg.Path))
				}
			case *types.TypeName:
				named, ok := obj.Type().(*types.Named)
				if !ok {
					continue
				}
				isCore := pkg.Path == pureStepCorePkg && obj.Name() == pureStepCoreType
				implementsInstance := instanceIface != nil && named.TypeParams() == nil &&
					(types.Implements(named, instanceIface) || types.Implements(types.NewPointer(named), instanceIface))
				if !wholePkg && !isCore && !implementsInstance {
					continue
				}
				why := fmt.Sprintf("algorithm package %s", pkg.Path)
				if isCore {
					why = "ReplicaCore, the model-checked protocol core"
				} else if implementsInstance && !wholePkg {
					why = fmt.Sprintf("%s implements core.Instance", obj.Name())
				}
				for i := 0; i < named.NumMethods(); i++ {
					add(named.Method(i).Origin(), why)
				}
			}
		}
	}
	return roots
}
