package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a file map under root.
func writeTree(t *testing.T, root string, files map[string]string) {
	t.Helper()
	for name, src := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestLoadDegradesOnBrokenDependency pins the loader's failure
// containment: a type error in one package skips that package AND its
// dependents — each with a note saying why — while unrelated packages
// still load and get analyzed. Without this, one rotten package would
// hard-fail the whole run and silence every analyzer.
func TestLoadDegradesOnBrokenDependency(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"go.mod": "module brokentest\n\ngo 1.24\n",
		"ok/ok.go": `// Package ok is healthy and must still be analyzed.
package ok

// Ok returns a constant.
func Ok() int { return 1 }
`,
		"broken/broken.go": `// Package broken has a type error.
package broken

// Bad references an undefined symbol.
func Bad() int { return undefinedSymbol }
`,
		"dep/dep.go": `// Package dep imports the broken package.
package dep

import "brokentest/broken"

// Use calls into the broken dependency.
func Use() int { return broken.Bad() }
`,
	})

	prog, err := Load(dir, "./...")
	if err != nil {
		t.Fatalf("Load must degrade, not fail: %v", err)
	}
	var paths []string
	for _, pkg := range prog.Pkgs {
		paths = append(paths, pkg.Path)
	}
	if len(paths) != 1 || paths[0] != "brokentest/ok" {
		t.Errorf("loaded packages = %v, want [brokentest/ok]", paths)
	}

	notes := make(map[string]string)
	for _, s := range prog.Skipped {
		notes[s.Path] = s.Note
	}
	if len(notes) != 2 {
		t.Fatalf("skipped = %v, want brokentest/broken and brokentest/dep", prog.Skipped)
	}
	if note, ok := notes["brokentest/broken"]; !ok || !strings.Contains(note, "undefinedSymbol") {
		t.Errorf("broken skip note = %q, want the type error", note)
	}
	if note, ok := notes["brokentest/dep"]; !ok || !strings.Contains(note, "dependency brokentest/broken is broken") {
		t.Errorf("dep skip note = %q, want it to name the broken dependency", note)
	}

	// The healthy package still gets findings: run an analyzer over the
	// degraded program to prove the skips did not silence the run.
	if diags := Run(prog, All()); len(diags) != 0 {
		t.Errorf("healthy fixture package should be clean, got %v", diags)
	}
}
