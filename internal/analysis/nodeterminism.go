// nodeterminism enforces the byte-identical determinism contract from
// PR 1: the simulation and experiment layers must produce the same
// bytes for any -parallel setting and any map-iteration order, and must
// be free of wall clocks and ambient entropy. The acr retransmission
// bug (a map range feeding retransmission order) is the motivating
// incident; time.Now leaking into a sweep cell is the same class.

package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// determinismContractPkgs are the packages under the byte-identical
// output contract (TestSweepSequentialParallelEquivalence and the CI
// parallel-vs-sequential cmp jobs pin it dynamically; this analyzer
// pins the mechanism statically).
var determinismContractPkgs = map[string]bool{
	"heardof/internal/sweep":       true,
	"heardof/internal/simtime":     true,
	"heardof/internal/rsm":         true,
	"heardof/internal/shard":       true,
	"heardof/internal/modelcheck":  true,
	"heardof/internal/experiments": true,
	"heardof/internal/predimpl":    true,
}

// clockExempt lists where real time and entropy are allowed: the live
// layer (whose whole point is real clocks), the command-line mains, and
// the runnable examples that drive live clusters.
func clockExempt(path string) bool {
	switch path {
	case "heardof/internal/live", "heardof/internal/livekv":
		return true
	}
	return strings.HasPrefix(path, "heardof/cmd/") || strings.HasPrefix(path, "heardof/examples/")
}

// clockFuncs are the time functions that read or schedule against the
// wall clock. time.Duration arithmetic and type uses stay legal.
var clockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// entropyImports are ambient randomness sources; the simulation layers
// must draw from seeded internal/xrand streams instead.
var entropyImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

// NoDeterminism is the determinism-contract analyzer.
var NoDeterminism = &Analyzer{
	Name: "nodeterminism",
	Doc: "flags unordered map iteration in the determinism-contract packages, " +
		"and wall-clock or ambient-entropy use outside the live layer",
	AppliesTo: inModule,
	Run:       runNoDeterminism,
}

func runNoDeterminism(pass *Pass) {
	pkg := pass.Pkg
	checkMaps := determinismContractPkgs[pkg.Path]
	checkClock := !clockExempt(pkg.Path)
	if !checkMaps && !checkClock {
		return
	}
	pass.inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ImportSpec:
			if !checkClock {
				return true
			}
			if path, err := strconv.Unquote(n.Path.Value); err == nil && entropyImports[path] {
				pass.Reportf(n.Pos(), "import of %s: the sim layers draw entropy from seeded internal/xrand streams only", path)
			}
		case *ast.RangeStmt:
			if !checkMaps {
				return true
			}
			tv, ok := pkg.Info.Types[n.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				pass.Reportf(n.Pos(), "map iteration order is nondeterministic and %s is under the byte-identical determinism contract; iterate sorted keys, or justify with //holint:allow nodeterminism <reason> if the fold is order-insensitive", pkg.Path)
			}
		case *ast.CallExpr:
			if !checkClock {
				return true
			}
			fn := calleeOf(pkg.Info, n)
			if fn != nil && funcPkgPath(fn) == "time" && clockFuncs[fn.Name()] {
				pass.Reportf(n.Pos(), "time.%s reads the wall clock: outside internal/live, livekv, and cmd/* all time is simulated (simtime) so runs replay byte-identically", fn.Name())
			}
		}
		return true
	})
}
