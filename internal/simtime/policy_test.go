package simtime

import (
	"testing"

	"heardof/internal/core"
)

type fakeRound struct {
	r core.Round
}

func (f fakeRound) RoundNumber() core.Round { return f.r }

func env(from core.ProcessID, r core.Round, sentAt Time) Envelope {
	return Envelope{From: from, Payload: fakeRound{r: r}, SentAt: sentAt}
}

func TestFIFOPicksOldest(t *testing.T) {
	buf := []Envelope{env(0, 5, 3), env(1, 1, 1), env(2, 9, 2)}
	if got := (FIFO{}).Select(buf); got != 1 {
		t.Errorf("FIFO picked %d, want 1", got)
	}
	if got := (FIFO{}).Select(nil); got != -1 {
		t.Errorf("FIFO on empty buffer = %d, want -1", got)
	}
}

func TestHighestRoundFirst(t *testing.T) {
	buf := []Envelope{env(0, 2, 0), env(1, 7, 5), env(2, 7, 3), env(3, 1, 1)}
	// Rounds: 2, 7, 7, 1 → highest is 7; tie broken by earlier SentAt (idx 2).
	if got := (HighestRoundFirst{}).Select(buf); got != 2 {
		t.Errorf("picked %d, want 2", got)
	}
	if got := (HighestRoundFirst{}).Select(nil); got != -1 {
		t.Errorf("empty buffer = %d, want -1", got)
	}
}

func TestHighestRoundFirstTreatsUnknownPayloadAsRoundZero(t *testing.T) {
	buf := []Envelope{
		{From: 0, Payload: "no round", SentAt: 0},
		env(1, 1, 5),
	}
	if got := (HighestRoundFirst{}).Select(buf); got != 1 {
		t.Errorf("picked %d, want 1 (round 1 beats round 0)", got)
	}
}

func TestRoundRobinHighestCyclesTargets(t *testing.T) {
	p := &RoundRobinHighest{N: 3}
	buf := []Envelope{env(0, 4, 0), env(1, 2, 1), env(1, 6, 2), env(2, 5, 3)}
	// Step 0 targets process 0 → index 0.
	if got := p.Select(buf); got != 0 {
		t.Errorf("step 0 picked %d, want 0", got)
	}
	// Step 1 targets process 1 → highest round from 1 is index 2 (round 6).
	if got := p.Select(buf); got != 2 {
		t.Errorf("step 1 picked %d, want 2", got)
	}
	// Step 2 targets process 2 → index 3.
	if got := p.Select(buf); got != 3 {
		t.Errorf("step 2 picked %d, want 3", got)
	}
	if p.Steps() != 3 {
		t.Errorf("Steps = %d, want 3", p.Steps())
	}
}

func TestRoundRobinHighestFallsBackToGlobalHighest(t *testing.T) {
	p := &RoundRobinHighest{N: 4}
	buf := []Envelope{env(1, 3, 0), env(2, 8, 1)}
	// Step 0 targets process 0, which has nothing → global highest (idx 1).
	if got := p.Select(buf); got != 1 {
		t.Errorf("picked %d, want 1", got)
	}
	if got := p.Select(nil); got != -1 {
		t.Errorf("empty buffer = %d, want -1", got)
	}
}

func TestRoundRobinHighestPreventsStarvation(t *testing.T) {
	// A fast process (id 3) floods high-round messages; the policy must
	// still serve process 0's low-round message within n steps.
	p := &RoundRobinHighest{N: 4}
	buf := []Envelope{
		env(3, 100, 0), env(3, 101, 1), env(3, 102, 2), env(3, 103, 3),
		env(0, 1, 4),
	}
	servedZero := false
	for step := 0; step < 4; step++ {
		idx := p.Select(buf)
		if buf[idx].From == 0 {
			servedZero = true
		}
		buf = append(buf[:idx], buf[idx+1:]...)
	}
	if !servedZero {
		t.Error("process 0's message starved by the flooding process")
	}
}

func TestRoundRobinHighestZeroNDegradesToFIFO(t *testing.T) {
	p := &RoundRobinHighest{}
	buf := []Envelope{env(0, 5, 3), env(1, 1, 1)}
	if got := p.Select(buf); got != 1 {
		t.Errorf("picked %d, want FIFO choice 1", got)
	}
}
