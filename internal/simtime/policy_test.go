package simtime

import (
	"testing"

	"heardof/internal/core"
	"heardof/internal/xrand"
)

type fakeRound struct {
	r core.Round
}

func (f fakeRound) RoundNumber() core.Round { return f.r }

var envSeq uint64

// env builds a buffered envelope as the simulator would: the round cache
// is stamped from the payload and the arrival number is unique.
func env(from core.ProcessID, r core.Round, sentAt Time) Envelope {
	envSeq++
	return Envelope{From: from, Payload: fakeRound{r: r}, SentAt: sentAt, round: r, seq: envSeq}
}

func TestFIFOPicksOldest(t *testing.T) {
	buf := []Envelope{env(0, 5, 3), env(1, 1, 1), env(2, 9, 2)}
	if got := (FIFO{}).Select(buf); got != 1 {
		t.Errorf("FIFO picked %d, want 1", got)
	}
	if got := (FIFO{}).Select(nil); got != -1 {
		t.Errorf("FIFO on empty buffer = %d, want -1", got)
	}
}

func TestHighestRoundFirst(t *testing.T) {
	buf := []Envelope{env(0, 2, 0), env(1, 7, 5), env(2, 7, 3), env(3, 1, 1)}
	// Rounds: 2, 7, 7, 1 → highest is 7; tie broken by earlier SentAt (idx 2).
	if got := (HighestRoundFirst{}).Select(buf); got != 2 {
		t.Errorf("picked %d, want 2", got)
	}
	if got := (HighestRoundFirst{}).Select(nil); got != -1 {
		t.Errorf("empty buffer = %d, want -1", got)
	}
}

func TestHighestRoundFirstTreatsUnknownPayloadAsRoundZero(t *testing.T) {
	buf := []Envelope{
		{From: 0, Payload: "no round", SentAt: 0},
		env(1, 1, 5),
	}
	if got := (HighestRoundFirst{}).Select(buf); got != 1 {
		t.Errorf("picked %d, want 1 (round 1 beats round 0)", got)
	}
}

func TestRoundRobinHighestCyclesTargets(t *testing.T) {
	p := &RoundRobinHighest{N: 3}
	buf := []Envelope{env(0, 4, 0), env(1, 2, 1), env(1, 6, 2), env(2, 5, 3)}
	// Step 0 targets process 0 → index 0.
	if got := p.Select(buf); got != 0 {
		t.Errorf("step 0 picked %d, want 0", got)
	}
	// Step 1 targets process 1 → highest round from 1 is index 2 (round 6).
	if got := p.Select(buf); got != 2 {
		t.Errorf("step 1 picked %d, want 2", got)
	}
	// Step 2 targets process 2 → index 3.
	if got := p.Select(buf); got != 3 {
		t.Errorf("step 2 picked %d, want 3", got)
	}
	if p.Steps() != 3 {
		t.Errorf("Steps = %d, want 3", p.Steps())
	}
}

func TestRoundRobinHighestFallsBackToGlobalHighest(t *testing.T) {
	p := &RoundRobinHighest{N: 4}
	buf := []Envelope{env(1, 3, 0), env(2, 8, 1)}
	// Step 0 targets process 0, which has nothing → global highest (idx 1).
	if got := p.Select(buf); got != 1 {
		t.Errorf("picked %d, want 1", got)
	}
	if got := p.Select(nil); got != -1 {
		t.Errorf("empty buffer = %d, want -1", got)
	}
}

func TestRoundRobinHighestPreventsStarvation(t *testing.T) {
	// A fast process (id 3) floods high-round messages; the policy must
	// still serve process 0's low-round message within n steps.
	p := &RoundRobinHighest{N: 4}
	buf := []Envelope{
		env(3, 100, 0), env(3, 101, 1), env(3, 102, 2), env(3, 103, 3),
		env(0, 1, 4),
	}
	servedZero := false
	for step := 0; step < 4; step++ {
		idx := p.Select(buf)
		if buf[idx].From == 0 {
			servedZero = true
		}
		buf = append(buf[:idx], buf[idx+1:]...)
	}
	if !servedZero {
		t.Error("process 0's message starved by the flooding process")
	}
}

// TestPolicySelectionOrderIndependent locks in the total-order tie-break
// the simulator's swap-removal depends on: whatever the insertion order of
// the buffer, every built-in policy selects the same envelope (identified
// by its unique arrival number, not its index). The generated buffers
// deliberately contain full (round, SentAt, From) collisions so the final
// seq tie-break is exercised.
func TestPolicySelectionOrderIndependent(t *testing.T) {
	rng := xrand.New(77)
	const trials, buflen = 60, 25
	for trial := 0; trial < trials; trial++ {
		ref := make([]Envelope, buflen)
		for i := range ref {
			ref[i] = Envelope{
				From:   core.ProcessID(rng.Intn(4)),
				SentAt: Time(rng.Intn(3)),
				round:  core.Round(rng.Intn(3)),
				seq:    uint64(i),
			}
		}
		policies := []struct {
			name  string
			fresh func() ReceptionPolicy
		}{
			{"fifo", func() ReceptionPolicy { return FIFO{} }},
			{"highestRound", func() ReceptionPolicy { return HighestRoundFirst{} }},
			{"roundRobin", func() ReceptionPolicy { return &RoundRobinHighest{N: 4} }},
			{"roundRobinOffset", func() ReceptionPolicy { p := &RoundRobinHighest{N: 4}; p.Select(nil); return p }},
		}
		for _, pol := range policies {
			name, fresh := pol.name, pol.fresh
			want := ref[fresh().Select(ref)].seq
			for shuffle := 0; shuffle < 8; shuffle++ {
				perm := rng.Perm(buflen)
				shuffled := make([]Envelope, buflen)
				for i, j := range perm {
					shuffled[i] = ref[j]
				}
				got := shuffled[fresh().Select(shuffled)].seq
				if got != want {
					t.Fatalf("trial %d policy %s: shuffled buffer selected seq %d, reference selected %d",
						trial, name, got, want)
				}
			}
		}
	}
}

func TestRoundRobinHighestZeroNDegradesToFIFO(t *testing.T) {
	p := &RoundRobinHighest{}
	buf := []Envelope{env(0, 5, 3), env(1, 1, 1)}
	if got := p.Select(buf); got != 1 {
		t.Errorf("picked %d, want FIFO choice 1", got)
	}
}
