package simtime

import "heardof/internal/core"

// Envelope is a message in the network or in a buffer set.
type Envelope struct {
	From    core.ProcessID
	To      core.ProcessID
	Payload any
	SentAt  Time

	// round caches RoundNumber() of the payload. It is stamped once when
	// the message enters the network (or via InjectForTest), so reception
	// policies never type-assert payloads while scanning a buffer.
	round core.Round
	// seq is the buffer-arrival number, unique per envelope within a run.
	// It is the final tie-break of every reception policy, which makes
	// selection a total order over envelope keys — independent of buffer
	// layout, so the simulator may remove received messages by swapping
	// with the last element.
	seq uint64
}

// Round returns the cached round number of the payload (0 for payloads
// that do not implement RoundMessage).
func (e Envelope) Round() core.Round { return e.round }

// RoundMessage is implemented by payloads that carry a round number; the
// round-aware reception policies of Algorithms 2 and 3 use it to order the
// buffer. Payloads that do not implement it are treated as round 0.
type RoundMessage interface {
	RoundNumber() core.Round
}

func roundOf(payload any) core.Round {
	if rm, ok := payload.(RoundMessage); ok {
		return rm.RoundNumber()
	}
	return 0
}

// ReceptionPolicy selects which buffered message a receive step consumes:
// Select returns an index into buf, or -1 to receive the empty message λ
// even though the buffer is non-empty (no built-in policy does this, but
// an adversarial policy may). Policies may keep internal state (the
// round-robin policy counts receive steps) and are therefore per-process.
//
// Every built-in policy is a total order on the envelope key
// (round, SentAt, From, seq): given the same set of buffered envelopes it
// selects the same envelope whatever their order in buf. The simulator's
// swap-removal of received messages depends on this; custom policies
// should preserve it.
type ReceptionPolicy interface {
	Select(buf []Envelope) int
}

// olderFIFO reports whether a precedes b in FIFO order: earlier send time,
// then earlier arrival. Arrival order is what the pre-swap-remove engine's
// "first buffer index" tie-break observed, so the order is unchanged.
func olderFIFO(a, b *Envelope) bool {
	if a.SentAt != b.SentAt {
		return a.SentAt < b.SentAt
	}
	return a.seq < b.seq
}

// betterHRF reports whether a precedes b in highest-round-first order:
// higher round, then earlier send time, then smaller sender, then earlier
// arrival.
func betterHRF(a, b *Envelope) bool {
	if a.round != b.round {
		return a.round > b.round
	}
	if a.SentAt != b.SentAt {
		return a.SentAt < b.SentAt
	}
	if a.From != b.From {
		return a.From < b.From
	}
	return a.seq < b.seq
}

// FIFO receives the oldest buffered message. It is not used by the
// paper's algorithms; it exists for the reception-policy ablation
// (DESIGN.md §5).
type FIFO struct{}

// Select implements ReceptionPolicy.
func (FIFO) Select(buf []Envelope) int {
	if len(buf) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(buf); i++ {
		if olderFIFO(&buf[i], &buf[best]) {
			best = i
		}
	}
	return best
}

// HighestRoundFirst is the reception policy of Algorithm 2: the buffered
// message with the highest round number is received first; ties break
// towards the earliest send time, then the smallest sender, then the
// earliest arrival.
type HighestRoundFirst struct{}

// Select implements ReceptionPolicy.
func (HighestRoundFirst) Select(buf []Envelope) int {
	if len(buf) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(buf); i++ {
		if betterHRF(&buf[i], &buf[best]) {
			best = i
		}
	}
	return best
}

// RoundRobinHighest is the reception policy of Algorithm 3: at the i-th
// receive step, the highest-round message from process i mod n is
// selected; if there is none, an arbitrary message is selected (we pick
// the globally highest-round message, which the algorithm permits). The
// policy guarantees that a fast process flooding high-round messages
// cannot starve lower-round messages from other processes.
type RoundRobinHighest struct {
	N int
	i int
}

// Select implements ReceptionPolicy.
func (p *RoundRobinHighest) Select(buf []Envelope) int {
	if p.N <= 0 {
		return FIFO{}.Select(buf)
	}
	target := core.ProcessID(p.i % p.N)
	p.i++
	if len(buf) == 0 {
		return -1
	}
	best := -1
	for i := range buf {
		if buf[i].From != target {
			continue
		}
		if best == -1 || betterHRF(&buf[i], &buf[best]) {
			best = i
		}
	}
	if best >= 0 {
		return best
	}
	return HighestRoundFirst{}.Select(buf)
}

// Steps reports how many receive steps the policy has served (the i
// counter of Algorithm 3's policy).
func (p *RoundRobinHighest) Steps() int { return p.i }
