package simtime

// eventHeap is a 4-ary min-heap of event values keyed on (t, seq). It
// replaces container/heap over []*event: events are stored by value, so
// pushing costs no allocation (beyond amortized slice growth) and no
// interface boxing, and the 4-ary layout halves the tree depth, trading a
// few extra comparisons per level for far fewer cache-missing loads —
// the standard layout for discrete-event future-event lists.
//
// (t, seq) is a strict total order (seq is unique), so pop order is
// deterministic and independent of heap arity: the engine drains events in
// exactly the order the old binary heap did, which the golden-equivalence
// suite in internal/predimpl pins.
//
// Tombstones: applyPeriodRules marks purged in-flight events with kind=0
// in place rather than removing them (removal from the middle of a heap
// would need index tracking). skim discards tombstones at the root so
// callers that peek the next event time never see one.
type eventHeap struct {
	ev []event
}

func eventLess(a, b *event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

func (h *eventHeap) len() int { return len(h.ev) }

// reserve grows the backing array so n more pushes will not reallocate —
// one grow for a whole broadcast fan-out instead of up to n.
func (h *eventHeap) reserve(n int) {
	if need := len(h.ev) + n; need > cap(h.ev) {
		grown := make([]event, len(h.ev), max(need, 2*cap(h.ev)))
		copy(grown, h.ev)
		h.ev = grown
	}
}

//holint:hotpath
func (h *eventHeap) push(e event) {
	h.ev = append(h.ev, e)
	h.siftUp(len(h.ev) - 1)
}

//holint:hotpath
func (h *eventHeap) siftUp(i int) {
	ev := h.ev
	for i > 0 {
		parent := (i - 1) / 4
		if !eventLess(&ev[i], &ev[parent]) {
			break
		}
		ev[i], ev[parent] = ev[parent], ev[i]
		i = parent
	}
}

// popMin removes and returns the minimum event. It must not be called on
// an empty heap. The vacated slot is zeroed so popped envelopes do not
// pin their payloads.
//
//holint:hotpath
func (h *eventHeap) popMin() event {
	ev := h.ev
	root := ev[0]
	n := len(ev) - 1
	ev[0] = ev[n]
	ev[n] = event{}
	h.ev = ev[:n]
	if n > 1 {
		h.siftDown(0)
	}
	return root
}

//holint:hotpath
func (h *eventHeap) siftDown(i int) {
	ev := h.ev
	n := len(ev)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if eventLess(&ev[c], &ev[best]) {
				best = c
			}
		}
		if !eventLess(&ev[best], &ev[i]) {
			return
		}
		ev[i], ev[best] = ev[best], ev[i]
		i = best
	}
}

// skim pops tombstoned events while one sits at the root, so after it
// returns a non-empty heap has a live event at ev[0]. RunUntilTime and
// RunUntil rely on this before peeking the next event time: a tombstone
// with t ≤ limit must not lure the loop into executing a live event
// beyond the limit.
func (h *eventHeap) skim() {
	for len(h.ev) > 0 && h.ev[0].kind == 0 {
		h.popMin()
	}
}
