// Package simtime implements the system model of §4.1 of Hutle & Schiper
// (DSN 2007) as a deterministic discrete-event simulator.
//
// The model: processes execute atomic steps — send steps and receive
// steps — separated by real-valued time; the network moves messages from
// the per-process network set to the per-process buffer set with
// make-ready transfers; a receive step receives at most one buffered
// message, selected by a reception policy, or the empty message λ.
//
// All times are normalized by Φ− as in the paper: the minimum step gap is
// 1, the maximum step gap of a synchronous process is φ = Φ+/Φ−, and the
// transmission bound is δ = Δ/Φ−. The clock is the fictitious global
// real-time clock of the paper — it drives the event queue and is never
// exposed to protocols for decision making, only for trace timestamps.
//
// The system alternates between good and bad periods (§4.1): in a bad
// period processes may crash and recover, run at arbitrary speeds, and
// lose messages; in a "π0-down" good period the processes outside π0 are
// down and none of their messages are in transit; in a "π0-arbitrary"
// good period the processes outside π0 and their links are unconstrained.
package simtime

import (
	"fmt"
	"math"
	"sort"

	"heardof/internal/core"
)

// Time is normalized simulation time (units of Φ−).
type Time = float64

// Forever is a time later than any event the simulator will process.
const Forever Time = math.MaxFloat64 / 4

// PeriodKind classifies the three period types of §4.1.
type PeriodKind int

const (
	// Bad is a period with no synchrony or reliability guarantees.
	Bad PeriodKind = iota + 1
	// GoodDown is a "π0-down" good period: π0 is synchronous, the
	// processes outside π0 are down, and no message from them is in
	// transit. A Π-good period is GoodDown with Pi0 = Π.
	GoodDown
	// GoodArbitrary is a "π0-arbitrary" good period: π0 is synchronous;
	// processes outside π0 and their links are completely unconstrained.
	GoodArbitrary
)

// String implements fmt.Stringer.
func (k PeriodKind) String() string {
	switch k {
	case Bad:
		return "bad"
	case GoodDown:
		return "π0-down"
	case GoodArbitrary:
		return "π0-arbitrary"
	default:
		return fmt.Sprintf("PeriodKind(%d)", int(k))
	}
}

// Period is one segment of the alternating schedule. A period extends from
// Start to the Start of the next period (the last period extends forever).
type Period struct {
	Start Time
	Kind  PeriodKind
	// Pi0 is the synchronous subset for good periods; ignored for Bad.
	Pi0 core.PIDSet
}

// StepMode selects how step gaps are drawn for synchronous processes
// within [1, φ].
type StepMode int

const (
	// StepWorstCase uses the slowest legal gap φ for every step. The
	// paper's bounds are worst-case bounds, so this mode is the one that
	// approaches them.
	StepWorstCase StepMode = iota + 1
	// StepFast uses the fastest legal gap 1.
	StepFast
	// StepJitter draws gaps uniformly from [1, φ].
	StepJitter
)

// DeliveryMode selects how transmission delays are drawn for synchronous
// links within (0, δ].
type DeliveryMode int

const (
	// DeliverWorstCase delivers exactly δ after the send.
	DeliverWorstCase DeliveryMode = iota + 1
	// DeliverJitter draws delays uniformly from [δ/10, δ].
	DeliverJitter
)

// BadConfig bounds the adversary's choices during bad periods and, for
// processes outside π0, during π0-arbitrary good periods. "Arbitrary"
// behaviour still needs concrete draws in a simulator; these ranges are
// the envelope the pseudo-random adversary draws from.
type BadConfig struct {
	// LossProb is the per-message loss probability.
	LossProb float64
	// MinDelay/MaxDelay bound delivery delays of non-lost messages.
	MinDelay, MaxDelay Time
	// MinGap/MaxGap bound step gaps. MinGap may be below 1: asynchronous
	// processes may be arbitrarily fast (the real-valued-clock remark of
	// §4.1).
	MinGap, MaxGap Time
}

// DefaultBad returns a bad-period envelope scaled to the system's δ and φ.
func DefaultBad(delta, phi float64) BadConfig {
	return BadConfig{
		LossProb: 0.5,
		MinDelay: delta / 4,
		MaxDelay: 4 * delta,
		MinGap:   0.25,
		MaxGap:   4 * phi,
	}
}

// CrashEvent schedules a crash (and optional recovery) of one process.
// Crashing wipes volatile state — the protocol's OnCrash is invoked and
// the buffer set is emptied; stable storage survives.
type CrashEvent struct {
	P  core.ProcessID
	At Time
	// RecoverAt is the recovery time; negative means the process never
	// recovers on its own (it may still be forced up by a later period).
	RecoverAt Time
}

// Config assembles a simulation.
type Config struct {
	N     int
	Phi   float64 // φ = Φ+/Φ− ≥ 1
	Delta float64 // δ = Δ/Φ− > 0

	Periods []Period // sorted by Start; must begin at or before 0

	StepMode     StepMode
	DeliveryMode DeliveryMode
	Bad          BadConfig

	Crashes []CrashEvent

	Seed uint64
}

// Validate checks the configuration and fills defaults (StepMode,
// DeliveryMode, Bad envelope, an all-good period schedule).
func (c *Config) Validate() error {
	if c.N < 1 || c.N > core.MaxProcesses {
		return fmt.Errorf("n = %d out of range [1, %d]", c.N, core.MaxProcesses)
	}
	if c.Phi < 1 {
		return fmt.Errorf("phi = %v must be ≥ 1", c.Phi)
	}
	if c.Delta <= 0 {
		return fmt.Errorf("delta = %v must be > 0", c.Delta)
	}
	if c.StepMode == 0 {
		c.StepMode = StepWorstCase
	}
	if c.DeliveryMode == 0 {
		c.DeliveryMode = DeliverWorstCase
	}
	if c.Bad == (BadConfig{}) {
		c.Bad = DefaultBad(c.Delta, c.Phi)
	}
	if len(c.Periods) == 0 {
		c.Periods = []Period{{Start: 0, Kind: GoodDown, Pi0: core.FullSet(c.N)}}
	}
	if !sort.SliceIsSorted(c.Periods, func(i, j int) bool {
		return c.Periods[i].Start < c.Periods[j].Start
	}) {
		return fmt.Errorf("periods not sorted by start time")
	}
	if c.Periods[0].Start > 0 {
		return fmt.Errorf("first period starts at %v, must cover time 0", c.Periods[0].Start)
	}
	for i, p := range c.Periods {
		switch p.Kind {
		case Bad, GoodDown, GoodArbitrary:
		default:
			return fmt.Errorf("period %d has invalid kind %d", i, int(p.Kind))
		}
		if p.Kind != Bad {
			if p.Pi0.IsEmpty() {
				return fmt.Errorf("good period %d has empty π0", i)
			}
			// π0 must be a subset of Π = {0..n-1}: out-of-range members
			// would be silently dropped downstream (the simulator indexes
			// processes by pid), turning a typo like {7} with n=5 into a
			// different — and quietly smaller — synchronous set.
			if !p.Pi0.SubsetOf(core.FullSet(c.N)) {
				return fmt.Errorf("good period %d has π0 %v ⊄ Π = %v (n = %d)",
					i, p.Pi0, core.FullSet(c.N), c.N)
			}
		}
	}
	return nil
}

// PeriodAt returns the period in force at time t and its end time. The
// simulator calls it only at period boundaries (the period in force is
// maintained incrementally on Sim); it remains the reference lookup for
// tests and external callers.
func (c *Config) PeriodAt(t Time) (Period, Time) {
	idx := sort.Search(len(c.Periods), func(i int) bool {
		return c.Periods[i].Start > t
	}) - 1
	if idx < 0 {
		idx = 0
	}
	end := Forever
	if idx+1 < len(c.Periods) {
		end = c.Periods[idx+1].Start
	}
	return c.Periods[idx], end
}
