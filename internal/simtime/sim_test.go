package simtime

import (
	"testing"

	"heardof/internal/core"
)

// pingProto broadcasts once, then receives forever, counting what it gets.
type pingProto struct {
	sent     bool
	got      []Envelope
	crashes  int
	recovers int
}

func (p *pingProto) Step(ctx *StepContext) {
	if !p.sent {
		p.sent = true
		ctx.Broadcast("ping")
		return
	}
	if env, ok := ctx.Receive(FIFO{}); ok {
		p.got = append(p.got, env)
	}
}

func (p *pingProto) OnCrash()   { p.crashes++; p.got = nil }
func (p *pingProto) OnRecover() { p.recovers++; p.sent = false }

func newPingSim(t *testing.T, cfg Config) (*Sim, []*pingProto) {
	t.Helper()
	protos := make([]*pingProto, cfg.N)
	sim, err := New(cfg, func(p core.ProcessID) Proto {
		protos[p] = &pingProto{}
		return protos[p]
	})
	if err != nil {
		t.Fatal(err)
	}
	return sim, protos
}

func TestBroadcastReachesAllWithinDelta(t *testing.T) {
	cfg := Config{N: 3, Phi: 1, Delta: 5, Seed: 1}
	sim, protos := newPingSim(t, cfg)
	// Every process sends at its first step (t=1); messages ready at t=6;
	// received over subsequent steps.
	sim.RunUntilTime(20)
	for p, proto := range protos {
		if len(proto.got) != 3 {
			t.Errorf("p%d received %d messages, want 3", p, len(proto.got))
		}
	}
	st := sim.Stats()
	if st.Sends != 3 || st.MessagesSent != 9 {
		t.Errorf("stats = %+v", st)
	}
	if st.Dropped != 0 {
		t.Errorf("dropped %d messages in an all-good run", st.Dropped)
	}
	if sim.ContractViolations() != 0 {
		t.Error("contract violations in a correct protocol")
	}
}

func TestWorstCaseDeliveryTakesExactlyDelta(t *testing.T) {
	cfg := Config{N: 2, Phi: 1, Delta: 7, Seed: 1}
	sim, protos := newPingSim(t, cfg)
	sim.RunUntilTime(30)
	for _, proto := range protos {
		for _, env := range proto.got {
			// Sent at t, ready at exactly t+7; received at the first step
			// afterwards.
			if env.SentAt != 1 {
				t.Errorf("send time %v, want 1", env.SentAt)
			}
		}
	}
	_ = sim
}

func TestStepGapRespectsPhiBounds(t *testing.T) {
	// With StepJitter, gaps must lie in [1, φ]; count steps over a window
	// and check the count is within the implied bounds.
	cfg := Config{N: 1, Phi: 2, Delta: 1, StepMode: StepJitter, Seed: 42}
	var steps int
	counter := protoFunc(func(ctx *StepContext) {
		steps++
		ctx.Receive(FIFO{})
	})
	sim, err := New(cfg, func(core.ProcessID) Proto { return counter })
	if err != nil {
		t.Fatal(err)
	}
	sim.RunUntilTime(100)
	// Over 100 time units, gap ∈ [1, 2] ⇒ between 50 and 100 steps.
	if steps < 50 || steps > 100 {
		t.Errorf("steps = %d, want within [50, 100]", steps)
	}
}

// protoFunc adapts a function to Proto for tests.
type protoFunc func(ctx *StepContext)

func (f protoFunc) Step(ctx *StepContext) { f(ctx) }
func (protoFunc) OnCrash()                {}
func (protoFunc) OnRecover()              {}

func TestCrashAndRecovery(t *testing.T) {
	cfg := Config{
		N: 2, Phi: 1, Delta: 2, Seed: 3,
		Crashes: []CrashEvent{{P: 1, At: 5, RecoverAt: 15}},
	}
	sim, protos := newPingSim(t, cfg)
	sim.RunUntilTime(10)
	if sim.Up(1) {
		t.Fatal("process 1 should be down at t=10")
	}
	if protos[1].crashes != 1 {
		t.Errorf("crashes = %d, want 1", protos[1].crashes)
	}
	sim.RunUntilTime(30)
	if !sim.Up(1) {
		t.Fatal("process 1 should have recovered")
	}
	if protos[1].recovers != 1 {
		t.Errorf("recovers = %d, want 1", protos[1].recovers)
	}
	// The recovered process re-sends (OnRecover resets sent) and receives
	// again.
	if !protos[1].sent {
		t.Error("recovered process never stepped")
	}
	st := sim.Stats()
	if st.Crashes != 1 || st.Recoveries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMessagesToDownProcessAreLost(t *testing.T) {
	cfg := Config{
		N: 2, Phi: 1, Delta: 5, Seed: 3,
		// Process 1 is down exactly when the t=1 broadcasts become ready
		// (t=6), and never recovers.
		Crashes: []CrashEvent{{P: 1, At: 2, RecoverAt: -1}},
	}
	sim, protos := newPingSim(t, cfg)
	sim.RunUntilTime(50)
	if len(protos[1].got) != 0 {
		t.Errorf("down process received %d messages", len(protos[1].got))
	}
	if sim.Stats().Dropped == 0 {
		t.Error("deliveries to a down process should count as drops")
	}
}

func TestCrashBeforeRecoveryValidation(t *testing.T) {
	cfg := Config{
		N: 1, Phi: 1, Delta: 1,
		Crashes: []CrashEvent{{P: 0, At: 10, RecoverAt: 5}},
	}
	if _, err := New(cfg, func(core.ProcessID) Proto { return protoFunc(func(*StepContext) {}) }); err == nil {
		t.Error("expected error for recovery before crash")
	}
	cfg.Crashes = []CrashEvent{{P: 5, At: 1, RecoverAt: 2}}
	if _, err := New(cfg, func(core.ProcessID) Proto { return protoFunc(func(*StepContext) {}) }); err == nil {
		t.Error("expected error for unknown process")
	}
}

func TestPi0DownPeriodForcesOutsidersDownAndPurges(t *testing.T) {
	pi0 := core.SetOf(0, 1)
	cfg := Config{
		N: 3, Phi: 1, Delta: 50, Seed: 7,
		Periods: []Period{
			{Start: 0, Kind: GoodDown, Pi0: core.FullSet(3)},
			{Start: 10, Kind: GoodDown, Pi0: pi0},
			{Start: 100, Kind: GoodDown, Pi0: core.FullSet(3)},
		},
	}
	sim, protos := newPingSim(t, cfg)
	// All three broadcast at t=1 with δ=50, so their messages are in
	// transit when the π0-down period starts at t=10: process 2's copies
	// must be purged.
	sim.RunUntilTime(50)
	if sim.Up(2) {
		t.Fatal("process 2 must be down during the π0-down period")
	}
	sim.RunUntilTime(99)
	for p := 0; p < 2; p++ {
		for _, env := range protos[p].got {
			if env.From == 2 {
				t.Errorf("p%d received a purged message from process 2", p)
			}
		}
	}
	if sim.Stats().Purged == 0 {
		t.Error("no messages purged at the π0-down boundary")
	}
	// After the period ends, process 2 is revived.
	sim.RunUntilTime(150)
	if !sim.Up(2) {
		t.Error("process 2 should be revived after the π0-down period")
	}
	if protos[2].recovers != 1 {
		t.Errorf("process 2 recoveries = %d, want 1", protos[2].recovers)
	}
}

func TestBadPeriodCanLoseMessages(t *testing.T) {
	cfg := Config{
		N: 4, Phi: 1, Delta: 2, Seed: 11,
		Periods: []Period{{Start: 0, Kind: Bad}},
		Bad: BadConfig{
			LossProb: 1, MinDelay: 1, MaxDelay: 2, MinGap: 1, MaxGap: 2,
		},
	}
	sim, protos := newPingSim(t, cfg)
	sim.RunUntilTime(50)
	for p, proto := range protos {
		if len(proto.got) != 0 {
			t.Errorf("p%d received %d messages at loss probability 1", p, len(proto.got))
		}
	}
	if sim.Stats().Dropped != 16 {
		t.Errorf("dropped = %d, want 16", sim.Stats().Dropped)
	}
}

func TestGoodArbitraryOutsidersKeepRunning(t *testing.T) {
	pi0 := core.SetOf(0, 1)
	cfg := Config{
		N: 3, Phi: 1, Delta: 2, Seed: 13,
		Periods: []Period{{Start: 0, Kind: GoodArbitrary, Pi0: pi0}},
		Bad:     BadConfig{LossProb: 0, MinDelay: 1, MaxDelay: 3, MinGap: 0.5, MaxGap: 2},
	}
	sim, protos := newPingSim(t, cfg)
	sim.RunUntilTime(30)
	if !sim.Up(2) {
		t.Fatal("outsider must keep running in a π0-arbitrary period")
	}
	// π0 members hear the outsider (its links merely lack guarantees).
	heardOutsider := false
	for _, env := range protos[0].got {
		if env.From == 2 {
			heardOutsider = true
		}
	}
	if !heardOutsider {
		t.Error("π0 member never heard the outsider despite loss probability 0")
	}
}

func TestContractViolationDetected(t *testing.T) {
	greedy := protoFunc(func(ctx *StepContext) {
		ctx.Broadcast("a")
		ctx.Broadcast("b") // second action in one step: violation
		ctx.Receive(FIFO{})
	})
	cfg := Config{N: 1, Phi: 1, Delta: 1, Seed: 1}
	sim, err := New(cfg, func(core.ProcessID) Proto { return greedy })
	if err != nil {
		t.Fatal(err)
	}
	sim.RunUntilTime(3)
	if sim.ContractViolations() == 0 {
		t.Error("double action not detected")
	}
}

func TestRunUntilStopsEarly(t *testing.T) {
	cfg := Config{N: 2, Phi: 1, Delta: 1, Seed: 1}
	sim, protos := newPingSim(t, cfg)
	met := sim.RunUntil(func() bool { return len(protos[0].got) >= 1 }, 100)
	if !met {
		t.Fatal("condition never met")
	}
	if sim.Now() >= 100 {
		t.Error("RunUntil ran to the horizon despite the condition holding")
	}
	if !sim.RunUntil(func() bool { return true }, 0) {
		t.Error("immediately-true condition not detected")
	}
}

// TestRunUntilTimeStopsAtBoundWithTombstonedHead is the regression test
// for the purge-then-run bug: a tombstoned (purged) event at the heap head
// with t ≤ limit must not lure the run loop into executing the next live
// event beyond the limit.
//
// Schedule: both processes broadcast at t=10 (φ=10 worst-case gaps, δ=5,
// copies ready at t=15). A π0-down period with π0={0} starts at t=12,
// forcing p1 down and tombstoning its two in-flight copies (t=15). After
// the t=15 events, the earliest live event is p0's step at t=20 — so
// RunUntilTime(16) faced a head tombstone at t=15 and, before the fix,
// skipped through it inside processEvent and executed the t=20 step.
func TestRunUntilTimeStopsAtBoundWithTombstonedHead(t *testing.T) {
	cfg := Config{
		N: 2, Phi: 10, Delta: 5, Seed: 1,
		Periods: []Period{
			{Start: 0, Kind: GoodDown, Pi0: core.FullSet(2)},
			{Start: 12, Kind: GoodDown, Pi0: core.SetOf(0)},
		},
	}
	sim, _ := newPingSim(t, cfg)
	sim.RunUntilTime(16)
	if got := sim.Stats().Purged; got != 2 {
		t.Fatalf("purged = %d, want 2 (p1's two in-flight copies)", got)
	}
	if got := sim.Stats().Steps; got != 2 {
		t.Errorf("steps = %d, want 2: an event beyond the limit was executed", got)
	}
	if sim.Now() != 16 {
		t.Errorf("Now() = %v, want 16: the clock ran past the bound", sim.Now())
	}
	// The same schedule through RunUntil must respect the limit too.
	sim2, _ := newPingSim(t, cfg)
	sim2.RunUntil(func() bool { return false }, 16)
	if got := sim2.Stats().Steps; got != 2 {
		t.Errorf("RunUntil steps = %d, want 2", got)
	}
	if sim2.Now() > 16 {
		t.Errorf("RunUntil Now() = %v, want ≤ 16", sim2.Now())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (Stats, int) {
		cfg := Config{
			N: 4, Phi: 1.5, Delta: 3, Seed: 99,
			StepMode: StepJitter, DeliveryMode: DeliverJitter,
			Periods: []Period{
				{Start: 0, Kind: Bad},
				{Start: 20, Kind: GoodDown, Pi0: core.SetOf(0, 1, 2)},
			},
		}
		sim, protos := newPingSim(t, cfg)
		sim.RunUntilTime(60)
		total := 0
		for _, p := range protos {
			total += len(p.got)
		}
		return sim.Stats(), total
	}
	s1, t1 := run()
	s2, t2 := run()
	if s1 != s2 || t1 != t2 {
		t.Errorf("same seed diverged: %+v/%d vs %+v/%d", s1, t1, s2, t2)
	}
}
