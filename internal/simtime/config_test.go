package simtime

import (
	"strings"
	"testing"

	"heardof/internal/core"
)

func validConfig() Config {
	return Config{
		N:     4,
		Phi:   1,
		Delta: 5,
	}
}

func TestValidateDefaults(t *testing.T) {
	cfg := validConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.StepMode != StepWorstCase || cfg.DeliveryMode != DeliverWorstCase {
		t.Error("modes not defaulted to worst case")
	}
	if len(cfg.Periods) != 1 || cfg.Periods[0].Kind != GoodDown {
		t.Errorf("default period schedule = %+v", cfg.Periods)
	}
	if cfg.Bad.MaxDelay == 0 {
		t.Error("bad envelope not defaulted")
	}
}

func TestValidateRejections(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"n too small", func(c *Config) { c.N = 0 }, "out of range"},
		{"n too large", func(c *Config) { c.N = 100 }, "out of range"},
		{"phi below 1", func(c *Config) { c.Phi = 0.5 }, "phi"},
		{"delta zero", func(c *Config) { c.Delta = 0 }, "delta"},
		{"unsorted periods", func(c *Config) {
			c.Periods = []Period{{Start: 5, Kind: Bad}, {Start: 0, Kind: Bad}}
		}, "sorted"},
		{"gap at zero", func(c *Config) {
			c.Periods = []Period{{Start: 3, Kind: Bad}}
		}, "cover time 0"},
		{"bad kind", func(c *Config) {
			c.Periods = []Period{{Start: 0, Kind: PeriodKind(9)}}
		}, "invalid kind"},
		{"empty pi0", func(c *Config) {
			c.Periods = []Period{{Start: 0, Kind: GoodDown}}
		}, "empty π0"},
		// Regression: π0 ⊄ Π used to validate as long as the intersection
		// with Π was non-empty — {7} ∪ {1} with n=4 slipped through and the
		// junk member was silently dropped downstream.
		{"pi0 outside Π entirely", func(c *Config) {
			c.Periods = []Period{{Start: 0, Kind: GoodDown, Pi0: core.SetOf(7)}}
		}, "⊄ Π"},
		{"pi0 with one out-of-range member", func(c *Config) {
			c.Periods = []Period{{Start: 0, Kind: GoodArbitrary, Pi0: core.SetOf(1, 7)}}
		}, "⊄ Π"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := validConfig()
			tt.mutate(&cfg)
			err := cfg.Validate()
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error = %v, want containing %q", err, tt.want)
			}
		})
	}
}

func TestPeriodAt(t *testing.T) {
	cfg := validConfig()
	cfg.Periods = []Period{
		{Start: 0, Kind: Bad},
		{Start: 100, Kind: GoodDown, Pi0: core.FullSet(4)},
		{Start: 250, Kind: GoodArbitrary, Pi0: core.SetOf(0, 1)},
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		t    Time
		kind PeriodKind
		end  Time
	}{
		{0, Bad, 100},
		{99.9, Bad, 100},
		{100, GoodDown, 250},
		{200, GoodDown, 250},
		{250, GoodArbitrary, Forever},
		{1e9, GoodArbitrary, Forever},
	}
	for _, tt := range tests {
		per, end := cfg.PeriodAt(tt.t)
		if per.Kind != tt.kind || end != tt.end {
			t.Errorf("PeriodAt(%v) = (%v, %v), want (%v, %v)", tt.t, per.Kind, end, tt.kind, tt.end)
		}
	}
}

func TestPeriodKindString(t *testing.T) {
	if Bad.String() != "bad" || GoodDown.String() != "π0-down" || GoodArbitrary.String() != "π0-arbitrary" {
		t.Error("PeriodKind strings wrong")
	}
	if !strings.Contains(PeriodKind(42).String(), "42") {
		t.Error("unknown kind string should include the value")
	}
}
