package simtime

import (
	"sort"
	"testing"

	"heardof/internal/xrand"
)

// TestEventHeapDrainsInTotalOrder pushes randomized (t, seq) events and
// checks the heap drains them in strict (t, seq) order — the invariant the
// engine's determinism rests on.
func TestEventHeapDrainsInTotalOrder(t *testing.T) {
	rng := xrand.New(1)
	var h eventHeap
	const n = 1000
	want := make([]event, 0, n)
	for seq := 0; seq < n; seq++ {
		e := event{t: Time(rng.Intn(50)), seq: uint64(seq), kind: evStep}
		want = append(want, e)
		h.push(e)
	}
	sort.Slice(want, func(i, j int) bool { return eventLess(&want[i], &want[j]) })
	for i := range want {
		if h.len() != n-i {
			t.Fatalf("len = %d, want %d", h.len(), n-i)
		}
		got := h.popMin()
		if got.t != want[i].t || got.seq != want[i].seq {
			t.Fatalf("pop %d = (t=%v seq=%d), want (t=%v seq=%d)",
				i, got.t, got.seq, want[i].t, want[i].seq)
		}
	}
	if h.len() != 0 {
		t.Fatalf("heap not drained: %d left", h.len())
	}
}

// TestEventHeapReserveKeepsOrder interleaves reserve with pushes and pops.
func TestEventHeapReserveKeepsOrder(t *testing.T) {
	var h eventHeap
	h.reserve(3)
	for _, tm := range []Time{5, 1, 3} {
		h.push(event{t: tm, seq: uint64(tm), kind: evStep})
	}
	h.reserve(64)
	h.push(event{t: 0, seq: 99, kind: evStep})
	var got []Time
	for h.len() > 0 {
		got = append(got, h.popMin().t)
	}
	want := []Time{0, 1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drain order %v, want %v", got, want)
		}
	}
}

// TestEventHeapSkimDropsTombstonesAtRoot tombstones the minimum events in
// place and checks skim exposes the first live event.
func TestEventHeapSkimDropsTombstonesAtRoot(t *testing.T) {
	var h eventHeap
	for seq := 0; seq < 10; seq++ {
		h.push(event{t: Time(seq), seq: uint64(seq), kind: evMakeReady})
	}
	// Tombstone every event with t < 4 (they occupy the top of the heap).
	for i := range h.ev {
		if h.ev[i].t < 4 {
			h.ev[i].kind = 0
		}
	}
	h.skim()
	if h.len() != 6 {
		t.Fatalf("len after skim = %d, want 6", h.len())
	}
	if h.ev[0].kind == 0 || h.ev[0].t != 4 {
		t.Fatalf("root after skim = (t=%v kind=%d), want live t=4", h.ev[0].t, h.ev[0].kind)
	}
	h.skim() // idempotent on a live root
	if h.len() != 6 {
		t.Fatalf("second skim changed len to %d", h.len())
	}
}
