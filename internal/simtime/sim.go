package simtime

import (
	"fmt"

	"heardof/internal/core"
	"heardof/internal/xrand"
)

// Proto is the per-process protocol run by the simulator — the predicate
// implementation layer of the paper (Algorithms 2 and 3 live here).
//
// Step is invoked once per atomic step; the protocol must perform exactly
// one action through the context: one Broadcast (a send step) or one
// Receive (a receive step). The context is only valid for the duration of
// the call — the simulator reuses it across steps, so protocols must not
// retain it. OnCrash is invoked when the process crashes (volatile state
// must be dropped); OnRecover when it comes back up (state must be rebuilt
// from stable storage).
type Proto interface {
	Step(ctx *StepContext)
	OnCrash()
	OnRecover()
}

// StepContext gives a protocol access to the simulator during one step.
type StepContext struct {
	sim   *Sim
	p     core.ProcessID
	now   Time
	acted bool
}

// Now returns the current normalized time. Protocols must not use it for
// decisions (the paper's processes have no clock); it exists for trace
// timestamps.
func (c *StepContext) Now() Time { return c.now }

// PID returns the process executing the step.
func (c *StepContext) PID() core.ProcessID { return c.p }

// Broadcast performs a send step: the payload is sent to all processes
// (including the sender), as the paper's send-to-all primitive does.
func (c *StepContext) Broadcast(payload any) {
	if c.acted {
		c.sim.contractViolations++
		return
	}
	c.acted = true
	c.sim.broadcast(c.p, payload, c.now)
}

// Receive performs a receive step: one buffered message selected by the
// policy is consumed and returned. ok is false when the empty message λ
// was received.
func (c *StepContext) Receive(policy ReceptionPolicy) (env Envelope, ok bool) {
	if c.acted {
		c.sim.contractViolations++
		return Envelope{}, false
	}
	c.acted = true
	return c.sim.receive(c.p, policy)
}

// event kinds. Kind 0 is a tombstone: a purged event left in place in the
// heap and discarded when it reaches the root.
const (
	evStep = iota + 1
	evMakeReady
	evCrash
	evRecover
	evPeriod
)

// event is one future-event-list entry, stored by value in eventHeap.
type event struct {
	t    Time
	seq  uint64
	kind int
	p    core.ProcessID
	env  Envelope
}

// Stats aggregates observable counters of a run.
type Stats struct {
	Steps        int64
	Sends        int64
	MessagesSent int64 // Sends × n (per-destination copies)
	Delivered    int64 // moved to a buffer set
	Received     int64 // consumed by receive steps
	Dropped      int64 // lost in transit
	Purged       int64 // removed at π0-down period starts
	Crashes      int64
	Recoveries   int64
}

type procState struct {
	up     bool
	buffer []Envelope
	// downByPeriod marks processes forced down by a π0-down good period
	// (they are revived at the period's end unless individually crashed).
	downByPeriod bool
}

// Sim is the discrete-event simulator. It is single-threaded and
// deterministic for a fixed Config (including Seed) and protocol.
//
// The event core is allocation-free in steady state: events live by value
// in a 4-ary heap, the period in force is maintained incrementally (it
// only changes at evPeriod events), envelopes carry their payload's round
// number so reception policies never type-assert, and the per-step
// context is reused. DESIGN.md's Performance section describes the design
// and why determinism survives it.
type Sim struct {
	cfg   Config
	rng   *xrand.Rand
	queue eventHeap
	seq   uint64
	now   Time

	// per is the period in force at the current event time; it changes
	// only when an evPeriod event fires, saving a period lookup per step
	// and per send.
	per Period

	// arrivals numbers envelopes as they enter buffer sets; reception
	// policies use it as the final tie-break, making their selection a
	// total order independent of buffer layout.
	arrivals uint64

	procs  []procState
	protos []Proto

	// sctx is the reused step context; see Proto.
	sctx StepContext

	stats              Stats
	contractViolations int
}

// New creates a simulator; factory is called once per process to build its
// protocol instance.
func New(cfg Config, factory func(p core.ProcessID) Proto) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("simtime config: %w", err)
	}
	s := &Sim{
		cfg:    cfg,
		rng:    xrand.New(cfg.Seed ^ 0x9e3779b97f4a7c15),
		procs:  make([]procState, cfg.N),
		protos: make([]Proto, cfg.N),
	}
	for p := 0; p < cfg.N; p++ {
		s.procs[p].up = true
		s.protos[p] = factory(core.ProcessID(p))
	}
	// Period boundaries.
	for _, per := range cfg.Periods {
		if per.Start > 0 {
			s.push(event{t: per.Start, kind: evPeriod})
		}
	}
	s.applyPeriodRules(0)
	// Scheduled crashes and recoveries.
	for _, ce := range cfg.Crashes {
		if ce.P < 0 || int(ce.P) >= cfg.N {
			return nil, fmt.Errorf("crash event for unknown process %d", ce.P)
		}
		s.push(event{t: ce.At, kind: evCrash, p: ce.P})
		if ce.RecoverAt >= 0 {
			if ce.RecoverAt < ce.At {
				return nil, fmt.Errorf("process %d recovers at %v before crashing at %v",
					ce.P, ce.RecoverAt, ce.At)
			}
			s.push(event{t: ce.RecoverAt, kind: evRecover, p: ce.P})
		}
	}
	// First step of every (up) process.
	for p := 0; p < cfg.N; p++ {
		if s.procs[p].up {
			s.scheduleStep(core.ProcessID(p), 0)
		}
	}
	return s, nil
}

// Now returns the current simulation time.
func (s *Sim) Now() Time { return s.now }

// Stats returns a copy of the run counters.
func (s *Sim) Stats() Stats { return s.stats }

// ContractViolations counts protocol steps that attempted more than one
// action; a correct protocol keeps this at zero.
func (s *Sim) ContractViolations() int { return s.contractViolations }

// Up reports whether process p is currently up.
func (s *Sim) Up(p core.ProcessID) bool { return s.procs[p].up }

// Proto returns process p's protocol instance (for inspection).
func (s *Sim) Proto(p core.ProcessID) Proto { return s.protos[p] }

// BufferLen returns the size of p's buffer set (for tests).
func (s *Sim) BufferLen(p core.ProcessID) int { return len(s.procs[p].buffer) }

//holint:hotpath
func (s *Sim) push(e event) {
	e.seq = s.seq
	s.seq++
	s.queue.push(e)
}

//holint:hotpath
func (s *Sim) scheduleStep(p core.ProcessID, t Time) {
	gap := s.stepGap(p)
	s.push(event{t: t + gap, kind: evStep, p: p})
}

// stepGap draws the time until p's next step under the period in force.
//
//holint:hotpath
func (s *Sim) stepGap(p core.ProcessID) Time {
	synchronous := s.per.Kind != Bad && s.per.Pi0.Has(p)
	if synchronous {
		switch s.cfg.StepMode {
		case StepFast:
			return 1
		case StepJitter:
			return s.rng.Between(1, s.cfg.Phi)
		default:
			return s.cfg.Phi
		}
	}
	// Bad period, or outside π0 in a π0-arbitrary period: arbitrary speed.
	return s.rng.Between(s.cfg.Bad.MinGap, s.cfg.Bad.MaxGap)
}

// broadcast implements a send step: one copy per destination enters the
// network and is scheduled for make-ready per the link's current regime.
// The payload's round number is resolved once here — not per buffered
// message at selection time — and the n events are enqueued after a single
// capacity reservation.
func (s *Sim) broadcast(from core.ProcessID, payload any, t Time) {
	s.stats.Sends++
	round := roundOf(payload)
	fromGood := s.per.Kind != Bad && s.per.Pi0.Has(from)
	s.queue.reserve(s.cfg.N)
	for q := 0; q < s.cfg.N; q++ {
		s.stats.MessagesSent++
		to := core.ProcessID(q)
		goodLink := fromGood && s.per.Pi0.Has(to)
		var delay Time
		if goodLink {
			if s.cfg.DeliveryMode == DeliverJitter {
				delay = s.rng.Between(s.cfg.Delta/10, s.cfg.Delta)
			} else {
				delay = s.cfg.Delta
			}
		} else {
			if s.rng.Bool(s.cfg.Bad.LossProb) {
				s.stats.Dropped++
				continue
			}
			delay = s.rng.Between(s.cfg.Bad.MinDelay, s.cfg.Bad.MaxDelay)
		}
		s.push(event{
			t:    t + delay,
			kind: evMakeReady,
			p:    to,
			env:  Envelope{From: from, To: to, Payload: payload, SentAt: t, round: round},
		})
	}
}

// fifoDefault is the nil-policy fallback, boxed once at package level
// so receive never converts FIFO{} to an interface per call.
var fifoDefault ReceptionPolicy = FIFO{}

// receive implements a receive step. Removal is an O(1) swap with the last
// element: selection is a total order over envelope keys (see
// ReceptionPolicy), so it does not depend on buffer layout.
func (s *Sim) receive(p core.ProcessID, policy ReceptionPolicy) (Envelope, bool) {
	buf := s.procs[p].buffer
	if policy == nil {
		policy = fifoDefault
	}
	idx := policy.Select(buf)
	if idx < 0 || idx >= len(buf) {
		return Envelope{}, false // λ
	}
	env := buf[idx]
	last := len(buf) - 1
	buf[idx] = buf[last]
	buf[last] = Envelope{} // do not pin the payload
	s.procs[p].buffer = buf[:last]
	s.stats.Received++
	return env, true
}

// applyPeriodRules installs the period in force at time t and enforces its
// entry conditions: a π0-down period forces processes outside π0 down and
// purges their in-flight and buffered messages; leaving a π0-down period
// revives the processes it forced down.
func (s *Sim) applyPeriodRules(t Time) {
	s.per, _ = s.cfg.PeriodAt(t)
	per := s.per

	// Revive processes that were down only because of a previous π0-down
	// period (and are allowed up now).
	for p := range s.procs {
		pid := core.ProcessID(p)
		forcedDown := per.Kind == GoodDown && !per.Pi0.Has(pid)
		if s.procs[p].downByPeriod && !forcedDown {
			s.procs[p].downByPeriod = false
			if !s.procs[p].up {
				s.recover(pid, t)
			}
		}
	}

	if per.Kind != GoodDown {
		return
	}
	outside := per.Pi0.Complement(s.cfg.N)
	outside.ForEach(func(p core.ProcessID) {
		s.procs[p].downByPeriod = true
		if s.procs[p].up {
			s.crash(p, t)
		}
	})
	// "No messages from processes in π0̄ are in transit": purge network
	// (pending make-ready events) and buffers of messages from outside.
	ev := s.queue.ev
	for i := range ev {
		if ev[i].kind == evMakeReady && outside.Has(ev[i].env.From) {
			ev[i].kind = 0 // tombstone; discarded at the heap root
			ev[i].env = Envelope{}
			s.stats.Purged++
		}
	}
	for p := range s.procs {
		kept := s.procs[p].buffer[:0]
		for _, env := range s.procs[p].buffer {
			if outside.Has(env.From) {
				s.stats.Purged++
				continue
			}
			kept = append(kept, env)
		}
		for i := len(kept); i < len(s.procs[p].buffer); i++ {
			s.procs[p].buffer[i] = Envelope{}
		}
		s.procs[p].buffer = kept
	}
}

func (s *Sim) crash(p core.ProcessID, _ Time) {
	if !s.procs[p].up {
		return
	}
	s.procs[p].up = false
	s.procs[p].buffer = nil // volatile state is lost
	s.stats.Crashes++
	s.protos[p].OnCrash()
	// Pending step events for p are skipped when popped (process down).
}

func (s *Sim) recover(p core.ProcessID, t Time) {
	if s.procs[p].up {
		return
	}
	if s.procs[p].downByPeriod {
		return // still forced down by the period in force
	}
	s.procs[p].up = true
	s.stats.Recoveries++
	s.protos[p].OnRecover()
	s.scheduleStep(p, t)
}

// processEvent pops and handles exactly one event (which may be a no-op:
// a tombstone, a skipped step of a down process, a delivery to a down
// process); it returns false when the queue is empty. Handling only one
// pop per call is what keeps RunUntilTime/RunUntil honest: their time
// bound is re-checked against the heap head before every pop, so a no-op
// event inside the bound can never drag execution past it.
//holint:hotpath
func (s *Sim) processEvent() bool {
	if s.queue.len() == 0 {
		return false
	}
	e := s.queue.popMin()
	if e.kind == 0 {
		return true // tombstoned
	}
	s.now = e.t
	switch e.kind {
	case evStep:
		if !s.procs[e.p].up {
			break // crashed: step skipped, next one comes on recovery
		}
		s.sctx = StepContext{sim: s, p: e.p, now: e.t}
		s.protos[e.p].Step(&s.sctx)
		s.stats.Steps++
		s.scheduleStep(e.p, e.t)
	case evMakeReady:
		if !s.procs[e.p].up {
			// Messages arriving at a down process are lost (its buffer
			// is volatile and it is not accepting).
			s.stats.Dropped++
			break
		}
		e.env.seq = s.arrivals
		s.arrivals++
		s.procs[e.p].buffer = append(s.procs[e.p].buffer, e.env)
		s.stats.Delivered++
	case evCrash:
		s.crash(e.p, e.t)
	case evRecover:
		s.recover(e.p, e.t)
	case evPeriod:
		s.applyPeriodRules(e.t)
	}
	return true
}

// InjectForTest places an envelope directly into p's buffer set, bypassing
// the network; the round cache and arrival number are stamped as delivery
// would. Test support only.
func (s *Sim) InjectForTest(p core.ProcessID, env Envelope) {
	env.round = roundOf(env.Payload)
	env.seq = s.arrivals
	s.arrivals++
	s.procs[p].buffer = append(s.procs[p].buffer, env)
}

// StepContextForTest returns a fresh step context for process p at the
// current simulation time, letting tests drive a Proto directly. Test
// support only.
func (s *Sim) StepContextForTest(p core.ProcessID) *StepContext {
	return &StepContext{sim: s, p: p, now: s.now}
}

// RunUntilTime advances the simulation until the clock passes t. The heap
// is skimmed of tombstones before each peek so a purged event with an
// early timestamp cannot lure the loop into executing a live event beyond
// the bound.
func (s *Sim) RunUntilTime(t Time) {
	for {
		s.queue.skim()
		if s.queue.len() == 0 || s.queue.ev[0].t > t {
			break
		}
		if !s.processEvent() {
			break
		}
	}
	if s.now < t {
		s.now = t
	}
}

// RunUntil advances the simulation until cond() holds (checked after every
// event) or the clock passes limit; it reports whether cond was met.
func (s *Sim) RunUntil(cond func() bool, limit Time) bool {
	if cond() {
		return true
	}
	for {
		s.queue.skim()
		if s.queue.len() == 0 || s.queue.ev[0].t > limit {
			break
		}
		if !s.processEvent() {
			return cond()
		}
		if cond() {
			return true
		}
	}
	return cond()
}
