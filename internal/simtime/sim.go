package simtime

import (
	"container/heap"
	"fmt"

	"heardof/internal/core"
	"heardof/internal/xrand"
)

// Proto is the per-process protocol run by the simulator — the predicate
// implementation layer of the paper (Algorithms 2 and 3 live here).
//
// Step is invoked once per atomic step; the protocol must perform exactly
// one action through the context: one Broadcast (a send step) or one
// Receive (a receive step). OnCrash is invoked when the process crashes
// (volatile state must be dropped); OnRecover when it comes back up
// (state must be rebuilt from stable storage).
type Proto interface {
	Step(ctx *StepContext)
	OnCrash()
	OnRecover()
}

// StepContext gives a protocol access to the simulator during one step.
type StepContext struct {
	sim   *Sim
	p     core.ProcessID
	now   Time
	acted bool
}

// Now returns the current normalized time. Protocols must not use it for
// decisions (the paper's processes have no clock); it exists for trace
// timestamps.
func (c *StepContext) Now() Time { return c.now }

// PID returns the process executing the step.
func (c *StepContext) PID() core.ProcessID { return c.p }

// Broadcast performs a send step: the payload is sent to all processes
// (including the sender), as the paper's send-to-all primitive does.
func (c *StepContext) Broadcast(payload any) {
	if c.acted {
		c.sim.contractViolations++
		return
	}
	c.acted = true
	c.sim.broadcast(c.p, payload, c.now)
}

// Receive performs a receive step: one buffered message selected by the
// policy is consumed and returned. ok is false when the empty message λ
// was received.
func (c *StepContext) Receive(policy ReceptionPolicy) (env Envelope, ok bool) {
	if c.acted {
		c.sim.contractViolations++
		return Envelope{}, false
	}
	c.acted = true
	return c.sim.receive(c.p, policy)
}

// event kinds.
const (
	evStep = iota + 1
	evMakeReady
	evCrash
	evRecover
	evPeriod
)

type event struct {
	t    Time
	seq  uint64
	kind int
	p    core.ProcessID
	env  Envelope
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Stats aggregates observable counters of a run.
type Stats struct {
	Steps        int64
	Sends        int64
	MessagesSent int64 // Sends × n (per-destination copies)
	Delivered    int64 // moved to a buffer set
	Received     int64 // consumed by receive steps
	Dropped      int64 // lost in transit
	Purged       int64 // removed at π0-down period starts
	Crashes      int64
	Recoveries   int64
}

type procState struct {
	up     bool
	buffer []Envelope
	// downByPeriod marks processes forced down by a π0-down good period
	// (they are revived at the period's end unless individually crashed).
	downByPeriod bool
}

// Sim is the discrete-event simulator. It is single-threaded and
// deterministic for a fixed Config (including Seed) and protocol.
type Sim struct {
	cfg   Config
	rng   *xrand.Rand
	queue eventQueue
	seq   uint64
	now   Time

	procs  []procState
	protos []Proto

	stats              Stats
	contractViolations int
}

// New creates a simulator; factory is called once per process to build its
// protocol instance.
func New(cfg Config, factory func(p core.ProcessID) Proto) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("simtime config: %w", err)
	}
	s := &Sim{
		cfg:    cfg,
		rng:    xrand.New(cfg.Seed ^ 0x9e3779b97f4a7c15),
		procs:  make([]procState, cfg.N),
		protos: make([]Proto, cfg.N),
	}
	for p := 0; p < cfg.N; p++ {
		s.procs[p].up = true
		s.protos[p] = factory(core.ProcessID(p))
	}
	// Period boundaries.
	for _, per := range cfg.Periods {
		if per.Start > 0 {
			s.push(&event{t: per.Start, kind: evPeriod})
		}
	}
	s.applyPeriodRules(0)
	// Scheduled crashes and recoveries.
	for _, ce := range cfg.Crashes {
		if ce.P < 0 || int(ce.P) >= cfg.N {
			return nil, fmt.Errorf("crash event for unknown process %d", ce.P)
		}
		s.push(&event{t: ce.At, kind: evCrash, p: ce.P})
		if ce.RecoverAt >= 0 {
			if ce.RecoverAt < ce.At {
				return nil, fmt.Errorf("process %d recovers at %v before crashing at %v",
					ce.P, ce.RecoverAt, ce.At)
			}
			s.push(&event{t: ce.RecoverAt, kind: evRecover, p: ce.P})
		}
	}
	// First step of every (up) process.
	for p := 0; p < cfg.N; p++ {
		if s.procs[p].up {
			s.scheduleStep(core.ProcessID(p), 0)
		}
	}
	return s, nil
}

// Now returns the current simulation time.
func (s *Sim) Now() Time { return s.now }

// Stats returns a copy of the run counters.
func (s *Sim) Stats() Stats { return s.stats }

// ContractViolations counts protocol steps that attempted more than one
// action; a correct protocol keeps this at zero.
func (s *Sim) ContractViolations() int { return s.contractViolations }

// Up reports whether process p is currently up.
func (s *Sim) Up(p core.ProcessID) bool { return s.procs[p].up }

// Proto returns process p's protocol instance (for inspection).
func (s *Sim) Proto(p core.ProcessID) Proto { return s.protos[p] }

// BufferLen returns the size of p's buffer set (for tests).
func (s *Sim) BufferLen(p core.ProcessID) int { return len(s.procs[p].buffer) }

func (s *Sim) push(e *event) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.queue, e)
}

func (s *Sim) scheduleStep(p core.ProcessID, t Time) {
	gap := s.stepGap(p, t)
	s.push(&event{t: t + gap, kind: evStep, p: p})
}

// stepGap draws the time until p's next step under the period in force.
func (s *Sim) stepGap(p core.ProcessID, t Time) Time {
	per, _ := s.cfg.PeriodAt(t)
	synchronous := per.Kind != Bad && per.Pi0.Has(p)
	if synchronous {
		switch s.cfg.StepMode {
		case StepFast:
			return 1
		case StepJitter:
			return s.rng.Between(1, s.cfg.Phi)
		default:
			return s.cfg.Phi
		}
	}
	// Bad period, or outside π0 in a π0-arbitrary period: arbitrary speed.
	return s.rng.Between(s.cfg.Bad.MinGap, s.cfg.Bad.MaxGap)
}

// broadcast implements a send step: one copy per destination enters the
// network and is scheduled for make-ready per the link's current regime.
func (s *Sim) broadcast(from core.ProcessID, payload any, t Time) {
	s.stats.Sends++
	per, _ := s.cfg.PeriodAt(t)
	for q := 0; q < s.cfg.N; q++ {
		s.stats.MessagesSent++
		to := core.ProcessID(q)
		goodLink := per.Kind != Bad && per.Pi0.Has(from) && per.Pi0.Has(to)
		var delay Time
		if goodLink {
			if s.cfg.DeliveryMode == DeliverJitter {
				delay = s.rng.Between(s.cfg.Delta/10, s.cfg.Delta)
			} else {
				delay = s.cfg.Delta
			}
		} else {
			if s.rng.Bool(s.cfg.Bad.LossProb) {
				s.stats.Dropped++
				continue
			}
			delay = s.rng.Between(s.cfg.Bad.MinDelay, s.cfg.Bad.MaxDelay)
		}
		s.push(&event{
			t:    t + delay,
			kind: evMakeReady,
			p:    to,
			env:  Envelope{From: from, To: to, Payload: payload, SentAt: t},
		})
	}
}

// receive implements a receive step.
func (s *Sim) receive(p core.ProcessID, policy ReceptionPolicy) (Envelope, bool) {
	buf := s.procs[p].buffer
	if policy == nil {
		policy = FIFO{}
	}
	idx := policy.Select(buf)
	if idx < 0 || idx >= len(buf) {
		return Envelope{}, false // λ
	}
	env := buf[idx]
	s.procs[p].buffer = append(buf[:idx], buf[idx+1:]...)
	s.stats.Received++
	return env, true
}

// applyPeriodRules enforces the entry conditions of the period in force at
// time t: a π0-down period forces processes outside π0 down and purges
// their in-flight and buffered messages; leaving a π0-down period revives
// the processes it forced down.
func (s *Sim) applyPeriodRules(t Time) {
	per, _ := s.cfg.PeriodAt(t)

	// Revive processes that were down only because of a previous π0-down
	// period (and are allowed up now).
	for p := range s.procs {
		pid := core.ProcessID(p)
		forcedDown := per.Kind == GoodDown && !per.Pi0.Has(pid)
		if s.procs[p].downByPeriod && !forcedDown {
			s.procs[p].downByPeriod = false
			if !s.procs[p].up {
				s.recover(pid, t)
			}
		}
	}

	if per.Kind != GoodDown {
		return
	}
	outside := per.Pi0.Complement(s.cfg.N)
	outside.ForEach(func(p core.ProcessID) {
		s.procs[p].downByPeriod = true
		if s.procs[p].up {
			s.crash(p, t)
		}
	})
	// "No messages from processes in π0̄ are in transit": purge network
	// (pending make-ready events) and buffers of messages from outside.
	for i := range s.queue {
		e := s.queue[i]
		if e.kind == evMakeReady && outside.Has(e.env.From) {
			e.kind = 0 // tombstone; skipped on pop
			s.stats.Purged++
		}
	}
	for p := range s.procs {
		kept := s.procs[p].buffer[:0]
		for _, env := range s.procs[p].buffer {
			if outside.Has(env.From) {
				s.stats.Purged++
				continue
			}
			kept = append(kept, env)
		}
		s.procs[p].buffer = kept
	}
}

func (s *Sim) crash(p core.ProcessID, _ Time) {
	if !s.procs[p].up {
		return
	}
	s.procs[p].up = false
	s.procs[p].buffer = nil // volatile state is lost
	s.stats.Crashes++
	s.protos[p].OnCrash()
	// Pending step events for p are skipped when popped (process down).
}

func (s *Sim) recover(p core.ProcessID, t Time) {
	if s.procs[p].up {
		return
	}
	if s.procs[p].downByPeriod {
		return // still forced down by the period in force
	}
	s.procs[p].up = true
	s.stats.Recoveries++
	s.protos[p].OnRecover()
	s.scheduleStep(p, t)
}

// processEvent executes one event; it returns false when the queue is
// exhausted.
func (s *Sim) processEvent() bool {
	for {
		if s.queue.Len() == 0 {
			return false
		}
		e := heap.Pop(&s.queue).(*event)
		if e.kind == 0 {
			continue // tombstoned
		}
		s.now = e.t
		switch e.kind {
		case evStep:
			if !s.procs[e.p].up {
				continue // crashed: step skipped, next one comes on recovery
			}
			ctx := &StepContext{sim: s, p: e.p, now: e.t}
			s.protos[e.p].Step(ctx)
			s.stats.Steps++
			s.scheduleStep(e.p, e.t)
		case evMakeReady:
			if !s.procs[e.p].up {
				// Messages arriving at a down process are lost (its buffer
				// is volatile and it is not accepting).
				s.stats.Dropped++
				continue
			}
			s.procs[e.p].buffer = append(s.procs[e.p].buffer, e.env)
			s.stats.Delivered++
		case evCrash:
			s.crash(e.p, e.t)
		case evRecover:
			s.recover(e.p, e.t)
		case evPeriod:
			s.applyPeriodRules(e.t)
		}
		return true
	}
}

// InjectForTest places an envelope directly into p's buffer set,
// bypassing the network. Test support only.
func (s *Sim) InjectForTest(p core.ProcessID, env Envelope) {
	s.procs[p].buffer = append(s.procs[p].buffer, env)
}

// StepContextForTest returns a fresh step context for process p at the
// current simulation time, letting tests drive a Proto directly. Test
// support only.
func (s *Sim) StepContextForTest(p core.ProcessID) *StepContext {
	return &StepContext{sim: s, p: p, now: s.now}
}

// RunUntilTime advances the simulation until the clock passes t.
func (s *Sim) RunUntilTime(t Time) {
	for s.queue.Len() > 0 && s.queue[0].t <= t {
		if !s.processEvent() {
			return
		}
	}
	if s.now < t {
		s.now = t
	}
}

// RunUntil advances the simulation until cond() holds (checked after every
// event) or the clock passes limit; it reports whether cond was met.
func (s *Sim) RunUntil(cond func() bool, limit Time) bool {
	if cond() {
		return true
	}
	for s.queue.Len() > 0 && s.queue[0].t <= limit {
		if !s.processEvent() {
			return cond()
		}
		if cond() {
			return true
		}
	}
	return cond()
}
