package acr

import (
	"testing"

	"heardof/internal/core"
	"heardof/internal/fd"
	"heardof/internal/runtime"
	"heardof/internal/stable"
)

type cluster struct {
	sim    *runtime.Sim
	nodes  []*Node
	stores *stable.Registry
}

func newCluster(t *testing.T, n int, initial []core.Value, cfg runtime.Config, gst runtime.Time) *cluster {
	t.Helper()
	cfg.N = n
	nodes := make([]*Node, n)
	stores := stable.NewRegistry()
	sim, err := runtime.New(cfg, func(p runtime.NodeID) runtime.Handler {
		nodes[p] = NewNode(n, initial[p], nil, stores.For(int(p)), 2, 3)
		return nodes[p]
	})
	if err != nil {
		t.Fatal(err)
	}
	det := fd.NewEventuallySu(sim, gst, cfg.Seed^0xac)
	for p, nd := range nodes {
		nd.su = det
		nd.store = stores.For(p)
	}
	return &cluster{sim: sim, nodes: nodes, stores: stores}
}

func (c *cluster) decidedCount() int {
	count := 0
	for _, nd := range c.nodes {
		if _, ok := nd.Decided(); ok {
			count++
		}
	}
	return count
}

func (c *cluster) checkAgreementIntegrity(t *testing.T, initial []core.Value) {
	t.Helper()
	var first *core.Value
	for p, nd := range c.nodes {
		v, ok := nd.Decided()
		if !ok {
			continue
		}
		if first == nil {
			vv := v
			first = &vv
		} else if *first != v {
			t.Fatalf("agreement violated: p%d decided %d vs %d", p, v, *first)
		}
		found := false
		for _, iv := range initial {
			if iv == v {
				found = true
			}
		}
		if !found {
			t.Fatalf("integrity violated: decision %d", v)
		}
	}
}

func TestDecidesReliableLinks(t *testing.T) {
	initial := []core.Value{3, 1, 4, 1, 5}
	c := newCluster(t, 5, initial, runtime.Config{MinDelay: 0.5, MaxDelay: 1, Seed: 1}, 0)
	if !c.sim.RunUntil(func() bool { return c.decidedCount() == 5 }, 1000) {
		t.Fatalf("only %d/5 decided", c.decidedCount())
	}
	c.checkAgreementIntegrity(t, initial)
	if c.stores.TotalWrites() == 0 {
		t.Error("no stable-storage writes; the algorithm must log estimates")
	}
}

func TestDecidesDespiteCrashRecoveryAndPreGSTLoss(t *testing.T) {
	// The algorithm's raison d'être: crash-recovery plus lossy links
	// before GST. Retransmission + ◇Su + stable storage get everyone
	// (eventually up) to a decision after GST.
	initial := []core.Value{3, 1, 4, 1, 5, 9, 2}
	c := newCluster(t, 7, initial, runtime.Config{
		MinDelay: 0.5, MaxDelay: 2, Seed: 3,
		LossProb: 0.4, GST: 80, StableLossProb: 0,
		Crashes: []runtime.CrashEvent{
			{P: 0, At: 5, RecoverAt: 30},
			{P: 2, At: 12, RecoverAt: 100},
			{P: 5, At: 40, RecoverAt: 90},
		},
	}, 80)
	if !c.sim.RunUntil(func() bool { return c.decidedCount() == 7 }, 5000) {
		t.Fatalf("only %d/7 decided", c.decidedCount())
	}
	c.checkAgreementIntegrity(t, initial)
}

func TestRecoveryPreservesDecision(t *testing.T) {
	initial := []core.Value{6, 6, 6}
	c := newCluster(t, 3, initial, runtime.Config{
		MinDelay: 0.5, MaxDelay: 1, Seed: 4,
		Crashes: []runtime.CrashEvent{{P: 2, At: 60, RecoverAt: 80}},
	}, 0)
	if !c.sim.RunUntil(func() bool { return c.decidedCount() == 3 }, 50) {
		t.Fatalf("no full decision before the crash: %d/3", c.decidedCount())
	}
	c.sim.RunUntilTime(120) // crash + recovery of p2
	if v, ok := c.nodes[2].Decided(); !ok || v != 6 {
		t.Errorf("recovered node decision = (%v, %v), want (6, true)", v, ok)
	}
}

func TestLateRecovererLearnsDecisionViaDecideReply(t *testing.T) {
	// A node that was down during the decision learns it after recovery
	// because decided nodes answer every message with DECIDE and the
	// recoverer retransmits.
	initial := []core.Value{5, 5, 5, 5, 5}
	c := newCluster(t, 5, initial, runtime.Config{
		MinDelay: 0.5, MaxDelay: 1, Seed: 5,
		Crashes: []runtime.CrashEvent{{P: 4, At: 0.2, RecoverAt: 200}},
	}, 0)
	c.sim.RunUntilTime(190)
	if c.decidedCount() != 4 {
		t.Fatalf("survivors did not decide: %d/4", c.decidedCount())
	}
	if !c.sim.RunUntil(func() bool { return c.decidedCount() == 5 }, 2000) {
		t.Fatal("late recoverer never learned the decision")
	}
	c.checkAgreementIntegrity(t, initial)
}

func TestCoordRotationAndRoundSkip(t *testing.T) {
	if Coord(1, 4) != 0 || Coord(5, 4) != 0 || Coord(4, 4) != 3 {
		t.Error("coordinator rotation wrong")
	}
	// With the round-1 coordinator down forever, ◇Su eventually
	// distrusts it and skip_round moves everyone to round 2.
	initial := []core.Value{8, 8, 8}
	c := newCluster(t, 3, initial, runtime.Config{
		MinDelay: 0.5, MaxDelay: 1, Seed: 6,
		Crashes: []runtime.CrashEvent{{P: 0, At: 0.1, RecoverAt: -1}},
	}, 10)
	if !c.sim.RunUntil(func() bool {
		return c.decidedCount() >= 2
	}, 2000) {
		t.Fatalf("survivors stuck (rounds: %d, %d)", c.nodes[1].Round(), c.nodes[2].Round())
	}
	c.checkAgreementIntegrity(t, initial)
}

// TestE8ComplexityComparison quantifies §2.1's qualitative claim: the
// crash-recovery FD algorithm is a much bigger protocol than the HO stack
// needs, mechanically — message kinds, stable keys, tasks.
func TestE8ComplexityComparison(t *testing.T) {
	// Algorithm 6 needs 5 message kinds, 6 stable keys and 2 timer tasks;
	// the HO stack's Algorithm 2 needs 1 message kind, 2 stable keys and
	// no timers (its timeout is a step counter). These constants document
	// the structural gap; the LoC gap is reported by the hobench binary.
	const (
		acrMessageKinds = 5
		acrStableKeys   = 6
		acrTimerTasks   = 2
		hoMessageKinds  = 1
		hoStableKeys    = 2
		hoTimerTasks    = 0
	)
	if acrMessageKinds <= hoMessageKinds || acrStableKeys <= hoStableKeys ||
		acrTimerTasks <= hoTimerTasks {
		t.Error("complexity comparison inverted; update the documented constants")
	}
}
