// Package acr implements Algorithm 6 of the paper's Appendix A: the
// Aguilera–Chen–Toueg consensus algorithm for the crash-recovery model
// with stable storage and the ◇S_u failure detector.
//
// The algorithm exists in this repository as the baseline that
// illustrates §2.1 of Hutle & Schiper: moving Chandra–Toueg from
// crash-stop to crash-recovery forces a different failure detector
// (trustlists with epoch numbers), per-destination retransmission tasks,
// stable-storage logging at every estimate update, a round-skipping task,
// and a recovery procedure — a substantially more complex protocol for
// the "same" problem, whereas the HO stack of internal/predimpl runs
// unchanged in both models.
package acr

import (
	"heardof/internal/core"
	"heardof/internal/fd"
	"heardof/internal/quorum"
	"heardof/internal/runtime"
	"heardof/internal/stable"
)

// Message types (the paper's tags).
type (
	// newRoundMsg opens a round: coordinator → all (phase NEWROUND).
	newRoundMsg struct {
		R int
	}
	// estimateMsg carries a participant's estimate to the coordinator.
	estimateMsg struct {
		R        int
		Estimate core.Value
		TS       int
	}
	// newEstimateMsg carries the coordinator's choice (phase NEWESTIMATE).
	newEstimateMsg struct {
		R        int
		Estimate core.Value
	}
	// ackMsg acknowledges a new estimate.
	ackMsg struct {
		R int
	}
	// decideMsg announces the decision (retransmitted on demand).
	decideMsg struct {
		Estimate core.Value
	}
)

// roundOf extracts a round number for the "received some message with
// r > rp" escape of the skip_round task.
func roundOf(msg any) (int, bool) {
	switch m := msg.(type) {
	case newRoundMsg:
		return m.R, true
	case estimateMsg:
		return m.R, true
	case newEstimateMsg:
		return m.R, true
	case ackMsg:
		return m.R, true
	default:
		return 0, false
	}
}

// Coord returns the coordinator of round r (0-indexed form of the paper's
// (r mod n) + 1).
func Coord(r, n int) core.ProcessID { return core.ProcessID((r - 1) % n) }

// Stable-storage keys.
const (
	keyRound    = "rp"
	keyEstimate = "estimate"
	keyTS       = "ts"
	keyDecided  = "decided"
	keyDecision = "decision"
	keyProposed = "proposed"
)

// Timer ids.
const (
	timerRetransmit = 1
	timerSkipRound  = 2
)

// Node is one process running Algorithm 6.
type Node struct {
	n      int
	su     *fd.EventuallySu
	store  *stable.Store
	poll   runtime.Time // skip_round detector polling interval
	rexmit runtime.Time // retransmission interval

	// Volatile state (rebuilt from stable storage on recovery).
	rp       int
	estimate core.Value
	ts       int
	decided  bool
	decision core.Value
	xmit     map[core.ProcessID]any // xmitmsg[q]: last s-sent message per destination

	// Round-scoped volatile state.
	roundView    fd.View // ◇Su view at round start (for the epoch escape)
	maxSeenRound int
	estimates    map[int][]estimateMsg
	acks         map[int]core.PIDSet
	sentDecide   map[int]bool
}

var _ runtime.Handler = (*Node)(nil)

// NewNodeDeferred creates a node whose detector is attached later with
// SetDetector (the ◇Su oracle needs the runtime simulation, which needs
// the handlers first).
func NewNodeDeferred(n int, v core.Value, store *stable.Store, poll, rexmit runtime.Time) *Node {
	return NewNode(n, v, nil, store, poll, rexmit)
}

// SetDetector attaches the ◇Su detector. It must be called before the
// simulation starts processing events.
func (nd *Node) SetDetector(d *fd.EventuallySu) { nd.su = d }

// NewNode creates a node proposing v. The store must survive crashes
// (share it across reboots of the same process).
func NewNode(n int, v core.Value, su *fd.EventuallySu, store *stable.Store,
	poll, rexmit runtime.Time) *Node {
	nd := &Node{
		n:      n,
		su:     su,
		store:  store,
		poll:   poll,
		rexmit: rexmit,
	}
	nd.resetVolatile()
	nd.rp = 1
	nd.estimate = v
	nd.ts = 0
	return nd
}

func (nd *Node) resetVolatile() {
	nd.xmit = make(map[core.ProcessID]any)
	nd.estimates = make(map[int][]estimateMsg)
	nd.acks = make(map[int]core.PIDSet)
	nd.sentDecide = make(map[int]bool)
	nd.maxSeenRound = 0
}

// Decided reports the node's decision.
func (nd *Node) Decided() (core.Value, bool) { return nd.decision, nd.decided }

// Round returns the node's current round.
func (nd *Node) Round() int { return nd.rp }

// sSend implements the paper's s-send: remember the message for
// retransmission and transmit once now (self-sends deliver directly).
func (nd *Node) sSend(ctx *runtime.Context, to core.ProcessID, msg any) {
	if to == ctx.ID() {
		nd.OnMessage(ctx, to, msg)
		return
	}
	nd.xmit[to] = msg
	ctx.Send(to, msg)
}

func (nd *Node) sSendAll(ctx *runtime.Context, msg any) {
	for q := 0; q < nd.n; q++ {
		nd.sSend(ctx, core.ProcessID(q), msg)
	}
}

// Start implements runtime.Handler: propose.
func (nd *Node) Start(ctx *runtime.Context) {
	nd.store.Save(keyProposed, true)
	nd.persistRound()
	ctx.After(nd.rexmit, timerRetransmit)
	ctx.After(nd.poll, timerSkipRound)
	nd.enterRound(ctx, nd.rp)
}

func (nd *Node) persistRound() { nd.store.Save(keyRound, nd.rp) }

func (nd *Node) persistEstimate() {
	nd.store.Save(keyEstimate, nd.estimate)
	nd.store.Save(keyTS, nd.ts)
}

// enterRound forks the coordinator and participant tasks of round r.
func (nd *Node) enterRound(ctx *runtime.Context, r int) {
	if nd.decided {
		return
	}
	nd.rp = r
	nd.persistRound()
	nd.roundView = nd.su.Query(ctx.ID(), nd.n)

	c := Coord(r, nd.n)
	if c == ctx.ID() {
		// Task coordinator, phase NEWROUND: solicit estimates (unless it
		// already owns an estimate for this round, post-recovery).
		if nd.ts != r {
			nd.sSendAll(ctx, newRoundMsg{R: r})
		} else {
			nd.sSendAll(ctx, newEstimateMsg{R: r, Estimate: nd.estimate})
		}
	}
	// Task participant, phase ESTIMATE.
	if nd.ts != r {
		nd.sSend(ctx, c, estimateMsg{R: r, Estimate: nd.estimate, TS: nd.ts})
	}
}

// OnMessage implements runtime.Handler.
func (nd *Node) OnMessage(ctx *runtime.Context, from core.ProcessID, msg any) {
	// Decision handling comes first (lines 51–56): a decided process
	// answers everything with DECIDE.
	if dm, ok := msg.(decideMsg); ok {
		nd.decide(ctx, dm.Estimate)
		return
	}
	if nd.decided {
		ctx.Send(from, decideMsg{Estimate: nd.decision})
		return
	}

	if r, ok := roundOf(msg); ok && r > nd.maxSeenRound {
		nd.maxSeenRound = r
	}

	switch m := msg.(type) {
	case newRoundMsg:
		// A participant asked for its estimate in a round it has not
		// joined yet: the skip_round escape ("received some message with
		// r > rp") is checked in the poll, but answering immediately is
		// equivalent and faster.
		if m.R >= nd.rp {
			nd.jumpTo(ctx, m.R)
		}
	case estimateMsg:
		nd.coordCollect(ctx, m)
	case newEstimateMsg:
		nd.participantAdopt(ctx, m)
	case ackMsg:
		nd.coordAcks(ctx, m, from)
	}
}

// jumpTo aborts the current round and joins round r (skip_round lines
// 47–50 with the received-higher-round escape).
func (nd *Node) jumpTo(ctx *runtime.Context, r int) {
	if r <= nd.rp || nd.decided {
		if r == nd.rp {
			return
		}
	}
	if r < nd.rp {
		return
	}
	nd.enterRound(ctx, r)
}

// coordCollect is the coordinator's wait for ⌈(n+1)/2⌉ estimates.
func (nd *Node) coordCollect(ctx *runtime.Context, m estimateMsg) {
	if Coord(m.R, nd.n) != ctx.ID() || m.R < nd.rp {
		return
	}
	for _, e := range nd.estimates[m.R] {
		if e.TS == m.TS && e.Estimate == m.Estimate {
			// Retransmissions may duplicate; tolerate identical copies.
			break
		}
	}
	nd.estimates[m.R] = append(nd.estimates[m.R], m)
	if len(nd.estimates[m.R]) < quorum.CeilHalf(nd.n) || nd.ts == m.R {
		return
	}
	best := nd.estimates[m.R][0]
	for _, e := range nd.estimates[m.R][1:] {
		if e.TS > best.TS {
			best = e
		}
	}
	nd.estimate = best.Estimate
	nd.ts = m.R
	nd.persistEstimate()
	// Phase NEWESTIMATE.
	nd.sSendAll(ctx, newEstimateMsg{R: m.R, Estimate: nd.estimate})
}

// participantAdopt is the participant's wait for the coordinator's new
// estimate (phase NEWESTIMATE → phase ACK).
func (nd *Node) participantAdopt(ctx *runtime.Context, m newEstimateMsg) {
	if m.R < nd.rp {
		return
	}
	if m.R > nd.rp {
		nd.jumpTo(ctx, m.R)
	}
	c := Coord(m.R, nd.n)
	if c != ctx.ID() {
		nd.estimate = m.Estimate
		nd.ts = m.R
		nd.persistEstimate()
	}
	nd.sSend(ctx, c, ackMsg{R: m.R})
}

// coordAcks is the coordinator's wait for ⌈(n+1)/2⌉ acks, then DECIDE.
func (nd *Node) coordAcks(ctx *runtime.Context, m ackMsg, from core.ProcessID) {
	if Coord(m.R, nd.n) != ctx.ID() || nd.sentDecide[m.R] {
		return
	}
	nd.acks[m.R] = nd.acks[m.R].Add(from)
	if nd.acks[m.R].Len() < quorum.CeilHalf(nd.n) {
		return
	}
	nd.sentDecide[m.R] = true
	nd.sSendAll(ctx, decideMsg{Estimate: nd.estimate})
}

// decide logs the decision to stable storage (line 53).
func (nd *Node) decide(ctx *runtime.Context, v core.Value) {
	if nd.decided {
		return
	}
	nd.decided = true
	nd.decision = v
	nd.store.Save(keyDecided, true)
	nd.store.Save(keyDecision, v)
	// Help others decide: one broadcast (retransmission keeps covering
	// stragglers via the reply-with-DECIDE rule).
	ctx.Broadcast(decideMsg{Estimate: v})
}

// OnTimer implements runtime.Handler: the retransmit and skip_round tasks.
func (nd *Node) OnTimer(ctx *runtime.Context, id int) {
	switch id {
	case timerRetransmit:
		// Retransmit in process order, not map order: the simulator draws
		// per-send delays from its RNG in send order, so iterating the map
		// directly would make runs nondeterministic.
		for q := core.ProcessID(0); int(q) < nd.n; q++ {
			if m, ok := nd.xmit[q]; ok {
				ctx.Send(q, m)
			}
		}
		ctx.After(nd.rexmit, timerRetransmit)
	case timerSkipRound:
		if !nd.decided {
			nd.skipRoundCheck(ctx)
		}
		ctx.After(nd.poll, timerSkipRound)
	}
}

// skipRoundCheck is the skip_round task (lines 42–50): abort the current
// round when the coordinator is no longer trusted, its epoch increased,
// or a higher round has been seen; then join the smallest round r > rp
// whose coordinator is trusted and r ≥ the largest round seen.
func (nd *Node) skipRoundCheck(ctx *runtime.Context) {
	c := Coord(nd.rp, nd.n)
	d := nd.su.Query(ctx.ID(), nd.n)
	abort := !d.Trusts(c) ||
		d.Epoch[c] > nd.roundView.Epoch[c] ||
		nd.maxSeenRound > nd.rp
	if !abort {
		return
	}
	if d.TrustList.IsEmpty() {
		return // wait for a non-empty trustlist (line 48)
	}
	next := nd.rp + 1
	if nd.maxSeenRound > next {
		next = nd.maxSeenRound
	}
	for !d.Trusts(Coord(next, nd.n)) {
		next++
	}
	nd.enterRound(ctx, next)
}

// OnCrash implements runtime.Handler: volatile state vanishes.
func (nd *Node) OnCrash() {
	nd.xmit = nil
	nd.estimates = nil
	nd.acks = nil
	nd.sentDecide = nil
}

// OnRecover implements runtime.Handler: the upon-recovery procedure
// (lines 57–62) — reload {rp, estimate, ts} (and any logged decision)
// from stable storage, reset retransmission buffers, re-fork the tasks.
func (nd *Node) OnRecover(ctx *runtime.Context) {
	nd.resetVolatile()
	if v, ok := nd.store.Load(keyDecided); ok && v == true {
		if dv, okd := nd.store.Load(keyDecision); okd {
			nd.decided = true
			if val, okv := dv.(core.Value); okv {
				nd.decision = val
			}
		}
		return
	}
	if v, ok := nd.store.Load(keyRound); ok {
		if r, okr := v.(int); okr {
			nd.rp = r
		}
	}
	if v, ok := nd.store.Load(keyEstimate); ok {
		if e, oke := v.(core.Value); oke {
			nd.estimate = e
		}
	}
	if v, ok := nd.store.Load(keyTS); ok {
		if t, okt := v.(int); okt {
			nd.ts = t
		}
	}
	ctx.After(nd.rexmit, timerRetransmit)
	ctx.After(nd.poll, timerSkipRound)
	nd.enterRound(ctx, nd.rp)
}
