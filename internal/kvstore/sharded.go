// Sharded replicated KV: the store-shaped API over internal/shard's
// multi-group replication layer. Each shard is an independent cluster of
// n replicas deciding its own slot log under its OWN fault environment;
// keys are partitioned across shards by a pure router, so scaling (more
// shards) stays orthogonal to fault handling (per-shard providers) — the
// separation the predicate abstraction licenses.

package kvstore

import (
	"fmt"

	"heardof/internal/core"
	"heardof/internal/rsm"
	"heardof/internal/shard"
)

// ShardedCluster replicates a partitioned KV store: S independent
// replication groups of n replicas each. Cross-shard operations are not
// transactional — each command touches exactly one key and therefore
// exactly one shard, which is what makes per-shard logs sufficient.
type ShardedCluster struct {
	shards   int
	n        int
	sharded  *shard.Sharded[Command]
	replicas [][]*Replica // [shard][replica]
}

// NewShardedCluster creates cfg.Shards groups of n replicas deciding
// slots with alg under per-shard HO environments: providers(s) is shard
// s's per-slot provider factory — heterogeneous environments (one shard
// lossy, the rest in good periods) are just different factories per
// index. tune applies to every group; cfg carries the router (nil means
// shard.HashRouter) and the shard-level parallelism.
func NewShardedCluster(cfg shard.Config, n int, alg core.Algorithm,
	providers func(shard int) func(slot int) core.HOProvider,
	maxRounds core.Round, tune rsm.Tuning) (*ShardedCluster, error) {
	if providers == nil {
		return nil, fmt.Errorf("kvstore: nil per-shard provider factory")
	}
	c := &ShardedCluster{shards: cfg.Shards, n: n}
	sh, err := shard.New[Command](cfg,
		func(s int) rsm.Config {
			return rsm.Config{
				N: n, Algorithm: alg, Provider: providers(s), MaxRounds: maxRounds,
				BatchSize: tune.BatchSize, Pipeline: tune.Pipeline, Parallel: tune.Parallel,
			}
		},
		func(s, replica int, cmd Command) {
			c.replicas[s][replica].SM.Apply(cmd)
		})
	if err != nil {
		return nil, fmt.Errorf("kvstore: %w", err)
	}
	c.replicas = make([][]*Replica, cfg.Shards)
	for s := range c.replicas {
		c.replicas[s] = make([]*Replica, n)
		for i := range c.replicas[s] {
			c.replicas[s][i] = &Replica{ID: core.ProcessID(i), SM: NewStateMachine()}
		}
	}
	c.sharded = sh
	return c, nil
}

// Shards returns the shard count.
func (c *ShardedCluster) Shards() int { return c.shards }

// Sharded exposes the underlying sharded replication service (workload
// harness, per-shard engines, aggregate stats).
func (c *ShardedCluster) Sharded() *shard.Sharded[Command] { return c.sharded }

// Replica returns replica i of shard s.
func (c *ShardedCluster) Replica(s, i int) *Replica { return c.replicas[s][i] }

// RouteKey returns the shard owning a string key.
func (c *ShardedCluster) RouteKey(key string) int {
	return c.sharded.Route(shard.StringKey(key))
}

// Submit accepts a command at a contact replica and enters it into the
// owning shard's log (routing by the command's key). The contact runs one
// client session PER SHARD — sequence numbers are per (shard, contact) —
// so every Submit is a fresh command on its shard.
func (c *ShardedCluster) Submit(contact int, cmd Command) error {
	if contact < 0 || contact >= c.n {
		return fmt.Errorf("kvstore: contact replica %d out of range [0, %d)", contact, c.n)
	}
	c.sharded.SubmitNext(shard.StringKey(cmd.Key), rsm.ClientID(contact), cmd)
	return nil
}

// PendingTotal counts queued-but-unreplicated commands across all shards.
func (c *ShardedCluster) PendingTotal() int { return c.sharded.Pending() }

// DecideWindows decides one window on every shard with pending commands
// (concurrently, deterministically merged) and returns the number of
// commands applied.
func (c *ShardedCluster) DecideWindows() (int, error) { return c.sharded.DecideWindows() }

// Drain decides windows on every shard until nothing is pending anywhere
// or some shard exhausts maxSlotsPerShard launches. Every undecided path
// satisfies errors.Is(err, ErrSlotUndecided).
func (c *ShardedCluster) Drain(maxSlotsPerShard int) (int, error) {
	return c.sharded.Drain(maxSlotsPerShard)
}

// Stats returns the aggregate engine counters (sums across shards;
// WallRounds is the slowest shard's clock).
func (c *ShardedCluster) Stats() rsm.Stats { return c.sharded.Stats() }

// Get reads a key from replica 0 of its owning shard — a local
// (non-linearizable) read; replicate an OpGet for a read through the log.
func (c *ShardedCluster) Get(key string) (string, bool) {
	return c.replicas[c.RouteKey(key)][0].SM.Get(key)
}

// WorkloadRouteKey routes a generated workload operation the way
// ShardedCluster routes the command WorkloadCommand builds from it — by
// the FNV hash of the command's STRING key, not the raw integer index.
// Pass it as shard.RunWorkload's keyOf so workload-driven and
// Submit-driven traffic agree on every key's owning shard (and Get reads
// the shard that actually applied the put).
func WorkloadRouteKey(op rsm.Op) uint64 { return shard.StringKey(workloadKey(op.Key)) }

// ShardConverged reports whether shard s's replicas have identical state.
func (c *ShardedCluster) ShardConverged(s int) bool {
	want := c.replicas[s][0].SM.Fingerprint()
	for _, r := range c.replicas[s][1:] {
		if r.SM.Fingerprint() != want {
			return false
		}
	}
	return true
}

// Converged reports whether every shard's replicas converged.
func (c *ShardedCluster) Converged() bool {
	for s := 0; s < c.shards; s++ {
		if !c.ShardConverged(s) {
			return false
		}
	}
	return true
}
